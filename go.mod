module blackjack

go 1.22
