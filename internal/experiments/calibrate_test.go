package experiments

import (
	"bytes"
	"testing"

	"blackjack/internal/calib"
)

// calibrateSmall runs the calibration harness on a deliberately tiny
// suite: the claims themselves won't all pass at this scale, but every
// metric the paper spec asks for must be measurable, and the report must
// render deterministically.
func calibrateSmall(t *testing.T) *calib.Report {
	t.Helper()
	rep, err := Calibrate(Options{
		Benchmarks:   []string{"gcc", CalibrationBenchmark, "gzip"},
		Instructions: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCalibrateMeasuresEveryClaim(t *testing.T) {
	rep := calibrateSmall(t)
	spec := calib.PaperSpec()
	if len(rep.Results) != len(spec.Claims) {
		t.Fatalf("report has %d results for %d claims", len(rep.Results), len(spec.Claims))
	}
	for _, res := range rep.Results {
		if !res.Measured {
			t.Errorf("claim %s (metric %s) was not measured", res.Claim.ID, res.Claim.Metric)
		}
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		rep := calibrateSmall(t)
		var text, js bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.Bytes(), js.Bytes()
	}
	t1, j1 := render()
	t2, j2 := render()
	if !bytes.Equal(t1, t2) {
		t.Errorf("calibration text report not byte-deterministic:\n%s\nvs\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("calibration JSON report not byte-deterministic")
	}
}

// Suite.Measurements must produce exactly the non-representative metric
// keys the paper spec consumes — no typo'd key can slip through unnoticed.
func TestSuiteMeasurementKeysMatchSpec(t *testing.T) {
	suite, err := RunSuite(Options{Benchmarks: []string{"gcc", "gzip"}, Instructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	m := suite.Measurements()
	for _, c := range calib.PaperSpec().Claims {
		if len(c.Metric) >= len(calib.RepPrefix) && c.Metric[:len(calib.RepPrefix)] == calib.RepPrefix {
			continue // filled by the representative metrics run, not the suite
		}
		if _, ok := m[c.Metric]; !ok {
			t.Errorf("suite measurements missing spec metric %q", c.Metric)
		}
	}
}
