// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6), plus the extension studies listed in DESIGN.md.
// The harness runs each benchmark under the four machine configurations once
// and derives all figures from those results; cmd/bjexp renders them as text
// tables and bench_test.go reports the headline numbers as benchmark metrics.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/obs"
	"blackjack/internal/parallel"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
	"blackjack/internal/runcache"
	"blackjack/internal/sim"
	"blackjack/internal/stats"
)

// Options configure a suite run.
type Options struct {
	// Machine is the core configuration (Table 1 defaults).
	Machine pipeline.Config
	// Instructions is the committed-instruction budget per (benchmark, mode).
	// The paper runs 100M per benchmark on SimPoint regions; metrics of the
	// synthetic workloads stabilize well below the 300k default (DESIGN.md).
	Instructions int
	// Benchmarks to run (default: the full 16-benchmark suite in Figure 7
	// order).
	Benchmarks []string
	// Parallel bounds the worker count every batch entry point fans out
	// across: RunSuite over (benchmark, mode) pairs, campaigns over fault
	// sites, sweeps over their sweep points. <= 0 selects runtime.NumCPU().
	// Every figure and table is byte-identical at every worker count.
	Parallel int
	// CheckpointInterval, when positive, makes the fault-injection campaigns
	// (Ext-A, Ext-C, Ext-F, Ext-G, Ext-I) snapshot their fault-free warmup every
	// that-many cycles and fork each injection from the latest snapshot
	// preceding its fault's first activation (see sim.CampaignPlan). Every
	// figure is byte-identical at every interval; 0 runs every injection cold.
	CheckpointInterval int64
	// FastForward makes the fault-injection campaigns sampled
	// (sim.Config.FastForward): each injection's fault-free prefix runs on
	// the functional model and only its activation window is simulated
	// cycle-accurately. Outcome tables match full simulation; cycle counts
	// and latencies of fast-forwarded runs are window-relative, so figures
	// built on those columns are not byte-identical to full runs.
	FastForward bool
	// FFWarmup is the fast-forward warmup lead in committed instructions
	// (<= 0 selects sim.DefaultFFWarmup).
	FFWarmup int
	// Metrics, when non-nil, accumulates the experiment's metrics
	// (internal/obs): RunSuite exports every run's pipeline.Stats in
	// deterministic (benchmark, mode) order, and the campaign experiments
	// (Ext-A, Ext-G, Ext-I) merge their per-mode campaign registries in mode order.
	// Tables and figures are unaffected. Must not be shared by concurrent
	// experiment runs.
	Metrics *obs.Registry
	// Ctx, when non-nil, cancels the experiment: typically wired to SIGINT
	// via signal.NotifyContext so a long suite or campaign shuts down
	// gracefully, flushing journals and partial metrics. nil means
	// uncancellable.
	Ctx context.Context
	// Resilience tunes per-run isolation, wall-clock budgets, retries and
	// the hung-worker watchdog (see sim.Resilience). With Isolate set,
	// RunSuite quarantines failing (benchmark, mode) cells into
	// Suite.Failures instead of aborting, and campaign experiments
	// quarantine panicking or over-budget injections.
	Resilience sim.Resilience
	// JournalDir, when non-empty, makes every campaign experiment (Ext-A,
	// Ext-C, Ext-G, Ext-I) journal its completed runs to
	// <JournalDir>/<experiment>-<benchmark>-<variant>.journal and resume
	// from any journal already there: re-running after a crash or SIGINT
	// skips completed injections and reproduces identical tables.
	JournalDir string
	// Cache, when non-nil, is the content-addressable run cache
	// (internal/runcache) every experiment threads into its sim.Config:
	// suite cells, sweep points and campaign cells whose full identity
	// (program content, machine, mode, budget, site, execution plan) matches
	// a stored entry are served from the cache, so re-running a sweep after
	// a one-parameter edit re-executes only the affected cells. Cached and
	// live cells merge deterministically — every table and figure is
	// byte-identical to an uncached run.
	Cache *runcache.Store
	// CacheVerify is the trust-but-verify sampling fraction in [0,1]: that
	// deterministic fraction of cache hits is recomputed live and compared
	// against the stored outcome (divergences are counted on the store and
	// the entry healed). 0 trusts every hit; 1 recomputes all of them.
	CacheVerify float64
	// OnRun, when non-nil, observes every completed campaign run of the
	// fault-injection experiments (Ext-A, Ext-C, Ext-G, Ext-I) — live,
	// journal-replayed, and cache-served alike (see sim.Config.OnProgress).
	// Called from worker goroutines, so it must be concurrency-safe; it is
	// observational only and cannot change results. Job-level progress
	// streaming (internal/serve) hangs off this hook.
	OnRun func(sim.RunProgress)
}

// DefaultOptions returns the standard experiment setup.
func DefaultOptions() Options {
	return Options{
		Machine:      pipeline.DefaultConfig(),
		Instructions: 300_000,
		Benchmarks:   prog.BenchmarkNames(),
	}
}

func (o *Options) fill() {
	if o.Instructions <= 0 {
		o.Instructions = DefaultOptions().Instructions
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = prog.BenchmarkNames()
	}
	if o.Machine.FetchWidth == 0 {
		o.Machine = pipeline.DefaultConfig()
	}
}

// runCampaign runs one campaign of a campaign experiment, attaching a
// resumable journal named after the (experiment, benchmark, variant)
// identity when opts.JournalDir is set.
func runCampaign(opts Options, name string, cfg sim.Config, bench string, sites []fault.Site, iopts sim.InjectOptions) (*sim.CampaignSummary, error) {
	cfg.OnProgress = opts.OnRun
	if opts.JournalDir != "" {
		cj, err := sim.OpenCampaignJournal(filepath.Join(opts.JournalDir, name+".journal"), cfg, bench, sites, iopts)
		if err != nil {
			return nil, err
		}
		defer cj.Close()
		cfg.Journal = cj
	}
	return sim.Campaign(cfg, bench, sites, iopts)
}

// Suite holds one full run of all benchmarks under all four modes.
type Suite struct {
	Opts    Options
	Results map[string]map[pipeline.Mode]*sim.Result
	// Failures lists quarantined (benchmark, mode) cells — runs that
	// panicked, diverged from the golden model or exceeded their budget
	// while Opts.Resilience.Isolate was set. Benchmarks with any failed
	// cell are excluded from every figure; the remaining rows are
	// byte-identical to a suite run over the healthy benchmarks alone.
	Failures []SuiteFailure
}

// SuiteFailure is one quarantined suite cell.
type SuiteFailure struct {
	Benchmark string
	Mode      pipeline.Mode
	Err       string
	// Repro re-runs just the failed cell.
	Repro string
}

// complete returns the benchmarks every figure aggregates over: those whose
// four mode cells all ran. Without quarantined cells it is the full
// benchmark list.
func (s *Suite) complete() []string {
	if len(s.Failures) == 0 {
		return s.Opts.Benchmarks
	}
	bad := make(map[string]bool, len(s.Failures))
	for _, f := range s.Failures {
		bad[f.Benchmark] = true
	}
	out := make([]string, 0, len(s.Opts.Benchmarks))
	for _, b := range s.Opts.Benchmarks {
		if !bad[b] {
			out = append(out, b)
		}
	}
	return out
}

// FailuresTable renders the quarantined cells (empty table when none).
func (s *Suite) FailuresTable() *stats.Table {
	t := stats.NewTable("Quarantined suite cells (excluded from every figure)",
		"benchmark", "mode", "error", "repro")
	for _, f := range s.Failures {
		t.AddRow(f.Benchmark, f.Mode.String(), f.Err, f.Repro)
	}
	return t
}

// RunSuite executes the whole suite: every benchmark under every mode. The
// (benchmark, mode) pairs are independent machines and fan out across
// opts.Parallel workers; results are assembled in input order, so the suite
// — and every figure derived from it — is byte-identical at any worker
// count.
func RunSuite(opts Options) (*Suite, error) {
	opts.fill()
	// Generate each benchmark's program once; the mode runs share it
	// (programs are immutable once built — every machine copies the data
	// image at construction).
	progs, err := parallel.MapCtx(opts.Ctx, opts.Parallel, len(opts.Benchmarks), func(i int) (*isa.Program, error) {
		p, err := prog.Benchmark(opts.Benchmarks[i])
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", opts.Benchmarks[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	modes := sim.AllModes
	// A cell is one (benchmark, mode) run; with Resilience.Isolate set, a
	// failing cell is quarantined into a SuiteFailure instead of aborting
	// the fan-out (panics are already isolated by the parallel pool).
	type cell struct {
		res  *sim.Result
		fail *SuiteFailure
	}
	runCell := func(k int) (*sim.Result, error) {
		name, mode := opts.Benchmarks[k/len(modes)], modes[k%len(modes)]
		r, err := sim.RunProgram(sim.Config{
			Machine: opts.Machine, Mode: mode, MaxInstructions: opts.Instructions,
			Ctx: opts.Ctx, Resilience: opts.Resilience,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify,
		}, progs[k/len(modes)])
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		if !r.OutputMatches {
			return nil, fmt.Errorf("experiments: %s/%v: output diverged from golden model", name, mode)
		}
		return r, nil
	}
	cells, err := parallel.MapCtx(opts.Ctx, opts.Parallel, len(opts.Benchmarks)*len(modes), func(k int) (c cell, err error) {
		if opts.Resilience.Isolate {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
				if err != nil && (opts.Ctx == nil || opts.Ctx.Err() == nil) {
					name, mode := opts.Benchmarks[k/len(modes)], modes[k%len(modes)]
					c = cell{fail: &SuiteFailure{
						Benchmark: name, Mode: mode, Err: err.Error(),
						Repro: fmt.Sprintf("bjsim -bench %s -mode %s -n %d", name, mode, opts.Instructions),
					}}
					err = nil
				}
			}()
		}
		r, err := runCell(k)
		if err != nil {
			return cell{}, err
		}
		return cell{res: r}, nil
	})
	if err != nil {
		return nil, err
	}
	s := &Suite{Opts: opts, Results: make(map[string]map[pipeline.Mode]*sim.Result, len(opts.Benchmarks))}
	for i, name := range opts.Benchmarks {
		rs := make(map[pipeline.Mode]*sim.Result, len(modes))
		for j, mode := range modes {
			c := cells[i*len(modes)+j]
			if c.fail != nil {
				s.Failures = append(s.Failures, *c.fail)
				continue
			}
			rs[mode] = c.res
		}
		s.Results[name] = rs
	}
	if opts.Metrics != nil {
		// Export after assembly, in input order: the sums are identical at
		// every worker count because each run's stats are deterministic.
		// Quarantined cells contribute only the suite.quarantined counter,
		// so the healthy cells' metrics match a clean suite over them.
		runs := 0
		for _, c := range cells {
			if c.res != nil {
				runs++
			}
		}
		opts.Metrics.Counter("suite.runs").Add(uint64(runs))
		if len(s.Failures) > 0 {
			opts.Metrics.Counter("suite.quarantined").Add(uint64(len(s.Failures)))
		}
		for _, c := range cells {
			if c.res != nil {
				c.res.Stats.Export(opts.Metrics)
			}
		}
	}
	return s, nil
}

func (s *Suite) get(bench string, mode pipeline.Mode) *sim.Result {
	return s.Results[bench][mode]
}

// mean of f over the suite's complete benchmarks.
func (s *Suite) mean(f func(bench string) float64) float64 {
	bs := s.complete()
	vals := make([]float64, 0, len(bs))
	for _, b := range bs {
		vals = append(vals, f(b))
	}
	return stats.Mean(vals)
}

// Table1 renders the processor parameters (the paper's Table 1).
func Table1(machine pipeline.Config) *stats.Table {
	t := stats.NewTable("Table 1: Processor Parameters", "parameter", "value")
	t.AddRow("Out-of-order issue", fmt.Sprintf("%d instructions/cycle", machine.IssueWidth))
	t.AddRow("Active list", fmt.Sprintf("%d entries (%d-entry LSQ)", machine.ActiveList, machine.LSQ))
	t.AddRow("Issue queue", fmt.Sprintf("%d entries", machine.IssueQueue))
	t.AddRow("Caches", fmt.Sprintf("%dKB %d-way %d-cycle L1 (%d ports); %dMB %d-way unified L2",
		machine.Cache.L1SizeKB, machine.Cache.L1Ways, machine.Cache.L1Lat, machine.Units[5],
		machine.Cache.L2SizeKB/1024, machine.Cache.L2Ways))
	t.AddRow("Memory", fmt.Sprintf("%d cycles", machine.Cache.MemLat))
	t.AddRow("Int ALUs", fmt.Sprintf("%d int ALUs, %d int multipliers, %d int dividers",
		machine.Units[0], machine.Units[1], machine.Units[2]))
	t.AddRow("FP ALUs", fmt.Sprintf("%d FP ALUs, %d FP multipliers", machine.Units[3], machine.Units[4]))
	t.AddRow("Store Buffer", fmt.Sprintf("%d entries", machine.StoreBuffer))
	t.AddRow("LVQ", fmt.Sprintf("%d entries", machine.LVQ))
	t.AddRow("BOQ", fmt.Sprintf("%d entries", machine.BOQ))
	t.AddRow("Slack", fmt.Sprintf("%d instructions", machine.Slack))
	t.AddRow("DTQ", fmt.Sprintf("%d instructions", machine.DTQ))
	t.AddRow("Physical registers", fmt.Sprintf("%d", machine.PhysRegs))
	return t
}

// Fig4Row is one benchmark's coverage data point.
type Fig4Row struct {
	Benchmark string
	SRT       float64
	BlackJack float64
}

// Figure4 returns hard-error instruction coverage: total (Figure 4a, the
// area-weighted metric) and backend-only (Figure 4b).
func (s *Suite) Figure4() (total, backend []Fig4Row) {
	for _, b := range s.complete() {
		srt, bj := s.get(b, pipeline.ModeSRT).Stats, s.get(b, pipeline.ModeBlackJack).Stats
		total = append(total, Fig4Row{b, srt.Coverage(), bj.Coverage()})
		backend = append(backend, Fig4Row{b, srt.BackendDiversity(), bj.BackendDiversity()})
	}
	avg := func(rows []Fig4Row) Fig4Row {
		var a, c float64
		for _, r := range rows {
			a += r.SRT
			c += r.BlackJack
		}
		n := float64(len(rows))
		return Fig4Row{"average", a / n, c / n}
	}
	total = append(total, avg(total))
	backend = append(backend, avg(backend))
	return total, backend
}

func fig4Table(title string, rows []Fig4Row) *stats.Table {
	t := stats.NewTable(title, "benchmark", "SRT(%)", "BlackJack(%)")
	for _, r := range rows {
		t.AddRow(r.Benchmark, stats.Pct(r.SRT), stats.Pct(r.BlackJack))
	}
	return t
}

// Figure4aTable renders coverage of the entire pipeline.
func (s *Suite) Figure4aTable() *stats.Table {
	total, _ := s.Figure4()
	return fig4Table("Figure 4a: Hard-error instruction coverage, entire pipeline", total)
}

// Figure4bTable renders backend-only coverage.
func (s *Suite) Figure4bTable() *stats.Table {
	_, backend := s.Figure4()
	return fig4Table("Figure 4b: Hard-error instruction coverage, backend only", backend)
}

// Fig5Row is one benchmark's interference data point.
type Fig5Row struct {
	Benchmark string
	TT        float64 // trailing-trailing, fraction of issue cycles
	LT        float64 // leading-trailing
}

// Figure5 returns the interference breakdown under BlackJack.
func (s *Suite) Figure5() []Fig5Row {
	bs := s.complete()
	rows := make([]Fig5Row, 0, len(bs)+1)
	var tt, lt float64
	for _, b := range bs {
		st := s.get(b, pipeline.ModeBlackJack).Stats
		rows = append(rows, Fig5Row{b, st.TTInterferenceFrac(), st.LTInterferenceFrac()})
		tt += st.TTInterferenceFrac()
		lt += st.LTInterferenceFrac()
	}
	n := float64(len(bs))
	return append(rows, Fig5Row{"average", tt / n, lt / n})
}

// Figure5Table renders the interference breakdown.
func (s *Suite) Figure5Table() *stats.Table {
	t := stats.NewTable("Figure 5: Issue cycles with interference violating spatial diversity",
		"benchmark", "trailing-trailing(%)", "leading-trailing(%)")
	for _, r := range s.Figure5() {
		t.AddRow(r.Benchmark, stats.Pct(r.TT), stats.Pct(r.LT))
	}
	return t
}

// Fig6Row is one benchmark's issue-burstiness data point.
type Fig6Row struct {
	Benchmark string
	SingleCtx float64 // fraction of issue cycles issuing from one context
}

// Figure6 returns the fraction of issue cycles in which all issued
// instructions came from the same context (BlackJack runs).
func (s *Suite) Figure6() []Fig6Row {
	bs := s.complete()
	rows := make([]Fig6Row, 0, len(bs)+1)
	var sum float64
	for _, b := range bs {
		st := s.get(b, pipeline.ModeBlackJack).Stats
		rows = append(rows, Fig6Row{b, st.SingleContextFrac()})
		sum += st.SingleContextFrac()
	}
	return append(rows, Fig6Row{"average", sum / float64(len(bs))})
}

// Figure6Table renders issue burstiness.
func (s *Suite) Figure6Table() *stats.Table {
	t := stats.NewTable("Figure 6: Issue cycles with all instructions from one context",
		"benchmark", "single-context(%)")
	for _, r := range s.Figure6() {
		t.AddRow(r.Benchmark, stats.Pct(r.SingleCtx))
	}
	return t
}

// Fig7Row is one benchmark's normalized performance data point.
type Fig7Row struct {
	Benchmark   string
	SRT         float64 // performance normalized to single-thread (1.0 = equal)
	BlackJackNS float64
	BlackJack   float64
}

// Figure7 returns performance of SRT, BlackJack-NS and BlackJack normalized
// to the non-fault-tolerant single thread, in the suite's (increasing-IPC)
// benchmark order.
func (s *Suite) Figure7() []Fig7Row {
	bs := s.complete()
	rows := make([]Fig7Row, 0, len(bs)+1)
	var a, b2, c float64
	for _, b := range bs {
		single := s.get(b, pipeline.ModeSingle)
		row := Fig7Row{
			Benchmark:   b,
			SRT:         s.get(b, pipeline.ModeSRT).NormalizedPerf(single),
			BlackJackNS: s.get(b, pipeline.ModeBlackJackNS).NormalizedPerf(single),
			BlackJack:   s.get(b, pipeline.ModeBlackJack).NormalizedPerf(single),
		}
		rows = append(rows, row)
		a += row.SRT
		b2 += row.BlackJackNS
		c += row.BlackJack
	}
	n := float64(len(bs))
	return append(rows, Fig7Row{"average", a / n, b2 / n, c / n})
}

// Figure7Table renders normalized performance.
func (s *Suite) Figure7Table() *stats.Table {
	t := stats.NewTable("Figure 7: Performance normalized to single thread (benchmarks in increasing-IPC order)",
		"benchmark", "IPC(1T)", "SRT(%)", "BlackJack-NS(%)", "BlackJack(%)")
	rows := s.Figure7()
	for _, r := range rows {
		ipc := ""
		if r.Benchmark != "average" {
			ipc = stats.F2(s.get(r.Benchmark, pipeline.ModeSingle).Stats.IPC())
		}
		t.AddRow(r.Benchmark, ipc, stats.Pct(r.SRT), stats.Pct(r.BlackJackNS), stats.Pct(r.BlackJack))
	}
	return t
}

// Headline aggregates the numbers quoted in the paper's abstract and
// conclusions for quick comparison.
type Headline struct {
	SRTCoverage     float64 // paper: 0.34
	BJCoverage      float64 // paper: 0.97
	SRTSlowdown     float64 // paper: 0.21
	BJSlowdown      float64 // paper: 0.33
	BJOverSRT       float64 // paper: 0.15
	AvgSingleCtx    float64 // paper: 0.70
	AvgTTInterf     float64 // paper: 0.005
	AvgLTInterf     float64 // paper: 0.023
	ShuffleSlowdown float64 // BJ vs BJ-NS; paper: 0.05
}

// Headline computes the aggregate comparison numbers.
func (s *Suite) Headline() Headline {
	var h Headline
	h.SRTCoverage = s.mean(func(b string) float64 { return s.get(b, pipeline.ModeSRT).Stats.Coverage() })
	h.BJCoverage = s.mean(func(b string) float64 { return s.get(b, pipeline.ModeBlackJack).Stats.Coverage() })
	h.SRTSlowdown = 1 - s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeSRT).NormalizedPerf(s.get(b, pipeline.ModeSingle))
	})
	h.BJSlowdown = 1 - s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJack).NormalizedPerf(s.get(b, pipeline.ModeSingle))
	})
	h.BJOverSRT = 1 - s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJack).NormalizedPerf(s.get(b, pipeline.ModeSRT))
	})
	h.ShuffleSlowdown = 1 - s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJack).NormalizedPerf(s.get(b, pipeline.ModeBlackJackNS))
	})
	h.AvgSingleCtx = s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJack).Stats.SingleContextFrac()
	})
	h.AvgTTInterf = s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJack).Stats.TTInterferenceFrac()
	})
	h.AvgLTInterf = s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJack).Stats.LTInterferenceFrac()
	})
	return h
}

// HeadlineTable renders the paper-vs-measured headline comparison.
func (s *Suite) HeadlineTable() *stats.Table {
	h := s.Headline()
	t := stats.NewTable("Headline paper-vs-measured comparison", "metric", "paper", "measured")
	t.AddRow("SRT coverage (%)", "34", stats.Pct(h.SRTCoverage))
	t.AddRow("BlackJack coverage (%)", "97", stats.Pct(h.BJCoverage))
	t.AddRow("SRT slowdown vs single (%)", "21", stats.Pct(h.SRTSlowdown))
	t.AddRow("BlackJack slowdown vs single (%)", "33", stats.Pct(h.BJSlowdown))
	t.AddRow("BlackJack slowdown vs SRT (%)", "15", stats.Pct(h.BJOverSRT))
	t.AddRow("Shuffle (split) cost vs BlackJack-NS (%)", "5", stats.Pct(h.ShuffleSlowdown))
	t.AddRow("Single-context issue cycles (%)", "70", stats.Pct(h.AvgSingleCtx))
	t.AddRow("Trailing-trailing interference (%)", "0.5", stats.Pct(h.AvgTTInterf))
	t.AddRow("Leading-trailing interference (%)", "2.3", stats.Pct(h.AvgLTInterf))
	return t
}

// ExtARow summarizes a fault-injection campaign for one mode.
type ExtARow struct {
	Mode      pipeline.Mode
	Sites     int
	Activated int
	Detected  int
	Silent    int
	Benign    int
	Wedged    int
	// Quarantined counts runs the resilience layer excluded (panic or
	// exhausted budget); their repro commands are on the campaign summary.
	Quarantined int
	Rate        float64 // detected / (detected+silent) among activated sites
	// AvgDetectLatency is the mean cycles from a fault's first activation to
	// its first detection, over detected runs (-1 when none).
	AvgDetectLatency float64
}

// ExtAFaultInjection runs the standard fault campaign on every mode
// (experiment Ext-A): the empirical validation of the analytic coverage
// metric.
func ExtAFaultInjection(opts Options, benchmark string) ([]ExtARow, error) {
	opts.fill()
	sites := sim.StandardSites(opts.Machine)
	var rows []ExtARow
	for _, mode := range []pipeline.Mode{pipeline.ModeSingle, pipeline.ModeSRT, pipeline.ModeBlackJack} {
		// The mode campaigns run one after another, so they can share the
		// experiment registry directly (Campaign merges its per-worker
		// registries into cfg.Metrics after its own fan-out completes).
		cfg := sim.Config{
			Machine: opts.Machine, Mode: mode, MaxInstructions: opts.Instructions,
			Parallel: opts.Parallel, CheckpointInterval: opts.CheckpointInterval,
			FastForward: opts.FastForward, FFWarmup: opts.FFWarmup,
			Metrics: opts.Metrics, Ctx: opts.Ctx, Resilience: opts.Resilience,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify,
		}
		sum, err := runCampaign(opts, fmt.Sprintf("exta-%s-%s", benchmark, mode), cfg,
			benchmark, sites, sim.InjectOptions{SplitPayload: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, extARowFromSummary(mode, len(sites), sum))
	}
	return rows, nil
}

// extARowFromSummary aggregates one campaign summary into an ExtARow (shared
// by the hard-fault Ext-A and soft-error Ext-G experiments).
func extARowFromSummary(mode pipeline.Mode, sites int, sum *sim.CampaignSummary) ExtARow {
	row := ExtARow{Mode: mode, Sites: sites, Activated: sum.ActiveRuns, Rate: sum.DetectionRate()}
	var latSum float64
	var latN int
	for _, r := range sum.Results {
		switch r.Outcome {
		case sim.OutcomeDetected:
			row.Detected++
			if r.DetectionLatency >= 0 {
				latSum += float64(r.DetectionLatency)
				latN++
			}
		case sim.OutcomeSilent:
			row.Silent++
		case sim.OutcomeBenign:
			row.Benign++
		case sim.OutcomeWedged:
			row.Wedged++
		case sim.OutcomeQuarantined:
			row.Quarantined++
		}
	}
	row.AvgDetectLatency = -1
	if latN > 0 {
		row.AvgDetectLatency = latSum / float64(latN)
	}
	return row
}

// ExtATable renders the campaign summary.
func ExtATable(rows []ExtARow, benchmark string) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ext-A: Empirical fault-injection outcomes on %q (split payload RAMs)", benchmark),
		"mode", "sites", "activated", "detected", "silent", "benign", "wedged", "quarantined", "detection-rate(%)", "avg-latency(cycles)")
	for _, r := range rows {
		lat := "-"
		if r.AvgDetectLatency >= 0 {
			lat = fmt.Sprintf("%.0f", r.AvgDetectLatency)
		}
		t.AddRow(r.Mode.String(), fmt.Sprint(r.Sites), fmt.Sprint(r.Activated),
			fmt.Sprint(r.Detected), fmt.Sprint(r.Silent), fmt.Sprint(r.Benign),
			fmt.Sprint(r.Wedged), fmt.Sprint(r.Quarantined), stats.Pct(r.Rate), lat)
	}
	return t
}

// ExtBTable decomposes BlackJack's slowdown over SRT (experiment Ext-B): the
// one-packet-per-cycle fetch cost (SRT to BlackJack-NS) versus the shuffle
// packet-splitting cost (BlackJack-NS to BlackJack). BlackJack-NS is the
// paper's proxy for an ideal no-split shuffle (Section 6.2).
func (s *Suite) ExtBTable() *stats.Table {
	t := stats.NewTable("Ext-B: Slowdown decomposition (ideal-shuffle bound)",
		"benchmark", "SRT->BJ-NS(%)", "BJ-NS->BJ(%)", "SRT->BJ total(%)")
	bs := s.complete()
	var g1, g2, g3 float64
	for _, b := range bs {
		srt := s.get(b, pipeline.ModeSRT)
		ns := s.get(b, pipeline.ModeBlackJackNS)
		bj := s.get(b, pipeline.ModeBlackJack)
		d1 := 1 - ns.NormalizedPerf(srt)
		d2 := 1 - bj.NormalizedPerf(ns)
		d3 := 1 - bj.NormalizedPerf(srt)
		t.AddRow(b, stats.Pct(d1), stats.Pct(d2), stats.Pct(d3))
		g1 += d1
		g2 += d2
		g3 += d3
	}
	n := float64(len(bs))
	t.AddRow("average", stats.Pct(g1/n), stats.Pct(g2/n), stats.Pct(g3/n))
	return t
}

// ExtCRow compares shared vs split payload RAM escapes.
type ExtCRow struct {
	Benchmark                    string
	SharedSilent, SharedDetected int
	SplitSilent, SplitDetected   int
}

// ExtCPayloadRAM sweeps payload-RAM fault slots under shared and split
// payload RAMs (experiment Ext-C, paper Section 4.5).
func ExtCPayloadRAM(opts Options, benchmarks []string) ([]ExtCRow, error) {
	opts.fill()
	if len(benchmarks) == 0 {
		benchmarks = []string{"gzip", "equake"}
	}
	var sites []fault.Site
	for slot := 0; slot < opts.Machine.IssueQueue; slot++ {
		sites = append(sites, fault.Site{
			Class: fault.PayloadRAM, Slot: slot, Thread: 0, Field: fault.FieldImm, BitMask: 2,
		})
	}
	// The benchmark loop stays serial: each Campaign already fans its sites
	// out across opts.Parallel workers, and nesting pools would oversubscribe.
	var rows []ExtCRow
	for _, b := range benchmarks {
		cfg := sim.Config{
			Machine: opts.Machine, Mode: pipeline.ModeBlackJack, MaxInstructions: opts.Instructions,
			Parallel: opts.Parallel, CheckpointInterval: opts.CheckpointInterval,
			FastForward: opts.FastForward, FFWarmup: opts.FFWarmup,
			Ctx: opts.Ctx, Resilience: opts.Resilience,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify,
		}
		shared, err := runCampaign(opts, "extc-"+b+"-shared", cfg, b, sites, sim.InjectOptions{SplitPayload: false})
		if err != nil {
			return nil, err
		}
		split, err := runCampaign(opts, "extc-"+b+"-split", cfg, b, sites, sim.InjectOptions{SplitPayload: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExtCRow{
			Benchmark:      b,
			SharedSilent:   shared.Counts[sim.OutcomeSilent],
			SharedDetected: shared.Counts[sim.OutcomeDetected],
			SplitSilent:    split.Counts[sim.OutcomeSilent],
			SplitDetected:  split.Counts[sim.OutcomeDetected],
		})
	}
	return rows, nil
}

// ExtCTable renders the payload-RAM comparison.
func ExtCTable(rows []ExtCRow) *stats.Table {
	t := stats.NewTable("Ext-C: Payload-RAM faults, shared vs split payload RAMs (per-slot campaign)",
		"benchmark", "shared detected", "shared silent", "split detected", "split silent")
	for _, r := range rows {
		t.AddRow(r.Benchmark, fmt.Sprint(r.SharedDetected), fmt.Sprint(r.SharedSilent),
			fmt.Sprint(r.SplitDetected), fmt.Sprint(r.SplitSilent))
	}
	return t
}

// ExtDRow is one slack/DTQ configuration's data point.
type ExtDRow struct {
	Param     string
	Value     int
	Perf      float64 // normalized to single thread
	Coverage  float64
	TTInterf  float64
	Benchmark string
}

// ExtDSweep sweeps the slack target and the DTQ size under BlackJack
// (experiment Ext-D).
func ExtDSweep(opts Options, benchmark string, slacks, dtqs []int) ([]ExtDRow, error) {
	opts.fill()
	if len(slacks) == 0 {
		slacks = []int{64, 128, 256, 512, 1024}
	}
	if len(dtqs) == 0 {
		dtqs = []int{128, 256, 512, 1024}
	}
	sort.Ints(slacks)
	sort.Ints(dtqs)

	p, err := prog.Benchmark(benchmark)
	if err != nil {
		return nil, err
	}
	baseline, err := sim.RunProgram(sim.Config{
		Machine: opts.Machine, Mode: pipeline.ModeSingle, MaxInstructions: opts.Instructions,
		Cache: opts.Cache, CacheVerify: opts.CacheVerify,
	}, p)
	if err != nil {
		return nil, err
	}

	// Flatten both sweeps into one point list and fan out: every point is an
	// independent machine on the shared program.
	type point struct {
		param string
		value int
	}
	points := make([]point, 0, len(slacks)+len(dtqs))
	for _, sl := range slacks {
		points = append(points, point{"slack", sl})
	}
	for _, d := range dtqs {
		points = append(points, point{"dtq", d})
	}
	rows, err := parallel.MapCtx(opts.Ctx, opts.Parallel, len(points), func(i int) (ExtDRow, error) {
		machine := opts.Machine
		if points[i].param == "slack" {
			machine.Slack = points[i].value
		} else {
			machine.DTQ = points[i].value
		}
		r, err := sim.RunProgram(sim.Config{
			Machine: machine, Mode: pipeline.ModeBlackJack, MaxInstructions: opts.Instructions,
			Ctx: opts.Ctx, Resilience: opts.Resilience,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify,
		}, p)
		if err != nil {
			return ExtDRow{}, err
		}
		return ExtDRow{
			Param: points[i].param, Value: points[i].value, Benchmark: benchmark,
			Perf:     r.NormalizedPerf(baseline),
			Coverage: r.Stats.Coverage(),
			TTInterf: r.Stats.TTInterferenceFrac(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ExtDTable renders the sweep.
func ExtDTable(rows []ExtDRow) *stats.Table {
	t := stats.NewTable("Ext-D: Slack / DTQ sensitivity (BlackJack)",
		"benchmark", "param", "value", "perf-vs-1T(%)", "coverage(%)", "tt-interference(%)")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Param, fmt.Sprint(r.Value),
			stats.Pct(r.Perf), stats.Pct(r.Coverage), stats.Pct(r.TTInterf))
	}
	return t
}

// ExtERow compares baseline BlackJack with the merging-shuffle extension.
type ExtERow struct {
	Benchmark   string
	BasePerf    float64 // normalized to single thread
	MergePerf   float64
	BaseCov     float64
	MergeCov    float64
	Merged      uint64 // packet pairs combined
	PacketsBase uint64
	PacketsMrg  uint64
}

// ExtEMergingShuffle evaluates the paper's Section 6.2 future-work
// suggestion: a shuffle that uses the DTQ's inter-packet dependence
// information to combine adjacent independent packets, recovering trailing
// fetch bandwidth lost to the one-packet-per-cycle rule.
func ExtEMergingShuffle(opts Options, benchmarks []string) ([]ExtERow, error) {
	opts.fill()
	if len(benchmarks) == 0 {
		benchmarks = []string{"equake", "gcc", "gzip", "sixtrack"}
	}
	// Fan out over (benchmark, variant) runs — three independent machines per
	// benchmark — then assemble rows from the ordered results.
	const variants = 3 // single, BlackJack, BlackJack+merge
	runs, err := parallel.MapCtx(opts.Ctx, opts.Parallel, len(benchmarks)*variants, func(k int) (*sim.Result, error) {
		p, err := prog.Benchmark(benchmarks[k/variants])
		if err != nil {
			return nil, err
		}
		machine, mode := opts.Machine, pipeline.ModeBlackJack
		switch k % variants {
		case 0:
			mode = pipeline.ModeSingle
		case 2:
			machine.MergePackets = true
		}
		return sim.RunProgram(sim.Config{
			Machine: machine, Mode: mode, MaxInstructions: opts.Instructions,
			Ctx: opts.Ctx, Resilience: opts.Resilience,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify,
		}, p)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ExtERow, 0, len(benchmarks))
	for i, b := range benchmarks {
		single, base, merged := runs[i*variants], runs[i*variants+1], runs[i*variants+2]
		rows = append(rows, ExtERow{
			Benchmark:   b,
			BasePerf:    base.NormalizedPerf(single),
			MergePerf:   merged.NormalizedPerf(single),
			BaseCov:     base.Stats.Coverage(),
			MergeCov:    merged.Stats.Coverage(),
			Merged:      merged.Stats.MergedPackets,
			PacketsBase: base.Stats.TrailingPackets,
			PacketsMrg:  merged.Stats.TrailingPackets,
		})
	}
	return rows, nil
}

// ExtETable renders the merging-shuffle comparison.
func ExtETable(rows []ExtERow) *stats.Table {
	t := stats.NewTable("Ext-E: Merging shuffle (Section 6.2 extension) vs baseline BlackJack",
		"benchmark", "perf base(%)", "perf merge(%)", "cov base(%)", "cov merge(%)", "pairs merged", "trail packets base", "trail packets merge")
	for _, r := range rows {
		t.AddRow(r.Benchmark, stats.Pct(r.BasePerf), stats.Pct(r.MergePerf),
			stats.Pct(r.BaseCov), stats.Pct(r.MergeCov),
			fmt.Sprint(r.Merged), fmt.Sprint(r.PacketsBase), fmt.Sprint(r.PacketsMrg))
	}
	return t
}

// ExtFRow summarizes a multi-fault campaign round.
type ExtFRow struct {
	Faults    int
	Runs      int
	Activated int
	Detected  int
	Silent    int
	Wedged    int
}

// ExtFMultiFault injects combinations of multiple uncorrelated hard faults
// simultaneously (paper Section 4.5: "BlackJack can be effective for
// multiple uncorrelated errors") and classifies outcomes under BlackJack.
func ExtFMultiFault(opts Options, benchmark string, maxFaults int) ([]ExtFRow, error) {
	opts.fill()
	if maxFaults <= 0 {
		maxFaults = 3
	}
	all := sim.StandardSites(opts.Machine)
	p, err := prog.Benchmark(benchmark)
	if err != nil {
		return nil, err
	}
	// Deterministic combinations: consecutive windows over the standard site
	// list, stride chosen so the k faults land in distinct classes. Flatten
	// every (k, start) window into one work list and fan out; rows aggregate
	// the ordered results per fault count afterwards.
	type window struct{ faults, start int }
	var windows []window
	for k := 1; k <= maxFaults; k++ {
		for start := 0; start+k <= len(all); start += k + 2 {
			windows = append(windows, window{k, start})
		}
	}
	cfg := sim.Config{
		Machine: opts.Machine, Mode: pipeline.ModeBlackJack, MaxInstructions: opts.Instructions,
		CheckpointInterval: opts.CheckpointInterval,
		FastForward:        opts.FastForward, FFWarmup: opts.FFWarmup,
		Ctx: opts.Ctx, Resilience: opts.Resilience,
		Cache: opts.Cache, CacheVerify: opts.CacheVerify,
	}
	// Every window is a contiguous range of the same site list, so with
	// checkpointing enabled all of them fork from one shared warmup plan
	// instead of each replaying the fault-free prefix cold.
	var pl *sim.CampaignPlan
	if opts.CheckpointInterval > 0 {
		pl, err = sim.NewCampaignPlan(cfg, p, all, sim.InjectOptions{SplitPayload: true})
		if err != nil {
			return nil, err
		}
	}
	results, err := parallel.MapCtx(opts.Ctx, opts.Parallel, len(windows), func(i int) (sim.InjectionResult, error) {
		w := windows[i]
		if pl != nil {
			return pl.InjectRange(w.start, w.start+w.faults)
		}
		return sim.InjectProgramMulti(cfg, p, all[w.start:w.start+w.faults], sim.InjectOptions{SplitPayload: true})
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ExtFRow, maxFaults)
	for k := 1; k <= maxFaults; k++ {
		rows[k-1].Faults = k
	}
	for i, r := range results {
		row := &rows[windows[i].faults-1]
		row.Runs++
		if r.Activations > 0 {
			row.Activated++
		}
		switch r.Outcome {
		case sim.OutcomeDetected:
			row.Detected++
		case sim.OutcomeSilent:
			row.Silent++
		case sim.OutcomeWedged:
			row.Wedged++
		}
	}
	return rows, nil
}

// ExtFTable renders the multi-fault campaign.
func ExtFTable(rows []ExtFRow, benchmark string) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ext-F: Multiple uncorrelated hard faults on %q (BlackJack)", benchmark),
		"faults", "runs", "activated", "detected", "silent", "wedged")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Faults), fmt.Sprint(r.Runs), fmt.Sprint(r.Activated),
			fmt.Sprint(r.Detected), fmt.Sprint(r.Silent), fmt.Sprint(r.Wedged))
	}
	return t
}

// ExtGSoftErrors runs the transient (soft-error) campaign per mode
// (experiment Ext-G): one-shot corruptions that temporal redundancy alone
// catches. Expected shape: the unprotected machine corrupts silently or is
// lucky (wrong-path hits are benign); SRT and BlackJack detect every
// activated transient.
func ExtGSoftErrors(opts Options, benchmark string) ([]ExtARow, error) {
	opts.fill()
	sites := sim.TransientSites(opts.Machine, 20)
	var rows []ExtARow
	for _, mode := range []pipeline.Mode{pipeline.ModeSingle, pipeline.ModeSRT, pipeline.ModeBlackJack} {
		cfg := sim.Config{
			Machine: opts.Machine, Mode: mode, MaxInstructions: opts.Instructions,
			Parallel: opts.Parallel, CheckpointInterval: opts.CheckpointInterval,
			FastForward: opts.FastForward, FFWarmup: opts.FFWarmup,
			Metrics: opts.Metrics, Ctx: opts.Ctx, Resilience: opts.Resilience,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify,
		}
		sum, err := runCampaign(opts, fmt.Sprintf("extg-%s-%s", benchmark, mode), cfg,
			benchmark, sites, sim.InjectOptions{SplitPayload: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, extARowFromSummary(mode, len(sites), sum))
	}
	return rows, nil
}

// ExtGTable renders the soft-error campaign.
func ExtGTable(rows []ExtARow, benchmark string) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ext-G: Transient (soft-error) injection on %q — one corruption per site", benchmark),
		"mode", "sites", "activated", "detected", "silent", "benign", "wedged", "quarantined", "detection-rate(%)", "avg-latency(cycles)")
	for _, r := range rows {
		lat := "-"
		if r.AvgDetectLatency >= 0 {
			lat = fmt.Sprintf("%.0f", r.AvgDetectLatency)
		}
		t.AddRow(r.Mode.String(), fmt.Sprint(r.Sites), fmt.Sprint(r.Activated),
			fmt.Sprint(r.Detected), fmt.Sprint(r.Silent), fmt.Sprint(r.Benign),
			fmt.Sprint(r.Wedged), fmt.Sprint(r.Quarantined), stats.Pct(r.Rate), lat)
	}
	return t
}

// ExtHRow is one seed set's aggregate metrics over the chosen benchmarks.
type ExtHRow struct {
	SeedOffset uint64
	SRTCov     float64
	BJCov      float64
	SRTPerf    float64 // normalized to single thread
	BJPerf     float64
}

// ExtHSeedRobustness re-runs the headline metrics with the workload
// generator reseeded per offset: the conclusions must not be artifacts of one
// random instruction stream. Each run's seed is derived from its (benchmark,
// offset) identity via prog.DeriveSeed — never from shared mutable state —
// so an offset means the same instruction stream at any worker count and in
// any execution order, and distinct (benchmark, offset) pairs never alias
// (the suite's base seeds are consecutive; naive base+offset arithmetic
// would collide one benchmark's offset stream with a neighbour's baseline).
func ExtHSeedRobustness(opts Options, offsets []uint64) ([]ExtHRow, error) {
	opts.fill()
	if len(offsets) == 0 {
		offsets = []uint64{0, 10_000, 20_000}
	}
	modes := []pipeline.Mode{pipeline.ModeSingle, pipeline.ModeSRT, pipeline.ModeBlackJack}
	// One flattened work list over (offset, benchmark): each item generates
	// its reseeded program and runs the three modes on it.
	type cell struct{ res [3]*sim.Result }
	nb := len(opts.Benchmarks)
	cells, err := parallel.MapCtx(opts.Ctx, opts.Parallel, len(offsets)*nb, func(k int) (cell, error) {
		off, bench := offsets[k/nb], opts.Benchmarks[k%nb]
		p, err := prog.SeededBenchmark(bench, off)
		if err != nil {
			return cell{}, err
		}
		var c cell
		for i, mode := range modes {
			r, err := sim.RunProgram(sim.Config{
				Machine: opts.Machine, Mode: mode, MaxInstructions: opts.Instructions,
				Ctx: opts.Ctx, Resilience: opts.Resilience,
				Cache: opts.Cache, CacheVerify: opts.CacheVerify,
			}, p)
			if err != nil {
				return cell{}, err
			}
			if !r.OutputMatches {
				return cell{}, fmt.Errorf("experiments: %s seed+%d/%v diverged from golden model", bench, off, mode)
			}
			c.res[i] = r
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ExtHRow, 0, len(offsets))
	for oi, off := range offsets {
		row := ExtHRow{SeedOffset: off}
		for bi := 0; bi < nb; bi++ {
			res := cells[oi*nb+bi].res
			row.SRTCov += res[1].Stats.Coverage()
			row.BJCov += res[2].Stats.Coverage()
			row.SRTPerf += res[1].NormalizedPerf(res[0])
			row.BJPerf += res[2].NormalizedPerf(res[0])
		}
		f := float64(nb)
		row.SRTCov /= f
		row.BJCov /= f
		row.SRTPerf /= f
		row.BJPerf /= f
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtHTable renders the seed-robustness study.
func ExtHTable(rows []ExtHRow, benchmarks []string) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ext-H: Seed robustness over %v", benchmarks),
		"seed-offset", "SRT cov(%)", "BJ cov(%)", "SRT perf(%)", "BJ perf(%)")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.SeedOffset), stats.Pct(r.SRTCov), stats.Pct(r.BJCov),
			stats.Pct(r.SRTPerf), stats.Pct(r.BJPerf))
	}
	return t
}

// ExtIRow is one (fault kind, mode) campaign outcome of the fault-model
// diversity study.
type ExtIRow struct {
	Kind fault.Kind
	ExtARow
}

// ExtISoftIntermittent runs the fault-model diversity study (experiment
// Ext-I): the canonical campaign of every non-permanent fault kind —
// one-shot transients, duty-cycled intermittents, multi-bit stuck-at/flip
// patterns, and control-flow errors — under the unprotected machine, SRT,
// and BlackJack. The paper targets hard errors (Section 3); this table shows
// the same temporal-redundancy machinery degrades gracefully across the
// soft and intermittent regimes: SRT and BlackJack detect every activated
// fault the comparison points can see, and the unprotected machine's silent
// column is the exposure being bought down.
func ExtISoftIntermittent(opts Options, benchmark string) ([]ExtIRow, error) {
	opts.fill()
	kinds := []fault.Kind{
		fault.KindTransient, fault.KindIntermittent,
		fault.KindMultiBit, fault.KindControlFlow,
	}
	var rows []ExtIRow
	for _, kind := range kinds {
		sites, err := sim.SitesForKind(opts.Machine, kind)
		if err != nil {
			return nil, err
		}
		for _, mode := range []pipeline.Mode{pipeline.ModeSingle, pipeline.ModeSRT, pipeline.ModeBlackJack} {
			cfg := sim.Config{
				Machine: opts.Machine, Mode: mode, MaxInstructions: opts.Instructions,
				Parallel: opts.Parallel, CheckpointInterval: opts.CheckpointInterval,
				FastForward: opts.FastForward, FFWarmup: opts.FFWarmup,
				Metrics: opts.Metrics, Ctx: opts.Ctx, Resilience: opts.Resilience,
				Cache: opts.Cache, CacheVerify: opts.CacheVerify,
			}
			sum, err := runCampaign(opts, fmt.Sprintf("exti-%s-%v-%s", benchmark, kind, mode), cfg,
				benchmark, sites, sim.InjectOptions{SplitPayload: true})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ExtIRow{Kind: kind, ExtARow: extARowFromSummary(mode, len(sites), sum)})
		}
	}
	return rows, nil
}

// ExtITable renders the fault-model diversity study.
func ExtITable(rows []ExtIRow, benchmark string) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ext-I: Fault-model diversity on %q — SRT vs BlackJack beyond hard errors", benchmark),
		"kind", "mode", "sites", "activated", "detected", "silent", "benign", "wedged", "quarantined", "detection-rate(%)", "avg-latency(cycles)")
	for _, r := range rows {
		lat := "-"
		if r.AvgDetectLatency >= 0 {
			lat = fmt.Sprintf("%.0f", r.AvgDetectLatency)
		}
		t.AddRow(r.Kind.String(), r.Mode.String(), fmt.Sprint(r.Sites), fmt.Sprint(r.Activated),
			fmt.Sprint(r.Detected), fmt.Sprint(r.Silent), fmt.Sprint(r.Benign),
			fmt.Sprint(r.Wedged), fmt.Sprint(r.Quarantined), stats.Pct(r.Rate), lat)
	}
	return t
}
