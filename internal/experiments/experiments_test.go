package experiments

import (
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"blackjack/internal/pipeline"
	"blackjack/internal/sim"
)

// smallOpts keeps unit-test runtimes modest; the real harness uses 300k.
func smallOpts(benchmarks ...string) Options {
	return Options{
		Machine:      pipeline.DefaultConfig(),
		Instructions: 4000,
		Benchmarks:   benchmarks,
	}
}

func TestTable1ListsEveryParameter(t *testing.T) {
	out := Table1(pipeline.DefaultConfig()).String()
	for _, want := range []string{
		"4 instructions/cycle", "512 entries (64-entry LSQ)", "32 entries",
		"64KB 4-way 2-cycle", "350 cycles", "4 int ALUs, 2 int multipliers, 2 int dividers",
		"2 FP ALUs, 2 FP multipliers", "64 entries", "128 entries", "96 entries",
		"256 instructions", "1024 instructions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteFiguresOnSubset(t *testing.T) {
	s, err := RunSuite(smallOpts("gzip", "equake"))
	if err != nil {
		t.Fatal(err)
	}
	total, backend := s.Figure4()
	if len(total) != 3 || len(backend) != 3 { // 2 benchmarks + average
		t.Fatalf("fig4 rows = %d/%d, want 3/3", len(total), len(backend))
	}
	for _, r := range total[:2] {
		if r.BlackJack <= r.SRT {
			t.Errorf("%s: BlackJack coverage %.3f <= SRT %.3f", r.Benchmark, r.BlackJack, r.SRT)
		}
		if r.BlackJack < 0.80 {
			t.Errorf("%s: BlackJack coverage %.3f too low", r.Benchmark, r.BlackJack)
		}
	}
	if rows := s.Figure5(); len(rows) != 3 {
		t.Errorf("fig5 rows = %d", len(rows))
	}
	if rows := s.Figure6(); len(rows) != 3 {
		t.Errorf("fig6 rows = %d", len(rows))
	}
	f7 := s.Figure7()
	if len(f7) != 3 {
		t.Fatalf("fig7 rows = %d", len(f7))
	}
	for _, r := range f7[:2] {
		if !(r.SRT >= r.BlackJackNS && r.BlackJackNS >= r.BlackJack) {
			t.Errorf("%s: perf ordering violated: srt %.3f bjns %.3f bj %.3f",
				r.Benchmark, r.SRT, r.BlackJackNS, r.BlackJack)
		}
		if r.BlackJack <= 0 || r.SRT > 1.0001 {
			t.Errorf("%s: normalized perf out of range", r.Benchmark)
		}
	}
	// Tables render with a row per benchmark plus the average.
	for _, tb := range []interface{ NumRows() int }{
		s.Figure4aTable(), s.Figure4bTable(), s.Figure5Table(), s.Figure6Table(), s.Figure7Table(),
	} {
		if tb.NumRows() != 3 {
			t.Errorf("table rows = %d, want 3", tb.NumRows())
		}
	}
	h := s.Headline()
	if h.BJCoverage <= h.SRTCoverage {
		t.Error("headline: BlackJack coverage should dominate SRT")
	}
	if s.HeadlineTable().NumRows() != 9 {
		t.Error("headline table incomplete")
	}
}

func TestExtAFaultInjection(t *testing.T) {
	rows, err := ExtAFaultInjection(smallOpts(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 modes", len(rows))
	}
	byMode := map[pipeline.Mode]ExtARow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Detected+r.Silent+r.Benign+r.Wedged != r.Sites {
			t.Errorf("%v: outcomes do not sum to sites", r.Mode)
		}
	}
	if byMode[pipeline.ModeSingle].Detected != 0 {
		t.Error("single-thread machine cannot detect anything")
	}
	if byMode[pipeline.ModeBlackJack].Rate <= byMode[pipeline.ModeSRT].Rate {
		t.Errorf("BlackJack detection rate %.2f should beat SRT %.2f",
			byMode[pipeline.ModeBlackJack].Rate, byMode[pipeline.ModeSRT].Rate)
	}
	if byMode[pipeline.ModeBlackJack].Rate < 0.85 {
		t.Errorf("BlackJack detection rate %.2f too low", byMode[pipeline.ModeBlackJack].Rate)
	}
	if ExtATable(rows, "gcc").NumRows() != 3 {
		t.Error("ExtA table incomplete")
	}
}

func TestExtBDecomposition(t *testing.T) {
	s, err := RunSuite(smallOpts("sixtrack"))
	if err != nil {
		t.Fatal(err)
	}
	if tb := s.ExtBTable(); tb.NumRows() != 2 {
		t.Errorf("ExtB rows = %d, want 2", tb.NumRows())
	}
}

func TestExtCPayloadSweep(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 2000
	rows, err := ExtCPayloadRAM(opts, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Split payload RAMs must never corrupt silently; shared ones may.
	if r.SplitSilent != 0 {
		t.Errorf("split payload RAMs produced %d silent corruptions", r.SplitSilent)
	}
	if ExtCTable(rows).NumRows() != 1 {
		t.Error("ExtC table incomplete")
	}
}

func TestExtDSweep(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 3000
	rows, err := ExtDSweep(opts, "gcc", []int{64, 256}, []int{256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Perf <= 0 || r.Perf > 1.001 {
			t.Errorf("%s=%d: perf %.3f out of range", r.Param, r.Value, r.Perf)
		}
		if r.Coverage < 0.5 {
			t.Errorf("%s=%d: coverage %.3f implausibly low", r.Param, r.Value, r.Coverage)
		}
	}
	if ExtDTable(rows).NumRows() != 4 {
		t.Error("ExtD table incomplete")
	}
}

func TestExtEMergingShuffle(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 6000
	rows, err := ExtEMergingShuffle(opts, []string{"sixtrack"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Merged == 0 {
		t.Error("no packets merged on a high-ILP benchmark")
	}
	if r.MergePerf < r.BasePerf-0.02 {
		t.Errorf("merging slowed things down: %.3f < %.3f", r.MergePerf, r.BasePerf)
	}
	if r.PacketsMrg >= r.PacketsBase {
		t.Errorf("merging did not reduce trailing packets: %d >= %d", r.PacketsMrg, r.PacketsBase)
	}
	if r.MergeCov < r.BaseCov-0.05 {
		t.Errorf("merging cost too much coverage: %.3f vs %.3f", r.MergeCov, r.BaseCov)
	}
	if ExtETable(rows).NumRows() != 1 {
		t.Error("ExtE table incomplete")
	}
}

func TestExtFMultiFault(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 2500
	rows, err := ExtFMultiFault(opts, "gcc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Runs == 0 {
			t.Errorf("k=%d: no runs", r.Faults)
		}
		if r.Silent > 0 {
			t.Errorf("k=%d: %d silent corruptions under BlackJack", r.Faults, r.Silent)
		}
	}
	if ExtFTable(rows, "gcc").NumRows() != 3 {
		t.Error("ExtF table incomplete")
	}
}

// Checkpointed campaigns must not change any experiment figure: Ext-A and
// Ext-F rows are byte-identical with and without an interval.
func TestExtCampaignsByteIdenticalWithCheckpointing(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 2500

	coldA, err := ExtAFaultInjection(opts, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	coldF, err := ExtFMultiFault(opts, "gcc", 3)
	if err != nil {
		t.Fatal(err)
	}

	opts.CheckpointInterval = 500
	ckptA, err := ExtAFaultInjection(opts, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	ckptF, err := ExtFMultiFault(opts, "gcc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldA, ckptA) {
		t.Errorf("ExtA diverged under checkpointing:\ncold %+v\nckpt %+v", coldA, ckptA)
	}
	if !reflect.DeepEqual(coldF, ckptF) {
		t.Errorf("ExtF diverged under checkpointing:\ncold %+v\nckpt %+v", coldF, ckptF)
	}
}

func TestExtGSoftErrors(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 5000
	rows, err := ExtGSoftErrors(opts, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Mode {
		case pipeline.ModeSingle:
			if r.Detected != 0 {
				t.Error("single-thread machine detected a transient")
			}
		default:
			// Temporal redundancy suffices for soft errors: no silent
			// corruption under either redundant mode.
			if r.Silent != 0 {
				t.Errorf("%v: %d silent transient corruptions", r.Mode, r.Silent)
			}
		}
	}
	if ExtGTable(rows, "gcc").NumRows() != 3 {
		t.Error("ExtG table incomplete")
	}
}

func TestFigureChartsAndSVGs(t *testing.T) {
	s, err := RunSuite(smallOpts("gzip", "equake"))
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]interface{ Validate() error }{
		"fig4a": s.Figure4aChart(), "fig4b": s.Figure4bChart(),
		"fig5": s.Figure5Chart(), "fig6": s.Figure6Chart(), "fig7": s.Figure7Chart(),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	dir := t.TempDir()
	paths, err := s.WriteSVGs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("wrote %d files, want 5", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "</svg>") {
			t.Errorf("%s: not an SVG", p)
		}
	}
}

func TestExtHSeedRobustness(t *testing.T) {
	opts := smallOpts("gzip", "equake")
	opts.Instructions = 5000
	rows, err := ExtHSeedRobustness(opts, []uint64{0, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BJCov <= r.SRTCov {
			t.Errorf("seed+%d: BJ coverage %.3f <= SRT %.3f", r.SeedOffset, r.BJCov, r.SRTCov)
		}
		if r.BJCov < 0.85 {
			t.Errorf("seed+%d: BJ coverage %.3f collapsed", r.SeedOffset, r.BJCov)
		}
	}
	// Reseeding must actually change the workload (different exact numbers).
	if rows[0].BJPerf == rows[1].BJPerf && rows[0].SRTCov == rows[1].SRTCov {
		t.Error("reseeding produced identical metrics; offset not applied")
	}
	if ExtHTable(rows, opts.Benchmarks).NumRows() != 2 {
		t.Error("ExtH table incomplete")
	}
}

// TestOnRunObservesEveryCampaignRun exercises the job-level progress hook:
// OnRun must fire once per campaign run on the first (live) pass and again
// on a journal-resumed pass, where every run reports Served == "journal".
func TestOnRunObservesEveryCampaignRun(t *testing.T) {
	opts := smallOpts()
	opts.JournalDir = t.TempDir()
	var mu sync.Mutex
	var live, replayed, other int
	opts.OnRun = func(p sim.RunProgress) {
		mu.Lock()
		defer mu.Unlock()
		switch p.Served {
		case "journal":
			replayed++
		case "cold", "forked", "warm", "fast-forward":
			live++
		default:
			other++
		}
	}
	if _, err := ExtAFaultInjection(opts, "gcc"); err != nil {
		t.Fatal(err)
	}
	want := 3 * len(sim.StandardSites(opts.Machine)) // three modes over the site list
	if live != want || replayed != 0 || other != 0 {
		t.Fatalf("first pass: live=%d replayed=%d other=%d, want live=%d", live, replayed, other, want)
	}
	live, replayed = 0, 0
	if _, err := ExtAFaultInjection(opts, "gcc"); err != nil {
		t.Fatal(err)
	}
	if replayed != want || live != 0 {
		t.Fatalf("resumed pass: live=%d replayed=%d, want all %d from the journal", live, replayed, want)
	}
}
