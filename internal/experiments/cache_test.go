package experiments

import (
	"testing"

	"blackjack/internal/runcache"
)

// A warm Ext-A sweep must render a table byte-identical to the cold sweep's,
// with every campaign cell served from the cache — the incremental-sweep
// contract the run cache exists to provide.
func TestExtASweepWarmCacheByteIdenticalTable(t *testing.T) {
	cache, err := runcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts("gcc")
	opts.Instructions = 3000
	opts.Cache = cache

	cold, err := ExtAFaultInjection(opts, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Puts == 0 {
		t.Fatalf("cold sweep: %d hits, %d puts; want 0 hits and a filled cache", st.Hits, st.Puts)
	}

	warm, err := ExtAFaultInjection(opts, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Hits == 0 {
		t.Fatal("warm sweep served no cells from the cache")
	}
	coldTable := ExtATable(cold, "gcc").String()
	warmTable := ExtATable(warm, "gcc").String()
	if coldTable != warmTable {
		t.Errorf("warm table differs from cold:\ncold:\n%s\nwarm:\n%s", coldTable, warmTable)
	}

	// Sampled verification over the warm entries must find zero divergences.
	opts.CacheVerify = 1
	if _, err := ExtAFaultInjection(opts, "gcc"); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.VerifyRuns == 0 {
		t.Error("verification pass recomputed no hits")
	}
	if st.VerifyDivergences != 0 {
		t.Errorf("verification found %d divergences, want 0", st.VerifyDivergences)
	}
}

// Editing one sweep parameter must re-execute only the affected cells: the
// unchanged instruction budget's cells stay hits when a second budget's
// sweep fills alongside them.
func TestIncrementalSweepOneParameterEdit(t *testing.T) {
	cache, err := runcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts("gcc")
	opts.Instructions = 3000
	opts.Cache = cache
	if _, err := ExtAFaultInjection(opts, "gcc"); err != nil {
		t.Fatal(err)
	}
	filled := cache.Stats().Puts

	// The edited sweep shares no cells (budget is part of every identity)…
	edited := opts
	edited.Instructions = 2500
	if _, err := ExtAFaultInjection(edited, "gcc"); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 {
		t.Errorf("edited sweep hit %d cells of the original; a changed budget must miss", st.Hits)
	}
	if st.Puts <= filled {
		t.Error("edited sweep filled no new cells")
	}

	// …and re-running the original sweep is fully warm again.
	if _, err := ExtAFaultInjection(opts, "gcc"); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Hits; got == 0 {
		t.Error("original sweep no longer warm after the edited sweep ran")
	}
}
