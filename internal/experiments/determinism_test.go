package experiments

import (
	"bytes"
	"testing"
)

// renderAll serializes every figure and table a suite derives, so two suites
// can be compared byte-for-byte.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	var buf bytes.Buffer
	s.Figure4aTable().Render(&buf)
	s.Figure4bTable().Render(&buf)
	s.Figure5Table().Render(&buf)
	s.Figure6Table().Render(&buf)
	s.Figure7Table().Render(&buf)
	s.HeadlineTable().Render(&buf)
	s.ExtBTable().Render(&buf)
	return buf.String()
}

// The parallel fan-out must be invisible in the output: the same suite run
// with one worker and with eight workers has to produce byte-identical
// figures and tables.
func TestRunSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := smallOpts("gzip", "equake")
	opts.Instructions = 3000

	opts.Parallel = 1
	serial, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	fanned, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}

	a, b := renderAll(t, serial), renderAll(t, fanned)
	if a != b {
		t.Errorf("suite output differs between Parallel=1 and Parallel=8:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// ExtH's per-run seeds are derived from the (benchmark, offset) identity, not
// from shared mutable state, so its table must also be independent of the
// worker count.
func TestExtHDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := smallOpts("gzip", "equake")
	opts.Instructions = 3000
	offsets := []uint64{0, 5000}

	render := func(par int) string {
		opts.Parallel = par
		rows, err := ExtHSeedRobustness(opts, offsets)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ExtHTable(rows, opts.Benchmarks).Render(&buf)
		return buf.String()
	}

	if a, b := render(1), render(8); a != b {
		t.Errorf("ExtH output differs between Parallel=1 and Parallel=8:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
