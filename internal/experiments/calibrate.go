package experiments

import (
	"math"

	"blackjack/internal/calib"
	"blackjack/internal/obs"
	"blackjack/internal/pipeline"
	"blackjack/internal/sim"
)

// CalibrationBenchmark is the representative benchmark whose live-metrics
// run feeds the registry-derived (queue occupancy) calibration claims.
const CalibrationBenchmark = "gcc"

// Measurements flattens the suite's figures into the scalar map the
// calibration spec evaluates: per-figure suite averages, per-benchmark band
// extremes, and the margins that encode the paper's shape-ordering claims
// as one-sided numeric assertions.
func (s *Suite) Measurements() calib.Measurements {
	m := calib.Measurements{}
	bs := s.complete()
	if len(bs) == 0 {
		return m
	}

	// Figure 4a/4b: coverage averages and per-benchmark extremes, plus the
	// exact frontend-diversity split (SRT identically 0, BlackJack
	// identically 1 — the structural heart of safe-shuffle).
	var srtCov, bjCov, srtBE, bjBE float64
	bjCovMin, srtFEMax, bjFEMin := math.Inf(1), math.Inf(-1), math.Inf(1)
	for _, b := range bs {
		srt, bj := s.get(b, pipeline.ModeSRT).Stats, s.get(b, pipeline.ModeBlackJack).Stats
		srtCov += srt.Coverage()
		bjCov += bj.Coverage()
		srtBE += srt.BackendDiversity()
		bjBE += bj.BackendDiversity()
		bjCovMin = math.Min(bjCovMin, bj.Coverage())
		srtFEMax = math.Max(srtFEMax, srt.FrontendDiversity())
		bjFEMin = math.Min(bjFEMin, bj.FrontendDiversity())
	}
	n := float64(len(bs))
	m["fig4a.srt.coverage.avg"] = srtCov / n
	m["fig4a.bj.coverage.avg"] = bjCov / n
	m["fig4a.bj.coverage.min"] = bjCovMin
	m["fig4a.srt.fe_diversity.max"] = srtFEMax
	m["fig4a.bj.fe_diversity.min"] = bjFEMin
	m["fig4b.srt.coverage.avg"] = srtBE / n
	m["fig4b.bj.coverage.avg"] = bjBE / n

	// Figures 5 and 6: interference and burstiness averages.
	h := s.Headline()
	m["fig5.tt.avg"] = h.AvgTTInterf
	m["fig5.lt.avg"] = h.AvgLTInterf
	m["fig5.lt_minus_tt"] = h.AvgLTInterf - h.AvgTTInterf
	m["fig6.single_ctx.avg"] = h.AvgSingleCtx

	// Figure 7 / Ext-B: slowdowns, the decomposition, and the strict
	// per-benchmark ordering single > SRT > BJ-NS > BJ reduced to its
	// weakest link (the minimum pairwise margin over all benchmarks).
	m["fig7.srt.slowdown"] = h.SRTSlowdown
	m["fig7.bj.slowdown"] = h.BJSlowdown
	m["fig7.bj_over_srt"] = h.BJOverSRT
	m["extb.shuffle.cost"] = h.ShuffleSlowdown
	m["extb.fetch.cost"] = 1 - s.mean(func(b string) float64 {
		return s.get(b, pipeline.ModeBlackJackNS).NormalizedPerf(s.get(b, pipeline.ModeSRT))
	})
	margin := math.Inf(1)
	for _, b := range bs {
		single := s.get(b, pipeline.ModeSingle)
		srt := s.get(b, pipeline.ModeSRT).NormalizedPerf(single)
		ns := s.get(b, pipeline.ModeBlackJackNS).NormalizedPerf(single)
		bj := s.get(b, pipeline.ModeBlackJack).NormalizedPerf(single)
		margin = math.Min(margin, math.Min(1-srt, math.Min(srt-ns, ns-bj)))
	}
	m["fig7.ordering.margin"] = margin

	return m
}

// Calibrate runs the figure suite plus one metrics-attached representative
// run (the occupancy histograms only exist on live registries) and
// evaluates the paper calibration spec against the combined measurements.
// The report is deterministic: the suite is deterministic at any worker
// count and the representative run is a single serial machine.
func Calibrate(opts Options) (*calib.Report, error) {
	opts.fill()
	s, err := RunSuite(opts)
	if err != nil {
		return nil, err
	}
	m := s.Measurements()

	reg := obs.NewRegistry()
	cfg := sim.Config{
		Machine:         opts.Machine,
		Mode:            pipeline.ModeBlackJack,
		MaxInstructions: opts.Instructions,
		Metrics:         reg,
		Ctx:             opts.Ctx,
	}
	if _, err := sim.Run(cfg, CalibrationBenchmark); err != nil {
		return nil, err
	}
	calib.FromRegistry(m, reg, calib.RepPrefix)

	return calib.PaperSpec().Evaluate(m), nil
}
