package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"blackjack/internal/plot"
)

// Figure4aChart renders Figure 4a (total coverage) as an SVG bar chart with
// the paper's white-SRT / black-BlackJack styling.
func (s *Suite) Figure4aChart() *plot.BarChart {
	total, _ := s.Figure4()
	return coverageChart("Figure 4a: Hard-error instruction coverage, entire pipeline", total)
}

// Figure4bChart renders Figure 4b (backend-only coverage).
func (s *Suite) Figure4bChart() *plot.BarChart {
	_, backend := s.Figure4()
	return coverageChart("Figure 4b: Hard-error instruction coverage, backend only", backend)
}

func coverageChart(title string, rows []Fig4Row) *plot.BarChart {
	cats := make([]string, len(rows))
	srt := make([]float64, len(rows))
	bj := make([]float64, len(rows))
	for i, r := range rows {
		cats[i] = r.Benchmark
		srt[i] = 100 * r.SRT
		bj[i] = 100 * r.BlackJack
	}
	return &plot.BarChart{
		Title:      title,
		YLabel:     "Instruction Coverage (%)",
		Categories: cats,
		Series: []plot.Series{
			{Name: "SRT", Values: srt, Color: "#f0f0f0"},
			{Name: "BlackJack", Values: bj, Color: "#1a1a1a"},
		},
		YMax: 100,
	}
}

// Figure5Chart renders Figure 5 (interference breakdown).
func (s *Suite) Figure5Chart() *plot.BarChart {
	rows := s.Figure5()
	cats := make([]string, len(rows))
	tt := make([]float64, len(rows))
	lt := make([]float64, len(rows))
	for i, r := range rows {
		cats[i] = r.Benchmark
		tt[i] = 100 * r.TT
		lt[i] = 100 * r.LT
	}
	return &plot.BarChart{
		Title:      "Figure 5: Issue cycles with interference violating spatial diversity",
		YLabel:     "Percent Issue Cycles (%)",
		Categories: cats,
		Series: []plot.Series{
			{Name: "Trailing-trailing", Values: tt, Color: "#f0f0f0"},
			{Name: "Leading-trailing", Values: lt, Color: "#1a1a1a"},
		},
	}
}

// Figure6Chart renders Figure 6 (single-context issue cycles).
func (s *Suite) Figure6Chart() *plot.BarChart {
	rows := s.Figure6()
	cats := make([]string, len(rows))
	vals := make([]float64, len(rows))
	for i, r := range rows {
		cats[i] = r.Benchmark
		vals[i] = 100 * r.SingleCtx
	}
	return &plot.BarChart{
		Title:      "Figure 6: Issue cycles with all instructions from one context",
		YLabel:     "Percent Issue Cycles (%)",
		Categories: cats,
		Series:     []plot.Series{{Name: "Single context", Values: vals, Color: "#6baed6"}},
		YMax:       100,
	}
}

// Figure7Chart renders Figure 7 (normalized performance).
func (s *Suite) Figure7Chart() *plot.BarChart {
	rows := s.Figure7()
	cats := make([]string, len(rows))
	srt := make([]float64, len(rows))
	ns := make([]float64, len(rows))
	bj := make([]float64, len(rows))
	for i, r := range rows {
		cats[i] = r.Benchmark
		srt[i] = 100 * r.SRT
		ns[i] = 100 * r.BlackJackNS
		bj[i] = 100 * r.BlackJack
	}
	return &plot.BarChart{
		Title:      "Figure 7: Performance of SRT, BlackJack-NS and BlackJack (normalized to single thread)",
		YLabel:     "Normalized Performance (%)",
		Categories: cats,
		Series: []plot.Series{
			{Name: "SRT", Values: srt, Color: "#f0f0f0"},
			{Name: "BlackJack-NS", Values: ns, Color: "#969696"},
			{Name: "BlackJack", Values: bj, Color: "#1a1a1a"},
		},
		YMax: 100,
	}
}

// WriteSVGs renders every figure chart into dir (created if missing) and
// returns the written paths.
func (s *Suite) WriteSVGs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	charts := map[string]*plot.BarChart{
		"fig4a.svg": s.Figure4aChart(),
		"fig4b.svg": s.Figure4bChart(),
		"fig5.svg":  s.Figure5Chart(),
		"fig6.svg":  s.Figure6Chart(),
		"fig7.svg":  s.Figure7Chart(),
	}
	var paths []string
	for name, c := range charts {
		svg, err := c.SVG()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}
