package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"blackjack/internal/sim"
)

func TestSuiteIsolationNoFailuresMatchesPlainRun(t *testing.T) {
	plain, err := RunSuite(smallOpts("gzip", "equake"))
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts("gzip", "equake")
	opts.Resilience = sim.Resilience{Isolate: true}
	isolated, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(isolated.Failures) != 0 {
		t.Fatalf("healthy suite quarantined cells: %+v", isolated.Failures)
	}
	if got, want := isolated.Figure7Table().String(), plain.Figure7Table().String(); got != want {
		t.Fatalf("isolation changed a healthy suite's figures:\n got: %s\nwant: %s", got, want)
	}
}

func TestSuiteQuarantinesOverBudgetCells(t *testing.T) {
	opts := smallOpts("gzip", "equake")
	// A 1ns budget interrupts every run at its first context poll; the
	// budget must be long enough that every cell reaches one (the machine
	// polls every 4096 cycles). With Isolate set the suite must finish
	// with all cells quarantined instead of erroring out.
	opts.Instructions = 30000
	opts.Resilience = sim.Resilience{Isolate: true, RunTimeout: time.Nanosecond}
	s, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Failures) != 2*4 {
		t.Fatalf("quarantined %d cells, want all 8: %+v", len(s.Failures), s.Failures)
	}
	for _, f := range s.Failures {
		if f.Repro == "" || !strings.Contains(f.Repro, f.Benchmark) {
			t.Fatalf("failure lacks usable repro: %+v", f)
		}
	}
	if bs := s.complete(); len(bs) != 0 {
		t.Fatalf("incomplete benchmarks still aggregated: %v", bs)
	}
	if rows := s.FailuresTable().String(); !strings.Contains(rows, "gzip") || !strings.Contains(rows, "equake") {
		t.Fatalf("failures table incomplete:\n%s", rows)
	}
}

func TestSuiteCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := smallOpts("gzip")
	opts.Ctx = ctx
	// Even with isolation on, a campaign-level cancellation is an abort,
	// not a quarantine-everything run.
	opts.Resilience = sim.Resilience{Isolate: true}
	if _, err := RunSuite(opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite returned %v, want context.Canceled", err)
	}
}

func TestExtAJournalResumeIdenticalRows(t *testing.T) {
	opts := smallOpts()
	opts.Instructions = 2000
	opts.Parallel = 4
	fresh, err := ExtAFaultInjection(opts, "gzip")
	if err != nil {
		t.Fatal(err)
	}

	opts.JournalDir = t.TempDir()
	journaled, err := ExtAFaultInjection(opts, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, journaled) {
		t.Fatalf("journaled rows diverged:\n got: %+v\nwant: %+v", journaled, fresh)
	}
	// Second run over the same journal directory replays every campaign
	// from the journals; the rendered table must be byte-identical.
	opts.Parallel = 2
	resumed, err := ExtAFaultInjection(opts, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ExtATable(resumed, "gzip").String(), ExtATable(fresh, "gzip").String(); got != want {
		t.Fatalf("resumed table diverged:\n got: %s\nwant: %s", got, want)
	}
}
