package area

import "testing"

func TestDefaultModel(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.FrontendFrac != 0.34 || m.BackendFrac != 0.66 {
		t.Errorf("default = %+v, want 34/66 split", m)
	}
}

func TestPairCoverage(t *testing.T) {
	m := Default()
	tests := []struct {
		fe, be bool
		want   float64
	}{
		{false, false, 0},
		{true, false, 0.34},
		{false, true, 0.66},
		{true, true, 1.0},
	}
	for _, tt := range tests {
		if got := m.PairCoverage(tt.fe, tt.be); got != tt.want {
			t.Errorf("PairCoverage(%v,%v) = %v, want %v", tt.fe, tt.be, got, tt.want)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{FrontendFrac: -0.1, BackendFrac: 1.1},
		{FrontendFrac: 0.5, BackendFrac: 0.4},
		{FrontendFrac: 0.9, BackendFrac: 0.9},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
}
