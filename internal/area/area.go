// Package area encodes the paper's area model (Section 5). The paper uses
// HotSpot to estimate the core area vulnerable to hard defects under
// redundant threading and divides it into three classes: issue queue,
// frontend and backend. The issue queue is excluded from the instruction-pair
// weighting — SRT is granted full issue-queue coverage as a benefit of the
// doubt, and BlackJack covers it by the dependence check — and of the
// remaining core area, 34% is accessed by the frontend pipe stages and 66% by
// the backend.
package area

import "fmt"

// Model holds the area weights for the two per-instruction-pair classes.
type Model struct {
	// FrontendFrac is the fraction of (non-issue-queue) core area accessed
	// in the frontend pipe stages.
	FrontendFrac float64
	// BackendFrac is the fraction accessed in the backend.
	BackendFrac float64
}

// Default returns the paper's HotSpot-derived split: 34% frontend, 66%
// backend.
func Default() Model { return Model{FrontendFrac: 0.34, BackendFrac: 0.66} }

// Validate reports malformed weights.
func (m Model) Validate() error {
	if m.FrontendFrac < 0 || m.BackendFrac < 0 {
		return fmt.Errorf("area: negative fraction")
	}
	if s := m.FrontendFrac + m.BackendFrac; s < 0.999 || s > 1.001 {
		return fmt.Errorf("area: fractions sum to %.3f, want 1", s)
	}
	return nil
}

// PairCoverage returns the covered core-area fraction contributed by one
// leading/trailing instruction pair, given whether the pair used spatially
// diverse frontend and backend ways. This is the paper's hard-error
// instruction coverage metric: partial coverage of single instructions is
// allowed (Section 5).
func (m Model) PairCoverage(frontendDiverse, backendDiverse bool) float64 {
	c := 0.0
	if frontendDiverse {
		c += m.FrontendFrac
	}
	if backendDiverse {
		c += m.BackendFrac
	}
	return c
}
