package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachRunsEverything(t *testing.T) {
	const n = 257
	var ran atomic.Int64
	if err := ForEach(8, n, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Errorf("ran %d of %d items", ran.Load(), n)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorWinsSerial(t *testing.T) {
	// With one worker the loop is strictly serial: item 3 fails and item 4
	// must never run.
	var ran atomic.Int64
	err := ForEach(1, 10, func(i int) error {
		ran.Add(1)
		if i >= 3 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Errorf("err = %v, want item 3", err)
	}
	if ran.Load() != 4 {
		t.Errorf("ran %d items, want 4", ran.Load())
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Every item fails; regardless of scheduling, the reported error must be
	// the lowest index that ran — and index 0 always runs.
	for _, workers := range []int{2, 8} {
		err := ForEach(workers, 50, func(i int) error { return fmt.Errorf("item %d", i) })
		if err == nil || err.Error() != "item 0" {
			t.Errorf("workers=%d: err = %v, want item 0", workers, err)
		}
	}
}

func TestErrorCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(2, 10_000, func(i int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Cancellation is best-effort but must kick in long before the full list.
	if ran.Load() > 100 {
		t.Errorf("ran %d items after first error", ran.Load())
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
}

func TestWorkersGreaterThanN(t *testing.T) {
	// More workers than items must clamp cleanly: every item runs exactly
	// once and results assemble in order.
	const n = 3
	var ran atomic.Int64
	out, err := Map(64, n, func(i int) (int, error) { ran.Add(1); return i * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Errorf("ran %d items, want %d", ran.Load(), n)
	}
	for i := range out {
		if out[i] != i*10 {
			t.Errorf("out[%d] = %d, want %d", i, out[i], i*10)
		}
	}
}

func TestPanicBecomesErrorSerial(t *testing.T) {
	// The serial fast path must contain panics exactly like the pooled path:
	// a *PanicError with the item index and a stack, not a crash.
	var ran atomic.Int64
	err := ForEach(1, 10, func(i int) error {
		ran.Add(1)
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 2 || fmt.Sprint(pe.Value) != "kaboom" {
		t.Errorf("PanicError = {Index:%d Value:%v}, want {2 kaboom}", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "parallel") {
		t.Errorf("PanicError.Stack missing or implausible (%d bytes)", len(pe.Stack))
	}
	if ran.Load() != 3 {
		t.Errorf("ran %d items after serial panic, want 3", ran.Load())
	}
}

func TestPanicBecomesErrorParallel(t *testing.T) {
	err := ForEach(4, 100, func(i int) error {
		if i == 0 {
			panic(fmt.Errorf("wrapped %d", i))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 0 {
		t.Errorf("PanicError.Index = %d, want 0", pe.Index)
	}
}

func TestCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 50, func(i int) error { ran.Add(1); return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: ran %d items under a pre-cancelled context", workers, ran.Load())
		}
	}
}

func TestErrorOutranksCancellation(t *testing.T) {
	// Error-after-cancel ordering: item 0 fails, then the context is
	// cancelled. The item error must win — it carries the diagnosis; the
	// cancellation is the shutdown it triggered.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForEachCtx(ctx, workers, 1000, func(i int) error {
			if i == 0 {
				cancel()
				return errors.New("root cause")
			}
			return nil
		})
		cancel()
		if err == nil || err.Error() != "root cause" {
			t.Errorf("workers=%d: err = %v, want root cause", workers, err)
		}
	}
}

func TestCancellationStopsNewItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 2, 100_000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() > 1000 {
		t.Errorf("ran %d items after cancellation", ran.Load())
	}
}

func TestMapWorkerStateDeterministicMerge(t *testing.T) {
	// Per-worker state partitioning is scheduling-dependent, but a
	// commutative fold over the states must not be. Each worker state
	// accumulates a sum and a count; the folded totals are compared across
	// worker counts and repetitions (races surface under -race).
	const n = 500
	fold := func(workers int) (sum, count int) {
		type state struct{ sum, count int }
		_, states, err := MapWorkerState(workers, n,
			func() *state { return &state{} },
			func(s *state, _, i int) (struct{}, error) {
				s.sum += i
				s.count++
				return struct{}{}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range states {
			sum += s.sum
			count += s.count
		}
		return sum, count
	}
	wantSum, wantCount := fold(1)
	for _, workers := range []int{2, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			sum, count := fold(workers)
			if sum != wantSum || count != wantCount {
				t.Fatalf("workers=%d rep=%d: folded (%d,%d), want (%d,%d)",
					workers, rep, sum, count, wantSum, wantCount)
			}
		}
	}
}

func TestMapWorkerStateCtxReturnsPartialStates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	type state struct{ count int }
	var ran atomic.Int64
	_, states, err := MapWorkerStateCtx(ctx, 2, 10_000,
		func() *state { return &state{} },
		func(s *state, _, i int) (struct{}, error) {
			if ran.Add(1) == 20 {
				cancel()
			}
			s.count++
			return struct{}{}, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := 0
	for _, s := range states {
		total += s.count
	}
	if total != int(ran.Load()) {
		t.Errorf("partial states hold %d items, workers ran %d", total, ran.Load())
	}
}

func TestWatchdogReportsStalls(t *testing.T) {
	type stall struct {
		worker, item int
	}
	ch := make(chan stall, 16)
	w := NewWatchdog(30*time.Millisecond, func(worker, item int, _ time.Duration) {
		ch <- stall{worker, item}
	})
	w.Begin(0, 7) // stays running past the threshold
	w.Begin(1, 3)
	w.End(1) // finishes promptly: must never be reported
	select {
	case got := <-ch:
		if got.worker != 0 || got.item != 7 {
			t.Errorf("stall = %+v, want worker 0 item 7", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never reported the stalled item")
	}
	w.End(0)
	if n := w.Stop(); n != 1 {
		t.Errorf("Stalls = %d, want 1 (prompt worker reported, or stalled item double-reported)", n)
	}
	select {
	case got := <-ch:
		t.Errorf("unexpected extra stall report %+v", got)
	default:
	}
}

func TestWatchdogReportsOncePerItem(t *testing.T) {
	w := NewWatchdog(20*time.Millisecond, nil)
	w.Begin(0, 1)
	time.Sleep(150 * time.Millisecond)
	if n := w.Stalls(); n != 1 {
		t.Errorf("Stalls = %d after one long item, want 1", n)
	}
	w.End(0)
	w.Begin(0, 2)
	time.Sleep(100 * time.Millisecond)
	if n := w.Stop(); n != 2 {
		t.Errorf("Stalls = %d after second long item, want 2", n)
	}
}
