package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachRunsEverything(t *testing.T) {
	const n = 257
	var ran atomic.Int64
	if err := ForEach(8, n, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Errorf("ran %d of %d items", ran.Load(), n)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorWinsSerial(t *testing.T) {
	// With one worker the loop is strictly serial: item 3 fails and item 4
	// must never run.
	var ran atomic.Int64
	err := ForEach(1, 10, func(i int) error {
		ran.Add(1)
		if i >= 3 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Errorf("err = %v, want item 3", err)
	}
	if ran.Load() != 4 {
		t.Errorf("ran %d items, want 4", ran.Load())
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Every item fails; regardless of scheduling, the reported error must be
	// the lowest index that ran — and index 0 always runs.
	for _, workers := range []int{2, 8} {
		err := ForEach(workers, 50, func(i int) error { return fmt.Errorf("item %d", i) })
		if err == nil || err.Error() != "item 0" {
			t.Errorf("workers=%d: err = %v, want item 0", workers, err)
		}
	}
}

func TestErrorCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(2, 10_000, func(i int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Cancellation is best-effort but must kick in long before the full list.
	if ran.Load() > 100 {
		t.Errorf("ran %d items after first error", ran.Load())
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
}
