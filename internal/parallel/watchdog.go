package parallel

import (
	"sync"
	"time"
)

// Watchdog detects hung workers in a batch fan-out. Workers bracket each
// item with Begin/End; a monitor goroutine scans the live items and fires
// OnStall once per item that has been running longer than the threshold.
// The watchdog observes only — Go offers no safe way to kill a goroutine —
// so the cure for a detected hang is the per-run budget (context deadline)
// threaded into the simulation loop; the watchdog is the layer that notices
// when even that failed, or when no budget was configured.
//
// Stall reports are wall-clock driven and therefore intentionally kept OUT
// of the deterministic metrics registries: they go to the OnStall callback
// (typically a stderr note) and the Stalls counter.
type Watchdog struct {
	stall   time.Duration
	onStall func(worker, item int, running time.Duration)

	mu     sync.Mutex
	slots  map[int]*wdSlot
	stalls int

	stop chan struct{}
	done chan struct{}
}

type wdSlot struct {
	item     int
	start    time.Time
	active   bool
	reported bool
}

// DefaultStall is the hung-worker threshold when the caller does not supply
// one: far beyond any legitimate single run, short enough that an operator
// watching a campaign learns about a livelock promptly.
const DefaultStall = 30 * time.Second

// NewWatchdog starts a monitor that flags any item running longer than
// stall (<= 0 selects DefaultStall). onStall may be nil; fires at most once
// per Begin. Call Stop to shut the monitor down.
func NewWatchdog(stall time.Duration, onStall func(worker, item int, running time.Duration)) *Watchdog {
	if stall <= 0 {
		stall = DefaultStall
	}
	w := &Watchdog{
		stall:   stall,
		onStall: onStall,
		slots:   make(map[int]*wdSlot),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.loop()
	return w
}

// Begin marks the worker as running the given item.
func (w *Watchdog) Begin(worker, item int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slots[worker]
	if s == nil {
		s = &wdSlot{}
		w.slots[worker] = s
	}
	s.item = item
	s.start = time.Now()
	s.active = true
	s.reported = false
}

// End marks the worker as idle.
func (w *Watchdog) End(worker int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s := w.slots[worker]; s != nil {
		s.active = false
		s.reported = false
	}
}

// Stalls returns how many stalled items have been reported so far.
func (w *Watchdog) Stalls() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalls
}

// Stop shuts the monitor down and returns the final stall count. The
// watchdog must not be reused after Stop.
func (w *Watchdog) Stop() int {
	close(w.stop)
	<-w.done
	return w.Stalls()
}

func (w *Watchdog) loop() {
	defer close(w.done)
	period := w.stall / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			w.scan(now)
		}
	}
}

func (w *Watchdog) scan(now time.Time) {
	type fire struct {
		worker, item int
		running      time.Duration
	}
	var fires []fire
	w.mu.Lock()
	for worker, s := range w.slots {
		if s.active && !s.reported && now.Sub(s.start) > w.stall {
			s.reported = true
			w.stalls++
			fires = append(fires, fire{worker, s.item, now.Sub(s.start)})
		}
	}
	cb := w.onStall
	w.mu.Unlock()
	if cb == nil {
		return
	}
	// Callbacks run outside the lock so they may call back into the
	// watchdog (e.g. Stalls) without deadlocking.
	for _, f := range fires {
		cb(f.worker, f.item, f.running)
	}
}
