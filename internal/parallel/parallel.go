// Package parallel provides the bounded worker pool underlying every batch
// entry point of the simulation harness: experiment suites (benchmark x mode
// pairs), fault-injection campaigns (one run per site) and parameter sweeps
// (one run per sweep point). Each pipeline.Machine is fully independent, so
// these workloads are embarrassingly parallel; what the harness must
// guarantee is that parallelism never changes results. The pool therefore
//
//   - assembles results in input order, regardless of completion order;
//   - aggregates errors deterministically: the lowest-indexed error among
//     the items that ran wins (item 0 is always attempted, and with a single
//     worker this is exactly the serial loop's first error);
//   - cancels outstanding work after the first observed failure, errgroup
//     style, without ever mutating shared state from two goroutines.
//
// Workers pull indices from a single atomic counter, so no work list is
// materialized and the pool costs O(workers) goroutines regardless of n.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 select
// runtime.NumCPU() (the harness-wide default), everything else is returned
// unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n) from at most workers
// goroutines and blocks until all invocations finish. When any invocation
// fails, no new work is started and the lowest-indexed error among the items
// that ran is returned — the deterministic analogue of a serial loop's first
// error. fn must be safe for concurrent invocation on distinct indices.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the invoking worker's index [0, workers)
// passed alongside the item index, so callers can maintain per-worker scratch
// state (a reusable detection sink, a scratch machine) without locking: a
// worker runs its items sequentially, so state keyed by worker index is never
// touched concurrently. The serial fast path always reports worker 0.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, so single-worker runs behave
		// exactly like the pre-parallel harness (including error timing).
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Item 0 always runs so an all-fail batch reports item 0's
				// error no matter how the workers are scheduled.
				if i > 0 && failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map invokes fn(i) for every i in [0, n) from at most workers goroutines
// and returns the results assembled in input order. Error semantics match
// ForEach: first failing index wins, outstanding work is cancelled, and a
// non-nil error means the result slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorker(workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapWorkerState is MapWorker with the per-worker scratch state made
// explicit: newState builds one S per worker before any work starts, fn
// receives its worker's state, and the states are returned alongside the
// results so the caller can fold them back together deterministically
// (e.g. merging per-worker metrics registries or detection sinks in state
// order — the fold is only order-independent if the caller's merge
// operation is commutative, since which worker ran which item is not
// deterministic). On error the states are still returned for inspection.
func MapWorkerState[S, T any](workers, n int, newState func() S, fn func(state S, worker, i int) (T, error)) ([]T, []S, error) {
	nw := Workers(workers)
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	states := make([]S, nw)
	for i := range states {
		states[i] = newState()
	}
	out, err := MapWorker(workers, n, func(worker, i int) (T, error) {
		return fn(states[worker], worker, i)
	})
	return out, states, err
}

// MapWorker is Map with the invoking worker's index passed alongside the item
// index (see ForEachWorker for the per-worker-state contract).
func MapWorker[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachWorker(workers, n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
