// Package parallel provides the bounded worker pool underlying every batch
// entry point of the simulation harness: experiment suites (benchmark x mode
// pairs), fault-injection campaigns (one run per site), parameter sweeps
// (one run per sweep point) and fuzz sessions (one run per program). Each
// pipeline.Machine is fully independent, so these workloads are
// embarrassingly parallel; what the harness must guarantee is that
// parallelism never changes results. The pool therefore
//
//   - assembles results in input order, regardless of completion order;
//   - aggregates errors deterministically: the lowest-indexed error among
//     the items that ran wins (item 0 is always attempted when the context
//     is live, and with a single worker this is exactly the serial loop's
//     first error);
//   - cancels outstanding work after the first observed failure, errgroup
//     style, without ever mutating shared state from two goroutines.
//
// The pool is also the harness's first resilience boundary: every item runs
// behind a recover() barrier, so a panicking run surfaces as a structured
// *PanicError for that index (site, stack preserved) instead of tearing down
// the whole campaign's process. The Ctx variants additionally observe a
// context: cancellation stops new items from starting, and the context's
// error is reported only when no item error outranks it (see
// ForEachWorkerCtx for the exact ordering).
//
// Workers pull indices from a single atomic counter, so no work list is
// materialized and the pool costs O(workers) goroutines regardless of n.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 select
// runtime.NumCPU() (the harness-wide default), everything else is returned
// unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// PanicError is the structured form of a panic recovered from one work item.
// The pool converts panics to errors instead of letting them cross goroutine
// boundaries (where they would kill the process): batch callers can
// quarantine the one poisoned run and keep the campaign alive.
type PanicError struct {
	// Index is the work-item index whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error summarizes the panic; the full stack stays in Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("item %d panicked: %v", e.Index, e.Value)
}

// protect wraps one item invocation in a recover() boundary.
func protect(fn func(worker, i int) error, worker, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(worker, i)
}

// ForEach invokes fn(i) for every i in [0, n) from at most workers
// goroutines and blocks until all invocations finish. When any invocation
// fails, no new work is started and the lowest-indexed error among the items
// that ran is returned — the deterministic analogue of a serial loop's first
// error. fn must be safe for concurrent invocation on distinct indices.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorkerCtx(context.Background(), workers, n, func(_, i int) error { return fn(i) })
}

// ForEachCtx is ForEach under a context: no new items start once ctx is
// cancelled (see ForEachWorkerCtx for the error-ordering contract).
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the invoking worker's index [0, workers)
// passed alongside the item index, so callers can maintain per-worker scratch
// state (a reusable detection sink, a scratch machine) without locking: a
// worker runs its items sequentially, so state keyed by worker index is never
// touched concurrently. The serial fast path always reports worker 0.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	return ForEachWorkerCtx(context.Background(), workers, n, fn)
}

// ForEachWorkerCtx is the pool's core loop. Cancellation and error ordering:
//
//   - a panic inside fn becomes a *PanicError for that index, never a
//     process crash;
//   - once ctx is cancelled, no further items start (including item 0 if
//     cancellation preceded the call);
//   - after all in-flight items finish, the lowest-indexed item error among
//     the items that actually ran is returned; only when no item erred does
//     a cancelled context's error surface. Item errors outrank ctx.Err()
//     because they carry the actionable diagnosis — the cancellation is
//     usually a consequence of shutdown, not the cause of the failure.
func ForEachWorkerCtx(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, so single-worker runs behave
		// exactly like the pre-parallel harness (including error timing) —
		// but panics are still contained, matching the pooled path.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protect(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				// Item 0 always runs (with a live context) so an all-fail
				// batch reports item 0's error no matter how the workers are
				// scheduled.
				if i > 0 && failed.Load() {
					return
				}
				if err := protect(fn, worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map invokes fn(i) for every i in [0, n) from at most workers goroutines
// and returns the results assembled in input order. Error semantics match
// ForEach: first failing index wins, outstanding work is cancelled, and a
// non-nil error means the result slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkerCtx(context.Background(), workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapCtx is Map under a context (see ForEachWorkerCtx for the cancellation
// contract).
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkerCtx(ctx, workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapWorkerState is MapWorker with the per-worker scratch state made
// explicit: newState builds one S per worker before any work starts, fn
// receives its worker's state, and the states are returned alongside the
// results so the caller can fold them back together deterministically
// (e.g. merging per-worker metrics registries or detection sinks in state
// order — the fold is only order-independent if the caller's merge
// operation is commutative, since which worker ran which item is not
// deterministic). On error the states are still returned for inspection.
func MapWorkerState[S, T any](workers, n int, newState func() S, fn func(state S, worker, i int) (T, error)) ([]T, []S, error) {
	return MapWorkerStateCtx(context.Background(), workers, n, newState, fn)
}

// MapWorkerStateCtx is MapWorkerState under a context. On cancellation the
// states are still returned, holding whatever the workers accumulated before
// stopping — the graceful-shutdown path flushes those partial aggregates.
func MapWorkerStateCtx[S, T any](ctx context.Context, workers, n int, newState func() S, fn func(state S, worker, i int) (T, error)) ([]T, []S, error) {
	nw := Workers(workers)
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	states := make([]S, nw)
	for i := range states {
		states[i] = newState()
	}
	out, err := MapWorkerCtx(ctx, workers, n, func(worker, i int) (T, error) {
		return fn(states[worker], worker, i)
	})
	return out, states, err
}

// MapWorker is Map with the invoking worker's index passed alongside the item
// index (see ForEachWorker for the per-worker-state contract).
func MapWorker[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	return MapWorkerCtx(context.Background(), workers, n, fn)
}

// MapWorkerCtx is MapWorker under a context (see ForEachWorkerCtx for the
// cancellation contract).
func MapWorkerCtx[T any](ctx context.Context, workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachWorkerCtx(ctx, workers, n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
