// Package stats provides the formatting helpers the experiment harnesses use
// to render paper tables and figures as aligned text.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table renders rows with aligned columns.
type Table struct {
	Title string
	cols  []string
	rows  [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// AddRow appends a row; missing cells render empty. Passing more cells than
// the table has columns is a programming error (the extra cells used to be
// dropped silently, hiding builder/header mismatches) and panics.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.cols) {
		panic(fmt.Sprintf("stats: AddRow: %d cells for %d columns in table %q",
			len(cells), len(t.cols), t.Title))
	}
	row := make([]string, len(t.cols))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.cols)
	seps := make([]string, len(t.cols))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage with one decimal ("34.2").
func Pct(frac float64) string { return fmt.Sprintf("%.1f", frac*100) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the median of vs (0 for empty input): the middle element
// of the sorted values, or the mean of the middle two for even counts. The
// input slice is not modified.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
