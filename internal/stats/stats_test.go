package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "bench", "value")
	tb.AddRow("equake", "34.0")
	tb.AddRow("sixtrack", "97.2")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "equake") || !strings.HasPrefix(lines[4], "sixtrack") {
		t.Errorf("rows out of order:\n%s", out)
	}
	// Columns must align: "value" column starts at the same offset in every
	// data line.
	idx := strings.Index(lines[3], "34.0")
	if idx < 0 || !strings.HasPrefix(lines[4][idx:], "97.2") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableMissingCells(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x") // missing cell renders empty
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1", tb.NumRows())
	}
	if out := tb.String(); !strings.Contains(out, "x") {
		t.Errorf("missing row:\n%s", out)
	}
}

func TestTableExtraCellsPanic(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddRow with extra cells did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "3 cells for 2 columns") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	tb.AddRow("y", "z", "junk")
}

func TestFormatHelpers(t *testing.T) {
	if got := Pct(0.342); got != "34.2" {
		t.Errorf("Pct = %q, want 34.2", got)
	}
	if got := F2(1.005); got != "1.00" && got != "1.01" {
		t.Errorf("F2 = %q", got)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Ratio(4, 2); got != 2 {
		t.Errorf("Ratio = %v, want 2", got)
	}
	if got := Ratio(4, 0); got != 0 {
		t.Errorf("Ratio(x,0) = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -5, -3}, -3},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not reorder the caller's slice.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Median mutated its input: %v", in)
	}
}
