package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func f64(v float64) uint64 { return math.Float64bits(v) }

func TestEvalIntegerOps(t *testing.T) {
	tests := []struct {
		name   string
		inst   Inst
		v1, v2 uint64
		want   uint64
	}{
		{"add", Inst{Op: OpAdd}, 3, 4, 7},
		{"add wraps", Inst{Op: OpAdd}, math.MaxUint64, 1, 0},
		{"sub", Inst{Op: OpSub}, 10, 4, 6},
		{"sub negative wraps", Inst{Op: OpSub}, 4, 10, negU64(6)},
		{"and", Inst{Op: OpAnd}, 0b1100, 0b1010, 0b1000},
		{"or", Inst{Op: OpOr}, 0b1100, 0b1010, 0b1110},
		{"xor", Inst{Op: OpXor}, 0b1100, 0b1010, 0b0110},
		{"shl", Inst{Op: OpShl}, 1, 4, 16},
		{"shl masks shift amount", Inst{Op: OpShl}, 1, 64, 1},
		{"shr", Inst{Op: OpShr}, 16, 4, 1},
		{"slt true", Inst{Op: OpSlt}, negU64(1), 0, 1}, // -1 < 0 signed
		{"slt false", Inst{Op: OpSlt}, 1, 0, 0},
		{"addi", Inst{Op: OpAddi, Imm: -3}, 10, 0, 7},
		{"andi", Inst{Op: OpAndi, Imm: 0xF}, 0x1234, 0, 4},
		{"ori", Inst{Op: OpOri, Imm: 0xF0}, 0x0F, 0, 0xFF},
		{"xori", Inst{Op: OpXori, Imm: 0xFF}, 0x0F, 0, 0xF0},
		{"slti true", Inst{Op: OpSlti, Imm: 5}, 3, 0, 1},
		{"slti false", Inst{Op: OpSlti, Imm: 5}, 9, 0, 0},
		{"lui", Inst{Op: OpLui, Imm: 3}, 0, 0, 3 << 16},
		{"mul", Inst{Op: OpMul}, 7, 6, 42},
		{"div forces odd divisor", Inst{Op: OpDiv}, 42, 6, 6}, // 42 / (6|1=7) = 6
		{"div by zero becomes one", Inst{Op: OpDiv}, 42, 0, 42},
		{"div signed", Inst{Op: OpDiv}, negU64(42), 7, negU64(6)},
		{"rem", Inst{Op: OpRem}, 43, 6, 1}, // 43 % 7
		{"rem by zero becomes one", Inst{Op: OpRem}, 42, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Eval(tt.inst, tt.v1, tt.v2)
			if got.Value != tt.want {
				t.Errorf("Eval(%v, %d, %d).Value = %d, want %d", tt.inst, tt.v1, tt.v2, got.Value, tt.want)
			}
		})
	}
}

func TestEvalFPOps(t *testing.T) {
	tests := []struct {
		name   string
		inst   Inst
		v1, v2 uint64
		want   uint64
	}{
		{"fadd", Inst{Op: OpFAdd}, f64(1.5), f64(2.25), f64(3.75)},
		{"fsub", Inst{Op: OpFSub}, f64(1.5), f64(2.25), f64(-0.75)},
		{"fmul", Inst{Op: OpFMul}, f64(1.5), f64(2.0), f64(3.0)},
		{"fdiv", Inst{Op: OpFDiv}, f64(3.0), f64(2.0), f64(1.5)},
		{"fdiv by zero is +inf", Inst{Op: OpFDiv}, f64(1.0), f64(0.0), f64(math.Inf(1))},
		{"fneg", Inst{Op: OpFNeg}, f64(2.5), 0, f64(-2.5)},
		{"cvtif", Inst{Op: OpCvtIF}, negU64(3), 0, f64(-3.0)},
		{"cvtfi", Inst{Op: OpCvtFI}, f64(-3.9), 0, negU64(3)},
		{"cvtfi nan is zero", Inst{Op: OpCvtFI}, f64(math.NaN()), 0, 0},
		{"cvtfi +inf saturates", Inst{Op: OpCvtFI}, f64(math.Inf(1)), 0, uint64(math.MaxInt64)},
		{"cvtfi -inf saturates", Inst{Op: OpCvtFI}, f64(math.Inf(-1)), 0, 1 << 63},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Eval(tt.inst, tt.v1, tt.v2)
			if got.Value != tt.want {
				t.Errorf("Eval(%v).Value = %#x, want %#x", tt.inst, got.Value, tt.want)
			}
		})
	}
}

func TestEvalMemoryAndBranches(t *testing.T) {
	ld := Eval(Inst{Op: OpLd, Imm: 16}, 100, 0)
	if ld.Addr != 116 {
		t.Errorf("load address = %d, want 116", ld.Addr)
	}
	st := Eval(Inst{Op: OpSt, Imm: -8}, 100, 55)
	if st.Addr != 92 || st.StoreValue != 55 {
		t.Errorf("store = (%d,%d), want (92,55)", st.Addr, st.StoreValue)
	}

	branches := []struct {
		name   string
		inst   Inst
		v1, v2 uint64
		taken  bool
	}{
		{"beq taken", Inst{Op: OpBeq, Imm: 9}, 5, 5, true},
		{"beq not taken", Inst{Op: OpBeq, Imm: 9}, 5, 6, false},
		{"bne taken", Inst{Op: OpBne, Imm: 9}, 5, 6, true},
		{"blt signed taken", Inst{Op: OpBlt, Imm: 9}, negU64(1), 0, true},
		{"bge taken on equal", Inst{Op: OpBge, Imm: 9}, 7, 7, true},
		{"jmp always taken", Inst{Op: OpJmp, Imm: 9}, 0, 0, true},
	}
	for _, tt := range branches {
		t.Run(tt.name, func(t *testing.T) {
			got := Eval(tt.inst, tt.v1, tt.v2)
			if got.Taken != tt.taken {
				t.Errorf("Taken = %v, want %v", got.Taken, tt.taken)
			}
			if got.Taken && got.Target != 9 {
				t.Errorf("Target = %d, want 9", got.Target)
			}
		})
	}
}

// Eval is a pure function: equal inputs must give equal outputs, for any
// opcode and operand values, and it must never panic (totality).
func TestQuickEvalPureAndTotal(t *testing.T) {
	f := func(opRaw uint8, imm int64, v1, v2 uint64) bool {
		in := Inst{Op: Op(opRaw % uint8(numOps)), Rd: 1, Rs1: 2, Rs2: 3, Imm: imm}
		a := Eval(in, v1, v2)
		b := Eval(in, v1, v2)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// negU64 returns the two's-complement encoding of -x without constant
// overflow complaints from the compiler.
func negU64(x uint64) uint64 { return -x }
