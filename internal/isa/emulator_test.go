package isa

import (
	"testing"
	"testing/quick"
)

// sumProgram computes sum(1..n) into r3 and stores it to data word 0.
func sumProgram(n int64) *Program {
	return &Program{
		Name: "sum",
		Code: []Inst{
			/*0*/ {Op: OpAddi, Rd: 1, Rs1: ZeroReg, Imm: n}, // r1 = n
			/*1*/ {Op: OpAddi, Rd: 3, Rs1: ZeroReg, Imm: 0}, // r3 = 0
			/*2*/ {Op: OpBeq, Rs1: 1, Rs2: ZeroReg, Imm: 6}, // while r1 != 0
			/*3*/ {Op: OpAdd, Rd: 3, Rs1: 3, Rs2: 1}, //   r3 += r1
			/*4*/ {Op: OpAddi, Rd: 1, Rs1: 1, Imm: -1}, //   r1--
			/*5*/ {Op: OpJmp, Imm: 2},
			/*6*/ {Op: OpSt, Rs1: ZeroReg, Rs2: 3, Imm: 0}, // mem[0] = r3
			/*7*/ {Op: OpHalt},
		},
		DataSize: 64,
	}
}

func TestMachineSumLoop(t *testing.T) {
	m, err := NewMachine(sumProgram(10))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1 << 20)
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
	if got := m.Reg(IntReg(3)); got != 55 {
		t.Errorf("r3 = %d, want 55", got)
	}
	if got := m.ReadMem(0); got != 55 {
		t.Errorf("mem[0] = %d, want 55", got)
	}
	if m.Stores() != 1 {
		t.Errorf("stores = %d, want 1", m.Stores())
	}
}

func TestMachineFibonacci(t *testing.T) {
	// Iterative fibonacci: fib(12) = 144, stored at word 1.
	p := &Program{
		Name: "fib",
		Code: []Inst{
			/*0*/ {Op: OpAddi, Rd: 1, Rs1: ZeroReg, Imm: 12}, // counter
			/*1*/ {Op: OpAddi, Rd: 2, Rs1: ZeroReg, Imm: 0}, // a
			/*2*/ {Op: OpAddi, Rd: 3, Rs1: ZeroReg, Imm: 1}, // b
			/*3*/ {Op: OpBeq, Rs1: 1, Rs2: ZeroReg, Imm: 8},
			/*4*/ {Op: OpAdd, Rd: 4, Rs1: 2, Rs2: 3}, // t = a+b
			/*5*/ {Op: OpOr, Rd: 2, Rs1: 3, Rs2: ZeroReg},
			/*6*/ {Op: OpOr, Rd: 3, Rs1: 4, Rs2: ZeroReg},
			/*7*/ {Op: OpAddi, Rd: 1, Rs1: 1, Imm: -1},
			/*8 -> loop back*/
		},
		DataSize: 64,
	}
	p.Code = append(p.Code[:8], Inst{Op: OpJmp, Imm: 3})
	p.Code[3] = Inst{Op: OpBeq, Rs1: 1, Rs2: ZeroReg, Imm: 9}
	p.Code = append(p.Code,
		Inst{Op: OpSt, Rs1: ZeroReg, Rs2: 2, Imm: 8},
		Inst{Op: OpHalt},
	)
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1 << 20)
	if got := m.ReadMem(8); got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
}

func TestMachineMemoryClamping(t *testing.T) {
	p := &Program{
		Name: "clamp",
		Code: []Inst{
			{Op: OpAddi, Rd: 1, Rs1: ZeroReg, Imm: 1000}, // way past 64-byte segment
			{Op: OpSt, Rs1: 1, Rs2: 1, Imm: 5},           // unaligned + out of range
			{Op: OpLd, Rd: 2, Rs1: 1, Imm: 5},
			{Op: OpHalt},
		},
		DataSize: 64,
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if got := m.Reg(IntReg(2)); got != 1000 {
		t.Errorf("load after clamped store = %d, want 1000", got)
	}
}

func TestMachineZeroRegisterImmutable(t *testing.T) {
	p := &Program{
		Name: "zero",
		Code: []Inst{
			{Op: OpAddi, Rd: ZeroReg, Rs1: ZeroReg, Imm: 99},
			{Op: OpAdd, Rd: 1, Rs1: ZeroReg, Rs2: ZeroReg},
			{Op: OpHalt},
		},
		DataSize: 8,
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if got := m.Reg(ZeroReg); got != 0 {
		t.Errorf("r0 = %d, want 0", got)
	}
	if got := m.Reg(IntReg(1)); got != 0 {
		t.Errorf("r1 = %d, want 0", got)
	}
}

func TestMachineInitSegment(t *testing.T) {
	p := &Program{
		Name: "init",
		Code: []Inst{
			{Op: OpLd, Rd: 1, Rs1: ZeroReg, Imm: 16},
			{Op: OpHalt},
		},
		DataSize: 64,
		Init:     []uint64{11, 22, 33},
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	if got := m.Reg(IntReg(1)); got != 33 {
		t.Errorf("loaded %d, want 33", got)
	}
}

func TestMachineRunOffEndHalts(t *testing.T) {
	p := &Program{Name: "off-end", Code: []Inst{{Op: OpNop}}, DataSize: 8}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Run(10); n != 1 {
		t.Errorf("retired %d, want 1", n)
	}
	if !m.Halted() {
		t.Error("machine should halt after running off the end")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	tests := []struct {
		name string
		p    Program
	}{
		{"empty", Program{}},
		{"branch target out of range", Program{Code: []Inst{{Op: OpJmp, Imm: 5}}}},
		{"negative branch target", Program{Code: []Inst{{Op: OpBeq, Imm: -1}, {Op: OpHalt}}}},
		{"bad opcode", Program{Code: []Inst{{Op: Op(200)}}}},
		{"bad register", Program{Code: []Inst{{Op: OpAdd, Rd: 99}}}},
		{"negative data size", Program{Code: []Inst{{Op: OpHalt}}, DataSize: -1}},
		{"too many init words", Program{Code: []Inst{{Op: OpHalt}}, DataSize: 8, Init: []uint64{1, 2, 3}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestStoreSignatureOrderSensitive(t *testing.T) {
	mk := func(first, second uint64) uint64 {
		p := &Program{
			Name: "sig",
			Code: []Inst{
				{Op: OpAddi, Rd: 1, Rs1: ZeroReg, Imm: int64(first)},
				{Op: OpAddi, Rd: 2, Rs1: ZeroReg, Imm: int64(second)},
				{Op: OpSt, Rs1: ZeroReg, Rs2: 1, Imm: 0},
				{Op: OpSt, Rs1: ZeroReg, Rs2: 2, Imm: 8},
				{Op: OpHalt},
			},
			DataSize: 64,
		}
		m, err := NewMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(100)
		return m.StoreSignature()
	}
	if mk(1, 2) == mk(2, 1) {
		t.Error("store signature should distinguish store order/values")
	}
}

// The emulator is deterministic: running the same program twice produces the
// same retired count, final PC, registers and store signature.
func TestQuickEmulatorDeterminism(t *testing.T) {
	f := func(n uint8) bool {
		run := func() (uint64, int, uint64) {
			m, err := NewMachine(sumProgram(int64(n % 50)))
			if err != nil {
				t.Fatal(err)
			}
			m.Run(1 << 20)
			return m.Reg(IntReg(3)), m.Retired(), m.StoreSignature()
		}
		a1, b1, c1 := run()
		a2, b2, c2 := run()
		want := uint64(n%50) * (uint64(n%50) + 1) / 2
		return a1 == a2 && b1 == b2 && c1 == c2 && a1 == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStoreHookObservesStores(t *testing.T) {
	m, err := NewMachine(sumProgram(3))
	if err != nil {
		t.Fatal(err)
	}
	var seen []Store
	m.StoreHook = func(s Store) { seen = append(seen, s) }
	m.Run(1000)
	if len(seen) != 1 || seen[0] != (Store{Addr: 0, Value: 6}) {
		t.Errorf("hook saw %v, want [{0 6}]", seen)
	}
}
