package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// ErrNoProgram is returned when a Machine is run without a program.
var ErrNoProgram = errors.New("isa: machine has no program")

// Store describes one architecturally committed store, in program order.
// The stream of stores is the observable output of a program: the paper's
// SRT/BlackJack detection model compares exactly this stream between the
// leading and trailing threads, and our fault-injection harness compares it
// against the golden model to classify silent corruptions.
type Store struct {
	Addr  uint64
	Value uint64
}

// Program is an executable instruction sequence. The PC is an index into it.
type Program struct {
	// Name identifies the workload (e.g. a synthetic SPEC2000 profile name).
	Name string
	// Code is the instruction sequence.
	Code []Inst
	// DataSize is the size in bytes of the zero-initialized data segment.
	DataSize int
	// Init seeds data-segment words before execution: Init[i] is written to
	// byte offset 8*i.
	Init []uint64
}

// Validate checks structural well-formedness: every branch target must be a
// valid instruction index and register names must be in range.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return errors.New("isa: empty program")
	}
	for i, in := range p.Code {
		if in.Op >= Op(numOps) {
			return fmt.Errorf("isa: instruction %d: invalid opcode %d", i, in.Op)
		}
		if in.IsBranch() {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("isa: instruction %d (%s): branch target %d out of range [0,%d)",
					i, in, in.Imm, len(p.Code))
			}
		}
		for _, r := range [3]Reg{in.Rd, in.Rs1, in.Rs2} {
			if r >= NumArchRegs {
				return fmt.Errorf("isa: instruction %d (%s): register %d out of range", i, in, r)
			}
		}
	}
	if p.DataSize < 0 {
		return fmt.Errorf("isa: negative data size %d", p.DataSize)
	}
	if len(p.Init)*8 > p.dataBytes() {
		return fmt.Errorf("isa: %d init words exceed data segment of %d bytes", len(p.Init), p.dataBytes())
	}
	return nil
}

func (p *Program) dataBytes() int {
	if p.DataSize < 8 {
		return 8
	}
	return p.DataSize
}

// Machine is the functional, in-order, one-instruction-per-step emulator. It
// is the golden model: the out-of-order pipeline must commit exactly the same
// architectural state and store stream (absent injected faults).
//
// The zero value is not usable; construct with NewMachine.
type Machine struct {
	prog *Program

	intReg [NumIntRegs]uint64
	fpReg  [NumFPRegs]uint64
	mem    []byte

	pc     int
	halted bool

	retired int
	stores  int
	sig     uint64 // running FNV-1a signature over the store stream

	// StoreHook, when non-nil, observes every committed store in order.
	StoreHook func(Store)
}

// NewMachine builds a machine ready to execute p from instruction 0 with a
// zeroed register file and the data segment initialized from p.Init.
func NewMachine(p *Program) (*Machine, error) {
	if p == nil || len(p.Code) == 0 {
		return nil, ErrNoProgram
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: p, mem: make([]byte, p.dataBytes())}
	for i, w := range p.Init {
		binary.LittleEndian.PutUint64(m.mem[8*i:], w)
	}
	return m, nil
}

// ClampAddr maps an arbitrary effective address onto a data segment of the
// given size: the address is 8-byte aligned and wrapped to the segment size.
// This makes every memory access total and deterministic, which matters both
// for wrong-path execution in the pipeline and for fault-corrupted addresses.
// The pipeline's memory system uses the same mapping so the golden model and
// the out-of-order core always agree on effective addresses.
func ClampAddr(addr uint64, size int) uint64 {
	return (addr &^ 7) % uint64(size)
}

func clampAddr(addr uint64, size int) uint64 { return ClampAddr(addr, size) }

// ReadMem returns the 8-byte word at the (clamped) address.
func (m *Machine) ReadMem(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(m.mem[clampAddr(addr, len(m.mem)):])
}

// WriteMem stores a 8-byte word at the (clamped) address.
func (m *Machine) WriteMem(addr uint64, v uint64) {
	binary.LittleEndian.PutUint64(m.mem[clampAddr(addr, len(m.mem)):], v)
}

// Reg returns the current value of an architectural register.
func (m *Machine) Reg(r Reg) uint64 {
	if r.IsFP() {
		return m.fpReg[r-NumIntRegs]
	}
	if r == ZeroReg {
		return 0
	}
	return m.intReg[r]
}

// SetReg writes an architectural register (writes to the integer zero
// register are discarded).
func (m *Machine) SetReg(r Reg, v uint64) {
	if r.IsFP() {
		m.fpReg[r-NumIntRegs] = v
		return
	}
	if r == ZeroReg {
		return
	}
	m.intReg[r] = v
}

// PC returns the current program counter (instruction index).
func (m *Machine) PC() int { return m.pc }

// Halted reports whether the program has executed OpHalt.
func (m *Machine) Halted() bool { return m.halted }

// Retired returns the number of instructions executed so far.
func (m *Machine) Retired() int { return m.retired }

// Stores returns the number of stores committed so far.
func (m *Machine) Stores() int { return m.stores }

// StoreSignature returns an order-sensitive hash of every (addr, value) store
// committed so far. Two executions with equal signatures and counts produced
// the same observable output.
func (m *Machine) StoreSignature() uint64 { return m.sig }

// ChainStoreSig extends an order-sensitive store-stream signature with one
// (addr, value) store. The golden-model emulator and the pipeline's released
// store stream use the same chaining, so equal signatures mean equal output.
func ChainStoreSig(sig, addr, val uint64) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], sig)
	binary.LittleEndian.PutUint64(buf[8:], addr)
	binary.LittleEndian.PutUint64(buf[16:], val)
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

func (m *Machine) recordStore(addr, val uint64) {
	m.stores++
	m.sig = ChainStoreSig(m.sig, addr, val)
	if m.StoreHook != nil {
		m.StoreHook(Store{Addr: addr, Value: val})
	}
}

// Step executes one instruction. It is a no-op once the machine has halted.
func (m *Machine) Step() {
	if m.halted {
		return
	}
	if m.pc < 0 || m.pc >= len(m.prog.Code) {
		// Running off the end of the program halts, mirroring the pipeline's
		// behaviour for fault-corrupted control flow.
		m.halted = true
		return
	}
	in := m.prog.Code[m.pc]
	var v1, v2 uint64
	if in.ReadsRs1() {
		v1 = m.Reg(in.Rs1)
	}
	if in.ReadsRs2() {
		v2 = m.Reg(in.Rs2)
	}
	out := Eval(in, v1, v2)

	next := m.pc + 1
	switch {
	case in.Op == OpHalt:
		m.halted = true
	case in.IsLoad():
		m.SetReg(in.Rd, m.ReadMem(out.Addr))
	case in.IsStore():
		a := clampAddr(out.Addr, len(m.mem))
		m.WriteMem(a, out.StoreValue)
		m.recordStore(a, out.StoreValue)
	case in.IsBranch():
		if out.Taken {
			next = out.Target
		}
	case in.WritesRd():
		m.SetReg(in.Rd, out.Value)
	}
	m.pc = next
	m.retired++
}

// Run executes until the program halts or maxInstrs instructions have
// retired, returning the number retired by this call.
func (m *Machine) Run(maxInstrs int) int {
	start := m.retired
	for !m.halted && m.retired-start < maxInstrs {
		m.Step()
	}
	return m.retired - start
}
