package isa

import (
	"testing"
)

// TestRunStopsExactlyAtBudget pins the Run contract at its boundary: the
// machine retires exactly maxInstrs and not one more, and a second call
// continues from there.
func TestRunStopsExactlyAtBudget(t *testing.T) {
	m, err := NewMachine(sumProgram(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Run(7); got != 7 {
		t.Fatalf("Run(7) retired %d, want 7", got)
	}
	if m.Retired() != 7 {
		t.Fatalf("Retired() = %d, want 7", m.Retired())
	}
	if m.Halted() {
		t.Fatal("machine halted inside a loop")
	}
	if got := m.Run(0); got != 0 {
		t.Fatalf("Run(0) retired %d, want 0", got)
	}
	if got := m.Run(3); got != 3 {
		t.Fatalf("second Run(3) retired %d, want 3", got)
	}
	if m.Retired() != 10 {
		t.Fatalf("Retired() = %d after 7+0+3, want 10", m.Retired())
	}
}

// TestRunHaltMidBudget: a halt inside the budget stops the run short and
// reports the true retired count (the halt instruction itself retires).
func TestRunHaltMidBudget(t *testing.T) {
	m, err := NewMachine(sumProgram(2)) // halts after 13 instructions
	if err != nil {
		t.Fatal(err)
	}
	got := m.Run(1 << 20)
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
	total := m.Retired()
	if got != total {
		t.Fatalf("Run returned %d, Retired() = %d", got, total)
	}
	// Re-running a halted machine is a no-op.
	if again := m.Run(100); again != 0 {
		t.Fatalf("Run after halt retired %d, want 0", again)
	}
	if m.Retired() != total {
		t.Fatalf("Retired() moved after halt: %d -> %d", total, m.Retired())
	}
}

// TestClampAddrEdges pins the address mapping at the memory edges: alignment
// masks the low 3 bits, wrapping keeps every access inside the segment, and
// the last aligned word is reachable.
func TestClampAddrEdges(t *testing.T) {
	cases := []struct {
		addr uint64
		size int
		want uint64
	}{
		{0, 64, 0},
		{7, 64, 0},           // aligns down to 0
		{8, 64, 8},           // exact word
		{63, 64, 56},         // last byte aligns to last word
		{64, 64, 0},          // one past the end wraps
		{71, 64, 0},          // aligns to 64, wraps to 0
		{120, 64, 56},        // aligned, wraps to last word
		{^uint64(0), 64, 56}, // max address: aligns to ...f8 = -8, wraps to 56
		{^uint64(0), 8, 0},   // minimum segment
		{9, 8, 0},            // everything lands on word 0
	}
	for _, c := range cases {
		if got := ClampAddr(c.addr, c.size); got != c.want {
			t.Errorf("ClampAddr(%#x, %d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

// TestArchStateRoundTrip: capture, run ahead, restore, run again — the replay
// must reproduce the store signature, count, PC and registers exactly.
func TestArchStateRoundTrip(t *testing.T) {
	p := sumProgram(50)
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(25)
	snap := m.CaptureArch()

	m.Run(1 << 20)
	wantSig, wantStores := m.StoreSignature(), m.Stores()
	wantPC, wantRetired := m.PC(), m.Retired()
	wantR3 := m.Reg(IntReg(3))

	m.RestoreArch(snap)
	if m.Retired() != 25 || m.StoreSignature() != snap.Sig {
		t.Fatalf("restore: retired=%d sig=%#x, want 25/%#x", m.Retired(), m.StoreSignature(), snap.Sig)
	}
	m.Run(1 << 20)
	if m.StoreSignature() != wantSig || m.Stores() != wantStores {
		t.Errorf("replay signature %#x/%d, want %#x/%d", m.StoreSignature(), m.Stores(), wantSig, wantStores)
	}
	if m.PC() != wantPC || m.Retired() != wantRetired {
		t.Errorf("replay pc=%d retired=%d, want %d/%d", m.PC(), m.Retired(), wantPC, wantRetired)
	}
	if got := m.Reg(IntReg(3)); got != wantR3 {
		t.Errorf("replay r3=%d, want %d", got, wantR3)
	}
}

// TestArchStateSnapshotIsolation: a captured snapshot must not alias live
// machine memory.
func TestArchStateSnapshotIsolation(t *testing.T) {
	m, err := NewMachine(sumProgram(50))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10)
	snap := m.CaptureArch()
	memBefore := append([]byte(nil), snap.Mem...)
	m.Run(1 << 20) // stores into memory
	for i := range snap.Mem {
		if snap.Mem[i] != memBefore[i] {
			t.Fatalf("snapshot memory mutated at byte %d", i)
		}
	}
}

// TestResetToReusesSlab: resetting to the same program reuses the memory
// slab and restores pristine initial state.
func TestResetToReusesSlab(t *testing.T) {
	p := &Program{
		Name:     "init",
		Code:     []Inst{{Op: OpLd, Rd: 1, Rs1: ZeroReg, Imm: 0}, {Op: OpSt, Rs1: ZeroReg, Rs2: 1, Imm: 8}, {Op: OpHalt}},
		DataSize: 64,
		Init:     []uint64{0xABCD},
	}
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if err := m.ResetTo(p); err != nil {
		t.Fatal(err)
	}
	if m.Retired() != 0 || m.Stores() != 0 || m.StoreSignature() != 0 || m.PC() != 0 || m.Halted() {
		t.Fatalf("ResetTo left state behind: retired=%d stores=%d pc=%d", m.Retired(), m.Stores(), m.PC())
	}
	if got := m.ReadMem(0); got != 0xABCD {
		t.Fatalf("init word after reset = %#x, want 0xABCD", got)
	}
	if got := m.ReadMem(8); got != 0 {
		t.Fatalf("data word 1 not re-zeroed: %#x", got)
	}
	if got := m.Reg(IntReg(1)); got != 0 {
		t.Fatalf("r1 not re-zeroed: %#x", got)
	}
}

// TestAcquireReleaseMachine: a pooled machine behaves exactly like a fresh
// one.
func TestAcquireReleaseMachine(t *testing.T) {
	p := sumProgram(10)
	ref, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(1 << 20)

	for i := 0; i < 3; i++ {
		m, err := AcquireMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(1 << 20)
		if m.StoreSignature() != ref.StoreSignature() || m.Retired() != ref.Retired() {
			t.Fatalf("pooled run %d diverged: sig %#x vs %#x", i, m.StoreSignature(), ref.StoreSignature())
		}
		ReleaseMachine(m)
	}
}

// TestTrajectoryMemoizedRewind: arbitrary-order queries against the
// trajectory agree with fresh machines run to the same point, including
// queries past the halt.
func TestTrajectoryMemoizedRewind(t *testing.T) {
	p := sumProgram(100)
	ref, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	total := ref.Run(1 << 20)

	tr := NewTrajectory(p)
	for _, k := range []uint64{200, 50, 125, 50, 0, uint64(total) + 500, 125} {
		a, err := tr.At(k)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		fresh.Run(int(k))
		if a.Sig != fresh.StoreSignature() || a.Stores != uint64(fresh.Stores()) {
			t.Errorf("At(%d): sig/stores %#x/%d, want %#x/%d", k, a.Sig, a.Stores, fresh.StoreSignature(), fresh.Stores())
		}
		if a.PC != fresh.PC() || a.Halted != fresh.Halted() {
			t.Errorf("At(%d): pc=%d halted=%v, want %d/%v", k, a.PC, a.Halted, fresh.PC(), fresh.Halted())
		}
		for r := Reg(0); r < NumArchRegs; r++ {
			if a.Reg(r) != fresh.Reg(r) {
				t.Fatalf("At(%d): reg %d = %#x, want %#x", k, r, a.Reg(r), fresh.Reg(r))
			}
		}
	}
}
