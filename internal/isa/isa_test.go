package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNaming(t *testing.T) {
	if got := IntReg(7).String(); got != "r7" {
		t.Errorf("IntReg(7) = %q, want r7", got)
	}
	if got := FPReg(3).String(); got != "f3" {
		t.Errorf("FPReg(3) = %q, want f3", got)
	}
	if IntReg(31).IsFP() {
		t.Error("IntReg(31).IsFP() = true, want false")
	}
	if !FPReg(0).IsFP() {
		t.Error("FPReg(0).IsFP() = false, want true")
	}
}

func TestOpStringsAllDefined(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if s := op.String(); s == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
}

func TestInstructionClassification(t *testing.T) {
	tests := []struct {
		name  string
		inst  Inst
		class UnitClass
		load  bool
		store bool
		br    bool
	}{
		{"add", Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, UnitIntALU, false, false, false},
		{"mul", Inst{Op: OpMul, Rd: 1, Rs1: 2, Rs2: 3}, UnitIntMul, false, false, false},
		{"div", Inst{Op: OpDiv, Rd: 1, Rs1: 2, Rs2: 3}, UnitIntDiv, false, false, false},
		{"rem", Inst{Op: OpRem, Rd: 1, Rs1: 2, Rs2: 3}, UnitIntDiv, false, false, false},
		{"fadd", Inst{Op: OpFAdd, Rd: FPReg(1), Rs1: FPReg(2), Rs2: FPReg(3)}, UnitFPALU, false, false, false},
		{"fmul", Inst{Op: OpFMul, Rd: FPReg(1), Rs1: FPReg(2), Rs2: FPReg(3)}, UnitFPMul, false, false, false},
		{"fdiv shares fpMul ways", Inst{Op: OpFDiv, Rd: FPReg(1), Rs1: FPReg(2), Rs2: FPReg(3)}, UnitFPMul, false, false, false},
		{"ld", Inst{Op: OpLd, Rd: 1, Rs1: 2}, UnitMem, true, false, false},
		{"st", Inst{Op: OpSt, Rs1: 2, Rs2: 3}, UnitMem, false, true, false},
		{"fld", Inst{Op: OpFLd, Rd: FPReg(1), Rs1: 2}, UnitMem, true, false, false},
		{"fst", Inst{Op: OpFSt, Rs1: 2, Rs2: FPReg(3)}, UnitMem, false, true, false},
		{"beq on intALU", Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 0}, UnitIntALU, false, false, true},
		{"jmp", Inst{Op: OpJmp, Imm: 0}, UnitIntALU, false, false, true},
		{"nop", Inst{Op: OpNop}, UnitIntALU, false, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.inst.Class(); got != tt.class {
				t.Errorf("Class() = %v, want %v", got, tt.class)
			}
			if got := tt.inst.IsLoad(); got != tt.load {
				t.Errorf("IsLoad() = %v, want %v", got, tt.load)
			}
			if got := tt.inst.IsStore(); got != tt.store {
				t.Errorf("IsStore() = %v, want %v", got, tt.store)
			}
			if got := tt.inst.IsBranch(); got != tt.br {
				t.Errorf("IsBranch() = %v, want %v", got, tt.br)
			}
		})
	}
}

func TestOperandMetadata(t *testing.T) {
	tests := []struct {
		name                 string
		inst                 Inst
		rs1, rs2, rd, hasImm bool
	}{
		{"add reads both writes rd", Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, true, true, true, false},
		{"addi reads rs1 only", Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 5}, true, false, true, true},
		{"lui reads nothing", Inst{Op: OpLui, Rd: 1, Imm: 5}, false, false, true, true},
		{"store reads both writes none", Inst{Op: OpSt, Rs1: 1, Rs2: 2}, true, true, false, false},
		{"load reads rs1 writes rd", Inst{Op: OpLd, Rd: 1, Rs1: 2}, true, false, true, false},
		{"branch reads both", Inst{Op: OpBlt, Rs1: 1, Rs2: 2}, true, true, false, false},
		{"jmp reads nothing", Inst{Op: OpJmp, Imm: 3}, false, false, false, false},
		{"write to r0 discarded", Inst{Op: OpAdd, Rd: ZeroReg, Rs1: 1, Rs2: 2}, true, true, false, false},
		{"nop", Inst{Op: OpNop}, false, false, false, false},
		{"halt", Inst{Op: OpHalt}, false, false, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.inst.ReadsRs1(); got != tt.rs1 {
				t.Errorf("ReadsRs1() = %v, want %v", got, tt.rs1)
			}
			if got := tt.inst.ReadsRs2(); got != tt.rs2 {
				t.Errorf("ReadsRs2() = %v, want %v", got, tt.rs2)
			}
			if got := tt.inst.WritesRd(); got != tt.rd {
				t.Errorf("WritesRd() = %v, want %v", got, tt.rd)
			}
			if got := tt.inst.HasImm(); got != tt.hasImm {
				t.Errorf("HasImm() = %v, want %v", got, tt.hasImm)
			}
		})
	}
}

// Every opcode must map to a defined unit class, and only memory ops may map
// to the memory unit class.
func TestEveryOpHasConsistentClass(t *testing.T) {
	for op := Op(0); op < Op(numOps); op++ {
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3}
		c := in.Class()
		if c >= NumUnitClasses {
			t.Errorf("op %v: class %v out of range", op, c)
		}
		if (c == UnitMem) != in.IsMem() {
			t.Errorf("op %v: class %v inconsistent with IsMem()=%v", op, c, in.IsMem())
		}
	}
}

// A store never writes a register; a branch never writes a register; loads
// always do (unless rd is the zero register). Checked exhaustively over the
// opcode space via testing/quick-generated register fields.
func TestQuickMetadataInvariants(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{Op: Op(opRaw % uint8(numOps)), Rd: Reg(rd % NumArchRegs),
			Rs1: Reg(rs1 % NumArchRegs), Rs2: Reg(rs2 % NumArchRegs), Imm: imm}
		if in.IsStore() && in.WritesRd() {
			return false
		}
		if in.IsBranch() && in.WritesRd() {
			return false
		}
		if in.IsLoad() && in.Rd != ZeroReg && !in.WritesRd() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
