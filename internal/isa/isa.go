// Package isa defines the compact RISC instruction set used by the BlackJack
// simulator, together with a pure evaluation function shared by the
// functional (golden-model) emulator and the cycle-level pipeline.
//
// The ISA stands in for the Alpha ISA the paper's SimpleScalar setup used:
// any load/store RISC ISA exercises the same pipeline structures (frontend
// ways, typed backend ways, load/store queue, branch units), which is all the
// paper's metrics depend on.
//
// Registers are numbered 0..63: 0..31 are integer registers (register 0 is
// hardwired to zero), 32..63 are floating-point registers holding raw IEEE-754
// bit patterns. Branch and jump targets are absolute instruction indices; a
// program is simply a slice of Inst values and the program counter is an index
// into that slice.
package isa

import "fmt"

// Reg identifies an architectural register. Values 0..31 address the integer
// file (R0 reads as zero and ignores writes); values 32..63 address the
// floating-point file.
type Reg uint8

// NumIntRegs and friends describe the architectural register space.
const (
	NumIntRegs  = 32
	NumFPRegs   = 32
	NumArchRegs = NumIntRegs + NumFPRegs

	// ZeroReg is the hardwired-zero integer register.
	ZeroReg Reg = 0
)

// IntReg returns the Reg naming integer register i.
func IntReg(i int) Reg { return Reg(i) }

// FPReg returns the Reg naming floating-point register i.
func FPReg(i int) Reg { return Reg(NumIntRegs + i) }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs }

// String renders the register in assembly style (r7, f3).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	}
	return fmt.Sprintf("r%d", int(r))
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The mix covers every backend unit class in Table 1 of the
// paper: integer ALUs, integer multipliers, integer dividers, FP ALUs and FP
// multipliers, plus memory ports and (ALU-executed) branches.
const (
	OpNop Op = iota

	// Integer ALU (1 cycle).
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpShl  // rd = rs1 << (rs2 & 63)
	OpShr  // rd = rs1 >> (rs2 & 63)
	OpSlt  // rd = (int64(rs1) < int64(rs2)) ? 1 : 0
	OpAddi // rd = rs1 + imm
	OpAndi // rd = rs1 & imm
	OpOri  // rd = rs1 | imm
	OpXori // rd = rs1 ^ imm
	OpSlti // rd = (int64(rs1) < imm) ? 1 : 0
	OpLui  // rd = imm << 16

	// Integer multiply / divide.
	OpMul // rd = rs1 * rs2
	OpDiv // rd = int64(rs1) / (int64(rs2)|1)   (divisor forced odd: total function)
	OpRem // rd = int64(rs1) % (int64(rs2)|1)

	// Floating point (operands/results are float64 bit patterns).
	OpFAdd  // rd = rs1 +. rs2
	OpFSub  // rd = rs1 -. rs2
	OpFMul  // rd = rs1 *. rs2
	OpFDiv  // rd = rs1 /. rs2 (executes on an FP multiplier way)
	OpFNeg  // rd = -. rs1
	OpCvtIF // rd = float64(int64(rs1)) bits (int source register)
	OpCvtFI // rd = uint64(int64(float64 rs1)) (FP source register, int dest)

	// Memory (2 ports; loads hit in L1 in 2 cycles).
	OpLd  // rd  = mem64[rs1 + imm]       (integer destination)
	OpSt  // mem64[rs1 + imm] = rs2       (integer source)
	OpFLd // fd  = mem64[rs1 + imm]       (FP destination)
	OpFSt // mem64[rs1 + imm] = fs2       (FP source)

	// Control (execute on integer ALU ways).
	OpBeq // if rs1 == rs2: pc = imm
	OpBne // if rs1 != rs2: pc = imm
	OpBlt // if int64(rs1) < int64(rs2): pc = imm
	OpBge // if int64(rs1) >= int64(rs2): pc = imm
	OpJmp // pc = imm

	OpHalt // stop the program

	numOps // sentinel
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSlt: "slt", OpAddi: "addi",
	OpAndi: "andi", OpOri: "ori", OpXori: "xori", OpSlti: "slti", OpLui: "lui",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpLd: "ld", OpSt: "st", OpFLd: "fld", OpFSt: "fst",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJmp: "jmp",
	OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOps is the number of defined opcodes (useful for fault models that
// perturb opcodes while keeping them decodable).
const NumOps = int(numOps)

// UnitClass identifies the class of backend way an instruction executes on.
// Counts per class come from Table 1 of the paper.
type UnitClass uint8

// Backend unit classes.
const (
	UnitIntALU UnitClass = iota // 4 ways; also executes branches and NOPs
	UnitIntMul                  // 2 ways
	UnitIntDiv                  // 2 ways
	UnitFPALU                   // 2 ways
	UnitFPMul                   // 2 ways; also executes FP divide
	UnitMem                     // 2 ways (cache ports / AGUs)
	NumUnitClasses
)

var unitNames = [NumUnitClasses]string{
	UnitIntALU: "intALU", UnitIntMul: "intMul", UnitIntDiv: "intDiv",
	UnitFPALU: "fpALU", UnitFPMul: "fpMul", UnitMem: "mem",
}

// String returns a short name for the unit class.
func (u UnitClass) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Inst is one decoded instruction. Imm doubles as the ALU immediate, the
// load/store displacement, and the absolute branch/jump target.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// String renders the instruction in a readable assembly-like form.
func (in Inst) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return in.Op.String()
	case in.Op == OpJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case in.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.HasImm():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// IsBranch reports whether the instruction is a conditional branch or jump.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in Inst) IsCondBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads memory.
func (in Inst) IsLoad() bool { return in.Op == OpLd || in.Op == OpFLd }

// IsStore reports whether the instruction writes memory.
func (in Inst) IsStore() bool { return in.Op == OpSt || in.Op == OpFSt }

// IsMem reports whether the instruction accesses memory.
func (in Inst) IsMem() bool { return in.IsLoad() || in.IsStore() }

// HasImm reports whether the instruction consumes its immediate field as an
// ALU operand.
func (in Inst) HasImm() bool {
	switch in.Op {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpLui:
		return true
	}
	return false
}

// ReadsRs1 reports whether the instruction reads its first source register.
func (in Inst) ReadsRs1() bool {
	switch in.Op {
	case OpNop, OpHalt, OpJmp, OpLui:
		return false
	}
	return true
}

// ReadsRs2 reports whether the instruction reads its second source register.
func (in Inst) ReadsRs2() bool {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt,
		OpMul, OpDiv, OpRem,
		OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpSt, OpFSt,
		OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// WritesRd reports whether the instruction writes a destination register.
// Writes to the integer zero register are architecturally discarded and are
// treated as not writing at all.
func (in Inst) WritesRd() bool {
	switch in.Op {
	case OpNop, OpHalt, OpSt, OpFSt, OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return false
	}
	return in.Rd != ZeroReg
}

// Class returns the backend unit class the instruction executes on. Branches
// and NOPs execute on integer ALU ways; FP divide shares the FP multiplier
// ways (the machine has no dedicated FP divider, per Table 1).
func (in Inst) Class() UnitClass {
	switch in.Op {
	case OpMul:
		return UnitIntMul
	case OpDiv, OpRem:
		return UnitIntDiv
	case OpFAdd, OpFSub, OpFNeg, OpCvtIF, OpCvtFI:
		return UnitFPALU
	case OpFMul, OpFDiv:
		return UnitFPMul
	case OpLd, OpSt, OpFLd, OpFSt:
		return UnitMem
	default:
		return UnitIntALU
	}
}
