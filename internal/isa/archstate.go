package isa

import (
	"encoding/binary"
	"sort"
	"sync"
)

// This file provides cheap architectural snapshots of the functional machine
// and a memoized snapshot trajectory shared by a whole fault campaign. The
// sampled-simulation engine (internal/sim fast-forward) runs the golden
// emulator — roughly two orders of magnitude faster than the cycle-accurate
// pipeline — up to a handoff instruction, captures the architectural state
// here, and seeds a warm pipeline.Machine from it. A pool of reusable
// machines keeps the memory slab and register scratch off the per-run
// allocation path.

// ArchState is one architectural snapshot of a Machine: everything the ISA
// defines (PC, registers, memory) plus the store-stream accounting needed to
// continue output verification from this point. Snapshots are immutable once
// captured and safe to share across goroutines.
type ArchState struct {
	PC      int
	Halted  bool
	Retired uint64
	Stores  uint64
	Sig     uint64

	IntReg [NumIntRegs]uint64
	FPReg  [NumFPRegs]uint64
	Mem    []byte
}

// Reg returns the architectural register value in the snapshot.
func (a *ArchState) Reg(r Reg) uint64 {
	if r.IsFP() {
		return a.FPReg[r-NumIntRegs]
	}
	if r == ZeroReg {
		return 0
	}
	return a.IntReg[r]
}

// CaptureArch snapshots the machine's architectural state. The snapshot owns
// a private copy of the memory image, so it stays valid as the machine runs
// on.
func (m *Machine) CaptureArch() *ArchState {
	return &ArchState{
		PC:      m.pc,
		Halted:  m.halted,
		Retired: uint64(m.retired),
		Stores:  uint64(m.stores),
		Sig:     m.sig,
		IntReg:  m.intReg,
		FPReg:   m.fpReg,
		Mem:     append([]byte(nil), m.mem...),
	}
}

// RestoreArch rewinds (or advances) the machine to a previously captured
// snapshot of the same program. The snapshot is copied, never aliased.
func (m *Machine) RestoreArch(a *ArchState) {
	m.pc = a.PC
	m.halted = a.Halted
	m.retired = int(a.Retired)
	m.stores = int(a.Stores)
	m.sig = a.Sig
	m.intReg = a.IntReg
	m.fpReg = a.FPReg
	if cap(m.mem) >= len(a.Mem) {
		m.mem = m.mem[:len(a.Mem)]
	} else {
		m.mem = make([]byte, len(a.Mem))
	}
	copy(m.mem, a.Mem)
}

// ResetTo reinitializes the machine to execute p from instruction 0 with a
// zeroed register file, reusing the memory slab when it is large enough. A
// program the machine was already running is not re-validated.
func (m *Machine) ResetTo(p *Program) error {
	if p == nil || len(p.Code) == 0 {
		return ErrNoProgram
	}
	if p != m.prog {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	size := p.dataBytes()
	if cap(m.mem) >= size {
		m.mem = m.mem[:size]
		clear(m.mem)
	} else {
		m.mem = make([]byte, size)
	}
	for i, w := range p.Init {
		binary.LittleEndian.PutUint64(m.mem[8*i:], w)
	}
	m.prog = p
	m.intReg = [NumIntRegs]uint64{}
	m.fpReg = [NumFPRegs]uint64{}
	m.pc = 0
	m.halted = false
	m.retired = 0
	m.stores = 0
	m.sig = 0
	m.StoreHook = nil
	return nil
}

// machinePool recycles functional machines: the memory slab dominates the
// per-NewMachine allocation cost, and campaigns rewind the golden model
// constantly.
var machinePool sync.Pool

// AcquireMachine returns a machine ready to execute p from instruction 0,
// reusing a pooled machine's memory slab when one is available. Pair with
// ReleaseMachine.
func AcquireMachine(p *Program) (*Machine, error) {
	if v := machinePool.Get(); v != nil {
		m := v.(*Machine)
		if err := m.ResetTo(p); err != nil {
			machinePool.Put(m)
			return nil, err
		}
		return m, nil
	}
	return NewMachine(p)
}

// ReleaseMachine returns m to the pool; the caller must not use it afterwards.
func ReleaseMachine(m *Machine) {
	if m == nil {
		return
	}
	m.StoreHook = nil
	machinePool.Put(m)
}

// Trajectory memoizes architectural snapshots along one program's functional
// execution, shared (mutex-protected) across campaign workers. A request
// below the cursor's position rewinds through the nearest earlier snapshot —
// never by replaying from instruction 0 unless no snapshot precedes it.
type Trajectory struct {
	mu    sync.Mutex
	prog  *Program
	m     *Machine     // forward cursor, pooled lazily
	snaps []*ArchState // memoized snapshots, sorted by Retired
}

// NewTrajectory builds an empty trajectory over p.
func NewTrajectory(p *Program) *Trajectory { return &Trajectory{prog: p} }

// At returns the architectural state after k retired instructions (or the
// program's halt, whichever comes first). The returned snapshot is shared
// and must not be mutated.
func (tr *Trajectory) At(k uint64) (*ArchState, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if i := tr.find(k); i >= 0 {
		return tr.snaps[i], nil
	}
	if err := tr.seek(k); err != nil {
		return nil, err
	}
	a := tr.m.CaptureArch()
	tr.insert(a)
	return a, nil
}

// SigAt returns the golden store signature and store count after k retired
// instructions (or the program's halt, whichever comes first).
func (tr *Trajectory) SigAt(k uint64) (sig, stores uint64, err error) {
	a, err := tr.At(k)
	if err != nil {
		return 0, 0, err
	}
	return a.Sig, a.Stores, nil
}

// find returns the index of a memoized snapshot that answers "state after k
// retired instructions" — an exact hit, or a halted snapshot at or before k
// (a halted machine no longer changes state) — or -1.
func (tr *Trajectory) find(k uint64) int {
	i := sort.Search(len(tr.snaps), func(i int) bool { return tr.snaps[i].Retired >= k })
	if i < len(tr.snaps) && tr.snaps[i].Retired == k {
		return i
	}
	if n := len(tr.snaps); n > 0 && tr.snaps[n-1].Halted && tr.snaps[n-1].Retired <= k {
		return n - 1
	}
	return -1
}

// seek positions the cursor machine exactly k retired instructions in (or at
// the halt), restoring the nearest earlier snapshot when the cursor is ahead
// of k or behind a memoized shortcut.
func (tr *Trajectory) seek(k uint64) error {
	if tr.m == nil {
		m, err := AcquireMachine(tr.prog)
		if err != nil {
			return err
		}
		tr.m = m
	} else if uint64(tr.m.Retired()) > k {
		if err := tr.m.ResetTo(tr.prog); err != nil {
			return err
		}
	}
	if i := sort.Search(len(tr.snaps), func(i int) bool { return tr.snaps[i].Retired > k }); i > 0 {
		if s := tr.snaps[i-1]; s.Retired > uint64(tr.m.Retired()) {
			tr.m.RestoreArch(s)
		}
	}
	tr.m.Run(int(k - uint64(tr.m.Retired())))
	return nil
}

// insert memoizes a snapshot, keeping snaps sorted by Retired.
func (tr *Trajectory) insert(a *ArchState) {
	i := sort.Search(len(tr.snaps), func(i int) bool { return tr.snaps[i].Retired >= a.Retired })
	if i < len(tr.snaps) && tr.snaps[i].Retired == a.Retired {
		return
	}
	tr.snaps = append(tr.snaps, nil)
	copy(tr.snaps[i+1:], tr.snaps[i:])
	tr.snaps[i] = a
}
