package isa

import "math"

// Outcome is the architectural effect of executing one instruction with the
// given operand values. It is produced by Eval, which is pure: the cycle-level
// pipeline and the golden-model emulator share it, so any divergence between
// them is a pipeline bug (or an injected fault), never a semantics mismatch.
type Outcome struct {
	// Value is the result written to Rd for register-writing, non-load
	// instructions. For loads it is undefined (the memory system supplies
	// the value).
	Value uint64
	// Addr is the effective byte address for memory instructions.
	Addr uint64
	// StoreValue is the value a store writes to memory.
	StoreValue uint64
	// Taken reports whether a branch is taken.
	Taken bool
	// Target is the absolute instruction index a taken branch transfers to.
	Target int
}

// Eval computes the architectural outcome of in given its source operand
// values v1 (Rs1) and v2 (Rs2). Floating-point operands are float64 bit
// patterns. Division by zero cannot occur: integer divisors are forced odd
// and FP division follows IEEE-754 (yielding ±Inf/NaN), keeping Eval total.
func Eval(in Inst, v1, v2 uint64) Outcome {
	var out Outcome
	switch in.Op {
	case OpNop, OpHalt:
	case OpAdd:
		out.Value = v1 + v2
	case OpSub:
		out.Value = v1 - v2
	case OpAnd:
		out.Value = v1 & v2
	case OpOr:
		out.Value = v1 | v2
	case OpXor:
		out.Value = v1 ^ v2
	case OpShl:
		out.Value = v1 << (v2 & 63)
	case OpShr:
		out.Value = v1 >> (v2 & 63)
	case OpSlt:
		if int64(v1) < int64(v2) {
			out.Value = 1
		}
	case OpAddi:
		out.Value = v1 + uint64(in.Imm)
	case OpAndi:
		out.Value = v1 & uint64(in.Imm)
	case OpOri:
		out.Value = v1 | uint64(in.Imm)
	case OpXori:
		out.Value = v1 ^ uint64(in.Imm)
	case OpSlti:
		if int64(v1) < in.Imm {
			out.Value = 1
		}
	case OpLui:
		out.Value = uint64(in.Imm) << 16
	case OpMul:
		out.Value = v1 * v2
	case OpDiv:
		out.Value = uint64(int64(v1) / (int64(v2) | 1))
	case OpRem:
		out.Value = uint64(int64(v1) % (int64(v2) | 1))
	case OpFAdd:
		out.Value = math.Float64bits(math.Float64frombits(v1) + math.Float64frombits(v2))
	case OpFSub:
		out.Value = math.Float64bits(math.Float64frombits(v1) - math.Float64frombits(v2))
	case OpFMul:
		out.Value = math.Float64bits(math.Float64frombits(v1) * math.Float64frombits(v2))
	case OpFDiv:
		out.Value = math.Float64bits(math.Float64frombits(v1) / math.Float64frombits(v2))
	case OpFNeg:
		out.Value = math.Float64bits(-math.Float64frombits(v1))
	case OpCvtIF:
		out.Value = math.Float64bits(float64(int64(v1)))
	case OpCvtFI:
		f := math.Float64frombits(v1)
		switch {
		case math.IsNaN(f):
			out.Value = 0
		case f >= math.MaxInt64:
			out.Value = math.MaxInt64
		case f <= math.MinInt64:
			out.Value = 1 << 63 // bit pattern of math.MinInt64
		default:
			out.Value = uint64(int64(f))
		}
	case OpLd, OpFLd:
		out.Addr = v1 + uint64(in.Imm)
	case OpSt, OpFSt:
		out.Addr = v1 + uint64(in.Imm)
		out.StoreValue = v2
	case OpBeq:
		out.Taken = v1 == v2
		out.Target = int(in.Imm)
	case OpBne:
		out.Taken = v1 != v2
		out.Target = int(in.Imm)
	case OpBlt:
		out.Taken = int64(v1) < int64(v2)
		out.Target = int(in.Imm)
	case OpBge:
		out.Taken = int64(v1) >= int64(v2)
		out.Target = int(in.Imm)
	case OpJmp:
		out.Taken = true
		out.Target = int(in.Imm)
	}
	return out
}
