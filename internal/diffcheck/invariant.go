// Package diffcheck is the differential verification harness: it runs
// randomized programs through the cycle-level pipeline in every redundancy
// configuration, cross-checks the committed architectural state against the
// functional golden model (internal/isa), enforces structural invariants of
// the BlackJack mechanisms during execution, measures the fault-injection
// coverage matrix, and minimizes failing programs into replayable seeds.
//
// The harness exists because the pipeline's ordinary tests check aggregate
// outputs (store signatures, statistics) on well-behaved workloads; the
// mechanisms the paper introduces — safe-shuffle, double rename, commit-time
// dependence and PC checks — have sharp structural contracts that random
// adversarial programs are much better at probing.
package diffcheck

import (
	"fmt"

	"blackjack/internal/core"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
)

// InvariantChecker validates every safe-shuffle invocation of a run, via
// pipeline.WithShuffleObserver. Per-call structural checks live in
// CheckShuffle; the checker adds the cross-call state: packet IDs must be
// monotonic, the DTQ must drain packets in issue order, and no committed
// instruction may pass through shuffle twice.
type InvariantChecker struct {
	width     int
	units     [isa.NumUnitClasses]int
	shuffleOn bool
	merge     bool

	calls        uint64
	haveOut      bool
	lastOutID    uint64
	haveIn       bool
	lastInID     uint64
	seenSeqs     map[uint64]struct{}
	errs         []string
	maxRecorded  int
	droppedErrs  int
	totalEntries uint64
}

// NewInvariantChecker builds a checker for a machine with the given
// configuration and mode. Only DTQ-bearing modes shuffle; shuffleOn selects
// the full safe-shuffle contract (ModeBlackJack) versus the pass-through
// contract (ModeBlackJackNS).
func NewInvariantChecker(cfg pipeline.Config, mode pipeline.Mode) *InvariantChecker {
	return &InvariantChecker{
		width:       cfg.FetchWidth,
		units:       cfg.Units,
		shuffleOn:   mode == pipeline.ModeBlackJack,
		merge:       cfg.MergePackets,
		seenSeqs:    make(map[uint64]struct{}),
		maxRecorded: 32,
	}
}

// Observe implements pipeline.ShuffleObserver.
func (c *InvariantChecker) Observe(cycle int64, in []*core.Entry, out []core.Packet) {
	c.calls++
	c.totalEntries += uint64(len(in))

	for _, msg := range CheckShuffle(c.width, c.units, c.shuffleOn, c.merge, in, out) {
		c.reportf("cycle %d: %s", cycle, msg)
	}

	// DTQ drain order: packets leave in issue order, so the input packet IDs
	// of successive shuffle calls strictly increase (a packet is consumed
	// whole; under merging two adjacent packets go at once).
	if len(in) > 0 {
		first, last := in[0].PacketID, in[len(in)-1].PacketID
		if c.haveIn && first <= c.lastInID {
			c.reportf("cycle %d: DTQ drain out of order: input packet %d after packet %d", cycle, first, c.lastInID)
		}
		c.lastInID = last
		c.haveIn = true
	}

	// Output packet IDs are globally monotonic: the trailing thread fetches
	// them in order and the IDs seed its program-order reconstruction.
	for _, p := range out {
		if c.haveOut && p.ID <= c.lastOutID {
			c.reportf("cycle %d: output packet ID %d not above previous %d", cycle, p.ID, c.lastOutID)
		}
		c.lastOutID = p.ID
		c.haveOut = true
	}

	// Each committed leading instruction shuffles exactly once. (Seqs are not
	// ordered across packets — packets are issue-ordered, seqs program-
	// ordered — but they are unique.)
	for _, e := range in {
		if _, dup := c.seenSeqs[e.Seq]; dup {
			c.reportf("cycle %d: seq %d shuffled twice", cycle, e.Seq)
		}
		c.seenSeqs[e.Seq] = struct{}{}
	}
}

func (c *InvariantChecker) reportf(format string, args ...any) {
	if len(c.errs) >= c.maxRecorded {
		c.droppedErrs++
		return
	}
	c.errs = append(c.errs, fmt.Sprintf(format, args...))
}

// Errors returns the recorded invariant violations (capped; Dropped counts
// the overflow).
func (c *InvariantChecker) Errors() []string { return c.errs }

// Dropped returns how many violations were not recorded due to the cap.
func (c *InvariantChecker) Dropped() int { return c.droppedErrs }

// Calls returns how many shuffle invocations were observed.
func (c *InvariantChecker) Calls() uint64 { return c.calls }

// Entries returns how many DTQ entries passed through shuffle.
func (c *InvariantChecker) Entries() uint64 { return c.totalEntries }

// CheckShuffle validates one safe-shuffle invocation against the paper's
// structural contract and returns human-readable violation descriptions
// (empty when the output is well-formed). It is a pure function so unit
// tests can feed it deliberately broken shuffles (mutation smoke tests) and
// verify the harness would catch them.
//
// Contract (Section 4.2.2):
//
//   - the output is a permutation of the input: every input entry appears in
//     exactly one output slot, and no foreign entry appears;
//   - output packets partition the input in order: all entries of output
//     packet k precede all entries of packet k+1 in input order (splits close
//     a packet; placement never moves an instruction backward across one);
//   - with shuffle enabled, no entry lands on its leading frontend way, and —
//     for unit classes with at least two ways — its planned backend way
//     differs from its leading backend way;
//   - with shuffle disabled (BlackJack-NS), the packet passes through in
//     order with no NOPs;
//   - every input entry is committed (wrong-path work never reaches shuffle),
//     and the input spans one DTQ packet (two under the merging extension);
//   - slots are well-formed: exactly Width per packet.
func CheckShuffle(width int, units [isa.NumUnitClasses]int, shuffleOn, merge bool, in []*core.Entry, out []core.Packet) []string {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if len(in) == 0 {
		if len(out) != 0 {
			fail("no input but %d output packets", len(out))
		}
		return errs
	}

	// Input sanity: committed entries from one packet (two when merging).
	ids := map[uint64]struct{}{}
	for _, e := range in {
		ids[e.PacketID] = struct{}{}
		if !e.Committed {
			fail("uncommitted entry seq %d (pc %d) reached shuffle", e.Seq, e.PC)
		}
	}
	maxIDs := 1
	if merge {
		maxIDs = 2
	}
	if len(ids) > maxIDs {
		fail("input spans %d DTQ packets (max %d)", len(ids), maxIDs)
	}

	// Permutation check, by identity: DTQ entries are pointers owned by the
	// machine, so pointer identity is exact.
	pos := make(map[*core.Entry]int, len(in))
	for i, e := range in {
		if _, dup := pos[e]; dup {
			fail("input entry seq %d appears twice", e.Seq)
		}
		pos[e] = i
	}
	seen := make(map[*core.Entry]bool, len(in))
	prevMax := -1
	for pi, p := range out {
		if len(p.Slots) != width {
			fail("output packet %d has %d slots, want %d", p.ID, len(p.Slots), width)
		}
		pktMax := prevMax
		for si, s := range p.Slots {
			e := s.Entry
			if e == nil {
				if s.IsNOP && !shuffleOn {
					fail("pass-through packet %d slot %d holds a NOP", p.ID, si)
				}
				continue
			}
			if s.IsNOP {
				fail("packet %d slot %d holds both an entry and a NOP", p.ID, si)
			}
			idx, ok := pos[e]
			if !ok {
				fail("packet %d slot %d holds foreign entry seq %d", p.ID, si, e.Seq)
				continue
			}
			if seen[e] {
				fail("entry seq %d placed twice", e.Seq)
			}
			seen[e] = true
			if idx <= prevMax {
				// Entry belongs to an earlier output packet's input range.
				fail("entry seq %d (input index %d) appears in packet %d after a later entry closed packet %d",
					e.Seq, idx, p.ID, out[pi-1].ID)
			}
			if idx > pktMax {
				pktMax = idx
			}

			if shuffleOn {
				if si == e.FrontWay {
					fail("entry seq %d (pc %d) placed on its leading frontend way %d", e.Seq, e.PC, e.FrontWay)
				}
				if units[e.Class] >= 2 {
					if bw := p.PlannedBackWay(si); bw == e.BackWay {
						fail("entry seq %d (pc %d, class %v) planned on its leading backend way %d",
							e.Seq, e.PC, e.Class, e.BackWay)
					}
				}
			} else if si != idx-(prevMax+1) {
				fail("pass-through entry seq %d at slot %d, want slot %d", e.Seq, si, idx-(prevMax+1))
			}
		}
		// The packet-partition check needs the maximum input index of this
		// packet as the floor for the next.
		prevMax = pktMax
	}
	for _, e := range in {
		if !seen[e] {
			fail("input entry seq %d (pc %d) lost by shuffle", e.Seq, e.PC)
		}
	}
	return errs
}
