package diffcheck

import (
	"testing"

	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
	"blackjack/internal/sim"
)

// The sampled-equivalence checker must pass on the canonical sampled
// campaign shape: LatentSites (always-on, late-arming, trigger-gated) on a
// long run, where the fast-forward path actually engages.
func TestSampledEquivalenceLatentSites(t *testing.T) {
	cfg := sim.Default(pipeline.ModeBlackJack, 30_000)
	cfg.Machine.MaxCycles = 200_000
	cfg.Parallel = 4
	p, err := prog.Benchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}
	sites := sim.LatentSites(cfg.Machine)
	rep, err := CompareSampledCampaign(cfg, p, sites, sim.InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("sampled campaign diverged from full simulation:\n%s", rep)
	}
	if rep.Sites != len(sites) {
		t.Errorf("report covers %d sites, want %d", rep.Sites, len(sites))
	}
}

// Equivalence must hold across benchmarks and both redundant modes — the
// sweep bjfuzz's -sampled command runs in CI.
func TestSampledEquivalenceAcrossBenchmarks(t *testing.T) {
	for _, mode := range []pipeline.Mode{pipeline.ModeBlackJack, pipeline.ModeSRT} {
		for _, bench := range []string{"gzip", "crafty"} {
			t.Run(mode.String()+"/"+bench, func(t *testing.T) {
				cfg := sim.Default(mode, 20_000)
				cfg.Machine.MaxCycles = 200_000
				cfg.Parallel = 4
				p, err := prog.Benchmark(bench)
				if err != nil {
					t.Fatal(err)
				}
				sites := sim.LatentSites(cfg.Machine)
				rep, err := CompareSampledCampaign(cfg, p, sites, sim.InjectOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Errorf("%v/%s diverged:\n%s", mode, bench, rep)
				}
			})
		}
	}
}

// Transient-bearing site lists must also survive the checker (they take the
// bit-exact fallback paths under fast-forward).
func TestSampledEquivalenceTransients(t *testing.T) {
	cfg := sim.Default(pipeline.ModeBlackJack, 5000)
	cfg.Parallel = 4
	p, err := prog.Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	sites := sim.TransientSites(cfg.Machine, 200)
	rep, err := CompareSampledCampaign(cfg, p, sites, sim.InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("transient campaign diverged under sampling:\n%s", rep)
	}
}
