package diffcheck

import (
	"fmt"

	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
)

// Variant is one machine configuration the harness cross-checks: a
// redundancy mode plus the merging-shuffle extension toggle.
type Variant struct {
	Name  string
	Mode  pipeline.Mode
	Merge bool
}

// Variants returns the configurations every program is checked under: the
// paper's four machines plus full BlackJack with the merging-shuffle
// extension enabled.
func Variants() []Variant {
	return []Variant{
		{Name: "single", Mode: pipeline.ModeSingle},
		{Name: "srt", Mode: pipeline.ModeSRT},
		{Name: "blackjack-ns", Mode: pipeline.ModeBlackJackNS},
		{Name: "blackjack", Mode: pipeline.ModeBlackJack},
		{Name: "blackjack+merge", Mode: pipeline.ModeBlackJack, Merge: true},
	}
}

// VariantByName resolves a variant name, e.g. for the bjfuzz -variant flag.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("diffcheck: unknown variant %q", name)
}

// Divergence is one disagreement between the pipeline and the golden model
// (or a violated structural invariant).
type Divergence struct {
	Variant string
	Kind    string // register, memory, store-signature, store-count, retired, trailing-commit, false-detection, diversity, invariant, deadlock, panic, run-error
	Detail  string
}

// String formats the divergence.
func (d Divergence) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Variant, d.Kind, d.Detail)
}

// maxDivergences caps reporting per variant run; a genuinely broken machine
// diverges everywhere and the first few records carry all the signal.
const maxDivergences = 40

// VariantReport is one variant run's outcome.
type VariantReport struct {
	Variant        Variant
	Stats          *pipeline.Stats
	Shuffles       uint64 // shuffle invocations observed (DTQ modes)
	ShuffleEntries uint64 // DTQ entries validated through those invocations
	Divergences    []Divergence
	dropped        int
}

// Failed reports whether the run diverged from the oracle or violated an
// invariant.
func (r *VariantReport) Failed() bool { return len(r.Divergences) > 0 }

func (r *VariantReport) divergef(kind, format string, args ...any) {
	if len(r.Divergences) >= maxDivergences {
		r.dropped++
		return
	}
	r.Divergences = append(r.Divergences, Divergence{
		Variant: r.Variant.Name,
		Kind:    kind,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// RunVariant executes p on one machine variant for the given leading-thread
// instruction budget and cross-checks the complete committed architectural
// state — every register in both contexts, the whole memory image, the
// released store stream and the retired count — against the golden model,
// alongside the structural invariants observed during execution. Pipeline
// panics are caught and reported as divergences (the harness must survive
// latent simulator bugs to report them).
func RunVariant(cfg pipeline.Config, v Variant, p *isa.Program, maxInstr int) (rep *VariantReport) {
	rep = &VariantReport{Variant: v}
	defer func() {
		if r := recover(); r != nil {
			rep.divergef("panic", "%v", r)
		}
	}()

	cfg.MergePackets = v.Merge
	var ic *InvariantChecker
	var opts []pipeline.Option
	if v.Mode.UsesDTQ() {
		ic = NewInvariantChecker(cfg, v.Mode)
		opts = append(opts, pipeline.WithShuffleObserver(ic.Observe))
	}
	m, err := pipeline.New(cfg, v.Mode, p, opts...)
	if err != nil {
		rep.divergef("run-error", "machine construction: %v", err)
		return rep
	}
	st := m.Run(maxInstr)
	rep.Stats = st
	if ic != nil {
		rep.Shuffles = ic.Calls()
		rep.ShuffleEntries = ic.Entries()
		for _, e := range ic.Errors() {
			rep.divergef("invariant", "%s", e)
		}
		if n := ic.Dropped(); n > 0 {
			rep.divergef("invariant", "%d further violations dropped", n)
		}
	}
	if st.Deadlocked {
		rep.divergef("deadlock", "wedged at cycle %d (committed lead=%d trail=%d)",
			st.Cycles, st.Committed[0], st.Committed[1])
		return rep
	}
	if st.Detections > 0 {
		rep.divergef("false-detection", "fault-free run reported %d detections; first: %v",
			st.Detections, st.FirstEvent)
	}

	// Golden model over the exact committed prefix.
	g, err := isa.NewMachine(p)
	if err != nil {
		rep.divergef("run-error", "golden model: %v", err)
		return rep
	}
	g.Run(int(st.Committed[0]))
	if got, want := st.Committed[0], uint64(g.Retired()); got != want {
		rep.divergef("retired", "pipeline committed %d, oracle retired %d", got, want)
	}
	if st.StoreSignature != g.StoreSignature() {
		rep.divergef("store-signature", "pipeline %#x, oracle %#x", st.StoreSignature, g.StoreSignature())
	}
	if st.ReleasedStores != uint64(g.Stores()) {
		rep.divergef("store-count", "pipeline released %d stores, oracle %d", st.ReleasedStores, g.Stores())
	}
	if v.Mode.Redundant() && st.Committed[1] != st.Committed[0] {
		rep.divergef("trailing-commit", "trailing committed %d, leading %d", st.Committed[1], st.Committed[0])
	}

	// Committed register state, in every context the variant runs. A
	// ModeSingle run stopped at the budget still has speculative wrong-path
	// renames in flight; squash them so the rename map shows committed state
	// (redundant modes already squashed the leading thread at the cap).
	if v.Mode == pipeline.ModeSingle {
		m.SquashSpeculative(0)
	}
	for r := isa.Reg(0); r < isa.NumArchRegs; r++ {
		want := g.Reg(r)
		if got := m.ArchReg(0, r); got != want {
			rep.divergef("register", "lead %s = %#x, oracle %#x", r, got, want)
		}
		switch {
		case v.Mode == pipeline.ModeSRT:
			if got := m.ArchReg(1, r); got != want {
				rep.divergef("register", "trail %s = %#x, oracle %#x", r, got, want)
			}
		case v.Mode.UsesDTQ():
			if got := m.TrailingArchReg(r); got != want {
				rep.divergef("register", "trail %s = %#x, oracle %#x", r, got, want)
			}
		}
	}

	// Whole memory image.
	for a := 0; a < m.MemSize(); a += 8 {
		if got, want := m.MemWord(uint64(a)), g.ReadMem(uint64(a)); got != want {
			rep.divergef("memory", "mem[%#x] = %#x, oracle %#x", a, got, want)
		}
	}

	// Mode-level structural facts. Full BlackJack guarantees frontend
	// diversity for every pair (safe-shuffle never places an instruction on
	// its leading frontend way); backend diversity is best-effort (issue-time
	// interference), so it is not an invariant. Every committed leading
	// instruction passes through shuffle exactly once.
	if v.Mode == pipeline.ModeBlackJack && st.Pairs > 0 && st.FeDiversePairs != st.Pairs {
		rep.divergef("diversity", "frontend diversity %d/%d pairs in full BlackJack", st.FeDiversePairs, st.Pairs)
	}
	if ic != nil && ic.Entries() != st.Committed[0] {
		rep.divergef("invariant", "%d entries shuffled, %d leading instructions committed", ic.Entries(), st.Committed[0])
	}
	return rep
}

// ProgramReport aggregates one program's differential check across all
// variants, including the cross-variant metamorphic comparison.
type ProgramReport struct {
	Program     *isa.Program
	Variants    []*VariantReport
	Divergences []Divergence
}

// Failed reports whether any variant diverged.
func (r *ProgramReport) Failed() bool { return len(r.Divergences) > 0 }

// CheckProgram runs p under every variant and cross-checks the results: each
// variant against the golden model, and — the metamorphic property — all
// variants against each other, since the redundancy configuration must never
// change architectural behaviour (same committed count, same store stream).
func CheckProgram(cfg pipeline.Config, p *isa.Program, maxInstr int) *ProgramReport {
	rep := &ProgramReport{Program: p}
	for _, v := range Variants() {
		vr := RunVariant(cfg, v, p, maxInstr)
		rep.Variants = append(rep.Variants, vr)
		rep.Divergences = append(rep.Divergences, vr.Divergences...)
	}
	// Cross-variant comparison is only sound for programs that halt inside
	// the budget: a cap-stopped run can overshoot the cap by up to
	// CommitWidth-1 instructions, and different modes overshoot differently.
	// (The per-variant oracle check above is exact either way: the oracle
	// replays precisely the committed count.)
	var base *VariantReport
	for _, vr := range rep.Variants {
		if vr.Stats == nil || vr.Stats.Deadlocked || vr.Stats.Committed[0] >= uint64(maxInstr) {
			continue
		}
		if base == nil {
			base = vr
			continue
		}
		if vr.Stats.Committed[0] != base.Stats.Committed[0] {
			rep.Divergences = append(rep.Divergences, Divergence{
				Variant: vr.Variant.Name, Kind: "cross-mode",
				Detail: fmt.Sprintf("committed %d, %s committed %d",
					vr.Stats.Committed[0], base.Variant.Name, base.Stats.Committed[0]),
			})
		}
		if vr.Stats.StoreSignature != base.Stats.StoreSignature {
			rep.Divergences = append(rep.Divergences, Divergence{
				Variant: vr.Variant.Name, Kind: "cross-mode",
				Detail: fmt.Sprintf("store signature %#x, %s has %#x",
					vr.Stats.StoreSignature, base.Variant.Name, base.Stats.StoreSignature),
			})
		}
	}
	return rep
}

// CheckVariantProgram is CheckProgram restricted to one variant (plus the
// oracle); the bjfuzz -variant flag and the shuffle-invariant fuzz target use
// it to spend the whole budget on one configuration.
func CheckVariantProgram(cfg pipeline.Config, v Variant, p *isa.Program, maxInstr int) *ProgramReport {
	vr := RunVariant(cfg, v, p, maxInstr)
	return &ProgramReport{Program: p, Variants: []*VariantReport{vr}, Divergences: vr.Divergences}
}
