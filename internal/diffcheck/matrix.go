package diffcheck

import (
	"fmt"
	"strings"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/parallel"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
	"blackjack/internal/rename"
	"blackjack/internal/sim"
)

// MatrixCell is one fault-kind × fault-class × pipeline-structure
// combination of the coverage matrix, aggregated over several concrete sites
// and stressor programs.
type MatrixCell struct {
	Kind      fault.Kind
	Class     fault.Class
	Structure string

	Runs      int // injection runs performed
	Activated int // runs whose fault corrupted at least one value
	Detected  int // activated runs flagged by a redundancy checker
	Benign    int // activated runs whose output still matched the oracle
	Silent    int // activated runs with silent output corruption (failures)
	Wedged    int // runs that stopped making progress (observable hang)
	Inactive  int // runs whose fault never activated

	LatencySum  int64 // summed first-activation -> first-detection distances
	LatencyRuns int
}

// Name returns "class/structure", prefixed with the fault kind for the
// non-permanent axes (the permanent cells keep their legacy names).
func (c *MatrixCell) Name() string {
	if c.Kind == fault.KindPermanent {
		return fmt.Sprintf("%v/%s", c.Class, c.Structure)
	}
	return fmt.Sprintf("%v/%v/%s", c.Kind, c.Class, c.Structure)
}

// MeanLatency returns the mean detection latency in cycles (0 when no run
// measured one).
func (c *MatrixCell) MeanLatency() float64 {
	if c.LatencyRuns == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.LatencyRuns)
}

// OK reports whether the cell meets the coverage contract: the fault class
// was actually exercised on this structure, and every activated run was
// detected, explicitly benign, or an observable wedge — never silent.
func (c *MatrixCell) OK() bool { return c.Activated > 0 && c.Silent == 0 }

// Matrix is the fault-coverage matrix of one machine mode.
type Matrix struct {
	Mode  pipeline.Mode
	Cells []MatrixCell
}

// OK reports whether every cell meets the coverage contract.
func (m *Matrix) OK() bool {
	for i := range m.Cells {
		if !m.Cells[i].OK() {
			return false
		}
	}
	return true
}

// Problems lists the cells violating the contract.
func (m *Matrix) Problems() []string {
	var out []string
	for i := range m.Cells {
		c := &m.Cells[i]
		switch {
		case c.Activated == 0:
			out = append(out, fmt.Sprintf("%s: never exercised (%d runs, all inactive)", c.Name(), c.Runs))
		case c.Silent > 0:
			out = append(out, fmt.Sprintf("%s: %d silent corruptions in %d activated runs", c.Name(), c.Silent, c.Activated))
		}
	}
	return out
}

// String renders the matrix as a table.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-coverage matrix (%v)\n", m.Mode)
	fmt.Fprintf(&b, "%-38s %5s %5s %5s %5s %5s %5s %9s  %s\n",
		"kind/class/structure", "runs", "activ", "det", "benig", "silent", "wedge", "lat(cyc)", "status")
	for i := range m.Cells {
		c := &m.Cells[i]
		status := "ok"
		if !c.OK() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-38s %5d %5d %5d %5d %5d %5d %9.1f  %s\n",
			c.Name(), c.Runs, c.Activated, c.Detected, c.Benign, c.Silent, c.Wedged, c.MeanLatency(), status)
	}
	return b.String()
}

// matrixCellSpec pairs a cell with its concrete sites and stressor shapes.
type matrixCellSpec struct {
	kind      fault.Kind
	class     fault.Class
	structure string
	sites     []fault.Site
	shapes    []prog.StressShape
}

// matrixSpecs enumerates every fault class × pipeline structure combination
// the machine has: each frontend way (all decode fields), the backend ways
// of every unit class (value, plus branch-direction on the intALU ways and
// address corruption on the memory ways), the issue-queue payload RAM, and
// the physical register file.
func matrixSpecs(cfg pipeline.Config) []matrixCellSpec {
	var specs []matrixCellSpec

	allFields := []fault.DecodeField{fault.FieldRs1, fault.FieldRs2, fault.FieldRd, fault.FieldImm, fault.FieldOp}
	for w := 0; w < cfg.FetchWidth; w++ {
		var sites []fault.Site
		for _, f := range allFields {
			sites = append(sites, fault.Site{Class: fault.FrontendWay, Way: w, Field: f, BitMask: 4})
		}
		specs = append(specs, matrixCellSpec{
			class:     fault.FrontendWay,
			structure: fmt.Sprintf("fetch-way-%d", w),
			sites:     sites,
			shapes:    []prog.StressShape{prog.StressMixed, prog.StressBranch},
		})
	}

	classShapes := map[isa.UnitClass]prog.StressShape{
		isa.UnitIntALU: prog.StressIntALU,
		isa.UnitIntMul: prog.StressIntMul,
		isa.UnitIntDiv: prog.StressIntDiv,
		isa.UnitFPALU:  prog.StressFPALU,
		isa.UnitFPMul:  prog.StressFPMul,
		isa.UnitMem:    prog.StressMem,
	}
	for cls := isa.UnitClass(0); cls < isa.NumUnitClasses; cls++ {
		var sites []fault.Site
		for w := 0; w < cfg.Units[cls]; w++ {
			sites = append(sites, fault.Site{Class: fault.BackendWay, Unit: cls, Way: w, BitMask: 1 << uint(4+w)})
		}
		switch cls {
		case isa.UnitIntALU:
			sites = append(sites, fault.Site{Class: fault.BackendWay, Unit: cls, Way: 0, FlipBranch: true})
		case isa.UnitMem:
			sites = append(sites, fault.Site{Class: fault.BackendWay, Unit: cls, Way: 0, CorruptAddr: true, BitMask: 1})
		}
		specs = append(specs, matrixCellSpec{
			class:     fault.BackendWay,
			structure: fmt.Sprintf("%v-ways", cls),
			sites:     sites,
			shapes:    []prog.StressShape{classShapes[cls], prog.StressMixed},
		})
	}

	var payloadSites []fault.Site
	for _, slot := range []int{0, 1, cfg.IssueQueue / 2, cfg.IssueQueue - 1} {
		payloadSites = append(payloadSites,
			fault.Site{Class: fault.PayloadRAM, Slot: slot, Field: fault.FieldImm, BitMask: 2},
			fault.Site{Class: fault.PayloadRAM, Slot: slot, Field: fault.FieldOp},
		)
	}
	specs = append(specs, matrixCellSpec{
		class:     fault.PayloadRAM,
		structure: "issue-queue",
		sites:     payloadSites,
		shapes:    []prog.StressShape{prog.StressMixed, prog.StressIntALU},
	})

	var regSites []fault.Site
	for _, r := range []rename.PhysReg{5, 40, 70, 130, 200} {
		if int(r) < cfg.PhysRegs {
			regSites = append(regSites, fault.Site{Class: fault.RegisterFile, Reg: r, BitMask: 1 << 9})
		}
	}
	specs = append(specs, matrixCellSpec{
		class:     fault.RegisterFile,
		structure: "phys-regfile",
		sites:     regSites,
		shapes:    []prog.StressShape{prog.StressMixed, prog.StressMem},
	})
	return specs
}

// kindSpecs derives the coverage cells for one non-permanent fault kind:
// one cell per pipeline structure (frontend ways, backend ways, payload RAM,
// register file — control-flow errors live only on the branch-executing
// backend ways), with the sites re-shaped to the kind's firing model. The
// permanent axis keeps its exhaustive per-structure enumeration in
// matrixSpecs; these cells prove each fault model is exercised and covered
// on every structure class without multiplying the full grid.
func kindSpecs(cfg pipeline.Config, kind fault.Kind) []matrixCellSpec {
	if kind == fault.KindControlFlow {
		var sites []fault.Site
		for w := 0; w < cfg.Units[isa.UnitIntALU]; w++ {
			sites = append(sites, fault.Site{
				Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: w,
				Kind: fault.KindControlFlow, BitMask: uint64(1 + w%2),
			})
		}
		sites = append(sites, fault.Site{
			Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0,
			Kind: fault.KindControlFlow, FlipBranch: true,
		})
		return []matrixCellSpec{{
			kind: kind, class: fault.BackendWay, structure: "branch-ways",
			sites:  sites,
			shapes: []prog.StressShape{prog.StressBranch, prog.StressMixed},
		}}
	}

	// reshape re-casts a permanent site as the requested kind; i
	// disambiguates the multi-bit flavor (stuck-at vs wide flip).
	reshape := func(s fault.Site, i int) fault.Site {
		switch kind {
		case fault.KindTransient:
			s.Transient = true
			s.FireAt = 5
		case fault.KindIntermittent:
			s.Kind = fault.KindIntermittent
			s.DutyPeriod = 8
			s.DutyOn = 4
			s.DutyProb = 75
		case fault.KindMultiBit:
			s.Kind = fault.KindMultiBit
			switch {
			case s.Class == fault.FrontendWay || s.Class == fault.PayloadRAM:
				s.Field = fault.FieldImm
				s.BitMask = 0x3C
			case i%2 == 0:
				s.BitMask = 0
				s.StuckMask = 0xFF << 8
				s.StuckValue = 0xA5 << 8
			default:
				s.BitMask = 0xF << 16
			}
		}
		return s
	}

	// Store-heavy shapes for the timing-sensitive kinds: a one-shot or
	// duty-cycled corruption must reach a comparison point to be observable.
	shapes := []prog.StressShape{prog.StressMem, prog.StressMixed}
	if kind == fault.KindMultiBit {
		shapes = []prog.StressShape{prog.StressMixed, prog.StressIntALU}
	}

	var fe []fault.Site
	for w := 0; w < cfg.FetchWidth && w < 2; w++ {
		fe = append(fe, reshape(fault.Site{Class: fault.FrontendWay, Way: w, Field: fault.FieldRs2, BitMask: 4}, w))
	}
	var be []fault.Site
	if kind == fault.KindTransient {
		// One-shot coverage is defined over faults that reach an output
		// comparison point (the paper's soft-error claim): a single corrupted
		// ALU result can die in a register the output comparison never sees,
		// and a corrupted leading load VALUE is forwarded to the trailing
		// thread through the LVQ, so both threads agree on it (the paper's
		// input-replication caveat — load data is assumed ECC-protected).
		// Effective addresses and branch directions are computed
		// independently per thread and checked (LVQ address check, store
		// buffer, BOQ), so these sites are detected or squash-masked to
		// benign, never silent.
		for w := 0; w < cfg.Units[isa.UnitMem]; w++ {
			be = append(be, reshape(fault.Site{Class: fault.BackendWay, Unit: isa.UnitMem, Way: w, CorruptAddr: true, BitMask: 1 << uint(w)}, w))
		}
		be = append(be, reshape(fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, FlipBranch: true}, len(be)))
	} else {
		for w := 0; w < cfg.Units[isa.UnitIntALU]; w++ {
			be = append(be, reshape(fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: w, BitMask: 1 << uint(4+w)}, w))
		}
		be = append(be, reshape(fault.Site{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 0, BitMask: 1 << 8}, len(be)))
	}
	var pay []fault.Site
	for i, slot := range []int{0, cfg.IssueQueue / 2} {
		pay = append(pay, reshape(fault.Site{Class: fault.PayloadRAM, Slot: slot, Field: fault.FieldImm, BitMask: 2}, i))
	}
	var reg []fault.Site
	// Low physical registers are recycled constantly, so even a one-shot
	// fault reliably sees its FireAt-th read within the budget.
	for i, r := range []rename.PhysReg{5, 40} {
		if int(r) < cfg.PhysRegs {
			reg = append(reg, reshape(fault.Site{Class: fault.RegisterFile, Reg: r, BitMask: 1 << 9}, i))
		}
	}
	return []matrixCellSpec{
		{kind: kind, class: fault.FrontendWay, structure: "fetch-ways", sites: fe, shapes: shapes},
		{kind: kind, class: fault.BackendWay, structure: "exec-ways", sites: be, shapes: shapes},
		{kind: kind, class: fault.PayloadRAM, structure: "issue-queue", sites: pay, shapes: shapes},
		{kind: kind, class: fault.RegisterFile, structure: "phys-regfile", sites: reg, shapes: shapes},
	}
}

// MatrixOptions configures a coverage-matrix run.
type MatrixOptions struct {
	Machine  pipeline.Config // zero value selects Table 1
	Mode     pipeline.Mode   // must be a redundant mode
	MaxInstr int             // per-injection budget (default 3000)
	Seed     uint64          // stressor-program seed base
	Workers  int             // injection fan-out (<= 0: NumCPU)
	// Kinds restricts the fault-kind axis (bjfuzz -fault-kind); nil runs
	// every kind: permanent, transient, intermittent, multi-bit and
	// control-flow.
	Kinds []fault.Kind
}

// CoverageMatrix injects every cell's sites into that cell's stressor
// programs and classifies outcomes, asserting the paper's coverage story
// end-to-end: every fault class on every pipeline structure is exercised and
// either detected or explicitly benign. Results are deterministic in
// (Machine, Mode, MaxInstr, Seed) at every worker count.
func CoverageMatrix(opts MatrixOptions) (*Matrix, error) {
	if opts.Machine.FetchWidth == 0 {
		opts.Machine = pipeline.DefaultConfig()
	}
	if opts.MaxInstr <= 0 {
		opts.MaxInstr = 3000
	}
	if !opts.Mode.Redundant() {
		return nil, fmt.Errorf("diffcheck: coverage matrix needs a redundant mode, got %v", opts.Mode)
	}
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = fault.Kinds()
	}
	var specs []matrixCellSpec
	for _, k := range kinds {
		if k == fault.KindPermanent {
			specs = append(specs, matrixSpecs(opts.Machine)...)
		} else {
			specs = append(specs, kindSpecs(opts.Machine, k)...)
		}
	}

	// Flatten into independent injection runs for the worker pool.
	type runSpec struct {
		cell int
		site fault.Site
		prog *isa.Program
	}
	var runs []runSpec
	for ci, spec := range specs {
		for si, shape := range spec.shapes {
			p, err := prog.StressProgram(prog.DeriveSeed(opts.Seed, uint64(ci*8+si)), shape)
			if err != nil {
				return nil, err
			}
			for _, site := range spec.sites {
				runs = append(runs, runSpec{cell: ci, site: site, prog: p})
			}
		}
	}
	simCfg := sim.Config{Machine: opts.Machine, Mode: opts.Mode, MaxInstructions: opts.MaxInstr}
	results, err := parallel.Map(opts.Workers, len(runs), func(i int) (sim.InjectionResult, error) {
		return sim.InjectProgram(simCfg, runs[i].prog, runs[i].site, sim.InjectOptions{})
	})
	if err != nil {
		return nil, err
	}

	m := &Matrix{Mode: opts.Mode}
	for _, spec := range specs {
		m.Cells = append(m.Cells, MatrixCell{Kind: spec.kind, Class: spec.class, Structure: spec.structure})
	}
	for i, r := range results {
		c := &m.Cells[runs[i].cell]
		c.Runs++
		if r.Activations == 0 {
			c.Inactive++
			continue
		}
		c.Activated++
		switch r.Outcome {
		case sim.OutcomeDetected:
			c.Detected++
			if r.DetectionLatency >= 0 {
				c.LatencySum += r.DetectionLatency
				c.LatencyRuns++
			}
		case sim.OutcomeBenign:
			c.Benign++
		case sim.OutcomeSilent:
			c.Silent++
		case sim.OutcomeWedged:
			c.Wedged++
		}
	}
	return m, nil
}
