package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"blackjack/internal/isa"
	"blackjack/internal/journal"
)

// withFuzzHook installs a fuzz test hook for the test's duration. Tests
// using it must not run in parallel with each other.
func withFuzzHook(t *testing.T, hook func(i int, p *isa.Program)) {
	t.Helper()
	fuzzTestHook = hook
	t.Cleanup(func() { fuzzTestHook = nil })
}

// fuzzSummaryString renders everything observable about a summary except
// Resumed (which intentionally differs between fresh and resumed sessions).
func fuzzSummaryString(sum *FuzzSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs=%d runs=%d shuffles=%d entries=%d\n",
		sum.Programs, sum.Runs, sum.Shuffles, sum.Entries)
	for _, f := range sum.Failures {
		prog := "<nil>"
		if f.Program != nil {
			prog = fmt.Sprintf("%s/%d", f.Program.Name, len(f.Program.Code))
		}
		min := "<nil>"
		if f.Minimized != nil {
			min = fmt.Sprintf("%d", len(f.Minimized.Code))
		}
		fmt.Fprintf(&b, "fail %d seed=%#x source=%s prog=%s min=%s enc=%d divs=%v\n",
			f.Index, f.Seed, f.Source, prog, min, len(f.Encoded), f.Divergences)
	}
	return b.String()
}

func TestFuzzPanicIsolatedAsDivergence(t *testing.T) {
	withFuzzHook(t, func(i int, p *isa.Program) {
		if i == 3 {
			panic("poisoned check")
		}
	})
	sum, err := Fuzz(FuzzOptions{Programs: 6, Seed: 11, MaxInstr: 800, Workers: 2})
	if err != nil {
		t.Fatalf("panic escaped the isolation boundary: %v", err)
	}
	if len(sum.Failures) != 1 {
		t.Fatalf("expected exactly the poisoned program to fail, got %d failures", len(sum.Failures))
	}
	f := sum.Failures[0]
	if f.Index != 3 {
		t.Fatalf("failure at index %d, want 3", f.Index)
	}
	if len(f.Divergences) != 1 || f.Divergences[0].Variant != harnessVariant || f.Divergences[0].Kind != "panic" {
		t.Fatalf("unexpected divergences: %v", f.Divergences)
	}
	if !strings.Contains(f.Divergences[0].Detail, "poisoned check") {
		t.Fatalf("panic value lost: %q", f.Divergences[0].Detail)
	}
	if f.Program == nil {
		t.Fatal("failure lost its program")
	}
	// The other five programs completed and contributed runs.
	if sum.Runs == 0 || sum.Shuffles == 0 {
		t.Fatalf("healthy programs did not run: %+v", sum)
	}
}

func TestFuzzShrinkTreatsPanicAsFailing(t *testing.T) {
	// Every minimization candidate panics too: delta debugging must treat
	// that as "still fails" and keep shrinking instead of crashing.
	withFuzzHook(t, func(i int, p *isa.Program) {
		if i == 2 || i == -1 {
			panic("poisoned check")
		}
	})
	sum, err := Fuzz(FuzzOptions{Programs: 3, Seed: 5, MaxInstr: 500, Workers: 1, Shrink: true, ShrinkTests: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) != 1 || sum.Failures[0].Index != 2 {
		t.Fatalf("expected one failure at index 2: %+v", sum.Failures)
	}
	f := sum.Failures[0]
	if f.Minimized == nil {
		t.Fatal("panic-inducing program was not minimized")
	}
	if len(f.Minimized.Code) >= len(f.Program.Code) {
		t.Fatalf("minimization made no progress: %d -> %d instructions",
			len(f.Program.Code), len(f.Minimized.Code))
	}
}

func TestFuzzJournalResumeByteIdentical(t *testing.T) {
	// The hook makes program 2 a deterministic failure so the resumed
	// session exercises failure replay (program regeneration + minimized
	// decoding), not just the clean path.
	hook := func(i int, p *isa.Program) {
		if i == 2 {
			panic("poisoned check")
		}
	}
	withFuzzHook(t, hook)
	opts := FuzzOptions{Programs: 8, Seed: 23, MaxInstr: 800, Workers: 2, Shrink: true, ShrinkTests: 30}

	ref, err := Fuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := fuzzSummaryString(ref)

	dir := t.TempDir()
	path := filepath.Join(dir, "fuzz.journal")
	fj, err := OpenFuzzJournal(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	jopts := opts
	jopts.Journal = fj
	full, err := Fuzz(jopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fuzzSummaryString(full); got != want {
		t.Fatalf("journaled run diverged from plain run:\n got: %s\nwant: %s", got, want)
	}
	if full.Resumed != 0 {
		t.Fatalf("fresh journaled run claims %d resumed programs", full.Resumed)
	}

	// Simulate a crash: keep the header and the first 4 records, then a
	// torn trailing fragment as left by a kill mid-write.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 6 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	crashed := strings.Join(lines[:5], "") + `{"i":7,"r":{"se`

	for _, workers := range []int{1, 3, 8} {
		// Each resume completes the journal, so re-crash it per iteration.
		if err := os.WriteFile(path, []byte(crashed), 0o644); err != nil {
			t.Fatal(err)
		}
		fj, err := OpenFuzzJournal(path, opts)
		if err != nil {
			t.Fatalf("workers=%d: reopen: %v", workers, err)
		}
		if fj.Done() != 4 {
			t.Fatalf("workers=%d: journal replays %d records, want 4", workers, fj.Done())
		}
		ropts := opts
		ropts.Workers = workers
		ropts.Journal = fj
		resumed, err := Fuzz(ropts)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if err := fj.Close(); err != nil {
			t.Fatal(err)
		}
		if resumed.Resumed != 4 {
			t.Fatalf("workers=%d: Resumed=%d, want 4", workers, resumed.Resumed)
		}
		if got := fuzzSummaryString(resumed); got != want {
			t.Fatalf("workers=%d: resumed summary diverged:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

func TestFuzzJournalKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fuzz.journal")
	opts := FuzzOptions{Programs: 4, Seed: 9, MaxInstr: 500}
	fj, err := OpenFuzzJournal(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	variant := Variants()[0]
	for name, other := range map[string]FuzzOptions{
		"seed":     {Programs: 4, Seed: 10, MaxInstr: 500},
		"maxinstr": {Programs: 4, Seed: 9, MaxInstr: 600},
		"variant":  {Programs: 4, Seed: 9, MaxInstr: 500, Variant: &variant},
	} {
		if _, err := OpenFuzzJournal(path, other); !errors.Is(err, journal.ErrKeyMismatch) {
			t.Fatalf("%s change accepted by mismatched journal: %v", name, err)
		}
	}
	// The program count is deliberately NOT part of the key: a journal
	// written under -n 4 must resume (and extend) under -n 400.
	grown := opts
	grown.Programs = 400
	if _, err := OpenFuzzJournal(path, grown); err != nil {
		t.Fatalf("program-count change refused: %v", err)
	}
}

func TestFuzzGracefulCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	started := 0
	withFuzzHook(t, func(i int, p *isa.Program) {
		mu.Lock()
		started++
		if started == 3 {
			cancel()
		}
		mu.Unlock()
	})

	opts := FuzzOptions{Programs: 10, Seed: 31, MaxInstr: 800, Workers: 1}
	path := filepath.Join(t.TempDir(), "fuzz.journal")
	fj, err := OpenFuzzJournal(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	copts := opts
	copts.Ctx = ctx
	copts.Journal = fj
	if _, err := Fuzz(copts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}

	// The interrupted records survived; a resume completes the campaign
	// and matches an uninterrupted run.
	fuzzTestHook = nil
	ref, err := Fuzz(opts)
	if err != nil {
		t.Fatal(err)
	}
	fj, err = OpenFuzzJournal(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fj.Done() == 0 {
		t.Fatal("cancelled campaign journaled nothing")
	}
	ropts := opts
	ropts.Journal = fj
	resumed, err := Fuzz(ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != fj.Done() {
		t.Fatalf("Resumed=%d, journal holds %d", resumed.Resumed, fj.Done())
	}
	if got, want := fuzzSummaryString(resumed), fuzzSummaryString(ref); got != want {
		t.Fatalf("resumed summary diverged:\n got: %s\nwant: %s", got, want)
	}
}
