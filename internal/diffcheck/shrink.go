package diffcheck

import "blackjack/internal/isa"

// Minimize shrinks a failing program while preserving the failure, ddmin
// style: chunked instruction deletion (with branch-target remapping), then
// NOP substitution (which preserves the PC layout and hence packet
// boundaries), then data-segment and init shrinking. failing must return
// true when the candidate still exhibits the failure; maxTests bounds the
// number of candidate evaluations (<= 0 selects a default). The final halt
// is never removed, so every candidate terminates.
//
// The returned program fails iff the input did; when the input does not fail
// (or the test budget is zero) the input is returned unchanged.
func Minimize(p *isa.Program, failing func(*isa.Program) bool, maxTests int) *isa.Program {
	if maxTests <= 0 {
		maxTests = 2000
	}
	mz := &minimizer{failing: failing, budget: maxTests}
	if !mz.test(p) {
		return p
	}

	cur := p
	// Phase 1: chunked deletion, halving the chunk size as deletions stop
	// succeeding (classic ddmin complement reduction).
	for chunk := deletable(cur) / 2; chunk >= 1; chunk /= 2 {
		for {
			changed := false
			for start := 0; start < deletable(cur); {
				end := start + chunk
				if end > deletable(cur) {
					end = deletable(cur)
				}
				if cand := deleteRange(cur, start, end); cand != nil && mz.test(cand) {
					cur = cand
					changed = true
					// Do not advance: the next chunk slid into place.
					continue
				}
				start += chunk
			}
			if !changed {
				break
			}
		}
	}

	// Phase 2: replace surviving instructions with NOPs one at a time. This
	// keeps every PC (and so every branch target, fetch-group boundary and
	// DTQ packet shape) fixed, isolating which instructions matter.
	for i := 0; i < deletable(cur); i++ {
		if cur.Code[i].Op == isa.OpNop {
			continue
		}
		cand := clone(cur)
		cand.Code[i] = isa.Inst{Op: isa.OpNop}
		if mz.test(cand) {
			cur = cand
		}
	}

	// Phase 3: shrink the data segment and the init image.
	for cur.DataSize > 1024 {
		cand := clone(cur)
		cand.DataSize = cur.DataSize / 2
		if max := cand.DataSize / 8; len(cand.Init) > max {
			cand.Init = cand.Init[:max]
		}
		if !mz.test(cand) {
			break
		}
		cur = cand
	}
	for len(cur.Init) > 0 {
		cand := clone(cur)
		cand.Init = cand.Init[:len(cand.Init)/2]
		if !mz.test(cand) {
			break
		}
		cur = cand
	}
	return cur
}

type minimizer struct {
	failing func(*isa.Program) bool
	budget  int
}

func (mz *minimizer) test(p *isa.Program) bool {
	if mz.budget <= 0 {
		return false
	}
	mz.budget--
	if p.Validate() != nil {
		return false
	}
	return mz.failing(p)
}

// deletable returns the number of leading instructions eligible for deletion
// or NOP substitution: everything except a final halt.
func deletable(p *isa.Program) int {
	n := len(p.Code)
	if n > 0 && p.Code[n-1].Op == isa.OpHalt {
		return n - 1
	}
	return n
}

func clone(p *isa.Program) *isa.Program {
	q := *p
	q.Code = append([]isa.Inst(nil), p.Code...)
	q.Init = append([]uint64(nil), p.Init...)
	return &q
}

// deleteRange removes code[from:to) and remaps every branch target: a target
// maps to its new index, or — when the target itself was deleted — to the
// first surviving instruction at or after it. Returns nil when nothing
// remains to delete.
func deleteRange(p *isa.Program, from, to int) *isa.Program {
	if from >= to {
		return nil
	}
	// survivorsBefore[i] = number of surviving instructions at indices < i;
	// this is both the new index of a survivor and the landing slot of a
	// deleted target.
	survivorsBefore := make([]int, len(p.Code)+1)
	for i := range p.Code {
		survivorsBefore[i+1] = survivorsBefore[i]
		if i < from || i >= to {
			survivorsBefore[i+1]++
		}
	}
	newLen := survivorsBefore[len(p.Code)]
	if newLen == 0 {
		return nil
	}
	q := *p
	q.Init = p.Init
	q.Code = make([]isa.Inst, 0, newLen)
	for i, in := range p.Code {
		if i >= from && i < to {
			continue
		}
		if in.IsBranch() {
			t := survivorsBefore[in.Imm]
			if t >= newLen {
				t = newLen - 1
			}
			in.Imm = int64(t)
		}
		q.Code = append(q.Code, in)
	}
	return &q
}
