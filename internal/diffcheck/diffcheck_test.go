package diffcheck

import (
	"strings"
	"testing"

	"blackjack/internal/core"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
)

func mustNoDivergences(t *testing.T, rep *ProgramReport, label string) {
	t.Helper()
	for _, d := range rep.Divergences {
		t.Errorf("%s: %v", label, d)
	}
}

func TestCheckBenchmarksClean(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	for _, name := range []string{"gzip", "swim"} {
		p, err := prog.Benchmark(name)
		if err != nil {
			t.Fatalf("benchmark %s: %v", name, err)
		}
		mustNoDivergences(t, CheckProgram(cfg, p, 2000), name)
	}
}

func TestAdversarialProgramsCheckClean(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	for seed := uint64(0); seed < 6; seed++ {
		p, err := prog.AdversarialProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mustNoDivergences(t, CheckProgram(cfg, p, 2500), p.Name)
	}
}

func TestFuzzCampaignClean(t *testing.T) {
	sum, err := Fuzz(FuzzOptions{Programs: 12, Seed: 7, MaxInstr: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sum.Failures {
		for _, d := range f.Divergences {
			t.Errorf("program %d (%s, seed %#x): %v", f.Index, f.Source, f.Seed, d)
		}
	}
	if sum.Shuffles == 0 || sum.Entries == 0 {
		t.Fatalf("campaign validated no shuffles (calls=%d entries=%d)", sum.Shuffles, sum.Entries)
	}
}

func TestFuzzCampaignDeterministic(t *testing.T) {
	a, err := Fuzz(FuzzOptions{Programs: 6, Seed: 11, MaxInstr: 1000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fuzz(FuzzOptions{Programs: 6, Seed: 11, MaxInstr: 1000, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || a.Shuffles != b.Shuffles || a.Entries != b.Entries || len(a.Failures) != len(b.Failures) {
		t.Fatalf("worker count changed results: %+v vs %+v", a, b)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p, err := prog.AdversarialProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeProgram(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q := DecodeProgram(enc)
		if q.DataSize != p.DataSize {
			t.Fatalf("seed %d: data size %d -> %d", seed, p.DataSize, q.DataSize)
		}
		if len(q.Init) != len(p.Init) {
			t.Fatalf("seed %d: init %d -> %d words", seed, len(p.Init), len(q.Init))
		}
		for i := range p.Init {
			if p.Init[i] != q.Init[i] {
				t.Fatalf("seed %d: init word %d differs", seed, i)
			}
		}
		if len(q.Code) != len(p.Code) {
			t.Fatalf("seed %d: code %d -> %d insts", seed, len(p.Code), len(q.Code))
		}
		for i := range p.Code {
			if p.Code[i] != q.Code[i] {
				t.Fatalf("seed %d: inst %d: %v -> %v", seed, i, p.Code[i], q.Code[i])
			}
		}
	}
}

func TestDecodeIsTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0xff},
		{0xff, 0xff, 0xff},
		{3, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8},
		make([]byte, 1000),
	}
	// A pseudo-random blob with a huge claimed init count.
	blob := make([]byte, 300)
	for i := range blob {
		blob[i] = byte(i*37 + 11)
	}
	blob[1], blob[2] = 0xff, 0xff
	inputs = append(inputs, blob)
	for i, in := range inputs {
		p := DecodeProgram(in)
		if err := p.Validate(); err != nil {
			t.Fatalf("input %d: decoded program invalid: %v", i, err)
		}
		if p.Code[len(p.Code)-1].Op != isa.OpHalt {
			t.Fatalf("input %d: no trailing halt", i)
		}
	}
}

// --- shuffle invariant checker: positive and mutation smoke tests ---

func shuffleUnits() [isa.NumUnitClasses]int {
	return pipeline.DefaultConfig().Units
}

func mkEntries(ways ...[2]int) []*core.Entry {
	out := make([]*core.Entry, len(ways))
	for i, w := range ways {
		out[i] = &core.Entry{
			Seq: uint64(i + 1), PacketID: 9, PC: i,
			RawInst:  isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1},
			FrontWay: w[0], BackWay: w[1], Class: isa.UnitIntALU,
			Committed: true,
		}
	}
	return out
}

func TestCheckShuffleAcceptsRealShuffler(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	sh := &core.Shuffler{Width: cfg.FetchWidth, Units: cfg.Units}
	in := mkEntries([2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2}, [2]int{3, 3})
	out := sh.Shuffle(in)
	if errs := CheckShuffle(cfg.FetchWidth, cfg.Units, true, false, in, out); len(errs) != 0 {
		t.Fatalf("real shuffler flagged: %v", errs)
	}
}

// TestBrokenShuffleCaught is the mutation smoke test of the acceptance
// criteria: deliberately broken shuffle outputs must be flagged by the
// invariant checker.
func TestBrokenShuffleCaught(t *testing.T) {
	width := 4
	units := shuffleUnits()
	mk := func() ([]*core.Entry, []core.Packet) {
		in := mkEntries([2]int{0, 0}, [2]int{1, 1})
		// A legal placement: entry0 (fe 0, be 0) -> slot 1 (planned be 1);
		// entry1 (fe 1, be 1) -> slot 2 (planned be... intALU count below = 1
		// -> conflict!). Build instead: entry1 -> slot 0 (planned be 0 ==
		// leading be 1? no, planned 0 != 1, fe 0 != 1: legal).
		out := []core.Packet{{ID: 1, Slots: make([]core.Slot, width)}}
		out[0].Slots[0] = core.Slot{Entry: in[1]}
		out[0].Slots[1] = core.Slot{Entry: in[0]}
		return in, out
	}

	if in, out := mk(); len(CheckShuffle(width, units, true, false, in, out)) != 0 {
		t.Fatalf("baseline placement flagged: %v", CheckShuffle(width, units, true, false, in, out))
	}

	cases := []struct {
		name   string
		mutate func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet)
		want   string
	}{
		{"entry on its own frontend way", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			out[0].Slots[0], out[0].Slots[1] = core.Slot{}, core.Slot{}
			out[0].Slots[0] = core.Slot{Entry: in[0]} // fe way 0 == slot 0
			out[0].Slots[2] = core.Slot{Entry: in[1]}
			return in, out
		}, "frontend way"},
		{"entry on its leading backend way", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			out[0].Slots[0], out[0].Slots[1] = core.Slot{}, core.Slot{}
			out[0].Slots[1] = core.Slot{Entry: in[0]} // planned be 0 == leading be 0
			out[0].Slots[2] = core.Slot{Entry: in[1]}
			in[0].BackWay = 0
			return in, out
		}, "backend way"},
		{"dropped entry", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			out[0].Slots[1] = core.Slot{}
			return in, out
		}, "lost by shuffle"},
		{"duplicated entry", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			out[0].Slots[3] = core.Slot{Entry: in[0]}
			return in, out
		}, "placed twice"},
		{"foreign entry", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			alien := &core.Entry{Seq: 99, Committed: true, FrontWay: 1, Class: isa.UnitIntALU}
			out[0].Slots[3] = core.Slot{Entry: alien}
			return in, out
		}, "foreign entry"},
		{"uncommitted entry reached shuffle", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			in[0].Committed = false
			return in, out
		}, "uncommitted"},
		{"wrong slot count", func(in []*core.Entry, out []core.Packet) ([]*core.Entry, []core.Packet) {
			out[0].Slots = out[0].Slots[:width-1]
			return in, out
		}, "slots"},
	}
	for _, tc := range cases {
		in, out := mk()
		in, out = tc.mutate(in, out)
		errs := CheckShuffle(width, units, true, false, in, out)
		found := false
		for _, e := range errs {
			if strings.Contains(e, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: checker missed it (errors: %v)", tc.name, errs)
		}
	}
}

func TestCheckShufflePassThroughContract(t *testing.T) {
	width := 4
	units := shuffleUnits()
	in := mkEntries([2]int{0, 0}, [2]int{1, 1})
	out := []core.Packet{{ID: 1, Slots: make([]core.Slot, width)}}
	out[0].Slots[0] = core.Slot{Entry: in[0]}
	out[0].Slots[1] = core.Slot{Entry: in[1]}
	if errs := CheckShuffle(width, units, false, false, in, out); len(errs) != 0 {
		t.Fatalf("legal pass-through flagged: %v", errs)
	}
	// Reordered pass-through must be flagged (BlackJack-NS preserves order).
	out[0].Slots[0], out[0].Slots[1] = core.Slot{Entry: in[1]}, core.Slot{Entry: in[0]}
	if errs := CheckShuffle(width, units, false, false, in, out); len(errs) == 0 {
		t.Fatal("reordered pass-through not flagged")
	}
	// NOPs never appear without shuffle.
	out[0].Slots[0], out[0].Slots[1] = core.Slot{Entry: in[0]}, core.Slot{Entry: in[1]}
	out[0].Slots[2] = core.Slot{IsNOP: true, NopClass: isa.UnitIntALU}
	if errs := CheckShuffle(width, units, false, false, in, out); len(errs) == 0 {
		t.Fatal("pass-through NOP not flagged")
	}
}

// TestBrokenMachineShuffleCaught wires a corrupting observer scenario: it
// validates that a machine-level shuffle mutation (an entry forced onto its
// leading frontend way) is caught by the same checker the harness installs.
func TestBrokenMachineShuffleCaught(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	sh := &core.Shuffler{Width: cfg.FetchWidth, Units: cfg.Units}
	ic := NewInvariantChecker(cfg, pipeline.ModeBlackJack)
	in := mkEntries([2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2})
	out := sh.Shuffle(in)
	// Sabotage: move the first placed entry onto its leading frontend way.
sabotage:
	for pi := range out {
		for si := range out[pi].Slots {
			if e := out[pi].Slots[si].Entry; e != nil && si != e.FrontWay {
				out[pi].Slots[si] = core.Slot{}
				out[pi].Slots[e.FrontWay] = core.Slot{Entry: e}
				break sabotage
			}
		}
	}
	ic.Observe(1, in, out)
	if len(ic.Errors()) == 0 {
		t.Fatal("sabotaged machine shuffle not caught")
	}
}

func TestMinimizeShrinksFailure(t *testing.T) {
	p, err := prog.AdversarialProgram(3)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic failure: the program contains an integer multiply.
	hasMul := func(q *isa.Program) bool {
		for _, in := range q.Code {
			if in.Op == isa.OpMul {
				return true
			}
		}
		return false
	}
	if !hasMul(p) {
		t.Skip("seed produced no multiply")
	}
	min := Minimize(p, hasMul, 0)
	if !hasMul(min) {
		t.Fatal("minimized program lost the failure")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized program invalid: %v", err)
	}
	// ddmin should reduce a hundreds-of-instructions program to (nearly)
	// just the multiply and the final halt.
	if len(min.Code) > 4 {
		t.Fatalf("weak minimization: %d instructions remain (want <= 4)", len(min.Code))
	}
	if min.DataSize > 1024 {
		t.Fatalf("data segment not shrunk: %d", min.DataSize)
	}
}

func TestMinimizeKeepsBranchTargetsValid(t *testing.T) {
	b := prog.NewBuilder("branchy")
	b.Data(1024)
	b.Li(isa.IntReg(1), 3)
	b.Label("top")
	b.Op3(isa.OpMul, isa.IntReg(2), isa.IntReg(1), isa.IntReg(1))
	b.Addi(isa.IntReg(1), isa.IntReg(1), -1)
	b.Branch(isa.OpBne, isa.IntReg(1), isa.ZeroReg, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fails := func(q *isa.Program) bool {
		for _, in := range q.Code {
			if in.IsBranch() && (in.Imm < 0 || in.Imm >= int64(len(q.Code))) {
				t.Fatalf("candidate with invalid branch target %d/%d", in.Imm, len(q.Code))
			}
			if in.Op == isa.OpMul {
				return true
			}
		}
		return false
	}
	min := Minimize(p, fails, 0)
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized program invalid: %v", err)
	}
}

func TestPadNopsPreservesOracleState(t *testing.T) {
	p, err := prog.Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	orig.Run(3000)
	k := 3
	padded, err := isa.NewMachine(PadNops(p, k))
	if err != nil {
		t.Fatal(err)
	}
	padded.Run(3000 + k)
	if orig.StoreSignature() != padded.StoreSignature() {
		t.Fatalf("NOP padding changed the store stream: %#x vs %#x", orig.StoreSignature(), padded.StoreSignature())
	}
	for r := isa.Reg(0); r < isa.NumArchRegs; r++ {
		if orig.Reg(r) != padded.Reg(r) {
			t.Fatalf("NOP padding changed %s: %#x vs %#x", r, orig.Reg(r), padded.Reg(r))
		}
	}
}

func TestStressProgramsRun(t *testing.T) {
	for shape := prog.StressIntALU; shape <= prog.StressMixed; shape++ {
		p, err := prog.StressProgram(99, shape)
		if err != nil {
			t.Fatalf("shape %d: %v", shape, err)
		}
		g, err := isa.NewMachine(p)
		if err != nil {
			t.Fatalf("shape %d: %v", shape, err)
		}
		g.Run(5000)
		if g.Retired() == 0 {
			t.Fatalf("shape %d: no instructions retired", shape)
		}
	}
}

func TestCoverageMatrix(t *testing.T) {
	m, err := CoverageMatrix(MatrixOptions{Mode: pipeline.ModeBlackJack, MaxInstr: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) < 12 {
		t.Fatalf("matrix too small: %d cells", len(m.Cells))
	}
	if !m.OK() {
		t.Fatalf("coverage matrix violations:\n%s\n%s", strings.Join(m.Problems(), "\n"), m)
	}
}
