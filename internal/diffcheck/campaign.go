package diffcheck

import (
	"fmt"

	"blackjack/internal/isa"
	"blackjack/internal/parallel"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
)

// FuzzOptions configures a differential fuzzing campaign.
type FuzzOptions struct {
	// Machine is the core configuration (zero value selects Table 1).
	Machine pipeline.Config
	// Programs is the number of random programs to check (default 100).
	Programs int
	// Seed makes the whole campaign deterministic; per-program seeds derive
	// from it via splitmix, so campaigns with different Programs counts agree
	// on their common prefix.
	Seed uint64
	// MaxInstr is the leading-thread committed-instruction budget per run
	// (default 5000).
	MaxInstr int
	// Workers bounds the fan-out (<= 0 selects runtime.NumCPU()); results are
	// deterministic at every worker count.
	Workers int
	// Variant, when non-nil, restricts checking to one machine variant
	// instead of all five.
	Variant *Variant
	// Shrink minimizes failing programs via delta debugging (on by default
	// in the CLI; costs extra runs per failure).
	Shrink bool
	// ShrinkTests bounds candidate evaluations per minimization (<= 0
	// selects the Minimize default).
	ShrinkTests int
}

func (o *FuzzOptions) withDefaults() FuzzOptions {
	out := *o
	if out.Machine.FetchWidth == 0 {
		out.Machine = pipeline.DefaultConfig()
	}
	if out.Programs <= 0 {
		out.Programs = 100
	}
	if out.MaxInstr <= 0 {
		out.MaxInstr = 5000
	}
	return out
}

// Failure is one program that diverged, with its minimized reproducer.
type Failure struct {
	Index       int
	Seed        uint64
	Source      string
	Program     *isa.Program
	Divergences []Divergence
	// Minimized is the delta-debugged reproducer (nil when shrinking was
	// off); Encoded is its corpus wire form (nil when the program exceeds
	// the encodable size).
	Minimized *isa.Program
	Encoded   []byte
}

// FuzzSummary aggregates a campaign.
type FuzzSummary struct {
	Programs int
	Runs     int    // variant runs performed
	Shuffles uint64 // shuffle invocations validated
	Entries  uint64 // DTQ entries through the invariant checker
	Failures []Failure
}

// Failed reports whether any program diverged.
func (s *FuzzSummary) Failed() bool { return len(s.Failures) > 0 }

// GenerateProgram builds the i-th campaign program from the campaign seed.
// The mix alternates adversarial instruction-level programs (two thirds)
// with profile-generator workloads under randomized knobs (one third), so
// the harness probes both hostile shapes and realistic steady-state code.
func GenerateProgram(campaignSeed uint64, i int) (*isa.Program, string, error) {
	seed := prog.DeriveSeed(campaignSeed, uint64(i))
	if i%3 == 2 {
		profile := prog.RandomProfile(fmt.Sprintf("rand-%d", i), seed)
		p, err := prog.Generate(profile)
		return p, "profile", err
	}
	p, err := prog.AdversarialProgram(seed)
	return p, "adversarial", err
}

// PadNops returns p with k NOPs prepended (branch targets shifted), a
// metamorphic transform that must not change the program's final state: the
// pipeline run of the padded program is cross-checked against the oracle
// like any other, but with every packet boundary shifted by k lanes.
func PadNops(p *isa.Program, k int) *isa.Program {
	q := *p
	q.Name = p.Name + "+nops"
	q.Code = make([]isa.Inst, 0, len(p.Code)+k)
	for i := 0; i < k; i++ {
		q.Code = append(q.Code, isa.Inst{Op: isa.OpNop})
	}
	for _, in := range p.Code {
		if in.IsBranch() {
			in.Imm += int64(k)
		}
		q.Code = append(q.Code, in)
	}
	return &q
}

// Fuzz runs the campaign: generate programs, check every one under every
// variant (or the selected one) against the oracle and the structural
// invariants, run the NOP-padding metamorphic variant on a quarter of the
// programs, and minimize any failures.
func Fuzz(opts FuzzOptions) (*FuzzSummary, error) {
	o := opts.withDefaults()

	type outcome struct {
		seed     uint64
		source   string
		program  *isa.Program
		runs     int
		shuffles uint64
		entries  uint64
		divs     []Divergence
	}

	results, err := parallel.Map(o.Workers, o.Programs, func(i int) (*outcome, error) {
		p, source, err := GenerateProgram(o.Seed, i)
		if err != nil {
			return nil, fmt.Errorf("diffcheck: program %d: %w", i, err)
		}
		out := &outcome{seed: prog.DeriveSeed(o.Seed, uint64(i)), source: source, program: p}
		var rep *ProgramReport
		if o.Variant != nil {
			rep = CheckVariantProgram(o.Machine, *o.Variant, p, o.MaxInstr)
		} else {
			rep = CheckProgram(o.Machine, p, o.MaxInstr)
		}
		out.divs = rep.Divergences
		for _, vr := range rep.Variants {
			out.runs++
			out.shuffles += vr.Shuffles
			out.entries += vr.ShuffleEntries
		}
		// Metamorphic NOP padding on every fourth program, checked under
		// full BlackJack (the configuration most sensitive to packet shape).
		if i%4 == 0 && o.Variant == nil {
			padded := PadNops(p, 1+i%3)
			vr := RunVariant(o.Machine, Variant{Name: "blackjack+nops", Mode: pipeline.ModeBlackJack}, padded, o.MaxInstr)
			out.runs++
			out.shuffles += vr.Shuffles
			out.divs = append(out.divs, vr.Divergences...)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	sum := &FuzzSummary{Programs: o.Programs}
	for i, out := range results {
		sum.Runs += out.runs
		sum.Shuffles += out.shuffles
		sum.Entries += out.entries
		if len(out.divs) == 0 {
			continue
		}
		f := Failure{
			Index:       i,
			Seed:        out.seed,
			Source:      out.source,
			Program:     out.program,
			Divergences: out.divs,
		}
		if o.Shrink {
			fails := func(cand *isa.Program) bool {
				if o.Variant != nil {
					return CheckVariantProgram(o.Machine, *o.Variant, cand, o.MaxInstr).Failed()
				}
				return CheckProgram(o.Machine, cand, o.MaxInstr).Failed()
			}
			f.Minimized = Minimize(out.program, fails, o.ShrinkTests)
			if enc, err := EncodeProgram(f.Minimized); err == nil {
				f.Encoded = enc
			}
		}
		sum.Failures = append(sum.Failures, f)
	}
	return sum, nil
}
