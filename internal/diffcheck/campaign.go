package diffcheck

import (
	"context"
	"fmt"

	"blackjack/internal/isa"
	"blackjack/internal/parallel"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
)

// FuzzOptions configures a differential fuzzing campaign.
type FuzzOptions struct {
	// Machine is the core configuration (zero value selects Table 1).
	Machine pipeline.Config
	// Programs is the number of random programs to check (default 100).
	Programs int
	// Seed makes the whole campaign deterministic; per-program seeds derive
	// from it via splitmix, so campaigns with different Programs counts agree
	// on their common prefix.
	Seed uint64
	// MaxInstr is the leading-thread committed-instruction budget per run
	// (default 5000).
	MaxInstr int
	// Workers bounds the fan-out (<= 0 selects runtime.NumCPU()); results are
	// deterministic at every worker count.
	Workers int
	// Variant, when non-nil, restricts checking to one machine variant
	// instead of all five.
	Variant *Variant
	// Shrink minimizes failing programs via delta debugging (on by default
	// in the CLI; costs extra runs per failure).
	Shrink bool
	// ShrinkTests bounds candidate evaluations per minimization (<= 0
	// selects the Minimize default).
	ShrinkTests int
	// Ctx, when non-nil, cancels the campaign: in-flight programs finish,
	// no new ones start, completed records are flushed to the journal, and
	// the context's error is returned. nil means uncancellable.
	Ctx context.Context
	// Journal, when non-nil, records every completed program so an
	// interrupted campaign resumes where it stopped (see OpenFuzzJournal).
	// Resumed programs replay their journaled contribution instead of
	// re-running, and the summary is identical to an uninterrupted one.
	Journal *FuzzJournal
	// OnProgress, when non-nil, observes every completed program: live runs
	// and journal replays alike (resumed reports which). It is called from
	// worker goroutines, so it must be safe for concurrent use and should
	// not block; it cannot change results.
	OnProgress func(index int, resumed bool, divergences int)
}

func (o *FuzzOptions) withDefaults() FuzzOptions {
	out := *o
	if out.Machine.FetchWidth == 0 {
		out.Machine = pipeline.DefaultConfig()
	}
	if out.Programs <= 0 {
		out.Programs = 100
	}
	if out.MaxInstr <= 0 {
		out.MaxInstr = 5000
	}
	return out
}

// Failure is one program that diverged, with its minimized reproducer.
type Failure struct {
	Index       int
	Seed        uint64
	Source      string
	Program     *isa.Program
	Divergences []Divergence
	// Minimized is the delta-debugged reproducer (nil when shrinking was
	// off); Encoded is its corpus wire form (nil when the program exceeds
	// the encodable size).
	Minimized *isa.Program
	Encoded   []byte
}

// FuzzSummary aggregates a campaign.
type FuzzSummary struct {
	Programs int
	Runs     int    // variant runs performed
	Shuffles uint64 // shuffle invocations validated
	Entries  uint64 // DTQ entries through the invariant checker
	Resumed  int    // programs replayed from the journal, not re-run
	Failures []Failure
}

// Failed reports whether any program diverged.
func (s *FuzzSummary) Failed() bool { return len(s.Failures) > 0 }

// GenerateProgram builds the i-th campaign program from the campaign seed.
// The mix alternates adversarial instruction-level programs (two thirds)
// with profile-generator workloads under randomized knobs (one third), so
// the harness probes both hostile shapes and realistic steady-state code.
func GenerateProgram(campaignSeed uint64, i int) (*isa.Program, string, error) {
	seed := prog.DeriveSeed(campaignSeed, uint64(i))
	if i%3 == 2 {
		profile := prog.RandomProfile(fmt.Sprintf("rand-%d", i), seed)
		p, err := prog.Generate(profile)
		return p, "profile", err
	}
	p, err := prog.AdversarialProgram(seed)
	return p, "adversarial", err
}

// PadNops returns p with k NOPs prepended (branch targets shifted), a
// metamorphic transform that must not change the program's final state: the
// pipeline run of the padded program is cross-checked against the oracle
// like any other, but with every packet boundary shifted by k lanes.
func PadNops(p *isa.Program, k int) *isa.Program {
	q := *p
	q.Name = p.Name + "+nops"
	q.Code = make([]isa.Inst, 0, len(p.Code)+k)
	for i := 0; i < k; i++ {
		q.Code = append(q.Code, isa.Inst{Op: isa.OpNop})
	}
	for _, in := range p.Code {
		if in.IsBranch() {
			in.Imm += int64(k)
		}
		q.Code = append(q.Code, in)
	}
	return &q
}

// fuzzTestHook, when non-nil, runs inside every panic-isolation boundary:
// with the program index on the live check path, and with i == -1 per
// minimization candidate. Test seam for injecting harness faults.
var fuzzTestHook func(i int, p *isa.Program)

// checkOne runs one generated program through the configured checks. A
// panic anywhere in the checking machinery is recovered into a "panic"
// divergence on the harness pseudo-variant: the program is then a recorded
// failure (minimized like any other) instead of aborting the campaign.
func checkOne(o FuzzOptions, i int, p *isa.Program) (rec fuzzRecord) {
	defer func() {
		if r := recover(); r != nil {
			rec.Divergences = append(rec.Divergences, panicDivergence(r))
		}
	}()
	if fuzzTestHook != nil {
		fuzzTestHook(i, p)
	}
	var rep *ProgramReport
	if o.Variant != nil {
		rep = CheckVariantProgram(o.Machine, *o.Variant, p, o.MaxInstr)
	} else {
		rep = CheckProgram(o.Machine, p, o.MaxInstr)
	}
	rec.Divergences = rep.Divergences
	for _, vr := range rep.Variants {
		rec.Runs++
		rec.Shuffles += vr.Shuffles
		rec.Entries += vr.ShuffleEntries
	}
	// Metamorphic NOP padding on every fourth program, checked under
	// full BlackJack (the configuration most sensitive to packet shape).
	if i%4 == 0 && o.Variant == nil {
		padded := PadNops(p, 1+i%3)
		vr := RunVariant(o.Machine, Variant{Name: "blackjack+nops", Mode: pipeline.ModeBlackJack}, padded, o.MaxInstr)
		rec.Runs++
		rec.Shuffles += vr.Shuffles
		rec.Divergences = append(rec.Divergences, vr.Divergences...)
	}
	return rec
}

// shrinkOne minimizes a failing program. A candidate that panics the
// checker still reproduces the failure, so the predicate treats a panic as
// "fails" — delta debugging then minimizes panic-inducing programs too.
func shrinkOne(o FuzzOptions, p *isa.Program) *isa.Program {
	fails := func(cand *isa.Program) (failed bool) {
		defer func() {
			if r := recover(); r != nil {
				failed = true
			}
		}()
		if fuzzTestHook != nil {
			fuzzTestHook(-1, cand)
		}
		if o.Variant != nil {
			return CheckVariantProgram(o.Machine, *o.Variant, cand, o.MaxInstr).Failed()
		}
		return CheckProgram(o.Machine, cand, o.MaxInstr).Failed()
	}
	return Minimize(p, fails, o.ShrinkTests)
}

// Fuzz runs the campaign: generate programs, check every one under every
// variant (or the selected one) against the oracle and the structural
// invariants, run the NOP-padding metamorphic variant on a quarter of the
// programs, and minimize any failures. With a Journal attached, completed
// programs are durable and a re-run resumes instead of repeating them.
func Fuzz(opts FuzzOptions) (*FuzzSummary, error) {
	o := opts.withDefaults()

	type outcome struct {
		rec       fuzzRecord
		program   *isa.Program // nil on the replay path until a failure needs it
		minimized *isa.Program // live-path Minimize result; replay decodes rec.Minimized
		resumed   bool
	}

	results, err := parallel.MapCtx(o.Ctx, o.Workers, o.Programs, func(i int) (*outcome, error) {
		if o.Journal != nil {
			if rec, ok := o.Journal.done[i]; ok {
				if o.OnProgress != nil {
					o.OnProgress(i, true, len(rec.Divergences))
				}
				return &outcome{rec: rec, resumed: true}, nil
			}
		}
		p, source, err := GenerateProgram(o.Seed, i)
		if err != nil {
			return nil, fmt.Errorf("diffcheck: program %d: %w", i, err)
		}
		out := &outcome{program: p}
		out.rec = checkOne(o, i, p)
		out.rec.Seed = prog.DeriveSeed(o.Seed, uint64(i))
		out.rec.Source = source
		if len(out.rec.Divergences) > 0 && o.Shrink {
			out.minimized = shrinkOne(o, p)
			if enc, err := EncodeProgram(out.minimized); err == nil {
				out.rec.Minimized = enc
			}
		}
		if o.Journal != nil {
			if err := o.Journal.j.Append(i, out.rec); err != nil {
				return nil, fmt.Errorf("diffcheck: journal program %d: %w", i, err)
			}
		}
		if o.OnProgress != nil {
			o.OnProgress(i, false, len(out.rec.Divergences))
		}
		return out, nil
	})
	if err != nil {
		// Flush completed records so a cancelled campaign resumes cleanly.
		if o.Journal != nil {
			o.Journal.Sync()
		}
		return nil, err
	}
	if o.Journal != nil {
		if serr := o.Journal.Sync(); serr != nil {
			return nil, serr
		}
	}

	sum := &FuzzSummary{Programs: o.Programs}
	for i, out := range results {
		sum.Runs += out.rec.Runs
		sum.Shuffles += out.rec.Shuffles
		sum.Entries += out.rec.Entries
		if out.resumed {
			sum.Resumed++
		}
		if len(out.rec.Divergences) == 0 {
			continue
		}
		program := out.program
		if program == nil {
			// Replayed failure: programs are not journaled, they regenerate
			// deterministically from the campaign seed.
			program, _, _ = GenerateProgram(o.Seed, i)
		}
		f := Failure{
			Index:       i,
			Seed:        out.rec.Seed,
			Source:      out.rec.Source,
			Program:     program,
			Divergences: out.rec.Divergences,
			Minimized:   out.minimized,
			Encoded:     out.rec.Minimized,
		}
		if f.Minimized == nil && len(f.Encoded) > 0 {
			f.Minimized = DecodeProgram(f.Encoded)
		}
		sum.Failures = append(sum.Failures, f)
	}
	return sum, nil
}
