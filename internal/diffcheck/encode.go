package diffcheck

import (
	"encoding/binary"
	"fmt"

	"blackjack/internal/isa"
)

// Fuzz-input wire format. The decoder is a total function — every byte
// string maps to a structurally valid program — so native go-fuzz mutation
// always lands on runnable inputs, and the encoder inverts it exactly for
// the canonical programs the generators emit, so shrunken failures round-trip
// into corpus seeds.
//
//	byte  0     data-segment selector: DataSize = 1024 << (b % 12)  (1KB..2MB)
//	bytes 1..2  init-word count, uint16 little-endian (clamped to fit)
//	            then count * 8 bytes of init words, little-endian
//	records     12 bytes per instruction: op, rd, rs1, rs2, imm (int64 LE)
//	            op is taken mod NumOps, registers mod NumArchRegs, and branch
//	            or jump targets mod the final code length
//
// A trailing OpHalt is always appended by the decoder (running off the end
// of the code is not an architectural stop), and stripped again by the
// encoder. Trailing partial records are ignored.

const (
	instRecordSize = 12
	// maxDecodeInsts bounds a decoded program so a fuzzer-built input cannot
	// demand an unbounded simulation.
	maxDecodeInsts = 2048
	maxDataSel     = 12 // DataSize in [1KB, 2MB]
)

// DecodeProgram maps an arbitrary byte string to a valid program.
func DecodeProgram(data []byte) *isa.Program {
	p := &isa.Program{Name: "fuzz", DataSize: 1024}
	if len(data) > 0 {
		p.DataSize = 1024 << (int(data[0]) % maxDataSel)
		data = data[1:]
	}
	if len(data) >= 2 {
		n := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if maxWords := p.DataSize / 8; n > maxWords {
			n = maxWords
		}
		if avail := len(data) / 8; n > avail {
			n = avail
		}
		p.Init = make([]uint64, n)
		for i := range p.Init {
			p.Init[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		data = data[8*n:]
	}

	nInst := len(data) / instRecordSize
	if nInst > maxDecodeInsts {
		nInst = maxDecodeInsts
	}
	p.Code = make([]isa.Inst, 0, nInst+1)
	for i := 0; i < nInst; i++ {
		rec := data[i*instRecordSize:]
		in := isa.Inst{
			Op:  isa.Op(int(rec[0]) % int(isa.NumOps)),
			Rd:  isa.Reg(rec[1]) % isa.NumArchRegs,
			Rs1: isa.Reg(rec[2]) % isa.NumArchRegs,
			Rs2: isa.Reg(rec[3]) % isa.NumArchRegs,
			Imm: int64(binary.LittleEndian.Uint64(rec[4:12])),
		}
		p.Code = append(p.Code, in)
	}
	p.Code = append(p.Code, isa.Inst{Op: isa.OpHalt})

	// Branch and jump targets land inside the final code image.
	codeLen := uint64(len(p.Code))
	for i := range p.Code {
		if p.Code[i].IsBranch() {
			p.Code[i].Imm = int64(uint64(p.Code[i].Imm) % codeLen)
		}
	}
	return p
}

// EncodeProgram inverts DecodeProgram for canonical programs (power-of-two
// data segments between 1KB and 2MB, a single trailing OpHalt, in-range
// branch targets — everything the generators produce). Non-canonical inputs
// are encoded best-effort: the decoded result is always valid but may differ
// (e.g. a rounded-up data segment).
func EncodeProgram(p *isa.Program) ([]byte, error) {
	sel := 0
	for sel < maxDataSel-1 && 1024<<sel < p.DataSize {
		sel++
	}
	code := p.Code
	if n := len(code); n > 0 && code[n-1].Op == isa.OpHalt {
		code = code[:n-1]
	}
	if len(code) > maxDecodeInsts {
		return nil, fmt.Errorf("diffcheck: program %q has %d instructions (max %d)", p.Name, len(code), maxDecodeInsts)
	}
	nInit := len(p.Init)
	if nInit > 0xFFFF {
		return nil, fmt.Errorf("diffcheck: program %q has %d init words (max %d)", p.Name, nInit, 0xFFFF)
	}

	out := make([]byte, 0, 3+8*nInit+instRecordSize*len(code))
	out = append(out, byte(sel))
	out = binary.LittleEndian.AppendUint16(out, uint16(nInit))
	for _, w := range p.Init {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	for _, in := range code {
		out = append(out, byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2))
		out = binary.LittleEndian.AppendUint64(out, uint64(in.Imm))
	}
	return out, nil
}
