package diffcheck

import (
	"sort"
	"testing"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
	"blackjack/internal/sim"
)

// corpusDir holds the committed seed corpus: minimized failure reproducers
// and generator-produced seeds in Go's native fuzz encoding. It feeds both
// fuzz targets and the plain-`go test` regression replay below.
const corpusDir = "testdata/corpus"

// fuzzBudget keeps per-input simulation cost bounded so the native fuzzing
// engine gets a healthy exec rate.
const fuzzBudget = 1200

func addSeeds(f *testing.F) {
	f.Helper()
	for i := 0; i < 6; i++ {
		p, _, err := GenerateProgram(42, i)
		if err != nil {
			f.Fatal(err)
		}
		if enc, err := EncodeProgram(p); err == nil {
			f.Add(enc)
		}
	}
	seeds, err := ReadCorpusDir(corpusDir)
	if err != nil {
		f.Fatal(err)
	}
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Add(seeds[name])
	}
}

// FuzzPipelineVsOracle decodes arbitrary bytes into a valid program and
// differentially checks the pipeline against the golden model in every
// machine variant.
func FuzzPipelineVsOracle(f *testing.F) {
	addSeeds(f)
	cfg := pipeline.DefaultConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		rep := CheckProgram(cfg, p, fuzzBudget)
		for _, d := range rep.Divergences {
			t.Errorf("%v", d)
		}
	})
}

// FuzzShuffleInvariants spends the whole budget on the two shuffling
// variants, maximizing safe-shuffle invariant checking throughput.
func FuzzShuffleInvariants(f *testing.F) {
	addSeeds(f)
	cfg := pipeline.DefaultConfig()
	variants := []Variant{
		{Name: "blackjack", Mode: pipeline.ModeBlackJack},
		{Name: "blackjack+merge", Mode: pipeline.ModeBlackJack, Merge: true},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		for _, v := range variants {
			for _, d := range RunVariant(cfg, v, p, fuzzBudget).Divergences {
				t.Errorf("%v", d)
			}
		}
	})
}

// intermittentFuzzCfg bounds one campaign run the way the checkpoint tests
// do: a deadlock backstop small enough that wedged outcomes classify fast,
// and a checkpoint interval that forces the sampled run's fallbacks onto
// the fork path for part of each program.
func intermittentFuzzCfg() sim.Config {
	// A tighter budget and backstop than the pipeline-vs-oracle targets: each
	// input pays for two whole campaigns (cold and sampled), and wedged
	// outcomes burn the full cycle backstop, so these bounds set the exec
	// rate. Equivalence is insensitive to where the window ends.
	cfg := sim.Default(pipeline.ModeBlackJack, 600)
	cfg.Machine.MaxCycles = 15_000
	cfg.CheckpointInterval = 200
	return cfg
}

// intermittentFuzzSites is a four-site duty-cycled campaign spanning the
// structure classes, with the window phases deliberately unaligned so fork
// points land inside both on- and off-phases.
func intermittentFuzzSites() []fault.Site {
	return []fault.Site{
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9,
			Kind: fault.KindIntermittent, DutyPeriod: 16, DutyOn: 4, DutyProb: 75},
		{Class: fault.FrontendWay, Way: 0, Field: fault.FieldRs2,
			Kind: fault.KindIntermittent, DutyPeriod: 8, DutyOn: 8},
		{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 0, CorruptAddr: true, BitMask: 1,
			Kind: fault.KindIntermittent, DutyPeriod: 32, DutyOn: 1},
		{Class: fault.PayloadRAM, Slot: 0, Field: fault.FieldImm, BitMask: 2,
			Kind: fault.KindIntermittent, DutyPeriod: 8, DutyOn: 2, DutyProb: 50},
	}
}

// FuzzIntermittentVsOracle decodes arbitrary bytes into a valid program and
// checks the sampled-equivalence property for duty-cycled faults on it: a
// checkpointed sampled campaign must classify every intermittent site — via
// its bit-exact fork/cold fallbacks — exactly as cold full simulation does,
// with the oracle-referenced outcome class and activated flag preserved.
func FuzzIntermittentVsOracle(f *testing.F) {
	addSeeds(f)
	sites := intermittentFuzzSites()
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		rep, err := CompareSampledCampaign(intermittentFuzzCfg(), p, sites, sim.InjectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range rep.Mismatches {
			t.Errorf("%v", m)
		}
	})
}

// TestIntermittentCorpusSeeds replays the committed seed corpus through the
// intermittent sampled-equivalence property in plain `go test`, so the
// duty-cycle fuzz target's seeds stay regression tests without -fuzz.
func TestIntermittentCorpusSeeds(t *testing.T) {
	seeds, err := ReadCorpusDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty seed corpus: expected committed seeds in testdata/corpus")
	}
	sites := intermittentFuzzSites()
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep, err := CompareSampledCampaign(intermittentFuzzCfg(), DecodeProgram(seeds[name]), sites, sim.InjectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range rep.Mismatches {
			t.Errorf("%s: %v", name, m)
		}
	}
}

// TestCorpusSeeds replays the committed seed corpus in plain `go test` (no
// -fuzz flag needed), so every past minimized failure stays a regression
// test.
func TestCorpusSeeds(t *testing.T) {
	seeds, err := ReadCorpusDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty seed corpus: expected committed seeds in testdata/corpus")
	}
	cfg := pipeline.DefaultConfig()
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := DecodeProgram(seeds[name])
		rep := CheckProgram(cfg, p, 2000)
		for _, d := range rep.Divergences {
			t.Errorf("%s: %v", name, d)
		}
	}
}
