package diffcheck

import (
	"sort"
	"testing"

	"blackjack/internal/pipeline"
)

// corpusDir holds the committed seed corpus: minimized failure reproducers
// and generator-produced seeds in Go's native fuzz encoding. It feeds both
// fuzz targets and the plain-`go test` regression replay below.
const corpusDir = "testdata/corpus"

// fuzzBudget keeps per-input simulation cost bounded so the native fuzzing
// engine gets a healthy exec rate.
const fuzzBudget = 1200

func addSeeds(f *testing.F) {
	f.Helper()
	for i := 0; i < 6; i++ {
		p, _, err := GenerateProgram(42, i)
		if err != nil {
			f.Fatal(err)
		}
		if enc, err := EncodeProgram(p); err == nil {
			f.Add(enc)
		}
	}
	seeds, err := ReadCorpusDir(corpusDir)
	if err != nil {
		f.Fatal(err)
	}
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Add(seeds[name])
	}
}

// FuzzPipelineVsOracle decodes arbitrary bytes into a valid program and
// differentially checks the pipeline against the golden model in every
// machine variant.
func FuzzPipelineVsOracle(f *testing.F) {
	addSeeds(f)
	cfg := pipeline.DefaultConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		rep := CheckProgram(cfg, p, fuzzBudget)
		for _, d := range rep.Divergences {
			t.Errorf("%v", d)
		}
	})
}

// FuzzShuffleInvariants spends the whole budget on the two shuffling
// variants, maximizing safe-shuffle invariant checking throughput.
func FuzzShuffleInvariants(f *testing.F) {
	addSeeds(f)
	cfg := pipeline.DefaultConfig()
	variants := []Variant{
		{Name: "blackjack", Mode: pipeline.ModeBlackJack},
		{Name: "blackjack+merge", Mode: pipeline.ModeBlackJack, Merge: true},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		for _, v := range variants {
			for _, d := range RunVariant(cfg, v, p, fuzzBudget).Divergences {
				t.Errorf("%v", d)
			}
		}
	})
}

// TestCorpusSeeds replays the committed seed corpus in plain `go test` (no
// -fuzz flag needed), so every past minimized failure stays a regression
// test.
func TestCorpusSeeds(t *testing.T) {
	seeds, err := ReadCorpusDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty seed corpus: expected committed seeds in testdata/corpus")
	}
	cfg := pipeline.DefaultConfig()
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := DecodeProgram(seeds[name])
		rep := CheckProgram(cfg, p, 2000)
		for _, d := range rep.Divergences {
			t.Errorf("%s: %v", name, d)
		}
	}
}
