package diffcheck

import (
	"fmt"

	"blackjack/internal/journal"
	"blackjack/internal/runcache"
)

// fuzzRecord is one completed fuzz program as journaled: everything the
// program contributed to the session summary, so a resumed session's
// summary is identical to an uninterrupted one. The program itself is not
// stored — it regenerates deterministically from (campaign seed, index) —
// but the minimized reproducer's wire form is, so resume never re-runs a
// delta-debugging session.
type fuzzRecord struct {
	Seed        uint64       `json:"seed"`
	Source      string       `json:"source"`
	Runs        int          `json:"runs"`
	Shuffles    uint64       `json:"shuffles"`
	Entries     uint64       `json:"entries"`
	Divergences []Divergence `json:"divergences,omitempty"`
	Minimized   []byte       `json:"minimized,omitempty"`
}

// FuzzJournal is the durable completed-program log of one fuzz session.
// Open it with OpenFuzzJournal and attach it via FuzzOptions.Journal.
type FuzzJournal struct {
	j    *journal.Journal[fuzzRecord]
	done map[int]fuzzRecord
}

// fuzzJournalVersion is bumped when fuzzRecord or the identity schema
// changes incompatibly. v2: keys fold through the canonical runcache
// identity encoder and headers record the human-readable parts.
const fuzzJournalVersion = 2

// OpenFuzzJournal opens (creating or resuming) the fuzz journal at path.
// The key covers everything that defines program identity and check
// behavior — machine config, campaign seed, per-run budget, variant
// restriction, shrink settings — but deliberately NOT the program count or
// worker count: per-program seeds derive from the campaign seed, so a
// session journaled with -n 100 resumes (and extends) under -n 1000.
func OpenFuzzJournal(path string, opts FuzzOptions) (*FuzzJournal, error) {
	o := opts.withDefaults()
	variant := "all"
	if o.Variant != nil {
		variant = o.Variant.Name
	}
	id := runcache.NewIdentity().
		AddJSON("machine", o.Machine).
		Addf("seed", "%d", o.Seed).
		Addf("maxinstr", "%d", o.MaxInstr).
		Add("variant", variant).
		Addf("shrink", "%v/%d", o.Shrink, o.ShrinkTests)
	j, done, err := journal.Open[fuzzRecord](path, journal.Header{
		Kind: "fuzz", Key: id.Hash64(), Version: fuzzJournalVersion,
		Parts: id.Parts(),
	})
	if err != nil {
		return nil, err
	}
	return &FuzzJournal{j: j, done: done}, nil
}

// Done returns how many completed programs the journal already holds.
func (fj *FuzzJournal) Done() int { return len(fj.done) }

// SetSyncEvery overrides the fsync cadence: 1 makes every completed program
// durable before its Append returns (service posture — a SIGKILL at any
// instant loses nothing), <= 0 restores batched fsyncs.
func (fj *FuzzJournal) SetSyncEvery(n int) { fj.j.SetSyncEvery(n) }

// Sync flushes and fsyncs pending records (graceful-shutdown path).
func (fj *FuzzJournal) Sync() error { return fj.j.Sync() }

// Close flushes, fsyncs and closes the journal.
func (fj *FuzzJournal) Close() error { return fj.j.Close() }

// harnessVariant labels divergences that come from the checking machinery
// itself (a panic in a variant run), not from a specific machine variant.
const harnessVariant = "harness"

// panicDivergence converts a recovered panic into a reportable finding: a
// panicking check is a harness bug worth a minimized reproducer, not a
// reason to lose the rest of the session.
func panicDivergence(r any) Divergence {
	return Divergence{
		Variant: harnessVariant,
		Kind:    "panic",
		Detail:  fmt.Sprintf("%v", r),
	}
}
