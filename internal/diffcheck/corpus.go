package diffcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Corpus files use Go's native fuzzing encoding, so the same seeds feed
// three consumers: the plain-`go test` regression replay, the native
// `go test -fuzz` targets (f.Add), and the bjfuzz CLI's -replay flag.
//
//	go test fuzz v1
//	[]byte("...")

const corpusHeader = "go test fuzz v1"

// WriteCorpusFile writes one encoded program as a native Go fuzz corpus
// file.
func WriteCorpusFile(path string, data []byte) error {
	content := fmt.Sprintf("%s\n[]byte(%s)\n", corpusHeader, strconv.Quote(string(data)))
	return os.WriteFile(path, []byte(content), 0o644)
}

// ReadCorpusFile parses a native Go fuzz corpus file holding one []byte
// value.
func ReadCorpusFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != corpusHeader {
		return nil, fmt.Errorf("diffcheck: %s: not a go fuzz corpus file", path)
	}
	v := strings.TrimSpace(lines[1])
	const prefix, suffix = "[]byte(", ")"
	if !strings.HasPrefix(v, prefix) || !strings.HasSuffix(v, suffix) {
		return nil, fmt.Errorf("diffcheck: %s: unsupported corpus value %q", path, v)
	}
	s, err := strconv.Unquote(v[len(prefix) : len(v)-len(suffix)])
	if err != nil {
		return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
	}
	return []byte(s), nil
}

// ReadCorpusDir loads every corpus file in a directory, sorted by name for
// deterministic replay order. A missing directory is an empty corpus.
func ReadCorpusDir(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		data, err := ReadCorpusFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out[name] = data
	}
	return out, nil
}
