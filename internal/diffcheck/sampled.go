package diffcheck

import (
	"fmt"
	"strings"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/sim"
)

// This file implements the sampled-equivalence checker: the differential
// harness for sim.Config.FastForward. Sampled simulation promises that
// skipping a run's fault-free prefix on the functional model never changes
// what the campaign concludes — the per-site outcome class and whether the
// fault activated. Cycle counts, activation totals and detection latencies
// of fast-forwarded runs are window-relative by design, so the checker
// compares exactly the preserved figures and nothing else.

// SampledMismatch is one site whose sampled classification diverged from
// full simulation — a soundness bug in the fast-forward machinery (or a
// site whose outcome is genuinely timing-fragile and must be excluded from
// the fast path, as one-shot transients are).
type SampledMismatch struct {
	Index int
	Site  fault.Site

	FullOutcome    sim.Outcome
	SampledOutcome sim.Outcome
	FullActivated  bool
	SampledActive  bool
}

// String renders the mismatch.
func (m SampledMismatch) String() string {
	return fmt.Sprintf("site %d (%v): full %v/activated=%v, sampled %v/activated=%v",
		m.Index, m.Site, m.FullOutcome, m.FullActivated, m.SampledOutcome, m.SampledActive)
}

// SampledReport is the outcome of one sampled-vs-full campaign comparison.
type SampledReport struct {
	Benchmark string
	Sites     int
	// Mismatches lists every site whose preserved figures diverged.
	Mismatches []SampledMismatch
	// Full and Sampled are the two summaries, for inspection.
	Full    *sim.CampaignSummary
	Sampled *sim.CampaignSummary
}

// OK reports whether the sampled campaign matched full simulation.
func (r *SampledReport) OK() bool { return len(r.Mismatches) == 0 }

// String renders the report.
func (r *SampledReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sampled-equivalence %s: %d sites, %d mismatches\n",
		r.Benchmark, r.Sites, len(r.Mismatches))
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "  MISMATCH %v\n", m)
	}
	return b.String()
}

// CompareSampledCampaign runs the same fault campaign twice — full
// simulation and sampled (fast-forward) — and verifies per site that the
// outcome class and the activated flag agree. The full reference runs with
// checkpointing, metrics and journaling stripped, so it is the plain cold
// campaign; the sampled run keeps the caller's FFWarmup and
// CheckpointInterval (checkpoints then serve as fallback fork points).
func CompareSampledCampaign(cfg sim.Config, p *isa.Program, sites []fault.Site, opts sim.InjectOptions) (*SampledReport, error) {
	fullCfg := cfg
	fullCfg.FastForward = false
	fullCfg.CheckpointInterval = 0
	fullCfg.Metrics = nil
	fullCfg.Journal = nil
	full, err := sim.CampaignProgram(fullCfg, p, sites, opts)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: full campaign: %w", err)
	}
	sampledCfg := cfg
	sampledCfg.FastForward = true
	sampledCfg.Metrics = nil
	sampledCfg.Journal = nil
	sampled, err := sim.CampaignProgram(sampledCfg, p, sites, opts)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: sampled campaign: %w", err)
	}
	rep := &SampledReport{Benchmark: p.Name, Sites: len(sites), Full: full, Sampled: sampled}
	for i := range full.Results {
		f, s := full.Results[i], sampled.Results[i]
		if f.Outcome != s.Outcome || (f.Activations > 0) != (s.Activations > 0) {
			rep.Mismatches = append(rep.Mismatches, SampledMismatch{
				Index: i, Site: sites[i],
				FullOutcome: f.Outcome, SampledOutcome: s.Outcome,
				FullActivated: f.Activations > 0, SampledActive: s.Activations > 0,
			})
		}
	}
	return rep, nil
}
