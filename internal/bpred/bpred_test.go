package bpred

import (
	"math/rand"
	"testing"
)

// drive feeds the predictor a branch stream in-order (predict then resolve),
// returning the miss count over the last half of the run.
func drive(p *Predictor, pcs []int, outcomes []bool) int {
	miss := 0
	for i := range pcs {
		l := p.Predict(pcs[i])
		p.Update(l, outcomes[i])
		if i > len(pcs)/2 && l.Taken != outcomes[i] {
			miss++
		}
	}
	return miss
}

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	n := 1000
	pcs := make([]int, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 42
		outs[i] = true
	}
	if miss := drive(p, pcs, outs); miss > 2 {
		t.Errorf("always-taken branch missed %d times in steady state", miss)
	}
}

func TestAlternatingBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	n := 4000
	pcs := make([]int, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 100
		outs[i] = i%2 == 0
	}
	if miss := drive(p, pcs, outs); miss > n/50 {
		t.Errorf("alternating branch missed %d/%d in steady state", miss, n/2)
	}
}

func TestLoopWithExitPattern(t *testing.T) {
	// A loop branch taken 15 times then not taken once, repeatedly. The
	// 16-iteration period exceeds what 12 bits of history can disambiguate
	// (the exit aliases with all-taken history), so gshare misses about once
	// per loop (~6%) — but must do no worse than that.
	p := New(DefaultConfig())
	var pcs []int
	var outs []bool
	for rep := 0; rep < 400; rep++ {
		for i := 0; i < 16; i++ {
			pcs = append(pcs, 7)
			outs = append(outs, i != 15)
		}
	}
	miss := drive(p, pcs, outs)
	if rate := float64(miss) / float64(len(pcs)/2); rate > 0.10 {
		t.Errorf("loop-exit pattern missed %.1f%% in steady state, want ~6%%", rate*100)
	}
	// A short loop within history reach must be near-perfect.
	p2 := New(DefaultConfig())
	pcs, outs = nil, nil
	for rep := 0; rep < 800; rep++ {
		for i := 0; i < 6; i++ {
			pcs = append(pcs, 7)
			outs = append(outs, i != 5)
		}
	}
	miss = drive(p2, pcs, outs)
	if rate := float64(miss) / float64(len(pcs)/2); rate > 0.02 {
		t.Errorf("short-loop pattern missed %.1f%% in steady state", rate*100)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	n := 20000
	pcs := make([]int, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 7
		outs[i] = rng.Intn(2) == 0
	}
	miss := drive(p, pcs, outs)
	rate := float64(miss) / float64(n/2)
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random branch miss rate %.2f, want near 0.5", rate)
	}
}

func TestTwoInterleavedBiasedBranches(t *testing.T) {
	p := New(DefaultConfig())
	var pcs []int
	var outs []bool
	for i := 0; i < 2000; i++ {
		pcs = append(pcs, 0, 1)
		outs = append(outs, true, false)
	}
	if miss := drive(p, pcs, outs); miss > 40 {
		t.Errorf("two biased branches missed %d times in steady state", miss)
	}
}

func TestMispredictRepairsHistory(t *testing.T) {
	// After a misprediction + repair, subsequent predictions must behave as
	// if the wrong-path prediction never happened: drive a deterministic
	// pattern where each prediction is immediately resolved, and confirm the
	// pattern stays learnable (repair keeps history consistent).
	p := New(DefaultConfig())
	var pcs []int
	var outs []bool
	pat := []bool{true, true, false, true, false, false, true, false}
	for i := 0; i < 4000; i++ {
		pcs = append(pcs, 5)
		outs = append(outs, pat[i%len(pat)])
	}
	miss := drive(p, pcs, outs)
	if rate := float64(miss) / float64(len(pcs)/2); rate > 0.05 {
		t.Errorf("periodic pattern missed %.1f%% in steady state", rate*100)
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(DefaultConfig())
	l := p.Predict(1)
	p.Update(l, !l.Taken) // force a mispredict
	l = p.Predict(1)
	p.Update(l, l.Taken) // correct
	preds, miss := p.Stats()
	if preds != 2 || miss != 1 {
		t.Errorf("stats = (%d,%d), want (2,1)", preds, miss)
	}
}

func TestBadConfigFallsBack(t *testing.T) {
	p := New(Config{HistoryBits: 0})
	if len(p.counters) != 1<<DefaultConfig().HistoryBits {
		t.Errorf("bad config should fall back to default size")
	}
	p = New(Config{HistoryBits: 99})
	if len(p.counters) != 1<<DefaultConfig().HistoryBits {
		t.Errorf("oversized config should fall back to default size")
	}
}
