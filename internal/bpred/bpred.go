// Package bpred implements the gshare branch direction predictor used by the
// leading (and single) thread. The trailing thread never predicts: in SRT and
// BlackJack it consumes leading branch outcomes (BOQ / DTQ program order), so
// only the leading thread exercises this structure — exactly as in the paper.
//
// Branch targets in this ISA are encoded in the instruction, so no BTB is
// modeled: the fetch stage already holds the decoded target. Only direction
// prediction can be wrong.
//
// The global history register is updated speculatively at predict time with
// the predicted direction; each prediction carries a Lookup token holding the
// consulted table index and the pre-prediction history, so resolution trains
// exactly the entry it read and repairs the history on a misprediction.
package bpred

// Config sizes the predictor.
type Config struct {
	// HistoryBits is the global-history length; the pattern table has
	// 1<<HistoryBits two-bit counters.
	HistoryBits int
}

// DefaultConfig returns a 12-bit gshare (4096 counters).
func DefaultConfig() Config { return Config{HistoryBits: 12} }

// Lookup is one prediction's token: the predicted direction plus the state
// needed to train and repair at resolution.
type Lookup struct {
	Taken bool
	idx   uint64
	hist  uint64
}

// Predictor is a gshare direction predictor. The zero value is unusable;
// construct with New.
type Predictor struct {
	counters []uint8 // 2-bit saturating counters, initialized weakly taken
	history  uint64
	mask     uint64

	predicts    uint64
	mispredicts uint64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	if cfg.HistoryBits <= 0 || cfg.HistoryBits > 24 {
		cfg = DefaultConfig()
	}
	n := 1 << cfg.HistoryBits
	p := &Predictor{
		counters: make([]uint8, n),
		mask:     uint64(n - 1),
	}
	for i := range p.counters {
		p.counters[i] = 2 // weakly taken
	}
	return p
}

// Predict returns the prediction token for the branch at pc, speculatively
// shifting the predicted direction into the global history.
func (p *Predictor) Predict(pc int) Lookup {
	p.predicts++
	idx := (uint64(pc) ^ p.history) & p.mask
	l := Lookup{Taken: p.counters[idx] >= 2, idx: idx, hist: p.history}
	p.history = (p.history << 1) & p.mask
	if l.Taken {
		p.history |= 1
	}
	return l
}

// Update trains the entry the prediction consulted with the resolved
// direction. On a misprediction the global history is repaired to the
// pre-prediction value extended with the actual outcome (the pipeline squashes
// every younger — hence wrong-path — prediction, so the repaired history is
// the correct-path history).
func (p *Predictor) Update(l Lookup, taken bool) {
	if taken {
		if p.counters[l.idx] < 3 {
			p.counters[l.idx]++
		}
	} else if p.counters[l.idx] > 0 {
		p.counters[l.idx]--
	}
	if taken != l.Taken {
		p.mispredicts++
		p.history = (l.hist << 1) & p.mask
		if taken {
			p.history |= 1
		}
	}
}

// Stats returns (predictions made, mispredictions recorded).
func (p *Predictor) Stats() (predicts, mispredicts uint64) {
	return p.predicts, p.mispredicts
}

// Clone returns an independent deep copy of the predictor (pattern table,
// global history and statistics).
func (p *Predictor) Clone() *Predictor {
	c := &Predictor{
		counters:    make([]uint8, len(p.counters)),
		history:     p.history,
		mask:        p.mask,
		predicts:    p.predicts,
		mispredicts: p.mispredicts,
	}
	copy(c.counters, p.counters)
	return c
}
