package prog

import (
	"fmt"
	"math"
	"math/rand"

	"blackjack/internal/isa"
)

// Profile parameterizes a synthetic workload. The fields are the knobs that
// determine the behaviours the paper's metrics depend on: instruction mix
// (which backend unit classes are pressured), dependence structure (ILP and
// hence IPC and issue burstiness), memory behaviour (cache miss rate) and
// branch behaviour (misprediction rate).
type Profile struct {
	// Name identifies the workload; the built-in suite uses SPEC2000 names.
	Name string
	// Seed makes generation and execution fully deterministic.
	Seed uint64

	// Instruction mix: fraction of body operations in each category. The
	// remainder (1 - sum) is plain integer ALU work. Fractions must be
	// non-negative and sum to at most 1.
	IntMulFrac float64
	IntDivFrac float64
	FPALUFrac  float64
	FPMulFrac  float64
	LoadFrac   float64
	StoreFrac  float64

	// ChainFrac is the probability that an operation's first source is the
	// most recently written register of its stream, creating serial
	// dependence chains. Higher values lower ILP and IPC.
	ChainFrac float64

	// Streams partitions the register pool into this many independent
	// dependence streams (default 1): operations in different streams never
	// depend on each other, so Streams is the workload's inherent ILP knob.
	// Real programs get their ILP from exactly this kind of independent
	// dataflow (distinct computations, unrolled iterations).
	Streams int

	// RandLoadFrac is the fraction of loads (and stores) that use a
	// pseudo-random address spanning the whole working set rather than the
	// strided stream. Combined with WorkingSetKB this sets the miss rate.
	RandLoadFrac float64
	// PtrChaseFrac is the fraction of loads whose address depends on the
	// most recent load result (pointer chasing): these serialize cache/memory
	// round-trips, the signature behaviour of the lowest-IPC benchmarks.
	PtrChaseFrac float64
	// ChaseSetKB is the footprint of the pointer-chase walk (rounded up to a
	// power of two; defaults to WorkingSetKB). A footprint between the L1 and
	// L2 sizes serializes L2 hits; beyond the L2 it serializes memory trips.
	ChaseSetKB int
	// WorkingSetKB is the data segment size (rounded up to a power of two,
	// min 16KB). Working sets below the 64KB L1 always hit; beyond the 2MB
	// L2, random accesses go to memory.
	WorkingSetKB int
	// Stride is the per-iteration advance of the sequential access stream in
	// bytes.
	Stride int64

	// BranchEvery emits a conditional forward branch every N body operations
	// (0 disables intra-body branches).
	BranchEvery int
	// DataDepBranchFrac is the fraction of those branches whose condition
	// depends on pseudo-random data (hard to predict); the rest are
	// loop-counter based (easy to predict).
	DataDepBranchFrac float64
	// SkipMax bounds the number of operations a taken forward branch skips
	// (1..SkipMax).
	SkipMax int

	// BlockOps is the number of operations per block and Blocks the number
	// of blocks in the loop body.
	BlockOps int
	// Blocks is the number of blocks in the loop body.
	Blocks int
}

// Validate reports structural problems with the profile.
func (p *Profile) Validate() error {
	sum := p.IntMulFrac + p.IntDivFrac + p.FPALUFrac + p.FPMulFrac + p.LoadFrac + p.StoreFrac
	switch {
	case p.Name == "":
		return fmt.Errorf("prog: profile has no name")
	case sum > 1.0+1e-9:
		return fmt.Errorf("prog: %s: mix fractions sum to %.3f > 1", p.Name, sum)
	case p.IntMulFrac < 0 || p.IntDivFrac < 0 || p.FPALUFrac < 0 || p.FPMulFrac < 0 ||
		p.LoadFrac < 0 || p.StoreFrac < 0:
		return fmt.Errorf("prog: %s: negative mix fraction", p.Name)
	case p.ChainFrac < 0 || p.ChainFrac > 1:
		return fmt.Errorf("prog: %s: ChainFrac %.3f out of [0,1]", p.Name, p.ChainFrac)
	case p.RandLoadFrac < 0 || p.RandLoadFrac > 1:
		return fmt.Errorf("prog: %s: RandLoadFrac %.3f out of [0,1]", p.Name, p.RandLoadFrac)
	case p.PtrChaseFrac < 0 || p.PtrChaseFrac > 1:
		return fmt.Errorf("prog: %s: PtrChaseFrac %.3f out of [0,1]", p.Name, p.PtrChaseFrac)
	case p.ChaseSetKB < 0:
		return fmt.Errorf("prog: %s: negative ChaseSetKB", p.Name)
	case p.DataDepBranchFrac < 0 || p.DataDepBranchFrac > 1:
		return fmt.Errorf("prog: %s: DataDepBranchFrac %.3f out of [0,1]", p.Name, p.DataDepBranchFrac)
	case p.BlockOps <= 0 || p.Blocks <= 0:
		return fmt.Errorf("prog: %s: BlockOps/Blocks must be positive", p.Name)
	case p.BranchEvery < 0 || p.SkipMax < 0:
		return fmt.Errorf("prog: %s: negative branch parameters", p.Name)
	case p.Streams < 0 || p.Streams > MaxStreams:
		return fmt.Errorf("prog: %s: Streams %d out of [0,%d]", p.Name, p.Streams, MaxStreams)
	}
	return nil
}

// Register conventions used by generated programs.
const (
	regCounter = isa.Reg(1)  // remaining loop iterations
	regIdx     = isa.Reg(2)  // sequential stream index
	regNoise   = isa.Reg(3)  // xorshift64 state
	regCond    = isa.Reg(4)  // branch condition scratch
	regMask    = isa.Reg(5)  // working-set mask
	regAddr    = isa.Reg(6)  // random address scratch
	regChase   = isa.Reg(7)  // pointer-chase cursor
	regChMask  = isa.Reg(28) // pointer-chase footprint mask
	regSh13    = isa.Reg(24)
	regSh7     = isa.Reg(25)
	regSh17    = isa.Reg(26)
	regShCond  = isa.Reg(27) // shift amount for condition extraction

	intPoolBase = 8 // r8..r23
	fpPoolBase  = 8 // f8..f23
	poolSize    = 16

	// MaxStreams bounds Profile.Streams so every stream owns at least two
	// pool registers.
	MaxStreams = poolSize / 2
)

// generationIterations is the nominal loop trip count; simulations stop at an
// instruction cap long before this is exhausted.
const generationIterations = int64(1) << 40

// nextPow2 rounds v up to a power of two.
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// Generate builds the synthetic program described by the profile.
func Generate(p Profile) (*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(p.Seed) ^ 0x5bd1e995))

	wsBytes := nextPow2(max(p.WorkingSetKB, 16) * 1024)
	b := NewBuilder(p.Name)
	b.Data(wsBytes)

	// Seed the entire data segment with finite doubles in [1,2): usable both
	// as FP values and as varied integer bit patterns (pointer chasing in
	// particular needs varied values everywhere it can land).
	initWords := wsBytes / 8
	words := make([]uint64, initWords)
	for i := range words {
		words[i] = math.Float64bits(1 + rng.Float64())
	}
	b.InitWords(words...)

	g := &generator{p: p, rng: rng, b: b, wsBytes: wsBytes}
	g.preamble()
	b.Label("loop")
	g.body()
	g.postamble()
	b.Halt()
	return b.Build()
}

// generator holds per-generation state.
type generator struct {
	p       Profile
	rng     *rand.Rand
	b       *Builder
	wsBytes int

	// Per-stream dependence state: stream s owns the pool registers whose
	// index is congruent to s modulo the stream count.
	lastIntDest [MaxStreams]isa.Reg // most recent int write per stream
	lastFPDest  [MaxStreams]isa.Reg
	intRR       [MaxStreams]int // per-stream round-robin cursors
	fpRR        [MaxStreams]int

	opCount   int // body operations emitted, for branch pacing
	skipLeft  int // operations until the pending forward-branch label
	skipLabel string
	skipSeq   int
}

func (g *generator) preamble() {
	b := g.b
	b.Li(regCounter, generationIterations)
	b.Li(regIdx, 0)
	b.Li(regNoise, int64(g.p.Seed|1))
	b.Li(regMask, int64(g.wsBytes-1))
	b.Li(regChase, int64(g.p.Seed*2654435761))
	b.Li(regChMask, int64(g.chaseBytes()-1))
	b.Li(regSh13, 13)
	b.Li(regSh7, 7)
	b.Li(regSh17, 17)
	b.Li(regShCond, 21)
	for i := 0; i < poolSize; i++ {
		b.Ld(isa.IntReg(intPoolBase+i), isa.ZeroReg, int64(8*i))
		b.FLd(isa.FPReg(fpPoolBase+i), isa.ZeroReg, int64(8*(poolSize+i)))
	}
	for s := 0; s < g.streams(); s++ {
		g.lastIntDest[s] = isa.IntReg(intPoolBase + s)
		g.lastFPDest[s] = isa.FPReg(fpPoolBase + s)
	}
}

// chaseBytes returns the pointer-chase footprint in bytes (power of two,
// bounded by the working set).
func (g *generator) chaseBytes() int {
	kb := g.p.ChaseSetKB
	if kb <= 0 {
		kb = g.p.WorkingSetKB
	}
	return min(nextPow2(max(kb, 16)*1024), g.wsBytes)
}

// streams returns the effective stream count (Streams 0 means 1).
func (g *generator) streams() int {
	if g.p.Streams <= 0 {
		return 1
	}
	return g.p.Streams
}

// stream returns the dependence stream the current operation belongs to;
// operations rotate through streams so independent work interleaves in
// program order (the shape that gives an out-of-order core its ILP).
func (g *generator) stream() int { return g.opCount % g.streams() }

// streamReg returns the i-th pool register of stream s.
func streamReg(base, s, i, streams int) int { return base + s + streams*i }

func (g *generator) postamble() {
	b := g.b
	// Close any pending forward-branch target before the backedge.
	g.flushSkip()
	b.OpImm(isa.OpAddi, regIdx, regIdx, g.p.Stride)
	b.Addi(regCounter, regCounter, -1)
	b.Branch(isa.OpBne, regCounter, isa.ZeroReg, "loop")
}

// emit registers one body operation against branch pacing and pending-skip
// bookkeeping, then emits it.
func (g *generator) emit(in isa.Inst) {
	g.b.Emit(in)
	if g.skipLeft > 0 {
		g.skipLeft--
		if g.skipLeft == 0 {
			g.b.Label(g.skipLabel)
		}
	}
}

func (g *generator) flushSkip() {
	if g.skipLeft > 0 {
		g.skipLeft = 0
		g.b.Label(g.skipLabel)
	}
}

// intSrc picks an integer source register from the current stream, honoring
// ChainFrac.
func (g *generator) intSrc() isa.Reg {
	s := g.stream()
	if g.rng.Float64() < g.p.ChainFrac {
		return g.lastIntDest[s]
	}
	per := poolSize / g.streams()
	return isa.IntReg(streamReg(intPoolBase, s, g.rng.Intn(per), g.streams()))
}

func (g *generator) fpSrc() isa.Reg {
	s := g.stream()
	if g.rng.Float64() < g.p.ChainFrac {
		return g.lastFPDest[s]
	}
	per := poolSize / g.streams()
	return isa.FPReg(streamReg(fpPoolBase, s, g.rng.Intn(per), g.streams()))
}

func (g *generator) intDest() isa.Reg {
	s := g.stream()
	per := poolSize / g.streams()
	g.intRR[s] = (g.intRR[s] + 1) % per
	r := isa.IntReg(streamReg(intPoolBase, s, g.intRR[s], g.streams()))
	g.lastIntDest[s] = r
	return r
}

func (g *generator) fpDest() isa.Reg {
	s := g.stream()
	per := poolSize / g.streams()
	g.fpRR[s] = (g.fpRR[s] + 1) % per
	r := isa.FPReg(streamReg(fpPoolBase, s, g.fpRR[s], g.streams()))
	g.lastFPDest[s] = r
	return r
}

// body emits Blocks blocks of BlockOps operations each.
func (g *generator) body() {
	for blk := 0; blk < g.p.Blocks; blk++ {
		g.noiseUpdate()
		for op := 0; op < g.p.BlockOps; op++ {
			g.maybeBranch()
			g.emitOne()
			g.opCount++
		}
	}
}

// noiseUpdate advances the xorshift64 state in regNoise.
func (g *generator) noiseUpdate() {
	// The noise update must not sit inside a pending skip region: if it were
	// skipped the noise stream would stall and data-dependent branches would
	// become constant.
	g.flushSkip()
	g.emit(isa.Inst{Op: isa.OpShl, Rd: regCond, Rs1: regNoise, Rs2: regSh13})
	g.emit(isa.Inst{Op: isa.OpXor, Rd: regNoise, Rs1: regNoise, Rs2: regCond})
	g.emit(isa.Inst{Op: isa.OpShr, Rd: regCond, Rs1: regNoise, Rs2: regSh7})
	g.emit(isa.Inst{Op: isa.OpXor, Rd: regNoise, Rs1: regNoise, Rs2: regCond})
	g.emit(isa.Inst{Op: isa.OpShl, Rd: regCond, Rs1: regNoise, Rs2: regSh17})
	g.emit(isa.Inst{Op: isa.OpXor, Rd: regNoise, Rs1: regNoise, Rs2: regCond})
}

// maybeBranch emits a conditional forward skip when one is due.
func (g *generator) maybeBranch() {
	if g.p.BranchEvery == 0 || g.opCount == 0 || g.opCount%g.p.BranchEvery != 0 {
		return
	}
	if g.skipLeft > 0 {
		return // no nested skips
	}
	if g.rng.Float64() < g.p.DataDepBranchFrac {
		// Hard to predict: condition from the high bits of the noise stream.
		g.emit(isa.Inst{Op: isa.OpShr, Rd: regCond, Rs1: regNoise, Rs2: regShCond})
		g.emit(isa.Inst{Op: isa.OpAndi, Rd: regCond, Rs1: regCond, Imm: 1})
	} else {
		// Easy to predict: condition from a loop-counter bit, constant for
		// long stretches of iterations.
		bit := int64(1) << (4 + g.rng.Intn(6))
		g.emit(isa.Inst{Op: isa.OpAndi, Rd: regCond, Rs1: regCounter, Imm: bit})
	}
	skip := 1 + g.rng.Intn(max(g.p.SkipMax, 1))
	g.skipSeq++
	g.skipLabel = fmt.Sprintf("skip%d", g.skipSeq)
	g.skipLeft = skip
	g.b.Branch(isa.OpBeq, regCond, isa.ZeroReg, g.skipLabel)
}

// emitOne draws one operation from the mix and emits it.
func (g *generator) emitOne() {
	p := &g.p
	x := g.rng.Float64()
	switch {
	case x < p.LoadFrac:
		g.emitLoad()
	case x < p.LoadFrac+p.StoreFrac:
		g.emitStore()
	case x < p.LoadFrac+p.StoreFrac+p.FPALUFrac:
		g.emitFPALU()
	case x < p.LoadFrac+p.StoreFrac+p.FPALUFrac+p.FPMulFrac:
		g.emitFPMul()
	case x < p.LoadFrac+p.StoreFrac+p.FPALUFrac+p.FPMulFrac+p.IntMulFrac:
		g.emit(isa.Inst{Op: isa.OpMul, Rd: g.intDest(), Rs1: g.intSrc(), Rs2: g.intSrc()})
	case x < p.LoadFrac+p.StoreFrac+p.FPALUFrac+p.FPMulFrac+p.IntMulFrac+p.IntDivFrac:
		op := isa.OpDiv
		if g.rng.Intn(2) == 0 {
			op = isa.OpRem
		}
		g.emit(isa.Inst{Op: op, Rd: g.intDest(), Rs1: g.intSrc(), Rs2: g.intSrc()})
	default:
		g.emitIntALU()
	}
}

// fpShare of loads/stores: in FP-heavy profiles most memory traffic is FP.
func (g *generator) fpMemShare() float64 {
	fp := g.p.FPALUFrac + g.p.FPMulFrac
	intw := 1 - g.p.LoadFrac - g.p.StoreFrac - fp
	if fp+intw <= 0 {
		return 0
	}
	return fp / (fp + intw)
}

func (g *generator) emitLoad() {
	if g.rng.Float64() < g.p.PtrChaseFrac {
		// Pointer chase: the next address depends on the value just loaded
		// (serializing memory round-trips); mixing in the noise register
		// keeps the walk covering the working set instead of collapsing
		// into a short cached cycle.
		g.emit(isa.Inst{Op: isa.OpAdd, Rd: regAddr, Rs1: regChase, Rs2: regNoise})
		g.emit(isa.Inst{Op: isa.OpAnd, Rd: regAddr, Rs1: regAddr, Rs2: regChMask})
		g.emit(isa.Inst{Op: isa.OpLd, Rd: regChase, Rs1: regAddr})
		return
	}
	fp := g.rng.Float64() < g.fpMemShare()
	var dst isa.Reg
	op := isa.OpLd
	if fp {
		op = isa.OpFLd
		dst = g.fpDest()
	} else {
		dst = g.intDest()
	}
	if g.rng.Float64() < g.p.RandLoadFrac {
		// Random address spanning the working set.
		g.emit(isa.Inst{Op: isa.OpAnd, Rd: regAddr, Rs1: regNoise, Rs2: regMask})
		g.emit(isa.Inst{Op: op, Rd: dst, Rs1: regAddr})
	} else {
		disp := int64(8 * (g.opCount % 512))
		g.emit(isa.Inst{Op: op, Rd: dst, Rs1: regIdx, Imm: disp})
	}
}

func (g *generator) emitStore() {
	fp := g.rng.Float64() < g.fpMemShare()
	var src isa.Reg
	op := isa.OpSt
	if fp {
		op = isa.OpFSt
		src = g.fpSrc()
	} else {
		src = g.intSrc()
	}
	if g.rng.Float64() < g.p.RandLoadFrac {
		g.emit(isa.Inst{Op: isa.OpAnd, Rd: regAddr, Rs1: regNoise, Rs2: regMask})
		g.emit(isa.Inst{Op: op, Rs1: regAddr, Rs2: src})
	} else {
		disp := int64(8 * (g.opCount % 512))
		g.emit(isa.Inst{Op: op, Rs1: regIdx, Rs2: src, Imm: disp})
	}
}

func (g *generator) emitFPALU() {
	r := g.rng.Float64()
	switch {
	case r < 0.05:
		g.emit(isa.Inst{Op: isa.OpCvtIF, Rd: g.fpDest(), Rs1: g.intSrc()})
	case r < 0.10:
		g.emit(isa.Inst{Op: isa.OpCvtFI, Rd: g.intDest(), Rs1: g.fpSrc()})
	case r < 0.20:
		g.emit(isa.Inst{Op: isa.OpFNeg, Rd: g.fpDest(), Rs1: g.fpSrc()})
	case r < 0.60:
		g.emit(isa.Inst{Op: isa.OpFAdd, Rd: g.fpDest(), Rs1: g.fpSrc(), Rs2: g.fpSrc()})
	default:
		g.emit(isa.Inst{Op: isa.OpFSub, Rd: g.fpDest(), Rs1: g.fpSrc(), Rs2: g.fpSrc()})
	}
}

func (g *generator) emitFPMul() {
	if g.rng.Float64() < 0.08 {
		g.emit(isa.Inst{Op: isa.OpFDiv, Rd: g.fpDest(), Rs1: g.fpSrc(), Rs2: g.fpSrc()})
		return
	}
	g.emit(isa.Inst{Op: isa.OpFMul, Rd: g.fpDest(), Rs1: g.fpSrc(), Rs2: g.fpSrc()})
}

var intALUOps = []isa.Op{
	isa.OpAdd, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
	isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpAddi, isa.OpAndi, isa.OpXori,
}

func (g *generator) emitIntALU() {
	op := intALUOps[g.rng.Intn(len(intALUOps))]
	in := isa.Inst{Op: op, Rd: g.intDest(), Rs1: g.intSrc()}
	if in.HasImm() {
		in.Imm = int64(g.rng.Intn(1 << 12))
	} else {
		in.Rs2 = g.intSrc()
		if op == isa.OpShl || op == isa.OpShr {
			// Keep shift amounts small so values do not collapse to zero.
			in.Rs2 = regSh7
		}
	}
	g.emit(in)
}
