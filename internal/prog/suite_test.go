package prog

import (
	"testing"

	"blackjack/internal/isa"
)

func TestSuiteHas16Benchmarks(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 16 {
		t.Fatalf("suite has %d benchmarks, want 16", len(names))
	}
	// Figure 7 order (increasing IPC).
	want := []string{
		"equake", "swim", "art", "mgrid", "applu", "fma3d", "gcc", "facerec",
		"wupwise", "bzip", "apsi", "crafty", "eon", "gzip", "vortex", "sixtrack",
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestAllSuiteProfilesValidateAndGenerate(t *testing.T) {
	for _, name := range BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			p, err := ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			prog, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			m, err := isa.NewMachine(prog)
			if err != nil {
				t.Fatal(err)
			}
			const n = 20000
			if got := m.Run(n); got != n {
				t.Fatalf("%s halted after %d instructions", name, got)
			}
			if m.Stores() == 0 {
				t.Errorf("%s committed no stores in %d instructions", name, n)
			}
		})
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("ProfileByName(nope) = nil error, want error")
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("Benchmark(nope) = nil error, want error")
	}
}

func TestMustBenchmarkPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBenchmark(nope) did not panic")
		}
	}()
	MustBenchmark("nope")
}

// The suite must cover both integer-dominated and FP-dominated workloads so
// the backend-way pressure effects in the paper are reproducible.
func TestSuiteCoversIntAndFP(t *testing.T) {
	var fpHeavy, intHeavy int
	for _, name := range BenchmarkNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.FPALUFrac+p.FPMulFrac > 0.3 {
			fpHeavy++
		}
		if p.FPALUFrac+p.FPMulFrac == 0 {
			intHeavy++
		}
	}
	if fpHeavy < 5 {
		t.Errorf("only %d FP-heavy profiles, want >=5", fpHeavy)
	}
	if intHeavy < 4 {
		t.Errorf("only %d pure-integer profiles, want >=4", intHeavy)
	}
}
