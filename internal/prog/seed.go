package prog

import "blackjack/internal/isa"

// DeriveSeed maps a profile's base seed and a study offset to the generator
// seed of that (profile, offset) identity. Offset 0 is the identity (the
// profile's published seed, so offset-0 studies reproduce the default suite
// exactly); any other offset is mixed through a splitmix64 finalizer so that
// distinct (base, offset) pairs land on unrelated streams.
//
// Deriving the seed from the run's identity — rather than advancing shared
// mutable state — is what makes seed studies meaningful under the parallel
// harness: a run's instruction stream depends only on (benchmark, offset),
// never on which worker executed it or in what order. It also removes the
// aliasing of naive base+offset arithmetic, where the suite's consecutive
// base seeds (equake=101, swim=102, ...) made one benchmark's offset stream
// collide with a neighbour's baseline.
func DeriveSeed(base, offset uint64) uint64 {
	if offset == 0 {
		return base
	}
	z := base + offset*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SeededProfile returns the named built-in profile reseeded for the given
// offset via DeriveSeed.
func SeededProfile(name string, offset uint64) (Profile, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return Profile{}, err
	}
	p.Seed = DeriveSeed(p.Seed, offset)
	return p, nil
}

// SeededBenchmark generates the named built-in workload reseeded for the
// given offset.
func SeededBenchmark(name string, offset uint64) (*isa.Program, error) {
	p, err := SeededProfile(name, offset)
	if err != nil {
		return nil, err
	}
	return Generate(p)
}
