package prog

import (
	"fmt"
	"sort"

	"blackjack/internal/isa"
)

// The built-in workload suite mirrors the 16 SPEC2000 benchmarks the paper
// evaluates (Section 5). Each profile is tuned to reproduce the *character*
// the paper's results depend on, not the benchmark's semantics:
//
//   - the relative single-thread IPC ordering of Figure 7 (equake lowest,
//     sixtrack highest);
//   - FP codes pressure the 2-way FP ALU / FP multiplier backends (which is
//     what depresses SRT's accidental backend diversity, Section 6.1);
//   - low-IPC codes (equake) let trailing fetch outpace issue, producing
//     trailing-trailing interference;
//   - high-IPC int codes (gzip, crafty, bzip) issue from both contexts in the
//     same cycle more often (Figure 6), producing leading-trailing
//     interference (Figure 5).
//
// EXPERIMENTS.md records paper-vs-measured values per benchmark.
var suite = []Profile{
	{
		// equake: FP, memory-bound, lowest IPC; paper notes elevated
		// trailing-trailing interference (1.5%) from its low IPC and FP-unit
		// pressure.
		Name: "equake", Seed: 101,
		FPALUFrac: 0.22, FPMulFrac: 0.14, LoadFrac: 0.26, StoreFrac: 0.07,
		ChainFrac: 0.72, Streams: 1, RandLoadFrac: 0.45, PtrChaseFrac: 0.08, ChaseSetKB: 128, WorkingSetKB: 8192, Stride: 264,
		BranchEvery: 14, DataDepBranchFrac: 0.25, SkipMax: 2,
		BlockOps: 24, Blocks: 8,
	},
	{
		// swim: FP streaming stencil; large strided working set.
		Name: "swim", Seed: 102,
		FPALUFrac: 0.26, FPMulFrac: 0.16, LoadFrac: 0.25, StoreFrac: 0.09,
		ChainFrac: 0.62, Streams: 2, RandLoadFrac: 0.10, WorkingSetKB: 8192, Stride: 2048,
		BranchEvery: 22, DataDepBranchFrac: 0.05, SkipMax: 2,
		BlockOps: 28, Blocks: 8,
	},
	{
		// art: FP neural-net, notoriously cache-hostile.
		Name: "art", Seed: 103,
		FPALUFrac: 0.24, FPMulFrac: 0.14, LoadFrac: 0.28, StoreFrac: 0.05,
		ChainFrac: 0.55, Streams: 2, RandLoadFrac: 0.60, PtrChaseFrac: 0.03, ChaseSetKB: 128, WorkingSetKB: 4096, Stride: 136,
		BranchEvery: 16, DataDepBranchFrac: 0.15, SkipMax: 2,
		BlockOps: 24, Blocks: 8,
	},
	{
		// mgrid: FP multigrid stencil, strided.
		Name: "mgrid", Seed: 104,
		FPALUFrac: 0.30, FPMulFrac: 0.18, LoadFrac: 0.24, StoreFrac: 0.06,
		ChainFrac: 0.52, Streams: 3, RandLoadFrac: 0.08, WorkingSetKB: 4096, Stride: 776,
		BranchEvery: 26, DataDepBranchFrac: 0.03, SkipMax: 2,
		BlockOps: 30, Blocks: 8,
	},
	{
		// applu: FP PDE solver.
		Name: "applu", Seed: 105,
		FPALUFrac: 0.28, FPMulFrac: 0.18, IntDivFrac: 0.002, LoadFrac: 0.23, StoreFrac: 0.08,
		ChainFrac: 0.50, Streams: 3, RandLoadFrac: 0.10, WorkingSetKB: 2048, Stride: 520,
		BranchEvery: 24, DataDepBranchFrac: 0.04, SkipMax: 2,
		BlockOps: 28, Blocks: 8,
	},
	{
		// fma3d: FP crash simulation, mixed control.
		Name: "fma3d", Seed: 106,
		FPALUFrac: 0.26, FPMulFrac: 0.16, LoadFrac: 0.22, StoreFrac: 0.08,
		ChainFrac: 0.46, Streams: 3, RandLoadFrac: 0.18, WorkingSetKB: 1024, Stride: 264,
		BranchEvery: 18, DataDepBranchFrac: 0.10, SkipMax: 2,
		BlockOps: 26, Blocks: 8,
	},
	{
		// gcc: INT, branchy with moderate working set.
		Name: "gcc", Seed: 107,
		IntMulFrac: 0.01, LoadFrac: 0.25, StoreFrac: 0.10,
		ChainFrac: 0.44, Streams: 4, RandLoadFrac: 0.30, WorkingSetKB: 512, Stride: 136,
		BranchEvery: 6, DataDepBranchFrac: 0.30, SkipMax: 3,
		BlockOps: 24, Blocks: 8,
	},
	{
		// facerec: FP image processing.
		Name: "facerec", Seed: 108,
		FPALUFrac: 0.24, FPMulFrac: 0.18, LoadFrac: 0.22, StoreFrac: 0.06,
		ChainFrac: 0.42, Streams: 4, RandLoadFrac: 0.12, WorkingSetKB: 512, Stride: 264,
		BranchEvery: 16, DataDepBranchFrac: 0.08, SkipMax: 2,
		BlockOps: 26, Blocks: 8,
	},
	{
		// wupwise: FP quantum chromodynamics, multiplier heavy.
		Name: "wupwise", Seed: 109,
		FPALUFrac: 0.20, FPMulFrac: 0.24, LoadFrac: 0.20, StoreFrac: 0.07,
		ChainFrac: 0.30, Streams: 6, RandLoadFrac: 0.04, WorkingSetKB: 128, Stride: 264,
		BranchEvery: 20, DataDepBranchFrac: 0.05, SkipMax: 2,
		BlockOps: 28, Blocks: 8,
	},
	{
		// bzip: INT compressor; paper: lowest BlackJack coverage (94%) with
		// high leading-trailing interference (5.6%).
		Name: "bzip", Seed: 110,
		IntMulFrac: 0.01, LoadFrac: 0.24, StoreFrac: 0.09,
		ChainFrac: 0.26, Streams: 6, RandLoadFrac: 0.15, WorkingSetKB: 128, Stride: 136,
		BranchEvery: 6, DataDepBranchFrac: 0.35, SkipMax: 3,
		BlockOps: 24, Blocks: 8,
	},
	{
		// apsi: FP meteorology.
		Name: "apsi", Seed: 111,
		FPALUFrac: 0.24, FPMulFrac: 0.16, IntMulFrac: 0.01, LoadFrac: 0.20, StoreFrac: 0.08,
		ChainFrac: 0.22, Streams: 6, RandLoadFrac: 0.05, WorkingSetKB: 64, Stride: 136,
		BranchEvery: 14, DataDepBranchFrac: 0.08, SkipMax: 2,
		BlockOps: 26, Blocks: 8,
	},
	{
		// crafty: INT chess, high ILP, branchy.
		Name: "crafty", Seed: 112,
		IntMulFrac: 0.02, LoadFrac: 0.22, StoreFrac: 0.06,
		ChainFrac: 0.18, Streams: 7, RandLoadFrac: 0.08, WorkingSetKB: 64, Stride: 136,
		BranchEvery: 6, DataDepBranchFrac: 0.22, SkipMax: 3,
		BlockOps: 24, Blocks: 8,
	},
	{
		// eon: INT/FP mixed ray tracer.
		Name: "eon", Seed: 113,
		FPALUFrac: 0.10, FPMulFrac: 0.08, IntMulFrac: 0.02, LoadFrac: 0.22, StoreFrac: 0.08,
		ChainFrac: 0.24, Streams: 6, RandLoadFrac: 0.05, WorkingSetKB: 32, Stride: 136,
		BranchEvery: 10, DataDepBranchFrac: 0.12, SkipMax: 2,
		BlockOps: 24, Blocks: 8,
	},
	{
		// gzip: INT compressor; paper: lowest single-context issue fraction
		// (54%, Figure 6) and highest leading-trailing interference (7.0%).
		Name: "gzip", Seed: 114,
		IntMulFrac: 0.01, LoadFrac: 0.22, StoreFrac: 0.08,
		ChainFrac: 0.16, Streams: 7, RandLoadFrac: 0.06, WorkingSetKB: 32, Stride: 136,
		BranchEvery: 7, DataDepBranchFrac: 0.25, SkipMax: 3,
		BlockOps: 24, Blocks: 8,
	},
	{
		// vortex: INT database, dominated by basic integer ALU work; paper:
		// best coverage for both SRT (41%) and BlackJack (99%) because the
		// 4-way integer ALU backend gives diversity the best odds.
		Name: "vortex", Seed: 115,
		IntMulFrac: 0.005, LoadFrac: 0.20, StoreFrac: 0.08,
		ChainFrac: 0.10, Streams: 8, RandLoadFrac: 0.03, WorkingSetKB: 64, Stride: 136,
		BranchEvery: 14, DataDepBranchFrac: 0.04, SkipMax: 2,
		BlockOps: 26, Blocks: 8,
	},
	{
		// sixtrack: FP particle tracking, highest IPC; paper: SRT's worst
		// coverage (25%) because its FP work concentrates on 2-way backends.
		Name: "sixtrack", Seed: 116,
		FPALUFrac: 0.28, FPMulFrac: 0.20, LoadFrac: 0.18, StoreFrac: 0.06,
		ChainFrac: 0.10, Streams: 8, RandLoadFrac: 0.02, WorkingSetKB: 16, Stride: 136,
		BranchEvery: 22, DataDepBranchFrac: 0.03, SkipMax: 2,
		BlockOps: 30, Blocks: 8,
	},
}

// BenchmarkNames returns the names of the built-in workload suite in the
// paper's Figure 7 order (increasing IPC).
func BenchmarkNames() []string {
	names := make([]string, len(suite))
	for i, p := range suite {
		names[i] = p.Name
	}
	return names
}

// ProfileByName returns a copy of the named built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range suite {
		if p.Name == name {
			return p, nil
		}
	}
	known := BenchmarkNames()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("prog: unknown benchmark %q (known: %v)", name, known)
}

// Benchmark generates the named built-in workload.
func Benchmark(name string) (*isa.Program, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return Generate(p)
}

// MustBenchmark is Benchmark for the built-in suite, panicking on unknown
// names; intended for tests and examples where the name is a literal.
func MustBenchmark(name string) *isa.Program {
	pr, err := Benchmark(name)
	if err != nil {
		panic(err)
	}
	return pr
}
