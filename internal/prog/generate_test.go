package prog

import (
	"testing"

	"blackjack/internal/isa"
)

func testProfile() Profile {
	return Profile{
		Name: "test", Seed: 42,
		FPALUFrac: 0.1, FPMulFrac: 0.05, IntMulFrac: 0.02, IntDivFrac: 0.01,
		LoadFrac: 0.2, StoreFrac: 0.08,
		ChainFrac: 0.3, RandLoadFrac: 0.2, WorkingSetKB: 64, Stride: 136,
		BranchEvery: 8, DataDepBranchFrac: 0.3, SkipMax: 3,
		BlockOps: 20, Blocks: 4,
	}
}

func TestGenerateValidates(t *testing.T) {
	p, err := Generate(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Code) < 50 {
		t.Errorf("generated only %d instructions", len(p.Code))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Code) != len(b.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Code[i], b.Code[i])
		}
	}
}

func TestGenerateSeedChangesProgram(t *testing.T) {
	p1 := testProfile()
	p2 := testProfile()
	p2.Seed = 43
	a, err := Generate(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Code) == len(b.Code)
	if same {
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramRunsWithoutHalting(t *testing.T) {
	p, err := Generate(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	m, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	if got := m.Run(n); got != n {
		t.Fatalf("retired %d, want %d (halted=%v at pc=%d)", got, n, m.Halted(), m.PC())
	}
	if m.Stores() == 0 {
		t.Error("no stores in 50k instructions; store stream unusable for detection")
	}
}

func TestGeneratedMixRoughlyMatchesProfile(t *testing.T) {
	pr := testProfile()
	pr.BlockOps = 200
	pr.Blocks = 10
	p, err := Generate(pr)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, fpalu, fpmul, imul, idiv, total int
	for _, in := range p.Code {
		total++
		switch {
		case in.IsLoad():
			loads++
		case in.IsStore():
			stores++
		}
		switch in.Class() {
		case isa.UnitFPALU:
			fpalu++
		case isa.UnitFPMul:
			fpmul++
		case isa.UnitIntMul:
			imul++
		case isa.UnitIntDiv:
			idiv++
		}
	}
	frac := func(n int) float64 { return float64(n) / float64(total) }
	// Overhead instructions (noise updates, address computation, branch
	// condition setup) dilute the nominal mix; check generous windows.
	checks := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		{"loads", frac(loads), 0.10, 0.30},
		{"stores", frac(stores), 0.03, 0.15},
		{"fpalu", frac(fpalu), 0.04, 0.18},
		{"fpmul", frac(fpmul), 0.01, 0.12},
		{"intmul", frac(imul), 0.003, 0.06},
		{"intdiv", frac(idiv), 0.001, 0.04},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			t.Errorf("%s fraction = %.4f, want in [%.3f, %.3f]", c.name, c.got, c.lo, c.hi)
		}
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	tests := []struct {
		name string
		edit func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"mix over 1", func(p *Profile) { p.LoadFrac = 0.9; p.FPALUFrac = 0.9 }},
		{"negative fraction", func(p *Profile) { p.StoreFrac = -0.1 }},
		{"chain out of range", func(p *Profile) { p.ChainFrac = 1.5 }},
		{"randload out of range", func(p *Profile) { p.RandLoadFrac = -1 }},
		{"datadep out of range", func(p *Profile) { p.DataDepBranchFrac = 2 }},
		{"zero block ops", func(p *Profile) { p.BlockOps = 0 }},
		{"negative branch every", func(p *Profile) { p.BranchEvery = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testProfile()
			tt.edit(&p)
			if _, err := Generate(p); err == nil {
				t.Error("Generate() accepted invalid profile")
			}
		})
	}
}

func TestDataDependentBranchesActuallyVary(t *testing.T) {
	// A profile with only data-dependent branches must produce branches that
	// are sometimes taken and sometimes not within a modest window;
	// otherwise the "hard to predict" knob is broken.
	pr := testProfile()
	pr.DataDepBranchFrac = 1.0
	pr.BranchEvery = 4
	p, err := Generate(pr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	taken, notTaken := 0, 0
	for i := 0; i < 30000 && !m.Halted(); i++ {
		pc := m.PC()
		in := p.Code[pc]
		m.Step()
		if in.IsCondBranch() && in.Op == isa.OpBeq && in.Imm > int64(pc)+1 {
			if m.PC() != pc+1 {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken == 0 || notTaken == 0 {
		t.Errorf("forward data-dependent branches: taken=%d notTaken=%d, want both nonzero", taken, notTaken)
	}
}

// Streams must partition the dependence structure: every pool-register
// destination of a stream-s operation lies in stream s's congruence class,
// and non-chain sources stay within the same class. We verify the weaker,
// directly observable property that pool destinations are spread over all
// stream classes (no class starves).
func TestStreamsSpreadDestinations(t *testing.T) {
	pr := testProfile()
	pr.Streams = 4
	pr.BlockOps = 120
	p, err := Generate(pr)
	if err != nil {
		t.Fatal(err)
	}
	classCounts := make([]int, pr.Streams)
	for _, in := range p.Code {
		if !in.WritesRd() {
			continue
		}
		r := int(in.Rd)
		if in.Rd.IsFP() {
			r = int(in.Rd) - isa.NumIntRegs
		}
		if r >= intPoolBase && r < intPoolBase+poolSize {
			classCounts[(r-intPoolBase)%pr.Streams]++
		}
	}
	for s, n := range classCounts {
		if n == 0 {
			t.Errorf("stream %d received no destinations", s)
		}
	}
}

// Pointer chasing emits load-to-load dependent sequences; the generated
// program must contain chase loads through regChase.
func TestPtrChaseEmitsDependentLoads(t *testing.T) {
	pr := testProfile()
	pr.PtrChaseFrac = 0.5
	pr.ChaseSetKB = 64
	p, err := Generate(pr)
	if err != nil {
		t.Fatal(err)
	}
	chases := 0
	for _, in := range p.Code {
		if in.Op == isa.OpLd && in.Rd == regChase {
			chases++
		}
	}
	if chases == 0 {
		t.Fatal("no chase loads generated")
	}
	// And the program still runs.
	m, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Run(20000); got != 20000 {
		t.Errorf("halted after %d instructions", got)
	}
}

// ChaseSetKB must be bounded by the working set and default to it.
func TestChaseBytesBounds(t *testing.T) {
	g := &generator{p: Profile{WorkingSetKB: 64, ChaseSetKB: 0}, wsBytes: 64 * 1024}
	if got := g.chaseBytes(); got != 64*1024 {
		t.Errorf("default chase set = %d, want ws", got)
	}
	g = &generator{p: Profile{WorkingSetKB: 64, ChaseSetKB: 1024}, wsBytes: 64 * 1024}
	if got := g.chaseBytes(); got != 64*1024 {
		t.Errorf("chase set = %d, want clamped to ws", got)
	}
	g = &generator{p: Profile{WorkingSetKB: 1024, ChaseSetKB: 128}, wsBytes: 1024 * 1024}
	if got := g.chaseBytes(); got != 128*1024 {
		t.Errorf("chase set = %d, want 128KB", got)
	}
}
