package prog

import (
	"fmt"
	"math/rand"

	"blackjack/internal/isa"
)

// This file extends the workload generator with adversarial program shapes
// for the differential verification harness (internal/diffcheck). Where the
// profile generator synthesizes SPEC-like steady-state behaviour, the
// adversarial generator deliberately concentrates the patterns that stress
// the pipeline's correctness machinery:
//
//   - tight dependence chains (serial wakeup, back-to-back bypass timing);
//   - branch-dense regions (squash/rename-rollback, DTQ SquashYounger,
//     BOQ pairing);
//   - store/load aliasing storms (LSQ forwarding, store-buffer ordering,
//     same-address release ordering);
//   - packet-boundary edge cases (fetch groups of width-1/width/width+1 and
//     taken-branch-terminated groups, which shape DTQ packets and
//     safe-shuffle inputs);
//   - unpipelined long-latency bursts (way occupancy, gang wakeup);
//   - bounded loops and uniform random "soup".
//
// Programs are always structurally valid (Validate passes), end in OpHalt,
// and are fully deterministic in the seed.

// advIntRegs is the integer register pool adversarial programs compute in;
// the remaining integer registers serve as loop counters and scratch.
const (
	advIntPool  = 12 // r1..r12
	advFPPool   = 12 // f0..f11
	advCounter  = isa.Reg(20)
	advAddr     = isa.Reg(21)
	advMaxInsts = 4096
)

// AdversarialProgram builds a randomized-but-valid program from the given
// seed. The result is bounded to a few hundred instructions, ends in OpHalt,
// and has every branch target inside the program, so it is safe to run on
// both the golden model and the pipeline under any instruction budget.
func AdversarialProgram(seed uint64) (*isa.Program, error) {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x243f6a8885a308d3))
	b := NewBuilder(fmt.Sprintf("adv-%d", seed))

	// Small data segment: 1KB or 2KB keeps address clamping busy (lots of
	// aliasing) and corpus reproducers compact.
	dataSize := 1024 << rng.Intn(2)
	b.Data(dataSize)
	initWords := 16 + rng.Intn(48)
	words := make([]uint64, initWords)
	for i := range words {
		words[i] = rng.Uint64()
	}
	b.InitWords(words...)

	g := &advGen{rng: rng, b: b}
	g.preamble()
	segments := 3 + rng.Intn(6)
	for i := 0; i < segments && b.Len() < advMaxInsts-64; i++ {
		g.segment()
	}
	b.Halt()
	return b.Build()
}

type advGen struct {
	rng    *rand.Rand
	b      *Builder
	labels int
}

func (g *advGen) label() string {
	g.labels++
	return fmt.Sprintf("adv%d", g.labels)
}

func (g *advGen) intReg() isa.Reg  { return isa.IntReg(1 + g.rng.Intn(advIntPool)) }
func (g *advGen) fpReg() isa.Reg   { return isa.FPReg(g.rng.Intn(advFPPool)) }
func (g *advGen) imm16() int64     { return int64(int16(g.rng.Uint64())) }
func (g *advGen) smallDisp() int64 { return int64(8 * g.rng.Intn(16)) }

// preamble loads varied values into the register pools so downstream
// arithmetic, addresses and branch conditions are data-dependent from the
// first instruction.
func (g *advGen) preamble() {
	for i := 1; i <= advIntPool; i++ {
		g.b.Ld(isa.IntReg(i), isa.ZeroReg, int64(8*i))
	}
	for i := 0; i < advFPPool; i++ {
		g.b.FLd(isa.FPReg(i), isa.ZeroReg, int64(8*(advIntPool+i)))
	}
	g.b.Li(advAddr, int64(g.rng.Intn(1024)))
}

// segment emits one adversarial shape, possibly wrapped in a bounded loop.
func (g *advGen) segment() {
	shape := g.rng.Intn(7)
	if g.rng.Intn(4) == 0 {
		g.boundedLoop(func() { g.emitShape(shape) })
		return
	}
	g.emitShape(shape)
}

func (g *advGen) emitShape(shape int) {
	switch shape {
	case 0:
		g.tightChain(6 + g.rng.Intn(20))
	case 1:
		g.branchDense(3 + g.rng.Intn(6))
	case 2:
		g.aliasStorm(6 + g.rng.Intn(14))
	case 3:
		g.packetEdge()
	case 4:
		g.fpStorm(5 + g.rng.Intn(12))
	case 5:
		g.longLatencyBurst(3 + g.rng.Intn(5))
	case 6:
		g.soup(8 + g.rng.Intn(24))
	}
}

// boundedLoop wraps body in a 2..5 iteration counted loop.
func (g *advGen) boundedLoop(body func()) {
	iters := 2 + g.rng.Intn(4)
	top := g.label()
	g.b.Li(advCounter, int64(iters))
	g.b.Label(top)
	body()
	g.b.Addi(advCounter, advCounter, -1)
	g.b.Branch(isa.OpBne, advCounter, isa.ZeroReg, top)
}

// tightChain emits a serial dependence chain: every op reads the previous
// op's destination (the minimum-ILP shape; issue-order and wakeup stress).
func (g *advGen) tightChain(n int) {
	r := g.intReg()
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpOr, isa.OpMul, isa.OpSlt, isa.OpAddi, isa.OpXori}
	for i := 0; i < n; i++ {
		op := ops[g.rng.Intn(len(ops))]
		in := isa.Inst{Op: op, Rd: r, Rs1: r}
		if in.HasImm() {
			in.Imm = g.imm16()
		} else {
			in.Rs2 = g.intReg()
		}
		g.b.Emit(in)
	}
}

// branchDense emits back-to-back data-dependent forward branches, each
// skipping 1..3 operations — heavy misprediction, squash and rename-rollback
// traffic, and (in BlackJack) DTQ SquashYounger churn.
func (g *advGen) branchDense(n int) {
	branchOps := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge}
	for i := 0; i < n; i++ {
		op := branchOps[g.rng.Intn(len(branchOps))]
		skip := g.label()
		g.b.Branch(op, g.intReg(), g.intReg(), skip)
		for k := 1 + g.rng.Intn(3); k > 0; k-- {
			g.soupOne()
		}
		g.b.Label(skip)
	}
}

// aliasStorm interleaves stores and loads over a handful of fixed addresses,
// mixing integer and FP accesses to the same word: store-to-load forwarding,
// LSQ ordering and store-buffer same-address release ordering.
func (g *advGen) aliasStorm(n int) {
	nAddr := 1 + g.rng.Intn(3)
	disps := make([]int64, nAddr)
	for i := range disps {
		disps[i] = g.smallDisp()
	}
	for i := 0; i < n; i++ {
		d := disps[g.rng.Intn(nAddr)]
		base := isa.ZeroReg
		if g.rng.Intn(3) == 0 {
			base = advAddr // data-dependent base, clamped at execution
		}
		switch g.rng.Intn(5) {
		case 0, 1:
			g.b.St(base, g.intReg(), d)
		case 2:
			g.b.FSt(base, g.fpReg(), d)
		case 3:
			g.b.Ld(g.intReg(), base, d)
		case 4:
			g.b.FLd(g.fpReg(), base, d)
		}
	}
}

// packetEdge emits independent same-class runs sized around the fetch width
// (3, 4 and 5 for the Table 1 machine) separated by unconditional jumps, so
// fetch groups — and hence DTQ packets — end at taken branches and straddle
// alignment boundaries.
func (g *advGen) packetEdge() {
	for _, runLen := range []int{3, 4, 5} {
		if g.rng.Intn(2) == 0 {
			// Independent int ALU ops with distinct destinations.
			for i := 0; i < runLen; i++ {
				g.b.Op3(isa.OpAdd, isa.IntReg(1+i), g.intReg(), g.intReg())
			}
		} else {
			// Independent loads: fill the two memory ways past capacity.
			for i := 0; i < runLen; i++ {
				g.b.Ld(isa.IntReg(1+i), isa.ZeroReg, g.smallDisp())
			}
		}
		next := g.label()
		g.b.Jmp(next)
		g.b.Label(next)
	}
}

// fpStorm emits FP work, including the unpipelined FP divide that shares the
// FP multiplier ways.
func (g *advGen) fpStorm(n int) {
	ops := []isa.Op{isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFNeg, isa.OpFDiv, isa.OpCvtIF, isa.OpCvtFI}
	for i := 0; i < n; i++ {
		op := ops[g.rng.Intn(len(ops))]
		in := isa.Inst{Op: op}
		switch op {
		case isa.OpCvtIF:
			in.Rd, in.Rs1 = g.fpReg(), g.intReg()
		case isa.OpCvtFI:
			in.Rd, in.Rs1 = g.intReg(), g.fpReg()
		case isa.OpFNeg:
			in.Rd, in.Rs1 = g.fpReg(), g.fpReg()
		default:
			in.Rd, in.Rs1, in.Rs2 = g.fpReg(), g.fpReg(), g.fpReg()
		}
		g.b.Emit(in)
	}
}

// longLatencyBurst emits back-to-back unpipelined divides/remainders: the
// intDiv ways stay occupied for their full 20-cycle latency, backing up the
// issue queue and (in BlackJack) delaying whole trailing packets.
func (g *advGen) longLatencyBurst(n int) {
	for i := 0; i < n; i++ {
		op := isa.OpDiv
		if g.rng.Intn(2) == 0 {
			op = isa.OpRem
		}
		g.b.Op3(op, g.intReg(), g.intReg(), g.intReg())
	}
}

// soup emits uniformly random valid instructions.
func (g *advGen) soup(n int) {
	for i := 0; i < n; i++ {
		g.soupOne()
	}
}

var advSoupOps = []isa.Op{
	isa.OpNop, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
	isa.OpShl, isa.OpShr, isa.OpSlt, isa.OpAddi, isa.OpAndi, isa.OpOri,
	isa.OpXori, isa.OpSlti, isa.OpLui, isa.OpMul, isa.OpDiv, isa.OpRem,
	isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFNeg, isa.OpCvtIF, isa.OpCvtFI,
	isa.OpLd, isa.OpSt, isa.OpFLd, isa.OpFSt,
}

func (g *advGen) soupOne() {
	op := advSoupOps[g.rng.Intn(len(advSoupOps))]
	in := isa.Inst{Op: op}
	switch {
	case op == isa.OpNop:
	case in.IsLoad():
		in.Rs1 = g.intReg()
		in.Imm = g.smallDisp()
		if op == isa.OpFLd {
			in.Rd = g.fpReg()
		} else {
			in.Rd = g.intReg()
		}
	case in.IsStore():
		in.Rs1, in.Imm = g.intReg(), g.smallDisp()
		if op == isa.OpFSt {
			in.Rs2 = g.fpReg()
		} else {
			in.Rs2 = g.intReg()
		}
	case op == isa.OpCvtIF:
		in.Rd, in.Rs1 = g.fpReg(), g.intReg()
	case op == isa.OpCvtFI:
		in.Rd, in.Rs1 = g.intReg(), g.fpReg()
	case op == isa.OpFAdd || op == isa.OpFSub || op == isa.OpFMul || op == isa.OpFNeg:
		in.Rd, in.Rs1, in.Rs2 = g.fpReg(), g.fpReg(), g.fpReg()
	case in.HasImm():
		in.Rd, in.Rs1, in.Imm = g.intReg(), g.intReg(), g.imm16()
	default:
		in.Rd, in.Rs1, in.Rs2 = g.intReg(), g.intReg(), g.intReg()
	}
	g.b.Emit(in)
}

// StressShape selects the dominant behaviour of a StressProgram.
type StressShape int

// Stress shapes, one per pipeline structure the fault-coverage matrix
// (internal/diffcheck) needs to exercise.
const (
	StressIntALU StressShape = iota
	StressIntMul
	StressIntDiv
	StressFPALU
	StressFPMul
	StressMem
	StressBranch
	StressMixed
)

// StressProgram builds a program dominated by one shape, wrapped in a
// counted loop so its dynamic instruction stream keeps the targeted
// structure busy for the whole fault-injection budget.
func StressProgram(seed uint64, shape StressShape) (*isa.Program, error) {
	rng := rand.New(rand.NewSource(int64(seed ^ 0xa4093822299f31d0)))
	b := NewBuilder(fmt.Sprintf("stress-%d-%d", shape, seed))
	b.Data(1024)
	words := make([]uint64, 32)
	for i := range words {
		words[i] = rng.Uint64()
	}
	b.InitWords(words...)
	g := &advGen{rng: rng, b: b}
	g.preamble()

	b.Li(advCounter, 64)
	b.Label("top")
	for i := 0; i < 60; i++ {
		switch shape {
		case StressIntALU:
			g.tightChain(2)
		case StressIntMul:
			g.b.Op3(isa.OpMul, g.intReg(), g.intReg(), g.intReg())
		case StressIntDiv:
			g.longLatencyBurst(1)
		case StressFPALU:
			in := isa.Inst{Op: isa.OpFAdd, Rd: g.fpReg(), Rs1: g.fpReg(), Rs2: g.fpReg()}
			if g.rng.Intn(3) == 0 {
				in.Op = isa.OpFSub
			}
			g.b.Emit(in)
		case StressFPMul:
			op := isa.OpFMul
			if g.rng.Intn(6) == 0 {
				op = isa.OpFDiv
			}
			g.b.Op3(op, g.fpReg(), g.fpReg(), g.fpReg())
		case StressMem:
			g.aliasStorm(2)
		case StressBranch:
			g.branchDense(1)
		case StressMixed:
			g.soupOne()
		}
	}
	// Fold loop results into memory so a corrupted value is architecturally
	// visible (silent corruption must be observable in the store stream).
	g.b.St(isa.ZeroReg, g.intReg(), 512)
	g.b.FSt(isa.ZeroReg, g.fpReg(), 520)
	b.Addi(advCounter, advCounter, -1)
	b.Branch(isa.OpBne, advCounter, isa.ZeroReg, "top")
	b.Halt()
	return b.Build()
}

// RandomProfile draws a random-but-valid workload profile: the profile
// generator's knobs (mix, chains, streams, branches, working set) sampled
// across their whole domain. Together with AdversarialProgram this gives the
// fuzzing harness both "realistic" and "hostile" program distributions.
func RandomProfile(name string, seed uint64) Profile {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x13198a2e03707344))
	// Mix fractions: random point in the simplex, scaled below 1.
	var f [6]float64
	sum := 0.0
	for i := range f {
		f[i] = rng.Float64()
		sum += f[i]
	}
	scale := rng.Float64() / sum // leaves (1-scale) for plain int ALU work
	for i := range f {
		f[i] *= scale
	}
	p := Profile{
		Name:              name,
		Seed:              seed,
		IntMulFrac:        f[0],
		IntDivFrac:        f[1] * 0.3, // full-weight divides would dominate runtime
		FPALUFrac:         f[2],
		FPMulFrac:         f[3],
		LoadFrac:          f[4],
		StoreFrac:         f[5],
		ChainFrac:         rng.Float64(),
		Streams:           1 + rng.Intn(MaxStreams),
		RandLoadFrac:      rng.Float64(),
		PtrChaseFrac:      rng.Float64() * 0.5,
		WorkingSetKB:      16 << rng.Intn(3),
		Stride:            int64(8 * (1 + rng.Intn(16))),
		BranchEvery:       rng.Intn(5),
		DataDepBranchFrac: rng.Float64(),
		SkipMax:           1 + rng.Intn(4),
		BlockOps:          8 + rng.Intn(56),
		Blocks:            1 + rng.Intn(4),
	}
	return p
}
