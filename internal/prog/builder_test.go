package prog

import (
	"strings"
	"testing"

	"blackjack/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.Data(64)
	b.Li(1, 3)
	b.Label("loop")
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[2].Imm != 1 {
		t.Errorf("branch target = %d, want 1", p.Code[2].Imm)
	}
	m, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if !m.Halted() {
		t.Error("program did not halt")
	}
	if got := m.Reg(isa.IntReg(1)); got != 0 {
		t.Errorf("r1 = %d, want 0", got)
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	b := NewBuilder("fwd")
	b.Data(8)
	b.Li(1, 1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "end") // taken: skip the poison write
	b.Li(2, 99)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if got := m.Reg(isa.IntReg(2)); got != 0 {
		t.Errorf("r2 = %d, want 0 (skipped)", got)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build() err = %v, want undefined-label error", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x").Label("x").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Build() err = %v, want duplicate-label error", err)
	}
}

func TestBuilderMemoryHelpers(t *testing.T) {
	b := NewBuilder("mem")
	b.Data(128)
	b.InitWords(7)
	b.Ld(1, isa.ZeroReg, 0) // r1 = 7
	b.St(isa.ZeroReg, 1, 8) // mem[8] = 7
	b.FLd(isa.FPReg(1), isa.ZeroReg, 0)
	b.FSt(isa.ZeroReg, isa.FPReg(1), 16) // mem[16] = 7 (bits)
	b.Mv(2, 1)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if got := m.ReadMem(8); got != 7 {
		t.Errorf("mem[8] = %d, want 7", got)
	}
	if got := m.ReadMem(16); got != 7 {
		t.Errorf("mem[16] = %d, want 7", got)
	}
	if got := m.Reg(isa.IntReg(2)); got != 7 {
		t.Errorf("r2 = %d, want 7", got)
	}
}
