// Package prog builds executable programs for the BlackJack simulator: a
// small assembler-style Builder for hand-written kernels, and a deterministic
// synthetic-workload generator whose 16 named profiles stand in for the
// paper's SPEC2000 benchmarks (see DESIGN.md for the substitution argument).
package prog

import (
	"fmt"

	"blackjack/internal/isa"
)

// Builder assembles a program with symbolic labels. Methods record the first
// error and subsequent calls become no-ops, so call sites can chain emissions
// and check the error once at Build.
type Builder struct {
	name     string
	code     []isa.Inst
	labels   map[string]int
	fixups   map[int]string // instruction index -> label its Imm refers to
	dataSize int
	init     []uint64
	err      error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// failf records the first error.
func (b *Builder) failf(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog: %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Len returns the number of instructions emitted so far (the address of the
// next instruction).
func (b *Builder) Len() int { return len(b.code) }

// Label defines name at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.failf("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

// Data reserves a data segment of size bytes (rounded up to 8).
func (b *Builder) Data(size int) *Builder {
	if size < 0 {
		b.failf("negative data size %d", size)
		return b
	}
	b.dataSize = size
	return b
}

// InitWords seeds the start of the data segment with the given 64-bit words.
func (b *Builder) InitWords(words ...uint64) *Builder {
	b.init = append(b.init, words...)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

// Op3 emits a three-register instruction.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpImm emits a register-immediate instruction.
func (b *Builder) OpImm(op isa.Op, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.OpImm(isa.OpAddi, rd, rs1, imm)
}

// Li loads a 64-bit immediate into rd (addi from the zero register; our Imm
// field is a full int64 so one instruction suffices).
func (b *Builder) Li(rd isa.Reg, v int64) *Builder {
	return b.Addi(rd, isa.ZeroReg, v)
}

// Mv emits rd = rs.
func (b *Builder) Mv(rd, rs isa.Reg) *Builder {
	return b.Op3(isa.OpOr, rd, rs, isa.ZeroReg)
}

// Ld emits rd = mem[rs1+imm].
func (b *Builder) Ld(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem[rs1+imm] = rs2.
func (b *Builder) St(rs1, rs2 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// FLd emits fd = mem[rs1+imm].
func (b *Builder) FLd(fd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpFLd, Rd: fd, Rs1: rs1, Imm: imm})
}

// FSt emits mem[rs1+imm] = fs2.
func (b *Builder) FSt(rs1, fs2 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpFSt, Rs1: rs1, Rs2: fs2, Imm: imm})
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	b.fixups[len(b.code)] = label
	return b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups[len(b.code)] = label
	return b.Emit(isa.Inst{Op: isa.OpJmp})
}

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("prog: %s: undefined label %q", b.name, label)
		}
		b.code[idx].Imm = int64(target)
	}
	p := &isa.Program{Name: b.name, Code: b.code, DataSize: b.dataSize, Init: b.init}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
