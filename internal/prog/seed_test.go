package prog

import "testing"

func TestDeriveSeedIdentityAtZero(t *testing.T) {
	for _, base := range []uint64{0, 101, 1 << 40} {
		if got := DeriveSeed(base, 0); got != base {
			t.Errorf("DeriveSeed(%d, 0) = %d, want identity", base, got)
		}
	}
}

func TestDeriveSeedNoNeighbourAliasing(t *testing.T) {
	// The suite's base seeds are consecutive (equake=101, swim=102, ...);
	// naive base+offset arithmetic would alias equake's offset-1 stream with
	// swim's baseline. Derived seeds must not collide across any suite pair
	// and offsets 0..4.
	offsets := []uint64{0, 1, 2, 10_000, 20_000}
	seen := make(map[uint64]string)
	for _, name := range BenchmarkNames() {
		base, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range offsets {
			s := DeriveSeed(base.Seed, off)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s offset %d aliases %s", name, off, prev)
			}
			seen[s] = name
		}
	}
}

func TestSeededBenchmarkDeterministic(t *testing.T) {
	a, err := SeededBenchmark("gzip", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeededBenchmark("gzip", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Code) != len(b.Code) {
		t.Fatalf("code lengths differ: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	base, err := SeededBenchmark("gzip", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Code) == len(a.Code) {
		differs := false
		for i := range base.Code {
			if base.Code[i] != a.Code[i] {
				differs = true
				break
			}
		}
		if !differs {
			t.Error("offset 7 generated the same program as offset 0")
		}
	}
}
