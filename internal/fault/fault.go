// Package fault models hard (permanent) defects as deterministic corruption
// bound to one physical resource, implementing the pipeline's Injector
// surface. A fault fires every time (or — for state-dependent defects — every
// time a trigger pattern matches) a value flows through the faulty resource:
//
//   - a frontend way corrupts the decode of any instruction processed on it;
//   - a backend way corrupts results (or addresses, or branch directions)
//     computed on it;
//   - an issue-queue payload-RAM entry corrupts the instruction read at
//     issue — shared between threads, or per-thread when the machine has
//     split payload RAMs (Section 4.5 of the paper);
//   - a physical register corrupts every read of that register.
//
// This is exactly the paper's threat: a defect that escaped testing, possibly
// exercised only by specific machine state, silently corrupting data unless a
// redundancy check catches the divergence.
package fault

import (
	"fmt"

	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// Class locates the kind of resource a fault lives in.
type Class uint8

// Fault site classes.
const (
	// FrontendWay corrupts instruction decode on one frontend way.
	FrontendWay Class = iota
	// BackendWay corrupts values computed on one backend way.
	BackendWay
	// PayloadRAM corrupts the instruction payload read from one issue-queue
	// slot.
	PayloadRAM
	// RegisterFile corrupts reads of one physical register.
	RegisterFile

	NumClasses
)

var classNames = [NumClasses]string{
	FrontendWay: "frontend-way", BackendWay: "backend-way",
	PayloadRAM: "payload-ram", RegisterFile: "register-file",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// DecodeField selects which decoded field a frontend/payload fault corrupts.
type DecodeField uint8

// Decode corruption targets.
const (
	FieldRs1 DecodeField = iota // flips the low bit of Rs1
	FieldRs2                    // flips the low bit of Rs2
	FieldRd                     // flips the low bit of Rd
	FieldImm                    // XORs BitMask into the immediate
	FieldOp                     // perturbs the opcode (stays decodable)
	NumDecodeFields
)

// Site is one hard fault.
type Site struct {
	Class Class

	// BackendWay coordinates.
	Unit isa.UnitClass
	Way  int // frontend or backend way index

	// PayloadRAM coordinates. Thread selects the RAM copy when the machine
	// has split payload RAMs; with a shared RAM it is ignored.
	Slot   int
	Thread int

	// RegisterFile coordinate.
	Reg rename.PhysReg

	// BitMask is XORed into corrupted data values (result, register read,
	// address, immediate). Zero defaults to bit 0.
	BitMask uint64
	// Field selects the decode corruption for FrontendWay/PayloadRAM sites.
	Field DecodeField
	// FlipBranch makes a BackendWay site invert branch directions computed
	// on the way (in addition to value corruption).
	FlipBranch bool
	// CorruptAddr makes a BackendWay site corrupt effective addresses
	// instead of data values.
	CorruptAddr bool

	// TriggerMask/TriggerValue gate the fault on operand state: corruption
	// fires only when value&TriggerMask == TriggerValue. A zero mask fires
	// always. This models defects "exercised by very specific machine
	// state" (Section 1) — present in silicon but latent for most inputs.
	TriggerMask  uint64
	TriggerValue uint64

	// Transient makes the fault a soft error: it corrupts exactly one use of
	// the resource (the FireAt-th eligible one; 0 means the first) and then
	// disappears. SRT's temporal redundancy suffices for these — BlackJack
	// inherits that coverage (Section 1: the technique detects soft errors
	// in addition to hard ones).
	Transient bool
	// FireAt selects which eligible use a transient corrupts (1-based; 0
	// means 1).
	FireAt uint64

	// ArmAt, when positive on a non-transient site, models a latent hard
	// defect manifesting over time (the paper's Section 1 wear-out scenario:
	// electromigration, oxide breakdown): the site is dormant for its first
	// ArmAt-1 eligible uses and corrupts every use from the ArmAt-th on.
	// Ignored for transients (FireAt already selects their one shot).
	ArmAt uint64

	// Kind selects the fault model. The zero value (KindPermanent) keeps the
	// legacy semantics: permanent, or one-shot when Transient is set.
	Kind Kind

	// DutyPeriod/DutyOn define a KindIntermittent site's duty cycle in
	// eligible uses: the first DutyOn uses of every DutyPeriod-use window are
	// the on-window, the rest are off. DutyProb (a percentage; 0 means 100)
	// thins the on-window with a deterministic per-use draw seeded from the
	// site's identity.
	DutyPeriod uint64
	DutyOn     uint64
	DutyProb   uint8

	// StuckMask/StuckValue replace the XOR flip with a stuck-at pattern: the
	// bits under StuckMask are forced to StuckValue. A stuck bit that already
	// holds its stuck value corrupts nothing (and does not count as an
	// activation) — the defining difference from a flip mask.
	StuckMask  uint64
	StuckValue uint64
}

// String describes the site.
func (s Site) String() string {
	var base string
	switch s.Class {
	case FrontendWay:
		base = fmt.Sprintf("frontend-way %d (field %d)", s.Way, s.Field)
	case BackendWay:
		what := "value"
		if s.CorruptAddr {
			what = "addr"
		}
		if s.FlipBranch {
			what = "branch"
		}
		if s.kind() == KindControlFlow && !s.FlipBranch {
			what = "branch-target"
		}
		base = fmt.Sprintf("backend-way %v/%d (%s)", s.Unit, s.Way, what)
	case PayloadRAM:
		base = fmt.Sprintf("payload-ram slot %d thread %d (field %d)", s.Slot, s.Thread, s.Field)
	case RegisterFile:
		base = fmt.Sprintf("register p%d", s.Reg)
	default:
		return "unknown fault site"
	}
	if k := s.kind(); k != KindPermanent && k != KindTransient {
		base += " " + k.String()
	}
	return base
}

func (s Site) mask() uint64 {
	if s.BitMask == 0 {
		return 1
	}
	return s.BitMask
}

func (s Site) triggered(v uint64) bool {
	return v&s.TriggerMask == s.TriggerValue&s.TriggerMask
}

// corruptValue applies the site's data corruption: a stuck-at pattern when
// StuckMask is set, otherwise the XOR flip mask. A stuck-at that matches the
// value already present returns it unchanged — callers count an activation
// only when the value actually changed.
func (s Site) corruptValue(v uint64) uint64 {
	if s.StuckMask != 0 {
		return v&^s.StuckMask | s.StuckValue&s.StuckMask
	}
	return v ^ s.mask()
}

// corruptAddr is corruptValue on the word-aligned address lines (the low
// three bits are byte offsets the datapath never drives).
func (s Site) corruptAddr(a uint64) uint64 {
	if s.StuckMask != 0 {
		m := s.StuckMask << 3
		return a&^m | (s.StuckValue<<3)&m
	}
	return a ^ s.mask()<<3
}

// corruptInst applies the site's decode corruption.
func (s Site) corruptInst(in isa.Inst) isa.Inst {
	switch s.Field {
	case FieldRs1:
		in.Rs1 = (in.Rs1 ^ 1) % isa.NumArchRegs
	case FieldRs2:
		in.Rs2 = (in.Rs2 ^ 1) % isa.NumArchRegs
	case FieldRd:
		in.Rd = (in.Rd ^ 1) % isa.NumArchRegs
	case FieldImm:
		in.Imm = int64(s.corruptValue(uint64(in.Imm)))
	case FieldOp:
		in.Op = isa.Op((uint8(in.Op) + 1) % uint8(isa.NumOps))
	}
	return in
}

// Injector implements the pipeline's fault surface for a set of sites.
// SplitPayload models the paper's fix for the payload-RAM vulnerability
// (separate per-thread payload RAMs): a PayloadRAM site then only affects its
// own thread's copy.
type Injector struct {
	Sites        []Site
	SplitPayload bool

	// Now, when set, supplies the current cycle so the injector can record
	// when the fault first activated (for detection-latency measurements).
	Now func() int64

	// OnActivate, when set, is invoked after every activation (any site
	// actually changing a value) — the observability layer's
	// fault-activation hook. The running activation count and, with Now
	// attached, the current cycle are available from the injector inside
	// the callback.
	OnActivate func()

	activations uint64
	firstAct    int64
	hasFirst    bool
	uses        []uint64 // per-site eligible-use counts (for transients)
}

// Activations returns how many times any site actually changed a value.
func (inj *Injector) Activations() uint64 { return inj.activations }

// FirstActivation returns the cycle of the first activation; ok is false
// when the fault never activated or no clock was attached.
func (inj *Injector) FirstActivation() (int64, bool) { return inj.firstAct, inj.hasFirst }

// activate counts one corruption and stamps the first-activation cycle.
func (inj *Injector) activate() {
	inj.activations++
	if !inj.hasFirst && inj.Now != nil {
		inj.firstAct = inj.Now()
		inj.hasFirst = true
	}
	if inj.OnActivate != nil {
		inj.OnActivate()
	}
}

// SeedUses pre-loads the per-site eligible-use counters, so an injector
// installed on a machine forked from a mid-run checkpoint counts transient
// uses as if it had been present from cycle 0. counts must come from a
// Probe.UsesSnapshot taken on the same site list at the checkpoint cycle.
func (inj *Injector) SeedUses(counts []uint64) {
	inj.uses = make([]uint64, len(inj.Sites))
	copy(inj.uses, counts)
}

// fires decides whether site i corrupts this eligible use. The firing
// semantics (transient one-shot, intermittent duty windows, arming) live in
// Site.firesAt; this only maintains the per-site use counter, skipped
// entirely for always-on sites.
func (inj *Injector) fires(i int) bool {
	s := &inj.Sites[i]
	if !s.counted() {
		return true
	}
	if inj.uses == nil {
		inj.uses = make([]uint64, len(inj.Sites))
	}
	inj.uses[i]++
	return s.firesAt(inj.uses[i])
}

// CorruptDecode implements pipeline.Injector.
func (inj *Injector) CorruptDecode(way int, in isa.Inst) isa.Inst {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == FrontendWay && s.Way == way && s.triggered(uint64(in.Imm)) && inj.fires(i) {
			out := s.corruptInst(in)
			if out != in {
				inj.activate()
			}
			in = out
		}
	}
	return in
}

// CorruptPayload implements pipeline.Injector.
func (inj *Injector) CorruptPayload(slot, thread int, in isa.Inst) isa.Inst {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class != PayloadRAM || s.Slot != slot {
			continue
		}
		if inj.SplitPayload && s.Thread != thread {
			continue
		}
		if !inj.fires(i) {
			continue
		}
		out := s.corruptInst(in)
		if out != in {
			inj.activate()
		}
		in = out
	}
	return in
}

// CorruptResult implements pipeline.Injector.
func (inj *Injector) CorruptResult(class isa.UnitClass, way int, in isa.Inst, v uint64) uint64 {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way &&
			!s.CorruptAddr && !s.FlipBranch && s.kind() != KindControlFlow &&
			s.triggered(v) && inj.fires(i) {
			if nv := s.corruptValue(v); nv != v {
				v = nv
				inj.activate()
			}
		}
	}
	return v
}

// CorruptAddr implements pipeline.Injector.
func (inj *Injector) CorruptAddr(class isa.UnitClass, way int, addr uint64) uint64 {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way &&
			s.CorruptAddr && s.triggered(addr) && inj.fires(i) {
			if na := s.corruptAddr(addr); na != addr {
				addr = na
				inj.activate()
			}
		}
	}
	return addr
}

// CorruptBranch implements pipeline.Injector.
func (inj *Injector) CorruptBranch(class isa.UnitClass, way int, taken bool) bool {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way && s.FlipBranch && inj.fires(i) {
			taken = !taken
			inj.activate()
		}
	}
	return taken
}

// CorruptBranchTarget implements pipeline.Injector: a control-flow-error site
// mis-latches the computed target of branches executed on its way. The
// corrupted target flows to the redirect points (a mispredicted leading
// branch steers fetch down the wrong path) and to commit-time validation
// (the trailing thread's independently computed target exposes it).
func (inj *Injector) CorruptBranchTarget(class isa.UnitClass, way int, target int) int {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way &&
			s.kind() == KindControlFlow && !s.FlipBranch &&
			s.triggered(uint64(target)) && inj.fires(i) {
			if nt := int(s.corruptValue(uint64(target))); nt != target {
				target = nt
				inj.activate()
			}
		}
	}
	return target
}

// CorruptRegRead implements pipeline.Injector.
func (inj *Injector) CorruptRegRead(p rename.PhysReg, v uint64) uint64 {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == RegisterFile && s.Reg == p && s.triggered(v) && inj.fires(i) {
			if nv := s.corruptValue(v); nv != v {
				v = nv
				inj.activate()
			}
		}
	}
	return v
}
