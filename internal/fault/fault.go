// Package fault models hard (permanent) defects as deterministic corruption
// bound to one physical resource, implementing the pipeline's Injector
// surface. A fault fires every time (or — for state-dependent defects — every
// time a trigger pattern matches) a value flows through the faulty resource:
//
//   - a frontend way corrupts the decode of any instruction processed on it;
//   - a backend way corrupts results (or addresses, or branch directions)
//     computed on it;
//   - an issue-queue payload-RAM entry corrupts the instruction read at
//     issue — shared between threads, or per-thread when the machine has
//     split payload RAMs (Section 4.5 of the paper);
//   - a physical register corrupts every read of that register.
//
// This is exactly the paper's threat: a defect that escaped testing, possibly
// exercised only by specific machine state, silently corrupting data unless a
// redundancy check catches the divergence.
package fault

import (
	"fmt"

	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// Class locates the kind of resource a fault lives in.
type Class uint8

// Fault site classes.
const (
	// FrontendWay corrupts instruction decode on one frontend way.
	FrontendWay Class = iota
	// BackendWay corrupts values computed on one backend way.
	BackendWay
	// PayloadRAM corrupts the instruction payload read from one issue-queue
	// slot.
	PayloadRAM
	// RegisterFile corrupts reads of one physical register.
	RegisterFile

	NumClasses
)

var classNames = [NumClasses]string{
	FrontendWay: "frontend-way", BackendWay: "backend-way",
	PayloadRAM: "payload-ram", RegisterFile: "register-file",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// DecodeField selects which decoded field a frontend/payload fault corrupts.
type DecodeField uint8

// Decode corruption targets.
const (
	FieldRs1 DecodeField = iota // flips the low bit of Rs1
	FieldRs2                    // flips the low bit of Rs2
	FieldRd                     // flips the low bit of Rd
	FieldImm                    // XORs BitMask into the immediate
	FieldOp                     // perturbs the opcode (stays decodable)
	NumDecodeFields
)

// Site is one hard fault.
type Site struct {
	Class Class

	// BackendWay coordinates.
	Unit isa.UnitClass
	Way  int // frontend or backend way index

	// PayloadRAM coordinates. Thread selects the RAM copy when the machine
	// has split payload RAMs; with a shared RAM it is ignored.
	Slot   int
	Thread int

	// RegisterFile coordinate.
	Reg rename.PhysReg

	// BitMask is XORed into corrupted data values (result, register read,
	// address, immediate). Zero defaults to bit 0.
	BitMask uint64
	// Field selects the decode corruption for FrontendWay/PayloadRAM sites.
	Field DecodeField
	// FlipBranch makes a BackendWay site invert branch directions computed
	// on the way (in addition to value corruption).
	FlipBranch bool
	// CorruptAddr makes a BackendWay site corrupt effective addresses
	// instead of data values.
	CorruptAddr bool

	// TriggerMask/TriggerValue gate the fault on operand state: corruption
	// fires only when value&TriggerMask == TriggerValue. A zero mask fires
	// always. This models defects "exercised by very specific machine
	// state" (Section 1) — present in silicon but latent for most inputs.
	TriggerMask  uint64
	TriggerValue uint64

	// Transient makes the fault a soft error: it corrupts exactly one use of
	// the resource (the FireAt-th eligible one; 0 means the first) and then
	// disappears. SRT's temporal redundancy suffices for these — BlackJack
	// inherits that coverage (Section 1: the technique detects soft errors
	// in addition to hard ones).
	Transient bool
	// FireAt selects which eligible use a transient corrupts (1-based; 0
	// means 1).
	FireAt uint64

	// ArmAt, when positive on a non-transient site, models a latent hard
	// defect manifesting over time (the paper's Section 1 wear-out scenario:
	// electromigration, oxide breakdown): the site is dormant for its first
	// ArmAt-1 eligible uses and corrupts every use from the ArmAt-th on.
	// Ignored for transients (FireAt already selects their one shot).
	ArmAt uint64
}

// String describes the site.
func (s Site) String() string {
	switch s.Class {
	case FrontendWay:
		return fmt.Sprintf("frontend-way %d (field %d)", s.Way, s.Field)
	case BackendWay:
		kind := "value"
		if s.CorruptAddr {
			kind = "addr"
		}
		if s.FlipBranch {
			kind = "branch"
		}
		return fmt.Sprintf("backend-way %v/%d (%s)", s.Unit, s.Way, kind)
	case PayloadRAM:
		return fmt.Sprintf("payload-ram slot %d thread %d (field %d)", s.Slot, s.Thread, s.Field)
	case RegisterFile:
		return fmt.Sprintf("register p%d", s.Reg)
	default:
		return "unknown fault site"
	}
}

func (s Site) mask() uint64 {
	if s.BitMask == 0 {
		return 1
	}
	return s.BitMask
}

func (s Site) triggered(v uint64) bool {
	return v&s.TriggerMask == s.TriggerValue&s.TriggerMask
}

// corruptInst applies the site's decode corruption.
func (s Site) corruptInst(in isa.Inst) isa.Inst {
	switch s.Field {
	case FieldRs1:
		in.Rs1 = (in.Rs1 ^ 1) % isa.NumArchRegs
	case FieldRs2:
		in.Rs2 = (in.Rs2 ^ 1) % isa.NumArchRegs
	case FieldRd:
		in.Rd = (in.Rd ^ 1) % isa.NumArchRegs
	case FieldImm:
		in.Imm ^= int64(s.mask())
	case FieldOp:
		in.Op = isa.Op((uint8(in.Op) + 1) % uint8(isa.NumOps))
	}
	return in
}

// Injector implements the pipeline's fault surface for a set of sites.
// SplitPayload models the paper's fix for the payload-RAM vulnerability
// (separate per-thread payload RAMs): a PayloadRAM site then only affects its
// own thread's copy.
type Injector struct {
	Sites        []Site
	SplitPayload bool

	// Now, when set, supplies the current cycle so the injector can record
	// when the fault first activated (for detection-latency measurements).
	Now func() int64

	// OnActivate, when set, is invoked after every activation (any site
	// actually changing a value) — the observability layer's
	// fault-activation hook. The running activation count and, with Now
	// attached, the current cycle are available from the injector inside
	// the callback.
	OnActivate func()

	activations uint64
	firstAct    int64
	hasFirst    bool
	uses        []uint64 // per-site eligible-use counts (for transients)
}

// Activations returns how many times any site actually changed a value.
func (inj *Injector) Activations() uint64 { return inj.activations }

// FirstActivation returns the cycle of the first activation; ok is false
// when the fault never activated or no clock was attached.
func (inj *Injector) FirstActivation() (int64, bool) { return inj.firstAct, inj.hasFirst }

// activate counts one corruption and stamps the first-activation cycle.
func (inj *Injector) activate() {
	inj.activations++
	if !inj.hasFirst && inj.Now != nil {
		inj.firstAct = inj.Now()
		inj.hasFirst = true
	}
	if inj.OnActivate != nil {
		inj.OnActivate()
	}
}

// SeedUses pre-loads the per-site eligible-use counters, so an injector
// installed on a machine forked from a mid-run checkpoint counts transient
// uses as if it had been present from cycle 0. counts must come from a
// Probe.UsesSnapshot taken on the same site list at the checkpoint cycle.
func (inj *Injector) SeedUses(counts []uint64) {
	inj.uses = make([]uint64, len(inj.Sites))
	copy(inj.uses, counts)
}

// fires decides whether site i corrupts this eligible use, accounting for
// transient (one-shot) and arming (dormant-until-ArmAt) semantics.
func (inj *Injector) fires(i int) bool {
	s := &inj.Sites[i]
	if !s.Transient && s.ArmAt == 0 {
		return true
	}
	if inj.uses == nil {
		inj.uses = make([]uint64, len(inj.Sites))
	}
	inj.uses[i]++
	if s.Transient {
		at := s.FireAt
		if at == 0 {
			at = 1
		}
		return inj.uses[i] == at
	}
	return inj.uses[i] >= s.ArmAt
}

// CorruptDecode implements pipeline.Injector.
func (inj *Injector) CorruptDecode(way int, in isa.Inst) isa.Inst {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == FrontendWay && s.Way == way && s.triggered(uint64(in.Imm)) && inj.fires(i) {
			out := s.corruptInst(in)
			if out != in {
				inj.activate()
			}
			in = out
		}
	}
	return in
}

// CorruptPayload implements pipeline.Injector.
func (inj *Injector) CorruptPayload(slot, thread int, in isa.Inst) isa.Inst {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class != PayloadRAM || s.Slot != slot {
			continue
		}
		if inj.SplitPayload && s.Thread != thread {
			continue
		}
		if !inj.fires(i) {
			continue
		}
		out := s.corruptInst(in)
		if out != in {
			inj.activate()
		}
		in = out
	}
	return in
}

// CorruptResult implements pipeline.Injector.
func (inj *Injector) CorruptResult(class isa.UnitClass, way int, in isa.Inst, v uint64) uint64 {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way &&
			!s.CorruptAddr && !s.FlipBranch && s.triggered(v) && inj.fires(i) {
			v ^= s.mask()
			inj.activate()
		}
	}
	return v
}

// CorruptAddr implements pipeline.Injector.
func (inj *Injector) CorruptAddr(class isa.UnitClass, way int, addr uint64) uint64 {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way &&
			s.CorruptAddr && s.triggered(addr) && inj.fires(i) {
			addr ^= s.mask() << 3 // flip an (aligned) address bit
			inj.activate()
		}
	}
	return addr
}

// CorruptBranch implements pipeline.Injector.
func (inj *Injector) CorruptBranch(class isa.UnitClass, way int, taken bool) bool {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == BackendWay && s.Unit == class && s.Way == way && s.FlipBranch && inj.fires(i) {
			taken = !taken
			inj.activate()
		}
	}
	return taken
}

// CorruptRegRead implements pipeline.Injector.
func (inj *Injector) CorruptRegRead(p rename.PhysReg, v uint64) uint64 {
	for i := range inj.Sites {
		s := &inj.Sites[i]
		if s.Class == RegisterFile && s.Reg == p && s.triggered(v) && inj.fires(i) {
			v ^= s.mask()
			inj.activate()
		}
	}
	return v
}
