package fault

import (
	"errors"
	"strings"
	"testing"

	"blackjack/internal/isa"
)

func TestKindStringsAndParse(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d unnamed", k)
		}
		got, err := ParseKind(name)
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseKind("flaky"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}

// TestValidateInvalidCombos exercises every contradictory field combination
// Validate rejects, and checks the error is the typed *SiteError.
func TestValidateInvalidCombos(t *testing.T) {
	be := func(s Site) Site {
		s.Class = BackendWay
		s.Unit = isa.UnitIntALU
		return s
	}
	cases := []struct {
		name string
		site Site
	}{
		{"unknown class", Site{Class: NumClasses}},
		{"unknown kind", Site{Kind: NumKinds}},
		{"unknown decode field", Site{Class: FrontendWay, Field: NumDecodeFields}},
		{"transient flag contradicts kind", Site{Kind: KindIntermittent, Transient: true, DutyPeriod: 4, DutyOn: 2}},
		{"transient plus armat", be(Site{Transient: true, ArmAt: 5})},
		{"fireat without transient", Site{Class: RegisterFile, FireAt: 3}},
		{"intermittent without period", Site{Class: RegisterFile, Kind: KindIntermittent, DutyOn: 1}},
		{"intermittent zero on-window", Site{Class: RegisterFile, Kind: KindIntermittent, DutyPeriod: 4}},
		{"on-window exceeds period", Site{Class: RegisterFile, Kind: KindIntermittent, DutyPeriod: 4, DutyOn: 5}},
		{"intermittent plus armat", Site{Class: RegisterFile, Kind: KindIntermittent, DutyPeriod: 4, DutyOn: 2, ArmAt: 9}},
		{"duty fields on permanent", Site{Class: RegisterFile, DutyPeriod: 4}},
		{"duty prob on permanent", Site{Class: RegisterFile, DutyProb: 50}},
		{"prob over 100", Site{Class: RegisterFile, Kind: KindIntermittent, DutyPeriod: 4, DutyOn: 2, DutyProb: 101}},
		{"stuck value without mask", Site{Class: RegisterFile, StuckValue: 0xF0}},
		{"stuck value outside mask", Site{Class: RegisterFile, StuckMask: 0x0F, StuckValue: 0xF0}},
		{"flipbranch on frontend", Site{Class: FrontendWay, FlipBranch: true}},
		{"corruptaddr on regfile", Site{Class: RegisterFile, CorruptAddr: true}},
		{"flipbranch plus corruptaddr", be(Site{FlipBranch: true, CorruptAddr: true})},
		{"multi-bit single-bit mask", be(Site{Kind: KindMultiBit, BitMask: 1 << 4})},
		{"multi-bit decode field", Site{Class: FrontendWay, Kind: KindMultiBit, Field: FieldRs2, BitMask: 0x3C}},
		{"multi-bit flipbranch", be(Site{Kind: KindMultiBit, BitMask: 0x3C, FlipBranch: true})},
		{"control-flow on frontend", Site{Class: FrontendWay, Kind: KindControlFlow}},
		{"control-flow corruptaddr", be(Site{Kind: KindControlFlow, CorruptAddr: true})},
		{"control-flow stuck mask", be(Site{Kind: KindControlFlow, StuckMask: 3, StuckValue: 1})},
	}
	for _, tc := range cases {
		err := tc.site.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.site)
			continue
		}
		var se *SiteError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *SiteError", tc.name, err)
		}
	}
}

func TestValidateAcceptsCanonicalSites(t *testing.T) {
	valid := []Site{
		{Class: FrontendWay, Way: 1, Field: FieldRs2},
		{Class: BackendWay, Unit: isa.UnitIntALU, BitMask: 1 << 9, ArmAt: 500},
		{Class: BackendWay, Unit: isa.UnitMem, CorruptAddr: true, BitMask: 1},
		{Class: RegisterFile, Reg: 40, Transient: true, FireAt: 3},
		{Class: RegisterFile, Reg: 40, Kind: KindTransient, FireAt: 3},
		{Class: PayloadRAM, Slot: 2, Kind: KindIntermittent, Field: FieldImm, DutyPeriod: 8, DutyOn: 4, DutyProb: 75},
		{Class: BackendWay, Unit: isa.UnitIntALU, Kind: KindMultiBit, StuckMask: 0xFF00, StuckValue: 0xA500},
		{Class: FrontendWay, Kind: KindMultiBit, Field: FieldImm, BitMask: 0x3C},
		{Class: BackendWay, Unit: isa.UnitIntALU, Kind: KindControlFlow, BitMask: 1},
		{Class: BackendWay, Unit: isa.UnitIntALU, Kind: KindControlFlow, FlipBranch: true},
	}
	if err := ValidateSites(valid); err != nil {
		t.Fatalf("canonical sites rejected: %v", err)
	}
}

// TestDutyCycleWindowMath is the table-driven edge suite for the intermittent
// on/off window: period 1, exact window boundaries, and full-period windows.
func TestDutyCycleWindowMath(t *testing.T) {
	cases := []struct {
		name       string
		period, on uint64
		use        uint64
		want       bool
	}{
		{"period 1 always on", 1, 1, 1, true},
		{"period 1 deep use", 1, 1, 1_000_000, true},
		{"first use in window", 8, 4, 1, true},
		{"last use of window", 8, 4, 4, true},
		{"first use past window", 8, 4, 5, false},
		{"last use of period", 8, 4, 8, false},
		{"second period restarts", 8, 4, 9, true},
		{"second period closes", 8, 4, 13, false},
		{"window equals period", 8, 8, 8, true},
		{"single-use window", 1000, 1, 1001, true},
		{"single-use window off", 1000, 1, 1002, false},
	}
	for _, tc := range cases {
		s := Site{Class: RegisterFile, Kind: KindIntermittent, DutyPeriod: tc.period, DutyOn: tc.on}
		if got := s.firesAt(tc.use); got != tc.want {
			t.Errorf("%s: firesAt(%d) = %v, want %v", tc.name, tc.use, got, tc.want)
		}
	}
}

// TestDutyProbDeterministicAndThinning: the probability draw is a pure
// function of site identity and use index, and actually thins the window.
func TestDutyProbDeterministicAndThinning(t *testing.T) {
	s := Site{Class: RegisterFile, Reg: 7, Kind: KindIntermittent, DutyPeriod: 1, DutyOn: 1, DutyProb: 50}
	fired := 0
	const n = 10_000
	for use := uint64(1); use <= n; use++ {
		a := s.firesAt(use)
		if b := s.firesAt(use); a != b {
			t.Fatalf("use %d: draw not deterministic", use)
		}
		if a {
			fired++
		}
	}
	if fired < n*4/10 || fired > n*6/10 {
		t.Errorf("prob 50%%: fired %d of %d uses", fired, n)
	}
	// A different site identity draws a different pattern.
	other := s
	other.Reg = 8
	same := 0
	for use := uint64(1); use <= 1000; use++ {
		if s.firesAt(use) == other.firesAt(use) {
			same++
		}
	}
	if same == 1000 {
		t.Error("two distinct sites drew identical activation patterns")
	}
}

// TestIntermittentSeedUsesContinuation: an injector seeded with a mid-window
// use count (the checkpoint-fork handoff) continues the duty cycle exactly
// where the cold injector left off — the window-spanning-checkpoint edge.
func TestIntermittentSeedUsesContinuation(t *testing.T) {
	site := Site{Class: RegisterFile, Reg: 3, BitMask: 4, Kind: KindIntermittent, DutyPeriod: 8, DutyOn: 4, DutyProb: 60}
	const total, seedAt = 64, 6 // 6 is inside the first on-window

	cold := &Injector{Sites: []Site{site}}
	var coldPattern []bool
	for use := 1; use <= total; use++ {
		coldPattern = append(coldPattern, cold.CorruptRegRead(3, 100) != 100)
	}

	warm := &Injector{Sites: []Site{site}}
	warm.SeedUses([]uint64{seedAt})
	for use := seedAt + 1; use <= total; use++ {
		got := warm.CorruptRegRead(3, 100) != 100
		if got != coldPattern[use-1] {
			t.Fatalf("use %d: seeded injector fired=%v, cold fired=%v", use, got, coldPattern[use-1])
		}
	}
}

// TestAllBitsMasks: a flip mask of all 64 bits always corrupts; a stuck-at of
// all bits corrupts only values that differ, and a matching value is not an
// activation (the record-on-change contract).
func TestAllBitsMasks(t *testing.T) {
	all := ^uint64(0)
	flip := &Injector{Sites: []Site{{Class: RegisterFile, Reg: 1, Kind: KindMultiBit, BitMask: all}}}
	if got := flip.CorruptRegRead(1, 0xAA); got != ^uint64(0xAA) {
		t.Errorf("all-bits flip = %#x", got)
	}
	if flip.Activations() != 1 {
		t.Errorf("flip activations = %d", flip.Activations())
	}

	stuck := &Injector{Sites: []Site{{Class: RegisterFile, Reg: 1, Kind: KindMultiBit, StuckMask: all, StuckValue: 0x1234}}}
	if got := stuck.CorruptRegRead(1, 0x1234); got != 0x1234 {
		t.Errorf("stuck-at of matching value changed it: %#x", got)
	}
	if stuck.Activations() != 0 {
		t.Error("stuck-at counted a no-op as an activation")
	}
	if got := stuck.CorruptRegRead(1, 99); got != 0x1234 {
		t.Errorf("stuck-at = %#x, want 0x1234", got)
	}
	if stuck.Activations() != 1 {
		t.Errorf("stuck activations = %d, want 1", stuck.Activations())
	}
}

func TestStuckAtResultAndProbeMirror(t *testing.T) {
	site := Site{Class: BackendWay, Unit: isa.UnitIntALU, Way: 1, Kind: KindMultiBit, StuckMask: 0xFF, StuckValue: 0xA5}
	in := isa.Inst{Op: isa.OpAdd}

	inj := &Injector{Sites: []Site{site}}
	if got := inj.CorruptResult(isa.UnitIntALU, 1, in, 0x12A5); got != 0x12A5 {
		t.Errorf("matching low byte changed: %#x", got)
	}
	if inj.Activations() != 0 {
		t.Error("no-op stuck-at activated")
	}
	if got := inj.CorruptResult(isa.UnitIntALU, 1, in, 0x1200); got != 0x12A5 {
		t.Errorf("stuck result = %#x, want 0x12A5", got)
	}

	// The probe must agree: its first recorded fire is the value-changing use.
	now := int64(0)
	pr := &Probe{Sites: []Site{site}, Now: func() int64 { return now }}
	now = 1
	pr.CorruptResult(isa.UnitIntALU, 1, in, 0x12A5) // no-op: not a fire
	now = 2
	pr.CorruptResult(isa.UnitIntALU, 1, in, 0x1200)
	if fc := pr.FireCycle(0); fc != 2 {
		t.Errorf("probe fire cycle = %d, want 2 (the value-changing use)", fc)
	}
}

func TestCorruptBranchTarget(t *testing.T) {
	inj := &Injector{Sites: []Site{{
		Class: BackendWay, Unit: isa.UnitIntALU, Way: 2, Kind: KindControlFlow, BitMask: 2,
	}}}
	if got := inj.CorruptBranchTarget(isa.UnitIntALU, 2, 40); got != 42 {
		t.Errorf("target = %d, want 42", got)
	}
	if got := inj.CorruptBranchTarget(isa.UnitIntALU, 1, 40); got != 40 {
		t.Error("healthy way target corrupted")
	}
	if got := inj.CorruptBranchTarget(isa.UnitFPALU, 2, 40); got != 40 {
		t.Error("other unit target corrupted")
	}
	if inj.Activations() != 1 {
		t.Errorf("activations = %d, want 1", inj.Activations())
	}
	// A value site must not fire on the target path, and a target site must
	// not fire on the value path.
	val := &Injector{Sites: []Site{{Class: BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 4}}}
	if got := val.CorruptBranchTarget(isa.UnitIntALU, 0, 40); got != 40 {
		t.Error("value site corrupted a branch target")
	}
	cfe := &Injector{Sites: []Site{{Class: BackendWay, Unit: isa.UnitIntALU, Way: 0, Kind: KindControlFlow, BitMask: 4}}}
	if got := cfe.CorruptResult(isa.UnitIntALU, 0, isa.Inst{Op: isa.OpAdd}, 40); got != 40 {
		t.Error("control-flow site corrupted a data value")
	}
}

// TestProbeMirrorsIntermittentInjector: the probe's use counting and firing
// pattern for an intermittent site match the injector's exactly (the
// SeedUses contract depends on it).
func TestProbeMirrorsIntermittentInjector(t *testing.T) {
	site := Site{Class: RegisterFile, Reg: 9, BitMask: 1, Kind: KindIntermittent, DutyPeriod: 5, DutyOn: 2, DutyProb: 70}
	inj := &Injector{Sites: []Site{site}}
	now := int64(0)
	pr := &Probe{Sites: []Site{site}, Now: func() int64 { return now }}

	firstInjFire := int64(-1)
	for now = 1; now <= 40; now++ {
		injFired := inj.CorruptRegRead(9, 100) != 100
		pr.CorruptRegRead(9, 100)
		if injFired && firstInjFire < 0 {
			firstInjFire = now
		}
	}
	if fc := pr.FireCycle(0); fc != firstInjFire {
		t.Errorf("probe first fire = %d, injector first fire = %d", fc, firstInjFire)
	}
	if uses := pr.UsesSnapshot(); uses[0] != 40 {
		t.Errorf("probe uses = %d, want 40", uses[0])
	}
}

// TestValidateEdgeCases pins the exact rejection reason for the degenerate
// shapes that sit right at a rule's boundary: fully-zero duty cycles, a
// multi-bit site with no mask of either flavor, and control-flow sites on
// execution units that never see a branch.
func TestValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		site   Site
		reason string
	}{
		{"zero-duty intermittent",
			Site{Class: RegisterFile, Kind: KindIntermittent},
			"DutyPeriod >= 1"},
		{"zero on-window with period",
			Site{Class: RegisterFile, Kind: KindIntermittent, DutyPeriod: 1},
			"DutyOn must be in [1, DutyPeriod]"},
		{"zero-duty with probability only",
			Site{Class: RegisterFile, Kind: KindIntermittent, DutyProb: 50},
			"DutyPeriod >= 1"},
		{"multi-bit with no mask at all",
			Site{Class: BackendWay, Unit: isa.UnitIntALU, Kind: KindMultiBit},
			"at least two bits"},
		{"multi-bit with empty flip mask and empty stuck mask",
			Site{Class: BackendWay, Unit: isa.UnitIntALU, Kind: KindMultiBit, BitMask: 0, StuckMask: 0},
			"at least two bits"},
		{"control-flow on fp multiplier",
			Site{Class: BackendWay, Unit: isa.UnitFPMul, Kind: KindControlFlow, BitMask: 1},
			"branch-capable"},
		{"control-flow on memory unit",
			Site{Class: BackendWay, Unit: isa.UnitMem, Kind: KindControlFlow, FlipBranch: true},
			"branch-capable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.site.Validate()
			var se *SiteError
			if !errors.As(err, &se) {
				t.Fatalf("Validate = %v, want *SiteError", err)
			}
			if !strings.Contains(se.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", se.Reason, tc.reason)
			}
		})
	}
}
