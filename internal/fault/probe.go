package fault

import (
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// Probe is a non-mutating observer of a site list: it implements the
// pipeline's Injector surface but never changes a value, instead recording —
// per site — the cycle of the first use that a real Injector would have
// corrupted, and the running count of eligible uses (the transient FireAt
// counter).
//
// Campaign warmups run the fault-free golden simulation once with a Probe
// attached. Because the probe never corrupts, sites cannot interact: every
// site observes the pristine trajectory, so FireCycle(i) is exactly the first
// activation cycle of a solo run injecting site i, and the first activation
// of any subset is lower-bounded by the minimum FireCycle over its members
// (until the first corruption, the multi-site machine is byte-identical to
// the pristine one). Any checkpoint taken strictly before that minimum is
// therefore a valid fork point for the subset, and UsesSnapshot taken there
// seeds the fork's Injector counters exactly.
type Probe struct {
	Sites        []Site
	SplitPayload bool

	// Now supplies the current cycle (the machine's clock).
	Now func() int64

	uses []uint64
	fire []int64
	init bool

	// Per-resource site-index buckets: every Corrupt* hook runs on the hot
	// path of the campaign warmup (for every decode, issue, result and
	// register read), and scanning the full site list there is the dominant
	// warmup overhead. Bucketing by static coordinates visits only the sites
	// that could match — typically zero or one — without changing per-site
	// conditions, counting order or semantics (buckets are disjoint and
	// preserve site order).
	feWay   map[int][]int
	beVal   map[[2]int][]int
	beAddr  map[[2]int][]int
	beBr    map[[2]int][]int
	beTgt   map[[2]int][]int
	paySlot map[int][]int
	regRead map[rename.PhysReg][]int
}

func (pr *Probe) ensure() {
	if pr.init {
		return
	}
	pr.uses = make([]uint64, len(pr.Sites))
	pr.fire = make([]int64, len(pr.Sites))
	for i := range pr.fire {
		pr.fire[i] = -1
	}
	pr.feWay = make(map[int][]int)
	pr.beVal = make(map[[2]int][]int)
	pr.beAddr = make(map[[2]int][]int)
	pr.beBr = make(map[[2]int][]int)
	pr.beTgt = make(map[[2]int][]int)
	pr.paySlot = make(map[int][]int)
	pr.regRead = make(map[rename.PhysReg][]int)
	for i := range pr.Sites {
		s := &pr.Sites[i]
		switch s.Class {
		case FrontendWay:
			pr.feWay[s.Way] = append(pr.feWay[s.Way], i)
		case BackendWay:
			key := [2]int{int(s.Unit), s.Way}
			switch {
			case s.FlipBranch:
				pr.beBr[key] = append(pr.beBr[key], i)
			case s.kind() == KindControlFlow:
				pr.beTgt[key] = append(pr.beTgt[key], i)
			case s.CorruptAddr:
				pr.beAddr[key] = append(pr.beAddr[key], i)
			default:
				pr.beVal[key] = append(pr.beVal[key], i)
			}
		case PayloadRAM:
			pr.paySlot[s.Slot] = append(pr.paySlot[s.Slot], i)
		case RegisterFile:
			pr.regRead[s.Reg] = append(pr.regRead[s.Reg], i)
		}
	}
	pr.init = true
}

// fires mirrors Injector.fires exactly — both delegate the firing decision
// to Site.firesAt, so the probe cannot drift from the injector — without any
// corruption side effect.
func (pr *Probe) fires(i int) bool {
	s := &pr.Sites[i]
	if !s.counted() {
		return true
	}
	pr.uses[i]++
	return s.firesAt(pr.uses[i])
}

// record stamps site i's first value-changing use.
func (pr *Probe) record(i int) {
	if pr.fire[i] < 0 && pr.Now != nil {
		pr.fire[i] = pr.Now()
	}
}

// FireCycle returns the cycle site i first changed a value on the pristine
// trajectory, or -1 if it never would (for transients: its one shot missed or
// never came; for triggered sites: the trigger never matched a value that
// would change).
func (pr *Probe) FireCycle(i int) int64 {
	pr.ensure()
	return pr.fire[i]
}

// UsesSnapshot returns a copy of the per-site eligible-use counters, for
// seeding a forked Injector via SeedUses.
func (pr *Probe) UsesSnapshot() []uint64 {
	pr.ensure()
	out := make([]uint64, len(pr.uses))
	copy(out, pr.uses)
	return out
}

// CorruptDecode implements pipeline.Injector without mutating.
func (pr *Probe) CorruptDecode(way int, in isa.Inst) isa.Inst {
	pr.ensure()
	for _, i := range pr.feWay[way] {
		s := &pr.Sites[i]
		if s.triggered(uint64(in.Imm)) && pr.fires(i) {
			if s.corruptInst(in) != in {
				pr.record(i)
			}
		}
	}
	return in
}

// CorruptPayload implements pipeline.Injector without mutating.
func (pr *Probe) CorruptPayload(slot, thread int, in isa.Inst) isa.Inst {
	pr.ensure()
	for _, i := range pr.paySlot[slot] {
		s := &pr.Sites[i]
		if pr.SplitPayload && s.Thread != thread {
			continue
		}
		if !pr.fires(i) {
			continue
		}
		if s.corruptInst(in) != in {
			pr.record(i)
		}
	}
	return in
}

// CorruptResult implements pipeline.Injector without mutating.
func (pr *Probe) CorruptResult(class isa.UnitClass, way int, in isa.Inst, v uint64) uint64 {
	pr.ensure()
	for _, i := range pr.beVal[[2]int{int(class), way}] {
		s := &pr.Sites[i]
		if s.triggered(v) && pr.fires(i) {
			// A stuck-at matching the present value changes nothing; only a
			// value-changing use counts as the first activation.
			if s.corruptValue(v) != v {
				pr.record(i)
			}
		}
	}
	return v
}

// CorruptAddr implements pipeline.Injector without mutating.
func (pr *Probe) CorruptAddr(class isa.UnitClass, way int, addr uint64) uint64 {
	pr.ensure()
	for _, i := range pr.beAddr[[2]int{int(class), way}] {
		s := &pr.Sites[i]
		if s.triggered(addr) && pr.fires(i) {
			if s.corruptAddr(addr) != addr {
				pr.record(i)
			}
		}
	}
	return addr
}

// CorruptBranch implements pipeline.Injector without mutating.
func (pr *Probe) CorruptBranch(class isa.UnitClass, way int, taken bool) bool {
	pr.ensure()
	for _, i := range pr.beBr[[2]int{int(class), way}] {
		if pr.fires(i) {
			pr.record(i)
		}
	}
	return taken
}

// CorruptBranchTarget implements pipeline.Injector without mutating.
func (pr *Probe) CorruptBranchTarget(class isa.UnitClass, way int, target int) int {
	pr.ensure()
	for _, i := range pr.beTgt[[2]int{int(class), way}] {
		s := &pr.Sites[i]
		if s.triggered(uint64(target)) && pr.fires(i) {
			if int(s.corruptValue(uint64(target))) != target {
				pr.record(i)
			}
		}
	}
	return target
}

// CorruptRegRead implements pipeline.Injector without mutating.
func (pr *Probe) CorruptRegRead(p rename.PhysReg, v uint64) uint64 {
	pr.ensure()
	for _, i := range pr.regRead[p] {
		s := &pr.Sites[i]
		if s.triggered(v) && pr.fires(i) {
			if s.corruptValue(v) != v {
				pr.record(i)
			}
		}
	}
	return v
}
