package fault

import (
	"strings"
	"testing"

	"blackjack/internal/isa"
)

func TestClassAndSiteStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d unnamed", c)
		}
	}
	sites := []Site{
		{Class: FrontendWay, Way: 2},
		{Class: BackendWay, Unit: isa.UnitFPALU, Way: 1},
		{Class: BackendWay, Unit: isa.UnitMem, Way: 0, CorruptAddr: true},
		{Class: BackendWay, Unit: isa.UnitIntALU, Way: 3, FlipBranch: true},
		{Class: PayloadRAM, Slot: 7, Thread: 1},
		{Class: RegisterFile, Reg: 42},
	}
	for _, s := range sites {
		if s.String() == "unknown fault site" {
			t.Errorf("site %+v unnamed", s)
		}
	}
}

func TestBackendResultCorruption(t *testing.T) {
	inj := &Injector{Sites: []Site{{Class: BackendWay, Unit: isa.UnitIntALU, Way: 1, BitMask: 0x10}}}
	in := isa.Inst{Op: isa.OpAdd}
	if got := inj.CorruptResult(isa.UnitIntALU, 1, in, 100); got != 100^0x10 {
		t.Errorf("faulty way result = %d, want %d", got, 100^0x10)
	}
	if got := inj.CorruptResult(isa.UnitIntALU, 0, in, 100); got != 100 {
		t.Errorf("healthy way corrupted: %d", got)
	}
	if got := inj.CorruptResult(isa.UnitFPALU, 1, in, 100); got != 100 {
		t.Errorf("other unit corrupted: %d", got)
	}
	if inj.Activations() != 1 {
		t.Errorf("activations = %d, want 1", inj.Activations())
	}
}

func TestConditionGatedFault(t *testing.T) {
	inj := &Injector{Sites: []Site{{
		Class: BackendWay, Unit: isa.UnitIntALU, Way: 0,
		TriggerMask: 0xFF, TriggerValue: 0xAB,
	}}}
	in := isa.Inst{Op: isa.OpAdd}
	if got := inj.CorruptResult(isa.UnitIntALU, 0, in, 0x12AB); got == 0x12AB {
		t.Error("trigger pattern did not fire")
	}
	if got := inj.CorruptResult(isa.UnitIntALU, 0, in, 0x12AC); got != 0x12AC {
		t.Error("fault fired without trigger pattern")
	}
}

func TestDecodeCorruptionFields(t *testing.T) {
	base := isa.Inst{Op: isa.OpAdd, Rd: 4, Rs1: 6, Rs2: 8, Imm: 0}
	tests := []struct {
		field DecodeField
		check func(isa.Inst) bool
	}{
		{FieldRs1, func(i isa.Inst) bool { return i.Rs1 == 7 && i.Rs2 == 8 && i.Rd == 4 }},
		{FieldRs2, func(i isa.Inst) bool { return i.Rs2 == 9 }},
		{FieldRd, func(i isa.Inst) bool { return i.Rd == 5 }},
		{FieldImm, func(i isa.Inst) bool { return i.Imm == 1 }},
		{FieldOp, func(i isa.Inst) bool { return i.Op != isa.OpAdd && int(i.Op) < isa.NumOps }},
	}
	for _, tt := range tests {
		inj := &Injector{Sites: []Site{{Class: FrontendWay, Way: 2, Field: tt.field}}}
		got := inj.CorruptDecode(2, base)
		if !tt.check(got) {
			t.Errorf("field %d: corrupted to %+v", tt.field, got)
		}
		if same := inj.CorruptDecode(1, base); same != base {
			t.Errorf("field %d: healthy way corrupted", tt.field)
		}
	}
}

func TestDecodeCorruptionDeterministic(t *testing.T) {
	inj := &Injector{Sites: []Site{{Class: FrontendWay, Way: 0, Field: FieldRs2}}}
	in := isa.Inst{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}
	a := inj.CorruptDecode(0, in)
	b := inj.CorruptDecode(0, in)
	if a != b {
		t.Error("hard fault must corrupt identically on every use")
	}
}

func TestPayloadSharedVsSplit(t *testing.T) {
	site := Site{Class: PayloadRAM, Slot: 3, Thread: 0, Field: FieldImm, BitMask: 4}
	in := isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 2, Imm: 0}

	shared := &Injector{Sites: []Site{site}}
	if got := shared.CorruptPayload(3, 1, in); got == in {
		t.Error("shared payload RAM must corrupt both threads")
	}
	if got := shared.CorruptPayload(2, 0, in); got != in {
		t.Error("other slot corrupted")
	}

	split := &Injector{Sites: []Site{site}, SplitPayload: true}
	if got := split.CorruptPayload(3, 1, in); got != in {
		t.Error("split payload RAM must not corrupt the other thread")
	}
	if got := split.CorruptPayload(3, 0, in); got == in {
		t.Error("split payload RAM must corrupt its own thread")
	}
}

func TestBranchAndAddrCorruption(t *testing.T) {
	inj := &Injector{Sites: []Site{
		{Class: BackendWay, Unit: isa.UnitIntALU, Way: 2, FlipBranch: true},
		{Class: BackendWay, Unit: isa.UnitMem, Way: 1, CorruptAddr: true, BitMask: 1},
	}}
	if !inj.CorruptBranch(isa.UnitIntALU, 2, false) {
		t.Error("branch direction not flipped")
	}
	if inj.CorruptBranch(isa.UnitIntALU, 1, false) {
		t.Error("healthy way branch flipped")
	}
	if got := inj.CorruptAddr(isa.UnitMem, 1, 64); got != 64^8 {
		t.Errorf("addr = %d, want %d", got, 64^8)
	}
	if got := inj.CorruptAddr(isa.UnitMem, 0, 64); got != 64 {
		t.Error("healthy port address corrupted")
	}
	// A value-corrupting site must not fire on the addr/branch paths.
	inj2 := &Injector{Sites: []Site{{Class: BackendWay, Unit: isa.UnitMem, Way: 0, BitMask: 2}}}
	if got := inj2.CorruptAddr(isa.UnitMem, 0, 64); got != 64 {
		t.Error("value site corrupted an address")
	}
}

func TestRegisterFileCorruption(t *testing.T) {
	inj := &Injector{Sites: []Site{{Class: RegisterFile, Reg: 9, BitMask: 1 << 40}}}
	if got := inj.CorruptRegRead(9, 5); got != 5^(1<<40) {
		t.Errorf("read = %d", got)
	}
	if got := inj.CorruptRegRead(10, 5); got != 5 {
		t.Error("healthy register corrupted")
	}
}

func TestZeroMaskDefaultsToBitZero(t *testing.T) {
	inj := &Injector{Sites: []Site{{Class: RegisterFile, Reg: 1}}}
	if got := inj.CorruptRegRead(1, 0); got != 1 {
		t.Errorf("zero mask: got %d, want 1", got)
	}
}

func TestTransientFiresExactlyOnce(t *testing.T) {
	inj := &Injector{Sites: []Site{{
		Class: BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1, Transient: true,
	}}}
	in := isa.Inst{Op: isa.OpAdd}
	if got := inj.CorruptResult(isa.UnitIntALU, 0, in, 10); got != 11 {
		t.Errorf("first use = %d, want corrupted 11", got)
	}
	for i := 0; i < 5; i++ {
		if got := inj.CorruptResult(isa.UnitIntALU, 0, in, 10); got != 10 {
			t.Errorf("use %d corrupted after transient fired", i+2)
		}
	}
	if inj.Activations() != 1 {
		t.Errorf("activations = %d, want 1", inj.Activations())
	}
}

func TestTransientFireAtSelectsUse(t *testing.T) {
	inj := &Injector{Sites: []Site{{
		Class: RegisterFile, Reg: 3, BitMask: 4, Transient: true, FireAt: 3,
	}}}
	for i := 1; i <= 5; i++ {
		got := inj.CorruptRegRead(3, 100)
		want := uint64(100)
		if i == 3 {
			want = 96 // 100 XOR 4
		}
		if got != want {
			t.Errorf("use %d = %d, want %d", i, got, want)
		}
	}
}

func TestTransientDecodeOneShot(t *testing.T) {
	inj := &Injector{Sites: []Site{{
		Class: FrontendWay, Way: 1, Field: FieldRs2, Transient: true,
	}}}
	in := isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 4}
	if got := inj.CorruptDecode(1, in); got == in {
		t.Error("first decode not corrupted")
	}
	if got := inj.CorruptDecode(1, in); got != in {
		t.Error("second decode corrupted after transient fired")
	}
}

func TestArmAtDormantThenPersistent(t *testing.T) {
	inj := &Injector{Sites: []Site{{
		Class: BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1, ArmAt: 3,
	}}}
	in := isa.Inst{Op: isa.OpAdd}
	for i := 1; i <= 6; i++ {
		got := inj.CorruptResult(isa.UnitIntALU, 0, in, 10)
		want := uint64(10)
		if i >= 3 {
			want = 11 // armed: corrupts this and every later use
		}
		if got != want {
			t.Errorf("use %d = %d, want %d", i, got, want)
		}
	}
	if inj.Activations() != 4 {
		t.Errorf("activations = %d, want 4", inj.Activations())
	}
}

func TestArmAtSeededUses(t *testing.T) {
	// A forked/fast-forwarded injector seeded with the pristine-use count is
	// already one use from arming: it must corrupt the very next eligible use.
	inj := &Injector{Sites: []Site{{Class: RegisterFile, Reg: 5, BitMask: 2, ArmAt: 100}}}
	inj.SeedUses([]uint64{99})
	if got := inj.CorruptRegRead(5, 8); got != 10 {
		t.Errorf("seeded use = %d, want armed 10", got)
	}
}

func TestProbeCountsArmAtFirstFire(t *testing.T) {
	sites := []Site{{Class: RegisterFile, Reg: 7, BitMask: 1, ArmAt: 4}}
	now := int64(0)
	pr := &Probe{Sites: sites, Now: func() int64 { return now }}
	for now = 1; now <= 6; now++ {
		pr.CorruptRegRead(7, 42)
	}
	if fc := pr.FireCycle(0); fc != 4 {
		t.Errorf("probe fire cycle = %d, want 4 (the arming use)", fc)
	}
	if uses := pr.UsesSnapshot(); uses[0] != 6 {
		t.Errorf("probe uses = %d, want 6", uses[0])
	}
	// And the probe never mutated the value stream.
	if got := pr.CorruptRegRead(7, 42); got != 42 {
		t.Errorf("probe mutated value: %d", got)
	}
}
