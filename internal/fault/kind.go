package fault

import (
	"fmt"
	"math/bits"

	"blackjack/internal/isa"
)

// Kind is the fault-model taxonomy: how a site behaves over time, as opposed
// to Class, which says where it lives. The zero value is KindPermanent, so
// every site built before the taxonomy existed keeps its meaning.
type Kind uint8

// Fault kinds.
const (
	// KindPermanent is the paper's hard fault: the defect corrupts every
	// eligible use, forever (optionally dormant until ArmAt).
	KindPermanent Kind = iota
	// KindTransient is a one-shot soft error: exactly one eligible use is
	// corrupted (the FireAt-th) and the fault then disappears. Equivalent to
	// the legacy Site.Transient flag.
	KindTransient
	// KindIntermittent is a duty-cycled defect (marginal circuit, thermal or
	// voltage sensitivity): the site cycles through on/off windows of
	// DutyPeriod eligible uses, corrupting only the first DutyOn uses of each
	// period, each thinned by an activation probability derived
	// deterministically from the site's identity.
	KindIntermittent
	// KindMultiBit is a permanent defect spanning several bits: an arbitrary
	// flip mask (BitMask with more than one bit) or a stuck-at pattern
	// (StuckMask/StuckValue) instead of a single-bit flip.
	KindMultiBit
	// KindControlFlow is a control-flow error: the site corrupts branch
	// targets (or, with FlipBranch, directions) computed on one backend way,
	// steering the pipeline's redirect points to wrong paths.
	KindControlFlow

	NumKinds
)

var kindNames = [NumKinds]string{
	KindPermanent:    "permanent",
	KindTransient:    "transient",
	KindIntermittent: "intermittent",
	KindMultiBit:     "multi-bit",
	KindControlFlow:  "control-flow",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds lists every fault kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind resolves a kind name as accepted by the CLIs' -fault-kind flag.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want permanent, transient, intermittent, multi-bit or control-flow)", name)
}

// kind resolves the site's effective kind: an explicit Kind wins, the legacy
// Transient flag maps to KindTransient, everything else is permanent.
func (s *Site) kind() Kind {
	if s.Kind != KindPermanent {
		return s.Kind
	}
	if s.Transient {
		return KindTransient
	}
	return KindPermanent
}

// EffectiveKind exposes the resolved kind (explicit Kind, or KindTransient
// via the legacy Transient flag) for reporting.
func (s Site) EffectiveKind() Kind { return s.kind() }

// counted reports whether the site's firing decision depends on the running
// eligible-use count. Permanent (and armed-from-birth) sites skip the counter
// entirely — the hot-path fast path.
func (s *Site) counted() bool {
	switch s.kind() {
	case KindTransient, KindIntermittent:
		return true
	}
	return s.ArmAt > 0
}

// firesAt decides whether the n-th eligible use (1-based) is corrupted. It is
// the single source of truth for firing semantics: Injector.fires and
// Probe.fires both delegate here, so the probe can never drift from the
// injector.
func (s *Site) firesAt(n uint64) bool {
	switch s.kind() {
	case KindTransient:
		at := s.FireAt
		if at == 0 {
			at = 1
		}
		return n == at
	case KindIntermittent:
		return s.dutyFires(n)
	}
	if s.ArmAt > 0 {
		return n >= s.ArmAt
	}
	return true
}

// dutyFires implements the intermittent window math: use n (1-based) lands in
// the on-window when its offset within the period is below DutyOn, then the
// activation probability thins the window with a per-use deterministic draw.
func (s *Site) dutyFires(n uint64) bool {
	period := s.DutyPeriod
	if period == 0 {
		period = 1
	}
	on := s.DutyOn
	if on == 0 {
		on = period
	}
	if (n-1)%period >= on {
		return false
	}
	prob := uint64(s.DutyProb)
	if prob == 0 || prob >= 100 {
		return true
	}
	return mix64(s.identitySeed()^n)%100 < prob
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
// The intermittent activation draw must be deterministic at any worker count
// and across cold/forked runs, so it is pure arithmetic on the site identity
// and the use index — no global RNG, no clock.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// identitySeed derives the intermittent probability seed from the site's
// coordinates, so two sites with the same duty parameters on different
// resources still draw independent activation patterns.
func (s *Site) identitySeed() uint64 {
	h := uint64(s.Class) | uint64(s.Unit)<<8 |
		uint64(uint32(s.Way))<<16 | uint64(uint32(s.Slot))<<24 | uint64(uint32(s.Thread))<<48
	h = mix64(h ^ uint64(s.Reg))
	h = mix64(h ^ s.BitMask)
	h = mix64(h ^ s.DutyPeriod ^ s.DutyOn<<32)
	return h
}

// FFEligible reports whether the site's classification survives the
// approximate handoff of functional fast-forward. One-shot transients,
// intermittents (whose duty windows are indexed by exact eligible-use
// counts) and control-flow errors (whose outcome depends on the speculative
// wrong-path state the handoff cannot reconstruct) are timing-sensitive and
// must stay on bit-exact cold/fork paths; permanent and multi-bit defects
// corrupt every use and are robust to handoff timing.
func (s Site) FFEligible() bool {
	switch s.kind() {
	case KindTransient, KindIntermittent, KindControlFlow:
		return false
	}
	return true
}

// SiteError is the typed rejection of a contradictory or malformed Site,
// returned by Validate and surfaced at campaign admission.
type SiteError struct {
	Site   Site
	Reason string
}

func (e *SiteError) Error() string {
	return fmt.Sprintf("fault: invalid site {%v}: %s", e.Site, e.Reason)
}

func (s Site) invalid(reason string) error { return &SiteError{Site: s, Reason: reason} }

// Validate rejects contradictory field combinations with a typed *SiteError.
// Campaign admission (sim.InjectProgram, sim.NewCampaignPlan,
// sim.CampaignProgram) calls it on every site, so a malformed site fails the
// whole campaign up front instead of silently meaning something else.
func (s Site) Validate() error {
	if s.Class >= NumClasses {
		return s.invalid("unknown class")
	}
	if s.Kind >= NumKinds {
		return s.invalid("unknown kind")
	}
	if s.Field >= NumDecodeFields {
		return s.invalid("unknown decode field")
	}
	if s.Transient && s.Kind != KindPermanent && s.Kind != KindTransient {
		return s.invalid("Transient flag contradicts Kind")
	}
	kind := s.kind()
	if s.Transient && s.ArmAt > 0 {
		return s.invalid("Transient and ArmAt are mutually exclusive (FireAt selects a transient's shot)")
	}
	if s.FireAt > 0 && kind != KindTransient {
		return s.invalid("FireAt requires a transient site")
	}
	if kind == KindIntermittent {
		if s.DutyPeriod == 0 {
			return s.invalid("intermittent site needs DutyPeriod >= 1")
		}
		if s.DutyOn == 0 || s.DutyOn > s.DutyPeriod {
			return s.invalid("DutyOn must be in [1, DutyPeriod]")
		}
		if s.ArmAt > 0 {
			return s.invalid("ArmAt is not supported on intermittent sites")
		}
	} else if s.DutyPeriod != 0 || s.DutyOn != 0 || s.DutyProb != 0 {
		return s.invalid("duty-cycle fields require KindIntermittent")
	}
	if s.DutyProb > 100 {
		return s.invalid("DutyProb is a percentage (0-100)")
	}
	if s.StuckMask == 0 && s.StuckValue != 0 {
		return s.invalid("StuckValue without StuckMask")
	}
	if s.StuckMask != 0 && s.StuckValue&^s.StuckMask != 0 {
		return s.invalid("StuckValue has bits outside StuckMask")
	}
	if (s.FlipBranch || s.CorruptAddr) && s.Class != BackendWay {
		return s.invalid("FlipBranch/CorruptAddr require a backend-way site")
	}
	if s.FlipBranch && s.CorruptAddr {
		return s.invalid("FlipBranch and CorruptAddr are mutually exclusive")
	}
	switch kind {
	case KindMultiBit:
		if bits.OnesCount64(s.BitMask) < 2 && bits.OnesCount64(s.StuckMask) < 2 {
			return s.invalid("multi-bit site needs a flip or stuck mask with at least two bits")
		}
		if (s.Class == FrontendWay || s.Class == PayloadRAM) && s.Field != FieldImm {
			return s.invalid("multi-bit decode corruption works through FieldImm only")
		}
		if s.FlipBranch {
			return s.invalid("FlipBranch on a multi-bit site is a control-flow error; use KindControlFlow")
		}
	case KindControlFlow:
		if s.Class != BackendWay {
			return s.invalid("control-flow site must live on a backend way")
		}
		if s.Unit != isa.UnitIntALU {
			return s.invalid("control-flow site must live on a branch-capable way (branches execute on intALU)")
		}
		if s.CorruptAddr {
			return s.invalid("CorruptAddr contradicts a control-flow site")
		}
		if s.StuckMask != 0 {
			return s.invalid("stuck-at masks do not apply to branch targets")
		}
	}
	return nil
}

// ValidateSites validates every site of a campaign list, annotating the
// failing index.
func ValidateSites(sites []Site) error {
	for i, s := range sites {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("site %d: %w", i, err)
		}
	}
	return nil
}
