// Package rename provides register-renaming building blocks: the physical
// register file (values plus ready-cycle timestamps), the free list, and
// mapping tables. The pipeline composes these per SMT context; the BlackJack
// core additionally uses a Map indexed by *leading physical register* for the
// trailing thread's double rename (Section 4.3.1 of the paper) and a second
// program-order Map for the commit-time dependence check (Section 4.4).
package rename

import (
	"fmt"
	"math"

	"blackjack/internal/queues"
)

// PhysReg names a physical register.
type PhysReg uint16

// None is the absent physical register (unmapped / no destination).
const None PhysReg = math.MaxUint16

// FarFuture is a ready-cycle meaning "value not yet available".
const FarFuture int64 = math.MaxInt64

// RegFile is a physical register file with per-register value and
// availability cycle. Construct with NewRegFile.
type RegFile struct {
	vals    []uint64
	readyAt []int64
}

// NewRegFile builds a file of n physical registers, all holding zero and
// immediately ready (cycle 0).
func NewRegFile(n int) *RegFile {
	if n <= 0 {
		panic(fmt.Sprintf("rename: invalid register file size %d", n))
	}
	return &RegFile{vals: make([]uint64, n), readyAt: make([]int64, n)}
}

// Size returns the number of physical registers.
func (f *RegFile) Size() int { return len(f.vals) }

// Value returns the value of p.
func (f *RegFile) Value(p PhysReg) uint64 { return f.vals[p] }

// SetValue writes p's value.
func (f *RegFile) SetValue(p PhysReg, v uint64) { f.vals[p] = v }

// ReadyAt returns the cycle at which p's value is (or becomes) available.
func (f *RegFile) ReadyAt(p PhysReg) int64 { return f.readyAt[p] }

// SetReadyAt sets the availability cycle for p.
func (f *RegFile) SetReadyAt(p PhysReg, cycle int64) { f.readyAt[p] = cycle }

// MarkPending marks p as awaiting a producer.
func (f *RegFile) MarkPending(p PhysReg) { f.readyAt[p] = FarFuture }

// Ready reports whether p's value is available at the given cycle.
func (f *RegFile) Ready(p PhysReg, cycle int64) bool { return f.readyAt[p] <= cycle }

// Clone returns an independent deep copy of the register file.
func (f *RegFile) Clone() *RegFile {
	c := &RegFile{vals: make([]uint64, len(f.vals)), readyAt: make([]int64, len(f.readyAt))}
	copy(c.vals, f.vals)
	copy(c.readyAt, f.readyAt)
	return c
}

// FreeList hands out physical registers.
type FreeList struct {
	ring *queues.Ring[PhysReg]
	// free tracks membership when checking is enabled, turning double frees
	// into immediate panics instead of downstream corruption.
	free map[PhysReg]bool
}

// NewFreeList builds a free list containing regs [first, first+count).
func NewFreeList(first PhysReg, count int) *FreeList {
	fl := &FreeList{ring: queues.NewRing[PhysReg](count)}
	for i := 0; i < count; i++ {
		fl.ring.Push(first + PhysReg(i))
	}
	return fl
}

// EnableChecking turns on double-free detection (used by tests and
// diagnostics; costs one map operation per Alloc/Free).
func (fl *FreeList) EnableChecking() {
	fl.free = make(map[PhysReg]bool, fl.ring.Len())
	for i := 0; i < fl.ring.Len(); i++ {
		fl.free[fl.ring.At(i)] = true
	}
}

// Len returns the number of free registers.
func (fl *FreeList) Len() int { return fl.ring.Len() }

// Alloc removes and returns a free register; ok is false when exhausted.
func (fl *FreeList) Alloc() (PhysReg, bool) {
	p, ok := fl.ring.Pop()
	if ok && fl.free != nil {
		delete(fl.free, p)
	}
	return p, ok
}

// Free returns p to the list. It panics if the list would overflow, which
// indicates a double-free bug in the caller (and, with checking enabled, on
// any double free).
func (fl *FreeList) Free(p PhysReg) {
	if fl.free != nil {
		if fl.free[p] {
			panic(fmt.Sprintf("rename: double free of physical register %d", p))
		}
		fl.free[p] = true
	}
	if !fl.ring.Push(p) {
		panic("rename: free list overflow (double free)")
	}
}

// Clone returns an independent deep copy of the free list, preserving the
// hand-out order (allocation order is architecturally visible: physical
// register names flow into the DTQ and the double-rename table).
func (fl *FreeList) Clone() *FreeList {
	c := &FreeList{ring: fl.ring.Clone()}
	if fl.free != nil {
		c.free = make(map[PhysReg]bool, len(fl.free))
		for p, v := range fl.free {
			c.free[p] = v
		}
	}
	return c
}

// Snapshot returns the registers currently on the free list, oldest first.
// Intended for diagnostics and invariant-checking tests.
func (fl *FreeList) Snapshot() []PhysReg {
	out := make([]PhysReg, 0, fl.ring.Len())
	for i := 0; i < fl.ring.Len(); i++ {
		out = append(out, fl.ring.At(i))
	}
	return out
}

// Map is a mapping table from an index space (architectural registers, or
// leading physical registers for BlackJack's double rename) to physical
// registers.
type Map struct {
	entries []PhysReg
}

// NewMap builds a table of n entries, all None.
func NewMap(n int) *Map {
	m := &Map{entries: make([]PhysReg, n)}
	for i := range m.entries {
		m.entries[i] = None
	}
	return m
}

// Size returns the number of entries.
func (m *Map) Size() int { return len(m.entries) }

// Get returns the mapping for index i.
func (m *Map) Get(i int) PhysReg { return m.entries[i] }

// Set updates the mapping for index i and returns the previous mapping.
func (m *Map) Set(i int, p PhysReg) (old PhysReg) {
	old = m.entries[i]
	m.entries[i] = p
	return old
}

// Clone returns an independent copy of the table.
func (m *Map) Clone() *Map {
	c := &Map{entries: make([]PhysReg, len(m.entries))}
	copy(c.entries, m.entries)
	return c
}

// Reset sets every entry to None.
func (m *Map) Reset() {
	for i := range m.entries {
		m.entries[i] = None
	}
}
