package rename

import "testing"

func TestRegFileValuesAndReadiness(t *testing.T) {
	f := NewRegFile(8)
	if f.Size() != 8 {
		t.Fatalf("size = %d, want 8", f.Size())
	}
	p := PhysReg(3)
	if !f.Ready(p, 0) {
		t.Error("fresh register should be ready at cycle 0")
	}
	f.MarkPending(p)
	if f.Ready(p, 1<<40) {
		t.Error("pending register should not be ready")
	}
	f.SetValue(p, 99)
	f.SetReadyAt(p, 10)
	if f.Ready(p, 9) {
		t.Error("register ready before its ready cycle")
	}
	if !f.Ready(p, 10) {
		t.Error("register not ready at its ready cycle")
	}
	if f.Value(p) != 99 {
		t.Errorf("value = %d, want 99", f.Value(p))
	}
}

func TestFreeListAllocFree(t *testing.T) {
	fl := NewFreeList(10, 3)
	if fl.Len() != 3 {
		t.Fatalf("len = %d, want 3", fl.Len())
	}
	var got []PhysReg
	for {
		p, ok := fl.Alloc()
		if !ok {
			break
		}
		got = append(got, p)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Errorf("allocated %v, want [10 11 12]", got)
	}
	fl.Free(11)
	p, ok := fl.Alloc()
	if !ok || p != 11 {
		t.Errorf("realloc = (%d,%v), want (11,true)", p, ok)
	}
}

func TestFreeListDoubleFreePanics(t *testing.T) {
	fl := NewFreeList(0, 2)
	defer func() {
		if recover() == nil {
			t.Error("overflow Free did not panic")
		}
	}()
	fl.Free(5) // list already full
}

func TestMapSetGetReset(t *testing.T) {
	m := NewMap(4)
	for i := 0; i < 4; i++ {
		if m.Get(i) != None {
			t.Errorf("fresh map entry %d = %d, want None", i, m.Get(i))
		}
	}
	if old := m.Set(2, 7); old != None {
		t.Errorf("first Set returned %d, want None", old)
	}
	if old := m.Set(2, 9); old != 7 {
		t.Errorf("second Set returned %d, want 7", old)
	}
	if m.Get(2) != 9 {
		t.Errorf("Get(2) = %d, want 9", m.Get(2))
	}
	m.Reset()
	if m.Get(2) != None {
		t.Error("Reset did not clear entries")
	}
}

func TestRegFilePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRegFile(0) did not panic")
		}
	}()
	NewRegFile(0)
}

func TestFreeListSnapshot(t *testing.T) {
	fl := NewFreeList(5, 3)
	snap := fl.Snapshot()
	if len(snap) != 3 || snap[0] != 5 || snap[2] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
	fl.Alloc()
	if got := fl.Snapshot(); len(got) != 2 || got[0] != 6 {
		t.Errorf("snapshot after alloc = %v", got)
	}
}

func TestFreeListCheckingCatchesDoubleFree(t *testing.T) {
	fl := NewFreeList(0, 4)
	fl.EnableChecking()
	p, _ := fl.Alloc()
	q, _ := fl.Alloc()
	fl.Free(p)
	fl.Free(q) // fine
	p2, _ := fl.Alloc()
	_ = p2
	defer func() {
		if recover() == nil {
			t.Error("double free not caught with checking enabled")
		}
	}()
	fl.Free(q) // q is already free: double free
}

func TestFreeListCheckingAllowsNormalCycles(t *testing.T) {
	fl := NewFreeList(0, 2)
	fl.EnableChecking()
	for i := 0; i < 10; i++ {
		p, ok := fl.Alloc()
		if !ok {
			t.Fatal("alloc failed")
		}
		fl.Free(p)
	}
}

func TestRegFileSize(t *testing.T) {
	if got := NewRegFile(7).Size(); got != 7 {
		t.Errorf("Size = %d", got)
	}
}

func TestMapSize(t *testing.T) {
	if got := NewMap(9).Size(); got != 9 {
		t.Errorf("Size = %d", got)
	}
}
