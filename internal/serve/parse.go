package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Parse decodes a job spec from YAML or JSON, rejects unknown fields with a
// typed *SpecError naming the nearest valid field, normalizes defaults, and
// validates. The format is sniffed from the payload (a '{' prefix means
// JSON) unless contentType says otherwise.
func Parse(data []byte, contentType string) (*Spec, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, &SpecError{Field: "(body)", Reason: "empty job spec"}
	}
	isJSON := strings.Contains(contentType, "json") ||
		(!strings.Contains(contentType, "yaml") && trimmed[0] == '{')
	var m map[string]any
	if isJSON {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.UseNumber()
		if err := dec.Decode(&m); err != nil {
			return nil, &SpecError{Field: "(body)", Reason: "invalid JSON: " + err.Error()}
		}
	} else {
		var err error
		if m, err = parseYAML(trimmed); err != nil {
			return nil, err
		}
	}
	return specFromMap(m)
}

// specFromMap is the shared admission path for both formats: unknown-field
// detection with suggestions, then a strict decode into Spec, then
// Normalize + Validate.
func specFromMap(m map[string]any) (*Spec, error) {
	known := map[string]bool{}
	for _, f := range specFields {
		known[f] = true
	}
	for k := range m {
		if !known[k] {
			return nil, &SpecError{Field: k, Reason: "unknown field",
				Suggestion: nearestField(k, specFields)}
		}
	}
	// Round-trip through JSON so YAML scalars and json.Numbers land in the
	// typed struct through one code path.
	buf, err := json.Marshal(m)
	if err != nil {
		return nil, &SpecError{Field: "(body)", Reason: err.Error()}
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(buf))
	if err := dec.Decode(&s); err != nil {
		var te *json.UnmarshalTypeError
		if errors.As(err, &te) {
			return nil, &SpecError{Field: te.Field, Value: te.Value,
				Reason: fmt.Sprintf("cannot decode %s into %s", te.Value, te.Type)}
		}
		return nil, &SpecError{Field: "(body)", Reason: err.Error()}
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
