package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
)

// maxSpecBytes bounds request bodies: a job spec is a page of YAML, so
// anything larger is rejected before it touches memory proportional to the
// client's appetite.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /api/v1/jobs              submit a spec (YAML or JSON body)
//	GET  /api/v1/jobs              list jobs
//	GET  /api/v1/jobs/{id}         one job's state
//	GET  /api/v1/jobs/{id}/events  progress stream: NDJSON, or SSE when
//	                               Accept: text/event-stream; ?after=N
//	                               resumes past sequence N; ?wait=false
//	                               returns the buffered events and closes
//	GET  /api/v1/jobs/{id}/result  the rendered outcome table (byte-equal
//	                               to the batch CLI's stdout)
//	GET  /metrics                  serve.* registry as text; JSON with
//	                               Accept: application/json
//	GET  /healthz                  liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON is the uniform response encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(body) > maxSpecBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			map[string]string{"error": fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes)})
		return
	}
	spec, err := Parse(body, r.Header.Get("Content-Type"))
	if err != nil {
		var se *SpecError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": se.Error(), "spec_error": se})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	j, retryAfter, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrOverCapacity):
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error":       err.Error(),
			"retry_after": retryAfter.String(),
		})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusCreated, j)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	if j.State != StateDone {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job is %s, result exists once done", j.State)})
		return
	}
	buf, err := os.ReadFile(filepath.Join(jobDir(s.opts.StateDir, id), "result.txt"))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf)
}

// handleEvents streams a job's progress. NDJSON by default; SSE ("data:"
// frames with event sequence IDs) when the client asks for
// text/event-stream. The stream replays buffered events past ?after=N,
// then follows live until the job reaches a terminal state or the client
// disconnects. ?wait=false turns it into a non-blocking catch-up read.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h := s.hub(id)
	if h == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad after: " + err.Error()})
			return
		}
		after = n
	}
	// SSE reconnects resume via Last-Event-ID without client-side state.
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > after {
			after = n
		}
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	emit := func(e Event) error {
		var err error
		if sse {
			var buf []byte
			if buf, err = json.Marshal(e); err == nil {
				_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, buf)
			}
		} else {
			err = json.NewEncoder(w).Encode(e)
		}
		if flusher != nil {
			flusher.Flush()
		}
		return err
	}
	if r.URL.Query().Get("wait") == "false" {
		for _, e := range h.snapshot(after) {
			if emit(e) != nil {
				return
			}
		}
		return
	}
	for {
		e, ok := h.nextCtx(r.Context(), after)
		if !ok {
			return
		}
		if emit(e) != nil {
			return
		}
		after = e.Seq
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.Metrics()
	if r.Header.Get("Accept") == "application/json" {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	reg.WriteText(w)
}
