package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseJSONSpec(t *testing.T) {
	spec, err := Parse([]byte(`{
		"type": "campaign",
		"benchmark": "gcc",
		"mode": "srt",
		"instructions": 12000,
		"fault_kind": "transient",
		"tenant": "alice",
		"weight": 3,
		"deadline": "90s",
		"seed": 18446744073709551615
	}`), "application/json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Benchmark != "gcc" || spec.Mode != "srt" || spec.Instructions != 12000 {
		t.Errorf("core fields: %+v", spec)
	}
	if spec.Tenant != "alice" || spec.Weight != 3 {
		t.Errorf("tenant fields: %+v", spec)
	}
	if time.Duration(spec.Deadline) != 90*time.Second {
		t.Errorf("deadline = %v", time.Duration(spec.Deadline))
	}
	if spec.Seed != 18446744073709551615 {
		t.Errorf("uint64 seed lost precision: %d", spec.Seed)
	}
}

func TestParseYAMLSpec(t *testing.T) {
	spec, err := Parse([]byte(`
# a sweep over two benchmarks and two variants
type: sweep
benchmarks: [gzip, gcc]   # flow list
modes:                    # block list
  - srt
  - blackjack
instructions: 8000
deadline: "3m"
cache: verify
`), "application/yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := strings.Join(spec.Benchmarks, ","); got != "gzip,gcc" {
		t.Errorf("benchmarks = %q", got)
	}
	if got := strings.Join(spec.Modes, ","); got != "srt,blackjack" {
		t.Errorf("modes = %q", got)
	}
	if time.Duration(spec.Deadline) != 3*time.Minute {
		t.Errorf("deadline = %v", time.Duration(spec.Deadline))
	}
	if spec.Cache != "verify" || spec.CacheVerify != 0.1 {
		t.Errorf("cache policy: %q verify=%g", spec.Cache, spec.CacheVerify)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := Parse([]byte(`{}`), "application/json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Type != JobCampaign || spec.Tenant != "default" || spec.Weight != 1 {
		t.Errorf("defaults: %+v", spec)
	}
	if spec.Benchmark == "" || spec.Mode != "blackjack" || spec.Instructions != 30_000 {
		t.Errorf("campaign defaults: %+v", spec)
	}
}

// Unknown fields are rejected with a typed error naming the nearest valid
// field — the admission contract for fat-fingered specs.
func TestUnknownFieldSuggestion(t *testing.T) {
	cases := []struct{ body, field, want string }{
		{`{"benchmrak": "gcc"}`, "benchmrak", "benchmark"},
		{`{"fault_kin": "transient"}`, "fault_kin", "fault_kind"},
		{`bnechmark: gcc`, "bnechmark", "benchmark"},
		{`{"run_timeot": "5s"}`, "run_timeot", "run_timeout"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.body), "")
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("%s: err = %v, want *SpecError", c.body, err)
		}
		if se.Field != c.field || se.Suggestion != c.want {
			t.Errorf("%s: got field=%q suggestion=%q, want %q/%q", c.body, se.Field, se.Suggestion, c.field, c.want)
		}
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct{ body, field string }{
		{`{"benchmark": "gzp"}`, "benchmark"},
		{`{"mode": "blakjack"}`, "mode"},
		{`{"fault_kind": "permanant"}`, "fault_kind"},
		{`{"sites": "latent", "fault_kind": "transient"}`, "sites"},
		{`{"sites": "laten"}`, "sites"},
		{`{"type": "campain"}`, "type"},
		{`{"cache": "maybe"}`, "cache"},
		{`{"cache_verify": 1.5}`, "cache_verify"},
		{`{"weight": 5000}`, "weight"},
		{`{"retries": 99}`, "retries"},
		{`{"type": "fuzz", "variant": "blackjak"}`, "variant"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.body), "application/json")
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("%s: err = %v, want *SpecError", c.body, err)
		}
		if se.Field != c.field {
			t.Errorf("%s: flagged field %q, want %q (err: %v)", c.body, se.Field, c.field, err)
		}
	}
}

func TestSpecErrorMessageNamesFieldAndSuggestion(t *testing.T) {
	_, err := Parse([]byte(`{"mode": "blackjac"}`), "application/json")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{`"mode"`, `"blackjac"`, `did you mean "blackjack"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func TestYAMLRejectsNesting(t *testing.T) {
	_, err := Parse([]byte("campaign:\n  benchmark: gcc"), "application/yaml")
	var se *SpecError
	if !errors.As(err, &se) || !strings.Contains(se.Reason, "nested") {
		t.Fatalf("err = %v, want nested-mapping rejection", err)
	}
}

func TestYAMLTypeMismatchIsTyped(t *testing.T) {
	_, err := Parse([]byte(`{"weight": "heavy"}`), "application/json")
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SpecError", err)
	}
	if se.Field != "weight" {
		t.Errorf("field = %q, want weight", se.Field)
	}
}
