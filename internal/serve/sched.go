package serve

import "sort"

// scheduler is a weighted stride scheduler over tenants: each tenant keeps
// a FIFO of queued jobs and a pass value; dispatch always picks the live
// tenant with the smallest pass, then advances that pass by stride/weight.
// A weight-2 tenant therefore drains twice as fast as a weight-1 tenant
// under contention, and no backlog — however deep — can starve another
// tenant: every dispatch from the deep queue advances its pass past the
// shallow one's.
//
// Ties break on tenant name, so dispatch order is deterministic for tests
// and for post-crash replays. The scheduler is not goroutine-safe; the
// server serializes access under its mutex.
type scheduler struct {
	tenants map[string]*tenantQueue
	depth   int // total queued jobs across tenants
}

// strideUnit is the numerator of pass increments. Large enough that
// stride/weight stays meaningfully distinct across the weight range [1,1000].
const strideUnit = 1 << 20

type tenantQueue struct {
	name string
	jobs []*Job
	pass uint64
}

func newScheduler() *scheduler {
	return &scheduler{tenants: map[string]*tenantQueue{}}
}

// push enqueues a job for its tenant. A tenant returning from idle restarts
// at the current minimum pass, so idle time is not banked as a burst
// entitlement (standard stride-scheduling practice).
func (s *scheduler) push(j *Job) {
	tq := s.tenants[j.Spec.Tenant]
	if tq == nil {
		tq = &tenantQueue{name: j.Spec.Tenant}
		s.tenants[j.Spec.Tenant] = tq
	}
	if len(tq.jobs) == 0 {
		if minPass, ok := s.minLivePass(); ok && tq.pass < minPass {
			tq.pass = minPass
		}
	}
	tq.jobs = append(tq.jobs, j)
	s.depth++
}

// pop dispatches the next job: lowest pass among tenants with queued work,
// tenant name as the deterministic tie-break, FIFO within the tenant.
func (s *scheduler) pop() *Job {
	var pick *tenantQueue
	for _, name := range s.sortedTenants() {
		tq := s.tenants[name]
		if len(tq.jobs) == 0 {
			continue
		}
		if pick == nil || tq.pass < pick.pass {
			pick = tq
		}
	}
	if pick == nil {
		return nil
	}
	j := pick.jobs[0]
	pick.jobs = pick.jobs[1:]
	pick.pass += strideUnit / uint64(j.Spec.Weight)
	s.depth--
	return j
}

// remove deletes a queued job by ID (used when a client cancels before
// dispatch). It reports whether the job was found.
func (s *scheduler) remove(id string) bool {
	for _, tq := range s.tenants {
		for i, j := range tq.jobs {
			if j.ID == id {
				tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
				s.depth--
				return true
			}
		}
	}
	return false
}

// minLivePass is the smallest pass among tenants that currently have work.
func (s *scheduler) minLivePass() (uint64, bool) {
	var minPass uint64
	found := false
	for _, tq := range s.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		if !found || tq.pass < minPass {
			minPass, found = tq.pass, true
		}
	}
	return minPass, found
}

func (s *scheduler) sortedTenants() []string {
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
