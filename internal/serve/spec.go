// Package serve turns the batch simulation harness into a long-running,
// crash-safe campaign service. It accepts declarative campaign/sweep/fuzz
// job specs (YAML or JSON), validates them on admission with typed
// field-level errors, runs them on a bounded executor whose per-job fan-out
// is the same internal/parallel pool the CLIs use, and streams progress as
// NDJSON/SSE events sourced from the journal records each job writes.
//
// Robustness is the package's contract, not a feature:
//
//   - Admission control: the queue is bounded; over-capacity submissions are
//     rejected with 429 and a Retry-After hint instead of growing without
//     bound.
//   - Fairness: a weighted stride scheduler interleaves tenants, so one
//     tenant's large sweep cannot starve another's small campaign.
//   - Resilience: every job runs under the harness Resilience envelope
//     (per-run isolation, escalating retry budgets, stall watchdog) plus a
//     per-job deadline; transient job failures are requeued with exponential
//     backoff, deterministic ones are quarantined.
//   - Crash safety: each job persists as a journal-backed state machine
//     (queued → running → draining → done/failed/quarantined) under the
//     state directory, and run journals fsync every record in service mode.
//     SIGKILL mid-campaign loses nothing: restart resumes every incomplete
//     job at any worker count and completed work is never re-simulated.
//
// Output parity: a job's rendered outcome table is byte-identical to the
// stdout of the equivalent batch CLI invocation, whatever mixture of live
// execution, journal replay, and cache hits produced it.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"blackjack"
)

// JobType selects a job's execution shape.
type JobType string

const (
	// JobCampaign is one fault-injection campaign: benchmark × mode ×
	// site list, one run per site.
	JobCampaign JobType = "campaign"
	// JobSweep is a grid of campaigns (benchmarks × modes); each cell
	// journals independently, so a sweep resumes at cell-and-run
	// granularity.
	JobSweep JobType = "sweep"
	// JobFuzz is a differential-fuzzing session over n random programs.
	JobFuzz JobType = "fuzz"
)

// Spec is the declarative job description clients submit. Zero values mean
// "harness default"; Normalize resolves them. The wire names (json tags) are
// the spec language — Parse rejects unknown fields with a typed error that
// names the nearest valid field.
type Spec struct {
	// Name is an optional display label; it never affects execution.
	Name string `json:"name"`
	// Tenant is the fairness bucket the job is charged to.
	Tenant string `json:"tenant"`
	// Weight is the tenant's fair-share weight for this job (>= 1); a
	// weight-2 tenant drains twice as fast as a weight-1 tenant under
	// contention.
	Weight int `json:"weight"`
	// Type is the job shape: campaign, sweep, or fuzz.
	Type JobType `json:"type"`

	// Benchmark names the workload for campaign and fuzz jobs.
	Benchmark string `json:"benchmark"`
	// Benchmarks lists the sweep grid's workloads (sweep jobs only).
	Benchmarks []string `json:"benchmarks"`
	// Mode is the machine variant for campaign jobs.
	Mode string `json:"mode"`
	// Modes lists the sweep grid's variants (sweep jobs only).
	Modes []string `json:"modes"`
	// Instructions is the committed-instruction budget per run.
	Instructions int `json:"instructions"`

	// FaultKind selects the fault model for campaign/sweep jobs:
	// permanent, transient, intermittent, multi-bit, control-flow.
	FaultKind string `json:"fault_kind"`
	// Sites selects the campaign site list: standard or latent.
	Sites string `json:"sites"`

	// Programs is the fuzz session's program count.
	Programs int `json:"programs"`
	// Seed derives every fuzz program deterministically.
	Seed uint64 `json:"seed"`
	// Variant restricts a fuzz session to one pipeline variant (empty:
	// all five).
	Variant string `json:"variant"`

	// Parallel is the per-job worker fan-out (0 = server default).
	// Results are identical at any value.
	Parallel int `json:"parallel"`
	// Deadline bounds the job's wall-clock time per attempt, e.g. "3m".
	// An exceeded deadline requeues the job with exponential backoff.
	Deadline Duration `json:"deadline"`
	// Retries is the job-level requeue budget for transient failures.
	Retries int `json:"retries"`
	// RunTimeout is the per-run wall-clock budget inside the job.
	RunTimeout Duration `json:"run_timeout"`
	// RunRetries re-runs a failing injection with doubling budgets before
	// quarantining it (the PR-5 Resilience envelope).
	RunRetries int `json:"run_retries"`

	// Cache is the run-cache policy: "on" (default), "off", or "verify"
	// (serve hits but re-execute a sample and fail on divergence).
	Cache string `json:"cache"`
	// CacheVerify is the verified fraction of cache hits under
	// cache: verify (0 defaults to 0.1).
	CacheVerify float64 `json:"cache_verify"`
}

// Duration is a time.Duration that unmarshals from Go duration strings
// ("90s", "3m") or bare numbers (nanoseconds) and marshals as a string.
type Duration time.Duration

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", time.Duration(d))), nil
}

// UnmarshalJSON accepts "3m" / "90s" strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if strings.HasPrefix(s, "\"") {
		v, err := time.ParseDuration(strings.Trim(s, "\""))
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if _, err := fmt.Sscanf(s, "%d", &ns); err != nil {
		return fmt.Errorf("bad duration %s", s)
	}
	*d = Duration(ns)
	return nil
}

// SpecError is a typed, field-addressed admission failure. Every invalid
// spec reports the offending field by its wire name, the rejected value,
// why, and (for unknown fields) the nearest valid name.
type SpecError struct {
	// Field is the wire name of the offending field ("fault_kind"), or
	// the unknown name as submitted.
	Field string `json:"field"`
	// Value is the rejected value rendered as text (empty for unknown
	// fields).
	Value string `json:"value,omitempty"`
	// Reason says what was wrong.
	Reason string `json:"reason"`
	// Suggestion is the nearest valid field or value name, when one is
	// close enough to be worth proposing.
	Suggestion string `json:"suggestion,omitempty"`
}

func (e *SpecError) Error() string {
	msg := fmt.Sprintf("spec: field %q: %s", e.Field, e.Reason)
	if e.Value != "" {
		msg = fmt.Sprintf("spec: field %q = %q: %s", e.Field, e.Value, e.Reason)
	}
	if e.Suggestion != "" {
		msg += fmt.Sprintf(" (did you mean %q?)", e.Suggestion)
	}
	return msg
}

// specFields is the authoritative wire-name list, used for unknown-field
// detection and nearest-name suggestions.
var specFields = []string{
	"name", "tenant", "weight", "type",
	"benchmark", "benchmarks", "mode", "modes", "instructions",
	"fault_kind", "sites",
	"programs", "seed", "variant",
	"parallel", "deadline", "retries", "run_timeout", "run_retries",
	"cache", "cache_verify",
}

// nearestField returns the closest known field to name, or "" when nothing
// is close enough (edit distance more than half the name's length).
func nearestField(name string, fields []string) string {
	best, bestDist := "", len(name)/2+1
	for _, f := range fields {
		if d := editDistance(name, f); d < bestDist {
			best, bestDist = f, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short ASCII names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Normalize fills harness defaults into zero-valued fields. It does not
// validate; Validate runs on the normalized spec.
func (s *Spec) Normalize() {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.Type == "" {
		s.Type = JobCampaign
	}
	if s.Benchmark == "" && s.Type != JobSweep {
		s.Benchmark = "gzip"
	}
	if s.Mode == "" {
		s.Mode = "blackjack"
	}
	if s.Instructions <= 0 {
		s.Instructions = 30_000
	}
	if s.FaultKind == "" {
		s.FaultKind = "permanent"
	}
	if s.Sites == "" {
		s.Sites = "standard"
	}
	if s.Type == JobSweep {
		if len(s.Benchmarks) == 0 {
			if s.Benchmark != "" {
				s.Benchmarks = []string{s.Benchmark}
			} else {
				s.Benchmarks = []string{"gzip"}
			}
		}
		if len(s.Modes) == 0 {
			s.Modes = []string{s.Mode}
		}
	}
	if s.Type == JobFuzz && s.Programs <= 0 {
		s.Programs = 100
	}
	if s.Type == JobFuzz && s.Seed == 0 {
		s.Seed = 1
	}
	if s.Cache == "" {
		s.Cache = "on"
	}
	if s.Cache == "verify" && s.CacheVerify <= 0 {
		s.CacheVerify = 0.1
	}
}

// Validate checks the normalized spec against the harness vocabulary and
// returns the first violation as a typed *SpecError.
func (s *Spec) Validate() error {
	switch s.Type {
	case JobCampaign, JobSweep, JobFuzz:
	default:
		return &SpecError{Field: "type", Value: string(s.Type),
			Reason:     "unknown job type (want campaign, sweep, or fuzz)",
			Suggestion: nearestField(string(s.Type), []string{"campaign", "sweep", "fuzz"})}
	}
	benches := blackjack.Benchmarks()
	checkBench := func(field, name string) error {
		for _, b := range benches {
			if b == name {
				return nil
			}
		}
		return &SpecError{Field: field, Value: name, Reason: "unknown benchmark",
			Suggestion: nearestField(name, benches)}
	}
	switch s.Type {
	case JobSweep:
		for _, b := range s.Benchmarks {
			if err := checkBench("benchmarks", b); err != nil {
				return err
			}
		}
		for _, m := range s.Modes {
			if _, err := blackjack.ParseMode(m); err != nil {
				return &SpecError{Field: "modes", Value: m, Reason: "unknown machine mode",
					Suggestion: nearestField(m, modeNames())}
			}
		}
	default:
		if err := checkBench("benchmark", s.Benchmark); err != nil {
			return err
		}
		if _, err := blackjack.ParseMode(s.Mode); err != nil {
			return &SpecError{Field: "mode", Value: s.Mode, Reason: "unknown machine mode",
				Suggestion: nearestField(s.Mode, modeNames())}
		}
	}
	kind, err := blackjack.ParseFaultKind(s.FaultKind)
	if err != nil {
		return &SpecError{Field: "fault_kind", Value: s.FaultKind, Reason: "unknown fault kind",
			Suggestion: nearestField(s.FaultKind, faultKindNames())}
	}
	switch s.Sites {
	case "standard":
	case "latent":
		if kind != blackjack.FaultKindPermanent {
			return &SpecError{Field: "sites", Value: "latent",
				Reason: fmt.Sprintf("the latent campaign models permanent defects (fault_kind %q is incompatible)", s.FaultKind)}
		}
	default:
		return &SpecError{Field: "sites", Value: s.Sites, Reason: "unknown site list (want standard or latent)",
			Suggestion: nearestField(s.Sites, []string{"standard", "latent"})}
	}
	if s.Type == JobFuzz && s.Variant != "" {
		valid := []string{"single", "srt", "blackjack-ns", "blackjack", "blackjack+merge"}
		ok := false
		for _, v := range valid {
			if v == s.Variant {
				ok = true
			}
		}
		if !ok {
			return &SpecError{Field: "variant", Value: s.Variant, Reason: "unknown fuzz variant",
				Suggestion: nearestField(s.Variant, valid)}
		}
	}
	switch s.Cache {
	case "on", "off", "verify":
	default:
		return &SpecError{Field: "cache", Value: s.Cache, Reason: "unknown cache policy (want on, off, or verify)",
			Suggestion: nearestField(s.Cache, []string{"on", "off", "verify"})}
	}
	if s.CacheVerify < 0 || s.CacheVerify > 1 {
		return &SpecError{Field: "cache_verify", Value: fmt.Sprintf("%g", s.CacheVerify),
			Reason: "verification fraction must be in [0,1]"}
	}
	if s.Weight > 1_000 {
		return &SpecError{Field: "weight", Value: fmt.Sprint(s.Weight),
			Reason: "fair-share weight must be in [1,1000]"}
	}
	if s.Retries < 0 || s.Retries > 16 {
		return &SpecError{Field: "retries", Value: fmt.Sprint(s.Retries),
			Reason: "job requeue budget must be in [0,16]"}
	}
	if s.RunRetries < 0 || s.RunRetries > 16 {
		return &SpecError{Field: "run_retries", Value: fmt.Sprint(s.RunRetries),
			Reason: "per-run retry budget must be in [0,16]"}
	}
	if d := time.Duration(s.Deadline); d < 0 {
		return &SpecError{Field: "deadline", Value: d.String(), Reason: "deadline cannot be negative"}
	}
	if d := time.Duration(s.RunTimeout); d < 0 {
		return &SpecError{Field: "run_timeout", Value: d.String(), Reason: "run timeout cannot be negative"}
	}
	return nil
}

func modeNames() []string {
	return []string{"single", "srt", "blackjack-ns", "blackjack"}
}

func faultKindNames() []string {
	kinds := blackjack.FaultKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	sort.Strings(names)
	return names
}
