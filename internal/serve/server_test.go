package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blackjack"
)

// newTestServer builds a server over a temp state dir. Caches are off by
// default so tests exercise live execution; crash tests exercise journals.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.StateDir == "" {
		opts.StateDir = t.TempDir()
	}
	if opts.RunParallel == 0 {
		opts.RunParallel = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// submit posts a spec body and decodes the created job.
func submit(t *testing.T, ts *httptest.Server, body string) Job {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST status %d: %v", resp.StatusCode, e)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return j
}

// waitState polls until the job reaches want (or any terminal state).
func waitState(t *testing.T, s *Server, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State == want {
			return j
		}
		if j.State.terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, j.State, j.Detail, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	j, _ := s.Job(id)
	t.Fatalf("timeout: job %s is %s, want %s", id, j.State, want)
	return Job{}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return resp.StatusCode, sb.String()
}

// The headline robustness contract minus the crash: a campaign submitted
// over HTTP produces exactly the bytes the batch path renders.
func TestServedCampaignTableMatchesBatch(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submit(t, ts, `{"benchmark": "gzip", "mode": "blackjack", "instructions": 3000, "sites": "latent", "cache": "off"}`)
	waitState(t, s, j.ID, StateDone)

	status, got := getBody(t, ts.URL+"/api/v1/jobs/"+j.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result status %d", status)
	}

	// Reference: the batch path (what bjfault prints for the same work).
	cfg := blackjack.DefaultConfig(blackjack.ModeBlackJack, 3000)
	cfg.Parallel = 2
	cfg.Resilience = blackjack.Resilience{Isolate: true, StallAfter: 30 * time.Second}
	sites := blackjack.LatentFaultSites(cfg.Machine)
	sum, err := blackjack.Campaign(cfg, "gzip", sites, blackjack.InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatalf("batch campaign: %v", err)
	}
	var want strings.Builder
	if err := blackjack.WriteCampaignTable(&want, cfg.Mode, "gzip", sum); err != nil {
		t.Fatalf("render: %v", err)
	}
	if got != want.String() {
		t.Errorf("served table differs from batch:\n--- served ---\n%s--- batch ---\n%s", got, want.String())
	}

	done, _ := s.Job(j.ID)
	if done.Done != len(sites) || done.Total != len(sites) {
		t.Errorf("progress counters: done=%d total=%d, want %d", done.Done, done.Total, len(sites))
	}
}

// A sweep is the concatenation of its cells' tables in grid order.
func TestSweepConcatenatesCellTables(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submit(t, ts, `{"type": "sweep", "benchmarks": ["gzip"], "modes": ["srt", "blackjack"], "instructions": 2000, "sites": "latent", "cache": "off"}`)
	waitState(t, s, j.ID, StateDone)
	_, got := getBody(t, ts.URL+"/api/v1/jobs/"+j.ID+"/result")
	for _, header := range []string{`== srt on "gzip": 16 sites ==`, `== blackjack on "gzip": 16 sites ==`} {
		if !strings.Contains(got, header) {
			t.Errorf("sweep result missing %q:\n%s", header, got)
		}
	}
	if srt, bj := strings.Index(got, "== srt"), strings.Index(got, "== blackjack"); srt > bj {
		t.Errorf("cells out of grid order")
	}
}

// Over-capacity submissions get 429 + Retry-After, never unbounded queue
// growth.
func TestAdmissionControl429(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueCap: 2})
	// No Start: jobs stay queued, so capacity fills deterministically.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"benchmark": "gzip", "instructions": 1000}`
	submit(t, ts, spec)
	submit(t, ts, spec)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive estimate", ra)
	}
	reg := s.Metrics()
	if reg.CounterValue("serve.jobs.rejected") != 1 {
		t.Errorf("serve.jobs.rejected = %d, want 1", reg.CounterValue("serve.jobs.rejected"))
	}
	if reg.CounterValue("serve.jobs.admitted") != 2 {
		t.Errorf("serve.jobs.admitted = %d, want 2", reg.CounterValue("serve.jobs.admitted"))
	}
	if reg.GaugeValue("serve.queue.depth") != 2 {
		t.Errorf("serve.queue.depth = %g, want 2", reg.GaugeValue("serve.queue.depth"))
	}
}

// Two tenants, one flooding: the weighted fair scheduler interleaves, so
// the second tenant's jobs complete long before the flood drains, and the
// per-tenant completed-run metrics account for every run.
func TestTwoTenantFairness(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueCap: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Flood from alice first, then two jobs from bob — all before Start,
	// so dispatch order is purely the scheduler's.
	var aliceIDs, bobIDs []string
	for i := 0; i < 6; i++ {
		j := submit(t, ts, `{"tenant": "alice", "benchmark": "gzip", "instructions": 1500, "sites": "latent", "cache": "off"}`)
		aliceIDs = append(aliceIDs, j.ID)
	}
	for i := 0; i < 2; i++ {
		j := submit(t, ts, `{"tenant": "bob", "benchmark": "gzip", "instructions": 1500, "sites": "latent", "cache": "off"}`)
		bobIDs = append(bobIDs, j.ID)
	}
	s.Start()
	defer s.Drain(context.Background())

	for _, id := range append(append([]string{}, aliceIDs...), bobIDs...) {
		waitState(t, s, id, StateDone)
	}
	// bob's last job must have finished before alice's backlog: with 1:1
	// interleave his 2nd job is dispatch #4 of 8, so at least alice's two
	// final jobs settle after it.
	bobLast, _ := s.Job(bobIDs[1])
	after := 0
	for _, id := range aliceIDs {
		j, _ := s.Job(id)
		if j.Updated.After(bobLast.Updated) {
			after++
		}
	}
	if after < 2 {
		t.Errorf("fairness: only %d alice jobs completed after bob's last; flood starved bob", after)
	}

	reg := s.Metrics()
	runsPerJob := uint64(16)
	if got := reg.CounterValue("serve.tenant.alice.runs"); got != 6*runsPerJob {
		t.Errorf("serve.tenant.alice.runs = %d, want %d", got, 6*runsPerJob)
	}
	if got := reg.CounterValue("serve.tenant.bob.runs"); got != 2*runsPerJob {
		t.Errorf("serve.tenant.bob.runs = %d, want %d", got, 2*runsPerJob)
	}
	if got := reg.CounterValue("serve.tenant.bob.jobs_completed"); got != 2 {
		t.Errorf("serve.tenant.bob.jobs_completed = %d, want 2", got)
	}
}

// The NDJSON event stream carries every run and the terminal transition.
func TestEventStreamNDJSON(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submit(t, ts, `{"benchmark": "gzip", "instructions": 1500, "sites": "latent", "cache": "off"}`)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var runs int
	var sawDone bool
	lastSeq := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("sequence not monotonic: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case "run":
			runs++
			if e.Site == "" || e.Outcome == "" || e.Served == "" {
				t.Errorf("run event missing fields: %+v", e)
			}
		case "state":
			if e.State == StateDone {
				sawDone = true
			}
		}
	}
	if runs != 16 {
		t.Errorf("streamed %d run events, want 16", runs)
	}
	if !sawDone {
		t.Error("stream ended without a done transition")
	}
}

// SSE framing: data: lines with event IDs, on request.
func TestEventStreamSSE(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submit(t, ts, `{"benchmark": "gzip", "instructions": 1000, "sites": "latent", "cache": "off"}`)
	waitState(t, s, j.ID, StateDone)

	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/jobs/"+j.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	_, body := getBodyFromResp(t, resp)
	if !strings.Contains(body, "id: 1\n") || !strings.Contains(body, "data: {") {
		t.Errorf("not SSE-framed:\n%s", body[:min(len(body), 400)])
	}
}

func getBodyFromResp(t *testing.T, resp *http.Response) (int, string) {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return resp.StatusCode, sb.String()
}

// A job whose deadline keeps expiring is requeued with backoff until the
// budget runs out, then fails with the attempt history in its detail.
func TestDeadlineRequeueThenFail(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, RequeueBase: 10 * time.Millisecond})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 1ns deadline: every attempt exceeds it immediately.
	j := submit(t, ts, `{"benchmark": "gzip", "instructions": 200000, "deadline": 1, "retries": 2, "cache": "off"}`)
	deadline := time.Now().Add(30 * time.Second)
	var final Job
	for time.Now().Before(deadline) {
		final, _ = s.Job(j.ID)
		if final.State.terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %s (%s), want failed", final.State, final.Detail)
	}
	if final.Attempt != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 requeues)", final.Attempt)
	}
	if !strings.Contains(final.Detail, "deadline exceeded") {
		t.Errorf("detail = %q", final.Detail)
	}
	if got := s.Metrics().CounterValue("serve.jobs.requeues"); got != 2 {
		t.Errorf("serve.jobs.requeues = %d, want 2", got)
	}
}

// Draining rejects new work with 503 and leaves incomplete jobs resumable.
func TestDrainStopsAdmission(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts, `{"benchmark": "gzip", "instructions": 1000}`)
	if n := s.Drain(context.Background()); n != 1 {
		t.Errorf("Drain reported %d incomplete, want 1 (job never started)", n)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "gzip"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

// A restart after drain resumes the queued job and completes it.
func TestRestartResumesQueuedJob(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{StateDir: dir, Workers: 1})
	ts1 := httptest.NewServer(s1.Handler())
	j := submit(t, ts1, `{"benchmark": "gzip", "instructions": 1500, "sites": "latent", "cache": "off"}`)
	ts1.Close()
	s1.Drain(context.Background()) // job still queued: Start was never called

	s2 := newTestServer(t, Options{StateDir: dir, Workers: 2})
	s2.Start()
	defer s2.Drain(context.Background())
	got, ok := s2.Job(j.ID)
	if !ok {
		t.Fatalf("restart lost job %s", j.ID)
	}
	if got.State != StateQueued {
		t.Fatalf("restarted job state = %s, want queued", got.State)
	}
	waitState(t, s2, j.ID, StateDone)
}

// Typed spec errors surface through the API with the suggestion attached.
func TestSubmitRejectsBadSpecWithSuggestion(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"benchmrak": "gcc"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error     string     `json:"error"`
		SpecError *SpecError `json:"spec_error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.SpecError == nil || body.SpecError.Field != "benchmrak" || body.SpecError.Suggestion != "benchmark" {
		t.Errorf("spec_error = %+v", body.SpecError)
	}
}

// A fuzz job runs, journals, and renders the bjfuzz summary lines.
func TestFuzzJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submit(t, ts, `{"type": "fuzz", "programs": 6, "instructions": 2000, "seed": 7}`)
	waitState(t, s, j.ID, StateDone)
	_, got := getBody(t, ts.URL+"/api/v1/jobs/"+j.ID+"/result")
	if !strings.Contains(got, "bjfuzz: 6 programs,") {
		t.Errorf("fuzz result missing summary:\n%s", got)
	}
	if !strings.Contains(got, "zero oracle divergences") {
		t.Errorf("fuzz result missing verdict:\n%s", got)
	}
	done, _ := s.Job(j.ID)
	if done.Done != 6 {
		t.Errorf("fuzz progress done = %d, want 6", done.Done)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submit(t, ts, `{"benchmark": "gzip"}`)

	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	for _, want := range []string{"serve.jobs.admitted", "serve.queue.depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics text missing %s:\n%s", want, body)
		}
	}
}
