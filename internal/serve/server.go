package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"blackjack"
	"blackjack/internal/obs"
)

// Options configures a Server. The zero value is usable for tests: jobs run
// in a temp-style state dir the caller supplies, with two executor slots
// and a 64-job queue.
type Options struct {
	// StateDir is the durable root: specs, state journals, run journals,
	// and rendered results all live under it. Required.
	StateDir string
	// Workers is the number of executor slots — jobs running
	// concurrently. Each job's internal fan-out is its own Parallel
	// setting. <= 0 selects 2.
	Workers int
	// QueueCap bounds the admission queue (queued jobs across tenants).
	// Submissions beyond it are rejected with ErrOverCapacity (HTTP 429).
	// <= 0 selects 64.
	QueueCap int
	// RunParallel is the default per-job worker fan-out when the spec
	// leaves parallel at 0 (<= 0 keeps the harness NumCPU default).
	RunParallel int
	// CacheDir attaches the content-addressable run cache ("" disables).
	CacheDir string
	// DefaultDeadline bounds each job attempt when the spec has no
	// deadline (0 = unbounded attempts).
	DefaultDeadline time.Duration
	// RequeueBase is the exponential-backoff base for requeues after a
	// deadline or transient failure: base << attempt. <= 0 selects 1s.
	RequeueBase time.Duration
	// StallAfter is the per-job watchdog threshold passed into the
	// Resilience envelope (<= 0 selects 30s).
	StallAfter time.Duration
}

// ErrOverCapacity is returned by Submit when the admission queue is full.
// The HTTP layer translates it into 429 with a Retry-After hint.
var ErrOverCapacity = errors.New("serve: queue at capacity")

// ErrDraining is returned by Submit once shutdown has begun (HTTP 503).
var ErrDraining = errors.New("serve: server is draining")

// Server is the campaign service: admission control, weighted-fair
// scheduling, a bounded executor, durable job state, and event fan-out.
// Create with New, start the executor with Start, stop with Drain.
type Server struct {
	opts  Options
	cache *blackjack.RunCache

	mu       sync.Mutex
	jobs     map[string]*Job
	hubs     map[string]*hub
	sched    *scheduler
	seq      int
	draining bool
	metrics  *obs.Registry // obs.Registry is not goroutine-safe; mu guards it

	rootCtx context.Context
	cancel  context.CancelFunc
	wake    chan struct{}
	wg      sync.WaitGroup
	timers  map[*time.Timer]struct{} // pending requeue backoffs
}

// New loads the state directory and recovers every persisted job: terminal
// jobs become queryable history, incomplete ones (queued, running, or
// draining at crash time) are requeued — their run journals make the replay
// free. No goroutines start until Start.
func New(opts Options) (*Server, error) {
	if opts.StateDir == "" {
		return nil, errors.New("serve: Options.StateDir is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.RequeueBase <= 0 {
		opts.RequeueBase = time.Second
	}
	if opts.StallAfter <= 0 {
		opts.StallAfter = 30 * time.Second
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		jobs:    map[string]*Job{},
		hubs:    map[string]*hub{},
		sched:   newScheduler(),
		metrics: obs.NewRegistry(),
		wake:    make(chan struct{}, 1),
		timers:  map[*time.Timer]struct{}{},
	}
	s.rootCtx, s.cancel = context.WithCancel(context.Background())
	if opts.CacheDir != "" {
		c, err := blackjack.OpenRunCache(opts.CacheDir, 0)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	jobs, err := loadJobs(opts.StateDir)
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if n := parseSeq(j.ID); n > s.seq {
			s.seq = n
		}
		s.jobs[j.ID] = j
		s.hubs[j.ID] = newHub()
		if j.State.terminal() {
			s.hubs[j.ID].close()
			continue
		}
		// queued, running, or draining at crash/drain time: requeue. The
		// run journal replays completed work, so nothing is lost.
		if j.State != StateQueued {
			s.transitionLocked(j, StateQueued, "resumed after restart")
		}
		s.sched.push(j)
	}
	s.metrics.Gauge("serve.queue.depth").Set(float64(s.sched.depth))
	return s, nil
}

// parseSeq extracts the numeric sequence from a job ID ("j000042" → 42).
func parseSeq(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

// Start launches the executor slots. Call once.
func (s *Server) Start() {
	for w := 0; w < s.opts.Workers; w++ {
		s.wg.Add(1)
		go s.executorLoop()
	}
}

// Submit admits one parsed spec: capacity check, durable persist, enqueue.
// It returns the new job and, on ErrOverCapacity, a Retry-After estimate.
func (s *Server) Submit(spec *Spec) (*Job, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 0, ErrDraining
	}
	if s.sched.depth >= s.opts.QueueCap {
		s.metrics.Counter("serve.jobs.rejected").Inc()
		return nil, s.retryAfterLocked(), ErrOverCapacity
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now(),
		Updated:   time.Now(),
	}
	dir := jobDir(s.opts.StateDir, j.ID)
	if err := persistSpec(dir, spec); err != nil {
		return nil, 0, err
	}
	s.jobs[j.ID] = j
	s.hubs[j.ID] = newHub()
	s.transitionLocked(j, StateQueued, "")
	s.sched.push(j)
	s.metrics.Counter("serve.jobs.admitted").Inc()
	s.metrics.Counter("serve.tenant." + spec.Tenant + ".jobs").Inc()
	s.metrics.Gauge("serve.queue.depth").Set(float64(s.sched.depth))
	s.wakeup()
	return j, 0, nil
}

// retryAfterLocked estimates when capacity frees up: the queue ahead of the
// caller divided across executor slots, floored at one second.
func (s *Server) retryAfterLocked() time.Duration {
	est := time.Duration(s.sched.depth/s.opts.Workers+1) * time.Second
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}

// Job returns a copy of one job's current view (ok=false when unknown).
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs lists every known job, sorted by ID (admission order).
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, id := range sortedJobIDs(s.jobs) {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Metrics copies the serve.* registry (plus run-cache counters when a cache
// is attached) into a fresh registry the caller may read without locking.
func (s *Server) Metrics() *obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := obs.NewRegistry()
	out.Merge(s.metrics)
	if s.cache != nil {
		s.cache.Export(out)
	}
	return out
}

// hub returns a job's event hub (nil when the job is unknown).
func (s *Server) hub(id string) *hub {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hubs[id]
}

// transitionLocked durably appends a state change and publishes it as an
// event. The caller holds s.mu.
func (s *Server) transitionLocked(j *Job, st State, detail string) {
	now := time.Now()
	j.State, j.Detail, j.Updated = st, detail, now
	if j.Submitted.IsZero() {
		j.Submitted = now
	}
	t := Transition{State: st, At: now, Attempt: j.Attempt, Detail: detail}
	if err := appendTransition(jobDir(s.opts.StateDir, j.ID), t); err != nil {
		// The in-memory view stays authoritative for this process; the
		// event stream carries the persistence failure.
		s.hubs[j.ID].publish(Event{Job: j.ID, Kind: "log", At: now,
			Detail: "state persist failed: " + err.Error()})
	}
	s.hubs[j.ID].publish(Event{Job: j.ID, Kind: "state", At: now, State: st, Detail: detail})
	if st.terminal() {
		s.hubs[j.ID].close()
	}
}

func (s *Server) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// executorLoop is one executor slot: pop the fairest queued job, run it,
// repeat. It exits when the root context cancels (drain).
func (s *Server) executorLoop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		if !s.draining {
			j = s.sched.pop()
		}
		if j != nil {
			s.metrics.Gauge("serve.queue.depth").Set(float64(s.sched.depth))
		}
		s.mu.Unlock()
		if j == nil {
			select {
			case <-s.rootCtx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.runJob(j)
	}
}

// Drain performs the bounded graceful shutdown: stop admitting, cancel
// running jobs (their campaigns stop at the next run boundary and flush
// journals), wait for executor slots up to ctx's deadline, and report how
// many jobs remain incomplete (resumable on restart).
func (s *Server) Drain(ctx context.Context) int {
	s.mu.Lock()
	s.draining = true
	s.metrics.Counter("serve.drains").Inc()
	for t := range s.timers {
		t.Stop()
		delete(s.timers, t)
	}
	s.mu.Unlock()
	s.cancel()
	// Every slot re-checks rootCtx once its current job returns; wake any
	// idle ones.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return s.incomplete()
		case <-ctx.Done():
			return s.incomplete()
		case <-time.After(10 * time.Millisecond):
			s.wakeup()
		}
	}
}

// incomplete counts jobs that will resume on restart.
func (s *Server) incomplete() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if !j.State.terminal() {
			n++
		}
	}
	return n
}

func sortedJobIDs(m map[string]*Job) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	// IDs are zero-padded, so lexicographic order is admission order.
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
	return ids
}
