package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blackjack"
)

// TestMain lets this test binary double as a real bjserve process: the
// crash test re-executes itself with SERVE_CRASH_STATE set, SIGKILLs the
// child mid-campaign, restarts it, and proves the job completes with the
// batch-identical table. A true SIGKILL (not a cooperative cancel) is the
// point: nothing gets to flush on the way down.
func TestMain(m *testing.M) {
	if dir := os.Getenv("SERVE_CRASH_STATE"); dir != "" {
		crashServerMain(dir, os.Getenv("SERVE_CRASH_ADDRFILE"))
		return
	}
	os.Exit(m.Run())
}

// crashServerMain is the child: a minimal bjserve (one executor slot, no
// cache) that writes its listen address for the parent and serves until
// killed.
func crashServerMain(stateDir, addrFile string) {
	s, err := New(Options{StateDir: stateDir, Workers: 1, RunParallel: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash server:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash server:", err)
		os.Exit(1)
	}
	if err := atomicWrite(addrFile, []byte(ln.Addr().String())); err != nil {
		fmt.Fprintln(os.Stderr, "crash server:", err)
		os.Exit(1)
	}
	s.Start()
	if err := (&http.Server{Handler: s.Handler()}).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "crash server:", err)
		os.Exit(1)
	}
}

// spawnCrashServer starts the helper and waits for its address.
func spawnCrashServer(t *testing.T, stateDir string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"SERVE_CRASH_STATE="+stateDir,
		"SERVE_CRASH_ADDRFILE="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if buf, err := os.ReadFile(addrFile); err == nil && len(buf) > 0 {
			return cmd, string(buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("helper server never published its address")
	return nil, ""
}

// countRunEvents drains the non-blocking event feed and reports run events
// and how many were served from the journal.
func countRunEvents(t *testing.T, base, id string) (runs, fromJournal int) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/events?wait=false")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue
		}
		if e.Kind == "run" {
			runs++
			if e.Served == "journal" {
				fromJournal++
			}
		}
	}
	return runs, fromJournal
}

// The acceptance criterion, end to end: SIGKILL the server mid-campaign,
// restart on the same state dir, and the job completes with an outcome
// table byte-identical to an uninterrupted batch run — with the completed
// prefix replayed from the journal, not re-simulated.
func TestSIGKILLMidCampaignResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	stateDir := t.TempDir()
	cmd1, addr := spawnCrashServer(t, stateDir)
	base := "http://" + addr

	// A 16-site campaign big enough to be mid-flight when the kill lands.
	spec := `{"benchmark": "gzip", "mode": "blackjack", "instructions": 60000, "sites": "latent", "parallel": 2, "cache": "off"}`
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()

	// Wait until some runs completed (journal has a prefix), then SIGKILL.
	deadline := time.Now().Add(60 * time.Second)
	progressed := 0
	for time.Now().Before(deadline) {
		progressed, _ = countRunEvents(t, base, job.ID)
		if progressed >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if progressed < 2 {
		cmd1.Process.Kill()
		t.Fatalf("campaign never progressed (%d runs)", progressed)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no flush, no drain
		t.Fatalf("kill: %v", err)
	}
	cmd1.Wait()
	if progressed >= 16 {
		t.Logf("note: campaign finished before the kill (%d runs); resume still exercised via journal replay", progressed)
	}

	// Restart on the same state dir: the job must resume and complete.
	cmd2, addr2 := spawnCrashServer(t, stateDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	base = "http://" + addr2
	deadline = time.Now().Add(120 * time.Second)
	var got Job
	for time.Now().Before(deadline) {
		r, err := http.Get(base + "/api/v1/jobs/" + job.ID)
		if err == nil {
			json.NewDecoder(r.Body).Decode(&got)
			r.Body.Close()
			if got.State == StateDone {
				break
			}
			if got.State == StateFailed || got.State == StateQuarantined {
				t.Fatalf("job %s after restart: %s (%s)", job.ID, got.State, got.Detail)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got.State != StateDone {
		t.Fatalf("job did not complete after restart: %+v", got)
	}

	// Journal replay, not re-simulation, must have covered the prefix.
	runs, fromJournal := countRunEvents(t, base, job.ID)
	if runs != 16 {
		t.Errorf("restart streamed %d run events, want 16", runs)
	}
	if fromJournal == 0 {
		t.Error("no runs served from the journal after restart; the completed prefix was re-simulated or lost")
	}

	r, err := http.Get(base + "/api/v1/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	servedBytes := make([]byte, 0, 4096)
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		servedBytes = append(servedBytes, sc.Text()...)
		servedBytes = append(servedBytes, '\n')
	}
	r.Body.Close()

	// Reference: an uninterrupted batch run of exactly the same work.
	cfg := blackjack.DefaultConfig(blackjack.ModeBlackJack, 60000)
	cfg.Parallel = 2
	cfg.Resilience = blackjack.Resilience{Isolate: true, StallAfter: 30 * time.Second}
	sites := blackjack.LatentFaultSites(cfg.Machine)
	sum, err := blackjack.Campaign(cfg, "gzip", sites, blackjack.InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatalf("batch campaign: %v", err)
	}
	var want strings.Builder
	if err := blackjack.WriteCampaignTable(&want, cfg.Mode, "gzip", sum); err != nil {
		t.Fatalf("render: %v", err)
	}
	if string(servedBytes) != want.String() {
		t.Errorf("crash-resumed table differs from uninterrupted batch run:\n--- served ---\n%s--- batch ---\n%s",
			servedBytes, want.String())
	}
}

// Two servers on one state directory: the second must fail the job (journal
// flock), not interleave appends with the first. This drives the journal
// exclusivity satellite end to end.
func TestSecondServerCannotStealRunningJob(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{StateDir: dir, Workers: 1})
	s1.Start()
	defer s1.Drain(context.Background())
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	j := submit(t, ts1, `{"benchmark": "gzip", "instructions": 300000, "sites": "latent", "parallel": 1, "cache": "off"}`)

	// Wait until the first server holds the journal.
	journalPath := filepath.Join(jobDir(dir, j.ID), "runs.journal")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(journalPath); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A second server over the same state dir requeues the "running" job,
	// but its executor must hit the flock and fail the attempt rather than
	// corrupt the journal.
	s2 := newTestServer(t, Options{StateDir: dir, Workers: 1})
	s2.Start()
	defer s2.Drain(context.Background())
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j2, ok := s2.Job(j.ID)
		if ok && j2.State.terminal() {
			if j2.State == StateDone {
				t.Fatal("second server completed a job whose journal the first held")
			}
			if !strings.Contains(j2.Detail, "locked") {
				t.Errorf("failure detail %q does not surface the lock", j2.Detail)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("second server neither failed nor finished the contended job")
}
