package serve

import (
	"context"
	"sync"
	"time"
)

// Event is one NDJSON/SSE progress record. Run events are sourced from the
// same journal records that make jobs crash-resumable: every completed run
// — live, journal-replayed on resume, or cache-served — emits exactly one.
type Event struct {
	// Seq is the job-local sequence number (monotonic from 1); resumed
	// subscriptions pass the last seen Seq to continue without gaps.
	Seq int `json:"seq"`
	// Job is the owning job ID.
	Job string `json:"job"`
	// Kind is "state" (lifecycle transition), "run" (one completed
	// injection/program), or "log" (operational annotation).
	Kind string `json:"kind"`
	// At is the emission time.
	At time.Time `json:"at"`

	// State accompanies kind "state".
	State State `json:"state,omitempty"`

	// Index/Total/Site/Outcome/Served accompany kind "run".
	Index   int    `json:"index,omitempty"`
	Total   int    `json:"total,omitempty"`
	Site    string `json:"site,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	// Served says where the result came from: cold, warm, forked,
	// fast-forward (live execution paths), journal (resume replay), or
	// cache (run-cache hit).
	Served string `json:"served,omitempty"`

	// Detail carries free-form text for "log" and failure states.
	Detail string `json:"detail,omitempty"`
}

// eventBufferCap bounds each job's in-memory replay buffer. A 16-site
// campaign fits trivially; a 100k-program fuzz job keeps its most recent
// window and reports the overflow, so memory stays bounded per job.
const eventBufferCap = 4096

// hub is one job's event fan-out: an append-only capped buffer plus a
// condition variable. Subscribers replay the buffer from any sequence
// number and then block for new events, so a client that reconnects after
// a server restart resumes its stream mid-job.
type hub struct {
	mu      sync.Mutex
	cond    *sync.Cond
	events  []Event // most recent eventBufferCap events
	first   int     // Seq of events[0]
	nextSeq int
	dropped int
	closed  bool
}

func newHub() *hub {
	h := &hub{nextSeq: 1, first: 1}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// publish appends an event, stamping its sequence number.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	e.Seq = h.nextSeq
	h.nextSeq++
	h.events = append(h.events, e)
	if len(h.events) > eventBufferCap {
		over := len(h.events) - eventBufferCap
		h.events = h.events[over:]
		h.first += over
		h.dropped += over
	}
	h.cond.Broadcast()
}

// close wakes all subscribers; next returns ok=false once drained.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

// nextCtx blocks until an event with Seq > after exists, returning it, or
// until the hub closes with nothing further or the context cancels
// (ok=false) — a disconnected streaming client stops blocking as soon as
// its request context cancels. A subscriber that fell behind the buffer
// skips to the oldest retained event (the skip is visible as a sequence
// gap).
func (h *hub) nextCtx(ctx context.Context, after int) (Event, bool) {
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return Event{}, false
		}
		if after+1 < h.first {
			after = h.first - 1
		}
		if idx := after + 1 - h.first; idx < len(h.events) {
			return h.events[idx], true
		}
		if h.closed {
			return Event{}, false
		}
		h.cond.Wait()
	}
}

// snapshot returns the buffered events with Seq > after (for catch-up
// reads that must not block).
func (h *hub) snapshot(after int) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after+1 < h.first {
		after = h.first - 1
	}
	idx := after + 1 - h.first
	if idx >= len(h.events) {
		return nil
	}
	out := make([]Event, len(h.events)-idx)
	copy(out, h.events[idx:])
	return out
}
