package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// State is a job's position in its lifecycle. Transitions are append-only
// records in the job's state journal, so the last well-formed line is the
// truth after any crash.
type State string

const (
	// StateQueued: admitted, waiting for an executor slot.
	StateQueued State = "queued"
	// StateRunning: an executor slot is simulating the job's runs.
	StateRunning State = "running"
	// StateDraining: the server is shutting down and the job is being
	// checkpointed; on restart a draining job is requeued.
	StateDraining State = "draining"
	// StateDone: completed; the rendered outcome table is in result.txt.
	StateDone State = "done"
	// StateFailed: exhausted its requeue budget on transient failures, or
	// failed at execution in a way admission could not catch.
	StateFailed State = "failed"
	// StateQuarantined: failed deterministically (same error across
	// attempts with budget to spare) — retrying would waste capacity.
	StateQuarantined State = "quarantined"
)

// terminal reports whether a state ends the job's lifecycle.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateQuarantined
}

// Transition is one persisted state change.
type Transition struct {
	State State `json:"state"`
	// At is the wall-clock transition time (RFC3339Nano).
	At time.Time `json:"at"`
	// Attempt counts executor attempts (0 before the first run).
	Attempt int `json:"attempt"`
	// Detail carries the human-readable reason for failed / quarantined /
	// requeued transitions.
	Detail string `json:"detail,omitempty"`
}

// Job is the in-memory view of one persisted job.
type Job struct {
	ID     string `json:"id"`
	Spec   *Spec  `json:"spec"`
	State  State  `json:"state"`
	Detail string `json:"detail,omitempty"`
	// Attempt is the number of executor attempts so far.
	Attempt int `json:"attempt"`
	// Submitted is the admission time.
	Submitted time.Time `json:"submitted"`
	// Updated is the latest transition time.
	Updated time.Time `json:"updated"`
	// Done counts completed runs (journal-replayed, cached, or live).
	Done int `json:"done"`
	// Total is the job's run count (0 until first planned).
	Total int `json:"total"`
}

// jobDir is the job's slice of the state directory:
//
//	jobs/<id>/spec.json     the admitted spec (atomic write, immutable)
//	jobs/<id>/state.jsonl   append-only transition journal (fsync'd)
//	jobs/<id>/*.journal     campaign/fuzz run journals (crash-resumable)
//	jobs/<id>/result.txt    rendered outcome tables (atomic write)
func jobDir(stateDir, id string) string { return filepath.Join(stateDir, "jobs", id) }

// persistSpec writes the admitted spec once, atomically: temp file + rename
// so a crash never leaves a half-written spec.
func persistSpec(dir string, spec *Spec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "spec.json"), append(buf, '\n'))
}

// atomicWrite is temp + fsync + rename in the target's directory.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// appendTransition durably appends one state record to the job's state
// journal. Appends are fsync'd: after a SIGKILL the journal's last
// well-formed line is the job's true state, and a torn final line (crash
// mid-append) is ignored by loadTransitions.
func appendTransition(dir string, t Transition) error {
	f, err := os.OpenFile(filepath.Join(dir, "state.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	buf, err := json.Marshal(t)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(buf, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// loadTransitions reads a job's state journal, healing a torn tail: a final
// line without a newline or with invalid JSON (the crash wrote part of a
// record) is dropped rather than failing the load.
func loadTransitions(dir string) ([]Transition, error) {
	f, err := os.Open(filepath.Join(dir, "state.jsonl"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ts []Transition
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var t Transition
		if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
			break // torn or corrupt tail: everything before it is the truth
		}
		ts = append(ts, t)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return nil, err
	}
	return ts, nil
}

// loadJob reconstructs one job from its directory. Jobs whose spec is
// missing or unreadable are reported as errors; the caller decides whether
// to skip or surface them.
func loadJob(stateDir, id string) (*Job, error) {
	dir := jobDir(stateDir, id)
	buf, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("job %s: %w", id, err)
	}
	var spec Spec
	if err := json.Unmarshal(buf, &spec); err != nil {
		return nil, fmt.Errorf("job %s: corrupt spec: %w", id, err)
	}
	spec.Normalize()
	j := &Job{ID: id, Spec: &spec, State: StateQueued}
	ts, err := loadTransitions(dir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("job %s: %w", id, err)
	}
	for _, t := range ts {
		j.State, j.Attempt, j.Updated = t.State, t.Attempt, t.At
		if t.Detail != "" {
			j.Detail = t.Detail
		}
		if j.Submitted.IsZero() {
			j.Submitted = t.At
		}
	}
	return j, nil
}

// loadJobs scans the state directory for every persisted job, sorted by ID
// (IDs embed a monotonic sequence, so this is admission order).
func loadJobs(stateDir string) ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(stateDir, "jobs"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		j, err := loadJob(stateDir, e.Name())
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	return jobs, nil
}
