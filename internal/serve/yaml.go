package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// parseYAML decodes the YAML subset the job-spec language needs — a flat
// mapping of scalars and lists — without pulling in a YAML dependency:
//
//	type: campaign          # comments are stripped
//	benchmark: gcc
//	deadline: "3m"
//	benchmarks: [gzip, gcc] # flow-style list
//	modes:                  # block-style list
//	  - srt
//	  - blackjack
//
// Unquoted scalars get JSON-compatible type inference (bool, number,
// string); quoted scalars are always strings. Anything deeper (nested
// mappings, anchors, multi-line scalars) is rejected with a typed error —
// the spec language is deliberately flat.
func parseYAML(data []byte) (map[string]any, error) {
	m := map[string]any{}
	var listKey string // non-empty while consuming a block-style list
	for ln, raw := range strings.Split(string(data), "\n") {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		indented := line[0] == ' ' || line[0] == '\t'
		item, isItem := strings.CutPrefix(strings.TrimSpace(line), "- ")
		if trimmed := strings.TrimSpace(line); trimmed == "-" {
			item, isItem = "", true
		}
		if isItem {
			if listKey == "" || !indented {
				return nil, &SpecError{Field: "(body)",
					Reason: fmt.Sprintf("yaml line %d: list item outside a block list", ln+1)}
			}
			m[listKey] = append(m[listKey].([]any), inferScalar(item))
			continue
		}
		if indented {
			return nil, &SpecError{Field: "(body)",
				Reason: fmt.Sprintf("yaml line %d: nested mappings are not part of the spec language", ln+1)}
		}
		listKey = ""
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, &SpecError{Field: "(body)",
				Reason: fmt.Sprintf("yaml line %d: expected key: value", ln+1)}
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "" {
			return nil, &SpecError{Field: "(body)",
				Reason: fmt.Sprintf("yaml line %d: empty key", ln+1)}
		}
		switch {
		case val == "":
			// Either a block list follows, or the value is genuinely empty;
			// the empty list also decodes cleanly as an absent field.
			listKey = key
			m[key] = []any{}
		case strings.HasPrefix(val, "[") && strings.HasSuffix(val, "]"):
			var items []any
			inner := strings.TrimSpace(val[1 : len(val)-1])
			if inner != "" {
				for _, it := range strings.Split(inner, ",") {
					items = append(items, inferScalar(strings.TrimSpace(it)))
				}
			}
			m[key] = items
		default:
			m[key] = inferScalar(val)
		}
	}
	return m, nil
}

// stripComment removes a trailing "#..." comment, respecting quoted
// strings.
func stripComment(line string) string {
	inQuote := byte(0)
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case inQuote != 0 && c == inQuote:
			inQuote = 0
		case inQuote == 0 && (c == '"' || c == '\''):
			inQuote = c
		case inQuote == 0 && c == '#':
			return line[:i]
		}
	}
	return line
}

// inferScalar maps an unquoted YAML scalar onto the JSON value model:
// quoted text stays a string, true/false become bools, numerics become
// json.Number (preserving uint64 seeds exactly), everything else is a
// string.
func inferScalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null", "~":
		return nil
	}
	if _, err := strconv.ParseUint(s, 10, 64); err == nil {
		return json.Number(s)
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return json.Number(s)
	}
	return s
}
