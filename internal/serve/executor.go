package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"blackjack"
	"blackjack/internal/diffcheck"
)

// runJob executes one attempt of a job and settles its next state:
// done on success; queued (after exponential backoff) on deadline or
// transient failure with requeue budget left; quarantined when the failure
// is deterministic; failed otherwise; draining when the server is shutting
// down (resumable on restart).
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	prevDetail := j.Detail
	j.Attempt++
	j.Done = 0 // progress counters restart; journal replays re-count instantly
	s.transitionLocked(j, StateRunning, "")
	s.mu.Unlock()

	ctx := s.rootCtx
	deadline := time.Duration(j.Spec.Deadline)
	if deadline == 0 {
		deadline = s.opts.DefaultDeadline
	}
	cancel := context.CancelFunc(func() {})
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	}
	result, err := s.execute(ctx, j)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		if werr := atomicWrite(filepath.Join(jobDir(s.opts.StateDir, j.ID), "result.txt"), []byte(result)); werr != nil {
			s.transitionLocked(j, StateFailed, "result persist failed: "+werr.Error())
			s.metrics.Counter("serve.jobs.failed").Inc()
			return
		}
		s.transitionLocked(j, StateDone, "")
		s.metrics.Counter("serve.jobs.completed").Inc()
		s.metrics.Counter("serve.tenant." + j.Spec.Tenant + ".jobs_completed").Inc()

	case s.rootCtx.Err() != nil:
		// Server drain, not a job failure: checkpoint (the run journals
		// already hold every completed run) and leave the job resumable.
		s.transitionLocked(j, StateDraining, "server draining; job resumes on restart")

	case errors.Is(err, context.DeadlineExceeded) && j.Attempt <= j.Spec.Retries:
		backoff := s.opts.RequeueBase << uint(j.Attempt-1)
		s.transitionLocked(j, StateQueued, fmt.Sprintf("deadline exceeded on attempt %d; requeued with %s backoff", j.Attempt, backoff))
		s.metrics.Counter("serve.jobs.requeues").Inc()
		s.requeueLockedAfter(j, backoff)

	case errors.Is(err, context.DeadlineExceeded):
		s.transitionLocked(j, StateFailed, fmt.Sprintf("deadline exceeded; requeue budget exhausted after %d attempts", j.Attempt))
		s.metrics.Counter("serve.jobs.failed").Inc()

	case j.Attempt <= j.Spec.Retries:
		backoff := s.opts.RequeueBase << uint(j.Attempt-1)
		s.transitionLocked(j, StateQueued, fmt.Sprintf("attempt %d failed (%v); requeued with %s backoff", j.Attempt, err, backoff))
		s.metrics.Counter("serve.jobs.requeues").Inc()
		s.requeueLockedAfter(j, backoff)

	case j.Attempt > 1 && sameFailure(prevDetail, err):
		// The same error across attempts with fresh budgets each time:
		// retrying would burn capacity on a deterministic failure.
		s.transitionLocked(j, StateQuarantined, fmt.Sprintf("deterministic failure across %d attempts: %v", j.Attempt, err))
		s.metrics.Counter("serve.jobs.quarantined").Inc()

	default:
		s.transitionLocked(j, StateFailed, err.Error())
		s.metrics.Counter("serve.jobs.failed").Inc()
	}
}

// requeueLockedAfter is requeueAfter for callers already holding s.mu.
func (s *Server) requeueLockedAfter(j *Job, delay time.Duration) {
	var t *time.Timer
	t = time.AfterFunc(delay, func() {
		s.mu.Lock()
		delete(s.timers, t)
		if s.draining {
			s.mu.Unlock()
			return
		}
		s.sched.push(j)
		s.metrics.Gauge("serve.queue.depth").Set(float64(s.sched.depth))
		s.mu.Unlock()
		s.wakeup()
	})
	s.timers[t] = struct{}{}
}

// sameFailure reports whether a previous attempt's detail records the same
// error text (the quarantine heuristic for deterministic failures).
func sameFailure(prevDetail string, err error) bool {
	return prevDetail != "" && strings.Contains(prevDetail, err.Error())
}

// execute dispatches on job type and returns the rendered result — the
// exact bytes the equivalent batch CLI would print to stdout.
func (s *Server) execute(ctx context.Context, j *Job) (string, error) {
	switch j.Spec.Type {
	case JobCampaign:
		var out strings.Builder
		err := s.execCampaign(ctx, j, &out, j.Spec.Benchmark, j.Spec.Mode, "runs.journal", 0)
		return out.String(), err
	case JobSweep:
		return s.execSweep(ctx, j)
	case JobFuzz:
		return s.execFuzz(ctx, j)
	default:
		return "", fmt.Errorf("unknown job type %q", j.Spec.Type)
	}
}

// baseConfig translates the spec into the harness Config with the full
// Resilience envelope attached.
func (s *Server) baseConfig(ctx context.Context, spec *Spec, mode blackjack.Mode) blackjack.Config {
	cfg := blackjack.DefaultConfig(mode, spec.Instructions)
	cfg.Ctx = ctx
	cfg.Parallel = spec.Parallel
	if cfg.Parallel <= 0 {
		cfg.Parallel = s.opts.RunParallel
	}
	cfg.Resilience = blackjack.Resilience{
		Isolate:    true, // a panicking run must never take the server down
		Retries:    spec.RunRetries,
		RunTimeout: time.Duration(spec.RunTimeout),
		StallAfter: s.opts.StallAfter,
	}
	if spec.Cache != "off" && s.cache != nil {
		cfg.Cache = s.cache
		if spec.Cache == "verify" {
			cfg.CacheVerify = spec.CacheVerify
		}
	}
	return cfg
}

// execCampaign runs one benchmark × mode campaign cell with a crash-safe
// journal and streams per-run progress. The rendered table is byte-for-byte
// what `bjfault` prints for the same work.
func (s *Server) execCampaign(ctx context.Context, j *Job, out *strings.Builder, bench, modeName, journalName string, totalBase int) error {
	mode, err := blackjack.ParseMode(modeName)
	if err != nil {
		return err
	}
	kind, err := blackjack.ParseFaultKind(j.Spec.FaultKind)
	if err != nil {
		return err
	}
	cfg := s.baseConfig(ctx, j.Spec, mode)
	var sites []blackjack.FaultSite
	if j.Spec.Sites == "latent" {
		sites = blackjack.LatentFaultSites(cfg.Machine)
	} else if sites, err = blackjack.FaultSitesForKind(cfg.Machine, kind); err != nil {
		return err
	}
	h := s.hub(j.ID)
	cfg.OnProgress = func(p blackjack.RunProgress) {
		h.publish(Event{Job: j.ID, Kind: "run", At: time.Now(),
			Index: totalBase + p.Index, Total: totalBase + p.Total,
			Site: p.Result.Site.String(), Outcome: p.Result.Outcome.String(), Served: p.Served})
		s.noteRun(j, totalBase+p.Total)
	}
	// The journal is opened resuming: a prior attempt's (or prior server
	// incarnation's) completed runs replay instead of re-simulating, and the
	// flock means a second server on the same state dir fails fast here
	// instead of interleaving appends. Every record fsyncs before its
	// progress event fires — SIGKILL at any instant loses nothing.
	cj, err := blackjack.OpenCampaignJournal(filepath.Join(jobDir(s.opts.StateDir, j.ID), journalName), cfg, bench, sites, blackjack.InjectOptions{SplitPayload: true})
	if err != nil {
		return err
	}
	defer cj.Close()
	cj.SetSyncEvery(1)
	cfg.Journal = cj
	sum, err := blackjack.Campaign(cfg, bench, sites, blackjack.InjectOptions{SplitPayload: true})
	if err != nil {
		return err
	}
	return blackjack.WriteCampaignTable(out, cfg.Mode, bench, sum)
}

// execSweep runs the benchmarks × modes grid as independent campaign cells,
// each with its own journal, concatenating the tables in grid order — the
// same bytes as running bjfault once per cell.
func (s *Server) execSweep(ctx context.Context, j *Job) (string, error) {
	var out strings.Builder
	base := 0
	for _, bench := range j.Spec.Benchmarks {
		for _, modeName := range j.Spec.Modes {
			jn := fmt.Sprintf("runs-%s-%s.journal", bench, modeName)
			if err := s.execCampaign(ctx, j, &out, bench, modeName, jn, base); err != nil {
				return "", err
			}
			base = s.jobTotal(j)
		}
	}
	return out.String(), nil
}

// execFuzz runs a differential-fuzzing session with a crash-safe journal,
// rendering the summary lines bjfuzz prints.
func (s *Server) execFuzz(ctx context.Context, j *Job) (string, error) {
	opts := blackjack.FuzzOptions{
		Programs: j.Spec.Programs,
		Seed:     j.Spec.Seed,
		MaxInstr: j.Spec.Instructions,
		Workers:  j.Spec.Parallel,
		Ctx:      ctx,
	}
	if opts.Workers <= 0 {
		opts.Workers = s.opts.RunParallel
	}
	if j.Spec.Variant != "" {
		v, err := diffcheck.VariantByName(j.Spec.Variant)
		if err != nil {
			return "", err
		}
		opts.Variant = &v
	}
	h := s.hub(j.ID)
	opts.OnProgress = func(index int, resumed bool, divergences int) {
		served := "cold"
		if resumed {
			served = "journal"
		}
		outcome := "ok"
		if divergences > 0 {
			outcome = fmt.Sprintf("%d divergences", divergences)
		}
		h.publish(Event{Job: j.ID, Kind: "run", At: time.Now(),
			Index: index, Total: j.Spec.Programs, Outcome: outcome, Served: served})
		s.noteRun(j, j.Spec.Programs)
	}
	fj, err := blackjack.OpenFuzzJournal(filepath.Join(jobDir(s.opts.StateDir, j.ID), "fuzz.journal"), opts)
	if err != nil {
		return "", err
	}
	defer fj.Close()
	fj.SetSyncEvery(1) // every completed program durable before its event fires
	opts.Journal = fj
	sum, err := blackjack.FuzzPrograms(opts)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	fmt.Fprintf(&out, "bjfuzz: %d programs, %d variant runs, %d shuffle calls (%d DTQ entries) validated\n",
		sum.Programs, sum.Runs, sum.Shuffles, sum.Entries)
	if !sum.Failed() {
		fmt.Fprintln(&out, "bjfuzz: zero oracle divergences, zero invariant violations")
		return out.String(), nil
	}
	for _, f := range sum.Failures {
		fmt.Fprintf(&out, "\nFAILURE program %d (%s, seed %#x, %d instructions):\n", f.Index, f.Source, f.Seed, len(f.Program.Code))
		for _, d := range f.Divergences {
			fmt.Fprintf(&out, "  %v\n", d)
		}
	}
	return out.String(), nil
}

// noteRun updates the job's progress counters and the per-tenant
// completed-run metric. Called from worker goroutines via OnProgress.
func (s *Server) noteRun(j *Job, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.Done++
	j.Total = total
	s.metrics.Counter("serve.runs.completed").Inc()
	s.metrics.Counter("serve.tenant." + j.Spec.Tenant + ".runs").Inc()
}

// jobTotal reads the job's current Total under the lock.
func (s *Server) jobTotal(j *Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.Total
}
