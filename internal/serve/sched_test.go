package serve

import (
	"fmt"
	"strings"
	"testing"
)

func schedJob(id, tenant string, weight int) *Job {
	return &Job{ID: id, Spec: &Spec{Tenant: tenant, Weight: weight}}
}

// drainOrder pops everything, returning the tenant sequence.
func drainOrder(s *scheduler) []string {
	var order []string
	for {
		j := s.pop()
		if j == nil {
			return order
		}
		order = append(order, j.Spec.Tenant)
	}
}

// A deep backlog from one tenant cannot starve another: equal weights
// interleave 1:1 regardless of queue depth or submission order.
func TestSchedulerInterleavesTenants(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 6; i++ {
		s.push(schedJob(fmt.Sprintf("a%d", i), "alice", 1))
	}
	for i := 0; i < 2; i++ {
		s.push(schedJob(fmt.Sprintf("b%d", i), "bob", 1))
	}
	got := strings.Join(drainOrder(s), ",")
	want := "alice,bob,alice,bob,alice,alice,alice,alice"
	if got != want {
		t.Errorf("dispatch order = %s, want %s", got, want)
	}
}

// A weight-2 tenant drains twice as fast as a weight-1 tenant.
func TestSchedulerHonorsWeights(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 6; i++ {
		s.push(schedJob(fmt.Sprintf("h%d", i), "heavy", 2))
		s.push(schedJob(fmt.Sprintf("l%d", i), "light", 1))
	}
	order := drainOrder(s)
	heavyFirst6 := 0
	for _, tenant := range order[:6] {
		if tenant == "heavy" {
			heavyFirst6++
		}
	}
	if heavyFirst6 != 4 {
		t.Errorf("heavy got %d of the first 6 slots, want 4 (order %v)", heavyFirst6, order)
	}
}

// A tenant returning from idle starts at the current minimum pass: idle
// time is not banked as a burst entitlement.
func TestSchedulerIdleTenantDoesNotBank(t *testing.T) {
	s := newScheduler()
	for i := 0; i < 10; i++ {
		s.push(schedJob(fmt.Sprintf("a%d", i), "alice", 1))
	}
	for i := 0; i < 5; i++ {
		if s.pop() == nil {
			t.Fatal("unexpected empty scheduler")
		}
	}
	// bob arrives late; he should interleave from here on, not burst
	// through 5 banked slots first.
	for i := 0; i < 3; i++ {
		s.push(schedJob(fmt.Sprintf("b%d", i), "bob", 1))
	}
	got := strings.Join(drainOrder(s), ",")
	want := "alice,bob,alice,bob,alice,bob,alice,alice"
	if got != want {
		t.Errorf("post-idle order = %s, want %s", got, want)
	}
}

// FIFO within a tenant, deterministic tie-break across tenants.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() string {
		s := newScheduler()
		s.push(schedJob("c1", "carol", 1))
		s.push(schedJob("a1", "alice", 1))
		s.push(schedJob("b1", "bob", 1))
		s.push(schedJob("a2", "alice", 1))
		var ids []string
		for j := s.pop(); j != nil; j = s.pop() {
			ids = append(ids, j.ID)
		}
		return strings.Join(ids, ",")
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic dispatch: %s vs %s", got, first)
		}
	}
	if !strings.HasPrefix(first, "a1,") {
		t.Errorf("tie-break should favor tenant name order, got %s", first)
	}
	if strings.Index(first, "a1") > strings.Index(first, "a2") {
		t.Errorf("tenant queue not FIFO: %s", first)
	}
}

func TestSchedulerRemove(t *testing.T) {
	s := newScheduler()
	s.push(schedJob("a1", "alice", 1))
	s.push(schedJob("a2", "alice", 1))
	if !s.remove("a1") {
		t.Fatal("remove(a1) = false")
	}
	if s.remove("a1") {
		t.Fatal("double remove succeeded")
	}
	if s.depth != 1 {
		t.Errorf("depth = %d, want 1", s.depth)
	}
	if j := s.pop(); j == nil || j.ID != "a2" {
		t.Errorf("pop = %+v, want a2", j)
	}
}
