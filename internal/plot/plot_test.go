package plot

import (
	"strings"
	"testing"
)

func sample() *BarChart {
	return &BarChart{
		Title:      "Coverage",
		YLabel:     "percent",
		Categories: []string{"gzip", "equake", "average"},
		Series: []Series{
			{Name: "SRT", Values: []float64{25, 24, 24.5}},
			{Name: "BlackJack", Values: []float64{97, 98, 97.5}},
		},
		YMax: 100,
	}
}

func TestSVGRenders(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "Coverage", "percent", "gzip", "equake",
		"SRT", "BlackJack", "<rect", "<line",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 2 series x 3 categories = 6 bars + background + 2 legend swatches.
	if n := strings.Count(svg, "<rect"); n != 9 {
		t.Errorf("rect count = %d, want 9", n)
	}
}

func TestSVGBarHeightsScale(t *testing.T) {
	c := &BarChart{
		Categories: []string{"a"},
		Series:     []Series{{Name: "s", Values: []float64{50}}},
		YMax:       100,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Plot height is 400-44-96 = 260; a 50/100 bar is 130 high.
	if !strings.Contains(svg, `height="130.0"`) {
		t.Errorf("expected 130-high bar in:\n%s", svg)
	}
}

func TestSVGValidation(t *testing.T) {
	bad := []*BarChart{
		{},
		{Categories: []string{"a"}},
		{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}},
	}
	for i, c := range bad {
		if _, err := c.SVG(); err == nil {
			t.Errorf("chart %d accepted", i)
		}
	}
}

func TestYMaxAutoRounding(t *testing.T) {
	tests := []struct {
		max  float64
		want float64
	}{
		{0.9, 1}, {1.5, 2}, {4.3, 5}, {7.2, 10}, {34, 50}, {97, 100}, {130, 200},
	}
	for _, tt := range tests {
		c := &BarChart{
			Categories: []string{"a"},
			Series:     []Series{{Name: "s", Values: []float64{tt.max}}},
		}
		if got := c.yMax(); got != tt.want {
			t.Errorf("yMax(%v) = %v, want %v", tt.max, got, tt.want)
		}
	}
	empty := &BarChart{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{0}}}}
	if got := empty.yMax(); got != 1 {
		t.Errorf("yMax of zero data = %v, want 1", got)
	}
}

func TestEscaping(t *testing.T) {
	c := sample()
	c.Title = `a<b>&"c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a<b>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestValuesClampedToAxis(t *testing.T) {
	c := &BarChart{
		Categories: []string{"a"},
		Series:     []Series{{Name: "s", Values: []float64{-5}}},
		YMax:       10,
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, `height="0.0"`) {
		t.Error("negative value should clamp to zero-height bar")
	}
}
