// Package plot renders grouped bar charts as standalone SVG documents using
// only the standard library. The experiment harness uses it to regenerate
// the paper's figures as images (Figures 4–7), matching their form: grouped
// bars per benchmark with an average group at the end.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one bar group member (e.g. "SRT", "BlackJack").
type Series struct {
	Name   string
	Values []float64
	// Color is any SVG color; a default palette entry is used when empty.
	Color string
}

// BarChart is a grouped bar chart.
type BarChart struct {
	Title      string
	YLabel     string
	Categories []string // x-axis groups (benchmark names)
	Series     []Series
	// YMax fixes the y-axis maximum (0 = derived from the data, rounded to
	// a nice step).
	YMax float64
}

// Default palette (white/grey/black echoes the paper's figures, with accents
// for charts that need more series).
var palette = []string{"#d9d9d9", "#1a1a1a", "#6baed6", "#fd8d3c", "#74c476"}

// Geometry constants.
const (
	width     = 960
	height    = 400
	marginL   = 64
	marginR   = 16
	marginTop = 44
	marginBot = 96
)

// Validate reports structural problems.
func (c *BarChart) Validate() error {
	if len(c.Categories) == 0 {
		return fmt.Errorf("plot: no categories")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("plot: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(c.Categories))
		}
	}
	return nil
}

// yMax picks the axis maximum.
func (c *BarChart) yMax() float64 {
	if c.YMax > 0 {
		return c.YMax
	}
	max := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		return 1
	}
	// Round up to 1/2/5 x 10^k.
	exp := math.Floor(math.Log10(max))
	base := math.Pow(10, exp)
	for _, m := range []float64{1, 2, 5, 10} {
		if max <= m*base {
			return m * base
		}
	}
	return 10 * base
}

// SVG renders the chart. It returns an error for malformed charts.
func (c *BarChart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginTop - marginBot)
	ymax := c.yMax()

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, esc(c.Title))

	// Y axis: gridlines and labels at 5 steps.
	for i := 0; i <= 5; i++ {
		v := ymax * float64(i) / 5
		y := float64(marginTop) + plotH - plotH*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#cccccc" stroke-width="1"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, trimFloat(v))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, esc(c.YLabel))
	}

	// Bars.
	groupW := plotW / float64(len(c.Categories))
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, cat := range c.Categories {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[gi]
			if v < 0 {
				v = 0
			}
			if v > ymax {
				v = ymax
			}
			h := plotH * v / ymax
			x := gx + barW*float64(si)
			y := float64(marginTop) + plotH - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333333" stroke-width="0.5"/>`+"\n",
				x, y, barW, h, color(si, s.Color))
		}
		// Rotated category label.
		lx := gx + groupW*0.4
		ly := float64(marginTop) + plotH + 12
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			lx, ly, lx, ly, esc(cat))
	}

	// Axis lines.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="#333333" stroke-width="1"/>`+"\n",
		marginL, marginTop, marginL, float64(marginTop)+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333333" stroke-width="1"/>`+"\n",
		marginL, float64(marginTop)+plotH, width-marginR, float64(marginTop)+plotH)

	// Legend, top right.
	lx := float64(width - marginR - 150)
	for si, s := range c.Series {
		ly := float64(10 + 16*si)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s" stroke="#333333" stroke-width="0.5"/>`+"\n",
			lx, ly, color(si, s.Color))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+16, ly+10, esc(s.Name))
	}

	b.WriteString("</svg>\n")
	return b.String(), nil
}

func color(i int, override string) string {
	if override != "" {
		return override
	}
	return palette[i%len(palette)]
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	s = strings.TrimSuffix(s, ".0")
	return s
}
