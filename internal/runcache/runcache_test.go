package runcache

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"blackjack/internal/obs"
)

type outcome struct {
	Class string `json:"class"`
	Cycle int64  `json:"cycle"`
}

func testIdentity(extra ...string) *Identity {
	id := NewIdentity("program=gcc", "mode=blackjack", "n=8000")
	for _, p := range extra {
		id.parts = append(id.parts, p)
	}
	return id
}

func TestIdentityEncoding(t *testing.T) {
	a := NewIdentity().Add("program", "gcc").Addf("n", "%d", 8000)
	b := NewIdentity("program=gcc", "n=8000")
	if a.ID() != b.ID() || a.Hash64() != b.Hash64() {
		t.Fatalf("equivalent identities disagree: %s vs %s", a.ID(), b.ID())
	}
	// Order matters: key=value folding must not be commutative.
	c := NewIdentity("n=8000", "program=gcc")
	if c.ID() == a.ID() {
		t.Fatal("reordered parts produced the same ID")
	}
	// Part boundaries matter: "ab"+"c" must differ from "a"+"bc".
	if NewIdentity("ab", "c").ID() == NewIdentity("a", "bc").ID() {
		t.Fatal("part boundary not separated in ID")
	}
	if NewIdentity("ab", "c").Hash64() == NewIdentity("a", "bc").Hash64() {
		t.Fatal("part boundary not separated in Hash64")
	}
	if got := a.Parts(); len(got) != 2 || got[0] != "program=gcc" || got[1] != "n=8000" {
		t.Fatalf("Parts() = %v", got)
	}
}

func TestDiffParts(t *testing.T) {
	base := []string{"program=gcc", "mode=blackjack", "n=8000"}
	cases := []struct {
		name string
		have []string
		want []string
		sub  string
	}{
		{"identical", base, base, ""},
		{"changed value", []string{"program=gcc", "mode=blackjack", "n=9000"}, base, `file has "n=9000", workload has "n=8000"`},
		{"workload longer", base[:2], base, `workload adds parameter "n=8000"`},
		{"file longer", base, base[:2], `file has extra parameter "n=8000"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DiffParts(tc.have, tc.want)
			if tc.sub == "" {
				if got != "" {
					t.Fatalf("DiffParts = %q, want empty", got)
				}
				return
			}
			if !strings.Contains(got, tc.sub) {
				t.Fatalf("DiffParts = %q, want substring %q", got, tc.sub)
			}
		})
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentity()
	var got outcome
	if s.Get(id, &got) {
		t.Fatal("hit on empty store")
	}
	want := outcome{Class: "detected", Cycle: 412}
	if err := s.Put(id, want); err != nil {
		t.Fatal(err)
	}
	if !s.Get(id, &got) {
		t.Fatal("miss after Put")
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	// A different identity must miss.
	if s.Get(testIdentity("site=extra"), &got) {
		t.Fatal("hit for a different identity")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatal("byte accounting is zero after a Put")
	}
}

func TestStoreReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentity()
	if err := s.Put(id, outcome{Class: "masked"}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got outcome
	if !s2.Get(id, &got) || got.Class != "masked" {
		t.Fatalf("reopened store missed committed entry: %+v", got)
	}
	if s2.Stats().Bytes == 0 {
		t.Fatal("reopened store did not size existing entries")
	}
}

// TestStoreCorruption is the tamper table: every damaged entry must fail
// the checksum/epoch validation and read as a miss (falling back to live
// execution), never be served.
func TestStoreCorruption(t *testing.T) {
	cases := []struct {
		name   string
		tamper func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped payload", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var env envelope
			if err := json.Unmarshal(blob, &env); err != nil {
				t.Fatal(err)
			}
			// Flip one bit inside a JSON string value of the payload so the
			// envelope still parses and only the CRC can catch it.
			data := []byte(string(env.Data))
			i := len(data) / 2
			data[i] ^= 0x01
			env.Data = data
			out, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong epoch", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var env envelope
			if err := json.Unmarshal(blob, &env); err != nil {
				t.Fatal(err)
			}
			env.Epoch = FormatEpoch + 1
			out, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong address", func(t *testing.T, path string) {
			// Simulate a cross-linked/renamed file: valid envelope whose
			// self-identifying ID belongs to a different entry.
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var env envelope
			if err := json.Unmarshal(blob, &env); err != nil {
				t.Fatal(err)
			}
			env.ID = strings.Repeat("00", 32)
			out, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"not JSON at all", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a cache entry"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			id := testIdentity()
			stored := outcome{Class: "silent-corruption", Cycle: 99}
			if err := s.Put(id, stored); err != nil {
				t.Fatal(err)
			}
			path := s.entryPath(id.ID())
			tc.tamper(t, path)
			var got outcome
			if s.Get(id, &got) {
				t.Fatalf("tampered entry (%s) was served: %+v", tc.name, got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("tampered entry (%s) was not removed", tc.name)
			}
			st := s.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
			}
			// After removal the next Put must repopulate and serve cleanly.
			if err := s.Put(id, stored); err != nil {
				t.Fatal(err)
			}
			if !s.Get(id, &got) || got != stored {
				t.Fatalf("repopulated entry not served: %+v", got)
			}
		})
	}
}

func TestStoreEviction(t *testing.T) {
	// Budget fits roughly two entries; inserting several must evict the
	// oldest and keep the store under budget.
	dir := t.TempDir()
	s, err := Open(dir, 600)
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 200)
	ids := make([]*Identity, 5)
	for i := range ids {
		ids[i] = testIdentity("i=" + string(rune('a'+i)))
		if err := s.Put(ids[i], outcome{Class: big, Cycle: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with budget 600 and 5 large entries: %+v", st)
	}
	if st.Bytes > 600 {
		t.Fatalf("store over budget after eviction: %d bytes", st.Bytes)
	}
	var got outcome
	if s.Get(ids[0], &got) {
		t.Fatal("oldest entry survived eviction")
	}
	if !s.Get(ids[len(ids)-1], &got) {
		t.Fatal("newest entry was evicted")
	}
}

func TestStoreAtomicTempCleanup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testIdentity(), outcome{Class: "ok"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestShouldVerifyDeterministicAndBounded(t *testing.T) {
	id := testIdentity()
	if ShouldVerify(id, 0) {
		t.Fatal("fraction 0 sampled an entry")
	}
	if !ShouldVerify(id, 1) {
		t.Fatal("fraction 1 skipped an entry")
	}
	if ShouldVerify(id, 0.25) != ShouldVerify(id, 0.25) {
		t.Fatal("sampling not deterministic")
	}
	// Across many identities the sampled fraction should be loosely near
	// the requested fraction (hash uniformity; wide tolerance).
	n, hit := 2000, 0
	for i := 0; i < n; i++ {
		if ShouldVerify(testIdentity("i="+strconv.Itoa(i)), 0.25) {
			hit++
		}
	}
	frac := float64(hit) / float64(n)
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("sampled fraction %.3f far from 0.25", frac)
	}
}

func TestExportCounters(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentity()
	var got outcome
	s.Get(id, &got) // miss
	if err := s.Put(id, outcome{Class: "ok"}); err != nil {
		t.Fatal(err)
	}
	s.Get(id, &got) // hit
	s.CountVerify(false)
	s.CountVerify(true)
	reg := obs.NewRegistry()
	s.Export(reg)
	for name, want := range map[string]uint64{
		"runcache.hits":               1,
		"runcache.misses":             1,
		"runcache.puts":               1,
		"runcache.verify.runs":        2,
		"runcache.verify.divergences": 1,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.CounterValue("runcache.bytes") == 0 {
		t.Error("runcache.bytes not exported")
	}
}

// TestDiffPartsNamesFirstMismatch: when several parameters differ, the
// message names the earliest one — the stable anchor a user greps for.
func TestDiffPartsNamesFirstMismatch(t *testing.T) {
	cases := []struct {
		name       string
		have, want []string
		sub        string
	}{
		{"first of several diffs wins",
			[]string{"program=gzip", "mode=srt", "n=9000"},
			[]string{"program=gcc", "mode=blackjack", "n=8000"},
			`file has "program=gzip", workload has "program=gcc"`},
		{"later diffs not reported",
			[]string{"program=gcc", "mode=srt", "n=9000"},
			[]string{"program=gcc", "mode=blackjack", "n=8000"},
			`file has "mode=srt", workload has "mode=blackjack"`},
		{"both empty", nil, nil, ""},
		{"empty file vs workload",
			nil, []string{"program=gcc"},
			`workload adds parameter "program=gcc"`},
		{"file vs empty workload",
			[]string{"program=gcc"}, nil,
			`file has extra parameter "program=gcc"`},
		{"empty-string part still compared",
			[]string{""}, []string{"program=gcc"},
			`file has "", workload has "program=gcc"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DiffParts(tc.have, tc.want)
			if tc.sub == "" {
				if got != "" {
					t.Fatalf("DiffParts = %q, want empty", got)
				}
				return
			}
			if !strings.Contains(got, tc.sub) {
				t.Fatalf("DiffParts = %q, want substring %q", got, tc.sub)
			}
		})
	}
}

func TestEvictionDeterministicOnMtimeCollision(t *testing.T) {
	// Coarse-mtime filesystems round timestamps to the second, so every
	// entry a campaign fills can share one mtime. Eviction order must then
	// be a pure function of store contents (entry-ID order), not of
	// directory walk order or insertion order.
	ids := make([]*Identity, 6)
	for i := range ids {
		ids[i] = testIdentity("site=" + strconv.Itoa(i))
	}
	survivorsOf := func(insertOrder []int) map[string]bool {
		t.Helper()
		dir := t.TempDir()
		s, err := Open(dir, 1<<30) // no eviction during the fills
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range insertOrder {
			if err := s.Put(ids[i], outcome{Class: "benign", Cycle: int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Collapse every mtime to one instant — the collision under test.
		stamp := time.Unix(1_700_000_000, 0)
		var entrySize int64
		filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if info, err := d.Info(); err == nil {
				entrySize = info.Size()
			}
			return os.Chtimes(path, stamp, stamp)
		})
		// Shrink the bound so exactly half the entries must go, and force
		// the eviction walk.
		s.maxBytes = entrySize * int64(len(ids)) / 2
		s.evict()
		survivors := map[string]bool{}
		filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			survivors[strings.TrimSuffix(filepath.Base(path), ".json")] = true
			return nil
		})
		return survivors
	}

	base := survivorsOf([]int{0, 1, 2, 3, 4, 5})
	if len(base) == 0 || len(base) == len(ids) {
		t.Fatalf("eviction test degenerate: %d of %d entries survived", len(base), len(ids))
	}
	// Same contents, different insertion orders: identical survivors.
	for _, order := range [][]int{{5, 4, 3, 2, 1, 0}, {2, 5, 0, 3, 1, 4}} {
		got := survivorsOf(order)
		if len(got) != len(base) {
			t.Fatalf("insertion order %v changed survivor count: %d vs %d", order, len(got), len(base))
		}
		for id := range base {
			if !got[id] {
				t.Errorf("insertion order %v evicted %s, which the canonical order kept", order, id)
			}
		}
	}
	// With every mtime equal, the survivors must be exactly the entries
	// with the largest IDs (smallest IDs evicted first).
	var all []string
	for _, id := range ids {
		all = append(all, id.ID())
	}
	sort.Strings(all)
	for _, id := range all[len(all)-len(base):] {
		if !base[id] {
			t.Errorf("ID tie-break violated: %s (among the largest IDs) was evicted", id)
		}
	}
	for _, id := range all[:len(all)-len(base)] {
		if base[id] {
			t.Errorf("ID tie-break violated: %s (among the smallest IDs) survived", id)
		}
	}
}
