// Package runcache provides the on-disk content-addressable run cache and
// the canonical run-identity encoder shared with the journal layer.
//
// A run's identity is the ordered list of `key=value` parts that determine
// its outcome: program generator and seed (or a content fingerprint),
// ISA/pipeline configuration, redundancy variant, fault-site parameters
// (kind/mask/duty/ArmAt), and the fast-forward/checkpoint execution plan.
// The simulator is deterministic by construction (the diffcheck harness
// proves it), so two runs with equal identity produce bit-identical
// outcomes — which is exactly what makes outcome memoization sound.
//
// The same Identity feeds three consumers:
//
//   - Hash64 folds the parts through FNV-64a with NUL separators — the same
//     folding discipline as journal.KeyHash — for the journal header key.
//   - Parts returns the human-readable parts so journal headers can report
//     *which* parameter changed on a resume mismatch.
//   - ID hashes the parts through SHA-256 for cache entry addressing.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Identity is an ordered list of `key=value` parts defining run identity.
// Order matters: callers append parts in a fixed schema order so equal
// configurations always encode to equal identities. The zero value is
// usable.
type Identity struct {
	parts []string
}

// NewIdentity builds an identity from pre-formatted `key=value` parts.
func NewIdentity(parts ...string) *Identity {
	return &Identity{parts: append([]string(nil), parts...)}
}

// Add appends one `key=value` part.
func (id *Identity) Add(key, value string) *Identity {
	id.parts = append(id.parts, key+"="+value)
	return id
}

// Addf appends one part with a fmt.Sprintf-formatted value. Beware of
// encoding structs this way: fmt's %v/%+v verbs prefer a String method
// when one exists, and human-readable labels usually drop fields — use
// AddJSON for anything with a Stringer (or that might grow one).
func (id *Identity) Addf(key, format string, args ...any) *Identity {
	return id.Add(key, fmt.Sprintf(format, args...))
}

// AddJSON appends one part with v's canonical JSON encoding: struct-field
// order, every exported field, immune to lossy String methods. This is
// the required encoding for configuration and fault-site structs —
// fault.Site's human label, for instance, drops the trigger and duty
// fields that distinguish latent sites, so formatting it with %+v made
// distinct sites alias to one cache entry.
func (id *Identity) AddJSON(key string, v any) *Identity {
	b, err := json.Marshal(v)
	if err != nil {
		return id.Addf(key, "%#v", v) // unreachable for plain config structs
	}
	return id.Add(key, string(b))
}

// Parts returns a copy of the ordered `key=value` parts.
func (id *Identity) Parts() []string {
	return append([]string(nil), id.parts...)
}

// Hash64 folds the parts through FNV-64a with NUL separators between
// parts — identical folding to journal.KeyHash, so journal headers keyed
// on an Identity are stable across both layers.
func (id *Identity) Hash64() uint64 {
	h := fnv.New64a()
	for _, p := range id.parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// ID returns the SHA-256 hex digest of the NUL-separated parts: the cache
// entry address. The format epoch is deliberately NOT folded in — entries
// carry the epoch in their envelope, so an epoch bump invalidates stale
// entries in place instead of stranding them until GC.
func (id *Identity) ID() string {
	h := sha256.New()
	for _, p := range id.parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DiffParts compares two part lists and describes the first difference in
// human terms ("" when identical). It powers ErrKeyMismatch diagnostics:
// the journal header records Parts so resume can say which parameter
// changed instead of only that the folded keys differ.
func DiffParts(have, want []string) string {
	n := len(have)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if have[i] != want[i] {
			return fmt.Sprintf("parameter changed: file has %q, workload has %q", have[i], want[i])
		}
	}
	switch {
	case len(have) < len(want):
		return fmt.Sprintf("workload adds parameter %q", want[n])
	case len(have) > len(want):
		return fmt.Sprintf("file has extra parameter %q", have[n])
	}
	return ""
}
