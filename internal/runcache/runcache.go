package runcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blackjack/internal/obs"
)

// FormatEpoch is the cache-format epoch. Bump it whenever the semantics of
// a cached outcome change (record schema, classification rules, pipeline
// timing) so every stale entry is refused on read and refilled live.
const FormatEpoch = 1

// EnvDir is the environment variable that opts a machine into caching:
// when set, the CLIs default -cache-dir to its value.
const EnvDir = "BLACKJACK_CACHE_DIR"

// DefaultMaxBytes is the default size bound for a store before LRU
// eviction kicks in.
const DefaultMaxBytes int64 = 256 << 20

// DefaultDir returns the environment opt-in cache directory ("" when the
// machine has not opted in).
func DefaultDir() string { return os.Getenv(EnvDir) }

// envelope is the on-disk shape of one entry: the format epoch, the entry's
// own content address (self-identifying, so a renamed or cross-linked file
// is detected), a CRC-32 over the payload, and the payload itself.
type envelope struct {
	Epoch int             `json:"epoch"`
	ID    string          `json:"id"`
	CRC   uint32          `json:"crc"`
	Data  json.RawMessage `json:"data"`
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Hits              uint64
	Misses            uint64
	Puts              uint64
	Evictions         uint64
	Corrupt           uint64
	Bytes             uint64
	VerifyRuns        uint64
	VerifyDivergences uint64
}

// Store is an on-disk content-addressable cache of run outcomes. Entries
// are addressed by Identity.ID (SHA-256), written atomically
// (write-temp-fsync-rename) with a checksummed envelope, and evicted
// oldest-mtime-first when the store exceeds its size bound. Get and Put
// are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex // guards curBytes and eviction walks
	curBytes int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
	corrupt   atomic.Uint64
	vruns     atomic.Uint64
	vdiverge  atomic.Uint64
}

// Open opens (creating if needed) the store rooted at dir. maxBytes <= 0
// selects DefaultMaxBytes. The existing contents are sized so eviction
// accounting starts accurate.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, errors.New("runcache: empty cache directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("runcache: sizing %s: %w", dir, err)
	}
	s.curBytes = total
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) entryPath(sha string) string {
	return filepath.Join(s.dir, sha[:2], sha+".json")
}

// Get looks up the entry for id and, on a valid hit, unmarshals its payload
// into out and returns true. Entries that are unreadable, truncated,
// bit-flipped, mis-addressed, or from a different format epoch are counted
// corrupt, removed, and reported as misses — a damaged cache degrades to
// live execution, never to a served wrong answer.
func (s *Store) Get(id *Identity, out any) bool {
	sha := id.ID()
	path := s.entryPath(sha)
	blob, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	valid := json.Unmarshal(blob, &env) == nil &&
		env.Epoch == FormatEpoch &&
		env.ID == sha &&
		crc32.ChecksumIEEE(env.Data) == env.CRC &&
		json.Unmarshal(env.Data, out) == nil
	if !valid {
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.removeEntry(path)
		return false
	}
	s.hits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now) // LRU touch; best-effort
	return true
}

// Put stores v as the entry for id, replacing any existing entry, then
// evicts oldest entries if the store exceeds its size bound.
func (s *Store) Put(id *Identity, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runcache: encode: %w", err)
	}
	sha := id.ID()
	env := envelope{Epoch: FormatEpoch, ID: sha, CRC: crc32.ChecksumIEEE(data), Data: data}
	blob, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("runcache: encode envelope: %w", err)
	}
	path := s.entryPath(sha)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	_, werr := tmp.Write(blob)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: write entry: %w", werr)
	}
	var oldSize int64
	if info, err := os.Stat(path); err == nil {
		oldSize = info.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: commit entry: %w", err)
	}
	s.puts.Add(1)
	s.mu.Lock()
	s.curBytes += int64(len(blob)) - oldSize
	over := s.curBytes > s.maxBytes
	s.mu.Unlock()
	if over {
		s.evict()
	}
	return nil
}

// removeEntry deletes a cache file and keeps byte accounting consistent.
func (s *Store) removeEntry(path string) {
	var size int64
	if info, err := os.Stat(path); err == nil {
		size = info.Size()
	}
	if os.Remove(path) == nil {
		s.mu.Lock()
		s.curBytes -= size
		s.mu.Unlock()
	}
}

// evict removes oldest-mtime entries until the store fits its size bound.
// Freshly written entries carry the newest mtimes and hits re-touch theirs,
// so the walk approximates LRU.
func (s *Store) evict() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curBytes <= s.maxBytes {
		return
	}
	type entry struct {
		path  string
		id    string
		size  int64
		mtime time.Time
	}
	var entries []entry
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		// The entry ID is the filename stem (entries live at
		// <id[:2]>/<id>.json); stray temp files sort by their temp name,
		// which is fine — they are crash residue and fair eviction fodder.
		id := strings.TrimSuffix(filepath.Base(path), ".json")
		entries = append(entries, entry{path: path, id: id, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	// Oldest mtime first; equal mtimes — routine on filesystems with
	// coarse (second-granularity) timestamps, where a whole campaign's
	// fills can land in one tick — tie-break on the entry ID so GC order
	// is a pure function of store contents, not of directory walk order.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].id < entries[j].id
	})
	// Recompute from the walk: cheaper than perfect bookkeeping and immune
	// to drift from concurrent corrupt-entry removals.
	var total int64
	for _, e := range entries {
		total += e.size
	}
	s.curBytes = total
	for _, e := range entries {
		if s.curBytes <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			s.curBytes -= e.size
			s.evictions.Add(1)
		}
	}
}

// CountVerify records one trust-but-verify recomputation of a cache hit
// and whether the live result diverged from the stored one.
func (s *Store) CountVerify(diverged bool) {
	s.vruns.Add(1)
	if diverged {
		s.vdiverge.Add(1)
	}
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	bytes := s.curBytes
	s.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	return Stats{
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Puts:              s.puts.Load(),
		Evictions:         s.evictions.Load(),
		Corrupt:           s.corrupt.Load(),
		Bytes:             uint64(bytes),
		VerifyRuns:        s.vruns.Load(),
		VerifyDivergences: s.vdiverge.Load(),
	}
}

// Export publishes the store counters into an obs registry under
// `runcache.*` names.
func (s *Store) Export(reg *obs.Registry) {
	st := s.Stats()
	reg.Counter("runcache.hits").Add(st.Hits)
	reg.Counter("runcache.misses").Add(st.Misses)
	reg.Counter("runcache.puts").Add(st.Puts)
	reg.Counter("runcache.evictions").Add(st.Evictions)
	reg.Counter("runcache.corrupt").Add(st.Corrupt)
	reg.Counter("runcache.bytes").Add(st.Bytes)
	reg.Counter("runcache.verify.runs").Add(st.VerifyRuns)
	reg.Counter("runcache.verify.divergences").Add(st.VerifyDivergences)
}

// ShouldVerify deterministically samples id for trust-but-verify
// recomputation: the first 64 bits of the entry address are compared
// against fraction, so the same fraction always re-verifies the same
// stable subset of entries (diffcheck-style reproducibility).
func ShouldVerify(id *Identity, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	u, err := strconv.ParseUint(id.ID()[:16], 16, 64)
	if err != nil {
		return false
	}
	return float64(u) < fraction*float64(1<<32)*float64(1<<32)
}
