package pipeline

import (
	"testing"

	"blackjack/internal/isa"
	"blackjack/internal/prog"
)

// run builds and runs a machine, failing the test on construction errors.
func run(t *testing.T, cfg Config, mode Mode, p *isa.Program, n int) (*Machine, *Stats) {
	t.Helper()
	m, err := New(cfg, mode, p, nil...)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(n)
	if st.Deadlocked {
		t.Fatalf("%v run deadlocked at cycle %d (lead committed %d, trail committed %d)",
			mode, st.Cycles, st.Committed[0], st.Committed[1])
	}
	return m, st
}

// golden runs the functional emulator for exactly n instructions.
func golden(t *testing.T, p *isa.Program, n uint64) *isa.Machine {
	t.Helper()
	g, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(int(n))
	return g
}

func sumProgram(n int64) *isa.Program {
	b := prog.NewBuilder("sum")
	b.Data(64)
	b.Li(1, n)
	b.Li(3, 0)
	b.Label("loop")
	b.Op3(isa.OpAdd, 3, 3, 1)
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.St(isa.ZeroReg, 3, 0)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func TestSingleModeHandProgram(t *testing.T) {
	p := sumProgram(100)
	m, st := run(t, DefaultConfig(), ModeSingle, p, 1<<20)
	if got := m.ArchReg(0, isa.IntReg(3)); got != 5050 {
		t.Errorf("r3 = %d, want 5050", got)
	}
	if got := m.MemWord(0); got != 5050 {
		t.Errorf("mem[0] = %d, want 5050", got)
	}
	if st.ReleasedStores != 1 {
		t.Errorf("released stores = %d, want 1", st.ReleasedStores)
	}
	if ipc := st.IPC(); ipc < 0.3 || ipc > 4.0 {
		t.Errorf("IPC = %.2f out of sane range", ipc)
	}
}

// The out-of-order single-thread pipeline must commit exactly the golden
// model's architectural results — registers, memory output stream — on every
// synthetic benchmark.
func TestSingleModeMatchesGolden(t *testing.T) {
	for _, name := range []string{"equake", "gcc", "gzip", "sixtrack", "vortex", "swim"} {
		t.Run(name, func(t *testing.T) {
			p := prog.MustBenchmark(name)
			_, st := run(t, DefaultConfig(), ModeSingle, p, 8000)
			g := golden(t, p, st.Committed[0])
			if st.ReleasedStores != uint64(g.Stores()) {
				t.Errorf("stores: pipeline %d, golden %d", st.ReleasedStores, g.Stores())
			}
			if st.StoreSignature != g.StoreSignature() {
				t.Errorf("store signature mismatch: %#x vs %#x", st.StoreSignature, g.StoreSignature())
			}
		})
	}
}

// After a program halts, the pipeline is fully drained and its rename map
// reflects exactly the committed architectural state; every register must
// match the golden model. (Mid-run the map holds speculative mappings, so the
// comparison is only meaningful at a halt boundary.)
func TestSingleModeRegisterStateMatchesGolden(t *testing.T) {
	b := prog.NewBuilder("regs")
	b.Data(256)
	b.InitWords(3, 1, 4, 1, 5, 9, 2, 6)
	b.Li(1, 40)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.Ld(isa.Reg(8+i), isa.ZeroReg, int64(8*i))
		b.Op3(isa.OpAdd, isa.Reg(16+i), isa.Reg(8+i), 1)
		b.FLd(isa.FPReg(8+i), isa.ZeroReg, int64(8*i))
		b.Op3(isa.OpFAdd, isa.FPReg(16+i), isa.FPReg(8+i), isa.FPReg(8+i))
	}
	b.Op3(isa.OpMul, 2, 1, 1)
	b.Op3(isa.OpDiv, 3, 2, 1)
	b.St(isa.ZeroReg, 2, 128)
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, isa.ZeroReg, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, st := run(t, DefaultConfig(), ModeSingle, p, 1<<20)
	g := golden(t, p, st.Committed[0])
	if !g.Halted() {
		t.Fatal("golden model did not halt at the same instruction count")
	}
	for r := 0; r < isa.NumArchRegs; r++ {
		reg := isa.Reg(r)
		if got, want := m.ArchReg(0, reg), g.Reg(reg); got != want {
			t.Errorf("%v = %#x, want %#x", reg, got, want)
		}
	}
}

// SRT: fault-free redundant execution must raise no detection events, commit
// the same count in both threads, and release exactly the golden store
// stream. Frontend diversity must be exactly zero (Section 4.1).
func TestSRTFaultFree(t *testing.T) {
	for _, name := range []string{"equake", "gzip", "sixtrack"} {
		t.Run(name, func(t *testing.T) {
			p := prog.MustBenchmark(name)
			m, st := run(t, DefaultConfig(), ModeSRT, p, 6000)
			if !m.Sink().Empty() {
				t.Fatalf("detections in fault-free run: %v", m.Sink().Events())
			}
			if st.Committed[0] != st.Committed[1] {
				t.Errorf("committed: lead %d, trail %d", st.Committed[0], st.Committed[1])
			}
			g := golden(t, p, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() {
				t.Error("released store stream differs from golden model")
			}
			if fd := st.FrontendDiversity(); fd != 0 {
				t.Errorf("SRT frontend diversity = %.3f, want exactly 0", fd)
			}
			if st.Pairs == 0 {
				t.Error("no pairs accounted")
			}
		})
	}
}

// BlackJack: fault-free execution must pass every commit check (dependence,
// PC order, store compare) with zero events, match the golden output, and
// achieve exactly 100% frontend diversity (Section 6.1).
func TestBlackJackFaultFree(t *testing.T) {
	for _, name := range []string{"equake", "gzip", "sixtrack", "vortex"} {
		t.Run(name, func(t *testing.T) {
			p := prog.MustBenchmark(name)
			m, st := run(t, DefaultConfig(), ModeBlackJack, p, 6000)
			if !m.Sink().Empty() {
				t.Fatalf("detections in fault-free run: %v", m.Sink().Events())
			}
			if st.Committed[0] != st.Committed[1] {
				t.Errorf("committed: lead %d, trail %d", st.Committed[0], st.Committed[1])
			}
			g := golden(t, p, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() {
				t.Error("released store stream differs from golden model")
			}
			if fd := st.FrontendDiversity(); fd != 1.0 {
				t.Errorf("BlackJack frontend diversity = %.4f, want exactly 1.0", fd)
			}
			if cov := st.Coverage(); cov < 0.85 {
				t.Errorf("BlackJack coverage = %.3f, want > 0.85", cov)
			}
		})
	}
}

func TestBlackJackNSFaultFree(t *testing.T) {
	p := prog.MustBenchmark("gcc")
	m, st := run(t, DefaultConfig(), ModeBlackJackNS, p, 6000)
	if !m.Sink().Empty() {
		t.Fatalf("detections in fault-free run: %v", m.Sink().Events())
	}
	g := golden(t, p, st.Committed[0])
	if st.StoreSignature != g.StoreSignature() {
		t.Error("released store stream differs from golden model")
	}
	if st.ShuffleNOPs != 0 || st.ShuffleSplits != 0 {
		t.Errorf("BlackJack-NS must not shuffle: nops=%d splits=%d", st.ShuffleNOPs, st.ShuffleSplits)
	}
}

func TestDeterminism(t *testing.T) {
	p := prog.MustBenchmark("bzip")
	for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJack} {
		_, a := run(t, DefaultConfig(), mode, p, 3000)
		_, b := run(t, DefaultConfig(), mode, p, 3000)
		if a.Cycles != b.Cycles || a.StoreSignature != b.StoreSignature ||
			a.Committed != b.Committed || a.CoverageSum != b.CoverageSum {
			t.Errorf("%v: runs differ: %d vs %d cycles", mode, a.Cycles, b.Cycles)
		}
	}
}

// A pure dependent chain of single-cycle adds must commit about one
// instruction per cycle; independent adds must exceed IPC 2.
func TestIPCExtremes(t *testing.T) {
	chain := prog.NewBuilder("chain")
	chain.Data(8)
	chain.Label("loop")
	for i := 0; i < 16; i++ {
		chain.Addi(1, 1, 1)
	}
	chain.Jmp("loop")
	pChain, err := chain.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, st := run(t, DefaultConfig(), ModeSingle, pChain, 4000)
	if ipc := st.IPC(); ipc > 1.4 {
		t.Errorf("dependent chain IPC = %.2f, want near 1", ipc)
	}

	indep := prog.NewBuilder("indep")
	indep.Data(8)
	indep.Label("loop")
	for i := 0; i < 16; i++ {
		indep.Addi(isa.Reg(2+i%8), isa.ZeroReg, int64(i))
	}
	indep.Jmp("loop")
	pIndep, err := indep.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, st2 := run(t, DefaultConfig(), ModeSingle, pIndep, 8000)
	if ipc := st2.IPC(); ipc < 2.0 {
		t.Errorf("independent IPC = %.2f, want > 2", ipc)
	}
	if st2.IPC() <= st.IPC() {
		t.Error("independent code should out-run a dependent chain")
	}
}

// Branch-heavy data-dependent code exercises misprediction squash; results
// must still match the golden model exactly.
func TestMispredictRecoveryMatchesGolden(t *testing.T) {
	pr, err := prog.Generate(prog.Profile{
		Name: "branchy", Seed: 99,
		LoadFrac: 0.2, StoreFrac: 0.1,
		ChainFrac: 0.3, RandLoadFrac: 0.2, WorkingSetKB: 64, Stride: 136,
		BranchEvery: 3, DataDepBranchFrac: 0.8, SkipMax: 3,
		BlockOps: 16, Blocks: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st := run(t, DefaultConfig(), ModeSingle, pr, 10000)
	if st.Mispredicts == 0 {
		t.Fatal("test expects mispredictions to occur")
	}
	g := golden(t, pr, st.Committed[0])
	if st.StoreSignature != g.StoreSignature() {
		t.Error("store stream differs from golden under heavy misprediction")
	}
}

// The same branchy workload must also survive redundant modes untouched.
func TestMispredictRecoveryRedundantModes(t *testing.T) {
	pr, err := prog.Generate(prog.Profile{
		Name: "branchy2", Seed: 7,
		LoadFrac: 0.15, StoreFrac: 0.1, FPALUFrac: 0.1,
		ChainFrac: 0.3, RandLoadFrac: 0.3, WorkingSetKB: 256, Stride: 136,
		BranchEvery: 4, DataDepBranchFrac: 0.6, SkipMax: 3,
		BlockOps: 16, Blocks: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSRT, ModeBlackJack} {
		t.Run(mode.String(), func(t *testing.T) {
			m, st := run(t, DefaultConfig(), mode, pr, 5000)
			if !m.Sink().Empty() {
				t.Fatalf("detections: %v", m.Sink().Events())
			}
			g := golden(t, pr, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() {
				t.Error("store stream differs from golden")
			}
		})
	}
}

func TestHaltTerminatesAllModes(t *testing.T) {
	p := sumProgram(50)
	for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJackNS, ModeBlackJack} {
		t.Run(mode.String(), func(t *testing.T) {
			m, st := run(t, DefaultConfig(), mode, p, 1<<20)
			if m.MemWord(0) != 1275 {
				t.Errorf("mem[0] = %d, want 1275", m.MemWord(0))
			}
			if mode.Redundant() && st.Committed[1] != st.Committed[0] {
				t.Errorf("trailing committed %d, leading %d", st.Committed[1], st.Committed[0])
			}
		})
	}
}

func TestDeadlockBackstop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 50
	p := prog.MustBenchmark("gcc")
	m, err := New(cfg, ModeSingle, p)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(1 << 30)
	if !st.Deadlocked {
		t.Error("tiny cycle budget should trip the backstop")
	}
}

func TestModeParsing(t *testing.T) {
	for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJackNS, ModeBlackJack} {
		got, err := ParseMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseMode(%q) = (%v,%v)", mode.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		edit func(*Config)
	}{
		{"narrow fetch", func(c *Config) { c.FetchWidth = 2 }},
		{"zero issue", func(c *Config) { c.IssueWidth = 0 }},
		{"zero rob", func(c *Config) { c.ActiveList = 0 }},
		{"too few regs", func(c *Config) { c.PhysRegs = 100 }},
		{"zero dtq", func(c *Config) { c.DTQ = 0 }},
		{"negative slack", func(c *Config) { c.Slack = -1 }},
		{"no mem units", func(c *Config) { c.Units[isa.UnitMem] = 0 }},
		{"zero class latency", func(c *Config) { c.ClassLat[isa.UnitIntALU] = 0 }},
		{"tiny fetch queue", func(c *Config) { c.FetchQueue = 2 }},
		{"bad cache", func(c *Config) { c.Cache.LineBytes = 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.edit(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

// SRT's coverage is accidental; BlackJack's is engineered. On the same
// workload BlackJack must dominate SRT in both total and backend coverage.
func TestBlackJackCoverageBeatsSRT(t *testing.T) {
	p := prog.MustBenchmark("wupwise")
	_, srt := run(t, DefaultConfig(), ModeSRT, p, 6000)
	_, bj := run(t, DefaultConfig(), ModeBlackJack, p, 6000)
	if bj.Coverage() <= srt.Coverage() {
		t.Errorf("coverage: blackjack %.3f <= srt %.3f", bj.Coverage(), srt.Coverage())
	}
	if bj.BackendDiversity() <= srt.BackendDiversity() {
		t.Errorf("backend: blackjack %.3f <= srt %.3f", bj.BackendDiversity(), srt.BackendDiversity())
	}
}

// Redundancy costs cycles: single < SRT < BlackJack in runtime for the same
// instruction budget.
func TestPerformanceOrdering(t *testing.T) {
	p := prog.MustBenchmark("gzip")
	_, single := run(t, DefaultConfig(), ModeSingle, p, 6000)
	_, srt := run(t, DefaultConfig(), ModeSRT, p, 6000)
	_, bj := run(t, DefaultConfig(), ModeBlackJack, p, 6000)
	if !(single.Cycles < srt.Cycles) {
		t.Errorf("cycles: single %d !< srt %d", single.Cycles, srt.Cycles)
	}
	if !(srt.Cycles < bj.Cycles) {
		t.Errorf("cycles: srt %d !< blackjack %d", srt.Cycles, bj.Cycles)
	}
}

// The merging-shuffle extension must preserve correctness (golden output, no
// detections) and reduce the trailing thread's packet count.
func TestMergingShuffleCorrectAndEffective(t *testing.T) {
	p := prog.MustBenchmark("sixtrack")
	cfg := DefaultConfig()
	_, base := run(t, cfg, ModeBlackJack, p, 8000)
	cfg.MergePackets = true
	m, merged := run(t, cfg, ModeBlackJack, p, 8000)
	if !m.Sink().Empty() {
		t.Fatalf("detections with merging shuffle: %v", m.Sink().Events())
	}
	g := golden(t, p, merged.Committed[0])
	if merged.StoreSignature != g.StoreSignature() {
		t.Error("merging shuffle corrupted the output stream")
	}
	if merged.MergedPackets == 0 {
		t.Fatal("no packets merged on a high-ILP workload")
	}
	if merged.TrailingPackets >= base.TrailingPackets {
		t.Errorf("trailing packets %d (merged) >= %d (base)", merged.TrailingPackets, base.TrailingPackets)
	}
	if merged.Cycles > base.Cycles {
		t.Errorf("merging made it slower: %d > %d cycles", merged.Cycles, base.Cycles)
	}
	if merged.Coverage() < base.Coverage()-0.03 {
		t.Errorf("merging cost too much coverage: %.3f vs %.3f", merged.Coverage(), base.Coverage())
	}
}
