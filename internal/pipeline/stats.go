package pipeline

import (
	"fmt"

	"blackjack/internal/cache"
	"blackjack/internal/detect"
	"blackjack/internal/isa"
	"blackjack/internal/obs"
)

// Stats holds everything a run measures. The experiment harnesses derive the
// paper's figures from these fields.
type Stats struct {
	Cycles int64

	// Per-thread counters (index 0 = leading/single, 1 = trailing).
	Committed [2]uint64
	Fetched   [2]uint64
	Issued    [2]uint64

	Squashed        uint64
	Branches        uint64
	Mispredicts     uint64
	NOPsExecuted    uint64
	TrailingPackets uint64 // shuffled packets fetched by the trailing thread

	// Issue-cycle classification (Figures 5 and 6).
	IssueCycles        uint64 // cycles in which at least one uop issued
	SingleContextIssue uint64 // ...all from one context
	LTInterference     uint64 // ...diversity lost with leading co-issue
	TTInterference     uint64 // ...diversity lost without leading co-issue

	// Coverage accounting over committed leading/trailing pairs (Figure 4).
	Pairs          uint64
	FeDiversePairs uint64
	BeDiversePairs uint64
	// Per-unit-class backend diversity breakdown: which classes lose
	// diversity (narrow 2-way classes fare worst under SRT).
	PairsByClass     [6]uint64
	BeDiverseByClass [6]uint64
	CoverageSum      float64 // to be divided by Pairs with the area model applied
	BackendCoverage  float64 // derived in finalizeStats

	// Shuffle statistics (Section 6.2).
	ShuffleInPackets  uint64
	ShuffleOutPackets uint64
	ShuffleSplits     uint64
	ShuffleNOPs       uint64
	MergedPackets     uint64 // merging-shuffle extension: packet pairs combined

	// Output.
	ReleasedStores uint64
	StoreSignature uint64

	Cache cache.Stats

	// Detections recorded by the redundancy checkers.
	Detections uint64
	FirstEvent *detect.Event

	// Deadlocked is set when the run hit the cycle backstop without
	// completing — always a bug (or an injected fault wedging the pipeline,
	// which counts as detected misbehaviour for campaigns that check it).
	Deadlocked bool

	// Interrupted is set when the run stopped early because its
	// WithRunContext budget expired (wall-clock timeout or shutdown) — the
	// stats describe a partial run, not a completed one.
	Interrupted bool

	// StoppedOnDetect is set when the run stopped at its first detection
	// event (WithStopOnDetect, sampled campaigns): the outcome is Detected
	// by construction, but cycle counts and output accounting cover only
	// the simulated window. Deliberately not exported by Export — it is a
	// sampled-mode execution-path note, not a figure input.
	StoppedOnDetect bool
}

// IPC returns committed leading-thread instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed[0]) / float64(s.Cycles)
}

// Coverage returns the paper's hard-error instruction coverage metric: mean
// area-weighted spatial diversity over all instruction pairs.
func (s *Stats) Coverage() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return s.CoverageSum / float64(s.Pairs)
}

// FrontendDiversity returns the fraction of pairs with diverse frontend ways.
func (s *Stats) FrontendDiversity() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.FeDiversePairs) / float64(s.Pairs)
}

// BackendDiversity returns the fraction of pairs with diverse backend ways
// (Figure 4b).
func (s *Stats) BackendDiversity() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.BeDiversePairs) / float64(s.Pairs)
}

// ClassDiversity returns the backend diversity of pairs executing on the
// given unit class, and the number of such pairs.
func (s *Stats) ClassDiversity(class int) (frac float64, pairs uint64) {
	pairs = s.PairsByClass[class]
	if pairs == 0 {
		return 0, 0
	}
	return float64(s.BeDiverseByClass[class]) / float64(pairs), pairs
}

// SingleContextFrac returns the fraction of issue cycles in which all issued
// instructions came from one context (Figure 6).
func (s *Stats) SingleContextFrac() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.SingleContextIssue) / float64(s.IssueCycles)
}

// LTInterferenceFrac returns the fraction of issue cycles losing coverage to
// leading-trailing interference (Figure 5).
func (s *Stats) LTInterferenceFrac() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.LTInterference) / float64(s.IssueCycles)
}

// TTInterferenceFrac returns the fraction of issue cycles losing coverage to
// trailing-trailing interference (Figure 5).
func (s *Stats) TTInterferenceFrac() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.TTInterference) / float64(s.IssueCycles)
}

// Export publishes every Stats field into the registry: raw fields as
// counters and derived metrics as gauges. Counters accumulate, so exporting
// several runs into one registry sums them (batch-harness semantics); on a
// fresh registry a single run's counter values equal the Stats fields
// exactly. Counter names are stable — EXPERIMENTS.md maps each paper figure
// to the keys it derives from.
func (s *Stats) Export(r *obs.Registry) {
	set := func(name string, v uint64) { r.Counter(name).Add(v) }
	set("pipeline.cycles", uint64(s.Cycles))
	set("pipeline.committed.lead", s.Committed[0])
	set("pipeline.committed.trail", s.Committed[1])
	set("pipeline.fetched.lead", s.Fetched[0])
	set("pipeline.fetched.trail", s.Fetched[1])
	set("pipeline.issued.lead", s.Issued[0])
	set("pipeline.issued.trail", s.Issued[1])
	set("pipeline.squashed", s.Squashed)
	set("pipeline.branches", s.Branches)
	set("pipeline.mispredicts", s.Mispredicts)
	set("pipeline.nops_executed", s.NOPsExecuted)
	set("pipeline.trailing_packets", s.TrailingPackets)
	set("pipeline.issue_cycles", s.IssueCycles)
	set("pipeline.single_context_issue", s.SingleContextIssue)
	set("pipeline.lt_interference", s.LTInterference)
	set("pipeline.tt_interference", s.TTInterference)
	set("pipeline.pairs", s.Pairs)
	set("pipeline.fe_diverse_pairs", s.FeDiversePairs)
	set("pipeline.be_diverse_pairs", s.BeDiversePairs)
	for cl := isa.UnitClass(0); cl < isa.NumUnitClasses; cl++ {
		set(fmt.Sprintf("pipeline.pairs_by_class.%v", cl), s.PairsByClass[cl])
		set(fmt.Sprintf("pipeline.be_diverse_by_class.%v", cl), s.BeDiverseByClass[cl])
	}
	set("pipeline.shuffle.in_packets", s.ShuffleInPackets)
	set("pipeline.shuffle.out_packets", s.ShuffleOutPackets)
	set("pipeline.shuffle.splits", s.ShuffleSplits)
	set("pipeline.shuffle.nops", s.ShuffleNOPs)
	set("pipeline.merged_packets", s.MergedPackets)
	set("pipeline.released_stores", s.ReleasedStores)
	set("pipeline.store_signature", s.StoreSignature)
	set("pipeline.detections", s.Detections)
	deadlocked := uint64(0)
	if s.Deadlocked {
		deadlocked = 1
	}
	set("pipeline.deadlocked", deadlocked)
	interrupted := uint64(0)
	if s.Interrupted {
		interrupted = 1
	}
	set("pipeline.interrupted", interrupted)
	set("cache.accesses", s.Cache.Accesses)
	set("cache.l1_misses", s.Cache.L1Misses)
	set("cache.l2_misses", s.Cache.L2Misses)
	set("cache.port_stalls", s.Cache.PortStall)

	r.Gauge("pipeline.coverage_sum").Add(s.CoverageSum)
	r.Gauge("pipeline.backend_coverage").Add(s.BackendCoverage)
	r.Gauge("pipeline.ipc").Add(s.IPC())
	r.Gauge("pipeline.coverage").Add(s.Coverage())
	r.Gauge("pipeline.frontend_diversity").Add(s.FrontendDiversity())
	r.Gauge("pipeline.backend_diversity").Add(s.BackendDiversity())
	r.Gauge("pipeline.single_context_frac").Add(s.SingleContextFrac())
	r.Gauge("pipeline.lt_interference_frac").Add(s.LTInterferenceFrac())
	r.Gauge("pipeline.tt_interference_frac").Add(s.TTInterferenceFrac())
}

func (m *Machine) finalizeStats() {
	s := &m.stats
	for i, t := range m.threads {
		// Committed stays in whole-program terms: the functional prefix of an
		// arch-seeded machine counts as committed by both contexts.
		s.Committed[i] = t.committed + m.archBase
		s.Fetched[i] = t.fetched
	}
	s.Cache = m.dcache.Stats()
	s.StoreSignature = m.storeSig
	s.Detections = m.sink.Total()
	if e, ok := m.sink.First(); ok {
		s.FirstEvent = &e
	}
	if m.shuffler != nil {
		s.ShuffleInPackets, s.ShuffleOutPackets, s.ShuffleSplits, s.ShuffleNOPs = m.shuffler.Stats()
	}
	s.BackendCoverage = s.BackendDiversity()
}
