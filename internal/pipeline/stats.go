package pipeline

import (
	"blackjack/internal/cache"
	"blackjack/internal/detect"
)

// Stats holds everything a run measures. The experiment harnesses derive the
// paper's figures from these fields.
type Stats struct {
	Cycles int64

	// Per-thread counters (index 0 = leading/single, 1 = trailing).
	Committed [2]uint64
	Fetched   [2]uint64
	Issued    [2]uint64

	Squashed        uint64
	Branches        uint64
	Mispredicts     uint64
	NOPsExecuted    uint64
	TrailingPackets uint64 // shuffled packets fetched by the trailing thread

	// Issue-cycle classification (Figures 5 and 6).
	IssueCycles        uint64 // cycles in which at least one uop issued
	SingleContextIssue uint64 // ...all from one context
	LTInterference     uint64 // ...diversity lost with leading co-issue
	TTInterference     uint64 // ...diversity lost without leading co-issue

	// Coverage accounting over committed leading/trailing pairs (Figure 4).
	Pairs          uint64
	FeDiversePairs uint64
	BeDiversePairs uint64
	// Per-unit-class backend diversity breakdown: which classes lose
	// diversity (narrow 2-way classes fare worst under SRT).
	PairsByClass     [6]uint64
	BeDiverseByClass [6]uint64
	CoverageSum      float64 // to be divided by Pairs with the area model applied
	BackendCoverage  float64 // derived in finalizeStats

	// Shuffle statistics (Section 6.2).
	ShuffleInPackets  uint64
	ShuffleOutPackets uint64
	ShuffleSplits     uint64
	ShuffleNOPs       uint64
	MergedPackets     uint64 // merging-shuffle extension: packet pairs combined

	// Output.
	ReleasedStores uint64
	StoreSignature uint64

	Cache cache.Stats

	// Detections recorded by the redundancy checkers.
	Detections uint64
	FirstEvent *detect.Event

	// Deadlocked is set when the run hit the cycle backstop without
	// completing — always a bug (or an injected fault wedging the pipeline,
	// which counts as detected misbehaviour for campaigns that check it).
	Deadlocked bool
}

// IPC returns committed leading-thread instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed[0]) / float64(s.Cycles)
}

// Coverage returns the paper's hard-error instruction coverage metric: mean
// area-weighted spatial diversity over all instruction pairs.
func (s *Stats) Coverage() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return s.CoverageSum / float64(s.Pairs)
}

// FrontendDiversity returns the fraction of pairs with diverse frontend ways.
func (s *Stats) FrontendDiversity() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.FeDiversePairs) / float64(s.Pairs)
}

// BackendDiversity returns the fraction of pairs with diverse backend ways
// (Figure 4b).
func (s *Stats) BackendDiversity() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.BeDiversePairs) / float64(s.Pairs)
}

// ClassDiversity returns the backend diversity of pairs executing on the
// given unit class, and the number of such pairs.
func (s *Stats) ClassDiversity(class int) (frac float64, pairs uint64) {
	pairs = s.PairsByClass[class]
	if pairs == 0 {
		return 0, 0
	}
	return float64(s.BeDiverseByClass[class]) / float64(pairs), pairs
}

// SingleContextFrac returns the fraction of issue cycles in which all issued
// instructions came from one context (Figure 6).
func (s *Stats) SingleContextFrac() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.SingleContextIssue) / float64(s.IssueCycles)
}

// LTInterferenceFrac returns the fraction of issue cycles losing coverage to
// leading-trailing interference (Figure 5).
func (s *Stats) LTInterferenceFrac() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.LTInterference) / float64(s.IssueCycles)
}

// TTInterferenceFrac returns the fraction of issue cycles losing coverage to
// trailing-trailing interference (Figure 5).
func (s *Stats) TTInterferenceFrac() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.TTInterference) / float64(s.IssueCycles)
}

func (m *Machine) finalizeStats() {
	s := &m.stats
	for i, t := range m.threads {
		s.Committed[i] = t.committed
		s.Fetched[i] = t.fetched
	}
	s.Cache = m.dcache.Stats()
	s.StoreSignature = m.storeSig
	s.Detections = m.sink.Total()
	if e, ok := m.sink.First(); ok {
		s.FirstEvent = &e
	}
	if m.shuffler != nil {
		s.ShuffleInPackets, s.ShuffleOutPackets, s.ShuffleSplits, s.ShuffleNOPs = m.shuffler.Stats()
	}
	s.BackendCoverage = s.BackendDiversity()
}
