package pipeline

import (
	"container/heap"

	"blackjack/internal/core"
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// issueStage wakes and selects up to IssueWidth ready instructions from the
// unified issue queue, oldest (dispatch order) first, and maps each to the
// lowest free backend way of its class — the deterministic policies
// safe-shuffle plans against (Section 4.2.2). Issue-cycle classification for
// Figures 5 and 6 happens here.
func (m *Machine) issueStage() {
	var (
		selected      int
		leadIssued    int
		trailIssued   int
		trailViolated bool // a trailing instruction lost backend diversity
		dtqReserved   int
		gangID        uint64 // PacketID of the trailing packet issuing this cycle
		gangActive    bool
	)
	usesDTQ := m.mode.UsesDTQ()

	m.drainWakeups()
	for _, u := range m.iq {
		if selected >= m.cfg.IssueWidth {
			break
		}
		if u.Squashed || !u.InIQ {
			continue
		}
		if !m.slotReady(u.IQSlot) {
			continue
		}
		// Trailing packets wake as a gang: a member (or typed NOP, which has
		// no operands of its own) becomes eligible only when every member of
		// its packet still in the queue is ready. Without this, NOPs and
		// early-ready members would issue ahead, splitting the packet and
		// undoing safe-shuffle's backend way plan. (Way or width shortage
		// can still split a ready packet; that is the residual
		// trailing-trailing interference of Section 4.3.2.)
		if usesDTQ && u.Thread == trailThread {
			if gangActive && u.PacketID != gangID {
				continue // at most one trailing packet issues per cycle
			}
			if m.packetPending.pending(u.PacketID) {
				continue
			}
		}
		// Leading instructions in BlackJack modes need a DTQ slot
		// (Section 4.2.1: entries are allocated for all issued leading
		// instructions in issue order).
		if usesDTQ && u.Thread == leadThread {
			if m.dtq.Free()-dtqReserved < 1 {
				continue
			}
		}
		// Loads in cache-accessing threads wait until every older store in
		// the LSQ has a known address, and until any older same-address
		// store can actually forward its data.
		if u.Inst.IsLoad() && m.accessesCache(u) {
			if !m.loadReady(u) {
				continue
			}
		}
		way, ok := m.freeWay(u.Class)
		if !ok {
			continue
		}
		m.issueUOp(u, way)
		selected++
		if usesDTQ && u.Thread == leadThread {
			dtqReserved++
		}
		if u.Thread == leadThread {
			leadIssued++
		} else {
			trailIssued++
			if !u.IsNOP && u.PairValid && !u.BeDiverse {
				trailViolated = true
			}
			if usesDTQ {
				gangActive = true
				gangID = u.PacketID
			}
		}
	}

	// Compact the issue queue.
	if selected > 0 {
		live := m.iq[:0]
		for _, u := range m.iq {
			if u.InIQ && !u.Squashed {
				live = append(live, u)
			}
		}
		m.iq = live
	}

	// Issue-cycle classification.
	if leadIssued+trailIssued > 0 {
		m.stats.IssueCycles++
		if leadIssued == 0 || trailIssued == 0 {
			m.stats.SingleContextIssue++
		}
		if trailViolated {
			if leadIssued > 0 {
				m.stats.LTInterference++
			} else {
				m.stats.TTInterference++
			}
		}
	}
}

// Operand readiness is tracked event-driven (wakeup.go): the ready bit of a
// uop's payload slot is set the cycle both sources are available, so the
// select loop above tests a bit instead of rescanning ready cycles. Stores
// still issue exactly once, with address AND data ready: BlackJack's
// correctness rests on the leading issue order being a valid dependence order
// (the DTQ is consumed in that order by the trailing thread's double rename),
// so a store must not enter the order before its data producer.

// loadReady reports whether a cache-side load may issue. The LSQ computes
// store addresses early — as soon as a store's base register is ready, before
// the store itself issues (a standard early-AGU disambiguation port) — so a
// store waiting on slow *data* does not block younger independent loads:
//
//   - an older store with an unknowable address (base register not yet
//     produced) blocks the load;
//   - the youngest older store whose (early) address matches must have issued
//     (data available) so it can forward;
//   - non-matching stores are bypassed.
func (m *Machine) loadReady(u *UOp) bool {
	t := m.threads[u.Thread]
	var v1 uint64
	if u.PSrc1 != rename.None {
		v1 = m.rf.Value(u.PSrc1)
	}
	addr := m.clamp(isa.Eval(u.Inst, v1, 0).Addr)
	for v := u.VirtLSQ; v > t.lsq.head; {
		v--
		s := t.lsq.at(v)
		if s == nil || !s.Inst.IsStore() {
			continue
		}
		if s.Issued {
			if s.Addr == addr {
				return true // forwarding source with data in hand
			}
			continue
		}
		if s.PSrc1 != rename.None && !m.rf.Ready(s.PSrc1, m.cycle) {
			return false // address unknowable yet
		}
		var sv1 uint64
		if s.PSrc1 != rename.None {
			sv1 = m.rf.Value(s.PSrc1)
		}
		if m.clamp(isa.Eval(s.Inst, sv1, 0).Addr) == addr {
			return false // must forward from this store; wait for its issue
		}
	}
	return true
}

// accessesCache reports whether the uop's loads go to the cache hierarchy
// (leading/single threads) rather than the LVQ (trailing threads).
func (m *Machine) accessesCache(u *UOp) bool {
	return u.Thread == leadThread
}

// freeWay returns the lowest free backend way of the class.
func (m *Machine) freeWay(class isa.UnitClass) (int, bool) {
	for w, freeAt := range m.unitFreeAt[class] {
		if freeAt <= m.cycle {
			return w, true
		}
	}
	return 0, false
}

// issueUOp executes the uop's computation and schedules completion. Values
// are computed at issue (the simulator's register file always holds produced
// values; availability timing is tracked separately by ready cycles).
func (m *Machine) issueUOp(u *UOp, way int) {
	u.Issued = true
	u.InIQ = false
	m.iqSlots[u.IQSlot] = false
	m.clearSlotReady(u.IQSlot)
	u.BackWay = way
	m.trace(TraceIssue, u)
	m.stats.Issued[u.Thread]++

	// Diversity outcome for trailing pairs.
	if u.PairValid {
		u.FeDiverse = u.FrontWay != u.LeadFrontWay
		u.BeDiverse = u.Class == u.LeadClass && u.BackWay != u.LeadBackWay
	}

	lat, busy := m.cfg.latency(u.Inst)
	m.unitFreeAt[u.Class][way] = m.cycle + int64(busy)

	// Read the instruction payload (a shared-payload-RAM fault corrupts it
	// identically for both threads) and the operand values.
	inst := u.Inst
	if m.inj != nil {
		inst = m.inj.CorruptPayload(u.IQSlot, u.Thread, inst)
	}
	var v1, v2 uint64
	if u.PSrc1 != rename.None {
		v1 = m.rf.Value(u.PSrc1)
		if m.inj != nil {
			v1 = m.inj.CorruptRegRead(u.PSrc1, v1)
		}
	}
	if u.PSrc2 != rename.None {
		v2 = m.rf.Value(u.PSrc2)
		if m.inj != nil {
			v2 = m.inj.CorruptRegRead(u.PSrc2, v2)
		}
	}
	out := isa.Eval(inst, v1, v2)

	switch {
	case u.IsNOP:
		u.DoneCycle = m.cycle + 1
	case inst.IsBranch():
		u.Taken = out.Taken
		if m.inj != nil {
			u.Taken = m.inj.CorruptBranch(u.Class, way, u.Taken)
		}
		u.Target = out.Target
		if m.inj != nil {
			u.Target = m.inj.CorruptBranchTarget(u.Class, way, u.Target)
		}
		u.DoneCycle = m.cycle + int64(lat)
	case inst.IsLoad():
		m.issueLoad(u, inst, out.Addr)
	case inst.IsStore():
		addr := m.clamp(out.Addr)
		if m.inj != nil {
			addr = m.clamp(m.inj.CorruptAddr(u.Class, way, addr))
		}
		u.Addr = addr
		val := out.StoreValue
		if m.inj != nil {
			val = m.inj.CorruptResult(u.Class, way, inst, val)
		}
		u.StoreVal = val
		u.DoneCycle = m.cycle + int64(lat)
	default:
		v := out.Value
		if m.inj != nil {
			v = m.inj.CorruptResult(u.Class, way, inst, v)
		}
		u.Result = v
		u.DoneCycle = m.cycle + int64(lat)
		if u.PDest != rename.None {
			m.rf.SetValue(u.PDest, v)
			m.rf.SetReadyAt(u.PDest, u.DoneCycle)
			m.wakeRegister(u.PDest)
		}
	}

	// Leading issue in BlackJack modes allocates the DTQ entry, in issue
	// order; co-issued instructions share a packet (keyed by issue cycle).
	if m.mode.UsesDTQ() && u.Thread == leadThread {
		e := m.allocEntry()
		*e = core.Entry{
			Seq:      u.Seq,
			PacketID: uint64(m.cycle),
			PC:       u.PC,
			RawInst:  u.Raw,
			FrontWay: u.FrontWay,
			BackWay:  u.BackWay,
			Class:    u.Class,
			PSrc1:    u.PSrc1,
			PSrc2:    u.PSrc2,
			PDest:    u.PDest,
		}
		if !m.dtq.Allocate(e) {
			m.internalError("DTQ overflow despite reservation")
		}
	}

	u.InEvents = true
	heap.Push(&m.events, u)
}

// issueLoad performs the memory access (cache for the leading/single thread,
// LVQ for trailing threads) and schedules the result.
func (m *Machine) issueLoad(u *UOp, inst isa.Inst, rawAddr uint64) {
	addr := m.clamp(rawAddr)
	if m.inj != nil {
		addr = m.clamp(m.inj.CorruptAddr(u.Class, u.BackWay, addr))
	}
	u.Addr = addr

	var (
		val uint64
		lat int
	)
	if m.accessesCache(u) {
		val = m.loadValue(m.threads[u.Thread], u)
		var ok bool
		lat, ok = m.dcache.Access(addr, m.cycle)
		if !ok {
			// Unit arbitration bounds accesses to the port count; rejection
			// would be a wiring bug.
			m.internalError("cache port rejected load despite unit arbitration")
		}
	} else {
		// Trailing loads read the LVQ: never a cache miss, and the address
		// computed from the trailing thread's own operands is checked
		// against the leading address (SRT's LVQ address check).
		val, _ = m.lvq.ValidateAddr(m.sink, m.cycle, u.LoadSeq, u.PC, addr)
		lat = m.cfg.LVQLat
	}
	if m.inj != nil {
		val = m.inj.CorruptResult(u.Class, u.BackWay, inst, val)
	}
	u.Result = val
	u.DoneCycle = m.cycle + int64(lat)
	if u.PDest != rename.None {
		m.rf.SetValue(u.PDest, val)
		m.rf.SetReadyAt(u.PDest, u.DoneCycle)
		m.wakeRegister(u.PDest)
	}
}

// loadValue resolves a cache-side load's data: youngest older matching store
// in the thread's LSQ, then the store buffer (committed but unreleased
// leading stores), then memory.
func (m *Machine) loadValue(t *thread, u *UOp) uint64 {
	for v := u.VirtLSQ; v > t.lsq.head; {
		v--
		s := t.lsq.at(v)
		if s == nil || !s.Inst.IsStore() || !s.Issued {
			continue
		}
		if s.Addr == u.Addr {
			return s.StoreVal
		}
	}
	if m.sb != nil && t.id == leadThread {
		if val, ok := m.sb.MatchYoungest(u.Addr); ok {
			return val
		}
	}
	return m.readMem(u.Addr)
}
