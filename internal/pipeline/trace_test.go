package pipeline

import (
	"strings"
	"testing"

	"blackjack/internal/prog"
)

func TestTracerRecordsLifecycle(t *testing.T) {
	p := sumProgram(20)
	tr := &Tracer{MaxEvents: 2000}
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(1 << 20)
	if st.Deadlocked {
		t.Fatal("deadlocked")
	}
	if len(tr.Events()) == 0 {
		t.Fatal("no trace events recorded")
	}
	var stages [6]int
	for _, e := range tr.Events() {
		stages[e.Stage]++
	}
	for _, s := range []TraceStage{TraceFetch, TraceDispatch, TraceIssue, TraceComplete, TraceCommit} {
		if stages[s] == 0 {
			t.Errorf("no %v events", s)
		}
	}
	var b strings.Builder
	tr.Render(&b)
	out := b.String()
	if !strings.Contains(out, "T0") || !strings.Contains(out, "T1") {
		t.Error("render missing thread lifelines")
	}
	if !strings.Contains(out, "add r3, r3, r1") {
		t.Errorf("render missing instruction text:\n%s", out)
	}
}

func TestTracerWindowAndCap(t *testing.T) {
	p := prog.MustBenchmark("gcc")
	tr := &Tracer{FromCycle: 100, ToCycle: 1000, MaxEvents: 50}
	m, err := New(DefaultConfig(), ModeSingle, p, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(5000)
	if len(tr.Events()) > 50 {
		t.Errorf("cap exceeded: %d events", len(tr.Events()))
	}
	for _, e := range tr.Events() {
		if e.Cycle < 100 || e.Cycle > 1000 {
			t.Errorf("event outside window at cycle %d", e.Cycle)
		}
	}
	if tr.Dropped() == 0 {
		t.Error("expected drops with a 50-event cap over a 900-cycle window")
	}
}

func TestTracerSquashEvents(t *testing.T) {
	// A branchy benchmark mispredicts; squashed wrong-path work must appear.
	p := prog.MustBenchmark("gzip")
	tr := &Tracer{MaxEvents: 1 << 16}
	m, err := New(DefaultConfig(), ModeSingle, p, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(4000)
	if st.Mispredicts == 0 {
		t.Skip("no mispredicts in window")
	}
	found := false
	for _, e := range tr.Events() {
		if e.Stage == TraceSquash {
			found = true
			break
		}
	}
	if !found {
		t.Error("no squash events despite mispredictions")
	}
}
