package pipeline

import (
	"blackjack/internal/core"
	"blackjack/internal/detect"
	"blackjack/internal/obs"
	"blackjack/internal/redundancy"
	"blackjack/internal/rename"
)

// commitStage retires up to CommitWidth instructions per thread, in program
// order. The leading thread commits first so that a leading store and its
// trailing copy can pair through the store buffer within one cycle.
func (m *Machine) commitStage() {
	m.commitThread(m.threads[leadThread])
	if m.mode.Redundant() {
		m.commitThread(m.threads[trailThread])
	}
}

func (m *Machine) commitThread(t *thread) {
	for n := 0; n < m.cfg.CommitWidth; n++ {
		if t.halted {
			return
		}
		u := t.rob.headUop()
		if u == nil || !u.done(m.cycle) {
			return
		}
		var ok bool
		switch {
		case m.mode == ModeSingle:
			ok = m.commitSingle(t, u)
		case t.id == leadThread:
			ok = m.commitLeading(t, u)
		default:
			ok = m.commitTrailing(t, u)
		}
		if !ok {
			return // structural stall (full redundancy queue); retry next cycle
		}
		m.trace(TraceCommit, u)
		t.rob.popHead()
		if u.Inst.IsMem() {
			t.lsq.popHead()
		}
		t.committed++
		if u.Halt {
			t.halted = true
			t.fetchStopped = true
		}
		// The committed uop has left every structure: the event heap drained
		// it earlier this cycle (resolveCompletions runs first in Tick and
		// done() requires DoneCycle <= cycle), issue removed it from the
		// issue queue, and the window/LSQ slots were just popped.
		m.recycleUOp(u)
	}
}

// commitSingle retires an instruction on the non-redundant machine: stores go
// straight to memory.
func (m *Machine) commitSingle(t *thread, u *UOp) bool {
	if u.Inst.IsStore() {
		m.releaseStore(u.Addr, u.StoreVal)
	}
	if u.POld != rename.None {
		m.freeList.Free(u.POld)
	}
	return true
}

// commitLeading retires a leading instruction: results feed the trailing
// thread (stream or DTQ), loads fill the LVQ, branches fill the BOQ (SRT),
// and stores enter the checking store buffer. Any full queue stalls commit.
func (m *Machine) commitLeading(t *thread, u *UOp) bool {
	// Check every structural gate before performing any side effect.
	if u.Inst.IsStore() && m.sb.Full() {
		return false
	}
	if u.Inst.IsLoad() && m.lvq.Full() {
		return false
	}
	if m.mode == ModeSRT {
		if m.stream.Full() {
			return false
		}
		if u.Inst.IsBranch() && m.boq.Full() {
			return false
		}
	}

	switch {
	case u.Inst.IsStore():
		m.sb.Push(redundancy.PendingStore{Seq: u.StoreSeq, PC: u.PC, Addr: u.Addr, Value: u.StoreVal})
		m.sbInFlight--
	case u.Inst.IsLoad():
		m.lvq.Push(redundancy.LoadValue{Seq: u.LoadSeq, PC: u.PC, Addr: u.Addr, Value: u.Result})
		m.lvqInFlight--
	case u.Inst.IsBranch() && m.mode == ModeSRT:
		m.boq.Push(redundancy.BranchOutcome{Seq: u.BranchSeq, PC: u.PC, Taken: u.Taken, Target: u.Target})
	}

	if m.mode == ModeSRT {
		m.stream.Push(redundancy.StreamEntry{
			Seq:      t.committed,
			PC:       u.PC,
			Inst:     u.Raw,
			FrontWay: u.FrontWay,
			BackWay:  u.BackWay,
			Class:    u.Class,
			LoadSeq:  u.LoadSeq,
			StoreSeq: u.StoreSeq,
			Halt:     u.Halt,
		})
	} else {
		// BlackJack: fill in the program-order information the DTQ entry
		// needs for safe-shuffle and the trailing thread's virtual indices.
		var virtLSQ uint64
		if u.Inst.IsMem() {
			virtLSQ = u.VirtLSQ
		}
		if !m.dtq.MarkCommitted(u.Seq, u.VirtAL, virtLSQ, u.LoadSeq, u.StoreSeq, u.Halt) {
			m.internalError("leading commit of seq %d: no DTQ entry", u.Seq)
		}
	}

	if u.POld != rename.None {
		m.freeList.Free(u.POld)
	}
	return true
}

// commitTrailing retires a trailing instruction, running the redundancy
// checks: store compare-and-release (SRT and BlackJack), LVQ retirement, BOQ
// validation (SRT), and BlackJack's dependence and program-order checks.
func (m *Machine) commitTrailing(t *thread, u *UOp) bool {
	switch {
	case u.Inst.IsStore():
		hadEntry := m.sb.Len() > 0
		rel, _ := m.sb.CheckRelease(m.sink, m.cycle, u.StoreSeq, u.PC, u.Addr, u.StoreVal)
		if hadEntry {
			// Release the leading copy's value: it was checked against the
			// trailing copy; on a mismatch the error is already reported and
			// the (flagged) store still drains so the machine keeps moving.
			m.releaseStore(rel.Addr, rel.Value)
		}
	case u.Inst.IsLoad():
		if !m.lvq.Retire(u.LoadSeq) {
			// Load pairing lost: under fault-free operation this cannot
			// happen; a decode fault that changes an instruction's memory
			// behaviour surfaces here as a detectable divergence.
			m.sink.Reportf(m.cycle, detect.CheckLVQAddr, u.PC,
				"trailing load seq %d lost LVQ pairing", u.LoadSeq)
		}
	case u.Inst.IsBranch() && m.mode == ModeSRT:
		m.boq.Validate(m.sink, m.cycle, u.BranchSeq, u.PC, u.Taken, u.Target)
	}

	// Register reclamation and BlackJack's borrowed-information checks.
	if m.mode.UsesDTQ() {
		free, _ := m.oc.Commit(m.sink, m.cycle, core.CommitInfo{
			PC:      u.PC,
			RawInst: u.Raw,
			PSrc1:   u.PSrc1,
			PSrc2:   u.PSrc2,
			PDest:   u.PDest,
			Taken:   u.Taken,
			Target:  u.Target,
		})
		if free != rename.None {
			m.freeList.Free(free)
		}
	} else if u.POld != rename.None {
		m.freeList.Free(u.POld)
	}

	// Coverage accounting over the committed pair (Figure 4), with the
	// per-unit-class breakdown.
	if u.PairValid {
		m.stats.Pairs++
		if u.FeDiverse {
			m.stats.FeDiversePairs++
		}
		if u.BeDiverse {
			m.stats.BeDiversePairs++
		}
		m.stats.PairsByClass[u.LeadClass]++
		if u.BeDiverse {
			m.stats.BeDiverseByClass[u.LeadClass]++
		}
		m.stats.CoverageSum += m.areaPairCoverage(u.FeDiverse, u.BeDiverse)
	}
	return true
}

// shuffleStage runs safe-shuffle on at most one committed DTQ packet per
// cycle (the long slack leaves ample time, Section 4.2.2), pushing the
// shuffled output packets into the trailing fetch queue.
func (m *Machine) shuffleStage() {
	if m.dtq == nil {
		return
	}
	pkt := m.dtq.HeadPacket()
	if pkt == nil {
		return
	}
	consumed := len(pkt)
	// Merging shuffle (optional extension): pull the next committed packet
	// in as well when the DTQ proves the two are independent and the merged
	// packet can still co-issue whole.
	if m.cfg.MergePackets {
		if pkts := m.dtq.HeadPackets(2); len(pkts) == 2 &&
			core.MergeBudget(pkts[0], pkts[1], m.cfg.FetchWidth, m.cfg.Units) &&
			core.CanMerge(pkts[0], pkts[1]) {
			merged := make([]*core.Entry, 0, len(pkts[0])+len(pkts[1]))
			merged = append(merged, pkts[0]...)
			merged = append(merged, pkts[1]...)
			pkt = merged
			consumed = len(merged)
			m.stats.MergedPackets++
		}
	}
	// A shuffle never produces more output packets than input instructions,
	// so this conservative space check avoids shuffling twice.
	if m.packets.Free() < len(pkt) {
		return
	}
	m.dtq.PopPacket(consumed)
	out := m.shuffler.Shuffle(pkt)
	if m.shuffleObs != nil {
		m.shuffleObs(m.cycle, pkt, out)
	}
	if m.otr != nil {
		m.otr.Record(obs.Event{
			Cycle: m.cycle, Kind: obs.KindShuffle, Thread: -1,
			Arg: uint64(len(pkt))<<32 | uint64(len(out)),
		})
	}
	for _, p := range out {
		if !m.packets.Push(p) {
			m.internalError("trailing packet queue overflow despite space check")
		}
	}
}
