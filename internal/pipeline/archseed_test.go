package pipeline

import (
	"testing"

	"blackjack/internal/isa"
	"blackjack/internal/prog"
)

// TestNewFromArchMatchesGolden hands off a functional prefix to a warm
// machine in every mode and checks the combined run ends at the golden
// model's architectural output: total committed count and store signature
// must equal a pure-functional run of the same budget.
func TestNewFromArchMatchesGolden(t *testing.T) {
	p := prog.MustBenchmark("gzip")
	const budget = 3000
	const handoff = 1500

	g, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(handoff)
	arch := g.CaptureArch()

	for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJackNS, ModeBlackJack} {
		m, err := NewFromArch(DefaultConfig(), mode, p, arch)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		st := m.Run(budget)
		if st.Deadlocked {
			t.Fatalf("%v: deadlocked at cycle %d", mode, st.Cycles)
		}
		// The commit stage may overshoot the cap by up to the commit width in
		// its final cycle (cold runs do the same), so compare the golden model
		// at the count actually committed.
		if st.Committed[0] < budget {
			t.Fatalf("%v: committed %d, want >= %d", mode, st.Committed[0], budget)
		}
		ref, err := isa.NewMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		ref.Run(int(st.Committed[0]))
		if st.StoreSignature != ref.StoreSignature() || st.ReleasedStores != uint64(ref.Stores()) {
			t.Errorf("%v: warm run output %#x/%d, golden %#x/%d",
				mode, st.StoreSignature, st.ReleasedStores, ref.StoreSignature(), ref.Stores())
		}
		if st.Detections != 0 {
			t.Errorf("%v: fault-free warm run recorded %d detections", mode, st.Detections)
		}
	}
}

// TestNewFromArchAtHalt: a snapshot taken at (or past) the program's halt
// leaves nothing to run; the machine reports the prefix as committed and
// finishes immediately.
func TestNewFromArchAtHalt(t *testing.T) {
	p := prog.MustBenchmark("gzip")
	g, err := isa.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(2000)
	arch := g.CaptureArch()

	m, err := NewFromArch(DefaultConfig(), ModeBlackJack, p, arch)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(2000) // budget == prefix: nothing left
	if st.Deadlocked {
		t.Fatal("deadlocked on empty window")
	}
	if st.Committed[0] != 2000 {
		t.Fatalf("committed %d, want 2000", st.Committed[0])
	}
	if st.StoreSignature != arch.Sig || st.ReleasedStores != arch.Stores {
		t.Fatalf("output %#x/%d, want the prefix's %#x/%d", st.StoreSignature, st.ReleasedStores, arch.Sig, arch.Stores)
	}
}
