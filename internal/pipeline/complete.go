package pipeline

import "container/heap"

// resolveCompletions drains execution-complete events up to the current
// cycle. Its real work is branch resolution for the leading/single thread:
// training the predictor and squashing + redirecting on a misprediction.
// Trailing branches never redirect — their outcomes are validated at commit
// (BOQ in SRT, the program-order check in BlackJack).
func (m *Machine) resolveCompletions() {
	for len(m.events) > 0 && m.events[0].DoneCycle <= m.cycle {
		u := heap.Pop(&m.events).(*UOp)
		u.InEvents = false
		if u.Squashed {
			// The heap held the last reference to an issued-then-squashed uop
			// (squash already removed it from the window and issue queue).
			m.recycleUOp(u)
			continue
		}
		m.trace(TraceComplete, u)
		if u.IsNOP {
			// Shuffle NOPs live only in the issue queue and this heap (they
			// never enter the active list); this pop is their last reference.
			m.recycleUOp(u)
			continue
		}
		if !u.Inst.IsBranch() || u.Thread != leadThread {
			continue
		}
		m.stats.Branches++
		mispredicted := u.Taken != u.PredTaken
		if u.Inst.IsCondBranch() {
			m.pred.Update(u.PredLookup, u.Taken)
		}
		if mispredicted {
			m.stats.Mispredicts++
			next := u.PC + 1
			if u.Taken {
				next = u.Target
			}
			m.squash(m.threads[u.Thread], u.Seq, next)
		}
	}
}
