package pipeline

import "container/heap"

// resolveCompletions drains execution-complete events up to the current
// cycle. Its real work is branch resolution for the leading/single thread:
// training the predictor and squashing + redirecting on a misprediction.
// Trailing branches never redirect — their outcomes are validated at commit
// (BOQ in SRT, the program-order check in BlackJack).
func (m *Machine) resolveCompletions() {
	for len(m.events) > 0 && m.events[0].DoneCycle <= m.cycle {
		u := heap.Pop(&m.events).(*UOp)
		if !u.Squashed {
			m.trace(TraceComplete, u)
		}
		if u.Squashed || !u.Inst.IsBranch() || u.Thread != leadThread {
			continue
		}
		m.stats.Branches++
		mispredicted := u.Taken != u.PredTaken
		if u.Inst.IsCondBranch() {
			m.pred.Update(u.PredLookup, u.Taken)
		}
		if mispredicted {
			m.stats.Mispredicts++
			next := u.PC + 1
			if u.Taken {
				next = u.Target
			}
			m.squash(m.threads[u.Thread], u.Seq, next)
		}
	}
}
