package pipeline

import "fmt"

// window is a virtual-index-addressed circular instruction window, used for
// both the active list and the load/store queue of each thread context.
//
// The leading/single/SRT-trailing threads allocate entries in order at the
// tail. The BlackJack trailing thread places entries at explicit virtual
// indices borrowed from the leading thread (Section 4.3.1): an entry whose
// virtual index is j past the head occupies the physical slot j past the head
// slot, and the frontend stalls when j would exceed the structure size —
// out-of-order fetch thus leaves the appropriate number of empty slots ahead
// of early-fetched instructions.
type window struct {
	slots []*UOp
	head  uint64 // virtual index of the oldest live entry
	tail  uint64 // next in-order virtual index (in-order allocators only)
	count int
}

func newWindow(n int) *window {
	if n <= 0 {
		panic(fmt.Sprintf("pipeline: invalid window size %d", n))
	}
	return &window{slots: make([]*UOp, n)}
}

func (w *window) size() int { return len(w.slots) }

// canPlace reports whether virtual index v falls inside the window.
func (w *window) canPlace(v uint64) bool {
	return v >= w.head && v-w.head < uint64(len(w.slots))
}

// place installs u at virtual index v (which must satisfy canPlace and be
// empty).
func (w *window) place(v uint64, u *UOp) {
	if !w.canPlace(v) {
		panic(fmt.Sprintf("pipeline: place %d outside window [%d,%d)", v, w.head, w.head+uint64(len(w.slots))))
	}
	i := v % uint64(len(w.slots))
	if w.slots[i] != nil {
		panic(fmt.Sprintf("pipeline: slot for virtual index %d occupied", v))
	}
	w.slots[i] = u
	w.count++
	if v >= w.tail {
		w.tail = v + 1
	}
}

// pushTail allocates the next in-order index and installs u there, returning
// the virtual index.
func (w *window) pushTail(u *UOp) uint64 {
	v := w.tail
	w.place(v, u)
	return v
}

// at returns the entry at virtual index v (nil when empty or out of window).
func (w *window) at(v uint64) *UOp {
	if !w.canPlace(v) {
		return nil
	}
	return w.slots[v%uint64(len(w.slots))]
}

// headUop returns the entry at the head (nil when empty or not yet placed).
func (w *window) headUop() *UOp {
	return w.slots[w.head%uint64(len(w.slots))]
}

// popHead removes the head entry and advances the head.
func (w *window) popHead() {
	i := w.head % uint64(len(w.slots))
	if w.slots[i] == nil {
		panic("pipeline: popHead on empty head slot")
	}
	w.slots[i] = nil
	w.count--
	w.head++
	if w.tail < w.head {
		w.tail = w.head
	}
}

// clearAt removes the entry at virtual index v (squash path).
func (w *window) clearAt(v uint64) {
	i := v % uint64(len(w.slots))
	if w.slots[i] != nil {
		w.slots[i] = nil
		w.count--
	}
}

// shrinkTail rolls the in-order tail back to v (squash path; all entries at
// indices >= v must already be cleared).
func (w *window) shrinkTail(v uint64) {
	if v < w.head {
		v = w.head
	}
	w.tail = v
}

// occupancy returns the number of live entries.
func (w *window) occupancy() int { return w.count }

// full reports whether an in-order allocation would overflow.
func (w *window) full() bool { return w.tail-w.head >= uint64(len(w.slots)) }
