package pipeline

import (
	"blackjack/internal/bpred"
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// UOp is an instruction in flight. One UOp exists per fetched instruction
// copy (leading and trailing copies are distinct UOps) plus one per
// safe-shuffle NOP.
type UOp struct {
	// Seq is the per-thread allocation order: fetch order for the leading /
	// single / SRT-trailing threads (program order on the correct path),
	// dispatch order for the BlackJack trailing thread. Used for age
	// comparisons and squash.
	Seq uint64
	// GSeq is the global dispatch order across threads; the issue queue's
	// oldest-first select uses it.
	GSeq   uint64
	Thread int
	PC     int
	// Raw is the instruction as fetched from the I-cache (or carried through
	// the DTQ); Inst is the effective decoded form, which a frontend-way or
	// payload-RAM hard fault may have corrupted.
	Raw   isa.Inst
	Inst  isa.Inst
	Class isa.UnitClass

	FrontWay int
	BackWay  int // way index within Class; -1 until issued

	PSrc1, PSrc2 rename.PhysReg // None when unused
	PDest, POld  rename.PhysReg // None when no destination

	// Pipeline status.
	InIQ      bool
	IQSlot    int // payload RAM slot while in the issue queue
	Issued    bool
	DoneCycle int64
	Squashed  bool
	// InEvents tracks membership in the machine's completion-event heap; the
	// uop free list relies on it to know when a squashed uop's last reference
	// is gone (issued uops stay in the heap until their completion cycle).
	InEvents bool

	// Branch state.
	PredTaken  bool
	PredLookup bpred.Lookup // predictor token (leading conditional branches)
	Taken      bool
	Target     int
	BranchSeq  uint64

	// Memory state.
	Addr     uint64
	StoreVal uint64
	LoadSeq  uint64
	StoreSeq uint64

	// Result value (written to PDest).
	Result uint64

	// Program-order ordinals (active list / LSQ virtual indices).
	VirtAL  uint64
	VirtLSQ uint64

	// Redundant-pair information (trailing thread only): the leading copy's
	// resource usage, for coverage accounting.
	PairValid    bool
	LeadFrontWay int
	LeadBackWay  int
	LeadClass    isa.UnitClass
	// Leading physical registers (BlackJack double rename inputs).
	LeadPSrc1, LeadPSrc2, LeadPDest rename.PhysReg

	// Issue-time diversity outcome (trailing, set at issue).
	FeDiverse bool
	BeDiverse bool

	// BlackJack packet bookkeeping.
	PacketID uint64
	IsNOP    bool
	Halt     bool

	// Wakeup state (see wakeup.go). WaitN counts source operands still
	// awaiting a producer (a source used twice counts twice); ReadyCycle is
	// the cycle both operands are available once WaitN reaches zero; InCal
	// tracks membership in the machine's wakeup calendar at ReadyCycle.
	WaitN      int
	ReadyCycle int64
	InCal      bool
}

// done reports whether execution has completed by the given cycle.
func (u *UOp) done(cycle int64) bool {
	return u.Issued && u.DoneCycle <= cycle
}
