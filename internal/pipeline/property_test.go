package pipeline

import (
	"math/rand"
	"testing"

	"blackjack/internal/prog"
)

// randomProfile draws a structurally valid random workload profile.
func randomProfile(rng *rand.Rand, trial int) prog.Profile {
	mixBudget := 0.85
	draw := func(max float64) float64 {
		f := rng.Float64() * max
		if f > mixBudget {
			f = mixBudget
		}
		mixBudget -= f
		return f
	}
	return prog.Profile{
		Name:              "fuzz",
		Seed:              uint64(1000 + trial),
		LoadFrac:          draw(0.3),
		StoreFrac:         draw(0.15),
		FPALUFrac:         draw(0.25),
		FPMulFrac:         draw(0.2),
		IntMulFrac:        draw(0.05),
		IntDivFrac:        draw(0.02),
		ChainFrac:         rng.Float64() * 0.8,
		Streams:           1 + rng.Intn(prog.MaxStreams),
		RandLoadFrac:      rng.Float64() * 0.6,
		PtrChaseFrac:      rng.Float64() * 0.05,
		WorkingSetKB:      16 << rng.Intn(6), // 16KB .. 512KB
		Stride:            int64(8 * (1 + rng.Intn(64))),
		BranchEvery:       3 + rng.Intn(20),
		DataDepBranchFrac: rng.Float64(),
		SkipMax:           1 + rng.Intn(3),
		BlockOps:          8 + rng.Intn(24),
		Blocks:            2 + rng.Intn(6),
	}
}

// Property: for ANY generated workload, every machine mode commits exactly
// the golden model's store stream, with zero detections and equal thread
// commit counts. This is the simulator's strongest end-to-end invariant.
func TestPropertyAllModesMatchGoldenOnRandomPrograms(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < trials; trial++ {
		pr := randomProfile(rng, trial)
		p, err := prog.Generate(pr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJackNS, ModeBlackJack} {
			m, st := run(t, DefaultConfig(), mode, p, 4000)
			if !m.Sink().Empty() {
				t.Fatalf("trial %d %v: detections in fault-free run: %v",
					trial, mode, m.Sink().Events())
			}
			g := golden(t, p, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() || st.ReleasedStores != uint64(g.Stores()) {
				t.Fatalf("trial %d %v: output diverged from golden model (profile %+v)",
					trial, mode, pr)
			}
			if mode.Redundant() && st.Committed[0] != st.Committed[1] {
				t.Fatalf("trial %d %v: thread commit counts differ: %d vs %d",
					trial, mode, st.Committed[0], st.Committed[1])
			}
		}
	}
}

// Property: the merging shuffle must remain architecturally invisible on
// random workloads.
func TestPropertyMergingShuffleMatchesGolden(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	rng := rand.New(rand.NewSource(777))
	cfg := DefaultConfig()
	cfg.MergePackets = true
	for trial := 0; trial < trials; trial++ {
		pr := randomProfile(rng, 500+trial)
		p, err := prog.Generate(pr)
		if err != nil {
			t.Fatal(err)
		}
		m, st := run(t, cfg, ModeBlackJack, p, 4000)
		if !m.Sink().Empty() {
			t.Fatalf("trial %d: detections: %v", trial, m.Sink().Events())
		}
		g := golden(t, p, st.Committed[0])
		if st.StoreSignature != g.StoreSignature() {
			t.Fatalf("trial %d: merged-shuffle output diverged (profile %+v)", trial, pr)
		}
	}
}

// Property: BlackJack's frontend diversity is exactly 1.0 on any workload —
// it is enforced by construction, not statistically.
func TestPropertyFrontendDiversityExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		pr := randomProfile(rng, 900+trial)
		p, err := prog.Generate(pr)
		if err != nil {
			t.Fatal(err)
		}
		_, bj := run(t, DefaultConfig(), ModeBlackJack, p, 3000)
		if fd := bj.FrontendDiversity(); fd != 1.0 {
			t.Errorf("trial %d: blackjack frontend diversity %.4f != 1", trial, fd)
		}
		_, srt := run(t, DefaultConfig(), ModeSRT, p, 3000)
		if fd := srt.FrontendDiversity(); fd != 0.0 {
			t.Errorf("trial %d: srt frontend diversity %.4f != 0", trial, fd)
		}
	}
}
