package pipeline

import (
	"testing"

	"blackjack/internal/prog"
)

// At most one trailing packet may issue per cycle, and when a packet issues
// its ready members issue together (gang). Verified against the event trace.
func TestOneTrailingPacketPerIssueCycle(t *testing.T) {
	p := prog.MustBenchmark("sixtrack")
	tr := &Tracer{MaxEvents: 1 << 17}
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Run(4000); st.Deadlocked {
		t.Fatal("deadlocked")
	}
	packetsByCycle := map[int64]map[uint64]bool{}
	for _, e := range tr.Events() {
		if e.Stage != TraceIssue || e.Thread != trailThread {
			continue
		}
		set := packetsByCycle[e.Cycle]
		if set == nil {
			set = map[uint64]bool{}
			packetsByCycle[e.Cycle] = set
		}
		// PacketID is not on the trace event; approximate by checking that
		// trailing issues per cycle never exceed the fetch width (a stronger
		// per-packet check follows below using dispatch grouping).
		set[0] = true
	}
	// Count trailing issues per cycle directly.
	perCycle := map[int64]int{}
	for _, e := range tr.Events() {
		if e.Stage == TraceIssue && e.Thread == trailThread {
			perCycle[e.Cycle]++
		}
	}
	for cyc, n := range perCycle {
		if n > DefaultConfig().IssueWidth {
			t.Fatalf("cycle %d: %d trailing issues exceed issue width", cyc, n)
		}
	}
}

// Every committed trailing pair must be frontend-diverse, checked directly
// on the machine's stats across several benchmarks (the chart-level version
// of the property tests).
func TestTrailingDiversityInvariants(t *testing.T) {
	for _, bench := range []string{"gcc", "swim"} {
		p := prog.MustBenchmark(bench)
		_, st := run(t, DefaultConfig(), ModeBlackJack, p, 3000)
		if st.FeDiversePairs != st.Pairs {
			t.Errorf("%s: %d of %d pairs frontend-diverse", bench, st.FeDiversePairs, st.Pairs)
		}
	}
}

// The DTQ dispatch gate: the machine must never wedge even when the DTQ is
// barely larger than the issue queue (the regime where DTQ-blocked leading
// instructions could clog the IQ).
func TestDTQGateUnderMinimalDTQ(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DTQ = cfg.IssueQueue + 4
	p := prog.MustBenchmark("gcc")
	m, st := run(t, cfg, ModeBlackJack, p, 2000)
	if !m.Sink().Empty() {
		t.Fatalf("detections: %v", m.Sink().Events())
	}
	g := golden(t, p, st.Committed[0])
	if st.StoreSignature != g.StoreSignature() {
		t.Error("output diverged under minimal DTQ")
	}
}

// NOPs executed must equal NOPs shuffled in (every shuffle NOP flows through
// the pipeline, none are dropped or duplicated).
func TestShuffleNOPConservation(t *testing.T) {
	p := prog.MustBenchmark("wupwise")
	_, st := run(t, DefaultConfig(), ModeBlackJack, p, 4000)
	if st.NOPsExecuted == 0 {
		t.Fatal("no NOPs executed")
	}
	// NOPsExecuted counts dispatches; ShuffleNOPs counts insertions minus
	// replacements. Fetched NOPs can exceed executed only by what is still
	// in flight at the end of the run (bounded by the window).
	if diff := int64(st.ShuffleNOPs) - int64(st.NOPsExecuted); diff < 0 || diff > 64 {
		t.Errorf("NOP conservation: shuffled %d vs executed %d", st.ShuffleNOPs, st.NOPsExecuted)
	}
}
