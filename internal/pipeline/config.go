// Package pipeline implements the cycle-level out-of-order SMT core on which
// the paper's four machine configurations run: a non-redundant single thread,
// SRT (leading + trailing threads coupled by BOQ/LVQ/store buffer), BlackJack
// without shuffle (BlackJack-NS), and full BlackJack (DTQ + safe-shuffle +
// commit checks).
//
// The model is built around the two resources whose spatial diversity the
// paper measures: frontend ways (fetch lane = PC offset within the aligned
// fetch block, carried through decode and rename) and typed backend ways
// (functional units, assigned oldest-first to the lowest free way of the
// instruction's class). Stages evaluate in reverse order each cycle so
// same-cycle backpressure needs no intra-cycle iteration; operand readiness
// uses per-physical-register ready-cycle timestamps, giving correct
// back-to-back scheduling for single-cycle producers.
package pipeline

import (
	"fmt"

	"blackjack/internal/bpred"
	"blackjack/internal/cache"
	"blackjack/internal/isa"
)

// Mode selects the machine configuration.
type Mode uint8

// The four machine configurations of Section 6.
const (
	// ModeSingle is the non-fault-tolerant single-thread baseline that
	// Figure 7 normalizes against.
	ModeSingle Mode = iota
	// ModeSRT runs leading+trailing threads with SRT coupling; hard-error
	// coverage comes only from accidental spatial diversity.
	ModeSRT
	// ModeBlackJackNS is BlackJack with safe-shuffle disabled: the trailing
	// thread fetches unshuffled DTQ packets one per cycle (the performance
	// decomposition point of Section 6.2).
	ModeBlackJackNS
	// ModeBlackJack is the full system: DTQ, safe-shuffle, double rename and
	// the commit-time dependence/PC checks.
	ModeBlackJack
)

var modeNames = map[Mode]string{
	ModeSingle:      "single",
	ModeSRT:         "srt",
	ModeBlackJackNS: "blackjack-ns",
	ModeBlackJack:   "blackjack",
}

// String returns the mode's name.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Redundant reports whether the mode runs a trailing thread.
func (m Mode) Redundant() bool { return m != ModeSingle }

// UsesDTQ reports whether the trailing thread fetches from shuffled (or
// pass-through) DTQ packets.
func (m Mode) UsesDTQ() bool { return m == ModeBlackJack || m == ModeBlackJackNS }

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown mode %q (known: single, srt, blackjack-ns, blackjack)", s)
}

// Config holds every machine parameter. Defaults come from Table 1.
type Config struct {
	FetchWidth  int // also the number of frontend ways
	RenameWidth int // rename/dispatch bandwidth per cycle, shared
	IssueWidth  int
	CommitWidth int // per thread

	ActiveList int // entries per thread context
	LSQ        int // load/store queue entries per thread context
	IssueQueue int // unified, shared between threads
	PhysRegs   int // shared physical register pool

	// Units is the number of backend ways per class. Table 1: 4 intALU,
	// 2 intMul, 2 intDiv, 2 FP ALU, 2 FP mul; the 2 memory ways are the two
	// L1 ports. The paper notes both SRT and BlackJack use two of every
	// resource type because spatial diversity is impossible otherwise.
	Units [isa.NumUnitClasses]int
	// ClassLat is the base execution latency per class (memory ops use the
	// cache model instead).
	ClassLat [isa.NumUnitClasses]int
	// Unpipelined classes occupy their way for the full latency.
	Unpipelined [isa.NumUnitClasses]bool
	// FDivLat is the latency of FP divide (executes unpipelined on an FP
	// multiplier way).
	FDivLat int

	// MergePackets enables the merging shuffle extension (the paper's
	// Section 6.2 future-work suggestion): adjacent committed DTQ packets
	// whose register sets are provably disjoint are combined into one
	// trailing packet, recovering fetch bandwidth lost to the
	// one-packet-per-cycle rule. Off by default (the paper's BlackJack).
	MergePackets bool

	StoreBuffer int // entries (Table 1: 64)
	LVQ         int // entries (Table 1: 128)
	BOQ         int // entries (Table 1: 96)
	Slack       int // target leading-trailing slack in instructions (256)
	DTQ         int // entries (Table 1: 1024)

	// LVQLat is the trailing thread's LVQ access latency (it never touches
	// the cache hierarchy).
	LVQLat int

	FetchQueue  int // per-thread fetch buffer, in instructions
	PacketQueue int // trailing fetch queue, in shuffled packets
	Stream      int // committed-stream queue capacity (SRT trailing fetch)

	Cache cache.Config
	Bpred bpred.Config

	// MaxCycles bounds a Run as a deadlock backstop; 0 derives a generous
	// bound from the instruction budget.
	MaxCycles int64
}

// DefaultConfig returns the Table 1 machine.
func DefaultConfig() Config {
	var units, lat [isa.NumUnitClasses]int
	var unpiped [isa.NumUnitClasses]bool
	units[isa.UnitIntALU], lat[isa.UnitIntALU] = 4, 1
	units[isa.UnitIntMul], lat[isa.UnitIntMul] = 2, 3
	units[isa.UnitIntDiv], lat[isa.UnitIntDiv] = 2, 20
	units[isa.UnitFPALU], lat[isa.UnitFPALU] = 2, 2
	units[isa.UnitFPMul], lat[isa.UnitFPMul] = 2, 4
	units[isa.UnitMem], lat[isa.UnitMem] = 2, 1
	unpiped[isa.UnitIntDiv] = true
	return Config{
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,
		ActiveList:  512,
		LSQ:         64,
		IssueQueue:  32,
		PhysRegs:    896,
		Units:       units,
		ClassLat:    lat,
		Unpipelined: unpiped,
		FDivLat:     12,
		StoreBuffer: 64,
		LVQ:         128,
		BOQ:         96,
		Slack:       256,
		DTQ:         1024,
		LVQLat:      2,
		FetchQueue:  16,
		PacketQueue: 32,
		Stream:      2048,
		Cache:       cache.DefaultConfig(),
		Bpred:       bpred.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 3:
		// Safe-shuffle's greedy placement needs at least three slots to
		// guarantee termination (DESIGN.md).
		return fmt.Errorf("pipeline: fetch width %d < 3", c.FetchWidth)
	case c.RenameWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("pipeline: non-positive stage width")
	case c.ActiveList <= 0 || c.LSQ <= 0 || c.IssueQueue <= 0:
		return fmt.Errorf("pipeline: non-positive window structure size")
	case c.PhysRegs < 2*isa.NumArchRegs+2*c.RenameWidth:
		return fmt.Errorf("pipeline: %d physical registers cannot back two contexts", c.PhysRegs)
	case c.StoreBuffer <= 0 || c.LVQ <= 0 || c.BOQ <= 0 || c.DTQ <= 0:
		return fmt.Errorf("pipeline: non-positive redundancy queue size")
	case c.Slack < 0:
		return fmt.Errorf("pipeline: negative slack")
	case c.LVQLat <= 0 || c.FDivLat <= 0:
		return fmt.Errorf("pipeline: non-positive latency")
	case c.FetchQueue < c.FetchWidth || c.Stream < c.FetchWidth:
		return fmt.Errorf("pipeline: fetch buffering too small")
	case c.PacketQueue < c.FetchWidth:
		// One input packet can shuffle into up to FetchWidth output packets;
		// a smaller queue could never accept them and shuffle would wedge.
		return fmt.Errorf("pipeline: packet queue %d smaller than fetch width %d", c.PacketQueue, c.FetchWidth)
	}
	for cl := isa.UnitClass(0); cl < isa.NumUnitClasses; cl++ {
		if c.Units[cl] <= 0 {
			return fmt.Errorf("pipeline: class %v has no units", cl)
		}
		if c.ClassLat[cl] <= 0 {
			return fmt.Errorf("pipeline: class %v has non-positive latency", cl)
		}
	}
	return c.Cache.Validate()
}

// latency returns the execution latency and unit occupancy (cycles the
// backend way stays busy) for an instruction.
func (c *Config) latency(in isa.Inst) (lat, busy int) {
	class := in.Class()
	lat = c.ClassLat[class]
	busy = 1
	if c.Unpipelined[class] {
		busy = lat
	}
	if in.Op == isa.OpFDiv {
		lat = c.FDivLat
		busy = lat // FP divide is unpipelined on the FP multiplier way
	}
	return lat, busy
}
