package pipeline

import "blackjack/internal/isa"

// ArchReg returns the committed architectural value of register r in thread
// th's context, read through the thread's rename map. The BlackJack trailing
// thread has no architectural map (it renames leading physical registers);
// use the leading thread's state instead.
func (m *Machine) ArchReg(th int, r isa.Reg) uint64 {
	t := m.threads[th]
	return m.rf.Value(t.rmap.Get(int(r)))
}

// MemWord returns the 8-byte word at the (clamped) address of the machine's
// memory image.
func (m *Machine) MemWord(addr uint64) uint64 { return m.readMem(addr) }

// StatsSnapshot finalizes and returns a copy of the current statistics
// without requiring the run to be complete.
func (m *Machine) StatsSnapshot() Stats {
	m.finalizeStats()
	return m.stats
}
