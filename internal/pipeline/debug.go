package pipeline

import "blackjack/internal/isa"

// ArchReg returns the committed architectural value of register r in thread
// th's context, read through the thread's rename map. The BlackJack trailing
// thread has no architectural map (it renames leading physical registers);
// use the leading thread's state instead.
func (m *Machine) ArchReg(th int, r isa.Reg) uint64 {
	t := m.threads[th]
	return m.rf.Value(t.rmap.Get(int(r)))
}

// MemWord returns the 8-byte word at the (clamped) address of the machine's
// memory image.
func (m *Machine) MemWord(addr uint64) uint64 { return m.readMem(addr) }

// MemSize returns the size in bytes of the machine's memory image.
func (m *Machine) MemSize() int { return len(m.mem) }

// SquashSpeculative discards thread th's in-flight speculative work, rolling
// the rename map back to the last committed instruction so that ArchReg
// observes committed architectural state. Redundant runs squash the leading
// thread when it reaches its budget (capCheck) and drain the trailing thread
// before completing, so this matters mainly for ModeSingle runs stopped at an
// instruction cap with wrong-path work still in flight. Call only after Run
// returns.
func (m *Machine) SquashSpeculative(th int) {
	t := m.threads[th]
	m.squash(t, t.nextSeqCommitted(), -1)
}

// TrailingArchReg returns the committed architectural value of register r as
// seen by the BlackJack trailing thread, read through the order checker's
// second (program-order) rename table — the trailing thread's own rmap is
// unused under double rename. It panics when the mode has no DTQ.
func (m *Machine) TrailingArchReg(r isa.Reg) uint64 {
	if m.oc == nil {
		panic("pipeline: TrailingArchReg outside a DTQ mode")
	}
	return m.rf.Value(m.oc.Mapping(r))
}

// StatsSnapshot finalizes and returns a copy of the current statistics
// without requiring the run to be complete.
func (m *Machine) StatsSnapshot() Stats {
	m.finalizeStats()
	return m.stats
}
