package pipeline

import "testing"

func TestWindowInOrderUse(t *testing.T) {
	w := newWindow(4)
	var uops []*UOp
	for i := 0; i < 4; i++ {
		u := &UOp{Seq: uint64(i + 1)}
		uops = append(uops, u)
		if v := w.pushTail(u); v != uint64(i) {
			t.Fatalf("pushTail -> %d, want %d", v, i)
		}
	}
	if !w.full() {
		t.Error("window should be full")
	}
	if got := w.headUop(); got != uops[0] {
		t.Error("headUop mismatch")
	}
	w.popHead()
	if w.full() {
		t.Error("window still full after pop")
	}
	if got := w.headUop(); got != uops[1] {
		t.Error("head should advance")
	}
	if v := w.pushTail(&UOp{Seq: 9}); v != 4 {
		t.Errorf("pushTail after pop -> %d, want 4", v)
	}
}

func TestWindowOutOfOrderPlacement(t *testing.T) {
	w := newWindow(4)
	u2 := &UOp{Seq: 2}
	// Place virtual index 2 first (BlackJack out-of-order fetch).
	if !w.canPlace(2) {
		t.Fatal("canPlace(2) = false")
	}
	w.place(2, u2)
	if w.headUop() != nil {
		t.Error("head slot should be empty (gap)")
	}
	if w.canPlace(4) {
		t.Error("canPlace(4) should be false (outside window)")
	}
	u0 := &UOp{Seq: 0}
	w.place(0, u0)
	if w.headUop() != u0 {
		t.Error("head should now be filled")
	}
	w.popHead()
	if !w.canPlace(4) {
		t.Error("window should have slid forward")
	}
}

func TestWindowSquashPath(t *testing.T) {
	w := newWindow(8)
	for i := 0; i < 5; i++ {
		w.pushTail(&UOp{Seq: uint64(i + 1)})
	}
	// Squash entries at virtual indices 3,4.
	w.clearAt(4)
	w.shrinkTail(4)
	w.clearAt(3)
	w.shrinkTail(3)
	if w.tail != 3 || w.occupancy() != 3 {
		t.Errorf("tail=%d occ=%d, want 3,3", w.tail, w.occupancy())
	}
	v := w.pushTail(&UOp{Seq: 9})
	if v != 3 {
		t.Errorf("pushTail after squash -> %d, want 3", v)
	}
}

func TestWindowPlacePanics(t *testing.T) {
	w := newWindow(2)
	w.place(0, &UOp{})
	for _, v := range []uint64{0, 2} { // occupied slot; out of window
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("place(%d) did not panic", v)
				}
			}()
			w.place(v, &UOp{})
		}()
	}
}
