package pipeline

import (
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// This file implements event-driven issue-queue wakeup. The previous design
// rescanned every queued uop's source ready-cycles each cycle (O(IQ) per
// cycle, with an additional O(IQ) packetReady scan per trailing candidate).
// Instead, each uop tracks how many of its sources still await a producer
// (WaitN); writeback walks the per-physical-register waiter list and moves
// uops whose last operand was produced into a calendar keyed by their ready
// cycle; issueStage drains exactly the calendar bucket of the current cycle
// into a per-slot ready bitmask. Wakeup work is O(uops woken), and the gang
// condition for trailing packets is a counter lookup instead of a scan.

// initWakeup sizes the waiter lists and the calendar ring. The ring must span
// strictly more cycles than the largest gap between an insertion cycle and
// the target ready cycle; that gap is bounded by the worst-case execution
// latency (a ready cycle is always some producer's DoneCycle, set at most one
// full latency after the current cycle). Buckets are drained every cycle, so
// a ring larger than the horizon means a bucket can never hold entries for
// two different cycles.
func (m *Machine) initWakeup() {
	maxLat := m.cfg.FDivLat
	if m.cfg.LVQLat > maxLat {
		maxLat = m.cfg.LVQLat
	}
	for cl := isa.UnitClass(0); cl < isa.NumUnitClasses; cl++ {
		if m.cfg.ClassLat[cl] > maxLat {
			maxLat = m.cfg.ClassLat[cl]
		}
	}
	if memLat := m.cfg.Cache.L1Lat + m.cfg.Cache.L2Lat + m.cfg.Cache.MemLat; memLat > maxLat {
		maxLat = memLat
	}
	size := int64(1)
	for size < int64(maxLat)+2 {
		size <<= 1
	}
	m.cal = make([][]*UOp, size)
	m.calMask = size - 1
	// Pre-carve a small capacity for every bucket (same trick as the waiter
	// lists below): buckets rarely hold more than an issue width of wakes.
	calBacking := make([]*UOp, 4*size)
	for i := range m.cal {
		m.cal[i] = calBacking[4*i : 4*i : 4*i+4]
	}

	// One backing array carves an initial capacity for every waiter list;
	// lists that outgrow it reallocate individually, and a drained list is
	// reused via ws[:0].
	m.regWaiters = make([][]*UOp, m.cfg.PhysRegs)
	backing := make([]*UOp, 2*m.cfg.PhysRegs)
	for i := range m.regWaiters {
		m.regWaiters[i] = backing[2*i : 2*i : 2*i+2]
	}
}

// slotReady reports whether the uop in payload slot is operand-ready.
func (m *Machine) slotReady(slot int) bool {
	return m.readyMask[slot>>6]>>(uint(slot)&63)&1 != 0
}

func (m *Machine) setSlotReady(slot int)   { m.readyMask[slot>>6] |= 1 << (uint(slot) & 63) }
func (m *Machine) clearSlotReady(slot int) { m.readyMask[slot>>6] &^= 1 << (uint(slot) & 63) }

// registerWakeup wires a freshly dispatched uop into the wakeup machinery.
// Called from enqueueIQ; dispatch runs after issue within a Tick, so "ready
// now" here matches the cycle the old rescan would first have seen the uop
// ready.
func (m *Machine) registerWakeup(u *UOp) {
	u.WaitN = 0
	u.InCal = false
	rc := int64(0)
	for _, p := range [2]rename.PhysReg{u.PSrc1, u.PSrc2} {
		if p == rename.None {
			continue
		}
		if at := m.rf.ReadyAt(p); at == rename.FarFuture {
			u.WaitN++
			m.regWaiters[p] = append(m.regWaiters[p], u)
		} else if at > rc {
			rc = at
		}
	}
	if u.WaitN > 0 {
		u.ReadyCycle = rename.FarFuture
		m.notePacketNotReady(u)
		return
	}
	u.ReadyCycle = rc
	if rc <= m.cycle {
		m.setSlotReady(u.IQSlot)
		return
	}
	m.notePacketNotReady(u)
	m.calInsert(rc, u)
}

// wakeRegister drains the waiter list of a physical register whose producer
// just issued with the given availability cycle. Waiters whose last pending
// operand this was move to the calendar (readyAt is strictly in the future:
// every latency is at least one cycle).
func (m *Machine) wakeRegister(p rename.PhysReg) {
	ws := m.regWaiters[p]
	if len(ws) == 0 {
		return
	}
	for _, u := range ws {
		u.WaitN--
		if u.WaitN > 0 {
			continue
		}
		rc := int64(0)
		if u.PSrc1 != rename.None {
			if at := m.rf.ReadyAt(u.PSrc1); at > rc {
				rc = at
			}
		}
		if u.PSrc2 != rename.None {
			if at := m.rf.ReadyAt(u.PSrc2); at > rc {
				rc = at
			}
		}
		u.ReadyCycle = rc
		m.calInsert(rc, u)
	}
	m.regWaiters[p] = ws[:0]
}

// calInsert queues u to become issue-eligible at the given cycle.
func (m *Machine) calInsert(cycle int64, u *UOp) {
	if cycle-m.cycle > m.calMask {
		m.internalError("wakeup calendar horizon exceeded")
	}
	u.InCal = true
	idx := cycle & m.calMask
	m.cal[idx] = append(m.cal[idx], u)
}

// drainWakeups flips the ready bit of every uop whose operands become
// available this cycle. Runs at the top of issueStage; calendar entries are
// always inserted for strictly later cycles, so the current bucket is
// complete by then.
func (m *Machine) drainWakeups() {
	idx := m.cycle & m.calMask
	lst := m.cal[idx]
	if len(lst) == 0 {
		return
	}
	for _, u := range lst {
		u.InCal = false
		m.setSlotReady(u.IQSlot)
		m.notePacketReady(u)
	}
	m.cal[idx] = lst[:0]
}

// notePacketNotReady counts a trailing DTQ-mode packet member entering the
// queue not yet operand-ready.
func (m *Machine) notePacketNotReady(u *UOp) {
	if m.packetPending == nil || u.Thread != trailThread {
		return
	}
	m.packetPending.inc(u.PacketID)
}

// notePacketReady reverses notePacketNotReady when the member becomes ready
// (or leaves the queue on a squash).
func (m *Machine) notePacketReady(u *UOp) {
	if m.packetPending == nil || u.Thread != trailThread {
		return
	}
	m.packetPending.dec(u.PacketID)
}

// unwireWakeup removes a squashed, still-queued uop from every wakeup
// structure. Squash recycles un-issued uops immediately, so leaving a stale
// pointer in a waiter list or calendar bucket would corrupt a later run.
func (m *Machine) unwireWakeup(u *UOp) {
	switch {
	case u.WaitN > 0:
		// Still watching at least one pending source: remove every occurrence
		// from the watched registers' waiter lists. A source whose ready
		// cycle is concrete was never watched (or its list was drained when
		// the producer issued).
		for _, p := range [2]rename.PhysReg{u.PSrc1, u.PSrc2} {
			if p == rename.None || m.rf.ReadyAt(p) != rename.FarFuture {
				continue
			}
			ws := m.regWaiters[p]
			w := ws[:0]
			for _, x := range ws {
				if x != u {
					w = append(w, x)
				}
			}
			m.regWaiters[p] = w
		}
		u.WaitN = 0
		m.notePacketReady(u)
	case u.InCal:
		idx := u.ReadyCycle & m.calMask
		lst := m.cal[idx]
		w := lst[:0]
		for _, x := range lst {
			if x != u {
				w = append(w, x)
			}
		}
		m.cal[idx] = w
		u.InCal = false
		m.notePacketReady(u)
	default:
		// Already operand-ready: just clear the slot's bit (the packet
		// counter was decremented when it became ready, or never incremented).
		m.clearSlotReady(u.IQSlot)
	}
}

// pendTable counts not-yet-ready members per in-flight trailing packet. At
// most IssueQueue distinct packets have queued members at once, so a linear
// scan over a handful of hot ids beats a map on both lookup and
// allocation cost.
type pendTable struct {
	ids    []uint64
	counts []int32
}

func (t *pendTable) inc(id uint64) {
	for i, v := range t.ids {
		if v == id {
			t.counts[i]++
			return
		}
	}
	t.ids = append(t.ids, id)
	t.counts = append(t.counts, 1)
}

func (t *pendTable) dec(id uint64) {
	for i, v := range t.ids {
		if v != id {
			continue
		}
		t.counts[i]--
		if t.counts[i] == 0 {
			last := len(t.ids) - 1
			t.ids[i] = t.ids[last]
			t.counts[i] = t.counts[last]
			t.ids = t.ids[:last]
			t.counts = t.counts[:last]
		}
		return
	}
}

// pending reports whether the packet still has a not-ready queued member.
func (t *pendTable) pending(id uint64) bool {
	for _, v := range t.ids {
		if v == id {
			return true
		}
	}
	return false
}

// clone deep-copies the table preserving entry order (swap-remove order is
// part of deterministic machine state).
func (t *pendTable) clone() *pendTable {
	return &pendTable{
		ids:    append([]uint64(nil), t.ids...),
		counts: append([]int32(nil), t.counts...),
	}
}
