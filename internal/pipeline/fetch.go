package pipeline

import (
	"blackjack/internal/isa"
	"blackjack/internal/redundancy"
	"blackjack/internal/rename"
)

// fetchStage gives the single-ported fetch unit to one thread per cycle. In
// redundant modes the trailing thread gets priority once the leading thread
// is far enough ahead (the slack policy of Section 3); otherwise the leading
// thread fetches. If the preferred thread cannot fetch this cycle, the other
// thread gets the slot opportunistically.
func (m *Machine) fetchStage() {
	if !m.mode.Redundant() {
		m.fetchLeading(m.threads[leadThread])
		return
	}
	lead, trail := m.threads[leadThread], m.threads[trailThread]
	slack := int64(lead.committed) - int64(trail.fetched)
	var preferTrailing bool
	switch {
	case m.leadStopped:
		preferTrailing = true
	case slack < int64(m.cfg.Slack):
		preferTrailing = false
	case m.mode.UsesDTQ():
		// BlackJack: the one-packet-per-cycle trailing fetch is the
		// narrower pipe; once the slack target is met the trailing thread
		// takes every fetch slot it can use and the leading thread fills
		// the leftovers.
		preferTrailing = true
	default:
		// SRT: both threads fetch efficiently, so share the port by
		// alternating priority — the threads stay interleaved in the
		// backend instead of executing in phases.
		preferTrailing = m.cycle%2 == 0
	}
	if preferTrailing {
		if m.fetchTrailing(trail) == 0 {
			m.fetchLeading(lead)
		}
		return
	}
	if m.fetchLeading(lead) == 0 {
		m.fetchTrailing(trail)
	}
}

// fetchLeading fetches up to one aligned block's worth of instructions for
// the leading/single thread, following branch predictions. The frontend way
// of each instruction is its PC offset within the aligned block (the paper's
// direct fetch mapping).
func (m *Machine) fetchLeading(t *thread) int {
	if t.fetchStopped || t.halted {
		return 0
	}
	pc := t.fetchPC
	width := m.cfg.FetchWidth
	n := 0
	block := -1
	for n < width {
		if pc < 0 || pc >= len(m.prog.Code) {
			// Wrong-path fetch ran off the program; stall until redirected.
			t.fetchStopped = true
			break
		}
		if block == -1 {
			block = pc / width
		} else if pc/width != block {
			break // aligned-block boundary
		}
		if t.fetchQ.Full() {
			break
		}
		raw := m.prog.Code[pc]
		item := fetchItem{pc: pc, raw: raw, way: pc % width, fetchCycle: m.cycle}
		next := pc + 1
		stop := false
		switch {
		case raw.Op == isa.OpHalt:
			t.fetchStopped = true
			stop = true
		case raw.Op == isa.OpJmp:
			item.predTaken = true
			next = int(raw.Imm)
			stop = true // taken branch ends the fetch group
		case raw.IsCondBranch():
			l := m.pred.Predict(pc)
			item.predTaken = l.Taken
			item.predLookup = l
			if item.predTaken {
				next = int(raw.Imm)
				stop = true
			}
		}
		t.fetchQ.Push(item)
		t.fetched++
		m.stats.Fetched[t.id] = t.fetched
		n++
		pc = next
		if stop {
			break
		}
	}
	t.fetchPC = pc
	return n
}

// fetchTrailing dispatches to the mode's trailing fetch mechanism.
func (m *Machine) fetchTrailing(t *thread) int {
	if t.halted {
		return 0
	}
	if m.mode.UsesDTQ() {
		return m.fetchTrailingPacket(t)
	}
	return m.fetchTrailingStream(t)
}

// fetchTrailingStream models SRT trailing fetch: the committed leading stream
// is fetched with the same aligned-block grouping and PC-offset way mapping
// the leading thread used — hence zero frontend diversity.
func (m *Machine) fetchTrailingStream(t *thread) int {
	if t.fetchQ.Free() < m.cfg.FetchWidth {
		return 0
	}
	group := m.stream.FetchGroup(m.cfg.FetchWidth)
	for _, e := range group {
		t.fetchQ.Push(m.streamItem(e))
		t.fetched++
		m.stats.Fetched[t.id] = t.fetched
	}
	return len(group)
}

func (m *Machine) streamItem(e redundancy.StreamEntry) fetchItem {
	return fetchItem{
		pc:           e.PC,
		raw:          e.Inst,
		way:          e.PC % m.cfg.FetchWidth,
		fetchCycle:   m.cycle,
		pairValid:    true,
		leadFrontWay: e.FrontWay,
		leadBackWay:  e.BackWay,
		leadClass:    e.Class,
		loadSeq:      e.LoadSeq,
		storeSeq:     e.StoreSeq,
		halt:         e.Halt,
	}
}

// fetchTrailingPacket fetches at most ONE shuffled packet per cycle
// (Section 4.3.1): fetching multiple packets could remap instructions to
// unintended frontend ways and lose spatial diversity. Slot index i maps to
// frontend way i.
func (m *Machine) fetchTrailingPacket(t *thread) int {
	pkt, ok := m.packets.Peek()
	if !ok {
		return 0
	}
	need := 0
	for _, s := range pkt.Slots {
		if !s.Empty() {
			need++
		}
	}
	if t.fetchQ.Free() < need {
		return 0
	}
	m.packets.Pop()
	m.stats.TrailingPackets++
	n := 0
	for i, s := range pkt.Slots {
		switch {
		case s.Entry != nil:
			e := s.Entry
			t.fetchQ.Push(fetchItem{
				pc:           e.PC,
				raw:          e.RawInst,
				way:          i,
				fetchCycle:   m.cycle,
				pairValid:    true,
				leadFrontWay: e.FrontWay,
				leadBackWay:  e.BackWay,
				leadClass:    e.Class,
				loadSeq:      e.LoadSeq,
				storeSeq:     e.StoreSeq,
				halt:         e.Halt,
				leadPSrc1:    e.PSrc1,
				leadPSrc2:    e.PSrc2,
				leadPDest:    e.PDest,
				virtAL:       e.VirtAL,
				virtLSQ:      e.VirtLSQ,
				packetID:     pkt.ID,
			})
			t.fetched++
			m.stats.Fetched[t.id] = t.fetched
			n++
			m.recycleEntry(e)
		case s.IsNOP:
			t.fetchQ.Push(fetchItem{
				pc:         -1,
				raw:        isa.Inst{Op: isa.OpNop},
				way:        i,
				fetchCycle: m.cycle,
				isNOP:      true,
				nopClass:   s.NopClass,
				packetID:   pkt.ID,
				// NOPs carry no rename state.
				leadPSrc1: rename.None, leadPSrc2: rename.None, leadPDest: rename.None,
			})
			t.fetchedNOPs++
			n++
		}
	}
	// Every slot's contents are now value-copied into the fetch queue; the
	// packet's slot array goes back to the shuffler.
	m.shuffler.RecycleSlots(pkt.Slots)
	return n
}
