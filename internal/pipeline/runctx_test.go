package pipeline

import (
	"context"
	"testing"
)

func TestRunContextCancellationInterrupts(t *testing.T) {
	// A long-running program under a pre-cancelled context must stop at the
	// first context poll with Interrupted set — the stats describe a partial
	// run, Deadlocked stays false.
	p := sumProgram(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithRunContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(1 << 20)
	if !st.Interrupted {
		t.Fatal("run under a cancelled context completed without Interrupted")
	}
	if st.Deadlocked {
		t.Error("interrupted run misreported as deadlocked")
	}
	// The poll fires every ctxCheckMask+1 cycles, so the run must have
	// stopped almost immediately relative to the full program.
	if st.Cycles > 2*(ctxCheckMask+1) {
		t.Errorf("interrupted run still took %d cycles", st.Cycles)
	}
}

func TestRunContextNilAndLiveComplete(t *testing.T) {
	// A live (never-cancelled) context must not perturb the run: same stats
	// as a context-free run of the same program.
	p := sumProgram(500)
	base, err := New(DefaultConfig(), ModeBlackJack, p, nil...)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Run(1 << 20)

	m, err := New(DefaultConfig(), ModeBlackJack, p, WithRunContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	got := m.Run(1 << 20)
	if got.Interrupted || got.Deadlocked {
		t.Fatalf("live-context run flagged Interrupted=%v Deadlocked=%v", got.Interrupted, got.Deadlocked)
	}
	if got.Cycles != want.Cycles || got.Committed != want.Committed || got.StoreSignature != want.StoreSignature {
		t.Errorf("live-context run diverged: cycles %d vs %d, committed %v vs %v",
			got.Cycles, want.Cycles, got.Committed, want.Committed)
	}
}

func TestForkDropsRunContext(t *testing.T) {
	// A fork must not inherit the parent's budget: the parent's context is
	// cancelled after Snapshot, and the fork still runs to completion.
	p := sumProgram(2000)
	ctx, cancel := context.WithCancel(context.Background())
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithRunContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	var cp *Checkpoint
	m.RunWithCheckpoints(1<<20, 512, func(m *Machine) {
		if cp == nil {
			cp = m.Snapshot()
		}
	})
	if cp == nil {
		t.Fatal("no checkpoint taken")
	}
	cancel()
	f := Fork(cp)
	st := f.Run(1 << 20)
	if st.Interrupted {
		t.Error("fork inherited the parent's cancelled run context")
	}
	if st.Deadlocked {
		t.Error("fork deadlocked")
	}
}
