package pipeline

import (
	"testing"

	"blackjack/internal/isa"
	"blackjack/internal/prog"
)

// Tiny redundancy queues exercise every commit-side backpressure path (BOQ,
// LVQ, store buffer, stream, DTQ, packet queue). The machine must stay
// correct and live — just slower.
func TestTinyQueuesStayCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BOQ = 4
	cfg.LVQ = 6
	cfg.StoreBuffer = 3
	cfg.DTQ = 48
	cfg.PacketQueue = 4
	cfg.Stream = 16
	cfg.Slack = 8
	p := prog.MustBenchmark("gcc")
	for _, mode := range []Mode{ModeSRT, ModeBlackJackNS, ModeBlackJack} {
		t.Run(mode.String(), func(t *testing.T) {
			m, st := run(t, cfg, mode, p, 3000)
			if !m.Sink().Empty() {
				t.Fatalf("detections: %v", m.Sink().Events())
			}
			g := golden(t, p, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() {
				t.Error("output diverged under queue pressure")
			}
		})
	}
}

// Tiny window structures (issue queue, LSQ, active list) and a minimal
// physical register pool exercise every rename/dispatch stall path.
func TestTinyWindowsStayCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueQueue = 8
	cfg.LSQ = 4
	cfg.ActiveList = 16
	cfg.PhysRegs = 2*isa.NumArchRegs + 24
	cfg.FetchQueue = 8
	p := prog.MustBenchmark("swim")
	for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJack} {
		t.Run(mode.String(), func(t *testing.T) {
			m, st := run(t, cfg, mode, p, 2000)
			if !m.Sink().Empty() {
				t.Fatalf("detections: %v", m.Sink().Events())
			}
			g := golden(t, p, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() {
				t.Error("output diverged under window pressure")
			}
		})
	}
}

// Unpipelined dividers (20-cycle occupancy) and FP divide on the multiplier
// ways exercise long unit-busy windows; a div-heavy workload must still be
// architecturally exact and make progress in every mode.
func TestDivideHeavyWorkload(t *testing.T) {
	pr := prog.Profile{
		Name: "divs", Seed: 5,
		IntDivFrac: 0.15, IntMulFrac: 0.1, FPMulFrac: 0.15, FPALUFrac: 0.1,
		LoadFrac: 0.1, StoreFrac: 0.05,
		ChainFrac: 0.2, Streams: 4, WorkingSetKB: 32, Stride: 64,
		BranchEvery: 10, DataDepBranchFrac: 0.2, SkipMax: 2,
		BlockOps: 16, Blocks: 4,
	}
	p, err := prog.Generate(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSingle, ModeSRT, ModeBlackJack} {
		t.Run(mode.String(), func(t *testing.T) {
			m, st := run(t, DefaultConfig(), mode, p, 2500)
			if !m.Sink().Empty() {
				t.Fatalf("detections: %v", m.Sink().Events())
			}
			g := golden(t, p, st.Committed[0])
			if st.StoreSignature != g.StoreSignature() {
				t.Error("output diverged with unpipelined dividers")
			}
		})
	}
}

// A wider machine (8-wide, more units) must also hold every invariant —
// safe-shuffle's algorithm is width-generic.
func TestWideMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FetchWidth = 8
	cfg.RenameWidth = 8
	cfg.IssueWidth = 8
	cfg.CommitWidth = 8
	cfg.Units[isa.UnitIntALU] = 6
	cfg.Units[isa.UnitFPALU] = 3
	cfg.FetchQueue = 32
	p := prog.MustBenchmark("sixtrack")
	m, st := run(t, cfg, ModeBlackJack, p, 4000)
	if !m.Sink().Empty() {
		t.Fatalf("detections: %v", m.Sink().Events())
	}
	if fd := st.FrontendDiversity(); fd != 1.0 {
		t.Errorf("frontend diversity %.4f != 1 on wide machine", fd)
	}
	g := golden(t, p, st.Committed[0])
	if st.StoreSignature != g.StoreSignature() {
		t.Error("output diverged on wide machine")
	}
}

// Extreme slack values at both ends must be live and correct.
func TestSlackExtremes(t *testing.T) {
	p := prog.MustBenchmark("gzip")
	for _, slack := range []int{0, 1, 2048} {
		cfg := DefaultConfig()
		cfg.Slack = slack
		m, st := run(t, cfg, ModeBlackJack, p, 2500)
		if !m.Sink().Empty() {
			t.Fatalf("slack %d: detections: %v", slack, m.Sink().Events())
		}
		g := golden(t, p, st.Committed[0])
		if st.StoreSignature != g.StoreSignature() {
			t.Errorf("slack %d: output diverged", slack)
		}
	}
}

// Per-class diversity accounting must cover every class the workload uses
// and reconcile with the aggregate counters.
func TestPerClassDiversityAccounting(t *testing.T) {
	p := prog.MustBenchmark("sixtrack")
	_, st := run(t, DefaultConfig(), ModeBlackJack, p, 5000)
	var pairs, diverse uint64
	for c := 0; c < int(isa.NumUnitClasses); c++ {
		frac, n := st.ClassDiversity(c)
		pairs += n
		diverse += uint64(frac*float64(n) + 0.5)
	}
	if pairs != st.Pairs {
		t.Errorf("per-class pairs %d != total %d", pairs, st.Pairs)
	}
	if d := int64(diverse) - int64(st.BeDiversePairs); d > 3 || d < -3 {
		t.Errorf("per-class diverse %d != total %d", diverse, st.BeDiversePairs)
	}
	if _, n := st.ClassDiversity(int(isa.UnitFPMul)); n == 0 {
		t.Error("FP-heavy workload recorded no fpMul pairs")
	}
}
