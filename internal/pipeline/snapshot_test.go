package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"blackjack/internal/isa"
	"blackjack/internal/prog"
)

// The five machine variants checkpointing must reproduce exactly: the four
// modes of Section 6 plus the merging-shuffle extension.
var snapshotVariants = []struct {
	name  string
	mode  Mode
	merge bool
}{
	{"single", ModeSingle, false},
	{"srt", ModeSRT, false},
	{"blackjack-ns", ModeBlackJackNS, false},
	{"blackjack", ModeBlackJack, false},
	{"blackjack-merge", ModeBlackJack, true},
}

// smallCacheConfig shrinks the cache hierarchy so per-cycle snapshots stay
// cheap (the default 2MB L2 dominates clone cost); determinism does not
// depend on cache geometry.
func smallCacheConfig(merge bool) Config {
	cfg := DefaultConfig()
	cfg.MergePackets = merge
	cfg.Cache.L1SizeKB = 16
	cfg.Cache.L2SizeKB = 64
	return cfg
}

// assertSameFinalState compares every externally observable piece of final
// machine state: full statistics, the committed architectural registers of
// both contexts, and the memory image.
func assertSameFinalState(t *testing.T, label string, ref, got *Machine, refSt, gotSt *Stats) {
	t.Helper()
	if !reflect.DeepEqual(refSt, gotSt) {
		t.Fatalf("%s: stats diverge:\ncold: %+v\nfork: %+v", label, refSt, gotSt)
	}
	for r := 0; r < isa.NumArchRegs; r++ {
		if a, b := ref.ArchReg(0, isa.Reg(r)), got.ArchReg(0, isa.Reg(r)); a != b {
			t.Fatalf("%s: leading arch reg %d: cold %#x, fork %#x", label, r, a, b)
		}
	}
	if ref.mode.UsesDTQ() {
		for r := 0; r < isa.NumArchRegs; r++ {
			if a, b := ref.TrailingArchReg(isa.Reg(r)), got.TrailingArchReg(isa.Reg(r)); a != b {
				t.Fatalf("%s: trailing arch reg %d: cold %#x, fork %#x", label, r, a, b)
			}
		}
	}
	if ref.MemSize() != got.MemSize() {
		t.Fatalf("%s: memory sizes differ: %d vs %d", label, ref.MemSize(), got.MemSize())
	}
	for addr := 0; addr < ref.MemSize(); addr += 8 {
		if a, b := ref.MemWord(uint64(addr)), got.MemWord(uint64(addr)); a != b {
			t.Fatalf("%s: mem[%d]: cold %#x, fork %#x", label, addr, a, b)
		}
	}
}

// A machine forked from a snapshot taken at EVERY cycle must finish
// byte-identical to the cold run it was forked from. This is the strongest
// interval (1): every single cycle of the run is a valid fork point.
func TestForkEveryCycleMatchesColdRun(t *testing.T) {
	const n = 1 << 20
	p := sumProgram(60)
	for _, v := range snapshotVariants {
		t.Run(v.name, func(t *testing.T) {
			cfg := smallCacheConfig(v.merge)
			ref, refSt := run(t, cfg, v.mode, p, n)

			m, err := New(cfg, v.mode, p)
			if err != nil {
				t.Fatal(err)
			}
			forks := 0
			st := m.RunWithCheckpoints(n, 1, func(live *Machine) {
				cp := live.Snapshot()
				f := Fork(cp)
				fSt := f.Run(n)
				label := fmt.Sprintf("fork@%d", cp.Cycle())
				assertSameFinalState(t, label, ref, f, refSt, fSt)
				forks++
			})
			if st.Deadlocked {
				t.Fatal("checkpointed run deadlocked")
			}
			// The hooked run itself must also match (hooks must not perturb).
			assertSameFinalState(t, "hooked-run", ref, m, refSt, st)
			if forks < 100 {
				t.Fatalf("only %d snapshots taken; program too short to exercise forking", forks)
			}
		})
	}
}

// Same property at sparse intervals on a real benchmark program (branchy
// code, cache misses, mispredict squashes in flight at snapshot time).
func TestForkAtIntervalsMatchesColdRun(t *testing.T) {
	const n = 3000
	p := prog.MustBenchmark("gcc")
	for _, v := range snapshotVariants {
		for _, interval := range []int64{250, 1000} {
			t.Run(fmt.Sprintf("%s/interval-%d", v.name, interval), func(t *testing.T) {
				cfg := smallCacheConfig(v.merge)
				ref, refSt := run(t, cfg, v.mode, p, n)

				m, err := New(cfg, v.mode, p)
				if err != nil {
					t.Fatal(err)
				}
				forks := 0
				st := m.RunWithCheckpoints(n, interval, func(live *Machine) {
					cp := live.Snapshot()
					f := Fork(cp)
					fSt := f.Run(n)
					label := fmt.Sprintf("fork@%d", cp.Cycle())
					assertSameFinalState(t, label, ref, f, refSt, fSt)
					forks++
				})
				if st.Deadlocked {
					t.Fatal("checkpointed run deadlocked")
				}
				assertSameFinalState(t, "hooked-run", ref, m, refSt, st)
				if forks == 0 {
					t.Fatal("no snapshots taken")
				}
			})
		}
	}
}

// Restore must rewind the SAME machine object to the checkpoint; re-running
// it must reproduce the original final state exactly.
func TestRestoreRewindsMachine(t *testing.T) {
	const n = 1 << 20
	p := sumProgram(200)
	for _, v := range snapshotVariants {
		t.Run(v.name, func(t *testing.T) {
			cfg := smallCacheConfig(v.merge)
			m, err := New(cfg, v.mode, p)
			if err != nil {
				t.Fatal(err)
			}
			var cp *Checkpoint
			st := m.RunWithCheckpoints(n, 100, func(live *Machine) {
				if cp == nil {
					cp = live.Snapshot()
				}
			})
			if st.Deadlocked {
				t.Fatal("run deadlocked")
			}
			if cp == nil {
				t.Fatal("no checkpoint taken")
			}
			first := *st // copy: Run returns a pointer into the machine

			m.Restore(cp)
			if m.StatsSnapshot().Cycles != cp.Cycle() {
				t.Fatalf("restore left cycle %d, checkpoint was %d", m.StatsSnapshot().Cycles, cp.Cycle())
			}
			again := m.Run(n)
			if !reflect.DeepEqual(&first, again) {
				t.Fatalf("rerun after Restore diverged:\nfirst: %+v\nagain: %+v", first, *again)
			}
		})
	}
}

// Mutation smoke test: the comparison machinery above must actually catch
// state divergence. Corrupt one register of a forked copy and verify the
// cold/fork final states now differ — if a Snapshot field were ever missed,
// this is the failure shape the tests above would produce.
func TestForkStateComparisonCatchesMutation(t *testing.T) {
	const n = 1 << 20
	p := sumProgram(200)
	cfg := smallCacheConfig(false)
	ref, refSt := run(t, cfg, ModeSingle, p, n)

	m, err := New(cfg, ModeSingle, p)
	if err != nil {
		t.Fatal(err)
	}
	var cp *Checkpoint
	st := m.RunWithCheckpoints(n, 100, func(live *Machine) {
		if cp == nil {
			cp = live.Snapshot()
		}
	})
	if st.Deadlocked || cp == nil {
		t.Fatal("run deadlocked or no checkpoint")
	}

	f := Fork(cp)
	// Corrupt a memory word the program never writes, behind the pipeline's
	// back. (A register corruption can die silently: consumers capture values
	// at issue and the loop remaps its registers every iteration.)
	f.mem[8] ^= 0xff
	fSt := f.Run(n)

	same := reflect.DeepEqual(refSt, fSt)
	for r := 0; r < isa.NumArchRegs && same; r++ {
		if ref.ArchReg(0, isa.Reg(r)) != f.ArchReg(0, isa.Reg(r)) {
			same = false
		}
	}
	for addr := 0; addr < ref.MemSize() && same; addr += 8 {
		if ref.MemWord(uint64(addr)) != f.MemWord(uint64(addr)) {
			same = false
		}
	}
	if same {
		t.Fatal("corrupted fork produced identical final state; comparison has no teeth")
	}
}
