package pipeline

import (
	"testing"

	"blackjack/internal/obs"
	"blackjack/internal/prog"
)

func TestObsTracerRecordsStageEvents(t *testing.T) {
	p := sumProgram(20)
	tr := obs.NewTracer(1 << 14)
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithObsTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(1 << 20)
	if st.Deadlocked {
		t.Fatal("deadlocked")
	}
	if tr.Total() == 0 {
		t.Fatal("no obs events recorded")
	}
	var kinds [obs.NumKinds]int
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindFetch, obs.KindDispatch, obs.KindIssue, obs.KindWriteback, obs.KindCommit} {
		if kinds[k] == 0 {
			t.Errorf("no %v events", k)
		}
	}
	// Redundant modes emit both threads' copies.
	both := [2]bool{}
	for _, e := range tr.Events() {
		if e.Thread == 0 || e.Thread == 1 {
			both[e.Thread] = true
		}
	}
	if !both[0] || !both[1] {
		t.Error("missing a thread's events")
	}
}

func TestObsShuffleEventsCarryPacketSizes(t *testing.T) {
	p := prog.MustBenchmark("gcc")
	tr := obs.NewTracer(1 << 14)
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithObsTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2000)
	found := false
	for _, e := range tr.Events() {
		if e.Kind == obs.KindShuffle {
			found = true
			in := e.Arg >> 32         // instructions in the leading packet
			out := e.Arg & 0xffffffff // trailing packets after splitting
			if in == 0 || out == 0 {
				t.Fatalf("shuffle event with empty side: in=%d out=%d", in, out)
			}
		}
	}
	if !found {
		t.Error("no shuffle events in BlackJack mode")
	}
}

func TestMetricsHistogramsSampled(t *testing.T) {
	p := prog.MustBenchmark("gcc")
	reg := obs.NewRegistry()
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(5000)
	h := reg.HistogramByName("pipeline.iq.occupancy")
	if h == nil || h.Count() == 0 {
		t.Fatal("IQ occupancy histogram not sampled")
	}
	if h.Count() != uint64(st.Cycles) {
		t.Errorf("IQ samples = %d, want one per cycle (%d)", h.Count(), st.Cycles)
	}
	// BlackJack runs a DTQ and LVQ; the BOQ is SRT-only.
	for _, name := range []string{"pipeline.dtq.depth", "pipeline.lvq.depth"} {
		if q := reg.HistogramByName(name); q == nil || q.Count() == 0 {
			t.Errorf("%s not sampled", name)
		}
	}
	if reg.HistogramByName("pipeline.boq.depth") != nil {
		t.Error("BOQ histogram registered in BlackJack mode")
	}

	srtReg := obs.NewRegistry()
	ms, err := New(DefaultConfig(), ModeSRT, p, WithMetrics(srtReg))
	if err != nil {
		t.Fatal(err)
	}
	ms.Run(5000)
	if q := srtReg.HistogramByName("pipeline.boq.depth"); q == nil || q.Count() == 0 {
		t.Error("pipeline.boq.depth not sampled in SRT mode")
	}
}

// TestObsStateNotForked pins down that observability sinks are harness state,
// not machine state: a fork without its own WithObsTracer/WithMetrics must not
// keep feeding the parent's.
func TestObsStateNotForked(t *testing.T) {
	p := prog.MustBenchmark("gcc")
	tr := obs.NewTracer(1 << 14)
	reg := obs.NewRegistry()
	m, err := New(DefaultConfig(), ModeBlackJack, p, WithObsTracer(tr), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot mid-run (like campaign warmups do) so forks still have
	// instructions left in their budget.
	var cp *Checkpoint
	m.RunWithCheckpoints(2000, 500, func(live *Machine) {
		if cp == nil {
			cp = live.Snapshot()
		}
	})
	if cp == nil {
		t.Fatal("no checkpoint taken")
	}
	before := tr.Total()
	hBefore := reg.HistogramByName("pipeline.iq.occupancy").Count()

	f := Fork(cp)
	f.Run(2000)
	if tr.Total() != before {
		t.Errorf("fork leaked %d events into parent tracer", tr.Total()-before)
	}
	if got := reg.HistogramByName("pipeline.iq.occupancy").Count(); got != hBefore {
		t.Errorf("fork leaked %d histogram samples into parent registry", got-hBefore)
	}

	// A fork CAN attach its own sinks.
	tr2 := obs.NewTracer(1 << 14)
	reg2 := obs.NewRegistry()
	f2 := Fork(cp, WithObsTracer(tr2), WithMetrics(reg2))
	f2.Run(2000)
	if tr2.Total() == 0 {
		t.Error("fork with its own tracer recorded nothing")
	}
	if reg2.HistogramByName("pipeline.iq.occupancy").Count() == 0 {
		t.Error("fork with its own registry sampled nothing")
	}
}

// TestTraceHookDisabledDoesNotAllocate guards the disabled-path contract: the
// per-stage hook with no tracer attached must be alloc-free, and so must the
// structured tracer path once attached.
func TestTraceHookDisabledDoesNotAllocate(t *testing.T) {
	p := sumProgram(20)
	m, err := New(DefaultConfig(), ModeBlackJack, p)
	if err != nil {
		t.Fatal(err)
	}
	u := &UOp{Thread: 1, Seq: 42, PC: 3}
	if allocs := testing.AllocsPerRun(1000, func() { m.trace(TraceIssue, u) }); allocs != 0 {
		t.Errorf("disabled trace hook allocates %v per call, want 0", allocs)
	}

	m2, err := New(DefaultConfig(), ModeBlackJack, p, WithObsTracer(obs.NewTracer(64)))
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() { m2.trace(TraceIssue, u) }); allocs != 0 {
		t.Errorf("obs trace hook allocates %v per call, want 0", allocs)
	}
}
