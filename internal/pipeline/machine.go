package pipeline

import (
	"context"
	"encoding/binary"
	"fmt"

	"blackjack/internal/area"
	"blackjack/internal/bpred"
	"blackjack/internal/cache"
	"blackjack/internal/core"
	"blackjack/internal/detect"
	"blackjack/internal/isa"
	"blackjack/internal/obs"
	"blackjack/internal/queues"
	"blackjack/internal/redundancy"
	"blackjack/internal/rename"
)

// Injector corrupts values flowing through specific physical resources,
// modeling hard (permanent, possibly state-dependent) defects. A nil injector
// means a fault-free machine. Implementations live in internal/fault.
type Injector interface {
	// CorruptDecode corrupts the decoded form of an instruction processed on
	// frontend way w.
	CorruptDecode(way int, in isa.Inst) isa.Inst
	// CorruptPayload corrupts the instruction payload read from issue-queue
	// slot `slot` by thread `thread` at issue.
	CorruptPayload(slot, thread int, in isa.Inst) isa.Inst
	// CorruptResult corrupts the result computed on backend way (class, way).
	CorruptResult(class isa.UnitClass, way int, in isa.Inst, v uint64) uint64
	// CorruptAddr corrupts an effective address computed on backend way
	// (class, way).
	CorruptAddr(class isa.UnitClass, way int, addr uint64) uint64
	// CorruptBranch corrupts a branch direction computed on backend way
	// (class, way).
	CorruptBranch(class isa.UnitClass, way int, taken bool) bool
	// CorruptBranchTarget corrupts a branch target computed on backend way
	// (class, way) — the control-flow-error model. The corrupted target feeds
	// the redirect points and commit-time branch validation.
	CorruptBranchTarget(class isa.UnitClass, way int, target int) int
	// CorruptRegRead corrupts a value read from physical register p.
	CorruptRegRead(p rename.PhysReg, v uint64) uint64
}

// eventHeap orders in-flight UOps by completion cycle.
type eventHeap []*UOp

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].DoneCycle != h[j].DoneCycle {
		return h[i].DoneCycle < h[j].DoneCycle
	}
	return h[i].GSeq < h[j].GSeq // older resolves first on ties
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*UOp)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	u := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return u
}

// Machine is one simulated SMT core running one program in one mode.
type Machine struct {
	cfg  Config
	mode Mode
	prog *isa.Program
	mem  []byte

	rf       *rename.RegFile
	freeList *rename.FreeList
	threads  []*thread

	iq         []*UOp // dispatch order == GSeq order
	iqSlots    []bool // payload RAM slot occupancy
	unitFreeAt [isa.NumUnitClasses][]int64

	// Wakeup machinery (see wakeup.go): one ready bit per payload slot, the
	// per-physical-register waiter lists, the wakeup calendar (a power-of-two
	// ring of buckets indexed by ready cycle & calMask; the ring spans more
	// than the worst-case execution latency, so a bucket is always drained
	// before its index is reused), and — in DTQ modes — the count of
	// not-yet-ready members per trailing packet (the gang-wakeup condition as
	// a counter instead of a queue scan).
	readyMask     []uint64
	regWaiters    [][]*UOp
	cal           [][]*UOp
	calMask       int64
	packetPending *pendTable

	pred   *bpred.Predictor
	dcache *cache.Hierarchy

	// SRT coupling.
	boq    *redundancy.BOQ
	lvq    *redundancy.LVQ
	sb     *redundancy.StoreBuffer
	stream *redundancy.Stream

	// BlackJack.
	dtq      *core.DTQ
	shuffler *core.Shuffler
	packets  *queues.Ring[core.Packet]
	dr       *core.DoubleRename
	oc       *core.OrderChecker

	sink       *detect.Sink
	inj        Injector
	areaModel  area.Model
	tracer     *Tracer
	shuffleObs ShuffleObserver

	// Observability (internal/obs). All nil when disabled: the hot-path
	// hooks are single nil checks, and like the tracer none of this state
	// survives a Snapshot/Fork (trace state is not machine state). The
	// histogram handles are resolved once in initObs so per-cycle sampling
	// never touches the registry maps.
	otr     *obs.Tracer
	metrics *obs.Registry
	hIQ     *obs.Histogram
	hDTQ    *obs.Histogram
	hBOQ    *obs.Histogram
	hLVQ    *obs.Histogram

	events eventHeap
	cycle  int64
	gseq   uint64

	// Free lists for the per-instruction hot-path records. Strictly
	// per-machine state — no globals, no sync — so machines stay independent
	// under the parallel harness. A recycled record is fully overwritten at
	// its next allocation site.
	uopFree   []*UOp
	entryFree []*core.Entry

	cap         uint64 // leading-commit target for this run (machine-local)
	leadStopped bool

	// archBase is the committed-instruction count already covered by the
	// functional prefix when the machine was built with NewFromArch; 0 for a
	// machine starting at reset. Run budgets and Stats.Committed are in
	// whole-program terms, so both convert through it.
	archBase uint64

	// stopOnDetect makes the run loop stop at the first detection event
	// (see WithStopOnDetect).
	stopOnDetect bool

	// Dispatch-time reservations of commit-side redundancy queues. A leading
	// load/store may only DISPATCH with an LVQ / store-buffer slot reserved:
	// otherwise either a committed-but-unqueueable instruction at the head
	// of the leading active list blocks the DTQ head packet, or (if gated at
	// issue instead) unissuable loads fill the unified issue queue — and
	// both block the trailing thread, the only thing that drains those
	// queues (the same cyclic-dependency shape as the DTQ dispatch gate).
	lvqInFlight int
	sbInFlight  int

	// Run-loop progress tracking. These live on the machine (not as Run
	// locals) so a forked copy resumes livelock detection exactly where the
	// snapshot left it — a cold run and a fork must deadlock, or not, at the
	// same cycle.
	lastCommitTotal   uint64
	lastProgressCycle int64

	// runCtx, when set, bounds the run's wall-clock budget: the run loop
	// polls it every ctxCheckMask+1 cycles and stops with Stats.Interrupted
	// when it is done. Like the tracer/metrics it is harness state, not
	// machine state — Snapshot/Fork drop it.
	runCtx context.Context

	stats    Stats
	storeSig uint64
}

// Option configures a Machine.
type Option func(*Machine)

// WithInjector installs a hard-fault injector.
func WithInjector(inj Injector) Option { return func(m *Machine) { m.inj = inj } }

// WithSink installs a shared detection sink (a fresh one is created
// otherwise).
func WithSink(s *detect.Sink) Option { return func(m *Machine) { m.sink = s } }

// ShuffleObserver watches every safe-shuffle invocation: the committed DTQ
// packet consumed (in) and the trailing packets produced (out), in the cycle
// they were shuffled. Both slices — and the entries and slot arrays they
// reference — are owned by the machine and are only valid for the duration of
// the call; observers must copy anything they retain. Verification harnesses
// (internal/diffcheck) use this to check structural invariants (permutation,
// spatial diversity, DTQ drain order) during execution.
type ShuffleObserver func(cycle int64, in []*core.Entry, out []core.Packet)

// WithShuffleObserver attaches a safe-shuffle observer. It only fires in
// DTQ-bearing modes (BlackJack, BlackJack-NS); a nil observer costs nothing.
func WithShuffleObserver(obs ShuffleObserver) Option {
	return func(m *Machine) { m.shuffleObs = obs }
}

// WithObsTracer attaches a structured event tracer (internal/obs): every
// stage transition, shuffle, and squash is recorded as an obs.Event. A nil
// tracer costs one pointer check per hook.
func WithObsTracer(t *obs.Tracer) Option { return func(m *Machine) { m.otr = t } }

// WithMetrics attaches a metrics registry: the machine samples queue
// occupancy (issue queue, DTQ, BOQ, LVQ) into registry histograms every
// cycle. Final Stats counters are exported separately via Stats.Export.
// The registry must not be shared with a concurrently running machine.
func WithMetrics(r *obs.Registry) Option { return func(m *Machine) { m.metrics = r } }

// ctxCheckMask makes the run loop poll its context every 4096 cycles:
// cheap enough to be invisible in the hot loop, fine-grained enough that a
// wall-clock budget lands within microseconds of the deadline.
const ctxCheckMask = 4095

// WithRunContext bounds the run with a context: when ctx is cancelled or
// its deadline passes, the run loop stops at the next poll (every 4096
// cycles) and sets Stats.Interrupted instead of running to completion. The
// resilience layer uses this as the per-run wall-clock budget — the only
// way to stop a livelocked simulation that the cycle backstop has not
// caught yet. A nil ctx (the default) disables the polling entirely.
func WithRunContext(ctx context.Context) Option { return func(m *Machine) { m.runCtx = ctx } }

// Occupancy-histogram bucket bounds, sized to the Table 1 queues.
var (
	iqOccBounds    = []float64{0, 4, 8, 16, 24, 32, 48, 64}
	queueOccBounds = []float64{0, 2, 4, 8, 16, 32, 64, 128}
)

// initObs resolves the occupancy-histogram handles on the attached
// registry. Called at the end of New and after Fork applies options, when
// the machine's queues exist.
func (m *Machine) initObs() {
	if m.metrics == nil {
		return
	}
	m.hIQ = m.metrics.Histogram("pipeline.iq.occupancy", iqOccBounds)
	if m.dtq != nil {
		m.hDTQ = m.metrics.Histogram("pipeline.dtq.depth", queueOccBounds)
	}
	if m.boq != nil {
		m.hBOQ = m.metrics.Histogram("pipeline.boq.depth", queueOccBounds)
	}
	if m.lvq != nil {
		m.hLVQ = m.metrics.Histogram("pipeline.lvq.depth", queueOccBounds)
	}
}

// sampleDepths records the cycle's queue occupancies. Only called with
// metrics attached.
func (m *Machine) sampleDepths() {
	m.hIQ.Observe(float64(len(m.iq)))
	if m.hDTQ != nil {
		m.hDTQ.Observe(float64(m.dtq.Len()))
	}
	if m.hBOQ != nil {
		m.hBOQ.Observe(float64(m.boq.Len()))
	}
	if m.hLVQ != nil {
		m.hLVQ.Observe(float64(m.lvq.Len()))
	}
}

// New builds a machine ready to run prog in the given mode.
func New(cfg Config, mode Mode, prog *isa.Program, opts ...Option) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, isa.ErrNoProgram
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	// The L1 ports are the memory backend ways: unit arbitration already
	// bounds cache accesses per cycle, so the cache model must never reject.
	cfg.Cache.L1Ports = cfg.Units[isa.UnitMem]

	m := &Machine{
		cfg:       cfg,
		mode:      mode,
		prog:      prog,
		rf:        rename.NewRegFile(cfg.PhysRegs),
		pred:      bpred.New(cfg.Bpred),
		dcache:    cache.New(cfg.Cache),
		iqSlots:   make([]bool, cfg.IssueQueue),
		areaModel: area.Default(),
		// Steady-state capacities: the issue queue is bounded by config; the
		// event heap holds at most the issued-in-flight population of both
		// threads' active lists.
		iq:     make([]*UOp, 0, cfg.IssueQueue),
		events: make(eventHeap, 0, 2*cfg.ActiveList),

		readyMask: make([]uint64, (cfg.IssueQueue+63)/64),
	}
	m.initWakeup()
	if mode.UsesDTQ() {
		m.packetPending = &pendTable{}
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.sink == nil {
		m.sink = &detect.Sink{}
	}

	size := prog.DataSize
	if size < 8 {
		size = 8
	}
	m.mem = make([]byte, size)
	for i, w := range prog.Init {
		binary.LittleEndian.PutUint64(m.mem[8*i:], w)
	}

	for cl := isa.UnitClass(0); cl < isa.NumUnitClasses; cl++ {
		m.unitFreeAt[cl] = make([]int64, cfg.Units[cl])
	}

	nThreads := 1
	if mode.Redundant() {
		nThreads = 2
	}
	// Reserve the low physical registers for the initial architectural
	// mappings of each context; the rest form the shared free pool.
	reserved := nThreads * isa.NumArchRegs
	m.freeList = rename.NewFreeList(rename.PhysReg(reserved), cfg.PhysRegs-reserved)
	for i := 0; i < nThreads; i++ {
		t := newThread(i, &cfg)
		for a := 0; a < isa.NumArchRegs; a++ {
			t.rmap.Set(a, rename.PhysReg(i*isa.NumArchRegs+a))
		}
		m.threads = append(m.threads, t)
	}

	if mode.Redundant() {
		m.lvq = redundancy.NewLVQ(cfg.LVQ)
		m.sb = redundancy.NewStoreBuffer(cfg.StoreBuffer)
		if mode == ModeSRT {
			m.boq = redundancy.NewBOQ(cfg.BOQ)
			m.stream = redundancy.NewStream(cfg.Stream)
		}
		if mode.UsesDTQ() {
			m.dtq = core.NewDTQ(cfg.DTQ)
			m.shuffler = &core.Shuffler{
				Width:    cfg.FetchWidth,
				Units:    cfg.Units,
				Disabled: mode == ModeBlackJackNS,
			}
			m.packets = queues.NewRing[core.Packet](cfg.PacketQueue)
			m.dr = core.NewDoubleRename(cfg.PhysRegs)
			m.oc = core.NewOrderChecker()
			// Seed the double-rename and second (program-order) rename
			// tables with the initial architectural state: leading initial
			// physical a maps to trailing initial physical a.
			lead, trail := m.threads[leadThread], m.threads[trailThread]
			for a := 0; a < isa.NumArchRegs; a++ {
				m.dr.Seed(lead.rmap.Get(a), trail.rmap.Get(a))
				m.oc.Seed(isa.Reg(a), trail.rmap.Get(a))
			}
		}
	}
	m.initObs()
	return m, nil
}

// Mode returns the machine's mode.
func (m *Machine) Mode() Mode { return m.mode }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() int64 { return m.cycle }

// Sink returns the detection sink.
func (m *Machine) Sink() *detect.Sink { return m.sink }

// readMem returns the 8-byte word at the (clamped) address.
func (m *Machine) readMem(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(m.mem[isa.ClampAddr(addr, len(m.mem)):])
}

// writeMem stores the word at the (clamped) address.
func (m *Machine) writeMem(addr, v uint64) {
	binary.LittleEndian.PutUint64(m.mem[isa.ClampAddr(addr, len(m.mem)):], v)
}

// releaseStore applies an architecturally final store to memory and extends
// the output signature.
func (m *Machine) releaseStore(addr, v uint64) {
	a := isa.ClampAddr(addr, len(m.mem))
	m.writeMem(a, v)
	m.storeSig = isa.ChainStoreSig(m.storeSig, a, v)
	m.stats.ReleasedStores++
}

// clamp maps an effective address onto the memory image.
func (m *Machine) clamp(addr uint64) uint64 { return isa.ClampAddr(addr, len(m.mem)) }

// areaPairCoverage applies the area model to one pair's diversity outcome.
func (m *Machine) areaPairCoverage(fe, be bool) float64 {
	return m.areaModel.PairCoverage(fe, be)
}

// Tick advances the machine by one cycle. Stages run in reverse pipeline
// order so same-cycle structural backpressure is modeled without intra-cycle
// iteration.
func (m *Machine) Tick() {
	m.cycle++
	m.resolveCompletions()
	m.commitStage()
	m.capCheck()
	m.shuffleStage()
	m.issueStage()
	m.dispatchStage()
	m.fetchStage()
	if m.metrics != nil {
		m.sampleDepths()
	}
	m.stats.Cycles = m.cycle
}

// Run executes until the run is complete: the leading (or single) thread has
// committed maxLeading instructions or halted, and — in redundant modes — the
// trailing thread has committed every instruction the leading thread did. It
// returns the machine statistics. A cycle backstop (Config.MaxCycles) guards
// against livelock; hitting it sets Stats.Deadlocked.
func (m *Machine) Run(maxLeading int) *Stats {
	return m.RunWithCheckpoints(maxLeading, 0, nil)
}

// RunWithCheckpoints runs like Run, additionally invoking hook every interval
// cycles (after the cycle's Tick and livelock check) so callers can take
// periodic Snapshots. An interval <= 0 or nil hook disables checkpointing —
// the loop is then exactly Run. The cycle limit and the progress backstop use
// absolute cycle numbers, so a machine forked from a checkpoint and a cold
// run continue through identical loop decisions.
func (m *Machine) RunWithCheckpoints(maxLeading int, interval int64, hook func(*Machine)) *Stats {
	// maxLeading is in whole-program terms; an arch-seeded machine already
	// covered archBase instructions functionally, so the machine-local target
	// is the remainder. A prefix that consumed the whole budget leaves
	// nothing to run.
	target := int64(maxLeading) - int64(m.archBase)
	if target < 0 {
		target = 0
	}
	if m.archBase > 0 && target == 0 {
		for _, t := range m.threads {
			t.halted = true
			t.fetchStopped = true
		}
		m.leadStopped = true
	}
	m.cap = uint64(target)
	limit := m.cfg.MaxCycles
	if limit == 0 {
		limit = int64(maxLeading)*300 + 1_000_000
	}
	for !m.runDone() {
		m.Tick()
		if c := m.totalCommitted(); c != m.lastCommitTotal {
			m.lastCommitTotal = c
			m.lastProgressCycle = m.cycle
		}
		if m.cycle >= limit || m.cycle-m.lastProgressCycle > 1_000_000 {
			m.stats.Deadlocked = true
			break
		}
		if m.stopOnDetect && m.sink.Total() > 0 {
			m.stats.StoppedOnDetect = true
			break
		}
		if m.runCtx != nil && m.cycle&ctxCheckMask == 0 && m.runCtx.Err() != nil {
			m.stats.Interrupted = true
			break
		}
		if interval > 0 && hook != nil && m.cycle%interval == 0 {
			hook(m)
		}
	}
	m.finalizeStats()
	return &m.stats
}

func (m *Machine) totalCommitted() uint64 {
	n := uint64(0)
	for _, t := range m.threads {
		n += t.committed
	}
	return n
}

func (m *Machine) runDone() bool {
	lead := m.threads[leadThread]
	leadDone := lead.halted || (m.cap > 0 && lead.committed >= m.cap)
	if !m.mode.Redundant() {
		return leadDone
	}
	trail := m.threads[trailThread]
	return leadDone && m.leadStopped && trail.committed >= lead.committed && trail.drained()
}

// capCheck stops the leading thread once it has committed the run's
// instruction budget (or its halt), squashing its in-flight wrong-path tail
// so the trailing thread's stream is exactly the committed stream.
func (m *Machine) capCheck() {
	lead := m.threads[leadThread]
	if m.leadStopped {
		return
	}
	if (m.cap > 0 && lead.committed >= m.cap) || lead.halted {
		if m.mode.Redundant() {
			m.squash(lead, lead.nextSeqCommitted(), -1)
		}
		lead.fetchStopped = true
		lead.halted = true
		m.leadStopped = true
	}
}

// nextSeqCommitted returns the Seq of the last committed instruction (squash
// keeps everything at or below it).
func (t *thread) nextSeqCommitted() uint64 {
	// Seq numbering starts at 1 (nextSeq is pre-incremented at dispatch), so
	// after k commits the last committed Seq is exactly k.
	return t.committed
}

// squash removes every uop of thread t with Seq > afterSeq, undoing renaming
// and freeing resources, and redirects fetch to newPC (-1 leaves the fetch PC
// untouched and merely clears the fetch buffer).
func (m *Machine) squash(t *thread, afterSeq uint64, newPC int) {
	// Walk the active list from the tail backwards, undoing rename mappings
	// in reverse allocation order.
	for v := t.rob.tail; v > t.rob.head; v-- {
		u := t.rob.at(v - 1)
		if u == nil || u.Seq <= afterSeq {
			break
		}
		if u.PDest != rename.None {
			t.rmap.Set(int(u.Inst.Rd), u.POld)
			m.freeList.Free(u.PDest)
		}
		switch {
		case u.Inst.IsBranch():
			t.nextBranchSeq--
		case u.Inst.IsLoad():
			t.nextLoadSeq--
			if m.mode.Redundant() && t.id == leadThread {
				m.lvqInFlight--
			}
		case u.Inst.IsStore():
			t.nextStoreSeq--
			if m.mode.Redundant() && t.id == leadThread {
				m.sbInFlight--
			}
		}
		if u.Inst.IsMem() {
			t.lsq.clearAt(u.VirtLSQ)
			t.lsq.shrinkTail(u.VirtLSQ)
		}
		if u.InIQ {
			u.InIQ = false
			m.iqSlots[u.IQSlot] = false
			m.unwireWakeup(u)
		}
		u.Squashed = true
		m.trace(TraceSquash, u)
		m.stats.Squashed++
		t.rob.clearAt(v - 1)
		t.rob.shrinkTail(v - 1)
		// A squashed uop not in the event heap has no remaining references
		// once the issue-queue compaction below drops it; issued ones are
		// recycled when resolveCompletions pops them.
		if !u.InEvents {
			m.recycleUOp(u)
		}
	}
	t.nextSeq = afterSeq
	t.fetchQ.Reset()
	t.fetchStopped = false
	if newPC >= 0 {
		t.fetchPC = newPC
		if newPC >= len(m.prog.Code) {
			t.fetchStopped = true
		}
	}
	// Drop squashed entries from the issue queue and, in BlackJack modes,
	// from the DTQ.
	live := m.iq[:0]
	for _, u := range m.iq {
		if !u.Squashed {
			live = append(live, u)
		}
	}
	m.iq = live
	if m.dtq != nil && t.id == leadThread {
		m.dtq.SquashYounger(afterSeq)
	}
}

// allocUOp takes a UOp from the machine's free list (or the heap). Every
// call site fully overwrites the record with a struct-literal assignment, so
// no stale state survives recycling.
func (m *Machine) allocUOp() *UOp {
	n := len(m.uopFree)
	if n == 0 {
		return &UOp{}
	}
	u := m.uopFree[n-1]
	m.uopFree = m.uopFree[:n-1]
	return u
}

// recycleUOp returns a dead uop to the free list. Callers guarantee the uop
// has left every machine structure: the active list and LSQ (popped or
// cleared), the issue queue (issue or squash compaction), and the event heap
// (InEvents false).
func (m *Machine) recycleUOp(u *UOp) {
	m.uopFree = append(m.uopFree, u)
}

// allocEntry takes a DTQ entry from the free list (or the heap); the caller
// fully overwrites it.
func (m *Machine) allocEntry() *core.Entry {
	n := len(m.entryFree)
	if n == 0 {
		return &core.Entry{}
	}
	e := m.entryFree[n-1]
	m.entryFree = m.entryFree[:n-1]
	return e
}

// recycleEntry returns a consumed DTQ entry (trailing fetch copied its
// fields) to the free list.
func (m *Machine) recycleEntry(e *core.Entry) {
	m.entryFree = append(m.entryFree, e)
}

// internalError records a simulator invariant violation. It panics: such
// states indicate pipeline bugs, never program or fault behaviour.
func (m *Machine) internalError(format string, args ...any) {
	panic(fmt.Sprintf("pipeline: cycle %d: %s", m.cycle, fmt.Sprintf(format, args...)))
}
