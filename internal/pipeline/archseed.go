package pipeline

import (
	"blackjack/internal/isa"
)

// This file seeds a machine from a functional architectural snapshot — the
// cycle-accurate half of sampled simulation. The golden ISA emulator runs
// the fault-free prefix (it is exact: diffcheck proves the pipeline commits
// the same architectural state), and the pipeline takes over at the handoff
// with empty microarchitectural structures. Callers leave a warmup lead of
// committed instructions before the window of interest so queues, the
// predictor and the redundancy coupling re-approach steady state; the
// machine's committed-instruction accounting (Stats.Committed, the run cap)
// stays in whole-program terms, while cycle numbers restart at 0 and are
// therefore window-relative.

// NewFromArch builds a machine whose architectural state — PC, register
// values, memory image, store-stream signature — starts at arch instead of
// at program reset. Both SMT contexts start at the same architectural point,
// exactly as they do at reset; the snapshot is copied, never aliased.
func NewFromArch(cfg Config, mode Mode, prog *isa.Program, arch *isa.ArchState, opts ...Option) (*Machine, error) {
	m, err := New(cfg, mode, prog, opts...)
	if err != nil {
		return nil, err
	}
	m.seedArch(arch)
	return m, nil
}

// seedArch installs the snapshot into a freshly constructed machine.
func (m *Machine) seedArch(arch *isa.ArchState) {
	copy(m.mem, arch.Mem)
	// Each context's initial architectural mappings were set by New (and, in
	// DTQ modes, seeded into the double-rename and order-check tables);
	// writing the snapshot's values through the rename maps keeps every
	// cross-thread table consistent without re-seeding.
	stopped := arch.Halted || arch.PC < 0 || arch.PC >= len(m.prog.Code)
	for _, t := range m.threads {
		for a := 0; a < isa.NumArchRegs; a++ {
			m.rf.SetValue(t.rmap.Get(a), arch.Reg(isa.Reg(a)))
		}
		t.fetchPC = arch.PC
		if stopped {
			// The functional prefix already reached the program's end: there
			// is nothing left to run cycle-accurately.
			t.fetchStopped = true
			t.halted = true
		}
	}
	m.storeSig = arch.Sig
	m.stats.ReleasedStores = arch.Stores
	m.archBase = arch.Retired
}

// WithStopOnDetect makes the run loop stop at the end of the first cycle
// that records a detection event, setting Stats.StoppedOnDetect. Sampled
// fault campaigns use this: once a checker has fired the outcome is Detected
// regardless of the remainder of the run, so simulating on buys nothing.
func WithStopOnDetect() Option { return func(m *Machine) { m.stopOnDetect = true } }

// CommittedInstrs returns each thread's committed-instruction count in
// whole-program terms (including any seeded architectural base). A
// non-redundant machine reports its single thread for both.
func (m *Machine) CommittedInstrs() (lead, trail uint64) {
	lead = m.threads[leadThread].committed + m.archBase
	trail = lead
	if m.mode.Redundant() {
		trail = m.threads[trailThread].committed + m.archBase
	}
	return lead, trail
}
