package pipeline

import (
	"fmt"
	"io"
	"sort"

	"blackjack/internal/isa"
	"blackjack/internal/obs"
)

// TraceStage names a pipeline event kind.
type TraceStage uint8

// Trace event kinds, in pipeline order.
const (
	TraceFetch TraceStage = iota
	TraceDispatch
	TraceIssue
	TraceComplete
	TraceCommit
	TraceSquash
)

var traceStageNames = map[TraceStage]string{
	TraceFetch: "F", TraceDispatch: "D", TraceIssue: "I",
	TraceComplete: "W", TraceCommit: "C", TraceSquash: "X",
}

// String returns the single-letter stage code (F/D/I/W/C/X).
func (s TraceStage) String() string { return traceStageNames[s] }

// TraceEvent is one stage transition of one instruction copy.
type TraceEvent struct {
	Cycle    int64
	Stage    TraceStage
	Thread   int
	Seq      uint64
	PC       int
	Inst     isa.Inst
	FrontWay int
	BackWay  int
	IsNOP    bool
}

// Tracer records pipeline events within a cycle window. Attach with
// WithTracer; a nil tracer costs nothing. The zero value traces from cycle 0
// until MaxEvents (default 4096) events have been recorded.
type Tracer struct {
	// FromCycle/ToCycle bound the recording window (ToCycle 0 = unbounded).
	FromCycle int64
	ToCycle   int64
	// MaxEvents caps recording (0 means 4096).
	MaxEvents int

	events  []TraceEvent
	dropped uint64
}

// WithTracer attaches a tracer to the machine.
func WithTracer(t *Tracer) Option { return func(m *Machine) { m.tracer = t } }

func (t *Tracer) limit() int {
	if t.MaxEvents <= 0 {
		return 4096
	}
	return t.MaxEvents
}

func (t *Tracer) record(cycle int64, stage TraceStage, u *UOp) {
	if cycle < t.FromCycle || (t.ToCycle > 0 && cycle > t.ToCycle) {
		return
	}
	if len(t.events) >= t.limit() {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Cycle: cycle, Stage: stage, Thread: u.Thread, Seq: u.Seq,
		PC: u.PC, Inst: u.Inst, FrontWay: u.FrontWay, BackWay: u.BackWay,
		IsNOP: u.IsNOP,
	})
}

// Events returns the recorded events in recording order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Dropped returns how many events fell outside MaxEvents.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// lifeline aggregates one instruction copy's stage cycles.
type lifeline struct {
	thread   int
	seq      uint64
	pc       int
	inst     isa.Inst
	frontWay int
	backWay  int
	isNOP    bool
	stage    [6]int64 // per TraceStage; 0 = unseen
}

// Render writes a per-instruction lifecycle listing: one line per traced
// instruction copy with its stage cycles and way assignments, ordered by
// dispatch cycle. Squashed wrong-path work shows an X column.
func (t *Tracer) Render(w io.Writer) {
	byKey := make(map[[2]uint64]*lifeline)
	var order [][2]uint64
	for _, e := range t.events {
		key := [2]uint64{uint64(e.Thread), e.Seq}
		l, ok := byKey[key]
		if !ok {
			l = &lifeline{thread: e.Thread, seq: e.Seq, pc: e.PC, inst: e.Inst, isNOP: e.IsNOP}
			byKey[key] = l
			order = append(order, key)
		}
		l.stage[e.Stage] = e.Cycle
		// Way assignments become known as the instruction advances.
		l.frontWay = e.FrontWay
		if e.BackWay >= 0 {
			l.backWay = e.BackWay
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byKey[order[i]], byKey[order[j]]
		ad, bd := a.stage[TraceDispatch], b.stage[TraceDispatch]
		if ad != bd {
			return ad < bd
		}
		if a.thread != b.thread {
			return a.thread < b.thread
		}
		return a.seq < b.seq
	})
	fmt.Fprintf(w, "%-3s %-6s %-5s %-24s %3s %3s | %8s %8s %8s %8s %8s %8s\n",
		"thr", "seq", "pc", "instruction", "fw", "bw", "F", "D", "I", "W", "C", "X")
	for _, key := range order {
		l := byKey[key]
		name := l.inst.String()
		if l.isNOP {
			name = "nop (shuffle)"
		}
		pc := fmt.Sprint(l.pc)
		if l.pc < 0 {
			pc = "-"
		}
		fmt.Fprintf(w, "T%-2d %-6d %-5s %-24s %3d %3d |%s%s%s%s%s%s\n",
			l.thread, l.seq, pc, name, l.frontWay, l.backWay,
			cycleCol(l.stage[TraceFetch]), cycleCol(l.stage[TraceDispatch]),
			cycleCol(l.stage[TraceIssue]), cycleCol(l.stage[TraceComplete]),
			cycleCol(l.stage[TraceCommit]), cycleCol(l.stage[TraceSquash]))
	}
	if t.dropped > 0 {
		fmt.Fprintf(w, "(%d events dropped beyond MaxEvents=%d)\n", t.dropped, t.limit())
	}
}

func cycleCol(c int64) string {
	if c == 0 {
		return fmt.Sprintf("%9s", ".")
	}
	return fmt.Sprintf("%9d", c)
}

// stageObsKind maps text-tracer stages onto structured event kinds.
var stageObsKind = [6]obs.Kind{
	TraceFetch:    obs.KindFetch,
	TraceDispatch: obs.KindDispatch,
	TraceIssue:    obs.KindIssue,
	TraceComplete: obs.KindWriteback,
	TraceCommit:   obs.KindCommit,
	TraceSquash:   obs.KindSquash,
}

// trace is the machine-side hook; nil tracers short-circuit.
func (m *Machine) trace(stage TraceStage, u *UOp) {
	m.traceAt(m.cycle, stage, u)
}

// traceAt is trace with an explicit cycle, for events back-dated to when
// they happened (fetch is recorded at dispatch but stamped with the fetch
// cycle). It feeds both the text tracer and the structured obs tracer.
func (m *Machine) traceAt(cycle int64, stage TraceStage, u *UOp) {
	if m.tracer != nil {
		m.tracer.record(cycle, stage, u)
	}
	if m.otr != nil {
		m.otr.Record(obs.Event{
			Cycle: cycle, Kind: stageObsKind[stage],
			Thread: int8(u.Thread), Seq: u.Seq, PC: int64(u.PC),
			FrontWay: int16(u.FrontWay), BackWay: int16(u.BackWay),
			NOP: u.IsNOP,
		})
	}
}
