package pipeline

import (
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// dispatchStage decodes, renames and dispatches up to RenameWidth
// instructions per cycle from the threads' fetch buffers into the unified
// issue queue. Threads share the bandwidth; the starting thread alternates
// each cycle. Each thread dispatches in order and stops at its first stalled
// instruction.
func (m *Machine) dispatchStage() {
	budget := m.cfg.RenameWidth
	order := [2]int{leadThread, trailThread}
	n := 1
	if m.mode.Redundant() {
		n = 2
		if m.cycle%2 != 0 {
			order = [2]int{trailThread, leadThread}
		}
	}
	for _, id := range order[:n] {
		t := m.threads[id]
		// The BlackJack trailing frontend handles one shuffled packet per
		// cycle as a unit (mirroring the one-packet-per-cycle fetch of
		// Section 4.3.1): a packet is never split across dispatch cycles,
		// because a split would stagger its members' issue and undo
		// safe-shuffle's backend way plan.
		if m.mode.UsesDTQ() && id == trailThread {
			n := m.headPacketSize(t)
			if n == 0 || budget < n || m.cfg.IssueQueue-len(m.iq) < n {
				continue
			}
			for i := 0; i < n; i++ {
				item, _ := t.fetchQ.Peek()
				if !m.dispatchOne(t, item) {
					break
				}
				t.fetchQ.Pop()
				budget--
			}
			continue
		}
		for budget > 0 {
			item, ok := t.fetchQ.Peek()
			if !ok {
				break
			}
			if !m.dispatchOne(t, item) {
				break
			}
			t.fetchQ.Pop()
			budget--
		}
	}
}

// headPacketSize counts the contiguous fetch-queue items belonging to the
// packet at the head of the trailing thread's fetch buffer.
func (m *Machine) headPacketSize(t *thread) int {
	if t.fetchQ.Empty() {
		return 0
	}
	id := t.fetchQ.At(0).packetID
	n := 0
	for i := 0; i < t.fetchQ.Len(); i++ {
		if t.fetchQ.At(i).packetID != id {
			break
		}
		n++
	}
	return n
}

// iqFree reports whether the issue queue has a free entry and returns the
// payload slot to use.
func (m *Machine) iqFree() (slot int, ok bool) {
	if len(m.iq) >= m.cfg.IssueQueue {
		return 0, false
	}
	for i, used := range m.iqSlots {
		if !used {
			return i, true
		}
	}
	return 0, false
}

// dispatchOne attempts to rename and dispatch one fetch item, returning false
// when a structural hazard stalls the thread this cycle.
func (m *Machine) dispatchOne(t *thread, item fetchItem) bool {
	if m.mode.UsesDTQ() && t.id == trailThread {
		return m.dispatchTrailingBJ(t, item)
	}
	return m.dispatchInOrder(t, item)
}

// leadingInIQ counts leading-thread entries currently in the issue queue.
func (m *Machine) leadingInIQ() int {
	n := 0
	for _, u := range m.iq {
		if u.InIQ && !u.Squashed && u.Thread == leadThread {
			n++
		}
	}
	return n
}

// dispatchInOrder handles the leading, single and SRT-trailing threads:
// conventional in-order rename against the thread's architectural map.
func (m *Machine) dispatchInOrder(t *thread, item fetchItem) bool {
	// Deadlock avoidance (BlackJack modes): a leading instruction may only
	// enter the issue queue if the DTQ can absorb every leading instruction
	// already there plus this one. Otherwise DTQ-blocked leading
	// instructions could fill the unified IQ, blocking trailing dispatch —
	// and the trailing side is what ultimately drains the DTQ (shuffle →
	// packet queue → trailing fetch → dispatch).
	if m.mode.UsesDTQ() && t.id == leadThread && m.dtq.Free() <= m.leadingInIQ() {
		return false
	}
	// Leading memory operations reserve their commit-side queue slot at
	// dispatch (see the lvqInFlight/sbInFlight comment in Machine): a
	// leading load/store never enters the window unless the LVQ / store
	// buffer is guaranteed to absorb it at commit.
	if m.mode.Redundant() && t.id == leadThread {
		if item.raw.IsLoad() && m.lvq.Free()-m.lvqInFlight < 1 {
			return false
		}
		if item.raw.IsStore() && m.sb.Free()-m.sbInFlight < 1 {
			return false
		}
	}
	// Decode happens on the item's frontend way; a hard fault there corrupts
	// the decoded form for any thread using that way.
	inst := item.raw
	if m.inj != nil {
		inst = m.inj.CorruptDecode(item.way, inst)
	}

	slot, ok := m.iqFree()
	if !ok {
		return false
	}
	if t.rob.full() {
		return false
	}
	if inst.IsMem() && t.lsq.full() {
		return false
	}
	if inst.WritesRd() && m.freeList.Len() == 0 {
		return false
	}

	t.nextSeq++
	u := m.allocUOp()
	*u = UOp{
		Seq:      t.nextSeq,
		Thread:   t.id,
		PC:       item.pc,
		Raw:      item.raw,
		Inst:     inst,
		Class:    inst.Class(),
		FrontWay: item.way,
		BackWay:  -1,
		PSrc1:    rename.None, PSrc2: rename.None,
		PDest: rename.None, POld: rename.None,
		PredTaken:  item.predTaken,
		PredLookup: item.predLookup,
		Halt:       inst.Op == isa.OpHalt || item.halt,
	}
	if inst.ReadsRs1() {
		u.PSrc1 = t.rmap.Get(int(inst.Rs1))
	}
	if inst.ReadsRs2() {
		u.PSrc2 = t.rmap.Get(int(inst.Rs2))
	}
	if inst.WritesRd() {
		p, _ := m.freeList.Alloc()
		u.PDest = p
		u.POld = t.rmap.Set(int(inst.Rd), p)
		m.rf.MarkPending(p)
	}
	switch {
	case inst.IsBranch():
		u.BranchSeq = t.nextBranchSeq
		t.nextBranchSeq++
	case inst.IsLoad():
		u.LoadSeq = t.nextLoadSeq
		t.nextLoadSeq++
	case inst.IsStore():
		u.StoreSeq = t.nextStoreSeq
		t.nextStoreSeq++
	}
	// The SRT trailing thread pairs with leading queues via the ordinals
	// recorded in the stream (identical to its own counters on the fault-free
	// path, but the stream is authoritative).
	if item.pairValid {
		u.PairValid = true
		u.LeadFrontWay = item.leadFrontWay
		u.LeadBackWay = item.leadBackWay
		u.LeadClass = item.leadClass
		if inst.IsLoad() {
			u.LoadSeq = item.loadSeq
		}
		if inst.IsStore() {
			u.StoreSeq = item.storeSeq
		}
	}
	u.VirtAL = t.rob.pushTail(u)
	if inst.IsMem() {
		u.VirtLSQ = t.lsq.pushTail(u)
	}
	if m.mode.Redundant() && t.id == leadThread {
		if inst.IsLoad() {
			m.lvqInFlight++
		}
		if inst.IsStore() {
			m.sbInFlight++
		}
	}
	m.traceFetchDispatch(item, u)
	m.enqueueIQ(u, slot)
	return true
}

// traceFetchDispatch emits the fetch (back-dated to the fetch cycle) and
// dispatch events for a uop entering the issue queue.
func (m *Machine) traceFetchDispatch(item fetchItem, u *UOp) {
	if m.tracer == nil && m.otr == nil {
		return
	}
	m.traceAt(item.fetchCycle, TraceFetch, u)
	m.traceAt(m.cycle, TraceDispatch, u)
}

// dispatchTrailingBJ handles the BlackJack trailing thread: double rename
// (leading physical -> trailing physical) and virtual-to-physical active
// list / LSQ index translation; NOPs occupy only an issue-queue slot.
func (m *Machine) dispatchTrailingBJ(t *thread, item fetchItem) bool {
	slot, ok := m.iqFree()
	if !ok {
		return false
	}
	if item.isNOP {
		t.nextSeq++
		u := m.allocUOp()
		*u = UOp{
			Seq:    t.nextSeq,
			Thread: t.id,
			PC:     -1,
			Raw:    item.raw,
			Inst:   item.raw,
			Class:  item.nopClass,
			// NOPs execute on a backend way of their marked class but carry
			// no operands or destination.
			FrontWay: item.way,
			BackWay:  -1,
			PSrc1:    rename.None, PSrc2: rename.None,
			PDest: rename.None, POld: rename.None,
			IsNOP:    true,
			PacketID: item.packetID,
		}
		m.traceFetchDispatch(item, u)
		m.enqueueIQ(u, slot)
		m.stats.NOPsExecuted++
		return true
	}

	// Trailing decode runs on the slot's frontend way — by construction a
	// different way than the leading copy used.
	inst := item.raw
	if m.inj != nil {
		inst = m.inj.CorruptDecode(item.way, inst)
	}
	if !t.rob.canPlace(item.virtAL) {
		return false // window stall: virtual index too far ahead
	}
	if inst.IsMem() && !t.lsq.canPlace(item.virtLSQ) {
		return false
	}
	if inst.WritesRd() && m.freeList.Len() == 0 {
		return false
	}

	t.nextSeq++
	u := m.allocUOp()
	*u = UOp{
		Seq:      t.nextSeq,
		Thread:   t.id,
		PC:       item.pc,
		Raw:      item.raw,
		Inst:     inst,
		Class:    inst.Class(),
		FrontWay: item.way,
		BackWay:  -1,
		PSrc1:    rename.None, PSrc2: rename.None,
		PDest: rename.None, POld: rename.None,
		PairValid:    true,
		LeadFrontWay: item.leadFrontWay,
		LeadBackWay:  item.leadBackWay,
		LeadClass:    item.leadClass,
		LeadPSrc1:    item.leadPSrc1,
		LeadPSrc2:    item.leadPSrc2,
		LeadPDest:    item.leadPDest,
		LoadSeq:      item.loadSeq,
		StoreSeq:     item.storeSeq,
		VirtAL:       item.virtAL,
		VirtLSQ:      item.virtLSQ,
		PacketID:     item.packetID,
		Halt:         item.halt,
	}
	// Double rename: translate the leading physical sources. A failed lookup
	// can only arise from fault corruption upstream; use the zero register's
	// value and let the commit checks flag the damage.
	if inst.ReadsRs1() {
		u.PSrc1 = m.doubleLookup(item.leadPSrc1)
	}
	if inst.ReadsRs2() {
		u.PSrc2 = m.doubleLookup(item.leadPSrc2)
	}
	if inst.WritesRd() {
		p, _ := m.freeList.Alloc()
		u.PDest = p
		m.rf.MarkPending(p)
		if item.leadPDest != rename.None {
			m.dr.Bind(item.leadPDest, p)
		}
	}
	t.rob.place(item.virtAL, u)
	if inst.IsMem() {
		t.lsq.place(item.virtLSQ, u)
	}
	m.traceFetchDispatch(item, u)
	m.enqueueIQ(u, slot)
	return true
}

func (m *Machine) doubleLookup(leadP rename.PhysReg) rename.PhysReg {
	if leadP == rename.None {
		return rename.PhysReg(isa.NumArchRegs) // trailing copy of r0 (zero)
	}
	if p, ok := m.dr.Lookup(leadP); ok {
		return p
	}
	return rename.PhysReg(isa.NumArchRegs)
}

// enqueueIQ inserts the uop into the unified issue queue in dispatch order
// and wires it into the wakeup machinery.
func (m *Machine) enqueueIQ(u *UOp, slot int) {
	m.gseq++
	u.GSeq = m.gseq
	u.InIQ = true
	u.IQSlot = slot
	m.iqSlots[slot] = true
	m.iq = append(m.iq, u)
	m.registerWakeup(u)
}
