package pipeline

import (
	"blackjack/internal/core"
	"blackjack/internal/queues"
)

// Checkpoint is a frozen deep copy of a Machine mid-run: every piece of
// architectural and microarchitectural state (threads, rename maps and free
// list, issue queue, active lists and LSQs, DTQ/BOQ/LVQ, store buffer,
// caches, branch predictor, memory image, wakeup state, statistics). A
// checkpoint is immutable once taken; any number of machines may be forked
// from it, concurrently — Fork only reads the checkpoint.
//
// Fault-injection campaigns use this to amortize the fault-free prefix of a
// run: snapshot the golden warmup periodically, then fork each injection from
// the latest checkpoint preceding its site's first activation. Forked copies
// are bit-identical to a cold run continued from the same cycle.
type Checkpoint struct {
	m *Machine
}

// Cycle returns the cycle the checkpoint was taken at.
func (cp *Checkpoint) Cycle() int64 { return cp.m.cycle }

// Snapshot deep-copies the machine's state into a Checkpoint. The machine is
// only read, so snapshotting mid-run (from a RunWithCheckpoints hook) is
// safe.
func (m *Machine) Snapshot() *Checkpoint {
	return &Checkpoint{m: m.clone()}
}

// Restore rewinds the machine to the checkpointed state. The receiver keeps
// its identity (closures holding the *Machine — an injector's Now clock, for
// example — remain valid).
func (m *Machine) Restore(cp *Checkpoint) {
	*m = *cp.m.clone()
}

// Fork builds a new runnable machine from the checkpoint and applies opts —
// typically WithInjector and WithSink, replacing the warmup's observers with
// the fork's own. The checkpoint is only read and stays reusable.
func Fork(cp *Checkpoint, opts ...Option) *Machine {
	f := cp.m.clone()
	for _, opt := range opts {
		opt(f)
	}
	f.initObs()
	return f
}

// clone deep-copies every live machine structure. UOps and DTQ entries are
// shared by multiple structures (a uop sits in its window, the issue queue,
// the event heap, waiter lists and the calendar at once), so identity is
// preserved through translation maps. The program is immutable and shared;
// free-list pools and scratch buffers start empty (recycled records are
// fully overwritten at allocation, so an empty pool only costs allocations);
// the tracer is dropped (trace state is not part of machine state).
func (m *Machine) clone() *Machine {
	c := &Machine{}
	*c = *m // scalars, config, stats; pointers fixed up below

	uops := make(map[*UOp]*UOp)
	cu := func(u *UOp) *UOp {
		if u == nil {
			return nil
		}
		if v, ok := uops[u]; ok {
			return v
		}
		v := &UOp{}
		*v = *u
		uops[u] = v
		return v
	}
	entries := make(map[*core.Entry]*core.Entry)
	ce := func(e *core.Entry) *core.Entry {
		if e == nil {
			return nil
		}
		if v, ok := entries[e]; ok {
			return v
		}
		v := &core.Entry{}
		*v = *e
		entries[e] = v
		return v
	}

	c.mem = append([]byte(nil), m.mem...)
	c.rf = m.rf.Clone()
	c.freeList = m.freeList.Clone()

	c.threads = make([]*thread, len(m.threads))
	for i, t := range m.threads {
		c.threads[i] = t.clone(cu)
	}

	c.iq = make([]*UOp, len(m.iq), cap(m.iq))
	for i, u := range m.iq {
		c.iq[i] = cu(u)
	}
	c.iqSlots = append([]bool(nil), m.iqSlots...)
	for cl := range m.unitFreeAt {
		c.unitFreeAt[cl] = append([]int64(nil), m.unitFreeAt[cl]...)
	}

	c.pred = m.pred.Clone()
	c.dcache = m.dcache.Clone()
	c.boq = m.boq.Clone()
	c.lvq = m.lvq.Clone()
	c.sb = m.sb.Clone()
	c.stream = m.stream.Clone()
	c.dtq = m.dtq.Clone(ce)
	c.shuffler = m.shuffler.Clone()
	c.packets = clonePacketQueue(m.packets, ce)
	c.dr = m.dr.Clone()
	c.oc = m.oc.Clone()
	c.sink = m.sink.Clone()
	c.tracer = nil
	// Observability state is not machine state either: a fork starts with
	// whatever tracer/registry its own options install (initObs re-resolves
	// the histogram handles then).
	c.otr = nil
	c.metrics = nil
	c.hIQ, c.hDTQ, c.hBOQ, c.hLVQ = nil, nil, nil, nil
	// The run budget is per-run harness state too: a fork gets its own
	// context (or none) via WithRunContext in its option list.
	c.runCtx = nil

	// The completion-event heap: same order, remapped uops (the heap
	// invariant depends only on DoneCycle/GSeq, which the copies share).
	c.events = make(eventHeap, len(m.events), cap(m.events))
	for i, u := range m.events {
		c.events[i] = cu(u)
	}

	// Wakeup state.
	c.readyMask = append([]uint64(nil), m.readyMask...)
	c.regWaiters = make([][]*UOp, len(m.regWaiters))
	for p, ws := range m.regWaiters {
		if len(ws) == 0 {
			continue
		}
		nw := make([]*UOp, len(ws))
		for i, u := range ws {
			nw[i] = cu(u)
		}
		c.regWaiters[p] = nw
	}
	c.cal = make([][]*UOp, len(m.cal))
	for idx, lst := range m.cal {
		if len(lst) == 0 {
			continue
		}
		nl := make([]*UOp, len(lst))
		for i, u := range lst {
			nl[i] = cu(u)
		}
		c.cal[idx] = nl
	}
	if m.packetPending != nil {
		c.packetPending = m.packetPending.clone()
	}

	// Hot-path record pools start empty in the copy.
	c.uopFree = nil
	c.entryFree = nil
	return c
}

// clone deep-copies a thread, remapping its window slots through the shared
// uop translation map.
func (t *thread) clone(cu func(*UOp) *UOp) *thread {
	n := &thread{}
	*n = *t
	n.rob = t.rob.clone(cu)
	n.lsq = t.lsq.clone(cu)
	n.rmap = t.rmap.Clone()
	// fetchItem is all-value; a shallow ring clone is a deep copy.
	n.fetchQ = t.fetchQ.Clone()
	return n
}

// clone deep-copies a window through the uop translation map.
func (w *window) clone(cu func(*UOp) *UOp) *window {
	n := &window{
		slots: make([]*UOp, len(w.slots)),
		head:  w.head,
		tail:  w.tail,
		count: w.count,
	}
	for i, u := range w.slots {
		n.slots[i] = cu(u)
	}
	return n
}

// clonePacketQueue deep-copies the trailing packet queue: packets hold slot
// arrays referencing DTQ entries, remapped through the entry translation map.
func clonePacketQueue(r *queues.Ring[core.Packet], ce func(*core.Entry) *core.Entry) *queues.Ring[core.Packet] {
	if r == nil {
		return nil
	}
	c := r.Clone()
	for i := 0; i < c.Len(); i++ {
		p := c.At(i)
		slots := make([]core.Slot, len(p.Slots))
		for j, s := range p.Slots {
			s.Entry = ce(s.Entry)
			slots[j] = s
		}
		p.Slots = slots
		c.SetAt(i, p)
	}
	return c
}
