package pipeline

import (
	"blackjack/internal/bpred"
	"blackjack/internal/isa"
	"blackjack/internal/queues"
	"blackjack/internal/rename"
)

// Thread identifiers.
const (
	leadThread  = 0 // also the single thread in ModeSingle
	trailThread = 1
)

// fetchItem is one instruction (or safe-shuffle NOP) sitting in a thread's
// fetch buffer, between fetch and rename/dispatch.
type fetchItem struct {
	pc         int
	raw        isa.Inst
	way        int   // frontend way
	fetchCycle int64 // cycle the item left fetch (for tracing)
	predTaken  bool
	predLookup bpred.Lookup

	// Trailing-thread pairing information (from the stream or the DTQ).
	pairValid    bool
	leadFrontWay int
	leadBackWay  int
	leadClass    isa.UnitClass
	loadSeq      uint64
	storeSeq     uint64
	halt         bool

	// BlackJack trailing extras.
	leadPSrc1, leadPSrc2, leadPDest rename.PhysReg
	virtAL, virtLSQ                 uint64
	packetID                        uint64
	isNOP                           bool
	nopClass                        isa.UnitClass
}

// thread is one SMT context.
type thread struct {
	id   int
	rob  *window
	lsq  *window
	rmap *rename.Map // architectural rename map (unused by the BJ trailing thread)

	fetchQ       *queues.Ring[fetchItem]
	fetchPC      int
	fetchStopped bool // fetched a halt or ran off the program (squash restores)
	halted       bool // committed a halt (or reached the instruction cap)

	// Dispatch-side ordinals, rolled back on squash.
	nextSeq       uint64
	nextLoadSeq   uint64
	nextStoreSeq  uint64
	nextBranchSeq uint64

	// Counters.
	fetched     uint64 // real instructions fetched (NOPs excluded)
	fetchedNOPs uint64
	committed   uint64
}

func newThread(id int, cfg *Config) *thread {
	return &thread{
		id:     id,
		rob:    newWindow(cfg.ActiveList),
		lsq:    newWindow(cfg.LSQ),
		rmap:   rename.NewMap(isa.NumArchRegs),
		fetchQ: queues.NewRing[fetchItem](cfg.FetchQueue),
	}
}

// drained reports whether the thread has no in-flight work.
func (t *thread) drained() bool {
	return t.rob.occupancy() == 0 && t.fetchQ.Empty()
}
