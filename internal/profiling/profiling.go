// Package profiling wraps runtime/pprof for the command-line tools: one call
// starts the requested profiles and returns the function that flushes them on
// the way out.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile to be
// written to memPath; either path may be empty to skip that profile. The
// returned stop function is safe to call exactly once (typically deferred
// from main) and reports any error writing the profiles to stderr so callers
// in a defer need no error plumbing.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
