package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartNoPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join("no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu profile path")
	}
}
