//go:build unix

package journal

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive non-blocking advisory lock on the journal
// file. The lock belongs to the open file description: Close (or process
// death, including SIGKILL) releases it, so no stale lock file can strand a
// journal. A journal already held by another process surfaces as ErrLocked.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return fmt.Errorf("%w: %s", ErrLocked, f.Name())
	}
	if err != nil {
		return fmt.Errorf("journal: locking %s: %w", f.Name(), err)
	}
	return nil
}
