package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type rec struct {
	Site    string `json:"site"`
	Outcome int    `json:"outcome"`
}

func hdr() Header { return Header{Kind: "campaign", Key: 0xfeed, Version: 1} }

func TestAppendAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh journal reports %d done", len(done))
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(i, rec{Site: fmt.Sprintf("s%d", i), Outcome: i % 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(done) != 100 {
		t.Fatalf("resumed %d records, want 100", len(done))
	}
	for i, r := range done {
		if r.Site != fmt.Sprintf("s%d", i) || r.Outcome != i%4 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Appending after resume extends the same file.
	if err := j2.Append(100, rec{Site: "s100"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err = Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 101 {
		t.Fatalf("after append-on-resume: %d records, want 101", len(done))
	}
}

func TestKeyMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	for _, bad := range []Header{
		{Kind: "fuzz", Key: 0xfeed, Version: 1},
		{Kind: "campaign", Key: 0xdead, Version: 1},
		{Kind: "campaign", Key: 0xfeed, Version: 2},
	} {
		if _, _, err := Open[rec](path, bad); !errors.Is(err, ErrKeyMismatch) {
			t.Errorf("Open with header %+v: err = %v, want ErrKeyMismatch", bad, err)
		}
	}
}

func TestKeyMismatchNamesChangedParameter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	wrote := Header{Kind: "campaign", Key: KeyHash("bench=gcc", "n=8000"), Version: 1,
		Parts: []string{"bench=gcc", "n=8000"}}
	j, _, err := Open[rec](path, wrote)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	resume := Header{Kind: "campaign", Key: KeyHash("bench=gcc", "n=9000"), Version: 1,
		Parts: []string{"bench=gcc", "n=9000"}}
	_, _, err = Open[rec](path, resume)
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "does not match") {
		t.Errorf("mismatch message lost the does-not-match marker: %q", msg)
	}
	if !strings.Contains(msg, `file has "n=8000"`) || !strings.Contains(msg, `workload has "n=9000"`) {
		t.Errorf("mismatch message does not name the changed parameter: %q", msg)
	}

	// Parts are diagnostic only: identical identity with or without parts
	// must still resume (journals written before parts existed).
	j2, _, err := Open[rec](path, Header{Kind: "campaign", Key: wrote.Key, Version: 1})
	if err != nil {
		t.Errorf("parts-free header refused against parts-bearing journal: %v", err)
	} else {
		j2.Close()
	}
}

func TestTornTrailingLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(i, rec{Site: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":10,"r":{"sit`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if len(done) != 10 {
		t.Fatalf("resumed %d records, want 10 (torn line discarded)", len(done))
	}
	// The next append must yield a readable record (the torn bytes may
	// remain, but the journal stays resumable end to end).
	if err := j2.Append(10, rec{Site: "s10"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err = Open[rec](path, hdr())
	if err != nil {
		t.Fatalf("reopen after healing append: %v", err)
	}
	if _, ok := done[10]; !ok {
		t.Errorf("record appended after torn tail not recovered: have %d records", len(done))
	}
}

func TestMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, rec{Site: "s0"})
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("GARBAGE NOT JSON\n")
	f.WriteString(`{"i":1,"r":{"site":"s1","outcome":0}}` + "\n")
	f.Close()
	if _, _, err := Open[rec](path, hdr()); err == nil {
		t.Fatal("mid-file corruption accepted silently")
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				if err := j.Append(i, rec{Site: fmt.Sprintf("s%d", i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != n {
		t.Fatalf("recovered %d of %d concurrent appends", len(done), n)
	}
}

func TestSyncFlushesPartialBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	// Fewer than SyncEvery appends: without Sync these sit in the buffer.
	for i := 0; i < 5; i++ {
		j.Append(i, rec{Site: fmt.Sprintf("s%d", i)})
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	// Read the file through a second handle without closing the first —
	// the crash-visibility check.
	_, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 5 {
		t.Fatalf("after Sync, a reader sees %d records, want 5", len(done))
	}
	j.Close()
}

func TestKeyHash(t *testing.T) {
	a := KeyHash("bench", "blackjack", "5000")
	if a != KeyHash("bench", "blackjack", "5000") {
		t.Error("KeyHash not deterministic")
	}
	if a == KeyHash("bench", "blackjack", "5001") {
		t.Error("KeyHash ignores parameter change")
	}
	// The separator must keep ("ab","c") distinct from ("a","bc").
	if KeyHash("ab", "c") == KeyHash("a", "bc") {
		t.Error("KeyHash concatenation ambiguity")
	}
}
