package journal

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

type rec struct {
	Site    string `json:"site"`
	Outcome int    `json:"outcome"`
}

func hdr() Header { return Header{Kind: "campaign", Key: 0xfeed, Version: 1} }

func TestAppendAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh journal reports %d done", len(done))
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(i, rec{Site: fmt.Sprintf("s%d", i), Outcome: i % 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(done) != 100 {
		t.Fatalf("resumed %d records, want 100", len(done))
	}
	for i, r := range done {
		if r.Site != fmt.Sprintf("s%d", i) || r.Outcome != i%4 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Appending after resume extends the same file.
	if err := j2.Append(100, rec{Site: "s100"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err = Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 101 {
		t.Fatalf("after append-on-resume: %d records, want 101", len(done))
	}
}

func TestKeyMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	for _, bad := range []Header{
		{Kind: "fuzz", Key: 0xfeed, Version: 1},
		{Kind: "campaign", Key: 0xdead, Version: 1},
		{Kind: "campaign", Key: 0xfeed, Version: 2},
	} {
		if _, _, err := Open[rec](path, bad); !errors.Is(err, ErrKeyMismatch) {
			t.Errorf("Open with header %+v: err = %v, want ErrKeyMismatch", bad, err)
		}
	}
}

func TestKeyMismatchNamesChangedParameter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	wrote := Header{Kind: "campaign", Key: KeyHash("bench=gcc", "n=8000"), Version: 1,
		Parts: []string{"bench=gcc", "n=8000"}}
	j, _, err := Open[rec](path, wrote)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	resume := Header{Kind: "campaign", Key: KeyHash("bench=gcc", "n=9000"), Version: 1,
		Parts: []string{"bench=gcc", "n=9000"}}
	_, _, err = Open[rec](path, resume)
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "does not match") {
		t.Errorf("mismatch message lost the does-not-match marker: %q", msg)
	}
	if !strings.Contains(msg, `file has "n=8000"`) || !strings.Contains(msg, `workload has "n=9000"`) {
		t.Errorf("mismatch message does not name the changed parameter: %q", msg)
	}

	// Parts are diagnostic only: identical identity with or without parts
	// must still resume (journals written before parts existed).
	j2, _, err := Open[rec](path, Header{Kind: "campaign", Key: wrote.Key, Version: 1})
	if err != nil {
		t.Errorf("parts-free header refused against parts-bearing journal: %v", err)
	} else {
		j2.Close()
	}
}

func TestTornTrailingLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(i, rec{Site: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":10,"r":{"sit`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if len(done) != 10 {
		t.Fatalf("resumed %d records, want 10 (torn line discarded)", len(done))
	}
	// The next append must yield a readable record (the torn bytes may
	// remain, but the journal stays resumable end to end).
	if err := j2.Append(10, rec{Site: "s10"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err = Open[rec](path, hdr())
	if err != nil {
		t.Fatalf("reopen after healing append: %v", err)
	}
	if _, ok := done[10]; !ok {
		t.Errorf("record appended after torn tail not recovered: have %d records", len(done))
	}
}

func TestMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, rec{Site: "s0"})
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("GARBAGE NOT JSON\n")
	f.WriteString(`{"i":1,"r":{"site":"s1","outcome":0}}` + "\n")
	f.Close()
	if _, _, err := Open[rec](path, hdr()); err == nil {
		t.Fatal("mid-file corruption accepted silently")
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				if err := j.Append(i, rec{Site: fmt.Sprintf("s%d", i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != n {
		t.Fatalf("recovered %d of %d concurrent appends", len(done), n)
	}
}

func TestSyncFlushesPartialBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	// Fewer than SyncEvery appends: without Sync these sit in the buffer.
	for i := 0; i < 5; i++ {
		j.Append(i, rec{Site: fmt.Sprintf("s%d", i)})
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	// Read the raw file without closing the writer (Open would refuse the
	// live flock) — the crash-visibility check: one header line plus five
	// record lines must already be durable.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(blob), "\n"); lines != 6 {
		t.Fatalf("after Sync, the file holds %d complete lines, want 6 (header + 5 records)", lines)
	}
	j.Close()
}

func TestKeyHash(t *testing.T) {
	a := KeyHash("bench", "blackjack", "5000")
	if a != KeyHash("bench", "blackjack", "5000") {
		t.Error("KeyHash not deterministic")
	}
	if a == KeyHash("bench", "blackjack", "5001") {
		t.Error("KeyHash ignores parameter change")
	}
	// The separator must keep ("ab","c") distinct from ("a","bc").
	if KeyHash("ab", "c") == KeyHash("a", "bc") {
		t.Error("KeyHash concatenation ambiguity")
	}
}

func TestSecondOpenFailsFastWhileLocked(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" {
		t.Skip("flock exclusivity is unix-only")
	}
	path := filepath.Join(t.TempDir(), "run.journal")
	j, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	// A second opener — the "two processes resuming the same journal"
	// hazard — must fail fast with the typed error, not interleave appends.
	if _, _, err := Open[rec](path, hdr()); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open while locked: err = %v, want ErrLocked", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock: the journal is resumable again.
	j2, _, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j2.Close()
}

// TestMain doubles as the kill-writer helper process: when the env var
// names a journal path, this process appends records forever until the
// parent test SIGKILLs it mid-loop.
func TestMain(m *testing.M) {
	if path := os.Getenv("JOURNAL_KILL_WRITER_PATH"); path != "" {
		killWriterMain(path)
		return
	}
	os.Exit(m.Run())
}

func killWriterMain(path string) {
	j, done, err := Open[rec](path, hdr())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill-writer:", err)
		os.Exit(1)
	}
	// Sync every append so the file grows durably record by record — the
	// parent kills this process mid-loop, possibly mid-write, and the
	// healed tail must be a dense prefix of what was appended.
	for i := len(done); ; i++ {
		if err := j.Append(i, rec{Site: fmt.Sprintf("site-%d-%s", i, strings.Repeat("x", 200)), Outcome: i}); err != nil {
			fmt.Fprintln(os.Stderr, "kill-writer:", err)
			os.Exit(1)
		}
		if err := j.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "kill-writer:", err)
			os.Exit(1)
		}
	}
}

func TestTornTailHealsAfterSIGKILLedWriter(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" {
		t.Skip("SIGKILL helper is unix-only")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot re-exec test binary:", err)
	}
	path := filepath.Join(t.TempDir(), "kill.journal")
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), "JOURNAL_KILL_WRITER_PATH="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the writer accumulate a few KB of records, then SIGKILL it —
	// no deferred flush, no lock release, exactly the crash the torn-tail
	// healing exists for.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if info, err := os.Stat(path); err == nil && info.Size() > 8<<10 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("kill-writer never produced a journal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Reopen: the flock died with the writer, the torn tail (if any) is
	// discarded, and the surviving records are a dense prefix 0..n-1 whose
	// payloads round-trip exactly.
	j, done, err := Open[rec](path, hdr())
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	n := len(done)
	if n == 0 {
		t.Fatal("no records survived the crash despite per-append Sync")
	}
	for i := 0; i < n; i++ {
		r, ok := done[i]
		if !ok {
			t.Fatalf("healed journal has %d records but index %d is missing (not a dense prefix)", n, i)
		}
		if r.Outcome != i {
			t.Fatalf("record %d replays outcome %d", i, r.Outcome)
		}
	}
	// The healed journal must accept appends and resume cleanly.
	if err := j.Append(n, rec{Site: "post-crash", Outcome: n}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, done, err = Open[rec](path, hdr())
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != n+1 {
		t.Fatalf("resume after heal sees %d records, want %d", len(done), n+1)
	}
}
