//go:build !unix

package journal

import "os"

// lockFile is a no-op on platforms without flock semantics: journal
// exclusivity degrades to the pre-lock behavior (callers must not resume
// the same journal from two processes).
func lockFile(*os.File) error { return nil }
