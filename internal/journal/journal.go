// Package journal provides the crash-resumable run log underlying long
// campaigns and fuzz sessions. A journal is a JSONL file: one header line
// identifying the workload (kind + a key fingerprinting the parameters that
// determine run identity), followed by one envelope line per completed work
// item. Appends are batched and fsync'd so that after a crash or SIGKILL at
// most the last unsynced batch is lost — and a torn trailing line (the write
// that was in flight when the process died) is tolerated and discarded on
// resume.
//
// Resume correctness rests on two properties the callers uphold:
//
//   - run identity is positional: item i means the same injection/program in
//     the resumed process as in the crashed one. The Key fingerprint is how
//     a journal refuses to resume a *different* workload (changed sites,
//     different benchmark, different budget) whose indices would silently
//     alias.
//   - the record replays everything the run contributed to shared state
//     (tables, metrics registries), so a resumed campaign is byte-identical
//     to an uninterrupted one. The journal stores what the caller gives it;
//     designing records that replay exactly is the caller's contract.
//
// Worker count is deliberately NOT part of the key: a journal written with
// -parallel 8 resumes under -parallel 1 and vice versa.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
)

// Header is the first line of every journal file.
type Header struct {
	// Kind names the workload family, e.g. "campaign" or "fuzz".
	Kind string `json:"kind"`
	// Key fingerprints the parameters that define run identity. Resume
	// refuses a journal whose key does not match the live configuration.
	Key uint64 `json:"key"`
	// Version is the record-schema version; bumped when a record's meaning
	// changes incompatibly.
	Version int `json:"version"`
	// Parts are the human-readable `key=value` identity parts the Key was
	// folded from. Purely diagnostic: a mismatch report can then say which
	// parameter changed instead of only that the folded keys differ. Not
	// compared for resume admission (Key already fingerprints them).
	Parts []string `json:"parts,omitempty"`
}

// matches reports whether two headers describe the same workload. Parts
// are diagnostic payload, not identity: only Kind, Key and Version gate
// resume.
func (h Header) matches(o Header) bool {
	return h.Kind == o.Kind && h.Key == o.Key && h.Version == o.Version
}

// diffParts describes the first difference between two part lists ("" when
// they are identical or either side was written without parts).
func diffParts(have, want []string) string {
	if len(have) == 0 || len(want) == 0 {
		return ""
	}
	n := len(have)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if have[i] != want[i] {
			return fmt.Sprintf("; parameter changed: file has %q, workload has %q", have[i], want[i])
		}
	}
	switch {
	case len(have) < len(want):
		return fmt.Sprintf("; workload adds parameter %q", want[n])
	case len(have) > len(want):
		return fmt.Sprintf("; file has extra parameter %q", have[n])
	}
	return ""
}

// envelope is one completed-run line: the item index plus the caller's
// record.
type envelope struct {
	I int             `json:"i"`
	R json.RawMessage `json:"r"`
}

// SyncEvery is how many appended records may accumulate before the journal
// fsyncs. Small enough that a crash loses at most a few seconds of cheap
// runs; large enough that fsync never dominates a fast campaign.
const SyncEvery = 32

// Journal is an append-only JSONL run log. Append is safe for concurrent
// use; Open/Close are not.
type Journal[R any] struct {
	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	pending   int
	syncEvery int // 0 selects the SyncEvery default
	closed    bool
}

// SetSyncEvery overrides the fsync cadence: every n appended records the
// journal flushes and fsyncs. n = 1 makes each completed run durable before
// Append returns — the service posture, where a SIGKILL at any instant must
// lose nothing. n <= 0 restores the SyncEvery default (batch-CLI posture:
// graceful shutdowns flush, a hard crash loses at most one cheap batch).
func (j *Journal[R]) SetSyncEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncEvery = n
}

// ErrKeyMismatch is returned by Open when an existing journal's header does
// not match the requested kind/key/version — the journal belongs to a
// different workload and resuming from it would alias unrelated runs.
var ErrKeyMismatch = errors.New("journal: header does not match this workload")

// ErrLocked is returned by Open when another live process holds the journal:
// two processes resuming the same journal would interleave appends and
// corrupt positional run identity, so the second opener fails fast instead.
// The lock is advisory and dies with the holder's file descriptor, so a
// SIGKILLed process never leaves a stale lock behind.
var ErrLocked = errors.New("journal: journal is locked by another process")

// Open opens (creating if absent) the journal at path for the given
// workload identity and returns the journal plus the records already
// present, keyed by item index. A fresh file gets the header written
// immediately; an existing file is validated against hdr and scanned.
// A torn trailing line — the in-flight write of a crashed process — is
// discarded; corruption anywhere else is an error.
func Open[R any](path string, hdr Header) (*Journal[R], map[int]R, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal[R]{f: f, w: bufio.NewWriter(f)}
	if info.Size() == 0 {
		line, err := json.Marshal(hdr)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, map[int]R{}, nil
	}
	done, good, err := scan[R](f, hdr)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate any torn trailing line and position the write cursor at the
	// end of the last intact record, so the next append starts a clean line.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, done, nil
}

// scan reads and validates an existing journal, returning the completed
// records and the byte offset just past the last intact line.
func scan[R any](f *os.File, want Header) (map[int]R, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	rd := bufio.NewReaderSize(f, 64*1024)
	var good int64
	readLine := func() ([]byte, bool, error) {
		line, err := rd.ReadBytes('\n')
		switch {
		case err == nil:
			return line[:len(line)-1], true, nil
		case errors.Is(err, io.EOF):
			// No trailing newline: the line was torn mid-write.
			return line, false, nil
		default:
			return nil, false, err
		}
	}
	line, complete, err := readLine()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: reading header: %w", err)
	}
	var hdr Header
	if !complete || json.Unmarshal(line, &hdr) != nil {
		return nil, 0, fmt.Errorf("journal: bad header line")
	}
	if !hdr.matches(want) {
		return nil, 0, fmt.Errorf("%w: file has %s/%#x/v%d, workload is %s/%#x/v%d%s",
			ErrKeyMismatch, hdr.Kind, hdr.Key, hdr.Version, want.Kind, want.Key, want.Version,
			diffParts(hdr.Parts, want.Parts))
	}
	good = int64(len(line)) + 1
	done := make(map[int]R)
	lineno := 1
	for {
		line, complete, err := readLine()
		if err != nil {
			return nil, 0, fmt.Errorf("journal: scanning: %w", err)
		}
		if len(line) == 0 && !complete {
			break // clean EOF
		}
		lineno++
		var env envelope
		var rec R
		bad := json.Unmarshal(line, &env) != nil
		if !bad {
			bad = json.Unmarshal(env.R, &rec) != nil
		}
		if bad {
			// A torn final line is the expected residue of a crash mid-write;
			// anything earlier is real corruption.
			if !complete {
				break
			}
			return nil, 0, fmt.Errorf("journal: corrupt record at line %d", lineno)
		}
		if !complete {
			// Parsed but unterminated: treat as torn — the fsync contract
			// only covers complete lines.
			break
		}
		done[env.I] = rec
		good += int64(len(line)) + 1
	}
	return done, good, nil
}

// Append records that item i completed with record r. The write is buffered;
// every SyncEvery appends the buffer is flushed and fsync'd, so a crash
// loses at most the last unsynced batch.
func (j *Journal[R]) Append(i int, r R) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line, err := json.Marshal(envelope{I: i, R: raw})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: append after Close")
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return err
	}
	j.pending++
	every := j.syncEvery
	if every <= 0 {
		every = SyncEvery
	}
	if j.pending >= every {
		return j.syncLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file. Graceful-shutdown
// paths call this before exiting so an interrupted session journals every
// run that actually finished.
func (j *Journal[R]) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal[R]) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = 0
	return nil
}

// Close flushes, fsyncs and closes the journal file.
func (j *Journal[R]) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// KeyHash builds a workload key by folding the given strings through
// FNV-64a. Callers stringify every parameter that defines run identity
// (benchmark, mode, budget, site list, ...) and must NOT include
// parameters that may legitimately differ across resume (worker count).
func KeyHash(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
