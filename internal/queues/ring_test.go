package queues

import (
	"testing"
	"testing/quick"
)

func TestRingBasicFIFO(t *testing.T) {
	r := NewRing[int](3)
	if !r.Empty() || r.Full() || r.Cap() != 3 || r.Free() != 3 {
		t.Fatalf("fresh ring state wrong: len=%d free=%d", r.Len(), r.Free())
	}
	for i := 1; i <= 3; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if r.Push(4) {
		t.Error("Push into full ring succeeded")
	}
	if v, ok := r.Peek(); !ok || v != 1 {
		t.Errorf("Peek = (%d,%v), want (1,true)", v, ok)
	}
	for i := 1; i <= 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Errorf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop from empty ring succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: Pop = (%d,%v), want %d", round, v, ok, round*10+i)
			}
		}
	}
}

func TestRingAtAndSetAt(t *testing.T) {
	r := NewRing[string](4)
	r.Push("a")
	r.Push("b")
	r.Push("c")
	r.Pop() // advance head so indexing crosses the wrap
	r.Push("d")
	r.Push("e")
	want := []string{"b", "c", "d", "e"}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Errorf("At(%d) = %q, want %q", i, got, w)
		}
	}
	r.SetAt(1, "C")
	if got := r.At(1); got != "C" {
		t.Errorf("after SetAt, At(1) = %q, want C", got)
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	for _, i := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			r.At(i)
		}()
	}
}

func TestNewRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

func TestRingReset(t *testing.T) {
	r := NewRing[int](3)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if !r.Empty() {
		t.Error("ring not empty after Reset")
	}
	r.Push(9)
	if v, _ := r.Pop(); v != 9 {
		t.Error("ring unusable after Reset")
	}
}

func TestRingRemoveIf(t *testing.T) {
	r := NewRing[int](8)
	r.Push(0)
	r.Pop() // move head off zero so removal crosses internal offsets
	for i := 1; i <= 6; i++ {
		r.Push(i)
	}
	removed := r.RemoveIf(func(v int) bool { return v%2 == 0 })
	if removed != 3 {
		t.Errorf("removed = %d, want 3", removed)
	}
	want := []int{2, 4, 6}
	if r.Len() != len(want) {
		t.Fatalf("len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	// Ring must remain fully usable afterwards.
	for i := 10; i < 15; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed after RemoveIf", i)
		}
	}
	if r.Len() != 8 {
		t.Errorf("len = %d, want 8", r.Len())
	}
}

func TestRingRemoveIfAll(t *testing.T) {
	r := NewRing[int](4)
	r.Push(1)
	r.Push(2)
	if got := r.RemoveIf(func(int) bool { return false }); got != 2 {
		t.Errorf("removed = %d, want 2", got)
	}
	if !r.Empty() {
		t.Error("ring should be empty")
	}
}

// Property: any sequence of pushes and pops behaves like a bounded FIFO
// modeled by a slice.
func TestQuickRingMatchesSliceModel(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing[uint8](capacity)
		var model []uint8
		for i, op := range ops {
			if op%2 == 0 { // push
				pushed := r.Push(op)
				if pushed != (len(model) < capacity) {
					return false
				}
				if pushed {
					model = append(model, op)
				}
			} else { // pop
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
