// Package queues provides the bounded FIFO ring buffer underlying the
// paper's hardware queues: the Branch Outcome Queue (BOQ), Load Value Queue
// (LVQ), Dependence Trace Queue (DTQ), store buffer and trailing fetch queue.
// Each of those queues is a Ring of its own entry type, owned by the package
// that implements the corresponding mechanism.
package queues

import "fmt"

// Ring is a bounded FIFO queue. The zero value is unusable; construct with
// NewRing. Ring is not safe for concurrent use: the simulator is
// single-threaded by design (cycle-level determinism).
type Ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of elements
}

// NewRing returns a ring with the given capacity. It panics on a
// non-positive capacity (capacities are configuration constants).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queues: invalid ring capacity %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.n == len(r.buf) }

// Free returns the number of unused slots.
func (r *Ring[T]) Free() int { return len(r.buf) - r.n }

// Push appends v; it reports false (and queues nothing) when full.
func (r *Ring[T]) Push(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	return true
}

// Pop removes and returns the oldest element; ok is false when empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	v = r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// Peek returns the oldest element without removing it; ok is false when
// empty.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	return r.buf[r.head], true
}

// At returns the i-th oldest element (0 = head). It panics when i is out of
// range, mirroring slice indexing.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("queues: index %d out of range [0,%d)", i, r.n))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// SetAt replaces the i-th oldest element (0 = head). It panics when i is out
// of range.
func (r *Ring[T]) SetAt(i int, v T) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("queues: index %d out of range [0,%d)", i, r.n))
	}
	r.buf[(r.head+i)%len(r.buf)] = v
}

// Reset empties the ring.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.n = 0, 0
}

// Clone returns an independent copy of the ring. Elements are copied by
// value: rings of pointers share the pointed-to records, and owners that need
// deep isolation (the DTQ, the trailing packet queue) remap the elements
// after cloning.
func (r *Ring[T]) Clone() *Ring[T] {
	c := &Ring[T]{buf: make([]T, len(r.buf)), head: r.head, n: r.n}
	copy(c.buf, r.buf)
	return c
}

// RemoveIf deletes every element for which keep returns false, preserving
// FIFO order of the survivors, and returns the number removed. It is used to
// drop squashed wrong-path entries from queues allocated in issue order (the
// DTQ case in Section 4.2.1 of the paper).
func (r *Ring[T]) RemoveIf(keep func(T) bool) int {
	removed := 0
	w := 0
	for i := 0; i < r.n; i++ {
		v := r.buf[(r.head+i)%len(r.buf)]
		if keep(v) {
			r.buf[(r.head+w)%len(r.buf)] = v
			w++
		} else {
			removed++
		}
	}
	// Zero the vacated tail slots.
	var zero T
	for i := w; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.n = w
	return removed
}
