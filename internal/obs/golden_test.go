// Golden-trace regression tests: every machine variant runs one canonical
// program with tracing and metrics attached, and the exports must stay
// byte-identical to the committed fixtures. Regenerate after an intentional
// pipeline or exporter change with
//
//	go test ./internal/obs/ -run Golden -update
//
// and review the fixture diff like any other code change. The blackjack
// metrics fixture doubles as the CI trace-smoke reference (the workflow runs
// bjsim with the same parameters and diffs its -metrics-out against it).
package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blackjack/internal/diffcheck"
	"blackjack/internal/obs"
	"blackjack/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

const (
	goldenBench  = "gzip"
	goldenInstrs = 300
	goldenEvents = 512
)

// goldenRun executes the canonical program under one variant and returns the
// trace and metrics exports.
func goldenRun(t *testing.T, v diffcheck.Variant) (trace, metrics []byte) {
	t.Helper()
	cfg := sim.Default(v.Mode, goldenInstrs)
	cfg.Machine.MergePackets = v.Merge
	tr := obs.NewTracer(goldenEvents)
	reg := obs.NewRegistry()
	cfg.Trace = tr
	cfg.Metrics = reg
	if _, err := sim.Run(cfg, goldenBench); err != nil {
		t.Fatalf("%s: %v", v.Name, err)
	}
	var tb, mb bytes.Buffer
	if err := tr.WriteChromeTrace(&tb); err != nil {
		t.Fatalf("%s: %v", v.Name, err)
	}
	if err := reg.WriteJSON(&mb); err != nil {
		t.Fatalf("%s: %v", v.Name, err)
	}
	return tb.Bytes(), mb.Bytes()
}

func fixturePath(variant, kind string) string {
	name := strings.ReplaceAll(variant, "+", "-")
	return filepath.Join("testdata", "golden", name+"."+kind+".json")
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from fixture (%d bytes vs %d); regenerate with -update if intentional",
			path, len(got), len(want))
	}
}

func TestGoldenTraceAndMetrics(t *testing.T) {
	for _, v := range diffcheck.Variants() {
		t.Run(v.Name, func(t *testing.T) {
			trace, metrics := goldenRun(t, v)
			checkGolden(t, fixturePath(v.Name, "trace"), trace)
			checkGolden(t, fixturePath(v.Name, "metrics"), metrics)
		})
	}
}

// TestGoldenRunsAreReproducible guards the fixtures' premise: two identical
// runs export byte-identical traces and metrics within one process.
func TestGoldenRunsAreReproducible(t *testing.T) {
	v, err := diffcheck.VariantByName("blackjack")
	if err != nil {
		t.Fatal(err)
	}
	t1, m1 := goldenRun(t, v)
	t2, m2 := goldenRun(t, v)
	if !bytes.Equal(t1, t2) {
		t.Error("trace export not reproducible")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics export not reproducible")
	}
}
