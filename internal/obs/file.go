package obs

import (
	"fmt"
	"os"
)

// WriteTraceFile writes the tracer's Chrome trace JSON to path, for the
// -trace-out flag the CLIs share.
func WriteTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return f.Close()
}

// WriteMetricsFile writes the registry's JSON snapshot to path, for the
// -metrics-out flag the CLIs share.
func WriteMetricsFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing metrics: %w", err)
	}
	return f.Close()
}
