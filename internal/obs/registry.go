package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing uint64 metric. Callers hold the
// handle returned by Registry.Counter so hot-path increments are a plain
// add, not a map lookup.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Set overwrites the value (for counters exported once from finished
// statistics rather than incremented live).
func (c *Counter) Set(n uint64) { c.v = n }

// Value returns the current value.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a float64 metric for derived per-run values (IPC, coverage).
// Gauges merge by summation, so across merged registries they are only
// meaningful as sums (or when exactly one source registry set them).
type Gauge struct{ v float64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add accumulates.
func (g *Gauge) Add(v float64) { g.v += v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= Bounds[i] that exceeded every earlier bound; one
// overflow bucket counts the rest. Bounds must be non-decreasing; with
// duplicate (zero-width) bounds the first bucket of the run takes every
// match and the duplicates stay empty — Observe picks the first bound >= v.
// Observe never allocates.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	sum    float64
	count  uint64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with the given bucket upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not sorted: %v", bounds)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns the per-bucket counts; the last entry is the overflow
// bucket.
func (h *Histogram) Counts() []uint64 { return append([]uint64(nil), h.counts...) }

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// merge folds o into h. Bucket-count and sum addition are commutative and
// associative, so merging per-worker histograms in any order yields the
// same result.
func (h *Histogram) merge(o *Histogram) error {
	if !sameBounds(h.bounds, o.bounds) {
		return fmt.Errorf("obs: histogram bounds mismatch: %v vs %v", h.bounds, o.bounds)
	}
	if o.count == 0 {
		return nil
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	return nil
}

// Registry holds named metrics. It is NOT safe for concurrent use: batch
// harnesses give each worker its own registry and Merge them afterwards
// (the per-worker-state contract of internal/parallel). Lookup methods
// return stable handles so hot paths pay the map cost once.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Re-requesting
// an existing histogram with different bounds is a programming error and
// panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		var err error
		h, err = NewHistogram(bounds)
		if err != nil {
			panic(err.Error())
		}
		r.hists[name] = h
		return h
	}
	if !sameBounds(h.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	return h
}

// CounterValue returns the named counter's value (0 when absent).
func (r *Registry) CounterValue(name string) uint64 {
	if c, ok := r.counters[name]; ok {
		return c.v
	}
	return 0
}

// GaugeValue returns the named gauge's value (0 when absent).
func (r *Registry) GaugeValue(name string) float64 {
	if g, ok := r.gauges[name]; ok {
		return g.v
	}
	return 0
}

// HistogramByName returns the named histogram, or nil.
func (r *Registry) HistogramByName(name string) *Histogram { return r.hists[name] }

// CounterNames returns every registered counter name, sorted.
func (r *Registry) CounterNames() []string { return r.sortedCounterNames() }

// GaugeNames returns every registered gauge name, sorted.
func (r *Registry) GaugeNames() []string { return r.sortedGaugeNames() }

// HistogramNames returns every registered histogram name, sorted.
func (r *Registry) HistogramNames() []string { return r.sortedHistNames() }

// Merge folds o into r: counters and gauges add, histograms add per bucket
// (their bounds must match). Every operation is commutative and
// associative, so merging per-worker registries yields identical results
// regardless of merge order or how the work was partitioned.
func (r *Registry) Merge(o *Registry) error {
	for name, c := range o.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range o.gauges {
		r.Gauge(name).Add(g.v)
	}
	for name, h := range o.hists {
		mine, ok := r.hists[name]
		if !ok {
			mine, _ = NewHistogram(h.bounds) // h's bounds already validated
			r.hists[name] = mine
		}
		if err := mine.merge(h); err != nil {
			return fmt.Errorf("obs: merge %q: %w", name, err)
		}
	}
	return nil
}

func (r *Registry) sortedCounterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) sortedGaugeNames() []string {
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) sortedHistNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteText writes a deterministic line-oriented export: names sorted
// within each section, one `counter`, `gauge` or `hist` line per metric.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.sortedCounterNames() {
		fmt.Fprintf(bw, "counter %s %d\n", name, r.counters[name].v)
	}
	for _, name := range r.sortedGaugeNames() {
		fmt.Fprintf(bw, "gauge %s %g\n", name, r.gauges[name].v)
	}
	for _, name := range r.sortedHistNames() {
		h := r.hists[name]
		fmt.Fprintf(bw, "hist %s count=%d sum=%g", name, h.count, h.sum)
		if h.count > 0 {
			fmt.Fprintf(bw, " min=%g max=%g", h.min, h.max)
		}
		for i, b := range h.bounds {
			fmt.Fprintf(bw, " le%g=%d", b, h.counts[i])
		}
		fmt.Fprintf(bw, " inf=%d\n", h.counts[len(h.bounds)])
	}
	return bw.Flush()
}

// histSnapshot is the JSON shape of one histogram.
type histSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// snapshot is the JSON shape of a registry export.
type snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]histSnapshot `json:"histograms,omitempty"`
}

// WriteJSON writes the registry as indented JSON. encoding/json sorts map
// keys, so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := snapshot{Counters: make(map[string]uint64, len(r.counters))}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]histSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = histSnapshot{
				Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
				Bounds: h.bounds, Counts: h.counts,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
