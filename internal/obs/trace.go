// Package obs is the simulator's observability layer: a structured
// per-cycle event tracer and a counter/gauge/histogram metrics registry.
//
// Both halves are built around the same contract:
//
//   - disabled costs nothing: every producer hook is guarded by a nil check
//     on the hot path, and an enabled tracer records into a preallocated,
//     pointer-free ring buffer, so Record never allocates
//     (testing.AllocsPerRun proves both);
//   - output is deterministic: the same run produces byte-identical trace
//     and metrics exports, and per-worker registries merged in any order
//     produce identical results (every merge operation is commutative and
//     associative), so campaign metrics are identical at every worker count.
//
// The package sits below internal/pipeline (which imports it to emit
// events) and is consumed by internal/sim, internal/experiments and the
// CLIs through the -trace-out / -metrics-out flags.
package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Kind names a traced event. The pipeline-stage kinds follow the paper's
// stage names: KindDispatch covers rename+dispatch (one stage in this
// model), KindIssue covers issue+execute, KindWriteback is completion.
type Kind uint8

// Event kinds.
const (
	KindFetch Kind = iota
	KindDispatch
	KindIssue
	KindWriteback
	KindCommit
	KindSquash
	KindShuffle
	KindFaultActivate
	KindDetect

	NumKinds
)

var kindNames = [NumKinds]string{
	KindFetch: "fetch", KindDispatch: "dispatch", KindIssue: "issue",
	KindWriteback: "writeback", KindCommit: "commit", KindSquash: "squash",
	KindShuffle: "shuffle", KindFaultActivate: "fault-activate",
	KindDetect: "detect",
}

// String returns the kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one traced occurrence. The struct is pointer-free so a ring of
// them is a single allocation and Record is a plain store.
//
// Field use by kind: the pipeline-stage kinds (fetch..squash) fill Thread,
// Seq, PC, FrontWay, BackWay and NOP. KindShuffle packs the consumed-entry
// and produced-packet counts into Arg (in<<32 | out). KindFaultActivate
// carries the running activation count in Arg. KindDetect carries the
// checker id in Arg and the detection PC in PC.
type Event struct {
	Cycle    int64
	Seq      uint64
	PC       int64
	Arg      uint64
	Kind     Kind
	Thread   int8
	NOP      bool
	FrontWay int16
	BackWay  int16
}

// DefaultTracerEvents is the ring capacity NewTracer uses for cap <= 0.
const DefaultTracerEvents = 1 << 16

// Tracer records events into a fixed-capacity ring buffer, keeping the most
// recent events once full. The buffer is allocated once at construction;
// Record never allocates. A Tracer is single-goroutine (one per machine).
type Tracer struct {
	buf   []Event
	head  int // index of the oldest live event
	n     int // live events
	total uint64
}

// NewTracer builds a tracer holding up to capacity events (<= 0 selects
// DefaultTracerEvents).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerEvents
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest once the ring is full.
func (t *Tracer) Record(e Event) {
	t.total++
	if t.n < len(t.buf) {
		i := t.head + t.n
		if i >= len(t.buf) {
			i -= len(t.buf)
		}
		t.buf[i] = e
		t.n++
		return
	}
	t.buf[t.head] = e
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
}

// Len returns the number of live (retained) events.
func (t *Tracer) Len() int { return t.n }

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }

// Total returns how many events were recorded overall, including evicted
// ones.
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many events were evicted by wraparound.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(t.n) }

// Events returns the live events oldest-first in a freshly allocated slice.
func (t *Tracer) Events() []Event {
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		out[i] = t.buf[j]
	}
	return out
}

// Reset discards all recorded events, keeping the buffer.
func (t *Tracer) Reset() {
	t.head, t.n, t.total = 0, 0, 0
}

// machineTID is the Chrome-trace thread id used for events that belong to
// the machine rather than to one context (shuffle, fault, detect).
const machineTID = 2

// WriteChromeTrace writes the live events as Chrome trace-event JSON (the
// format chrome://tracing and Perfetto open). One simulated cycle maps to
// one microsecond of trace time; each event is an instant event on the
// track of its thread (tid 0 leading/single, tid 1 trailing, tid 2 machine
// for shuffle/fault/detect events). Output is deterministic: same events,
// same bytes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"blackjack\"}},\n")
	fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"leading\"}},\n")
	fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"trailing\"}},\n")
	fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"machine\"}}", machineTID)
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		e := &t.buf[j]
		bw.WriteString(",\n")
		writeChromeEvent(bw, e)
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

func writeChromeEvent(w *bufio.Writer, e *Event) {
	tid := int(e.Thread)
	if e.Kind >= KindShuffle || tid < 0 {
		tid = machineTID
	}
	fmt.Fprintf(w, "{\"name\":%q,\"cat\":\"pipeline\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{",
		e.Kind.String(), e.Cycle, tid)
	switch e.Kind {
	case KindShuffle:
		fmt.Fprintf(w, "\"in\":%d,\"out\":%d", e.Arg>>32, e.Arg&0xffffffff)
	case KindFaultActivate:
		fmt.Fprintf(w, "\"activations\":%d", e.Arg)
	case KindDetect:
		fmt.Fprintf(w, "\"checker\":%d,\"pc\":%d", e.Arg, e.PC)
	default:
		fmt.Fprintf(w, "\"seq\":%d,\"pc\":%d,\"fw\":%d,\"bw\":%d", e.Seq, e.PC, e.FrontWay, e.BackWay)
		if e.NOP {
			w.WriteString(",\"nop\":true")
		}
	}
	w.WriteString("}}")
}
