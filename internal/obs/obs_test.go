package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingWraparound(t *testing.T) {
	tests := []struct {
		name        string
		capacity    int
		record      int
		wantLen     int
		wantDropped uint64
		wantFirst   int64 // cycle of oldest retained event
		wantLast    int64
	}{
		{name: "empty", capacity: 4, record: 0, wantLen: 0},
		{name: "partial", capacity: 4, record: 3, wantLen: 3, wantFirst: 0, wantLast: 2},
		{name: "exact-fill", capacity: 4, record: 4, wantLen: 4, wantFirst: 0, wantLast: 3},
		{name: "wrap-by-one", capacity: 4, record: 5, wantLen: 4, wantDropped: 1, wantFirst: 1, wantLast: 4},
		{name: "wrap-many", capacity: 4, record: 11, wantLen: 4, wantDropped: 7, wantFirst: 7, wantLast: 10},
		{name: "capacity-one", capacity: 1, record: 3, wantLen: 1, wantDropped: 2, wantFirst: 2, wantLast: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := NewTracer(tt.capacity)
			for i := 0; i < tt.record; i++ {
				tr.Record(Event{Cycle: int64(i), Kind: KindCommit})
			}
			if tr.Len() != tt.wantLen {
				t.Errorf("Len = %d, want %d", tr.Len(), tt.wantLen)
			}
			if tr.Total() != uint64(tt.record) {
				t.Errorf("Total = %d, want %d", tr.Total(), tt.record)
			}
			if tr.Dropped() != tt.wantDropped {
				t.Errorf("Dropped = %d, want %d", tr.Dropped(), tt.wantDropped)
			}
			evs := tr.Events()
			if len(evs) != tt.wantLen {
				t.Fatalf("len(Events) = %d, want %d", len(evs), tt.wantLen)
			}
			if tt.wantLen == 0 {
				return
			}
			if evs[0].Cycle != tt.wantFirst {
				t.Errorf("oldest cycle = %d, want %d", evs[0].Cycle, tt.wantFirst)
			}
			if evs[len(evs)-1].Cycle != tt.wantLast {
				t.Errorf("newest cycle = %d, want %d", evs[len(evs)-1].Cycle, tt.wantLast)
			}
			for i := 1; i < len(evs); i++ {
				if evs[i].Cycle != evs[i-1].Cycle+1 {
					t.Fatalf("events out of order at %d: %v", i, evs)
				}
			}
		})
	}
}

func TestTracerRecordDoesNotAllocate(t *testing.T) {
	tr := NewTracer(64)
	e := Event{Cycle: 7, Kind: KindIssue, Thread: 1, Seq: 42, PC: 9}
	allocs := testing.AllocsPerRun(1000, func() { tr.Record(e) })
	if allocs != 0 {
		t.Errorf("Record allocates %v per call, want 0", allocs)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3) })
	if allocs != 0 {
		t.Errorf("Observe allocates %v per call, want 0", allocs)
	}
}

func TestHistogramBucketing(t *testing.T) {
	tests := []struct {
		name       string
		bounds     []float64
		observe    []float64
		wantCounts []uint64
	}{
		{
			name: "basic", bounds: []float64{1, 2, 4},
			observe:    []float64{0, 1, 1.5, 2, 3, 4, 5, 100},
			wantCounts: []uint64{2, 2, 2, 2}, // <=1: {0,1}; <=2: {1.5,2}; <=4: {3,4}; over: {5,100}
		},
		{
			name: "bound-is-inclusive", bounds: []float64{10},
			observe:    []float64{10},
			wantCounts: []uint64{1, 0},
		},
		{
			name: "zero-width-buckets", bounds: []float64{5, 5, 5},
			observe:    []float64{4, 5, 6},
			wantCounts: []uint64{2, 0, 0, 1}, // first matching bound wins; duplicates stay empty
		},
		{
			name: "no-bounds", bounds: nil,
			observe:    []float64{1, 2},
			wantCounts: []uint64{2}, // everything overflows
		},
		{
			name: "negative-values", bounds: []float64{-10, 0, 10},
			observe:    []float64{-20, -10, -5, 0, 5, 20},
			wantCounts: []uint64{2, 2, 1, 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := NewHistogram(tt.bounds)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range tt.observe {
				h.Observe(v)
			}
			got := h.Counts()
			if len(got) != len(tt.wantCounts) {
				t.Fatalf("Counts = %v, want %v", got, tt.wantCounts)
			}
			for i := range got {
				if got[i] != tt.wantCounts[i] {
					t.Fatalf("Counts = %v, want %v", got, tt.wantCounts)
				}
			}
			if h.Count() != uint64(len(tt.observe)) {
				t.Errorf("Count = %d, want %d", h.Count(), len(tt.observe))
			}
		})
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
}

func TestHistogramMinMaxMean(t *testing.T) {
	h, _ := NewHistogram([]float64{10})
	for _, v := range []float64{4, -2, 7} {
		h.Observe(v)
	}
	if h.min != -2 || h.max != 7 {
		t.Errorf("min/max = %v/%v, want -2/7", h.min, h.max)
	}
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
}

func TestRegistryMergeCommutes(t *testing.T) {
	build := func(runs [][2]uint64) *Registry {
		r := NewRegistry()
		for _, run := range runs {
			r.Counter("runs").Inc()
			r.Counter("x").Add(run[0])
			r.Gauge("g").Add(float64(run[1]))
			r.Histogram("h", []float64{10, 20}).Observe(float64(run[0]))
		}
		return r
	}
	a := build([][2]uint64{{5, 1}, {15, 2}})
	b := build([][2]uint64{{25, 3}})

	ab := NewRegistry()
	if err := ab.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := NewRegistry()
	if err := ba.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}

	var t1, t2 bytes.Buffer
	if err := ab.WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := ba.WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatalf("merge order changed export:\n%s\nvs\n%s", t1.String(), t2.String())
	}
	if ab.CounterValue("x") != 45 || ab.CounterValue("runs") != 3 {
		t.Errorf("merged counters wrong: x=%d runs=%d", ab.CounterValue("x"), ab.CounterValue("runs"))
	}
	h := ab.HistogramByName("h")
	if h == nil || h.Count() != 3 {
		t.Fatalf("merged histogram count wrong: %+v", h)
	}
}

func TestRegistryMergeBoundsMismatch(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", []float64{1})
	b := NewRegistry()
	b.Histogram("h", []float64{2})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging histograms with different bounds succeeded")
	}
}

func TestRegistryHistogramReboundsPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering histogram with new bounds did not panic")
		}
	}()
	r.Histogram("h", []float64{2})
}

func TestRegistryExportsAreDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("m.gauge").Set(0.5)
	r.Histogram("h.depth", []float64{1, 2}).Observe(1)

	var first bytes.Buffer
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var again bytes.Buffer
		if err := r.WriteText(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatal("WriteText not deterministic")
		}
	}
	if strings.Index(first.String(), "a.first") > strings.Index(first.String(), "z.last") {
		t.Errorf("counters not sorted:\n%s", first.String())
	}

	var j1, j2 bytes.Buffer
	if err := r.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatal("WriteJSON not deterministic")
	}
	var parsed struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(j1.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
	if parsed.Counters["a.first"] != 2 {
		t.Errorf("JSON counters = %v", parsed.Counters)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Cycle: 1, Kind: KindFetch, Thread: 0, Seq: 1, PC: 0, FrontWay: 2, BackWay: -1})
	tr.Record(Event{Cycle: 2, Kind: KindIssue, Thread: 1, Seq: 1, PC: 0, NOP: true})
	tr.Record(Event{Cycle: 3, Kind: KindShuffle, Thread: -1, Arg: 4<<32 | 2})
	tr.Record(Event{Cycle: 4, Kind: KindFaultActivate, Thread: -1, Arg: 1})
	tr.Record(Event{Cycle: 5, Kind: KindDetect, Thread: -1, PC: 12, Arg: 3})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 4 metadata events + 5 instants.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("got %d trace events, want 9:\n%s", len(doc.TraceEvents), buf.String())
	}
	last := doc.TraceEvents[8]
	if last["name"] != "detect" || last["tid"] != float64(machineTID) {
		t.Errorf("detect event wrong: %v", last)
	}
	shuffle := doc.TraceEvents[6]
	args := shuffle["args"].(map[string]any)
	if args["in"] != float64(4) || args["out"] != float64(2) {
		t.Errorf("shuffle args wrong: %v", args)
	}
}

func TestRegistryNameListings(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count")
	r.Counter("a.count")
	r.Gauge("z.gauge")
	r.Histogram("h.depth", []float64{1, 2})
	wantEq := func(got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("names = %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("names = %v, want %v", got, want)
			}
		}
	}
	wantEq(r.CounterNames(), []string{"a.count", "b.count"})
	wantEq(r.GaugeNames(), []string{"z.gauge"})
	wantEq(r.HistogramNames(), []string{"h.depth"})
}
