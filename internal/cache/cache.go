// Package cache models the data-cache hierarchy of Table 1: a dual-ported
// 64KB 4-way 2-cycle L1, a unified 2MB 8-way L2, and 350-cycle main memory.
//
// The model is a timing model only: it tracks tags and LRU state to decide
// hit/miss latency, while data values live in the simulator's memory image.
// Outstanding misses are not bandwidth-limited (an unbounded-MSHR
// simplification); port contention on the L1 is modeled per cycle because the
// two L1 ports are exactly the two memory backend ways whose spatial
// diversity the paper measures.
package cache

import "fmt"

// Config sizes the hierarchy. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	LineBytes int

	L1SizeKB int
	L1Ways   int
	L1Lat    int // cycles for an L1 hit
	L1Ports  int // simultaneous accesses per cycle

	L2SizeKB int
	L2Ways   int
	L2Lat    int // additional cycles for an L2 hit

	MemLat int // additional cycles for a memory access
}

// DefaultConfig returns the Table 1 hierarchy.
func DefaultConfig() Config {
	return Config{
		LineBytes: 64,
		L1SizeKB:  64, L1Ways: 4, L1Lat: 2, L1Ports: 2,
		L2SizeKB: 2048, L2Ways: 8, L2Lat: 12,
		MemLat: 350,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineBytes)
	case c.L1SizeKB <= 0 || c.L2SizeKB <= 0:
		return fmt.Errorf("cache: non-positive cache size")
	case c.L1Ways <= 0 || c.L2Ways <= 0:
		return fmt.Errorf("cache: non-positive associativity")
	case c.L1Lat <= 0 || c.L2Lat < 0 || c.MemLat < 0:
		return fmt.Errorf("cache: bad latency")
	case c.L1Ports <= 0:
		return fmt.Errorf("cache: need at least one L1 port")
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses  uint64
	L1Misses  uint64
	L2Misses  uint64
	PortStall uint64 // accesses rejected for lack of a free port
}

// Hierarchy is the two-level hierarchy plus memory.
type Hierarchy struct {
	cfg Config
	l1  *setAssoc
	l2  *setAssoc

	portCycle int64 // cycle the port counter refers to
	portsUsed int

	stats Stats
}

// New builds a hierarchy; it panics on an invalid config (configs are
// programmer-supplied constants, not runtime input).
func New(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		cfg: cfg,
		l1:  newSetAssoc(cfg.L1SizeKB*1024, cfg.L1Ways, cfg.LineBytes),
		l2:  newSetAssoc(cfg.L2SizeKB*1024, cfg.L2Ways, cfg.LineBytes),
	}
}

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

// PortFree reports whether an L1 port is available in the given cycle.
func (h *Hierarchy) PortFree(cycle int64) bool {
	if cycle != h.portCycle {
		return true
	}
	return h.portsUsed < h.cfg.L1Ports
}

// Access performs a load or store access at the given cycle, returning the
// total latency in cycles and whether a port was available. When ok is false
// the access did not happen and the caller must retry in a later cycle.
func (h *Hierarchy) Access(addr uint64, cycle int64) (lat int, ok bool) {
	if cycle != h.portCycle {
		h.portCycle = cycle
		h.portsUsed = 0
	}
	if h.portsUsed >= h.cfg.L1Ports {
		h.stats.PortStall++
		return 0, false
	}
	h.portsUsed++
	h.stats.Accesses++

	lat = h.cfg.L1Lat
	if h.l1.access(addr) {
		return lat, true
	}
	h.stats.L1Misses++
	lat += h.cfg.L2Lat
	if h.l2.access(addr) {
		return lat, true
	}
	h.stats.L2Misses++
	lat += h.cfg.MemLat
	return lat, true
}

// Clone returns an independent deep copy of the hierarchy (tags, LRU state,
// port counters and statistics), so a checkpointed machine resumes with
// byte-identical hit/miss timing.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:       h.cfg,
		l1:        h.l1.clone(),
		l2:        h.l2.clone(),
		portCycle: h.portCycle,
		portsUsed: h.portsUsed,
		stats:     h.stats,
	}
}

// Probe reports the latency an access would see without performing it (no
// LRU update, no port use). Used by tests and diagnostics.
func (h *Hierarchy) Probe(addr uint64) int {
	lat := h.cfg.L1Lat
	if h.l1.probe(addr) {
		return lat
	}
	lat += h.cfg.L2Lat
	if h.l2.probe(addr) {
		return lat
	}
	return lat + h.cfg.MemLat
}

// setAssoc is an LRU set-associative tag array.
type setAssoc struct {
	sets      int
	ways      int
	lineShift uint
	// tags[set*ways+way]; lru[set*ways+way] holds a recency stamp.
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64
}

func newSetAssoc(sizeBytes, ways, lineBytes int) *setAssoc {
	lines := sizeBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &setAssoc{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
}

func (c *setAssoc) clone() *setAssoc {
	n := &setAssoc{
		sets:      c.sets,
		ways:      c.ways,
		lineShift: c.lineShift,
		tags:      make([]uint64, len(c.tags)),
		valid:     make([]bool, len(c.valid)),
		lru:       make([]uint64, len(c.lru)),
		clock:     c.clock,
	}
	copy(n.tags, c.tags)
	copy(n.valid, c.valid)
	copy(n.lru, c.lru)
	return n
}

func (c *setAssoc) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// access looks up addr, fills on miss, and returns whether it hit.
func (c *setAssoc) access(addr uint64) bool {
	set, tag := c.index(addr)
	c.clock++
	base := set * c.ways
	victim, oldest := base, c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.lru[victim] = c.clock
	return false
}

func (c *setAssoc) probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}
