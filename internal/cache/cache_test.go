package cache

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		edit func(*Config)
	}{
		{"line not power of two", func(c *Config) { c.LineBytes = 48 }},
		{"zero line", func(c *Config) { c.LineBytes = 0 }},
		{"zero l1", func(c *Config) { c.L1SizeKB = 0 }},
		{"zero ways", func(c *Config) { c.L2Ways = 0 }},
		{"zero l1 latency", func(c *Config) { c.L1Lat = 0 }},
		{"negative mem latency", func(c *Config) { c.MemLat = -1 }},
		{"zero ports", func(c *Config) { c.L1Ports = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.edit(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(DefaultConfig())
	lat, ok := h.Access(0x1000, 1)
	if !ok {
		t.Fatal("port denied")
	}
	wantMiss := 2 + 12 + 350
	if lat != wantMiss {
		t.Errorf("cold access latency = %d, want %d", lat, wantMiss)
	}
	lat, ok = h.Access(0x1000, 2)
	if !ok || lat != 2 {
		t.Errorf("second access = (%d,%v), want (2,true)", lat, ok)
	}
	s := h.Stats()
	if s.Accesses != 2 || s.L1Misses != 1 || s.L2Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses, 1 L1 miss, 1 L2 miss", s)
	}
}

func TestSameLineHits(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0x1000, 1)
	lat, _ := h.Access(0x1038, 2) // same 64B line
	if lat != 2 {
		t.Errorf("same-line access latency = %d, want 2", lat)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	// L1: 64KB 4-way 64B lines -> 256 sets. Addresses that map to set 0 are
	// multiples of 256*64 = 16KB. Fill set 0 with 5 distinct lines: the first
	// is evicted from L1 but remains in L2.
	step := uint64(cfg.L1SizeKB) * 1024 / uint64(cfg.L1Ways) // 16KB
	for i := uint64(0); i < 5; i++ {
		h.Access(i*step, int64(i+1))
	}
	lat, _ := h.Access(0, 100)
	if lat != cfg.L1Lat+cfg.L2Lat {
		t.Errorf("evicted-line latency = %d, want %d (L2 hit)", lat, cfg.L1Lat+cfg.L2Lat)
	}
}

func TestPortLimit(t *testing.T) {
	h := New(DefaultConfig())
	if _, ok := h.Access(0, 7); !ok {
		t.Fatal("first port denied")
	}
	if _, ok := h.Access(64, 7); !ok {
		t.Fatal("second port denied")
	}
	if !h.PortFree(8) {
		t.Error("ports should be free next cycle")
	}
	if h.PortFree(7) {
		t.Error("no port should remain in cycle 7")
	}
	if _, ok := h.Access(128, 7); ok {
		t.Error("third same-cycle access should be rejected")
	}
	if h.Stats().PortStall != 1 {
		t.Errorf("port stalls = %d, want 1", h.Stats().PortStall)
	}
	if _, ok := h.Access(128, 8); !ok {
		t.Error("access should succeed in the next cycle")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	h := New(DefaultConfig())
	if got := h.Probe(0x2000); got != 2+12+350 {
		t.Errorf("probe of cold line = %d, want full miss latency", got)
	}
	// Probe must not have filled the line.
	if lat, _ := h.Access(0x2000, 1); lat != 2+12+350 {
		t.Errorf("access after probe = %d, want full miss latency", lat)
	}
	if got := h.Probe(0x2000); got != 2 {
		t.Errorf("probe after fill = %d, want 2", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	step := uint64(cfg.L1SizeKB) * 1024 / uint64(cfg.L1Ways)
	// Fill the 4 ways of set 0, touch line 0 again to make line at step the
	// LRU victim, then bring in a 5th line.
	for i := uint64(0); i < 4; i++ {
		h.Access(i*step, int64(i))
	}
	h.Access(0, 10)      // refresh line 0
	h.Access(4*step, 11) // evicts line at 1*step
	if lat, _ := h.Access(0, 12); lat != cfg.L1Lat {
		t.Errorf("line 0 should still hit L1, latency %d", lat)
	}
	if lat, _ := h.Access(step, 13); lat == cfg.L1Lat {
		t.Error("LRU line should have been evicted from L1")
	}
}

func TestWorkingSetFitsL1AlwaysHitsAfterWarmup(t *testing.T) {
	h := New(DefaultConfig())
	const ws = 32 * 1024
	cycle := int64(0)
	for a := uint64(0); a < ws; a += 64 {
		cycle++
		h.Access(a, cycle)
	}
	misses := h.Stats().L1Misses
	for a := uint64(0); a < ws; a += 8 {
		cycle++
		if lat, _ := h.Access(a, cycle); lat != 2 {
			t.Fatalf("warm access to %#x missed (lat %d)", a, lat)
		}
	}
	if h.Stats().L1Misses != misses {
		t.Errorf("L1 misses grew from %d to %d after warmup", misses, h.Stats().L1Misses)
	}
}

// Conflict misses: more distinct lines mapping to one set than ways must
// thrash, while the same lines spread across sets all hit.
func TestConflictMisses(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	setStride := uint64(cfg.L1SizeKB) * 1024 / uint64(cfg.L1Ways) // same-set stride
	cycle := int64(0)
	access := func(a uint64) int {
		cycle++
		lat, _ := h.Access(a, cycle)
		return lat
	}
	// 8 lines in one set of a 4-way cache, accessed round-robin: every
	// access past the warmup must miss L1 (hit L2).
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 8; i++ {
			access(i * setStride)
		}
	}
	missesBefore := h.Stats().L1Misses
	for i := uint64(0); i < 8; i++ {
		if lat := access(i * setStride); lat == cfg.L1Lat {
			t.Fatalf("conflict line %d hit L1", i)
		}
	}
	if h.Stats().L1Misses != missesBefore+8 {
		t.Errorf("conflict misses = %d, want 8", h.Stats().L1Misses-missesBefore)
	}
	// The same 8 lines at line-sized strides (different sets) all hit.
	h2 := New(cfg)
	for i := uint64(0); i < 8; i++ {
		cycle++
		h2.Access(i*64, cycle)
	}
	for i := uint64(0); i < 8; i++ {
		cycle++
		if lat, _ := h2.Access(i*64, cycle); lat != cfg.L1Lat {
			t.Errorf("spread line %d missed", i)
		}
	}
}
