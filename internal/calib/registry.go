package calib

import "blackjack/internal/obs"

// FromRegistry imports a metrics registry into m under a key prefix:
// counters and gauges keep their names, histograms contribute ".mean" and
// ".count" leaves. This is how registry-derived claims (queue occupancy)
// join the suite-derived figures in one measurement set.
func FromRegistry(m Measurements, reg *obs.Registry, prefix string) {
	for _, n := range reg.CounterNames() {
		m[prefix+n] = float64(reg.CounterValue(n))
	}
	for _, n := range reg.GaugeNames() {
		m[prefix+n] = reg.GaugeValue(n)
	}
	for _, n := range reg.HistogramNames() {
		h := reg.HistogramByName(n)
		m[prefix+n+".mean"] = h.Mean()
		m[prefix+n+".count"] = float64(h.Count())
	}
}
