// Golden-fixture rendering tests: a fixed synthetic report exercising every
// verdict and band shape must render byte-identically to the committed
// fixtures, in both text and JSON. Regenerate after an intentional format
// change with
//
//	go test ./internal/calib/ -run Golden -update
//
// and review the fixture diff like any other code change.
package calib

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenReport evaluates a fixed spec over fixed measurements: one PASS per
// band shape, one DRIFT, one out-of-band FAIL, and one unmeasured FAIL, so
// the fixtures pin the rendering of every verdict and every label form.
func goldenReport() *Report {
	spec := Spec{
		Name: "golden spec",
		Claims: []Claim{
			{ID: "cov.abs", Figure: "Fig. 1", Metric: "cov", Desc: "two-sided percent band",
				Paper: "97", Band: AbsBand(0.97, 0.02, 0.04), Unit: Percent},
			{ID: "cost.floor", Figure: "Fig. 2", Metric: "cost", Desc: "one-sided floor",
				Paper: ">= 90", Band: AtLeast(0.90, 0.85), Unit: Percent},
			{ID: "noise.ceil", Figure: "Fig. 2", Metric: "noise", Desc: "one-sided ceiling, drifting",
				Paper: "~1", Band: AtMost(0.01, 0.03), Unit: Percent},
			{ID: "queue.mean", Figure: "Tbl. 1", Metric: "queue", Desc: "scalar range, failing",
				Paper: "n/a", Band: RangeBand(10, 20, 5, 25), Unit: Scalar},
			{ID: "gap.points", Figure: "Fig. 3", Metric: "missing", Desc: "never measured",
				Paper: "0.5", Band: AtLeast(0, -0.01), Unit: Points},
		},
	}
	return spec.Evaluate(Measurements{
		"cov":   0.961, // PASS, inside [95, 99]
		"cost":  0.93,  // PASS, above the floor
		"noise": 0.02,  // DRIFT, between 1% and 3%
		"queue": 42,    // FAIL, beyond the drift ceiling
	})
}

func goldenTrendReport() *TrendReport {
	records := []Record{
		{Fields: map[string]float64{"speedup": 3.6, "ns_per_instr": 2200}},
		{Fields: map[string]float64{"speedup": 3.5, "ns_per_instr": 2250}},
		{Fields: map[string]float64{"speedup": 3.55, "ns_per_instr": 2225, "cache_speedup": 230}},
	}
	rep := EvalTrend(records, DefaultTrendSpec())
	rep.Path = "testdata/example.json"
	return rep
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from fixture; regenerate with -update if intentional.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func TestGoldenReportRendering(t *testing.T) {
	rep := goldenReport()
	if pass, drift, fail := rep.Counts(); pass != 2 || drift != 1 || fail != 2 {
		t.Fatalf("golden report counts = %d/%d/%d, want 2/1/2", pass, drift, fail)
	}
	var text, js bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "report.txt"), text.Bytes())
	checkGolden(t, filepath.Join("testdata", "golden", "report.json"), js.Bytes())
}

func TestGoldenTrendRendering(t *testing.T) {
	rep := goldenTrendReport()
	var text, js bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "trend.txt"), text.Bytes())
	checkGolden(t, filepath.Join("testdata", "golden", "trend.json"), js.Bytes())
}

// Rendering is deterministic: two renders of the same report are
// byte-identical (the property the golden fixtures and CI depend on).
func TestRenderingDeterministic(t *testing.T) {
	render := func() (string, string) {
		rep := goldenReport()
		var text, js bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 || j1 != j2 {
		t.Error("report rendering is not deterministic")
	}
}
