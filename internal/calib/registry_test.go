package calib

import (
	"testing"

	"blackjack/internal/obs"
)

func TestFromRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("faults.injected").Add(7)
	reg.Gauge("queue.peak").Set(42.5)
	h := reg.Histogram("queue.depth", []float64{10, 20})
	h.Observe(10)
	h.Observe(20)

	m := Measurements{}
	FromRegistry(m, reg, RepPrefix)

	want := map[string]float64{
		"rep.faults.injected":   7,
		"rep.queue.peak":        42.5,
		"rep.queue.depth.mean":  15,
		"rep.queue.depth.count": 2,
	}
	if len(m) != len(want) {
		t.Fatalf("imported %d keys, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("m[%q] = %v, want %v", k, m[k], v)
		}
	}
}
