package calib

// RepPrefix is the measurement-key prefix under which the calibration
// harness imports the representative metrics-attached run's registry (see
// FromRegistry and experiments.Calibrate): occupancy claims evaluate
// "rep.pipeline.iq.occupancy.mean" and friends.
const RepPrefix = "rep."

// PaperSpec returns the executable form of the EXPERIMENTS.md
// paper-vs-measured comparison: every headline and per-figure claim as a
// typed assertion. PASS bands are centered on this repository's known-good
// 300k-instruction measurements and sized to stay green across the
// 120k–300k budget range EXPERIMENTS.md documents as stable; DRIFT bands
// leave room for benign drift before a claim hard-fails. The paper column
// records what the original evaluation reported, so the report doubles as
// the comparison table.
func PaperSpec() Spec {
	return Spec{
		Name: "BlackJack paper calibration",
		Claims: []Claim{
			// Coverage (Figure 4a/4b).
			{
				ID: "fig4a.bj.coverage.avg", Figure: "Fig. 4a", Metric: "fig4a.bj.coverage.avg",
				Desc:  "BlackJack hard-error instruction coverage, suite average",
				Paper: "97", Band: AbsBand(0.97, 0.03, 0.05), Unit: Percent,
			},
			{
				ID: "fig4a.bj.coverage.min", Figure: "Fig. 4a", Metric: "fig4a.bj.coverage.min",
				Desc:  "BlackJack coverage ≈97% on every benchmark (94–99 band)",
				Paper: ">= 94", Band: AtLeast(0.93, 0.90), Unit: Percent,
			},
			{
				ID: "fig4a.srt.coverage.avg", Figure: "Fig. 4a", Metric: "fig4a.srt.coverage.avg",
				Desc:  "SRT accidental coverage modest and workload-dependent",
				Paper: "34", Band: RangeBand(0.18, 0.45, 0.12, 0.50), Unit: Percent,
			},
			{
				ID: "fig4a.srt.fe_diversity.max", Figure: "Fig. 4a", Metric: "fig4a.srt.fe_diversity.max",
				Desc:  "SRT has exactly zero frontend diversity on every benchmark",
				Paper: "0", Band: AtMost(0, 0.001), Unit: Percent,
			},
			{
				ID: "fig4a.bj.fe_diversity.min", Figure: "Fig. 4a", Metric: "fig4a.bj.fe_diversity.min",
				Desc:  "BlackJack has exactly full frontend diversity on every benchmark",
				Paper: "100", Band: AtLeast(1, 0.999), Unit: Percent,
			},
			{
				ID: "fig4b.srt.coverage.avg", Figure: "Fig. 4b", Metric: "fig4b.srt.coverage.avg",
				Desc:  "SRT backend-only coverage, suite average",
				Paper: "~52", Band: RangeBand(0.30, 0.60, 0.25, 0.65), Unit: Percent,
			},
			{
				ID: "fig4b.bj.coverage.avg", Figure: "Fig. 4b", Metric: "fig4b.bj.coverage.avg",
				Desc:  "BlackJack backend-only coverage, suite average",
				Paper: "~95.5", Band: AbsBand(0.955, 0.04, 0.06), Unit: Percent,
			},

			// Interference and burstiness (Figures 5, 6).
			{
				ID: "fig5.tt.avg", Figure: "Fig. 5", Metric: "fig5.tt.avg",
				Desc:  "trailing-trailing interference rare (few % of issue cycles)",
				Paper: "0.5", Band: AtMost(0.02, 0.03), Unit: Percent,
			},
			{
				ID: "fig5.lt.avg", Figure: "Fig. 5", Metric: "fig5.lt.avg",
				Desc:  "leading-trailing interference rare (few % of issue cycles)",
				Paper: "2.3", Band: AtMost(0.06, 0.08), Unit: Percent,
			},
			{
				ID: "fig5.lt_minus_tt", Figure: "Fig. 5", Metric: "fig5.lt_minus_tt",
				Desc:  "leading-trailing interference dominates trailing-trailing on average",
				Paper: "LT > TT", Band: AtLeast(0, -0.002), Unit: Points,
			},
			{
				ID: "fig6.single_ctx.avg", Figure: "Fig. 6", Metric: "fig6.single_ctx.avg",
				Desc:  "most issue cycles are single-context (issue burstiness)",
				Paper: "70", Band: RangeBand(0.55, 0.95, 0.50, 0.97), Unit: Percent,
			},

			// Performance (Figure 7, Ext-B).
			{
				ID: "fig7.srt.slowdown", Figure: "Fig. 7", Metric: "fig7.srt.slowdown",
				Desc:  "SRT slowdown vs single thread, suite average",
				Paper: "21", Band: RangeBand(0.06, 0.30, 0.04, 0.35), Unit: Percent,
			},
			{
				ID: "fig7.bj.slowdown", Figure: "Fig. 7", Metric: "fig7.bj.slowdown",
				Desc:  "BlackJack slowdown vs single thread, suite average",
				Paper: "33", Band: RangeBand(0.15, 0.40, 0.10, 0.45), Unit: Percent,
			},
			{
				ID: "fig7.bj_over_srt", Figure: "Fig. 7", Metric: "fig7.bj_over_srt",
				Desc:  "BlackJack costs ~15% beyond SRT (the headline trade)",
				Paper: "15", Band: AbsBand(0.15, 0.05, 0.08), Unit: Percent,
			},
			{
				ID: "fig7.ordering.margin", Figure: "Fig. 7", Metric: "fig7.ordering.margin",
				Desc:  "single > SRT > BlackJack-NS > BlackJack on every benchmark (min margin)",
				Paper: "strict order", Band: AtLeast(0.0005, 0), Unit: Points,
			},
			{
				ID: "extb.fetch.cost", Figure: "Fig. 7 / Ext-B", Metric: "extb.fetch.cost",
				Desc:  "one-packet-per-cycle fetch cost (SRT → BlackJack-NS), suite average",
				Paper: "~10", Band: RangeBand(0.03, 0.15, 0.02, 0.20), Unit: Percent,
			},
			{
				ID: "extb.shuffle.cost", Figure: "Fig. 7 / Ext-B", Metric: "extb.shuffle.cost",
				Desc:  "shuffle packet-split cost (BlackJack-NS → BlackJack), suite average",
				Paper: "5", Band: RangeBand(0.03, 0.14, 0.02, 0.18), Unit: Percent,
			},

			// Queue occupancy (representative metrics-attached BlackJack run;
			// EXPERIMENTS.md "queue pressure" keys). The paper has no direct
			// occupancy figure; the reference is this repository's measured
			// operating point, which the Ext-D sensitivity study depends on
			// (Table 1's slack/DTQ sit on the flat part of the curve only
			// while the queues run at these depths).
			{
				ID: "occ.iq.mean", Figure: "Queue pressure", Metric: RepPrefix + "pipeline.iq.occupancy.mean",
				Desc:  "mean issue-queue occupancy under BlackJack (32 entries)",
				Paper: "n/a", Band: RangeBand(15, 28, 12, 31), Unit: Scalar,
			},
			{
				ID: "occ.dtq.mean", Figure: "Queue pressure", Metric: RepPrefix + "pipeline.dtq.depth.mean",
				Desc:  "mean DTQ depth under BlackJack, far below the 1024 bound",
				Paper: "n/a", Band: RangeBand(300, 600, 200, 800), Unit: Scalar,
			},
			{
				ID: "occ.lvq.mean", Figure: "Queue pressure", Metric: RepPrefix + "pipeline.lvq.depth.mean",
				Desc:  "mean LVQ depth under BlackJack, below the 128 capacity",
				Paper: "n/a", Band: RangeBand(30, 90, 20, 110), Unit: Scalar,
			},
		},
	}
}
