package calib

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"blackjack/internal/stats"
)

// bandLabel renders the PASS interval in the claim's unit, collapsing
// one-sided bands to inequalities.
func bandLabel(b Band, u Unit) string {
	switch {
	case math.IsInf(b.PassLo, -1) && math.IsInf(b.PassHi, 1):
		return "any"
	case math.IsInf(b.PassHi, 1):
		return ">= " + u.Format(b.PassLo)
	case math.IsInf(b.PassLo, -1):
		return "<= " + u.Format(b.PassHi)
	}
	return "[" + u.Format(b.PassLo) + ", " + u.Format(b.PassHi) + "]"
}

// deltaLabel renders the observed-vs-expected delta: empty inside the PASS
// interval, signed distance to the violated bound otherwise.
func deltaLabel(r Result) string {
	if !r.Measured {
		return "not measured"
	}
	d := r.Delta()
	if d == 0 {
		return ""
	}
	sign := "+"
	if d < 0 {
		sign = "-"
	}
	return sign + r.Claim.Unit.Format(math.Abs(d))
}

// Table renders the report as an aligned text table, one claim per row.
func (r *Report) Table() *stats.Table {
	pass, drift, fail := r.Counts()
	t := stats.NewTable(
		fmt.Sprintf("%s: %d PASS, %d DRIFT, %d FAIL", r.Spec, pass, drift, fail),
		"claim", "figure", "paper", "pass band", "measured", "delta", "verdict")
	for _, res := range r.Results {
		measured := "-"
		if res.Measured {
			measured = res.Claim.Unit.Format(res.Observed)
		}
		t.AddRow(res.Claim.ID, res.Claim.Figure, res.Claim.Paper,
			bandLabel(res.Claim.Band, res.Claim.Unit), measured,
			deltaLabel(res), res.Verdict.String())
	}
	return t
}

// WriteText renders the report table to w.
func (r *Report) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, r.Table().String())
	return err
}

// jsonBound drops infinite interval bounds to null so the report stays
// valid JSON (encoding/json rejects ±Inf).
func jsonBound(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

type resultJSON struct {
	ID       string   `json:"id"`
	Figure   string   `json:"figure"`
	Metric   string   `json:"metric"`
	Desc     string   `json:"desc"`
	Paper    string   `json:"paper"`
	PassLo   *float64 `json:"pass_lo"`
	PassHi   *float64 `json:"pass_hi"`
	DriftLo  *float64 `json:"drift_lo"`
	DriftHi  *float64 `json:"drift_hi"`
	Observed *float64 `json:"observed"`
	Delta    *float64 `json:"delta"`
	Verdict  string   `json:"verdict"`
}

type reportJSON struct {
	Spec   string       `json:"spec"`
	Pass   int          `json:"pass"`
	Drift  int          `json:"drift"`
	Fail   int          `json:"fail"`
	Claims []resultJSON `json:"claims"`
}

// WriteJSON renders the report as deterministic JSON (claims in spec
// order, fixed field order).
func (r *Report) WriteJSON(w io.Writer) error {
	pass, drift, fail := r.Counts()
	out := reportJSON{Spec: r.Spec, Pass: pass, Drift: drift, Fail: fail,
		Claims: make([]resultJSON, 0, len(r.Results))}
	for _, res := range r.Results {
		c := res.Claim
		rj := resultJSON{
			ID: c.ID, Figure: c.Figure, Metric: c.Metric, Desc: c.Desc, Paper: c.Paper,
			PassLo: jsonBound(c.Band.PassLo), PassHi: jsonBound(c.Band.PassHi),
			DriftLo: jsonBound(c.Band.DriftLo), DriftHi: jsonBound(c.Band.DriftHi),
			Verdict: res.Verdict.String(),
		}
		if res.Measured {
			rj.Observed = jsonBound(res.Observed)
			rj.Delta = jsonBound(res.Delta())
		}
		out.Claims = append(out.Claims, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
