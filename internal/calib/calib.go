// Package calib turns the paper-vs-measured comparison into executable
// assertions. Every claim of the paper's evaluation that EXPERIMENTS.md
// checks in prose — coverage averages, slowdown decompositions, interference
// fractions, issue burstiness, queue occupancy — is encoded as a typed
// Claim: a measurement key, the paper's reported value, and a tolerance
// band with an inner PASS interval and an outer DRIFT interval. Evaluating
// a Spec against a Measurements map produces a Report with a per-claim
// PASS/DRIFT/FAIL verdict and deterministic text/JSON renderings, so a PR
// that silently shifts a figure fails CI instead of waiting for a human to
// reread the prose.
//
// The package also gates the BENCH_*.json performance trajectories: the
// trend layer (trend.go) fits a tolerance window over the last K records
// (median ± relative band per metric) and flags the newest record when a
// speedup falls or a cost rises beyond the window.
package calib

import (
	"fmt"
	"math"
)

// Verdict classifies one evaluated claim. The order is meaningful: verdicts
// only worsen as the observed value moves away from the expected one, so
// Pass < Drift < Fail supports monotonicity reasoning (and tests).
type Verdict uint8

// Claim verdicts.
const (
	// Pass: the observation sits inside the claim's inner tolerance band.
	Pass Verdict = iota
	// Drift: outside the inner band but inside the outer band — worth a
	// warning, not a failure.
	Drift
	// Fail: outside the outer band, or not measured at all.
	Fail
)

var verdictNames = [...]string{Pass: "PASS", Drift: "DRIFT", Fail: "FAIL"}

// String names the verdict.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Band is one claim's tolerance specification: an inner PASS interval
// inside an outer DRIFT interval. Constructors normalize the intervals so
// PASS ⊆ DRIFT always holds; one-sided bands use ±Inf bounds.
type Band struct {
	PassLo, PassHi   float64
	DriftLo, DriftHi float64
}

// normalize enforces the PASS ⊆ DRIFT containment (a drift interval can
// never be narrower than the pass interval it surrounds).
func (b Band) normalize() Band {
	b.DriftLo = math.Min(b.DriftLo, b.PassLo)
	b.DriftHi = math.Max(b.DriftHi, b.PassHi)
	return b
}

// AbsBand builds a band symmetric about center with absolute halfwidths:
// PASS is center ± pass, DRIFT is center ± drift.
func AbsBand(center, pass, drift float64) Band {
	return Band{
		PassLo: center - pass, PassHi: center + pass,
		DriftLo: center - drift, DriftHi: center + drift,
	}.normalize()
}

// RelBand builds a band symmetric about center with halfwidths relative to
// |center|: PASS is center ± |center|·passFrac.
func RelBand(center, passFrac, driftFrac float64) Band {
	m := math.Abs(center)
	return AbsBand(center, m*passFrac, m*driftFrac)
}

// RangeBand builds a band from explicit interval bounds.
func RangeBand(passLo, passHi, driftLo, driftHi float64) Band {
	return Band{PassLo: passLo, PassHi: passHi, DriftLo: driftLo, DriftHi: driftHi}.normalize()
}

// AtLeast builds a one-sided lower band: PASS requires ≥ pass, DRIFT
// tolerates down to drift.
func AtLeast(pass, drift float64) Band {
	return Band{
		PassLo: pass, PassHi: math.Inf(1),
		DriftLo: drift, DriftHi: math.Inf(1),
	}.normalize()
}

// AtMost builds a one-sided upper band: PASS requires ≤ pass, DRIFT
// tolerates up to drift.
func AtMost(pass, drift float64) Band {
	return Band{
		PassLo: math.Inf(-1), PassHi: pass,
		DriftLo: math.Inf(-1), DriftHi: drift,
	}.normalize()
}

// Eval classifies an observation against the band. NaN never passes.
func (b Band) Eval(v float64) Verdict {
	switch {
	case math.IsNaN(v):
		return Fail
	case v >= b.PassLo && v <= b.PassHi:
		return Pass
	case v >= b.DriftLo && v <= b.DriftHi:
		return Drift
	}
	return Fail
}

// Unit selects how a claim's values render in reports.
type Unit uint8

// Claim value units.
const (
	// Percent renders a fraction as a percentage with one decimal (0.973
	// -> "97.3").
	Percent Unit = iota
	// Points renders a fraction difference as percentage points with two
	// decimals (ordering margins, interference deltas).
	Points
	// Scalar renders the value as-is with up to four significant digits
	// (queue depths, ratios).
	Scalar
)

// Format renders one value in the unit's display convention.
func (u Unit) Format(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	switch u {
	case Percent:
		return fmt.Sprintf("%.1f", v*100)
	case Points:
		return fmt.Sprintf("%.2f", v*100)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Claim is one executable paper assertion.
type Claim struct {
	// ID is the stable claim identifier referenced from EXPERIMENTS.md and
	// CI annotations, e.g. "fig4a.bj.coverage.avg".
	ID string
	// Figure names the paper figure or table the claim encodes ("Fig. 4a").
	Figure string
	// Metric is the Measurements key the claim evaluates.
	Metric string
	// Desc states the claim in words.
	Desc string
	// Paper is the paper's reported value or shape, for the report.
	Paper string
	// Band is the tolerance around the expected measured value. Bands are
	// centered on this repository's known-good measurements, not on the
	// paper's absolute numbers: the simulator reproduces the paper's
	// shapes on a different absolute operating point (see EXPERIMENTS.md
	// "How to read the comparison"), and the band's job is to lock the
	// reproduction in place.
	Band Band
	// Unit selects value formatting in reports.
	Unit Unit
}

// Measurements maps metric keys to measured scalars. The experiments
// package builds one from a figure suite plus a metrics registry.
type Measurements map[string]float64

// Spec is a named set of claims.
type Spec struct {
	Name   string
	Claims []Claim
}

// Result is one evaluated claim.
type Result struct {
	Claim    Claim
	Observed float64
	// Measured is false when the metric key was absent, which is itself a
	// Fail: a claim that cannot be evaluated is not protecting anything.
	Measured bool
	Verdict  Verdict
}

// Delta returns the signed distance from the observation to the nearest
// PASS bound, 0 when the observation is inside the PASS interval.
func (r Result) Delta() float64 {
	b := r.Claim.Band
	switch {
	case !r.Measured:
		return math.NaN()
	case r.Observed < b.PassLo:
		return r.Observed - b.PassLo
	case r.Observed > b.PassHi:
		return r.Observed - b.PassHi
	}
	return 0
}

// Report is an evaluated spec.
type Report struct {
	Spec    string
	Results []Result
}

// Evaluate checks every claim of the spec against the measurements, in
// claim order.
func (s Spec) Evaluate(m Measurements) *Report {
	rep := &Report{Spec: s.Name, Results: make([]Result, 0, len(s.Claims))}
	for _, c := range s.Claims {
		v, ok := m[c.Metric]
		r := Result{Claim: c, Observed: v, Measured: ok}
		if ok {
			r.Verdict = c.Band.Eval(v)
		} else {
			r.Verdict = Fail
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// Missing returns the metric keys of claims that m does not cover, in claim
// order. A complete measurement set returns nil.
func (s Spec) Missing(m Measurements) []string {
	var missing []string
	for _, c := range s.Claims {
		if _, ok := m[c.Metric]; !ok {
			missing = append(missing, c.Metric)
		}
	}
	return missing
}

// Counts tallies the verdicts.
func (r *Report) Counts() (pass, drift, fail int) {
	for _, res := range r.Results {
		switch res.Verdict {
		case Pass:
			pass++
		case Drift:
			drift++
		default:
			fail++
		}
	}
	return pass, drift, fail
}

// Failed reports whether any claim failed.
func (r *Report) Failed() bool {
	_, _, fail := r.Counts()
	return fail > 0
}

// Drifting returns the IDs of claims with a DRIFT verdict, in claim order.
func (r *Report) Drifting() []string {
	var ids []string
	for _, res := range r.Results {
		if res.Verdict == Drift {
			ids = append(ids, res.Claim.ID)
		}
	}
	return ids
}
