package calib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"blackjack/internal/stats"
)

// Record is one normalized BENCH trajectory record: numeric fields and
// string labels of the flat JSON object, schema-agnostic. Legacy records
// (the pre-trajectory single-object format, or records written before a
// field existed) normalize to the same shape — a missing number is simply
// absent from Fields, a missing label is the empty string — so trend
// fitting never special-cases schema versions.
type Record struct {
	Fields map[string]float64
	Labels map[string]string
}

// rawTrajectory parses a trajectory file body into its raw records,
// migrating the legacy single-object format to a one-record list.
func rawTrajectory(data []byte) ([]json.RawMessage, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, nil
	}
	if trimmed[0] == '[' {
		var records []json.RawMessage
		if err := json.Unmarshal(trimmed, &records); err != nil {
			return nil, fmt.Errorf("calib: invalid trajectory: %w", err)
		}
		return records, nil
	}
	var legacy json.RawMessage
	if err := json.Unmarshal(trimmed, &legacy); err != nil {
		return nil, fmt.Errorf("calib: neither a trajectory nor a legacy record: %w", err)
	}
	return []json.RawMessage{legacy}, nil
}

// normalizeRecord decodes one raw record into the schema-agnostic form.
func normalizeRecord(raw json.RawMessage) (Record, error) {
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		return Record{}, fmt.Errorf("calib: trajectory record is not an object: %w", err)
	}
	rec := Record{Fields: map[string]float64{}, Labels: map[string]string{"at": ""}}
	for k, v := range obj {
		switch t := v.(type) {
		case float64:
			rec.Fields[k] = t
		case string:
			rec.Labels[k] = t
		case bool:
			if t {
				rec.Fields[k] = 1
			} else {
				rec.Fields[k] = 0
			}
		}
	}
	return rec, nil
}

// LoadTrajectory parses a trajectory body (array or legacy single object)
// into normalized records, oldest first.
func LoadTrajectory(data []byte) ([]Record, error) {
	raws, err := rawTrajectory(data)
	if err != nil {
		return nil, err
	}
	records := make([]Record, 0, len(raws))
	for _, raw := range raws {
		rec, err := normalizeRecord(raw)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return records, nil
}

// LoadTrajectoryFile reads and parses the trajectory at path.
func LoadTrajectoryFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	records, err := LoadTrajectory(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}

// TrajectoryIdentityFields are the labels/fields every record of one
// trajectory file must agree on: a trajectory tracks one workload
// configuration over time, so mixing benchmarks, modes or site counts in
// one file would corrupt every trend fitted over it.
var TrajectoryIdentityFields = []string{"benchmark", "mode", "sites"}

// TrajectoryMismatchError is the typed refusal to append a record to a
// trajectory recorded for a different workload, naming the differing field
// (the trajectory analogue of journal.ErrKeyMismatch).
type TrajectoryMismatchError struct {
	Path  string
	Field string
	Have  string // value in the existing trajectory
	Want  string // value on the record being appended
}

func (e *TrajectoryMismatchError) Error() string {
	return fmt.Sprintf("calib: trajectory %s does not match this record: %s changed: file has %q, record has %q",
		e.Path, e.Field, e.Have, e.Want)
}

// identityValue renders one identity field of a record canonically; ok is
// false when the record does not carry the field (legacy schemas), which
// imposes no constraint.
func identityValue(rec Record, field string) (string, bool) {
	if v, ok := rec.Fields[field]; ok {
		return strconv.FormatFloat(v, 'g', -1, 64), true
	}
	if v, ok := rec.Labels[field]; ok && v != "" {
		return v, true
	}
	return "", false
}

// AppendTrajectory appends rec (any JSON-marshalable flat record) to the
// trajectory array at path, migrating a legacy single-object file in place
// and refusing — with a *TrajectoryMismatchError — a record whose identity
// fields disagree with any record already in the file.
func AppendTrajectory(path string, rec any) error {
	encoded, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	newRec, err := normalizeRecord(encoded)
	if err != nil {
		return err
	}

	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if records, err = rawTrajectory(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, raw := range records {
		old, err := normalizeRecord(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, field := range TrajectoryIdentityFields {
			have, haveOK := identityValue(old, field)
			want, wantOK := identityValue(newRec, field)
			if haveOK && wantOK && have != want {
				return &TrajectoryMismatchError{Path: path, Field: field, Have: have, Want: want}
			}
		}
	}

	records = append(records, encoded)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// TrendMetric is one gated metric of a BENCH trajectory.
type TrendMetric struct {
	// Key is the record field to gate.
	Key string
	// HigherIsBetter orients the gate: a regression is the newest value
	// falling below the baseline (speedups) or rising above it (costs).
	HigherIsBetter bool
	// Pass and Drift are relative tolerances around the baseline median:
	// the newest value PASSes within baseline·(1±Pass) on the bad side and
	// DRIFTs up to baseline·(1±Drift). The good direction is never gated.
	Pass, Drift float64
}

// TrendSpec is the tolerance window fitted over a trajectory.
type TrendSpec struct {
	// Window is the number of most-recent records (excluding the newest)
	// whose median forms each metric's baseline.
	Window int
	// Metrics are the gated fields.
	Metrics []TrendMetric
}

// DefaultTrendSpec gates the campaign-bench trajectory fields. Wall-clock
// ratios get generous bands (CI runners and host load are noisy); alloc
// counts are nearly deterministic, so their bands are tight.
func DefaultTrendSpec() TrendSpec {
	return TrendSpec{
		Window: 8,
		Metrics: []TrendMetric{
			{Key: "speedup", HigherIsBetter: true, Pass: 0.35, Drift: 0.55},
			{Key: "ff_speedup", HigherIsBetter: true, Pass: 0.35, Drift: 0.55},
			{Key: "cache_speedup", HigherIsBetter: true, Pass: 0.50, Drift: 0.70},
			{Key: "ns_per_instr", HigherIsBetter: false, Pass: 0.50, Drift: 0.80},
			{Key: "cold_allocs_per_run", HigherIsBetter: false, Pass: 0.05, Drift: 0.10},
			{Key: "ff_allocs_per_run", HigherIsBetter: false, Pass: 0.05, Drift: 0.10},
		},
	}
}

// TrendResult is one gated metric's evaluation.
type TrendResult struct {
	Metric   TrendMetric
	Newest   float64
	Baseline float64
	// Samples counts the baseline records the median was fitted over. 0
	// means no earlier record carries the metric (a fresh trajectory, or a
	// field newer than the history) — vacuously PASS, there is nothing to
	// regress against.
	Samples int
	Verdict Verdict
}

// TrendReport is an evaluated trajectory.
type TrendReport struct {
	Path    string
	Records int
	Results []TrendResult
}

// EvalTrend gates the newest record of a trajectory against the median of
// the up-to-Window records preceding it, per metric.
func EvalTrend(records []Record, spec TrendSpec) *TrendReport {
	rep := &TrendReport{Records: len(records)}
	if len(records) == 0 {
		return rep
	}
	newest := records[len(records)-1]
	history := records[:len(records)-1]
	for _, m := range spec.Metrics {
		res := TrendResult{Metric: m, Baseline: math.NaN()}
		v, ok := newest.Fields[m.Key]
		if !ok {
			res.Newest = math.NaN()
			rep.Results = append(rep.Results, res)
			continue
		}
		res.Newest = v
		var window []float64
		for i := len(history) - 1; i >= 0 && len(window) < spec.Window; i-- {
			if hv, ok := history[i].Fields[m.Key]; ok {
				window = append(window, hv)
			}
		}
		res.Samples = len(window)
		if len(window) == 0 {
			rep.Results = append(rep.Results, res)
			continue
		}
		res.Baseline = stats.Median(window)
		var band Band
		if m.HigherIsBetter {
			band = AtLeast(res.Baseline*(1-m.Pass), res.Baseline*(1-m.Drift))
		} else {
			band = AtMost(res.Baseline*(1+m.Pass), res.Baseline*(1+m.Drift))
		}
		res.Verdict = band.Eval(v)
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// EvalTrendFile loads the trajectory at path and gates it with the default
// spec.
func EvalTrendFile(path string) (*TrendReport, error) {
	records, err := LoadTrajectoryFile(path)
	if err != nil {
		return nil, err
	}
	rep := EvalTrend(records, DefaultTrendSpec())
	rep.Path = path
	return rep, nil
}

// Counts tallies the verdicts.
func (r *TrendReport) Counts() (pass, drift, fail int) {
	for _, res := range r.Results {
		switch res.Verdict {
		case Pass:
			pass++
		case Drift:
			drift++
		default:
			fail++
		}
	}
	return pass, drift, fail
}

// Failed reports whether any metric regressed beyond its drift band.
func (r *TrendReport) Failed() bool {
	_, _, fail := r.Counts()
	return fail > 0
}

// Drifting returns the keys of metrics with a DRIFT verdict, in spec order.
func (r *TrendReport) Drifting() []string {
	var keys []string
	for _, res := range r.Results {
		if res.Verdict == Drift {
			keys = append(keys, res.Metric.Key)
		}
	}
	return keys
}

// trendNum formats a trend value; absent values render as "-".
func trendNum(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// Table renders the trend report, one gated metric per row.
func (r *TrendReport) Table() *stats.Table {
	pass, drift, fail := r.Counts()
	title := fmt.Sprintf("BENCH trend gate (%d records): %d PASS, %d DRIFT, %d FAIL", r.Records, pass, drift, fail)
	if r.Path != "" {
		title = fmt.Sprintf("BENCH trend gate %s (%d records): %d PASS, %d DRIFT, %d FAIL",
			r.Path, r.Records, pass, drift, fail)
	}
	t := stats.NewTable(title, "metric", "direction", "baseline (median)", "window", "newest", "verdict")
	for _, res := range r.Results {
		dir := "higher better"
		if !res.Metric.HigherIsBetter {
			dir = "lower better"
		}
		t.AddRow(res.Metric.Key, dir, trendNum(res.Baseline),
			strconv.Itoa(res.Samples), trendNum(res.Newest), res.Verdict.String())
	}
	return t
}

// WriteText renders the trend table to w.
func (r *TrendReport) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, r.Table().String())
	return err
}

type trendResultJSON struct {
	Key      string   `json:"key"`
	Higher   bool     `json:"higher_is_better"`
	Baseline *float64 `json:"baseline"`
	Samples  int      `json:"samples"`
	Newest   *float64 `json:"newest"`
	Verdict  string   `json:"verdict"`
}

type trendReportJSON struct {
	Path    string            `json:"path,omitempty"`
	Records int               `json:"records"`
	Pass    int               `json:"pass"`
	Drift   int               `json:"drift"`
	Fail    int               `json:"fail"`
	Metrics []trendResultJSON `json:"metrics"`
}

// jsonFinite drops NaN (absent) values to null for JSON encoding.
func jsonFinite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// WriteJSON renders the trend report as deterministic JSON.
func (r *TrendReport) WriteJSON(w io.Writer) error {
	pass, drift, fail := r.Counts()
	out := trendReportJSON{Path: r.Path, Records: r.Records, Pass: pass, Drift: drift, Fail: fail,
		Metrics: make([]trendResultJSON, 0, len(r.Results))}
	for _, res := range r.Results {
		out.Metrics = append(out.Metrics, trendResultJSON{
			Key: res.Metric.Key, Higher: res.Metric.HigherIsBetter,
			Baseline: jsonFinite(res.Baseline), Samples: res.Samples,
			Newest: jsonFinite(res.Newest), Verdict: res.Verdict.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
