package calib

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// legacyBody is the pre-trajectory single-object BENCH format: no "at"
// stamp and no cache fields, exactly the schema the first committed
// campaign record was written in.
const legacyBody = `{
  "benchmark": "gcc",
  "mode": "blackjack",
  "sites": 6,
  "speedup": 3.6,
  "ff_speedup": 11.0,
  "ns_per_instr": 2206.5,
  "cold_allocs_per_run": 8005,
  "ff_allocs_per_run": 853
}`

func writeFile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "traj.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTrajectoryLegacyObject(t *testing.T) {
	records, err := LoadTrajectory([]byte(legacyBody))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("legacy object normalized to %d records, want 1", len(records))
	}
	rec := records[0]
	if rec.Labels["at"] != "" {
		t.Errorf(`missing "at" normalized to %q, want ""`, rec.Labels["at"])
	}
	if rec.Labels["benchmark"] != "gcc" || rec.Labels["mode"] != "blackjack" {
		t.Errorf("labels = %v", rec.Labels)
	}
	if rec.Fields["sites"] != 6 || rec.Fields["speedup"] != 3.6 {
		t.Errorf("fields = %v", rec.Fields)
	}
	if _, ok := rec.Fields["cache_speedup"]; ok {
		t.Error("legacy record grew a cache_speedup field out of nowhere")
	}
}

func TestLoadTrajectoryEmptyAndInvalid(t *testing.T) {
	if records, err := LoadTrajectory(nil); err != nil || len(records) != 0 {
		t.Errorf("empty body = %v, %v; want no records", records, err)
	}
	if _, err := LoadTrajectory([]byte("not json")); err == nil {
		t.Error("garbage body did not error")
	}
	if _, err := LoadTrajectory([]byte(`[{"a": 1}, 42]`)); err == nil {
		t.Error("non-object array element did not error")
	}
}

// A trajectory mixing the legacy schema with newer records trend-fits
// without any schema special-casing: metrics present in both schemas get a
// real baseline, metrics only the newest record carries gate vacuously.
func TestEvalTrendMixedSchemas(t *testing.T) {
	records, err := LoadTrajectory([]byte(`[
		` + legacyBody + `,
		{"at": "2026-08-08T11:49:20Z", "benchmark": "gcc", "mode": "blackjack", "sites": 6,
		 "speedup": 3.55, "ff_speedup": 10.5, "cache_speedup": 233.0,
		 "ns_per_instr": 2150, "cold_allocs_per_run": 8006, "ff_allocs_per_run": 855}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	rep := EvalTrend(records, DefaultTrendSpec())
	byKey := map[string]TrendResult{}
	for _, res := range rep.Results {
		byKey[res.Metric.Key] = res
	}
	if res := byKey["speedup"]; res.Samples != 1 || res.Verdict != Pass || res.Baseline != 3.6 {
		t.Errorf("speedup = %+v, want 1-sample PASS against baseline 3.6", res)
	}
	// cache_speedup exists only in the newest record: no baseline, no gate.
	if res := byKey["cache_speedup"]; res.Samples != 0 || res.Verdict != Pass || !math.IsNaN(res.Baseline) {
		t.Errorf("cache_speedup = %+v, want 0-sample vacuous PASS", res)
	}
	if pass, drift, fail := rep.Counts(); pass != 6 || drift != 0 || fail != 0 {
		t.Errorf("counts = %d/%d/%d, want 6/0/0", pass, drift, fail)
	}
}

// A collapsed metric on the newest record must trip the gate.
func TestEvalTrendRegressionTripsGate(t *testing.T) {
	base := Record{Fields: map[string]float64{"ff_speedup": 10, "ns_per_instr": 2000}}
	records := []Record{base, base, base,
		{Fields: map[string]float64{"ff_speedup": 3, "ns_per_instr": 4500}}}
	rep := EvalTrend(records, DefaultTrendSpec())
	var failed []string
	for _, res := range rep.Results {
		if res.Verdict == Fail {
			failed = append(failed, res.Metric.Key)
		}
	}
	if len(failed) != 2 || failed[0] != "ff_speedup" || failed[1] != "ns_per_instr" {
		t.Errorf("failed metrics = %v, want [ff_speedup ns_per_instr]", failed)
	}
	if !rep.Failed() {
		t.Error("report with regressed metrics did not fail")
	}
	// Just inside the drift band instead: DRIFT, not FAIL (ff_speedup
	// passes down to 6.5, drifts down to 4.5).
	records[3] = Record{Fields: map[string]float64{"ff_speedup": 5, "ns_per_instr": 2000}}
	rep = EvalTrend(records, DefaultTrendSpec())
	if drifting := rep.Drifting(); len(drifting) != 1 || drifting[0] != "ff_speedup" {
		t.Errorf("drifting = %v, want [ff_speedup]", drifting)
	}
}

// Improvement is never gated: a higher-is-better metric soaring above
// baseline stays PASS.
func TestEvalTrendImprovementNeverGated(t *testing.T) {
	records := []Record{
		{Fields: map[string]float64{"speedup": 3, "ns_per_instr": 2000}},
		{Fields: map[string]float64{"speedup": 300, "ns_per_instr": 2}},
	}
	rep := EvalTrend(records, DefaultTrendSpec())
	for _, res := range rep.Results {
		if res.Samples > 0 && res.Verdict != Pass {
			t.Errorf("%s improved but verdict = %v", res.Metric.Key, res.Verdict)
		}
	}
}

func TestEvalTrendWindowLimitsBaseline(t *testing.T) {
	// 12 history records: the first 4 (value 1000) must fall outside the
	// 8-record window; the in-window median is 10.
	var records []Record
	for i := 0; i < 4; i++ {
		records = append(records, Record{Fields: map[string]float64{"speedup": 1000}})
	}
	for i := 0; i < 8; i++ {
		records = append(records, Record{Fields: map[string]float64{"speedup": 10}})
	}
	records = append(records, Record{Fields: map[string]float64{"speedup": 9}})
	rep := EvalTrend(records, TrendSpec{Window: 8, Metrics: []TrendMetric{
		{Key: "speedup", HigherIsBetter: true, Pass: 0.35, Drift: 0.55}}})
	res := rep.Results[0]
	if res.Samples != 8 || res.Baseline != 10 || res.Verdict != Pass {
		t.Errorf("windowed result = %+v, want 8 samples, baseline 10, PASS", res)
	}
}

func TestAppendTrajectoryMigratesLegacyFile(t *testing.T) {
	path := writeFile(t, legacyBody)
	rec := map[string]any{"at": "2026-08-08T12:00:00Z", "benchmark": "gcc",
		"mode": "blackjack", "sites": 6, "speedup": 3.61}
	if err := AppendTrajectory(path, rec); err != nil {
		t.Fatal(err)
	}
	records, err := LoadTrajectoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("after append, file holds %d records, want 2", len(records))
	}
	if records[0].Labels["at"] != "" || records[1].Labels["at"] != "2026-08-08T12:00:00Z" {
		t.Errorf("record stamps wrong: %v / %v", records[0].Labels, records[1].Labels)
	}
	// The file is now a proper array: appending again keeps growing it.
	if err := AppendTrajectory(path, rec); err != nil {
		t.Fatal(err)
	}
	if records, _ = LoadTrajectoryFile(path); len(records) != 3 {
		t.Fatalf("second append left %d records, want 3", len(records))
	}
}

func TestAppendTrajectoryRefusesMismatch(t *testing.T) {
	cases := []struct {
		name  string
		rec   map[string]any
		field string
	}{
		{"benchmark", map[string]any{"benchmark": "gzip", "mode": "blackjack", "sites": 6}, "benchmark"},
		{"mode", map[string]any{"benchmark": "gcc", "mode": "srt", "sites": 6}, "mode"},
		{"sites", map[string]any{"benchmark": "gcc", "mode": "blackjack", "sites": 12}, "sites"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeFile(t, legacyBody)
			err := AppendTrajectory(path, c.rec)
			var mismatch *TrajectoryMismatchError
			if !errors.As(err, &mismatch) {
				t.Fatalf("append = %v, want *TrajectoryMismatchError", err)
			}
			if mismatch.Field != c.field {
				t.Errorf("mismatch names field %q, want %q", mismatch.Field, c.field)
			}
			if mismatch.Path != path {
				t.Errorf("mismatch names path %q, want %q", mismatch.Path, path)
			}
			// The refused record must not have been written.
			if records, _ := LoadTrajectoryFile(path); len(records) != 1 {
				t.Errorf("refused append still grew the file to %d records", len(records))
			}
		})
	}
}

// A record that simply lacks an identity field (older schema) imposes no
// constraint and appends cleanly.
func TestAppendTrajectoryLegacyRecordUnconstrained(t *testing.T) {
	path := writeFile(t, legacyBody)
	if err := AppendTrajectory(path, map[string]any{"speedup": 3.5}); err != nil {
		t.Fatalf("schema-poor record refused: %v", err)
	}
}

// The committed campaign trajectory must load, carry an "at" stamp on
// every record, and pass the default trend gate — the exact check CI runs.
func TestCommittedCampaignTrajectoryPassesGate(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_campaign.json")
	records, err := LoadTrajectoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("campaign trajectory has %d records, want >= 2", len(records))
	}
	for i, rec := range records {
		if rec.Labels["at"] == "" {
			t.Errorf("record %d has no \"at\" stamp (schema v0 leftover)", i)
		}
	}
	rep, err := EvalTrendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("committed trajectory fails the trend gate:\n%s", rep.Table())
	}
}
