package calib

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randBand draws a band from a random constructor, covering every band
// shape the spec uses.
func randBand(rng *rand.Rand) Band {
	center := rng.Float64()*20 - 10
	p := rng.Float64() * 2
	d := p + rng.Float64()*2
	switch rng.Intn(5) {
	case 0:
		return AbsBand(center, p, d)
	case 1:
		return RelBand(center, p/2, d/2)
	case 2:
		lo := center - rng.Float64()*3
		return RangeBand(lo, center, lo-rng.Float64()*2, center+rng.Float64()*2)
	case 3:
		return AtLeast(center, center-rng.Float64()*3)
	default:
		return AtMost(center, center+rng.Float64()*3)
	}
}

// Every constructor must produce PASS ⊆ DRIFT: any value that passes also
// sits inside the drift interval, so widening can only improve verdicts.
func TestBandPassSubsetOfDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := randBand(rng)
		if b.DriftLo > b.PassLo || b.DriftHi < b.PassHi {
			t.Fatalf("band %+v: drift interval narrower than pass interval", b)
		}
		v := rng.Float64()*30 - 15
		if b.Eval(v) == Pass && (v < b.DriftLo || v > b.DriftHi) {
			t.Fatalf("band %+v: value %v passes but is outside the drift interval", b, v)
		}
	}
}

// AbsBand is symmetric about its center: equal distances on either side
// classify identically.
func TestAbsBandSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		center := rng.Float64()*20 - 10
		p := rng.Float64() * 2
		d := p + rng.Float64()*2
		b := AbsBand(center, p, d)
		x := rng.Float64() * 5
		if got, want := b.Eval(center+x), b.Eval(center-x); got != want {
			t.Fatalf("AbsBand(%v, %v, %v): center+%v -> %v but center-%v -> %v",
				center, p, d, x, got, x, want)
		}
	}
}

// Widening a band never worsens a verdict (PASS stays PASS, DRIFT can only
// become PASS or stay): the monotonicity that makes band tuning safe.
func TestBandWideningMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		center := rng.Float64()*20 - 10
		p := rng.Float64() * 2
		d := p + rng.Float64()*2
		k := 1 + rng.Float64()*3 // widening factor >= 1
		v := rng.Float64()*30 - 15
		narrow := AbsBand(center, p, d)
		wide := AbsBand(center, p*k, d*k)
		if wide.Eval(v) > narrow.Eval(v) {
			t.Fatalf("widening worsened the verdict: narrow %v -> %v, wide(x%v) -> %v",
				narrow, narrow.Eval(v), k, wide.Eval(v))
		}
		relNarrow := RelBand(center, p/4, d/4)
		relWide := RelBand(center, p/4*k, d/4*k)
		if relWide.Eval(v) > relNarrow.Eval(v) {
			t.Fatalf("RelBand widening worsened the verdict at center %v, v %v", center, v)
		}
	}
}

// A drift interval specified narrower than the pass interval is clamped,
// never inverted.
func TestRangeBandNormalization(t *testing.T) {
	b := RangeBand(1, 3, 1.5, 2.5)
	if b.DriftLo != 1 || b.DriftHi != 3 {
		t.Fatalf("RangeBand did not clamp drift to contain pass: %+v", b)
	}
	if got := b.Eval(2); got != Pass {
		t.Fatalf("midpoint verdict = %v, want PASS", got)
	}
}

func TestBandEvalEdges(t *testing.T) {
	b := AbsBand(10, 1, 2)
	cases := []struct {
		v    float64
		want Verdict
	}{
		{10, Pass}, {9, Pass}, {11, Pass}, // pass bounds inclusive
		{8.5, Drift}, {11.5, Drift},
		{8, Drift}, {12, Drift}, // drift bounds inclusive
		{7.9, Fail}, {12.1, Fail},
		{math.NaN(), Fail},
	}
	for _, c := range cases {
		if got := b.Eval(c.v); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	oneSided := AtLeast(5, 3)
	if got := oneSided.Eval(math.Inf(1)); got != Pass {
		t.Errorf("AtLeast.Eval(+Inf) = %v, want PASS", got)
	}
}

func TestEvaluateMissingMetricFails(t *testing.T) {
	spec := Spec{Name: "t", Claims: []Claim{
		{ID: "a", Metric: "present", Band: AbsBand(1, 0.5, 1)},
		{ID: "b", Metric: "absent", Band: AbsBand(1, 0.5, 1)},
	}}
	rep := spec.Evaluate(Measurements{"present": 1.2})
	if rep.Results[0].Verdict != Pass {
		t.Errorf("present metric verdict = %v, want PASS", rep.Results[0].Verdict)
	}
	if rep.Results[1].Verdict != Fail || rep.Results[1].Measured {
		t.Errorf("absent metric = %+v, want unmeasured FAIL", rep.Results[1])
	}
	if missing := spec.Missing(Measurements{"present": 1.2}); len(missing) != 1 || missing[0] != "absent" {
		t.Errorf("Missing = %v, want [absent]", missing)
	}
	if !rep.Failed() {
		t.Error("report with an unmeasured claim did not fail")
	}
}

func TestResultDelta(t *testing.T) {
	b := AbsBand(10, 1, 3)
	c := Claim{Band: b}
	if d := (Result{Claim: c, Observed: 10.5, Measured: true}).Delta(); d != 0 {
		t.Errorf("in-band delta = %v, want 0", d)
	}
	if d := (Result{Claim: c, Observed: 12, Measured: true}).Delta(); d != 1 {
		t.Errorf("above-band delta = %v, want 1", d)
	}
	if d := (Result{Claim: c, Observed: 8, Measured: true}).Delta(); d != -1 {
		t.Errorf("below-band delta = %v, want -1", d)
	}
	if d := (Result{Claim: c}).Delta(); !math.IsNaN(d) {
		t.Errorf("unmeasured delta = %v, want NaN", d)
	}
}

// The paper spec itself: enough claims, unique IDs, and all four figure
// categories of the acceptance criteria (coverage, slowdown, issue-cycle,
// occupancy) represented.
func TestPaperSpecShape(t *testing.T) {
	spec := PaperSpec()
	if len(spec.Claims) < 12 {
		t.Fatalf("PaperSpec has %d claims, want >= 12", len(spec.Claims))
	}
	seen := map[string]bool{}
	categories := map[string]bool{}
	for _, c := range spec.Claims {
		if c.ID == "" || c.Metric == "" || c.Figure == "" {
			t.Errorf("claim %+v missing ID/Metric/Figure", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %q", c.ID)
		}
		seen[c.ID] = true
		switch {
		case strings.HasPrefix(c.ID, "fig4"):
			categories["coverage"] = true
		case strings.HasPrefix(c.ID, "fig7") || strings.HasPrefix(c.ID, "extb"):
			categories["slowdown"] = true
		case strings.HasPrefix(c.ID, "fig5") || strings.HasPrefix(c.ID, "fig6"):
			categories["issue-cycle"] = true
		case strings.HasPrefix(c.ID, "occ"):
			categories["occupancy"] = true
		}
	}
	for _, cat := range []string{"coverage", "slowdown", "issue-cycle", "occupancy"} {
		if !categories[cat] {
			t.Errorf("PaperSpec covers no %s claims", cat)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Pass.String() != "PASS" || Drift.String() != "DRIFT" || Fail.String() != "FAIL" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() != "verdict(9)" {
		t.Errorf("unknown verdict renders %q", Verdict(9).String())
	}
}
