// Package detect defines the error-detection events raised by the redundancy
// checkers (SRT store compare, LVQ/BOQ validation, BlackJack's dependence and
// program-order checks) and a sink that collects them.
//
// In a fault-free run, any event is a simulator bug: integration tests assert
// an empty sink. In a fault-injection run the first event marks successful
// detection of the injected hard error.
package detect

import "fmt"

// Checker identifies which redundancy mechanism raised an event.
type Checker uint8

// The checkers, in the order the paper introduces them.
const (
	// CheckStoreAddr fires when leading and trailing stores disagree on
	// address (SRT's output-comparison check, Section 3).
	CheckStoreAddr Checker = iota
	// CheckStoreValue fires when leading and trailing stores disagree on
	// data.
	CheckStoreValue
	// CheckStorePairing fires when store streams lose one-to-one pairing
	// (e.g. a trailing store commits with an empty store buffer): a
	// program-order error became visible at the memory interface.
	CheckStorePairing
	// CheckLVQAddr fires when a trailing load's computed address disagrees
	// with the Load Value Queue entry captured from the leading thread.
	CheckLVQAddr
	// CheckBOQOutcome fires when trailing branch execution disagrees with
	// the leading outcome it consumed as a prediction (SRT, Section 3;
	// BlackJack inherits the idea through its program-order check).
	CheckBOQOutcome
	// CheckDependence fires when BlackJack's second, program-order rename
	// table disagrees with the physical sources the trailing thread actually
	// used (Section 4.4): the dependence information borrowed from the
	// leading thread was corrupt, or the trailing rename path failed.
	CheckDependence
	// CheckPCOrder fires when the program counters of committed trailing
	// instructions do not follow sequential/branch-target order
	// (Section 4.4): instructions were dropped, added or reordered.
	CheckPCOrder

	NumCheckers
)

var checkerNames = [NumCheckers]string{
	CheckStoreAddr:    "store-addr",
	CheckStoreValue:   "store-value",
	CheckStorePairing: "store-pairing",
	CheckLVQAddr:      "lvq-addr",
	CheckBOQOutcome:   "boq-outcome",
	CheckDependence:   "dependence",
	CheckPCOrder:      "pc-order",
}

// String returns the checker's name.
func (c Checker) String() string {
	if int(c) < len(checkerNames) {
		return checkerNames[c]
	}
	return fmt.Sprintf("checker(%d)", uint8(c))
}

// Event is one detection.
type Event struct {
	Cycle   int64
	Checker Checker
	PC      int
	Detail  string
}

// String formats the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("cycle %d: %s at pc %d: %s", e.Cycle, e.Checker, e.PC, e.Detail)
}

// Sink collects events. The zero value is ready to use.
type Sink struct {
	events []Event
	// Limit caps stored events (0 means DefaultLimit); counting continues
	// past the cap.
	Limit int
	// Observer, when set, sees every reported event as it happens — the
	// observability layer's detection hook. It is not copied by Clone and
	// survives Reset: like trace state, it belongs to the harness driving
	// the run, not to the machine state.
	Observer func(Event)
	total    uint64
}

// DefaultLimit is the default maximum number of stored events.
const DefaultLimit = 64

// Report records an event.
func (s *Sink) Report(e Event) {
	s.total++
	limit := s.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	if len(s.events) < limit {
		s.events = append(s.events, e)
	}
	if s.Observer != nil {
		s.Observer(e)
	}
}

// Reportf formats and records an event.
func (s *Sink) Reportf(cycle int64, c Checker, pc int, format string, args ...any) {
	s.Report(Event{Cycle: cycle, Checker: c, PC: pc, Detail: fmt.Sprintf(format, args...)})
}

// Total returns the number of events reported (including uncached ones).
func (s *Sink) Total() uint64 { return s.total }

// Events returns the stored events (up to Limit).
func (s *Sink) Events() []Event { return s.events }

// First returns the earliest stored event; ok is false when none occurred.
func (s *Sink) First() (Event, bool) {
	if len(s.events) == 0 {
		return Event{}, false
	}
	return s.events[0], true
}

// Empty reports whether no events were recorded.
func (s *Sink) Empty() bool { return s.total == 0 }

// Reset clears the sink for reuse, keeping Limit and the stored-event backing
// array. Injection campaigns reset one sink per worker between runs instead
// of allocating one per run.
func (s *Sink) Reset() {
	s.events = s.events[:0]
	s.total = 0
}

// Clone returns an independent copy of the sink.
func (s *Sink) Clone() *Sink {
	c := &Sink{Limit: s.Limit, total: s.total}
	if len(s.events) > 0 {
		c.events = append([]Event(nil), s.events...)
	}
	return c
}
