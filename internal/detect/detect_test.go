package detect

import (
	"strings"
	"testing"
)

func TestSinkCollectsEvents(t *testing.T) {
	var s Sink
	if !s.Empty() {
		t.Error("fresh sink not empty")
	}
	s.Reportf(10, CheckStoreValue, 5, "mismatch %d", 7)
	if s.Empty() || s.Total() != 1 {
		t.Fatalf("total = %d, want 1", s.Total())
	}
	e, ok := s.First()
	if !ok {
		t.Fatal("First() not ok")
	}
	if e.Cycle != 10 || e.Checker != CheckStoreValue || e.PC != 5 {
		t.Errorf("event = %+v", e)
	}
	if !strings.Contains(e.String(), "store-value") {
		t.Errorf("String() = %q", e.String())
	}
	if !strings.Contains(e.Detail, "mismatch 7") {
		t.Errorf("Detail = %q", e.Detail)
	}
}

func TestSinkLimit(t *testing.T) {
	s := Sink{Limit: 2}
	for i := 0; i < 5; i++ {
		s.Report(Event{Cycle: int64(i)})
	}
	if s.Total() != 5 {
		t.Errorf("total = %d, want 5", s.Total())
	}
	if len(s.Events()) != 2 {
		t.Errorf("stored = %d, want 2", len(s.Events()))
	}
}

func TestSinkDefaultLimit(t *testing.T) {
	var s Sink
	for i := 0; i < DefaultLimit+10; i++ {
		s.Report(Event{})
	}
	if len(s.Events()) != DefaultLimit {
		t.Errorf("stored = %d, want %d", len(s.Events()), DefaultLimit)
	}
}

func TestCheckerNames(t *testing.T) {
	for c := Checker(0); c < NumCheckers; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "checker(") {
			t.Errorf("checker %d has no name", c)
		}
	}
	if s := Checker(200).String(); !strings.HasPrefix(s, "checker(") {
		t.Errorf("unknown checker String() = %q", s)
	}
}

func TestFirstOnEmptySink(t *testing.T) {
	var s Sink
	if _, ok := s.First(); ok {
		t.Error("First() on empty sink reported ok")
	}
}
