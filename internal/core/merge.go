package core

import (
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// CanMerge reports whether two adjacent committed packets may be combined
// into one trailing fetch packet. The paper's simple greedy shuffle treats
// every pair of leading packets as potentially dependent; Section 6.2 points
// out that the dependence information needed to do better is already in the
// DTQ. Merging is safe when no register name flows between the packets in
// either direction:
//
//   - no instruction of b sources a destination of a (true dependence:
//     co-issuing them would violate it);
//   - no destination of b collides with a source or destination of a (the
//     trailing double rename binds leading physical names in slot order
//     after a merge, so any overlap could bind or look up names in the
//     wrong order).
//
// With disjoint register sets, slot order within the merged packet is
// immaterial — exactly the property safe-shuffle needs.
func CanMerge(a, b []*Entry) bool {
	aDefs := make(map[rename.PhysReg]struct{}, len(a))
	aUses := make(map[rename.PhysReg]struct{}, 2*len(a))
	for _, e := range a {
		if e.PDest != rename.None {
			aDefs[e.PDest] = struct{}{}
		}
		for _, p := range [2]rename.PhysReg{e.PSrc1, e.PSrc2} {
			if p != rename.None {
				aUses[p] = struct{}{}
			}
		}
	}
	for _, e := range b {
		for _, p := range [2]rename.PhysReg{e.PSrc1, e.PSrc2} {
			if p == rename.None {
				continue
			}
			if _, dep := aDefs[p]; dep {
				return false
			}
		}
		if e.PDest == rename.None {
			continue
		}
		if _, clash := aDefs[e.PDest]; clash {
			return false
		}
		if _, clash := aUses[e.PDest]; clash {
			return false
		}
	}
	return true
}

// MergeBudget reports whether the combined packet still fits the machine:
// total instructions within the fetch width and no unit class oversubscribed
// (a merged packet that cannot co-issue whole would split at issue and lose
// the merge's entire benefit).
func MergeBudget(a, b []*Entry, width int, units [isa.NumUnitClasses]int) bool {
	if len(a)+len(b) > width {
		return false
	}
	var perClass [isa.NumUnitClasses]int
	for _, e := range a {
		perClass[e.Class]++
	}
	for _, e := range b {
		perClass[e.Class]++
	}
	for cls, n := range perClass {
		if n > units[cls] {
			return false
		}
	}
	return true
}
