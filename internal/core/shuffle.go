package core

import "blackjack/internal/isa"

// Slot is one lane of a shuffled trailing packet. Exactly one of the three
// states holds: an instruction (Entry != nil), a typed NOP (Entry == nil,
// IsNOP), or a hole (Entry == nil, !IsNOP — the fetch lane stays idle).
type Slot struct {
	Entry    *Entry
	IsNOP    bool
	NopClass isa.UnitClass
}

// Empty reports whether the slot carries neither an instruction nor a NOP.
func (s Slot) Empty() bool { return s.Entry == nil && !s.IsNOP }

// Packet is one shuffled trailing fetch packet. Slot index i maps directly to
// frontend way i when the packet is fetched; the planned backend way of the
// instruction in slot i is the number of same-class slots (instructions or
// typed NOPs) at lower indices.
type Packet struct {
	ID    uint64
	Slots []Slot
}

// Insts returns the number of real instructions in the packet.
func (p Packet) Insts() int {
	n := 0
	for _, s := range p.Slots {
		if s.Entry != nil {
			n++
		}
	}
	return n
}

// NOPs returns the number of typed NOPs in the packet.
func (p Packet) NOPs() int {
	n := 0
	for _, s := range p.Slots {
		if s.Entry == nil && s.IsNOP {
			n++
		}
	}
	return n
}

// PlannedBackWay returns the backend way slot i's content will receive if the
// packet co-issues whole and alone under oldest-first, lowest-free-index
// mapping: the count of same-class content at lower slots.
func (p Packet) PlannedBackWay(i int) int {
	class, ok := p.slotClass(i)
	if !ok {
		return -1
	}
	n := 0
	for j := 0; j < i; j++ {
		if c, ok := p.slotClass(j); ok && c == class {
			n++
		}
	}
	return n
}

func (p Packet) slotClass(i int) (isa.UnitClass, bool) {
	s := p.Slots[i]
	switch {
	case s.Entry != nil:
		return s.Entry.Class, true
	case s.IsNOP:
		return s.NopClass, true
	default:
		return 0, false
	}
}

// Shuffler runs safe-shuffle over committed DTQ packets.
type Shuffler struct {
	// Width is the fetch width (number of slots per output packet).
	Width int
	// Units is the number of backend ways per unit class; classes with fewer
	// than two ways cannot be made spatially diverse (the paper doubles the
	// integer multipliers and dividers for exactly this reason), so for them
	// only frontend diversity is enforced.
	Units [isa.NumUnitClasses]int
	// Disabled turns safe-shuffle off (the BlackJack-NS configuration of
	// Section 6.2): packets pass through unshuffled, with no NOPs and no
	// splitting.
	Disabled bool

	nextID uint64
	// slotFree recycles consumed packets' slot arrays (see RecycleSlots);
	// outScratch backs the packet slice Shuffle returns.
	slotFree   [][]Slot
	outScratch []Packet
	// statistics
	inputPackets  uint64
	outputPackets uint64
	splits        uint64
	nops          uint64
}

// Clone returns an independent copy of the shuffler (nil-safe): configuration,
// packet-ID counter and statistics. The slot-array free list and output
// scratch are transient per-call state and start empty in the copy.
func (s *Shuffler) Clone() *Shuffler {
	if s == nil {
		return nil
	}
	return &Shuffler{
		Width:         s.Width,
		Units:         s.Units,
		Disabled:      s.Disabled,
		nextID:        s.nextID,
		inputPackets:  s.inputPackets,
		outputPackets: s.outputPackets,
		splits:        s.splits,
		nops:          s.nops,
	}
}

// newSlots returns a zeroed Width-sized slot array, reusing a recycled one
// when available.
func (s *Shuffler) newSlots() []Slot {
	n := len(s.slotFree)
	if n == 0 {
		return make([]Slot, s.Width)
	}
	sl := s.slotFree[n-1]
	s.slotFree = s.slotFree[:n-1]
	for i := range sl {
		sl[i] = Slot{}
	}
	return sl
}

// RecycleSlots returns a consumed packet's slot array for reuse. Callers
// guarantee the packet's contents have been copied out (trailing fetch builds
// value-typed fetch items from the slots).
func (s *Shuffler) RecycleSlots(slots []Slot) {
	if len(slots) == s.Width {
		s.slotFree = append(s.slotFree, slots)
	}
}

// Stats returns (input packets, output packets, packet splits, NOPs
// inserted).
func (s *Shuffler) Stats() (in, out, splits, nops uint64) {
	return s.inputPackets, s.outputPackets, s.splits, s.nops
}

// Shuffle maps one committed input packet to one or more output packets using
// the paper's greedy algorithm (Section 4.2.2):
//
//   - Each instruction, in input order, grabs the first usable output slot. A
//     slot is usable when the slot number differs from the instruction's
//     leading frontend way, the implied backend way differs from the leading
//     backend way, and the implied backend way actually exists.
//   - Passing over an empty slot it cannot use (frontend or backend
//     conflict), the instruction leaves a NOP marked with its own class,
//     freezing the backend-way arithmetic below already-placed instructions
//     (see place).
//   - An instruction may claim a slot holding a NOP of its own class.
//   - When no slot fits, the output packet is closed and the remaining
//     instructions start a new one (a packet split, which costs performance
//     but preserves coverage).
//
// The returned slice shares a scratch backing array and is only valid until
// the next Shuffle call; callers copy the packets out (the machine pushes
// them into its packet queue in the same cycle).
func (s *Shuffler) Shuffle(in []*Entry) []Packet {
	if len(in) == 0 {
		return nil
	}
	s.inputPackets++
	if s.Disabled {
		out := s.outScratch[:0]
		p := Packet{ID: s.nextID, Slots: s.newSlots()}
		s.nextID++
		i := 0
		for _, e := range in {
			if i >= s.Width {
				// Cannot happen when issue width equals fetch width; guard
				// against misconfiguration by splitting.
				out = append(out, p)
				s.outputPackets++
				p = Packet{ID: s.nextID, Slots: s.newSlots()}
				s.nextID++
				i = 0
			}
			p.Slots[i] = Slot{Entry: e}
			i++
		}
		out = append(out, p)
		s.outputPackets++
		s.outScratch = out
		return out
	}

	out := s.outScratch[:0]
	cur := Packet{ID: s.nextID, Slots: s.newSlots()}
	s.nextID++
	for _, e := range in {
		if !s.place(&cur, e) {
			// Split: close the current packet and start a new one. The fresh
			// packet always has room (see the termination argument in
			// DESIGN.md).
			out = append(out, cur)
			s.outputPackets++
			s.splits++
			cur = Packet{ID: s.nextID, Slots: s.newSlots()}
			s.nextID++
			if !s.place(&cur, e) {
				// Unreachable for width >= 3; tolerate by dropping diversity
				// and placing at the first free slot.
				for i := range cur.Slots {
					if cur.Slots[i].Empty() {
						cur.Slots[i] = Slot{Entry: e}
						break
					}
				}
			}
		}
	}
	out = append(out, cur)
	s.outputPackets++
	s.outScratch = out
	return out
}

// place tries to allocate e into p per the greedy rules, returning success.
//
// Every empty slot the instruction passes over receives a NOP marked with the
// instruction's own class (the paper's rule). This is load-bearing: the NOP
// freezes the same-class count below every already-placed instruction, so
// later placements can never retroactively shift an earlier instruction's
// planned backend way — only a same-class instruction may replace a NOP,
// which keeps the counts identical. The cost is that a packet can end up
// planning more same-class ops (instructions plus NOPs) than there are ways,
// in which case the hardware splits it at issue; that shows up as (rare)
// trailing-trailing interference, not as a correctness problem.
func (s *Shuffler) place(p *Packet, e *Entry) bool {
	diversifiable := s.Units[e.Class] >= 2
	for i := 0; i < len(p.Slots); i++ {
		slot := p.Slots[i]
		if slot.Entry != nil {
			continue
		}
		bw := s.impliedBackWay(p, i, e.Class)
		feOK := i != e.FrontWay
		beOK := !diversifiable || bw != e.BackWay
		if slot.IsNOP {
			if slot.NopClass == e.Class && feOK && beOK {
				p.Slots[i] = Slot{Entry: e}
				s.nops-- // replaced
				return true
			}
			continue
		}
		// Empty slot.
		if feOK && beOK {
			p.Slots[i] = Slot{Entry: e}
			return true
		}
		// Pass over: mark the slot with a NOP. A NOP (of any class) freezes
		// the backend-way arithmetic; the class choice only matters for what
		// it occupies at issue. A backend conflict needs a NOP of the
		// instruction's own class to shift the count past the leading way;
		// a frontend conflict does not, so the NOP takes the class with the
		// most spare ways to avoid oversubscribing a narrow class (which
		// would force the packet to split at issue).
		cls := e.Class
		if !feOK {
			cls = s.sparestClass(p)
		}
		p.Slots[i] = Slot{IsNOP: true, NopClass: cls}
		s.nops++
	}
	return false
}

// sparestClass returns the unit class with the most ways left unclaimed by
// the packet's current content.
func (s *Shuffler) sparestClass(p *Packet) isa.UnitClass {
	best := isa.UnitIntALU
	bestSpare := -1 << 30
	for cls := isa.UnitClass(0); cls < isa.NumUnitClasses; cls++ {
		count := 0
		for j := range p.Slots {
			if c, ok := p.slotClass(j); ok && c == cls {
				count++
			}
		}
		if spare := s.Units[cls] - count; spare > bestSpare {
			best, bestSpare = cls, spare
		}
	}
	return best
}

// impliedBackWay counts same-class content below slot i.
func (s *Shuffler) impliedBackWay(p *Packet, i int, class isa.UnitClass) int {
	n := 0
	for j := 0; j < i; j++ {
		if c, ok := p.slotClass(j); ok && c == class {
			n++
		}
	}
	return n
}
