package core

import (
	"testing"

	"blackjack/internal/detect"
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

func TestDoubleRenameSeedLookupBind(t *testing.T) {
	d := NewDoubleRename(16)
	if _, ok := d.Lookup(3); ok {
		t.Error("unseeded lookup succeeded")
	}
	d.Seed(3, 10)
	if p, ok := d.Lookup(3); !ok || p != 10 {
		t.Errorf("Lookup(3) = (%d,%v), want (10,true)", p, ok)
	}
	d.Bind(3, 11)
	if p, _ := d.Lookup(3); p != 11 {
		t.Errorf("after Bind, Lookup(3) = %d, want 11", p)
	}
}

// A correct, simple trailing commit sequence must pass all checks and free
// the right registers.
func TestOrderCheckerCleanSequence(t *testing.T) {
	c := NewOrderChecker()
	var sink detect.Sink
	// Initial program-order mapping: r1->100, r2->101.
	c.Seed(isa.IntReg(1), 100)
	c.Seed(isa.IntReg(2), 101)

	// pc 0: add r1, r1, r2 (trailing psrcs 100,101; pdest 102)
	free, ok := c.Commit(&sink, 1, CommitInfo{
		PC:      0,
		RawInst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2},
		PSrc1:   100, PSrc2: 101, PDest: 102,
	})
	if !ok {
		t.Fatalf("clean commit failed: %v", sink.Events())
	}
	if free != 100 {
		t.Errorf("freed %d, want 100 (previous mapping of r1)", free)
	}
	// pc 1: add r2, r1, r2 — r1 now maps to 102.
	free, ok = c.Commit(&sink, 2, CommitInfo{
		PC:      1,
		RawInst: isa.Inst{Op: isa.OpAdd, Rd: 2, Rs1: 1, Rs2: 2},
		PSrc1:   102, PSrc2: 101, PDest: 103,
	})
	if !ok {
		t.Fatalf("second commit failed: %v", sink.Events())
	}
	if free != 101 {
		t.Errorf("freed %d, want 101", free)
	}
	if !sink.Empty() {
		t.Errorf("events: %v", sink.Events())
	}
	dep, pc := c.Stats()
	if dep != 4 || pc != 2 {
		t.Errorf("stats = (%d,%d), want (4,2)", dep, pc)
	}
}

func TestOrderCheckerDependenceMismatch(t *testing.T) {
	c := NewOrderChecker()
	var sink detect.Sink
	c.Seed(isa.IntReg(1), 100)
	_, ok := c.Commit(&sink, 1, CommitInfo{
		PC:      0,
		RawInst: isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 1, Imm: 5},
		PSrc1:   999, // executed with the wrong physical source
		PDest:   103,
	})
	if ok {
		t.Fatal("dependence mismatch accepted")
	}
	e, _ := sink.First()
	if e.Checker != detect.CheckDependence {
		t.Errorf("checker = %v, want dependence", e.Checker)
	}
}

func TestOrderCheckerPCSequence(t *testing.T) {
	c := NewOrderChecker()
	var sink detect.Sink
	nop := isa.Inst{Op: isa.OpNop}
	// pc 0, 1 sequential: fine.
	c.Commit(&sink, 1, CommitInfo{PC: 0, RawInst: nop})
	if _, ok := c.Commit(&sink, 2, CommitInfo{PC: 1, RawInst: nop}); !ok {
		t.Fatal("sequential PCs rejected")
	}
	// Taken branch at pc 1... already committed; next: branch at pc 2
	// targeting 7.
	br := isa.Inst{Op: isa.OpJmp, Imm: 7}
	if _, ok := c.Commit(&sink, 3, CommitInfo{PC: 2, RawInst: br, Taken: true, Target: 7}); !ok {
		t.Fatal("branch commit rejected")
	}
	// Correct target.
	if _, ok := c.Commit(&sink, 4, CommitInfo{PC: 7, RawInst: nop}); !ok {
		t.Fatal("branch target PC rejected")
	}
	// Now a skipped instruction: pc jumps 7 -> 9.
	if _, ok := c.Commit(&sink, 5, CommitInfo{PC: 9, RawInst: nop}); ok {
		t.Fatal("dropped instruction not detected")
	}
	e := sink.Events()[len(sink.Events())-1]
	if e.Checker != detect.CheckPCOrder {
		t.Errorf("checker = %v, want pc-order", e.Checker)
	}
}

func TestOrderCheckerNotTakenBranchFallsThrough(t *testing.T) {
	c := NewOrderChecker()
	var sink detect.Sink
	br := isa.Inst{Op: isa.OpBeq, Rs1: 0, Rs2: 0, Imm: 9}
	c.Seed(isa.ZeroReg, 0)
	c.Commit(&sink, 1, CommitInfo{PC: 3, RawInst: br, PSrc1: 0, PSrc2: 0, Taken: false, Target: 9})
	if _, ok := c.Commit(&sink, 2, CommitInfo{PC: 4, RawInst: isa.Inst{Op: isa.OpNop}}); !ok {
		t.Fatalf("fall-through rejected: %v", sink.Events())
	}
	// A wrong fall-through after a taken branch must be caught.
	c2 := NewOrderChecker()
	var sink2 detect.Sink
	c2.Seed(isa.ZeroReg, 0)
	c2.Commit(&sink2, 1, CommitInfo{PC: 3, RawInst: br, PSrc1: 0, PSrc2: 0, Taken: true, Target: 9})
	if _, ok := c2.Commit(&sink2, 2, CommitInfo{PC: 4, RawInst: isa.Inst{Op: isa.OpNop}}); ok {
		t.Fatal("taken branch followed by fall-through PC not detected")
	}
}

func TestOrderCheckerFreesNoneWithoutDest(t *testing.T) {
	c := NewOrderChecker()
	var sink detect.Sink
	free, _ := c.Commit(&sink, 1, CommitInfo{PC: 0, RawInst: isa.Inst{Op: isa.OpNop}})
	if free != rename.None {
		t.Errorf("freed %d for a NOP, want None", free)
	}
}

// Simulate the full BlackJack rename pipeline on an issue-order stream with
// overlapping live ranges of one logical register, and verify the checker
// accepts it. This is the core correctness property of Section 4.3.1/4.4.
func TestDoubleRenamePlusCheckerOnOverlappingLiveRanges(t *testing.T) {
	// Program (program order), all writing/reading logical r1:
	//   pc0: addi r1, r0, 1     (leading: P10)
	//   pc1: addi r2, r1, 1     (leading: P11, reads P10)
	//   pc2: addi r1, r0, 2     (leading: P12)   <- new live range of r1
	//   pc3: addi r3, r1, 1     (leading: P13, reads P12)
	// Leading issue order co-issues pc0 and pc2 (independent), then pc1, pc3:
	// issue order = pc0, pc2, pc1, pc3 — live ranges of r1 overlap.
	d := NewDoubleRename(32)
	c := NewOrderChecker()
	var sink detect.Sink

	// Initial state: r0->T0 for both tables (leading r0 is P0).
	d.Seed(0, 0)
	c.Seed(isa.ZeroReg, 0)
	c.Seed(isa.IntReg(1), 1) // arch r1 initially T1 (leading P1)
	d.Seed(1, 1)
	c.Seed(isa.IntReg(2), 2)
	d.Seed(2, 2)
	c.Seed(isa.IntReg(3), 3)
	d.Seed(3, 3)

	type tuop struct {
		pc           int
		raw          isa.Inst
		leadSrc      rename.PhysReg
		leadDest     rename.PhysReg
		trailP       rename.PhysReg // allocated trailing dest
		psrc1, pdest rename.PhysReg // filled by "rename"
	}
	uops := map[int]*tuop{
		0: {pc: 0, raw: isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 0, Imm: 1}, leadSrc: 0, leadDest: 10, trailP: 20},
		1: {pc: 1, raw: isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 1, Imm: 1}, leadSrc: 10, leadDest: 11, trailP: 21},
		2: {pc: 2, raw: isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 0, Imm: 2}, leadSrc: 0, leadDest: 12, trailP: 22},
		3: {pc: 3, raw: isa.Inst{Op: isa.OpAddi, Rd: 3, Rs1: 1, Imm: 1}, leadSrc: 12, leadDest: 13, trailP: 23},
	}
	// Trailing rename in leading issue order: pc0, pc2, pc1, pc3.
	for _, pc := range []int{0, 2, 1, 3} {
		u := uops[pc]
		p, ok := d.Lookup(u.leadSrc)
		if !ok {
			t.Fatalf("pc %d: no double-rename mapping for leading P%d", pc, u.leadSrc)
		}
		u.psrc1 = p
		u.pdest = u.trailP
		d.Bind(u.leadDest, u.trailP)
	}
	// Trailing commit in program order: pc0..pc3.
	for _, pc := range []int{0, 1, 2, 3} {
		u := uops[pc]
		if _, ok := c.Commit(&sink, int64(pc), CommitInfo{
			PC: u.pc, RawInst: u.raw, PSrc1: u.psrc1, PDest: u.pdest,
		}); !ok {
			t.Fatalf("pc %d failed checks: %v", pc, sink.Events())
		}
	}
	// pc1 must have read pc0's value (T20), not pc2's (T22).
	if uops[1].psrc1 != 20 {
		t.Errorf("pc1 read T%d, want T20", uops[1].psrc1)
	}
	if uops[3].psrc1 != 22 {
		t.Errorf("pc3 read T%d, want T22", uops[3].psrc1)
	}
}
