package core

import (
	"math/rand"
	"testing"

	"blackjack/internal/isa"
)

// table1Units returns the backend way counts of the paper's machine.
func table1Units() [isa.NumUnitClasses]int {
	var u [isa.NumUnitClasses]int
	u[isa.UnitIntALU] = 4
	u[isa.UnitIntMul] = 2
	u[isa.UnitIntDiv] = 2
	u[isa.UnitFPALU] = 2
	u[isa.UnitFPMul] = 2
	u[isa.UnitMem] = 2
	return u
}

func newShuffler() *Shuffler {
	return &Shuffler{Width: 4, Units: table1Units()}
}

// checkDiverse asserts that every instruction in the output packets is
// spatially diverse from its leading copy (the safe-shuffle guarantee, given
// whole-and-alone co-issue).
func checkDiverse(t *testing.T, out []Packet) {
	t.Helper()
	for pi, p := range out {
		for i, slot := range p.Slots {
			if slot.Entry == nil {
				continue
			}
			e := slot.Entry
			if i == e.FrontWay {
				t.Errorf("packet %d slot %d: frontend way conflict (leading way %d)", pi, i, e.FrontWay)
			}
			bw := p.PlannedBackWay(i)
			if table1Units()[e.Class] >= 2 && bw == e.BackWay {
				t.Errorf("packet %d slot %d (%v): backend way conflict (both %d)", pi, i, e.Class, bw)
			}
		}
	}
}

// collectEntries returns all instructions in output packets, in order.
func collectEntries(out []Packet) []*Entry {
	var es []*Entry
	for _, p := range out {
		for _, s := range p.Slots {
			if s.Entry != nil {
				es = append(es, s.Entry)
			}
		}
	}
	return es
}

func TestShuffleSwapsTwoLikeInstructions(t *testing.T) {
	// Figure 2 of the paper: two intALU instructions at front/back ways
	// (0,0) and (1,1) swap resource allocations.
	s := newShuffler()
	in := []*Entry{
		{Seq: 1, FrontWay: 0, BackWay: 0, Class: isa.UnitIntALU},
		{Seq: 2, FrontWay: 1, BackWay: 1, Class: isa.UnitIntALU},
	}
	out := s.Shuffle(in)
	if len(out) != 1 {
		t.Fatalf("got %d packets, want 1 (no split)", len(out))
	}
	checkDiverse(t, out)
	if got := len(collectEntries(out)); got != 2 {
		t.Fatalf("output has %d instructions, want 2", got)
	}
}

func TestShuffleSingletonAllCases(t *testing.T) {
	// Every (frontWay, backWay, class) combination of a singleton packet
	// must shuffle to a diverse placement without splitting.
	for class := isa.UnitClass(0); class < isa.NumUnitClasses; class++ {
		units := table1Units()[class]
		for fw := 0; fw < 4; fw++ {
			for bw := 0; bw < units; bw++ {
				s := newShuffler()
				out := s.Shuffle([]*Entry{{Seq: 1, FrontWay: fw, BackWay: bw, Class: class}})
				if len(out) != 1 {
					t.Fatalf("class %v fw %d bw %d: %d packets", class, fw, bw, len(out))
				}
				checkDiverse(t, out)
				if len(collectEntries(out)) != 1 {
					t.Fatalf("class %v fw %d bw %d: instruction lost", class, fw, bw)
				}
			}
		}
	}
}

func TestShufflePreservesAllInstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	classes := []isa.UnitClass{
		isa.UnitIntALU, isa.UnitIntMul, isa.UnitIntDiv,
		isa.UnitFPALU, isa.UnitFPMul, isa.UnitMem,
	}
	units := table1Units()
	for trial := 0; trial < 2000; trial++ {
		// Build a plausible leading packet: ways consistent with
		// oldest-first lowest-free-index mapping (distinct backend ways per
		// class, distinct frontend ways).
		n := 1 + rng.Intn(4)
		var in []*Entry
		classUsed := map[isa.UnitClass]int{}
		fws := rng.Perm(4)
		for i := 0; i < n; i++ {
			c := classes[rng.Intn(len(classes))]
			if classUsed[c] >= units[c] {
				continue
			}
			in = append(in, &Entry{
				Seq:      uint64(trial*10 + i),
				FrontWay: fws[i],
				BackWay:  classUsed[c],
				Class:    c,
			})
			classUsed[c]++
		}
		if len(in) == 0 {
			continue
		}
		s := newShuffler()
		out := s.Shuffle(in)
		got := collectEntries(out)
		if len(got) != len(in) {
			t.Fatalf("trial %d: %d instructions in, %d out", trial, len(in), len(got))
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			seen[e.Seq] = true
		}
		for _, e := range in {
			if !seen[e.Seq] {
				t.Fatalf("trial %d: instruction seq %d lost", trial, e.Seq)
			}
		}
		checkDiverse(t, out)
	}
}

func TestShuffleSplitsWhenPacketCannotFit(t *testing.T) {
	// Four intALU instructions occupying all four frontend ways and all four
	// backend ways leave little shuffle freedom; the greedy algorithm may
	// split. Whatever it does, diversity must hold and nothing may be lost.
	s := newShuffler()
	in := []*Entry{
		{Seq: 1, FrontWay: 0, BackWay: 0, Class: isa.UnitIntALU},
		{Seq: 2, FrontWay: 1, BackWay: 1, Class: isa.UnitIntALU},
		{Seq: 3, FrontWay: 2, BackWay: 2, Class: isa.UnitIntALU},
		{Seq: 4, FrontWay: 3, BackWay: 3, Class: isa.UnitIntALU},
	}
	out := s.Shuffle(in)
	checkDiverse(t, out)
	if got := len(collectEntries(out)); got != 4 {
		t.Fatalf("instructions out = %d, want 4", got)
	}
}

func TestShuffleTwoMemOps(t *testing.T) {
	// Two memory ops used both ports (ways 0 and 1). After shuffle they must
	// use ways (1 and 0) — only a swap is possible with 2 units.
	s := newShuffler()
	in := []*Entry{
		{Seq: 1, FrontWay: 0, BackWay: 0, Class: isa.UnitMem},
		{Seq: 2, FrontWay: 1, BackWay: 1, Class: isa.UnitMem},
	}
	out := s.Shuffle(in)
	checkDiverse(t, out)
	if len(collectEntries(out)) != 2 {
		t.Fatal("instruction lost")
	}
}

func TestShuffleNonDiversifiableClassGetsFrontendDiversityOnly(t *testing.T) {
	var units [isa.NumUnitClasses]int
	units[isa.UnitIntALU] = 4
	units[isa.UnitIntDiv] = 1 // single divider: backend diversity impossible
	s := &Shuffler{Width: 4, Units: units}
	out := s.Shuffle([]*Entry{{Seq: 1, FrontWay: 2, BackWay: 0, Class: isa.UnitIntDiv}})
	if len(out) != 1 {
		t.Fatalf("%d packets, want 1", len(out))
	}
	es := collectEntries(out)
	if len(es) != 1 {
		t.Fatal("instruction lost")
	}
	for i, slot := range out[0].Slots {
		if slot.Entry != nil && i == 2 {
			t.Error("frontend way conflict for non-diversifiable class")
		}
	}
}

func TestShuffleDisabledPassesThrough(t *testing.T) {
	s := newShuffler()
	s.Disabled = true
	in := []*Entry{
		{Seq: 1, FrontWay: 0, BackWay: 0, Class: isa.UnitIntALU},
		{Seq: 2, FrontWay: 1, BackWay: 1, Class: isa.UnitIntALU},
	}
	out := s.Shuffle(in)
	if len(out) != 1 {
		t.Fatalf("%d packets, want 1", len(out))
	}
	if out[0].Slots[0].Entry != in[0] || out[0].Slots[1].Entry != in[1] {
		t.Error("BlackJack-NS must preserve slot order")
	}
	if out[0].NOPs() != 0 {
		t.Error("BlackJack-NS must not insert NOPs")
	}
	_, _, splits, _ := s.Stats()
	if splits != 0 {
		t.Error("BlackJack-NS must not split packets")
	}
}

func TestShuffleStatsCountNOPsAndSplits(t *testing.T) {
	s := newShuffler()
	// FrontWay 1, BackWay 0 forces a NOP before the instruction (backend
	// way 0 must be avoided).
	s.Shuffle([]*Entry{{Seq: 1, FrontWay: 1, BackWay: 0, Class: isa.UnitFPALU}})
	in, out, _, nops := s.Stats()
	if in != 1 || out < 1 {
		t.Errorf("stats in/out = %d/%d", in, out)
	}
	if nops == 0 {
		t.Error("expected at least one NOP for a backend-way-0 singleton")
	}
}

func TestShuffleEmptyInput(t *testing.T) {
	s := newShuffler()
	if out := s.Shuffle(nil); out != nil {
		t.Errorf("Shuffle(nil) = %v, want nil", out)
	}
}

func TestPlannedBackWayCountsNOPs(t *testing.T) {
	p := Packet{Slots: []Slot{
		{IsNOP: true, NopClass: isa.UnitFPALU},
		{Entry: &Entry{Class: isa.UnitFPALU}},
		{Entry: &Entry{Class: isa.UnitIntALU}},
		{},
	}}
	if got := p.PlannedBackWay(1); got != 1 {
		t.Errorf("PlannedBackWay(1) = %d, want 1 (NOP counts)", got)
	}
	if got := p.PlannedBackWay(2); got != 0 {
		t.Errorf("PlannedBackWay(2) = %d, want 0", got)
	}
	if got := p.PlannedBackWay(3); got != -1 {
		t.Errorf("PlannedBackWay(3) = %d, want -1 for empty slot", got)
	}
	if p.Insts() != 2 || p.NOPs() != 1 {
		t.Errorf("Insts/NOPs = %d/%d, want 2/1", p.Insts(), p.NOPs())
	}
}

func TestShuffleMayOversubscribeAClass(t *testing.T) {
	// A mem singleton with frontend way 0 and backend way 1 forces two mem
	// NOPs before it (paper's literal pass-over rule), planning three mem
	// slots on a two-way class. The hardware splits such a packet at issue;
	// the plan itself must still be frontend- and backend-diverse.
	s := newShuffler()
	out := s.Shuffle([]*Entry{{Seq: 1, FrontWay: 0, BackWay: 1, Class: isa.UnitMem}})
	if len(out) != 1 {
		t.Fatalf("%d packets, want 1", len(out))
	}
	checkDiverse(t, out)
	if len(collectEntries(out)) != 1 {
		t.Fatal("instruction lost")
	}
}

// The NOP-freeze invariant: once an instruction is placed, later placements
// never change its planned backend way. We check by recording planned ways
// right after each placement is visible in the final packet.
func TestShuffleBackendPlanStableUnderLaterPlacements(t *testing.T) {
	s := newShuffler()
	in := []*Entry{
		{Seq: 1, FrontWay: 0, BackWay: 0, Class: isa.UnitMem},
		{Seq: 2, FrontWay: 1, BackWay: 1, Class: isa.UnitMem},
		{Seq: 3, FrontWay: 2, BackWay: 0, Class: isa.UnitIntALU},
		{Seq: 4, FrontWay: 3, BackWay: 1, Class: isa.UnitIntALU},
	}
	out := s.Shuffle(in)
	checkDiverse(t, out)
	if len(collectEntries(out)) != 4 {
		t.Fatalf("lost instructions: %d/4", len(collectEntries(out)))
	}
}
