package core

import (
	"blackjack/internal/detect"
	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

// DoubleRename is the trailing thread's first rename table (Section 4.3.1).
// Because the trailing thread is fetched in the leading thread's issue order,
// logical register names cannot connect consumers to producers (issue order
// overlaps multiple live ranges of one logical register); instead the table
// is indexed by *leading physical register* — the trailing thread renames the
// renamed leading instructions. The table therefore has one row per leading
// physical register ("our rename tables have more rows").
type DoubleRename struct {
	table *rename.Map
}

// NewDoubleRename builds the table with one row per physical register.
func NewDoubleRename(physRegs int) *DoubleRename {
	return &DoubleRename{table: rename.NewMap(physRegs)}
}

// Seed installs the initial mapping leadP -> trailP (the pre-execution
// architectural state of each logical register as seen by both threads).
func (d *DoubleRename) Seed(leadP, trailP rename.PhysReg) {
	d.table.Set(int(leadP), trailP)
}

// Lookup translates a leading physical source register into the trailing
// physical register holding the redundant copy of that value. ok is false
// when no producer has been renamed — under correct operation that cannot
// happen, because safe-shuffle preserves the leading issue order in which
// producers precede consumers.
func (d *DoubleRename) Lookup(leadP rename.PhysReg) (rename.PhysReg, bool) {
	p := d.table.Get(int(leadP))
	return p, p != rename.None
}

// Bind records that the trailing copy of the instruction producing leadP
// writes trailP.
func (d *DoubleRename) Bind(leadP, trailP rename.PhysReg) {
	d.table.Set(int(leadP), trailP)
}

// Clone returns an independent deep copy of the table (nil-safe).
func (d *DoubleRename) Clone() *DoubleRename {
	if d == nil {
		return nil
	}
	return &DoubleRename{table: d.table.Clone()}
}

// OrderChecker implements BlackJack's commit-time validation of the
// information borrowed from the leading thread (Section 4.4):
//
//   - the dependence check replays renaming with a second table, indexed by
//     logical register and updated in *program order* at trailing commit, and
//     compares the looked-up physical sources against the ones the trailing
//     instruction actually used in execution;
//   - the second table also identifies the physical register to free (the
//     previous program-order mapping of the destination), because the
//     out-of-program-order first rename cannot;
//   - the program-counter check verifies that committed PCs follow
//     sequential/branch-target order, catching dropped, added or reordered
//     instructions.
type OrderChecker struct {
	second *rename.Map

	havePrev   bool
	prevPC     int
	prevTaken  bool
	prevTarget int

	depChecks uint64
	pcChecks  uint64
}

// NewOrderChecker builds the checker; the second rename table has one row per
// logical register.
func NewOrderChecker() *OrderChecker {
	return &OrderChecker{second: rename.NewMap(isa.NumArchRegs)}
}

// Seed installs the initial program-order mapping of a logical register.
func (c *OrderChecker) Seed(logical isa.Reg, trailP rename.PhysReg) {
	c.second.Set(int(logical), trailP)
}

// Stats returns the number of dependence and PC checks performed.
func (c *OrderChecker) Stats() (dep, pc uint64) { return c.depChecks, c.pcChecks }

// Mapping returns the current program-order mapping of a logical register —
// after the trailing thread has fully committed, this is its committed
// architectural state (verification harnesses compare it against the golden
// model).
func (c *OrderChecker) Mapping(logical isa.Reg) rename.PhysReg {
	return c.second.Get(int(logical))
}

// Clone returns an independent deep copy of the checker (nil-safe).
func (c *OrderChecker) Clone() *OrderChecker {
	if c == nil {
		return nil
	}
	return &OrderChecker{
		second:     c.second.Clone(),
		havePrev:   c.havePrev,
		prevPC:     c.prevPC,
		prevTaken:  c.prevTaken,
		prevTarget: c.prevTarget,
		depChecks:  c.depChecks,
		pcChecks:   c.pcChecks,
	}
}

// CommitInfo describes one trailing instruction at commit.
type CommitInfo struct {
	PC      int
	RawInst isa.Inst
	// PSrc1, PSrc2 are the trailing physical sources the instruction
	// actually read in execution (None when the operand is unused).
	PSrc1, PSrc2 rename.PhysReg
	// PDest is the trailing physical destination (None when none).
	PDest rename.PhysReg
	// Taken/Target are the branch outcome the trailing thread itself
	// computed in execution (meaningful when RawInst is a branch).
	Taken  bool
	Target int
}

// Commit checks one trailing instruction in program order. It returns the
// physical register to free (None when none) and whether all checks passed;
// failures are reported to the sink.
func (c *OrderChecker) Commit(sink *detect.Sink, cycle int64, info CommitInfo) (free rename.PhysReg, ok bool) {
	ok = true

	// Dependence check: program-order rename must agree with the physical
	// sources used in execution.
	if info.RawInst.ReadsRs1() {
		c.depChecks++
		if want := c.second.Get(int(info.RawInst.Rs1)); want != info.PSrc1 {
			sink.Reportf(cycle, detect.CheckDependence, info.PC,
				"source %s: program-order rename %d, executed with %d", info.RawInst.Rs1, want, info.PSrc1)
			ok = false
		}
	}
	if info.RawInst.ReadsRs2() {
		c.depChecks++
		if want := c.second.Get(int(info.RawInst.Rs2)); want != info.PSrc2 {
			sink.Reportf(cycle, detect.CheckDependence, info.PC,
				"source %s: program-order rename %d, executed with %d", info.RawInst.Rs2, want, info.PSrc2)
			ok = false
		}
	}

	// Program-counter order check.
	c.pcChecks++
	if c.havePrev {
		want := c.prevPC + 1
		if c.prevTaken {
			want = c.prevTarget
		}
		if info.PC != want {
			sink.Reportf(cycle, detect.CheckPCOrder, info.PC,
				"committed pc %d, expected %d (prev pc %d taken=%v)", info.PC, want, c.prevPC, c.prevTaken)
			ok = false
		}
	}
	c.havePrev = true
	c.prevPC = info.PC
	c.prevTaken = info.RawInst.IsBranch() && info.Taken
	c.prevTarget = info.Target

	// Free the previous program-order mapping of the destination.
	free = rename.None
	if info.RawInst.WritesRd() {
		free = c.second.Set(int(info.RawInst.Rd), info.PDest)
	}
	return free, ok
}
