package core

import (
	"testing"

	"blackjack/internal/isa"
	"blackjack/internal/rename"
)

func mkEntry(seq uint64, class isa.UnitClass, s1, s2, d rename.PhysReg) *Entry {
	return &Entry{Seq: seq, Class: class, PSrc1: s1, PSrc2: s2, PDest: d}
}

func TestCanMergeIndependentPackets(t *testing.T) {
	a := []*Entry{mkEntry(1, isa.UnitIntALU, 10, 11, 12)}
	b := []*Entry{mkEntry(2, isa.UnitIntALU, 20, 21, 22)}
	if !CanMerge(a, b) {
		t.Error("register-disjoint packets must merge")
	}
}

func TestCanMergeRejectsTrueDependence(t *testing.T) {
	a := []*Entry{mkEntry(1, isa.UnitIntALU, 10, 11, 12)}
	b := []*Entry{mkEntry(2, isa.UnitIntALU, 12, 21, 22)} // reads a's dest
	if CanMerge(a, b) {
		t.Error("dependent packets merged")
	}
}

func TestCanMergeRejectsDestCollision(t *testing.T) {
	a := []*Entry{mkEntry(1, isa.UnitIntALU, 10, 11, 12)}
	b := []*Entry{mkEntry(2, isa.UnitIntALU, 20, 21, 12)} // rebinds a's dest
	if CanMerge(a, b) {
		t.Error("dest-colliding packets merged")
	}
}

func TestCanMergeRejectsAntiDependence(t *testing.T) {
	a := []*Entry{mkEntry(1, isa.UnitIntALU, 10, 11, 12)}
	b := []*Entry{mkEntry(2, isa.UnitIntALU, 20, 21, 10)} // rebinds a's source
	if CanMerge(a, b) {
		t.Error("anti-dependent packets merged; double-rename order would matter")
	}
}

func TestCanMergeIgnoresNoneRegs(t *testing.T) {
	a := []*Entry{mkEntry(1, isa.UnitIntALU, rename.None, rename.None, rename.None)}
	b := []*Entry{mkEntry(2, isa.UnitMem, rename.None, 5, rename.None)}
	if !CanMerge(a, b) {
		t.Error("packets with absent operands must merge")
	}
}

func TestMergeBudget(t *testing.T) {
	units := table1Units()
	two := []*Entry{
		mkEntry(1, isa.UnitMem, 1, 2, 3),
		mkEntry(2, isa.UnitMem, 4, 5, 6),
	}
	one := []*Entry{mkEntry(3, isa.UnitMem, 7, 8, 9)}
	if MergeBudget(two, one, 4, units) {
		t.Error("three mem ops on two ports accepted")
	}
	alu := []*Entry{mkEntry(4, isa.UnitIntALU, 7, 8, 9)}
	if !MergeBudget(two, alu, 4, units) {
		t.Error("two mem + one ALU rejected")
	}
	wide := []*Entry{
		mkEntry(5, isa.UnitIntALU, 0, 0, 0), mkEntry(6, isa.UnitIntALU, 0, 0, 0),
		mkEntry(7, isa.UnitIntALU, 0, 0, 0),
	}
	if MergeBudget(two, wide, 4, units) {
		t.Error("five instructions in a 4-wide packet accepted")
	}
}

func TestHeadPacketsStopsAtUncommitted(t *testing.T) {
	q := NewDTQ(16)
	q.Allocate(&Entry{Seq: 1, PacketID: 1})
	q.Allocate(&Entry{Seq: 2, PacketID: 2})
	q.Allocate(&Entry{Seq: 3, PacketID: 3})
	q.MarkCommitted(1, 0, 0, 0, 0, false)
	q.MarkCommitted(2, 1, 0, 0, 0, false)
	pkts := q.HeadPackets(3)
	if len(pkts) != 2 {
		t.Fatalf("packets = %d, want 2 (third uncommitted)", len(pkts))
	}
	if pkts[0][0].Seq != 1 || pkts[1][0].Seq != 2 {
		t.Error("wrong packet contents")
	}
	q.MarkCommitted(3, 2, 0, 0, 0, false)
	if got := q.HeadPackets(2); len(got) != 2 {
		t.Errorf("limit not respected: %d", len(got))
	}
}
