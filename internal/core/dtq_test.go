package core

import (
	"testing"

	"blackjack/internal/isa"
)

func TestDTQAllocateAndHeadPacket(t *testing.T) {
	q := NewDTQ(16)
	if q.Free() != 16 {
		t.Fatalf("Free = %d, want 16", q.Free())
	}
	// Packet 0: seqs 1,2; packet 1: seq 3.
	for _, e := range []*Entry{
		{Seq: 1, PacketID: 0},
		{Seq: 2, PacketID: 0},
		{Seq: 3, PacketID: 1},
	} {
		if !q.Allocate(e) {
			t.Fatalf("Allocate(%d) failed", e.Seq)
		}
	}
	if pkt := q.HeadPacket(); pkt != nil {
		t.Errorf("HeadPacket before commit = %v, want nil", pkt)
	}
	q.MarkCommitted(1, 0, 0, 0, 0, false)
	if pkt := q.HeadPacket(); pkt != nil {
		t.Error("HeadPacket with partially committed packet should be nil")
	}
	q.MarkCommitted(2, 1, 0, 0, 0, false)
	pkt := q.HeadPacket()
	if len(pkt) != 2 || pkt[0].Seq != 1 || pkt[1].Seq != 2 {
		t.Fatalf("HeadPacket = %v, want seqs [1 2]", pkt)
	}
	q.PopPacket(len(pkt))
	if q.Len() != 1 {
		t.Errorf("Len after pop = %d, want 1", q.Len())
	}
	// Remaining packet 1 becomes head once committed.
	q.MarkCommitted(3, 2, 0, 0, 0, false)
	pkt = q.HeadPacket()
	if len(pkt) != 1 || pkt[0].Seq != 3 {
		t.Errorf("HeadPacket = %v, want seq [3]", pkt)
	}
}

func TestDTQCommitRecordsProgramOrderInfo(t *testing.T) {
	q := NewDTQ(4)
	q.Allocate(&Entry{Seq: 5, PacketID: 0})
	if !q.MarkCommitted(5, 10, 3, 2, 1, true) {
		t.Fatal("MarkCommitted failed")
	}
	e := q.HeadPacket()[0]
	if e.VirtAL != 10 || e.VirtLSQ != 3 || e.LoadSeq != 2 || e.StoreSeq != 1 || !e.Halt {
		t.Errorf("entry = %+v", e)
	}
	if q.MarkCommitted(99, 0, 0, 0, 0, false) {
		t.Error("MarkCommitted for unknown seq succeeded")
	}
}

func TestDTQSquashYounger(t *testing.T) {
	q := NewDTQ(8)
	for seq := uint64(1); seq <= 5; seq++ {
		q.Allocate(&Entry{Seq: seq, PacketID: seq / 2})
	}
	if n := q.SquashYounger(3); n != 2 {
		t.Errorf("squashed %d, want 2", n)
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	// Squashed entries must also leave the index.
	if q.MarkCommitted(5, 0, 0, 0, 0, false) {
		t.Error("squashed entry still committable")
	}
	if !q.MarkCommitted(3, 0, 0, 0, 0, false) {
		t.Error("surviving entry not committable")
	}
}

func TestDTQFullRejectsAllocate(t *testing.T) {
	q := NewDTQ(2)
	q.Allocate(&Entry{Seq: 1})
	q.Allocate(&Entry{Seq: 2})
	if q.Allocate(&Entry{Seq: 3}) {
		t.Error("Allocate into full DTQ succeeded")
	}
	if q.Free() != 0 {
		t.Errorf("Free = %d, want 0", q.Free())
	}
}

func TestDTQPacketBoundaryRespectedAfterSquash(t *testing.T) {
	// A packet that loses members to a squash still forms a (smaller) head
	// packet from its survivors.
	q := NewDTQ(8)
	q.Allocate(&Entry{Seq: 1, PacketID: 7})
	q.Allocate(&Entry{Seq: 4, PacketID: 7})
	q.Allocate(&Entry{Seq: 2, PacketID: 8})
	q.SquashYounger(2) // removes seq 4
	q.MarkCommitted(1, 0, 0, 0, 0, false)
	q.MarkCommitted(2, 1, 0, 0, 0, false)
	pkt := q.HeadPacket()
	if len(pkt) != 1 || pkt[0].Seq != 1 {
		t.Errorf("HeadPacket = %v, want surviving seq [1]", pkt)
	}
	_ = isa.Inst{}
}
