package core

import (
	"testing"

	"blackjack/internal/isa"
)

func TestDTQAllocateAndHeadPacket(t *testing.T) {
	q := NewDTQ(16)
	if q.Free() != 16 {
		t.Fatalf("Free = %d, want 16", q.Free())
	}
	// Packet 0: seqs 1,2; packet 1: seq 3.
	for _, e := range []*Entry{
		{Seq: 1, PacketID: 0},
		{Seq: 2, PacketID: 0},
		{Seq: 3, PacketID: 1},
	} {
		if !q.Allocate(e) {
			t.Fatalf("Allocate(%d) failed", e.Seq)
		}
	}
	if pkt := q.HeadPacket(); pkt != nil {
		t.Errorf("HeadPacket before commit = %v, want nil", pkt)
	}
	q.MarkCommitted(1, 0, 0, 0, 0, false)
	if pkt := q.HeadPacket(); pkt != nil {
		t.Error("HeadPacket with partially committed packet should be nil")
	}
	q.MarkCommitted(2, 1, 0, 0, 0, false)
	pkt := q.HeadPacket()
	if len(pkt) != 2 || pkt[0].Seq != 1 || pkt[1].Seq != 2 {
		t.Fatalf("HeadPacket = %v, want seqs [1 2]", pkt)
	}
	q.PopPacket(len(pkt))
	if q.Len() != 1 {
		t.Errorf("Len after pop = %d, want 1", q.Len())
	}
	// Remaining packet 1 becomes head once committed.
	q.MarkCommitted(3, 2, 0, 0, 0, false)
	pkt = q.HeadPacket()
	if len(pkt) != 1 || pkt[0].Seq != 3 {
		t.Errorf("HeadPacket = %v, want seq [3]", pkt)
	}
}

func TestDTQCommitRecordsProgramOrderInfo(t *testing.T) {
	q := NewDTQ(4)
	q.Allocate(&Entry{Seq: 5, PacketID: 0})
	if !q.MarkCommitted(5, 10, 3, 2, 1, true) {
		t.Fatal("MarkCommitted failed")
	}
	e := q.HeadPacket()[0]
	if e.VirtAL != 10 || e.VirtLSQ != 3 || e.LoadSeq != 2 || e.StoreSeq != 1 || !e.Halt {
		t.Errorf("entry = %+v", e)
	}
	if q.MarkCommitted(99, 0, 0, 0, 0, false) {
		t.Error("MarkCommitted for unknown seq succeeded")
	}
}

func TestDTQSquashYounger(t *testing.T) {
	q := NewDTQ(8)
	for seq := uint64(1); seq <= 5; seq++ {
		q.Allocate(&Entry{Seq: seq, PacketID: seq / 2})
	}
	if n := q.SquashYounger(3); n != 2 {
		t.Errorf("squashed %d, want 2", n)
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	// Squashed entries must also leave the index.
	if q.MarkCommitted(5, 0, 0, 0, 0, false) {
		t.Error("squashed entry still committable")
	}
	if !q.MarkCommitted(3, 0, 0, 0, 0, false) {
		t.Error("surviving entry not committable")
	}
}

func TestDTQFullRejectsAllocate(t *testing.T) {
	q := NewDTQ(2)
	q.Allocate(&Entry{Seq: 1})
	q.Allocate(&Entry{Seq: 2})
	if q.Allocate(&Entry{Seq: 3}) {
		t.Error("Allocate into full DTQ succeeded")
	}
	if q.Free() != 0 {
		t.Errorf("Free = %d, want 0", q.Free())
	}
}

func TestDTQPacketBoundaryRespectedAfterSquash(t *testing.T) {
	// A packet that loses members to a squash still forms a (smaller) head
	// packet from its survivors.
	q := NewDTQ(8)
	q.Allocate(&Entry{Seq: 1, PacketID: 7})
	q.Allocate(&Entry{Seq: 4, PacketID: 7})
	q.Allocate(&Entry{Seq: 2, PacketID: 8})
	q.SquashYounger(2) // removes seq 4
	q.MarkCommitted(1, 0, 0, 0, 0, false)
	q.MarkCommitted(2, 1, 0, 0, 0, false)
	pkt := q.HeadPacket()
	if len(pkt) != 1 || pkt[0].Seq != 1 {
		t.Errorf("HeadPacket = %v, want surviving seq [1]", pkt)
	}
	_ = isa.Inst{}
}

// Cycling many packets through a small DTQ exercises the ring's wraparound
// paths: allocate/pop repeatedly past the capacity boundary and verify packet
// grouping, index bookkeeping, and Free accounting all stay consistent.
func TestDTQWraparound(t *testing.T) {
	const cap = 5 // deliberately not a multiple of the packet size
	q := NewDTQ(cap)
	seq := uint64(0)
	for pkt := uint64(0); pkt < 20; pkt++ {
		n := int(pkt%3) + 1 // packet sizes 1..3 so boundaries drift across the ring
		for i := 0; i < n; i++ {
			if !q.Allocate(&Entry{Seq: seq, PacketID: pkt, Class: isa.UnitIntALU}) {
				t.Fatalf("packet %d: Allocate(%d) failed with Free=%d", pkt, seq, q.Free())
			}
			seq++
		}
		if got := q.Free(); got != cap-n {
			t.Fatalf("packet %d: Free = %d, want %d", pkt, got, cap-n)
		}
		if q.HeadPacket() != nil {
			t.Fatalf("packet %d: HeadPacket non-nil before commit", pkt)
		}
		for i := 0; i < n; i++ {
			if !q.MarkCommitted(seq-uint64(n)+uint64(i), seq, 0, 0, 0, false) {
				t.Fatalf("packet %d: MarkCommitted(%d) failed", pkt, seq-uint64(n)+uint64(i))
			}
		}
		head := q.HeadPacket()
		if len(head) != n {
			t.Fatalf("packet %d: HeadPacket len = %d, want %d", pkt, len(head), n)
		}
		for i, e := range head {
			if e.PacketID != pkt || e.Seq != seq-uint64(n)+uint64(i) {
				t.Fatalf("packet %d slot %d: got seq %d packet %d", pkt, i, e.Seq, e.PacketID)
			}
		}
		q.PopPacket(n)
		if q.Len() != 0 || q.Free() != cap {
			t.Fatalf("packet %d: Len=%d Free=%d after pop, want 0/%d", pkt, q.Len(), q.Free(), cap)
		}
	}
	if len(q.index) != 0 {
		t.Errorf("index retains %d entries after full drain", len(q.index))
	}
}

// Squashing across the wrap boundary must drop exactly the younger entries
// and leave the surviving prefix intact and shuffle-ready.
func TestDTQSquashAcrossWraparound(t *testing.T) {
	q := NewDTQ(4)
	// Fill and drain once so the ring's head is mid-array.
	for s := uint64(0); s < 3; s++ {
		q.Allocate(&Entry{Seq: s, PacketID: 0})
	}
	for s := uint64(0); s < 3; s++ {
		q.MarkCommitted(s, s, 0, 0, 0, false)
	}
	q.PopPacket(3)
	// Now allocate a run that physically wraps.
	for s := uint64(10); s < 14; s++ {
		q.Allocate(&Entry{Seq: s, PacketID: uint64(s)}) // one packet per entry
	}
	if n := q.SquashYounger(11); n != 2 {
		t.Fatalf("SquashYounger dropped %d, want 2", n)
	}
	if q.Len() != 2 || q.Free() != 2 {
		t.Fatalf("Len=%d Free=%d after squash, want 2/2", q.Len(), q.Free())
	}
	q.MarkCommitted(10, 0, 0, 0, 0, false)
	head := q.HeadPacket()
	if len(head) != 1 || head[0].Seq != 10 {
		t.Fatalf("HeadPacket = %v, want surviving seq 10", head)
	}
	// Squashed seqs must be gone from the index: re-marking them fails.
	if q.MarkCommitted(12, 0, 0, 0, 0, false) {
		t.Error("MarkCommitted succeeded for squashed seq 12")
	}
}
