// Package core implements the paper's primary contribution: the BlackJack
// mechanisms that make SRT's redundant threads spatially diverse so hard
// errors are detected.
//
//   - The Dependence Trace Queue (DTQ, Section 4.2.1) records issued leading
//     instructions in issue order, grouped into packets of co-issued (hence
//     independent) instructions, together with their rename maps, pipeline
//     way usage and — at commit — their virtual active-list/load-store-queue
//     ordinals.
//   - Safe-shuffle (Section 4.2.2) reorders each committed packet so every
//     trailing instruction is fetched to a different frontend way and issued
//     to a different backend way than its leading copy, inserting typed NOPs
//     and splitting packets when the greedy allocation cannot place an
//     instruction.
//   - The trailing thread's double rename (Section 4.3.1) renames the
//     *leading thread's physical registers*, and the commit checks
//     (Section 4.4) validate the borrowed dependence and program-order
//     information with a second, program-order rename table and a program
//     counter sequence check.
package core

import (
	"blackjack/internal/isa"
	"blackjack/internal/queues"
	"blackjack/internal/rename"
)

// Entry is the DTQ record for one issued leading instruction.
type Entry struct {
	// Seq is the leading thread's fetch-order (program-order) sequence
	// number, used to drop squashed wrong-path entries.
	Seq uint64
	// PacketID groups instructions co-issued in the same leading cycle.
	PacketID uint64
	PC       int
	// RawInst is the undecoded instruction as fetched from the I-cache (not
	// the possibly fault-corrupted decoded form): the trailing thread
	// re-decodes it on a different frontend way.
	RawInst isa.Inst

	// Leading resource usage, for enforcing spatial diversity.
	FrontWay int
	BackWay  int
	Class    isa.UnitClass

	// Leading rename maps: the trailing thread renames these physical names
	// instead of logical registers (double rename).
	PSrc1, PSrc2, PDest rename.PhysReg

	// Program-order information, recorded at leading commit.
	Committed bool
	VirtAL    uint64 // virtual active-list ordinal (program order)
	VirtLSQ   uint64 // virtual load/store-queue ordinal (valid for memory ops)
	LoadSeq   uint64 // load ordinal, for LVQ pairing (valid for loads)
	StoreSeq  uint64 // store ordinal, for store-buffer pairing (valid for stores)
	Halt      bool
}

// DTQ is the Dependence Trace Queue. Entries are allocated at leading issue
// (in issue order; any order within a packet), updated at leading commit, and
// consumed packet-at-a-time by safe-shuffle once every instruction of the
// head packet has committed. Squashed wrong-path entries are removed so the
// DTQ holds only instructions that will commit.
type DTQ struct {
	ring  *queues.Ring[*Entry]
	index map[uint64]*Entry // Seq -> entry, for commit-time updates
	// scratch backs the slice HeadPacket returns; the queue is polled every
	// cycle, so the backing array is reused instead of reallocated.
	scratch []*Entry
}

// NewDTQ builds a DTQ with the given capacity (Table 1: 1024 instructions).
func NewDTQ(capacity int) *DTQ {
	return &DTQ{
		ring:  queues.NewRing[*Entry](capacity),
		index: make(map[uint64]*Entry, capacity),
	}
}

// Free returns the number of unallocated slots; leading instructions may only
// issue when a slot is available.
func (q *DTQ) Free() int { return q.ring.Free() }

// Len returns the number of allocated entries.
func (q *DTQ) Len() int { return q.ring.Len() }

// Allocate records an issued leading instruction. It reports false when the
// DTQ is full (the caller must have reserved space before issuing).
func (q *DTQ) Allocate(e *Entry) bool {
	if !q.ring.Push(e) {
		return false
	}
	q.index[e.Seq] = e
	return true
}

// MarkCommitted fills in the program-order information when the leading
// instruction commits. It reports false when the entry does not exist
// (indicating a bookkeeping bug).
func (q *DTQ) MarkCommitted(seq, virtAL, virtLSQ, loadSeq, storeSeq uint64, halt bool) bool {
	e, ok := q.index[seq]
	if !ok {
		return false
	}
	e.Committed = true
	e.VirtAL = virtAL
	e.VirtLSQ = virtLSQ
	e.LoadSeq = loadSeq
	e.StoreSeq = storeSeq
	e.Halt = halt
	return true
}

// SquashYounger removes entries with Seq > seq (wrong-path instructions
// squashed by a leading branch misprediction) and returns how many were
// dropped.
func (q *DTQ) SquashYounger(seq uint64) int {
	return q.ring.RemoveIf(func(e *Entry) bool {
		if e.Seq > seq {
			delete(q.index, e.Seq)
			return false
		}
		return true
	})
}

// Clone returns an independent deep copy of the DTQ (nil-safe). Entries are
// owned by the machine, so the caller supplies remap to translate each entry
// pointer into its copy; the Seq index is rebuilt from the remapped ring.
func (q *DTQ) Clone(remap func(*Entry) *Entry) *DTQ {
	if q == nil {
		return nil
	}
	c := &DTQ{ring: q.ring.Clone(), index: make(map[uint64]*Entry, q.ring.Len())}
	for i := 0; i < c.ring.Len(); i++ {
		e := remap(c.ring.At(i))
		c.ring.SetAt(i, e)
		c.index[e.Seq] = e
	}
	return c
}

// HeadPacket returns the instructions of the oldest-issued packet if every
// one of them has committed, without consuming them. It returns nil while the
// packet is incomplete or the queue is empty. The returned slice shares a
// scratch backing array and is only valid until the next HeadPacket call.
func (q *DTQ) HeadPacket() []*Entry {
	n := q.ring.Len()
	if n == 0 {
		return nil
	}
	id := q.ring.At(0).PacketID
	pkt := q.scratch[:0]
	for i := 0; i < n; i++ {
		e := q.ring.At(i)
		if e.PacketID != id {
			break
		}
		if !e.Committed {
			return nil
		}
		pkt = append(pkt, e)
	}
	q.scratch = pkt
	return pkt
}

// HeadPackets returns up to n consecutive fully-committed packets from the
// head, stopping at the first incomplete packet. Used by the merging shuffle
// (Section 6.2's suggested extension) to consider adjacent packets together.
func (q *DTQ) HeadPackets(n int) [][]*Entry {
	var out [][]*Entry
	total := q.ring.Len()
	i := 0
	for len(out) < n && i < total {
		id := q.ring.At(i).PacketID
		var pkt []*Entry
		for i < total {
			e := q.ring.At(i)
			if e.PacketID != id {
				break
			}
			if !e.Committed {
				return out
			}
			pkt = append(pkt, e)
			i++
		}
		out = append(out, pkt)
	}
	return out
}

// PopPacket consumes n entries from the head (the packet previously returned
// by HeadPacket).
func (q *DTQ) PopPacket(n int) {
	for i := 0; i < n; i++ {
		e, ok := q.ring.Pop()
		if !ok {
			return
		}
		delete(q.index, e.Seq)
	}
}
