// Package redundancy implements the SRT coupling mechanisms between the
// leading and trailing threads (Section 3 of the paper): the Branch Outcome
// Queue (BOQ), the Load Value Queue (LVQ), the checking store buffer, and the
// committed-stream queue that models the trailing thread's never-mispredicting
// fetch. BlackJack reuses the LVQ and store buffer; the BOQ is SRT-only
// (BlackJack's trailing thread fetches pre-resolved packets from the DTQ).
package redundancy

import (
	"blackjack/internal/detect"
	"blackjack/internal/isa"
	"blackjack/internal/queues"
)

// BranchOutcome is one leading-thread branch result passed to the trailing
// thread as a "prediction" it must validate by execution.
type BranchOutcome struct {
	Seq    uint64 // per-thread branch ordinal, program order
	PC     int
	Taken  bool
	Target int
}

// BOQ is the Branch Outcome Queue. Entries are pushed at leading branch
// commit and consumed, in order, at trailing branch commit.
type BOQ struct {
	ring *queues.Ring[BranchOutcome]
}

// NewBOQ builds a BOQ with the given capacity (Table 1: 96).
func NewBOQ(capacity int) *BOQ {
	return &BOQ{ring: queues.NewRing[BranchOutcome](capacity)}
}

// Full reports whether the BOQ can accept no more outcomes (leading branch
// commit must stall).
func (q *BOQ) Full() bool { return q.ring.Full() }

// Len returns the number of queued outcomes.
func (q *BOQ) Len() int { return q.ring.Len() }

// Push records a leading branch outcome; it reports false when full.
func (q *BOQ) Push(o BranchOutcome) bool { return q.ring.Push(o) }

// Validate consumes the head outcome and compares it against the trailing
// thread's own execution of the same branch. Disagreement — or a missing
// outcome, which means the threads lost branch pairing — is reported to the
// sink. It returns true when the check passed.
func (q *BOQ) Validate(sink *detect.Sink, cycle int64, seq uint64, pc int, taken bool, target int) bool {
	o, ok := q.ring.Pop()
	if !ok {
		sink.Reportf(cycle, detect.CheckBOQOutcome, pc, "trailing branch seq %d has no BOQ entry", seq)
		return false
	}
	if o.Seq != seq || o.PC != pc {
		sink.Reportf(cycle, detect.CheckBOQOutcome, pc,
			"branch pairing lost: BOQ has seq %d pc %d, trailing executed seq %d pc %d", o.Seq, o.PC, seq, pc)
		return false
	}
	if o.Taken != taken || (taken && o.Target != target) {
		sink.Reportf(cycle, detect.CheckBOQOutcome, pc,
			"branch outcome mismatch: leading (taken=%v target=%d) trailing (taken=%v target=%d)",
			o.Taken, o.Target, taken, target)
		return false
	}
	return true
}

// Clone returns an independent deep copy of the BOQ (nil-safe).
func (q *BOQ) Clone() *BOQ {
	if q == nil {
		return nil
	}
	return &BOQ{ring: q.ring.Clone()}
}

// LoadValue is one leading load result forwarded to the trailing thread.
type LoadValue struct {
	Seq   uint64 // per-thread load ordinal, program order
	PC    int
	Addr  uint64
	Value uint64
}

// LVQ is the Load Value Queue. Entries are pushed in load program order at
// leading load commit; the trailing thread reads them (possibly out of order,
// under BlackJack's issue-order fetch) by load ordinal and retires them in
// order at trailing load commit.
type LVQ struct {
	ring    *queues.Ring[LoadValue]
	headSeq uint64 // Seq of the entry at the ring head
}

// NewLVQ builds an LVQ with the given capacity (Table 1: 128).
func NewLVQ(capacity int) *LVQ {
	return &LVQ{ring: queues.NewRing[LoadValue](capacity)}
}

// Full reports whether the LVQ can accept no more values (leading load commit
// must stall).
func (q *LVQ) Full() bool { return q.ring.Full() }

// Free returns the number of unused LVQ slots.
func (q *LVQ) Free() int { return q.ring.Free() }

// Len returns the number of queued values.
func (q *LVQ) Len() int { return q.ring.Len() }

// Push appends a leading load value; entries must arrive in consecutive Seq
// order. It reports false when full.
func (q *LVQ) Push(v LoadValue) bool {
	if q.ring.Empty() {
		if q.ring.Push(v) {
			q.headSeq = v.Seq
			return true
		}
		return false
	}
	return q.ring.Push(v)
}

// Lookup returns the entry for the given load ordinal without consuming it.
// ok is false when the entry is not (or no longer) present — under correct
// operation that cannot happen, because the trailing thread only executes
// loads the leading thread has committed.
func (q *LVQ) Lookup(seq uint64) (LoadValue, bool) {
	if seq < q.headSeq {
		return LoadValue{}, false
	}
	off := int(seq - q.headSeq)
	if off >= q.ring.Len() {
		return LoadValue{}, false
	}
	return q.ring.At(off), true
}

// Retire pops the head entry, which must have the given ordinal, at trailing
// load commit. It reports false on pairing loss.
func (q *LVQ) Retire(seq uint64) bool {
	v, ok := q.ring.Peek()
	if !ok || v.Seq != seq {
		return false
	}
	q.ring.Pop()
	q.headSeq = seq + 1
	return true
}

// ValidateAddr compares a trailing load's self-computed address against the
// LVQ entry (the SRT address check) and returns the value to forward. A
// missing entry or an address mismatch is reported to the sink.
func (q *LVQ) ValidateAddr(sink *detect.Sink, cycle int64, seq uint64, pc int, addr uint64) (value uint64, ok bool) {
	v, found := q.Lookup(seq)
	if !found {
		sink.Reportf(cycle, detect.CheckLVQAddr, pc, "trailing load seq %d has no LVQ entry", seq)
		return 0, false
	}
	if v.Addr != addr {
		sink.Reportf(cycle, detect.CheckLVQAddr, pc,
			"load address mismatch: leading %#x trailing %#x (seq %d)", v.Addr, addr, seq)
		return v.Value, false
	}
	return v.Value, true
}

// Clone returns an independent deep copy of the LVQ (nil-safe).
func (q *LVQ) Clone() *LVQ {
	if q == nil {
		return nil
	}
	return &LVQ{ring: q.ring.Clone(), headSeq: q.headSeq}
}

// PendingStore is a committed leading store awaiting its trailing copy.
type PendingStore struct {
	Seq   uint64 // per-thread store ordinal, program order
	PC    int
	Addr  uint64
	Value uint64
}

// StoreBuffer holds committed leading stores until the corresponding trailing
// stores commit and the comparison passes; only then is the store released to
// the memory image (SRT's output comparison, Section 3).
type StoreBuffer struct {
	ring *queues.Ring[PendingStore]
}

// NewStoreBuffer builds a store buffer with the given capacity (Table 1: 64).
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{ring: queues.NewRing[PendingStore](capacity)}
}

// Full reports whether the buffer can accept no more stores (leading store
// commit must stall).
func (b *StoreBuffer) Full() bool { return b.ring.Full() }

// Free returns the number of unused store-buffer slots.
func (b *StoreBuffer) Free() int { return b.ring.Free() }

// Len returns the number of pending stores.
func (b *StoreBuffer) Len() int { return b.ring.Len() }

// Push records a committed leading store; it reports false when full.
func (b *StoreBuffer) Push(s PendingStore) bool { return b.ring.Push(s) }

// MatchYoungest returns the value of the youngest pending store to addr, for
// store-to-load forwarding from the (committed, unreleased) store buffer.
func (b *StoreBuffer) MatchYoungest(addr uint64) (value uint64, ok bool) {
	for i := b.ring.Len() - 1; i >= 0; i-- {
		if s := b.ring.At(i); s.Addr == addr {
			return s.Value, true
		}
	}
	return 0, false
}

// CheckRelease pairs the head pending store with a committed trailing store
// and compares address and value. The head entry is always consumed (the
// hardware releases or flags it either way). Mismatches are reported to the
// sink; released is the store to apply to memory and ok reports whether every
// check passed.
func (b *StoreBuffer) CheckRelease(sink *detect.Sink, cycle int64, seq uint64, pc int, addr, value uint64) (released PendingStore, ok bool) {
	lead, found := b.ring.Pop()
	if !found {
		sink.Reportf(cycle, detect.CheckStorePairing, pc,
			"trailing store seq %d committed with empty store buffer", seq)
		return PendingStore{}, false
	}
	ok = true
	if lead.Seq != seq {
		sink.Reportf(cycle, detect.CheckStorePairing, pc,
			"store pairing lost: buffer head seq %d, trailing seq %d", lead.Seq, seq)
		ok = false
	}
	if lead.Addr != addr {
		sink.Reportf(cycle, detect.CheckStoreAddr, pc,
			"store address mismatch: leading %#x trailing %#x (seq %d)", lead.Addr, addr, seq)
		ok = false
	}
	if lead.Value != value {
		sink.Reportf(cycle, detect.CheckStoreValue, pc,
			"store value mismatch: leading %#x trailing %#x (seq %d)", lead.Value, value, seq)
		ok = false
	}
	return lead, ok
}

// Clone returns an independent deep copy of the store buffer (nil-safe).
func (b *StoreBuffer) Clone() *StoreBuffer {
	if b == nil {
		return nil
	}
	return &StoreBuffer{ring: b.ring.Clone()}
}

// StreamEntry is one committed leading instruction, as fed to the SRT
// trailing thread's fetch. It carries the leading thread's resource usage so
// coverage can be computed when the pair completes.
type StreamEntry struct {
	Seq      uint64 // leading commit (program) order
	PC       int
	Inst     isa.Inst // raw instruction bits as fetched from the I-cache
	FrontWay int
	BackWay  int
	Class    isa.UnitClass
	LoadSeq  uint64 // valid when Inst is a load
	StoreSeq uint64 // valid when Inst is a store
	Halt     bool
}

// Stream is the committed-instruction queue the SRT trailing thread fetches
// from. It models BOQ-steered, never-mispredicting fetch of the leading
// thread's dynamic instruction stream (see DESIGN.md).
type Stream struct {
	ring *queues.Ring[StreamEntry]
	// scratch backs the slice FetchGroup returns; the trailing frontend polls
	// every cycle, so the backing array is reused instead of reallocated.
	scratch []StreamEntry
}

// NewStream builds a stream queue with the given capacity.
func NewStream(capacity int) *Stream {
	return &Stream{ring: queues.NewRing[StreamEntry](capacity)}
}

// Full reports whether the stream can accept no more entries.
func (s *Stream) Full() bool { return s.ring.Full() }

// Len returns the number of queued instructions.
func (s *Stream) Len() int { return s.ring.Len() }

// Push appends a committed leading instruction; it reports false when full.
func (s *Stream) Push(e StreamEntry) bool { return s.ring.Push(e) }

// PeekAt returns the i-th queued entry (0 = oldest) for fetch-group
// formation. It panics when out of range.
func (s *Stream) PeekAt(i int) StreamEntry { return s.ring.At(i) }

// Pop consumes the oldest entry.
func (s *Stream) Pop() (StreamEntry, bool) { return s.ring.Pop() }

// Clone returns an independent deep copy of the stream (nil-safe). The
// FetchGroup scratch buffer is not carried over; it is transient per-call
// state that the clone re-grows on demand.
func (s *Stream) Clone() *Stream {
	if s == nil {
		return nil
	}
	return &Stream{ring: s.ring.Clone()}
}

// FetchGroup pops up to width consecutive entries that lie in the same
// width-aligned I-cache block with sequential PCs — the same group formation
// the leading thread's fetch uses, so the trailing thread's frontend-way
// assignment (PC mod width) is identical to the leading thread's. This is
// exactly the zero-frontend-diversity property of SRT (Section 4.1). The
// returned slice shares a scratch backing array and is only valid until the
// next FetchGroup call.
func (s *Stream) FetchGroup(width int) []StreamEntry {
	n := s.ring.Len()
	if n == 0 {
		return nil
	}
	first := s.ring.At(0)
	group := s.scratch[:0]
	block := first.PC / width
	for i := 0; i < n && len(group) < width; i++ {
		e := s.ring.At(i)
		if e.PC/width != block {
			break
		}
		if len(group) > 0 && e.PC != group[len(group)-1].PC+1 {
			break
		}
		group = append(group, e)
	}
	for range group {
		s.ring.Pop()
	}
	s.scratch = group
	return group
}
