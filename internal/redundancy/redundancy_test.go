package redundancy

import (
	"testing"

	"blackjack/internal/detect"
	"blackjack/internal/isa"
)

func TestBOQValidateAgreement(t *testing.T) {
	q := NewBOQ(4)
	var sink detect.Sink
	q.Push(BranchOutcome{Seq: 0, PC: 10, Taken: true, Target: 3})
	if !q.Validate(&sink, 1, 0, 10, true, 3) {
		t.Error("matching outcome rejected")
	}
	if !sink.Empty() {
		t.Errorf("unexpected events: %v", sink.Events())
	}
}

func TestBOQValidateMismatches(t *testing.T) {
	tests := []struct {
		name   string
		push   *BranchOutcome
		seq    uint64
		pc     int
		taken  bool
		target int
	}{
		{"empty queue", nil, 0, 10, true, 3},
		{"seq mismatch", &BranchOutcome{Seq: 5, PC: 10, Taken: true, Target: 3}, 6, 10, true, 3},
		{"pc mismatch", &BranchOutcome{Seq: 0, PC: 10, Taken: true, Target: 3}, 0, 11, true, 3},
		{"direction mismatch", &BranchOutcome{Seq: 0, PC: 10, Taken: true, Target: 3}, 0, 10, false, 3},
		{"target mismatch", &BranchOutcome{Seq: 0, PC: 10, Taken: true, Target: 3}, 0, 10, true, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := NewBOQ(4)
			var sink detect.Sink
			if tt.push != nil {
				q.Push(*tt.push)
			}
			if q.Validate(&sink, 1, tt.seq, tt.pc, tt.taken, tt.target) {
				t.Error("mismatch accepted")
			}
			if sink.Empty() {
				t.Error("no event reported")
			}
		})
	}
}

func TestBOQNotTakenTargetIgnored(t *testing.T) {
	q := NewBOQ(4)
	var sink detect.Sink
	q.Push(BranchOutcome{Seq: 0, PC: 10, Taken: false, Target: 3})
	// Target of a not-taken branch is don't-care.
	if !q.Validate(&sink, 1, 0, 10, false, 99) {
		t.Error("not-taken branch with differing target field rejected")
	}
}

func TestLVQLookupAndRetire(t *testing.T) {
	q := NewLVQ(4)
	for i := uint64(0); i < 3; i++ {
		if !q.Push(LoadValue{Seq: i, Addr: 8 * i, Value: 100 + i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	// Out-of-order lookup (BlackJack's issue-order trailing execution).
	v, ok := q.Lookup(2)
	if !ok || v.Value != 102 {
		t.Errorf("Lookup(2) = (%+v,%v)", v, ok)
	}
	v, ok = q.Lookup(0)
	if !ok || v.Value != 100 {
		t.Errorf("Lookup(0) = (%+v,%v)", v, ok)
	}
	if _, ok := q.Lookup(3); ok {
		t.Error("Lookup(3) should miss")
	}
	// In-order retirement.
	if !q.Retire(0) {
		t.Error("Retire(0) failed")
	}
	if q.Retire(2) {
		t.Error("Retire(2) out of order should fail")
	}
	if !q.Retire(1) {
		t.Error("Retire(1) failed")
	}
	if _, ok := q.Lookup(0); ok {
		t.Error("retired entry still visible")
	}
	if v, ok := q.Lookup(2); !ok || v.Value != 102 {
		t.Error("remaining entry lost")
	}
}

func TestLVQValidateAddr(t *testing.T) {
	q := NewLVQ(4)
	var sink detect.Sink
	q.Push(LoadValue{Seq: 0, PC: 7, Addr: 64, Value: 42})
	v, ok := q.ValidateAddr(&sink, 1, 0, 7, 64)
	if !ok || v != 42 {
		t.Errorf("ValidateAddr match = (%d,%v), want (42,true)", v, ok)
	}
	if _, ok := q.ValidateAddr(&sink, 2, 0, 7, 72); ok {
		t.Error("address mismatch accepted")
	}
	if _, ok := q.ValidateAddr(&sink, 3, 9, 7, 64); ok {
		t.Error("missing entry accepted")
	}
	if sink.Total() != 2 {
		t.Errorf("events = %d, want 2", sink.Total())
	}
}

func TestLVQRefillAfterEmpty(t *testing.T) {
	q := NewLVQ(2)
	q.Push(LoadValue{Seq: 0})
	q.Retire(0)
	if !q.Push(LoadValue{Seq: 1, Value: 5}) {
		t.Fatal("push after drain failed")
	}
	if v, ok := q.Lookup(1); !ok || v.Value != 5 {
		t.Errorf("Lookup(1) = (%+v,%v)", v, ok)
	}
}

func TestStoreBufferCheckRelease(t *testing.T) {
	b := NewStoreBuffer(4)
	var sink detect.Sink
	b.Push(PendingStore{Seq: 0, PC: 3, Addr: 16, Value: 9})
	rel, ok := b.CheckRelease(&sink, 1, 0, 3, 16, 9)
	if !ok || rel.Addr != 16 || rel.Value != 9 {
		t.Errorf("CheckRelease = (%+v,%v)", rel, ok)
	}
	if !sink.Empty() {
		t.Errorf("unexpected events: %v", sink.Events())
	}
}

func TestStoreBufferMismatches(t *testing.T) {
	tests := []struct {
		name    string
		lead    *PendingStore
		seq     uint64
		addr    uint64
		value   uint64
		checker detect.Checker
	}{
		{"empty buffer", nil, 0, 16, 9, detect.CheckStorePairing},
		{"seq mismatch", &PendingStore{Seq: 4, Addr: 16, Value: 9}, 5, 16, 9, detect.CheckStorePairing},
		{"addr mismatch", &PendingStore{Seq: 0, Addr: 16, Value: 9}, 0, 24, 9, detect.CheckStoreAddr},
		{"value mismatch", &PendingStore{Seq: 0, Addr: 16, Value: 9}, 0, 16, 8, detect.CheckStoreValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewStoreBuffer(4)
			var sink detect.Sink
			if tt.lead != nil {
				b.Push(*tt.lead)
			}
			if _, ok := b.CheckRelease(&sink, 1, tt.seq, 0, tt.addr, tt.value); ok {
				t.Error("mismatch accepted")
			}
			e, _ := sink.First()
			if e.Checker != tt.checker {
				t.Errorf("checker = %v, want %v", e.Checker, tt.checker)
			}
		})
	}
}

func TestStreamFetchGroupAlignment(t *testing.T) {
	s := NewStream(16)
	// PCs 2,3 are in block 0 (width 4); 4,5,6,7 in block 1.
	for i, pc := range []int{2, 3, 4, 5, 6, 7} {
		s.Push(StreamEntry{Seq: uint64(i), PC: pc})
	}
	g := s.FetchGroup(4)
	if len(g) != 2 || g[0].PC != 2 || g[1].PC != 3 {
		t.Fatalf("first group = %v, want PCs [2 3]", g)
	}
	g = s.FetchGroup(4)
	if len(g) != 4 || g[0].PC != 4 || g[3].PC != 7 {
		t.Fatalf("second group = %v, want PCs [4..7]", g)
	}
	if g = s.FetchGroup(4); g != nil {
		t.Errorf("empty stream returned group %v", g)
	}
}

func TestStreamFetchGroupBreaksOnTakenBranch(t *testing.T) {
	s := NewStream(16)
	// 4,5 then a jump to 12: PCs 4,5,12 — 12 is in another block AND not
	// sequential, so the group must end after 5.
	s.Push(StreamEntry{Seq: 0, PC: 4})
	s.Push(StreamEntry{Seq: 1, PC: 5})
	s.Push(StreamEntry{Seq: 2, PC: 12})
	g := s.FetchGroup(4)
	if len(g) != 2 {
		t.Fatalf("group = %v, want 2 entries", g)
	}
	g = s.FetchGroup(4)
	if len(g) != 1 || g[0].PC != 12 {
		t.Fatalf("group = %v, want [12]", g)
	}
}

func TestStreamFetchGroupBreaksOnNonSequentialSameBlock(t *testing.T) {
	s := NewStream(16)
	// A tight backward loop within one block: 5,6,5 — the second 5 must not
	// join the first group.
	s.Push(StreamEntry{Seq: 0, PC: 5})
	s.Push(StreamEntry{Seq: 1, PC: 6})
	s.Push(StreamEntry{Seq: 2, PC: 5})
	g := s.FetchGroup(4)
	if len(g) != 2 {
		t.Fatalf("group = %v, want [5 6]", g)
	}
}

func TestStreamCapacity(t *testing.T) {
	s := NewStream(2)
	if !s.Push(StreamEntry{}) || !s.Push(StreamEntry{Seq: 1}) {
		t.Fatal("pushes failed")
	}
	if s.Push(StreamEntry{Seq: 2}) {
		t.Error("push into full stream succeeded")
	}
	if !s.Full() {
		t.Error("Full() = false")
	}
}

func TestStreamEntryCarriesWays(t *testing.T) {
	s := NewStream(4)
	e := StreamEntry{
		Seq: 0, PC: 8, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		FrontWay: 0, BackWay: 2, Class: isa.UnitIntALU,
	}
	s.Push(e)
	got := s.PeekAt(0)
	if got != e {
		t.Errorf("PeekAt = %+v, want %+v", got, e)
	}
}

func TestBOQLenAndFull(t *testing.T) {
	q := NewBOQ(2)
	if q.Full() || q.Len() != 0 {
		t.Error("fresh BOQ state wrong")
	}
	q.Push(BranchOutcome{Seq: 0})
	q.Push(BranchOutcome{Seq: 1})
	if !q.Full() || q.Len() != 2 {
		t.Error("full BOQ state wrong")
	}
	if q.Push(BranchOutcome{Seq: 2}) {
		t.Error("push into full BOQ succeeded")
	}
}

func TestLVQFreeAndFull(t *testing.T) {
	q := NewLVQ(2)
	if q.Free() != 2 || q.Full() {
		t.Error("fresh LVQ state wrong")
	}
	q.Push(LoadValue{Seq: 0})
	q.Push(LoadValue{Seq: 1})
	if q.Free() != 0 || !q.Full() {
		t.Error("full LVQ state wrong")
	}
	if q.Push(LoadValue{Seq: 2}) {
		t.Error("push into full LVQ succeeded")
	}
}

func TestStoreBufferFreeLen(t *testing.T) {
	b := NewStoreBuffer(3)
	b.Push(PendingStore{Seq: 0})
	if b.Free() != 2 || b.Len() != 1 {
		t.Errorf("free/len = %d/%d", b.Free(), b.Len())
	}
}

func TestStoreBufferMatchYoungestPicksNewest(t *testing.T) {
	b := NewStoreBuffer(4)
	b.Push(PendingStore{Seq: 0, Addr: 8, Value: 1})
	b.Push(PendingStore{Seq: 1, Addr: 16, Value: 2})
	b.Push(PendingStore{Seq: 2, Addr: 8, Value: 3})
	if v, ok := b.MatchYoungest(8); !ok || v != 3 {
		t.Errorf("MatchYoungest(8) = (%d,%v), want (3,true)", v, ok)
	}
	if _, ok := b.MatchYoungest(99); ok {
		t.Error("matched absent address")
	}
}

func TestStreamPop(t *testing.T) {
	s := NewStream(4)
	s.Push(StreamEntry{Seq: 0, PC: 1})
	e, ok := s.Pop()
	if !ok || e.PC != 1 {
		t.Errorf("Pop = (%+v,%v)", e, ok)
	}
	if _, ok := s.Pop(); ok {
		t.Error("Pop from empty stream succeeded")
	}
}

func TestStreamFetchGroupWidthLimit(t *testing.T) {
	s := NewStream(16)
	for pc := 0; pc < 8; pc++ {
		s.Push(StreamEntry{Seq: uint64(pc), PC: pc})
	}
	if g := s.FetchGroup(2); len(g) != 2 {
		t.Errorf("width-2 group = %d entries", len(g))
	}
}
