package redundancy

import (
	"testing"

	"blackjack/internal/detect"
)

// Draining a BOQ to empty and validating again must report pairing loss, and
// the queue must accept new outcomes afterwards.
func TestBOQEmptyDrainAndRefill(t *testing.T) {
	q := NewBOQ(2)
	var sink detect.Sink
	q.Push(BranchOutcome{Seq: 0, PC: 4, Taken: false})
	if !q.Validate(&sink, 1, 0, 4, false, 0) {
		t.Fatal("matching outcome rejected")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", q.Len())
	}
	// Validate against the now-empty queue: must flag, not panic.
	if q.Validate(&sink, 2, 1, 8, true, 2) {
		t.Error("empty-queue validate passed")
	}
	if sink.Total() != 1 {
		t.Fatalf("sink.Total = %d, want 1", sink.Total())
	}
	if ev, _ := sink.First(); ev.Checker != detect.CheckBOQOutcome {
		t.Errorf("checker = %v, want CheckBOQOutcome", ev.Checker)
	}
	// Refill after empty: the ring must have fully reset.
	if !q.Push(BranchOutcome{Seq: 1, PC: 8, Taken: true, Target: 2}) {
		t.Fatal("push after drain rejected")
	}
	if !q.Validate(&sink, 3, 1, 8, true, 2) {
		t.Error("refilled outcome rejected")
	}
}

// An LVQ drained to empty must reject lookups and retires without panicking,
// and must re-anchor headSeq on the next push so lookups keep working across
// empty/refill cycles at arbitrary ordinals.
func TestLVQEmptyDrainEdges(t *testing.T) {
	q := NewLVQ(2)
	var sink detect.Sink
	if _, ok := q.Lookup(0); ok {
		t.Error("Lookup on never-filled LVQ succeeded")
	}
	if q.Retire(0) {
		t.Error("Retire on empty LVQ succeeded")
	}
	if _, ok := q.ValidateAddr(&sink, 1, 0, 4, 0x10); ok {
		t.Error("ValidateAddr on empty LVQ passed")
	}
	if sink.Total() != 1 {
		t.Fatalf("sink.Total = %d, want 1", sink.Total())
	}
	// Fill, drain to empty, then refill at a much later ordinal.
	q.Push(LoadValue{Seq: 7, Addr: 0x20, Value: 1})
	if !q.Retire(7) {
		t.Fatal("retire of head entry failed")
	}
	q.Push(LoadValue{Seq: 100, Addr: 0x28, Value: 2})
	v, ok := q.Lookup(100)
	if !ok || v.Value != 2 {
		t.Fatalf("Lookup(100) = (%+v, %v) after refill", v, ok)
	}
	if _, ok := q.Lookup(7); ok {
		t.Error("stale ordinal 7 still resolvable after drain/refill")
	}
}

// Multiple pending stores to the same address must forward the youngest value
// and release in strict FIFO program order, value-checked pair by pair — the
// ordering that makes SRT's output comparison sound under write-after-write
// sequences.
func TestStoreBufferSameAddressOrdering(t *testing.T) {
	b := NewStoreBuffer(4)
	const addr = 0x40
	for i := uint64(0); i < 3; i++ {
		if !b.Push(PendingStore{Seq: i, PC: int(i), Addr: addr, Value: 100 + i}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	// Forwarding must see the youngest write, not the oldest.
	if v, ok := b.MatchYoungest(addr); !ok || v != 102 {
		t.Fatalf("MatchYoungest = (%#x, %v), want (102, true)", v, ok)
	}
	// Release order is FIFO regardless of the shared address.
	var sink detect.Sink
	for i := uint64(0); i < 3; i++ {
		rel, ok := b.CheckRelease(&sink, int64(i), i, int(i), addr, 100+i)
		if !ok {
			t.Fatalf("release %d flagged: %v", i, sink.Events())
		}
		if rel.Value != 100+i {
			t.Fatalf("release %d value = %d, want %d (FIFO order violated)", i, rel.Value, 100+i)
		}
	}
	if !sink.Empty() {
		t.Errorf("unexpected events: %v", sink.Events())
	}
	// A trailing store whose value matches an OLDER same-address pending store
	// but not the head must be flagged: pairing is positional, not by value.
	b.Push(PendingStore{Seq: 3, Addr: addr, Value: 7})
	b.Push(PendingStore{Seq: 4, Addr: addr, Value: 8})
	if _, ok := b.CheckRelease(&sink, 10, 3, 0, addr, 8); ok {
		t.Error("head release with younger store's value passed the check")
	}
	if sink.Total() != 1 {
		t.Errorf("sink.Total = %d, want 1", sink.Total())
	}
}
