package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"blackjack/internal/fault"
	"blackjack/internal/obs"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
)

// Intermittent and control-flow faults are timing-sensitive the same way
// one-shot transients are: their outcome depends on exactly which dynamic
// uses fall inside an activation window (or which speculative wrong path a
// corrupted redirect steers into), which only bit-exact paths reproduce.
// A sampled campaign over them must match full simulation while serving
// every run from a fork or cold fallback — never the functional
// fast-forward path.
func testSampledKindFallsBack(t *testing.T, sites []fault.Site) {
	t.Helper()
	for _, s := range sites {
		if s.FFEligible() {
			t.Fatalf("site %v is fast-forward eligible; test premise broken", s)
		}
	}
	cfg := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
	full, err := Campaign(cfg, "gcc", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.FastForward = true
	cfg.CheckpointInterval = 500
	cfg.Metrics = obs.NewRegistry()
	sampled, err := Campaign(cfg, "gcc", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := outcomeTable(sampled), outcomeTable(full); got != want {
		t.Errorf("sampled campaign diverged from full simulation:\n--- sampled ---\n%s--- full ---\n%s", got, want)
	}
	if ff := cfg.Metrics.CounterValue("campaign.ff.runs"); ff != 0 {
		t.Errorf("campaign.ff.runs = %d, want 0: a timing-sensitive site took the functional fast-forward path", ff)
	}
	exact := cfg.Metrics.CounterValue("campaign.forked_runs") +
		cfg.Metrics.CounterValue("campaign.cold_runs")
	if exact == 0 {
		t.Error("no bit-exact runs despite every site being fast-forward ineligible")
	}

	// Without checkpoints the ineligible sites have nowhere to fork from, so
	// the fallback goes cold — and campaign.ff.fallback_cold must count every
	// one of those runs (the sampled campaign's visibility into how much of
	// its speedup the fault model forfeits).
	cold := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
	cold.FastForward = true
	cold.Metrics = obs.NewRegistry()
	coldSum, err := Campaign(cold, "gcc", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := outcomeTable(coldSum), outcomeTable(full); got != want {
		t.Errorf("cold-fallback sampled campaign diverged:\n--- sampled ---\n%s--- full ---\n%s", got, want)
	}
	fb := cold.Metrics.CounterValue("campaign.ff.fallback_cold")
	if fb == 0 {
		t.Error("campaign.ff.fallback_cold = 0: cold fallbacks of ineligible sites went uncounted")
	}
	if runs := cold.Metrics.CounterValue("campaign.cold_runs"); fb != runs {
		t.Errorf("campaign.ff.fallback_cold = %d, campaign.cold_runs = %d; every cold run here is a fallback", fb, runs)
	}
}

func TestSampledIntermittentCampaignFallsBack(t *testing.T) {
	cfg := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
	// A representative subset keeps three full campaigns cheap; eligibility
	// is per-site, so breadth adds runtime without adding coverage.
	sites := IntermittentSites(cfg.Machine, 64, 16, 75)
	if len(sites) > 8 {
		sites = sites[:8]
	}
	testSampledKindFallsBack(t, sites)
}

func TestSampledControlFlowCampaignFallsBack(t *testing.T) {
	cfg := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
	testSampledKindFallsBack(t, ControlFlowSites(cfg.Machine))
}

// Forked runs must be bit-identical to cold runs for the new fault kinds
// too. The interval sweep makes checkpoint boundaries land mid-window for
// the intermittent sites (a duty window spanning a fork point), and the CFE
// sites corrupt branch targets on wrong-path (later squashed) branches in
// both replays — byte-equal summaries prove neither perturbs the outcome.
func TestCampaignNewKindsByteIdenticalAcrossIntervals(t *testing.T) {
	cfg0 := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
	kinds := map[string][]fault.Site{
		// Period 48 with interval 250/1000: fork cycles fall inside both the
		// on- and off-phase of some site's window.
		"intermittent": IntermittentSites(cfg0.Machine, 48, 12, 60)[:6],
		"control-flow": ControlFlowSites(cfg0.Machine),
		"multi-bit":    MultiBitSites(cfg0.Machine)[:6],
	}
	for name, sites := range kinds {
		t.Run(name, func(t *testing.T) {
			cfg := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
			ref, err := Campaign(cfg, "gcc", sites, InjectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, interval := range []int64{250, 1000} {
				t.Run(fmt.Sprintf("interval-%d", interval), func(t *testing.T) {
					c := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
					c.CheckpointInterval = interval
					got, err := Campaign(c, "gcc", sites, InjectOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, got) {
						for i := range ref.Results {
							if !reflect.DeepEqual(ref.Results[i], got.Results[i]) {
								t.Errorf("site %d (%v): cold %+v != forked %+v",
									i, sites[i], ref.Results[i], got.Results[i])
							}
						}
					}
				})
			}
		})
	}
}

// Campaign admission must reject invalid sites before any simulation runs,
// with the typed error preserved through the wrapping.
func TestCampaignRejectsInvalidSites(t *testing.T) {
	cfg := checkpointTestConfig(pipeline.ModeBlackJack, 200)
	bad := []fault.Site{
		{Class: fault.BackendWay, Unit: 0, Way: 0, BitMask: 1},
		{Class: fault.BackendWay, Unit: 0, Way: 1, Kind: fault.KindIntermittent}, // no duty period
	}
	if _, err := Campaign(cfg, "gcc", bad, InjectOptions{}); err == nil {
		t.Fatal("campaign accepted a contradictory site")
	} else {
		var se *fault.SiteError
		if !errors.As(err, &se) {
			t.Errorf("error %v does not unwrap to *fault.SiteError", err)
		}
	}
	p, err := prog.Benchmark("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCampaignPlan(cfg, p, bad, InjectOptions{}); err == nil {
		t.Fatal("campaign plan accepted a contradictory site")
	}
}
