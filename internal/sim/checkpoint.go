package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"blackjack/internal/detect"
	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
)

// This file implements checkpoint/fork fault campaigns. A campaign over N
// sites previously ran N cold simulations, each replaying the same fault-free
// prefix before its fault first fired — for trigger-gated or late-firing
// faults, nearly the whole run. Instead, a CampaignPlan runs ONE fault-free
// warmup with a non-mutating fault.Probe attached, snapshotting the machine
// every CheckpointInterval cycles and recording each site's first activation
// cycle on the pristine trajectory. Each injection then forks from the latest
// checkpoint strictly preceding its sites' first activation; sites that can
// never activate are served straight from the warmup result. The golden
// ISA-reference state used for outcome classification is memoized in a
// goldenOracle shared by every run of the campaign.
//
// Soundness: the probe never corrupts, so every site observes the pristine
// trajectory, and a cold injected run is byte-identical to that trajectory
// until its first corruption. A checkpoint taken strictly before the earliest
// member activation is therefore on the injected run's own path, and
// pipeline.Fork resumes it bit-identically (snapshot_test.go proves this per
// cycle). Transient FireAt counters are seeded from the probe's use counts at
// the checkpoint, so one-shot faults fire on exactly the same eligible use.

// goldenOracle serves the golden model's store-stream state after k retired
// instructions, memoized per k and shared (mutex-protected) across campaign
// workers. The emulator steps forward incrementally; a request below the
// current position replays from a fresh machine — no worse than the
// one-machine-per-run cost this cache replaces.
type goldenOracle struct {
	mu   sync.Mutex
	prog *isa.Program
	g    *isa.Machine
	memo map[uint64][2]uint64 // retired count -> {signature, stores}
}

func newGoldenOracle(p *isa.Program) *goldenOracle {
	return &goldenOracle{prog: p, memo: make(map[uint64][2]uint64)}
}

// at returns the golden store signature and store count after k retired
// instructions (or the program's halt, whichever comes first).
func (o *goldenOracle) at(k uint64) (sig, stores uint64, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if v, ok := o.memo[k]; ok {
		return v[0], v[1], nil
	}
	if o.g == nil || uint64(o.g.Retired()) > k {
		g, err := isa.NewMachine(o.prog)
		if err != nil {
			return 0, 0, err
		}
		o.g = g
	}
	o.g.Run(int(k - uint64(o.g.Retired())))
	v := [2]uint64{o.g.StoreSignature(), uint64(o.g.Stores())}
	o.memo[k] = v
	return v[0], v[1], nil
}

// classify fills an InjectionResult from a finished run's statistics,
// resolving benign vs silent through the oracle. Shared by the cold, forked
// and never-fires paths so the three agree exactly.
func classify(res *InjectionResult, st *pipeline.Stats, inj *fault.Injector, oracle *goldenOracle) error {
	res.Activations = inj.Activations()
	res.Detections = st.Detections
	res.FirstEvent = st.FirstEvent
	res.Cycles = st.Cycles
	if first, ok := inj.FirstActivation(); ok && st.FirstEvent != nil {
		res.DetectionLatency = st.FirstEvent.Cycle - first
	}
	switch {
	case st.Detections > 0:
		res.Outcome = OutcomeDetected
	case st.Deadlocked:
		res.Outcome = OutcomeWedged
	default:
		sig, stores, err := oracle.at(st.Committed[0])
		if err != nil {
			return err
		}
		if st.StoreSignature == sig && st.ReleasedStores == stores {
			res.Outcome = OutcomeBenign
		} else {
			res.Outcome = OutcomeSilent
		}
	}
	return nil
}

// planCheckpoint is one warmup snapshot: the machine state, the cycle it was
// taken at, and the probe's per-site eligible-use counters at that cycle.
type planCheckpoint struct {
	cycle int64
	snap  *pipeline.Checkpoint
	uses  []uint64
}

// CampaignPlan amortizes a fault campaign's shared fault-free prefix: build
// it once per (config, mode, program, site list), then run each injection
// with Inject (or InjectRange for simultaneous multi-fault subsets).
type CampaignPlan struct {
	cfg   Config
	prog  *isa.Program
	sites []fault.Site
	opts  InjectOptions

	oracle    *goldenOracle
	probe     *fault.Probe
	cps       []planCheckpoint
	warm      pipeline.Stats
	warmValid bool
}

// NewCampaignPlan runs the fault-free warmup (one full simulation with a
// probe attached) and snapshots it every cfg.CheckpointInterval cycles. An
// interval <= 0 takes no snapshots — every injection then runs cold, but the
// never-fires shortcut and the memoized oracle still apply.
func NewCampaignPlan(cfg Config, p *isa.Program, sites []fault.Site, opts InjectOptions) (*CampaignPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("sim: no fault sites")
	}
	pl := &CampaignPlan{
		cfg: cfg, prog: p, sites: sites, opts: opts,
		oracle: newGoldenOracle(p),
		probe:  &fault.Probe{Sites: sites, SplitPayload: opts.SplitPayload},
	}
	pl.warmup()
	return pl, nil
}

// warmup runs the pristine simulation. A panic during warmup (a wedged
// simulator without any fault would be a bug, but campaigns must be robust)
// just disables the plan: every injection falls back to a cold run.
func (pl *CampaignPlan) warmup() {
	defer func() {
		if r := recover(); r != nil {
			pl.cps = nil
			pl.warmValid = false
		}
	}()
	wopts := []pipeline.Option{pipeline.WithInjector(pl.probe)}
	if pl.cfg.Ctx != nil {
		// Honor campaign-level shutdown during the warmup too; the
		// injections that follow observe the same cancellation and abort.
		wopts = append(wopts, pipeline.WithRunContext(pl.cfg.Ctx))
	}
	m, err := pipeline.New(pl.cfg.Machine, pl.cfg.Mode, pl.prog, wopts...)
	if err != nil {
		return
	}
	pl.probe.Now = m.Cycle
	st := m.RunWithCheckpoints(pl.cfg.MaxInstructions, pl.cfg.CheckpointInterval, func(live *pipeline.Machine) {
		snap := live.Snapshot()
		pl.cps = append(pl.cps, planCheckpoint{
			cycle: snap.Cycle(),
			snap:  snap,
			uses:  pl.probe.UsesSnapshot(),
		})
	})
	if st.Interrupted {
		pl.cps = nil
		pl.warmValid = false
		return
	}
	pl.warm = *st
	pl.warmValid = true
}

// NumSites returns the number of sites the plan was built over.
func (pl *CampaignPlan) NumSites() int { return len(pl.sites) }

// Checkpoints returns how many warmup snapshots the plan holds.
func (pl *CampaignPlan) Checkpoints() int { return len(pl.cps) }

// Inject classifies site i alone, forking from the best checkpoint.
func (pl *CampaignPlan) Inject(i int) (InjectionResult, error) {
	if i < 0 || i >= len(pl.sites) {
		return InjectionResult{}, fmt.Errorf("sim: site index %d out of range [0,%d)", i, len(pl.sites))
	}
	r, _, _, err := pl.injectCtx(nil, i, i+1, nil)
	return r, err
}

// InjectRange classifies the simultaneous (uncorrelated) faults
// sites[lo:hi] — the multi-error scenario of Section 4.5 — forking from the
// latest checkpoint preceding the subset's earliest possible activation.
func (pl *CampaignPlan) InjectRange(lo, hi int) (InjectionResult, error) {
	if lo < 0 || hi > len(pl.sites) || lo >= hi {
		return InjectionResult{}, fmt.Errorf("sim: site range [%d,%d) invalid for %d sites", lo, hi, len(pl.sites))
	}
	r, _, _, err := pl.injectCtx(nil, lo, hi, nil)
	return r, err
}

// injectCtx runs the subset sites[lo:hi] with a reusable sink (nil: the
// machine allocates its own) under an optional run context (nil:
// unbudgeted). It reports which path served the run — warm, forked (with
// the fork cycle) or cold — so callers can record and journal path-choice
// metrics that replay identically on resume.
func (pl *CampaignPlan) injectCtx(ctx context.Context, lo, hi int, sink *detect.Sink) (InjectionResult, runPath, int64, error) {
	subset := pl.sites[lo:hi]
	minFire := int64(-1)
	if pl.warmValid {
		fires := false
		for i := lo; i < hi; i++ {
			if c := pl.probe.FireCycle(i); c >= 0 && (!fires || c < minFire) {
				minFire, fires = c, true
			}
		}
		if !fires {
			// No member can ever corrupt a value: the injected run would
			// replay the warmup cycle for cycle. Serve the warmup's result.
			res := InjectionResult{Site: subset[0], Mode: pl.cfg.Mode, DetectionLatency: -1}
			if err := classify(&res, &pl.warm, &fault.Injector{}, pl.oracle); err != nil {
				return InjectionResult{}, "", 0, err
			}
			return res, pathWarm, 0, nil
		}
	}
	cp := pl.latestBefore(minFire)
	if cp == nil {
		r, err := injectSites(ctx, pl.cfg, pl.prog, subset, pl.opts, sink, pl.oracle)
		return r, pathCold, 0, err
	}
	r, err := pl.forkRun(ctx, cp, lo, hi, sink)
	return r, pathForked, cp.cycle, err
}

// latestBefore returns the newest checkpoint strictly before the given
// cycle (the fork point must precede the first corruption), or nil.
func (pl *CampaignPlan) latestBefore(cycle int64) *planCheckpoint {
	if cycle < 0 {
		return nil
	}
	j := sort.Search(len(pl.cps), func(i int) bool { return pl.cps[i].cycle >= cycle })
	if j == 0 {
		return nil
	}
	return &pl.cps[j-1]
}

// forkRun resumes the warmup from a checkpoint with a real injector
// installed, seeded so transient use counting continues where the probe's
// left off. Mirrors injectSites' classification, budget and panic handling
// exactly.
func (pl *CampaignPlan) forkRun(ctx context.Context, cp *planCheckpoint, lo, hi int, sink *detect.Sink) (res InjectionResult, err error) {
	subset := pl.sites[lo:hi]
	inj := &fault.Injector{Sites: subset, SplitPayload: pl.opts.SplitPayload}
	inj.SeedUses(cp.uses[lo:hi])
	mopts := []pipeline.Option{pipeline.WithInjector(inj)}
	if ctx != nil {
		mopts = append(mopts, pipeline.WithRunContext(ctx))
	}
	if sink != nil {
		sink.Reset()
		mopts = append(mopts, pipeline.WithSink(sink))
	}
	m := pipeline.Fork(cp.snap, mopts...)
	inj.Now = m.Cycle
	res = InjectionResult{Site: subset[0], Mode: pl.cfg.Mode, DetectionLatency: -1}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = OutcomeWedged
			res.Activations = inj.Activations()
			err = nil
		}
	}()
	st := m.Run(pl.cfg.MaxInstructions)
	if st.Interrupted {
		return InjectionResult{}, &InterruptedError{
			Benchmark: pl.prog.Name, Mode: pl.cfg.Mode, Cycle: st.Cycles, Cause: ctx.Err(),
		}
	}
	if cerr := classify(&res, st, inj, pl.oracle); cerr != nil {
		return InjectionResult{}, cerr
	}
	return res, nil
}
