package sim

import (
	"context"
	"fmt"
	"sort"

	"blackjack/internal/detect"
	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
)

// This file implements checkpoint/fork fault campaigns. A campaign over N
// sites previously ran N cold simulations, each replaying the same fault-free
// prefix before its fault first fired — for trigger-gated or late-firing
// faults, nearly the whole run. Instead, a CampaignPlan runs ONE fault-free
// warmup with a non-mutating fault.Probe attached, snapshotting the machine
// every CheckpointInterval cycles and recording each site's first activation
// cycle on the pristine trajectory. Each injection then forks from the latest
// checkpoint strictly preceding its sites' first activation; sites that can
// never activate are served straight from the warmup result. The golden
// ISA-reference state used for outcome classification is memoized in a
// goldenOracle shared by every run of the campaign.
//
// Soundness: the probe never corrupts, so every site observes the pristine
// trajectory, and a cold injected run is byte-identical to that trajectory
// until its first corruption. A checkpoint taken strictly before the earliest
// member activation is therefore on the injected run's own path, and
// pipeline.Fork resumes it bit-identically (snapshot_test.go proves this per
// cycle). Transient FireAt counters are seeded from the probe's use counts at
// the checkpoint, so one-shot faults fire on exactly the same eligible use.
//
// With Config.FastForward the plan goes further (sampled simulation): the
// fault-free prefix before a site's activation window is executed on the
// golden ISA emulator — roughly two orders of magnitude faster than the
// pipeline — and a warm cycle-accurate machine is seeded from the resulting
// architectural state one warmup lead of instructions before the window
// (pipeline.NewFromArch). Runs stop at their first detection event, whose
// outcome is decided. This trades the forked path's bit-exactness for
// speed: outcome tables and detection classifications still match full
// simulation (diffcheck.CompareSampledCampaign verifies this per campaign),
// but cycle counts, activation totals and detection latencies of
// fast-forwarded runs are relative to the simulated window.

// goldenOracle serves golden-model state along one memoized functional
// trajectory (isa.Trajectory), shared across campaign workers: the
// store-stream signature for outcome classification, and full architectural
// snapshots for fast-forward handoffs. The trajectory's snapshot cache makes
// repeated rewinds cheap — no per-run machine allocation, no replay from
// instruction 0 once a nearby snapshot exists.
type goldenOracle struct {
	tr *isa.Trajectory
}

func newGoldenOracle(p *isa.Program) *goldenOracle {
	return &goldenOracle{tr: isa.NewTrajectory(p)}
}

// at returns the golden store signature and store count after k retired
// instructions (or the program's halt, whichever comes first).
func (o *goldenOracle) at(k uint64) (sig, stores uint64, err error) {
	return o.tr.SigAt(k)
}

// archAt returns the full architectural state after k retired instructions —
// the fast-forward handoff state. The snapshot is shared; do not mutate.
func (o *goldenOracle) archAt(k uint64) (*isa.ArchState, error) {
	return o.tr.At(k)
}

// classify fills an InjectionResult from a finished run's statistics,
// resolving benign vs silent through the oracle. Shared by the cold, forked
// and never-fires paths so the three agree exactly.
func classify(res *InjectionResult, st *pipeline.Stats, inj *fault.Injector, oracle *goldenOracle) error {
	res.Activations = inj.Activations()
	res.Detections = st.Detections
	res.FirstEvent = st.FirstEvent
	res.Cycles = st.Cycles
	if first, ok := inj.FirstActivation(); ok && st.FirstEvent != nil {
		res.DetectionLatency = st.FirstEvent.Cycle - first
	}
	switch {
	case st.Detections > 0:
		res.Outcome = OutcomeDetected
	case st.Deadlocked:
		res.Outcome = OutcomeWedged
	default:
		sig, stores, err := oracle.at(st.Committed[0])
		if err != nil {
			return err
		}
		if st.StoreSignature == sig && st.ReleasedStores == stores {
			res.Outcome = OutcomeBenign
		} else {
			res.Outcome = OutcomeSilent
		}
	}
	return nil
}

// planCheckpoint is one warmup snapshot: the machine state, the cycle it was
// taken at, and the probe's per-site eligible-use counters at that cycle.
type planCheckpoint struct {
	cycle int64
	snap  *pipeline.Checkpoint
	uses  []uint64
}

// ffMark is one fast-forward anchor on the warmup trajectory: at warmup
// cycle `cycle`, both threads had committed at least `instrs` instructions
// and the probe had counted `uses` eligible uses per site. Marks map a
// fault's first-activation cycle back to a committed-instruction handoff
// target, and seed transient use counters at that target. Unlike
// planCheckpoints, marks hold no machine state — they are three words plus
// a small slice, so a fast-forward campaign without checkpoints stays
// near-zero-memory.
type ffMark struct {
	cycle  int64
	instrs uint64
	uses   []uint64
}

// ffMarkInterval is the mark cadence (in cycles) used when fast-forward is
// on but checkpointing is off; with checkpointing on, marks ride the
// checkpoint cadence.
const ffMarkInterval = 500

// CampaignPlan amortizes a fault campaign's shared fault-free prefix: build
// it once per (config, mode, program, site list), then run each injection
// with Inject (or InjectRange for simultaneous multi-fault subsets).
type CampaignPlan struct {
	cfg   Config
	prog  *isa.Program
	sites []fault.Site
	opts  InjectOptions

	oracle    *goldenOracle
	probe     *fault.Probe
	cps       []planCheckpoint
	marks     []ffMark
	warm      pipeline.Stats
	warmValid bool
}

// NewCampaignPlan runs the fault-free warmup (one full simulation with a
// probe attached) and snapshots it every cfg.CheckpointInterval cycles. An
// interval <= 0 takes no snapshots — every injection then runs cold, but the
// never-fires shortcut and the memoized oracle still apply.
func NewCampaignPlan(cfg Config, p *isa.Program, sites []fault.Site, opts InjectOptions) (*CampaignPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("sim: no fault sites")
	}
	if err := fault.ValidateSites(sites); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	pl := &CampaignPlan{
		cfg: cfg, prog: p, sites: sites, opts: opts,
		oracle: newGoldenOracle(p),
		probe:  &fault.Probe{Sites: sites, SplitPayload: opts.SplitPayload},
	}
	pl.warmup()
	return pl, nil
}

// warmup runs the pristine simulation. A panic during warmup (a wedged
// simulator without any fault would be a bug, but campaigns must be robust)
// just disables the plan: every injection falls back to a cold run.
func (pl *CampaignPlan) warmup() {
	defer func() {
		if r := recover(); r != nil {
			pl.cps = nil
			pl.marks = nil
			pl.warmValid = false
		}
	}()
	wopts := []pipeline.Option{pipeline.WithInjector(pl.probe)}
	if pl.cfg.Ctx != nil {
		// Honor campaign-level shutdown during the warmup too; the
		// injections that follow observe the same cancellation and abort.
		wopts = append(wopts, pipeline.WithRunContext(pl.cfg.Ctx))
	}
	m, err := pipeline.New(pl.cfg.Machine, pl.cfg.Mode, pl.prog, wopts...)
	if err != nil {
		return
	}
	pl.probe.Now = m.Cycle
	interval := pl.cfg.CheckpointInterval
	snapshots := interval > 0
	if !snapshots && pl.cfg.FastForward {
		interval = ffMarkInterval
	}
	if pl.cfg.FastForward {
		// Implicit reset-state mark, so every positive handoff target has a
		// use-counter seed at or below it.
		pl.marks = append(pl.marks, ffMark{uses: make([]uint64, len(pl.sites))})
	}
	st := m.RunWithCheckpoints(pl.cfg.MaxInstructions, interval, func(live *pipeline.Machine) {
		if snapshots {
			snap := live.Snapshot()
			pl.cps = append(pl.cps, planCheckpoint{
				cycle: snap.Cycle(),
				snap:  snap,
				uses:  pl.probe.UsesSnapshot(),
			})
		}
		if pl.cfg.FastForward {
			lead, trail := live.CommittedInstrs()
			pl.marks = append(pl.marks, ffMark{
				cycle:  live.Cycle(),
				instrs: min(lead, trail),
				uses:   pl.probe.UsesSnapshot(),
			})
		}
	})
	if st.Interrupted {
		pl.cps = nil
		pl.marks = nil
		pl.warmValid = false
		return
	}
	pl.warm = *st
	pl.warmValid = true
}

// NumSites returns the number of sites the plan was built over.
func (pl *CampaignPlan) NumSites() int { return len(pl.sites) }

// Checkpoints returns how many warmup snapshots the plan holds.
func (pl *CampaignPlan) Checkpoints() int { return len(pl.cps) }

// Inject classifies site i alone, choosing the cheapest sound path:
// warm-served, fast-forwarded, checkpoint-forked or cold.
func (pl *CampaignPlan) Inject(i int) (InjectionResult, error) {
	if i < 0 || i >= len(pl.sites) {
		return InjectionResult{}, fmt.Errorf("sim: site index %d out of range [0,%d)", i, len(pl.sites))
	}
	r, _, err := pl.injectCtx(nil, i, i+1, nil)
	return r, err
}

// InjectRange classifies the simultaneous (uncorrelated) faults
// sites[lo:hi] — the multi-error scenario of Section 4.5 — forking from the
// latest checkpoint preceding the subset's earliest possible activation.
func (pl *CampaignPlan) InjectRange(lo, hi int) (InjectionResult, error) {
	if lo < 0 || hi > len(pl.sites) || lo >= hi {
		return InjectionResult{}, fmt.Errorf("sim: site range [%d,%d) invalid for %d sites", lo, hi, len(pl.sites))
	}
	r, _, err := pl.injectCtx(nil, lo, hi, nil)
	return r, err
}

// injectCtx runs the subset sites[lo:hi] with a reusable sink (nil: the
// machine allocates its own) under an optional run context (nil:
// unbudgeted). It reports which path served the run — warm, fast-forwarded,
// forked or cold, with that path's parameters — so callers can record and
// journal path-choice metrics that replay identically on resume.
//
// Path policy: a subset no member of which can ever corrupt is served from
// the warmup result. Otherwise, with fast-forward on, the functional model
// skips to a handoff one warmup lead before the subset's earliest
// activation cycle — the cheapest path, since skipped instructions cost
// ~1% of cycle-accurate ones. When no usable handoff exists (activation too
// close to reset, or the warmup failed), the plan falls back to a
// checkpoint fork, then to a cold run.
func (pl *CampaignPlan) injectCtx(ctx context.Context, lo, hi int, sink *detect.Sink) (InjectionResult, pathInfo, error) {
	subset := pl.sites[lo:hi]
	minFire := int64(-1)
	if pl.warmValid {
		fires := false
		for i := lo; i < hi; i++ {
			if c := pl.probe.FireCycle(i); c >= 0 && (!fires || c < minFire) {
				minFire, fires = c, true
			}
		}
		if !fires {
			// No member can ever corrupt a value: the injected run would
			// replay the warmup cycle for cycle. Serve the warmup's result.
			res := InjectionResult{Site: subset[0], Mode: pl.cfg.Mode, DetectionLatency: -1}
			if err := classify(&res, &pl.warm, &fault.Injector{}, pl.oracle); err != nil {
				return InjectionResult{}, pathInfo{}, err
			}
			return res, pathInfo{Path: pathWarm}, nil
		}
		if pl.cfg.FastForward && pl.ffEligible(lo, hi) {
			if handoff, uses, ok := pl.ffHandoff(minFire); ok {
				r, early, err := pl.ffRun(ctx, lo, hi, handoff, uses, sink)
				return r, pathInfo{Path: pathFF, FFSkipped: int64(handoff), EarlyStop: early}, err
			}
		}
	}
	cp := pl.latestBefore(minFire)
	if cp == nil {
		r, early, err := injectSites(ctx, pl.cfg, pl.prog, subset, pl.opts, sink, pl.oracle, pl.cfg.FastForward)
		return r, pathInfo{Path: pathCold, EarlyStop: early}, err
	}
	r, early, err := pl.forkRun(ctx, cp, lo, hi, sink)
	return r, pathInfo{Path: pathForked, ForkCycle: cp.cycle, EarlyStop: early}, err
}

// ffEligible reports whether sites[lo:hi] may be served by fast-forward.
// Timing-sensitive kinds are excluded (fault.Site.FFEligible): a one-shot
// transient's outcome depends on the exact dynamic use its shot corrupts, an
// intermittent's duty windows are indexed by exact eligible-use counts, and
// a control-flow error's outcome depends on speculative wrong-path state —
// microarchitectural detail only the bit-exact paths (fork, cold)
// reproduce. Persistent faults (always-on, trigger-gated, arming,
// multi-bit) corrupt every eligible use once active, so their
// classification is robust to the handoff's timing perturbation — the
// property diffcheck's sampled mode verifies per campaign.
func (pl *CampaignPlan) ffEligible(lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if !pl.sites[i].FFEligible() {
			return false
		}
	}
	return true
}

// ffHandoff maps a subset's earliest possible activation cycle to a
// fast-forward handoff: the committed-instruction target the functional
// model runs to, and the transient use-counter seed at (or just below) that
// target. Reports ok=false when the activation is too close to reset for a
// full warmup lead — the fork/cold paths handle those.
//
// The anchor is the latest warmup mark strictly before minFire: every
// instruction committed by then is committed (by both threads) before the
// fault can corrupt anything, so handing off warmup-lead instructions
// earlier leaves the whole activation window plus the lead cycle-accurate.
// Use counters are seeded from the latest mark at or below the target —
// an undercount of at most one mark interval, which the warmup lead
// absorbs: a seeded transient fires within the cycle-accurate window,
// merely a few eligible uses later than the nominal count. Outcome-table
// equivalence under this seeding is what diffcheck's sampled mode verifies.
func (pl *CampaignPlan) ffHandoff(minFire int64) (handoff uint64, uses []uint64, ok bool) {
	if minFire < 0 || len(pl.marks) == 0 {
		return 0, nil, false
	}
	j := sort.Search(len(pl.marks), func(i int) bool { return pl.marks[i].cycle >= minFire })
	if j == 0 {
		return 0, nil, false
	}
	anchor := pl.marks[j-1].instrs
	lead := uint64(pl.cfg.ffWarmup())
	if anchor <= lead {
		return 0, nil, false
	}
	target := anchor - lead
	k := sort.Search(len(pl.marks), func(i int) bool { return pl.marks[i].instrs > target })
	if k == 0 {
		return 0, nil, false
	}
	return target, pl.marks[k-1].uses, true
}

// ffRun serves one injection by sampled simulation: functional golden state
// at the handoff, a warm arch-seeded machine, and a cycle-accurate run over
// just the remainder — stopping at the first detection event, whose outcome
// is already decided. Classification matches injectSites/forkRun exactly;
// Cycles, Activations and DetectionLatency are window-relative.
func (pl *CampaignPlan) ffRun(ctx context.Context, lo, hi int, handoff uint64, uses []uint64, sink *detect.Sink) (res InjectionResult, earlyStop bool, err error) {
	subset := pl.sites[lo:hi]
	arch, err := pl.oracle.archAt(handoff)
	if err != nil {
		return InjectionResult{}, false, err
	}
	inj := &fault.Injector{Sites: subset, SplitPayload: pl.opts.SplitPayload}
	inj.SeedUses(uses[lo:hi])
	mopts := []pipeline.Option{pipeline.WithInjector(inj), pipeline.WithStopOnDetect()}
	if ctx != nil {
		mopts = append(mopts, pipeline.WithRunContext(ctx))
	}
	if sink != nil {
		sink.Reset()
		mopts = append(mopts, pipeline.WithSink(sink))
	}
	m, err := pipeline.NewFromArch(pl.cfg.Machine, pl.cfg.Mode, pl.prog, arch, mopts...)
	if err != nil {
		return InjectionResult{}, false, err
	}
	inj.Now = m.Cycle
	res = InjectionResult{Site: subset[0], Mode: pl.cfg.Mode, DetectionLatency: -1}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = OutcomeWedged
			res.Activations = inj.Activations()
			err = nil
		}
	}()
	st := m.Run(pl.cfg.MaxInstructions)
	if st.Interrupted {
		return InjectionResult{}, false, &InterruptedError{
			Benchmark: pl.prog.Name, Mode: pl.cfg.Mode, Cycle: st.Cycles, Cause: ctx.Err(),
		}
	}
	if cerr := classify(&res, st, inj, pl.oracle); cerr != nil {
		return InjectionResult{}, false, cerr
	}
	return res, st.StoppedOnDetect, nil
}

// latestBefore returns the newest checkpoint strictly before the given
// cycle (the fork point must precede the first corruption), or nil.
func (pl *CampaignPlan) latestBefore(cycle int64) *planCheckpoint {
	if cycle < 0 {
		return nil
	}
	j := sort.Search(len(pl.cps), func(i int) bool { return pl.cps[i].cycle >= cycle })
	if j == 0 {
		return nil
	}
	return &pl.cps[j-1]
}

// forkRun resumes the warmup from a checkpoint with a real injector
// installed, seeded so transient use counting continues where the probe's
// left off. Mirrors injectSites' classification, budget and panic handling
// exactly. Under fast-forward the fork also stops at its first detection —
// same sampled-campaign semantics, applied to the fork fallback.
func (pl *CampaignPlan) forkRun(ctx context.Context, cp *planCheckpoint, lo, hi int, sink *detect.Sink) (res InjectionResult, earlyStop bool, err error) {
	subset := pl.sites[lo:hi]
	inj := &fault.Injector{Sites: subset, SplitPayload: pl.opts.SplitPayload}
	inj.SeedUses(cp.uses[lo:hi])
	mopts := []pipeline.Option{pipeline.WithInjector(inj)}
	if pl.cfg.FastForward {
		mopts = append(mopts, pipeline.WithStopOnDetect())
	}
	if ctx != nil {
		mopts = append(mopts, pipeline.WithRunContext(ctx))
	}
	if sink != nil {
		sink.Reset()
		mopts = append(mopts, pipeline.WithSink(sink))
	}
	m := pipeline.Fork(cp.snap, mopts...)
	inj.Now = m.Cycle
	res = InjectionResult{Site: subset[0], Mode: pl.cfg.Mode, DetectionLatency: -1}
	defer func() {
		if r := recover(); r != nil {
			res.Outcome = OutcomeWedged
			res.Activations = inj.Activations()
			err = nil
		}
	}()
	st := m.Run(pl.cfg.MaxInstructions)
	if st.Interrupted {
		return InjectionResult{}, false, &InterruptedError{
			Benchmark: pl.prog.Name, Mode: pl.cfg.Mode, Cycle: st.Cycles, Cause: ctx.Err(),
		}
	}
	if cerr := classify(&res, st, inj, pl.oracle); cerr != nil {
		return InjectionResult{}, false, cerr
	}
	return res, st.StoppedOnDetect, nil
}
