package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blackjack/internal/obs"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
)

// sampledTestConfig is a full-depth campaign config: the budget is long
// enough for LatentSites' wear-out faults to arm thousands of eligible uses
// in, giving fast-forward a real prefix to skip.
func sampledTestConfig(mode pipeline.Mode, par int) Config {
	cfg := Default(mode, 30_000)
	cfg.Machine.MaxCycles = 200_000
	cfg.Parallel = par
	return cfg
}

// outcomeTable reduces a summary to the figures sampled simulation promises
// to preserve exactly: per-site outcome class and whether the fault
// activated. Cycle counts and latencies of fast-forwarded runs are
// window-relative by design, so they are deliberately absent here.
func outcomeTable(sum *CampaignSummary) string {
	var b strings.Builder
	for _, r := range sum.Results {
		fmt.Fprintf(&b, "%v|%v|activated=%v\n", r.Site, r.Outcome, r.Activations > 0)
	}
	fmt.Fprintf(&b, "counts=%v active=%d detectedOfActive=%d\n",
		sum.Counts, sum.ActiveRuns, sum.DetectedOfActive)
	return b.String()
}

// The tentpole's soundness contract: a sampled campaign (FastForward) must
// produce the same outcome table as full simulation — every site classified
// identically, every activated flag equal — while actually taking the
// fast-forward path for the late-arming sites (not silently falling back
// to cold runs).
func TestSampledCampaignMatchesFullOutcomes(t *testing.T) {
	for _, mode := range []pipeline.Mode{pipeline.ModeBlackJack, pipeline.ModeSRT} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := sampledTestConfig(mode, 4)
			sites := LatentSites(cfg.Machine)
			opts := InjectOptions{SplitPayload: true}
			full, err := Campaign(cfg, "gcc", sites, opts)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FastForward = true
			cfg.Metrics = obs.NewRegistry()
			sampled, err := Campaign(cfg, "gcc", sites, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := outcomeTable(sampled), outcomeTable(full); got != want {
				t.Errorf("sampled outcome table diverged from full simulation:\n--- sampled ---\n%s--- full ---\n%s", got, want)
			}
			if ff := cfg.Metrics.CounterValue("campaign.ff.runs"); ff == 0 {
				t.Error("campaign.ff.runs = 0: fast-forward path never engaged")
			}
			if stops := cfg.Metrics.CounterValue("campaign.ff.early_stops"); stops == 0 {
				t.Error("campaign.ff.early_stops = 0: no run stopped on first detection")
			}
		})
	}
}

// Sampled campaigns must keep the campaign-level determinism guarantee:
// identical summary and identical exported metrics at every worker count
// (per-worker registries merged commutatively).
func TestSampledCampaignDeterministicAcrossWorkers(t *testing.T) {
	run := func(par int) (string, string) {
		cfg := sampledTestConfig(pipeline.ModeBlackJack, par)
		cfg.FastForward = true
		cfg.Metrics = obs.NewRegistry()
		sites := LatentSites(cfg.Machine)
		sum, err := Campaign(cfg, "gcc", sites, InjectOptions{SplitPayload: true})
		if err != nil {
			t.Fatal(err)
		}
		return summaryString(sum), metricsText(t, cfg.Metrics)
	}
	tab1, met1 := run(1)
	tab8, met8 := run(8)
	if tab1 != tab8 {
		t.Errorf("sampled summary differs between Parallel=1 and Parallel=8:\n--- serial ---\n%s--- parallel ---\n%s", tab1, tab8)
	}
	if met1 != met8 {
		t.Errorf("sampled metrics differ between Parallel=1 and Parallel=8:\n--- serial ---\n%s--- parallel ---\n%s", met1, met8)
	}
}

// A sampled campaign's journal must resume byte-identically: path choices
// (fast-forward vs fallback) and window-relative figures are journaled, so
// a resumed campaign reports the same table and metrics without re-running
// completed sites.
func TestSampledCampaignJournalResume(t *testing.T) {
	newCfg := func() Config {
		cfg := sampledTestConfig(pipeline.ModeBlackJack, 3)
		cfg.FastForward = true
		cfg.Metrics = obs.NewRegistry()
		return cfg
	}
	refCfg := newCfg()
	sites := LatentSites(refCfg.Machine)
	opts := InjectOptions{SplitPayload: true}
	refSum, err := Campaign(refCfg, "gcc", sites, opts)
	if err != nil {
		t.Fatal(err)
	}
	refTable := summaryString(refSum)
	refMetrics := metricsText(t, refCfg.Metrics)

	dir := t.TempDir()
	full := filepath.Join(dir, "sampled.journal")
	fullCfg := newCfg()
	jr, err := OpenCampaignJournal(full, fullCfg, "gcc", sites, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullCfg.Journal = jr
	if _, err := Campaign(fullCfg, "gcc", sites, opts); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 1+len(sites) {
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+len(sites))
	}
	// Keep the header plus half the records — a campaign killed mid-flight.
	crashed := filepath.Join(dir, "crashed.journal")
	if err := os.WriteFile(crashed, []byte(strings.Join(lines[:1+len(sites)/2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := newCfg()
	jr2, err := OpenCampaignJournal(crashed, cfg, "gcc", sites, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	cfg.Journal = jr2
	sum, err := Campaign(cfg, "gcc", sites, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != len(sites)/2 {
		t.Errorf("Resumed = %d, want %d", sum.Resumed, len(sites)/2)
	}
	if got := summaryString(sum); got != refTable {
		t.Errorf("resumed sampled table differs:\n--- resumed ---\n%s--- reference ---\n%s", got, refTable)
	}
	if got := metricsText(t, cfg.Metrics); got != refMetrics {
		t.Errorf("resumed sampled metrics differ:\n--- resumed ---\n%s--- reference ---\n%s", got, refMetrics)
	}
	// A journal written without FastForward must refuse to resume a sampled
	// campaign: the run records mean different things.
	plain := newCfg()
	plain.FastForward = false
	if _, err := OpenCampaignJournal(crashed, plain, "gcc", sites, opts); err == nil {
		t.Error("full-simulation config resumed a sampled journal")
	}
}

// Transients are excluded from the fast-forward path (their one-shot outcome
// depends on the exact dynamic use corrupted, which only bit-exact paths
// reproduce), but a sampled campaign over them must still match full
// simulation — served by fork/cold fallbacks with stop-on-detect.
func TestSampledTransientCampaignFallsBack(t *testing.T) {
	cfg := checkpointTestConfig(pipeline.ModeBlackJack, 1500)
	sites := mixedSites(cfg.Machine)
	full, err := Campaign(cfg, "gcc", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.FastForward = true
	cfg.CheckpointInterval = 500
	cfg.Metrics = obs.NewRegistry()
	sampled, err := Campaign(cfg, "gcc", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := outcomeTable(sampled), outcomeTable(full); got != want {
		t.Errorf("sampled transient campaign diverged:\n--- sampled ---\n%s--- full ---\n%s", got, want)
	}
	// Every transient subset must have taken a bit-exact path.
	ff := cfg.Metrics.CounterValue("campaign.ff.runs")
	exact := cfg.Metrics.CounterValue("campaign.forked_runs") +
		cfg.Metrics.CounterValue("campaign.cold_runs")
	if exact == 0 {
		t.Error("no bit-exact fallback runs despite transient sites")
	}
	t.Logf("ff=%d exact=%d warm=%d", ff, exact, cfg.Metrics.CounterValue("campaign.warm_served"))
}

// RunSampledProgram skips the fault-free functional prefix and must agree
// with RunProgram on everything the handoff leaves observable: a fault-free
// machine stays fault-free (zero detections, output matches the golden
// model) from any handoff point.
func TestRunSampledProgramFaultFree(t *testing.T) {
	cfg := Default(pipeline.ModeBlackJack, 4000)
	p, err := prog.Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	for _, skip := range []int{0, 1000, 3999, 10_000} {
		res, err := RunSampledProgram(cfg, p, skip)
		if err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		if res.Stats.Detections != 0 {
			t.Errorf("skip %d: %d false detections", skip, res.Stats.Detections)
		}
	}
	if _, err := RunSampledProgram(cfg, p, -1); err == nil {
		t.Error("negative skip accepted")
	}
}
