package sim

import (
	"fmt"
	"strings"
	"testing"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
)

// summaryString serializes a campaign summary down to every per-site field so
// two campaigns can be compared byte-for-byte.
func summaryString(sum *CampaignSummary) string {
	var b strings.Builder
	for _, r := range sum.Results {
		fmt.Fprintf(&b, "%v|%v|%d|%d|%v\n",
			r.Site, r.Outcome, r.Activations, r.DetectionLatency, r.FirstEvent)
	}
	fmt.Fprintf(&b, "active=%d counts=%v\n", sum.ActiveRuns, sum.Counts)
	return b.String()
}

// A campaign fans its sites out across cfg.Parallel workers; the summary has
// to come back in site order with identical classifications no matter how
// many workers ran it.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	sites := []fault.Site{
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9},
		{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 1, BitMask: 1 << 9},
		{Class: fault.FrontendWay, Way: 0, Field: fault.FieldRs1},
		{Class: fault.FrontendWay, Way: 2, Field: fault.FieldRs2},
		{Class: fault.PayloadRAM, Slot: 3, Field: fault.FieldImm, BitMask: 2},
	}

	run := func(par int) string {
		cfg := Default(pipeline.ModeBlackJack, 2500)
		cfg.Parallel = par
		sum, err := Campaign(cfg, "crafty", sites, InjectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return summaryString(sum)
	}

	if a, b := run(1), run(8); a != b {
		t.Errorf("campaign output differs between Parallel=1 and Parallel=8:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
