package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/obs"
	"blackjack/internal/pipeline"
)

// resilienceSites is a small campaign with a mix of firing and latent
// faults, cheap enough to run many times per test.
func resilienceSites() []fault.Site {
	return []fault.Site{
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9},
		{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 1, BitMask: 1 << 9},
		{Class: fault.FrontendWay, Way: 0, Field: fault.FieldRs1},
		{Class: fault.FrontendWay, Way: 2, Field: fault.FieldRs2},
		{Class: fault.PayloadRAM, Slot: 3, Field: fault.FieldImm, BitMask: 2},
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 1, BitMask: 1 << 4},
		{Class: fault.RegisterFile, Reg: 200, BitMask: 1 << 5},
	}
}

func metricsText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// withTestHook installs the campaign test seam for the duration of the test.
// Campaigns in this package's tests run sequentially, so the global is safe.
func withTestHook(t *testing.T, hook func(ctx context.Context, i int) error) {
	t.Helper()
	campaignTestHook = hook
	t.Cleanup(func() { campaignTestHook = nil })
}

// AC3: a campaign with one artificially panicking and one livelocked site
// completes, quarantines exactly those two runs with repro commands, and
// its table/metrics for the remaining sites are byte-identical to a clean
// campaign over those sites.
func TestCampaignQuarantinesPanicAndLivelock(t *testing.T) {
	sites := resilienceSites()
	const panicIdx, hangIdx = 2, 5

	for _, ckpt := range []int64{0, 500} {
		t.Run(fmt.Sprintf("ckpt=%d", ckpt), func(t *testing.T) {
			// Reference: a clean campaign over the sites that stay healthy.
			var clean []fault.Site
			for i, s := range sites {
				if i != panicIdx && i != hangIdx {
					clean = append(clean, s)
				}
			}
			cleanCfg := Default(pipeline.ModeBlackJack, 2000)
			cleanCfg.CheckpointInterval = ckpt
			cleanCfg.Metrics = obs.NewRegistry()
			cleanSum, err := Campaign(cleanCfg, "crafty", clean, InjectOptions{})
			if err != nil {
				t.Fatal(err)
			}

			withTestHook(t, func(ctx context.Context, i int) error {
				switch i {
				case panicIdx:
					panic("poisoned site")
				case hangIdx:
					<-ctx.Done() // livelock until the run budget fires
					return &InterruptedError{Benchmark: "crafty", Mode: pipeline.ModeBlackJack, Cause: ctx.Err()}
				}
				return nil
			})
			cfg := Default(pipeline.ModeBlackJack, 2000)
			cfg.CheckpointInterval = ckpt
			cfg.Parallel = 4
			cfg.Metrics = obs.NewRegistry()
			cfg.Resilience = Resilience{Isolate: true, RunTimeout: 30 * time.Millisecond, Retries: 1}
			sum, err := Campaign(cfg, "crafty", sites, InjectOptions{})
			if err != nil {
				t.Fatalf("resilient campaign aborted: %v", err)
			}

			if len(sum.Results) != len(sites) {
				t.Fatalf("got %d results for %d sites", len(sum.Results), len(sites))
			}
			if len(sum.Quarantined) != 2 {
				t.Fatalf("quarantined %d runs, want 2: %+v", len(sum.Quarantined), sum.Quarantined)
			}
			wantReasons := map[int]string{panicIdx: ReasonPanic, hangIdx: ReasonTimeout}
			for _, f := range sum.Quarantined {
				want, ok := wantReasons[f.Index]
				if !ok {
					t.Errorf("unexpected quarantined index %d", f.Index)
					continue
				}
				if f.Reason != want {
					t.Errorf("site %d reason = %q, want %q", f.Index, f.Reason, want)
				}
				if !strings.Contains(f.Repro, "bjfault") || !strings.Contains(f.Repro, fmt.Sprintf("-site-index %d", f.Index)) {
					t.Errorf("site %d repro %q lacks a usable command", f.Index, f.Repro)
				}
				if f.Reason == ReasonPanic && f.Stack == "" {
					t.Errorf("panic failure carries no stack")
				}
				if sum.Results[f.Index].Outcome != OutcomeQuarantined {
					t.Errorf("site %d result outcome = %v, want quarantined", f.Index, sum.Results[f.Index].Outcome)
				}
			}
			// The livelocked site burned its retry budget; the panicking one
			// was retried too (all failures are). Both count as retried.
			if sum.Retried == 0 {
				t.Errorf("Retried = 0, want > 0 (quarantined runs were retried)")
			}

			// Healthy rows must match the clean campaign exactly.
			j := 0
			for i, r := range sum.Results {
				if i == panicIdx || i == hangIdx {
					continue
				}
				want := cleanSum.Results[j]
				j++
				got := r
				if fmt.Sprintf("%v|%v|%d|%d|%v", got.Site, got.Outcome, got.Activations, got.DetectionLatency, got.FirstEvent) !=
					fmt.Sprintf("%v|%v|%d|%d|%v", want.Site, want.Outcome, want.Activations, want.DetectionLatency, want.FirstEvent) {
					t.Errorf("site %d diverged from clean campaign:\n got %+v\nwant %+v", i, got, want)
				}
			}

			// Metrics for the healthy sites must be byte-identical to the
			// clean campaign; the only extra keys are campaign.quarantined*.
			var kept []string
			for _, line := range strings.Split(metricsText(t, cfg.Metrics), "\n") {
				if strings.HasPrefix(line, "counter campaign.quarantined") {
					continue
				}
				kept = append(kept, line)
			}
			if got, want := strings.Join(kept, "\n"), metricsText(t, cleanCfg.Metrics); got != want {
				t.Errorf("healthy-site metrics diverged:\n--- resilient (filtered) ---\n%s\n--- clean ---\n%s", got, want)
			}
		})
	}
}

// A panicking site without Isolate aborts the campaign — but as a
// structured error, not a process crash.
func TestCampaignPanicWithoutIsolateAborts(t *testing.T) {
	withTestHook(t, func(ctx context.Context, i int) error {
		if i == 1 {
			panic("unisolated")
		}
		return nil
	})
	cfg := Default(pipeline.ModeBlackJack, 2000)
	cfg.Parallel = 2
	_, err := Campaign(cfg, "crafty", resilienceSites(), InjectOptions{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want contained panic error", err)
	}
}

// Retry semantics: a run that fails transiently succeeds on a later attempt
// with escalated budget, and the retry is counted but never quarantined.
func TestCampaignRetriesTransientFailure(t *testing.T) {
	failures := map[int]int{3: 1} // site 3 fails once, then heals
	withTestHook(t, func(ctx context.Context, i int) error {
		if failures[i] > 0 {
			failures[i]--
			return errors.New("transient wobble")
		}
		return nil
	})
	cfg := Default(pipeline.ModeBlackJack, 2000)
	cfg.Parallel = 1 // serialize so the map needs no lock
	cfg.Metrics = obs.NewRegistry()
	cfg.Resilience = Resilience{Isolate: true, Retries: 2}
	sum, err := Campaign(cfg, "crafty", resilienceSites(), InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Quarantined) != 0 {
		t.Fatalf("healed run still quarantined: %+v", sum.Quarantined)
	}
	if sum.Retried != 1 {
		t.Errorf("Retried = %d, want 1", sum.Retried)
	}
	if got := metricsText(t, cfg.Metrics); !strings.Contains(got, "campaign.retries") {
		t.Errorf("metrics lack campaign.retries:\n%s", got)
	}
}

// AC4: kill + resume produces byte-identical tables and metrics to the same
// campaign run uninterrupted, at any worker count. The "kill" is simulated
// by truncating the journal to a prefix of its records — exactly the state
// a SIGKILL between fsync batches leaves behind.
func TestCampaignJournalResumeByteIdentical(t *testing.T) {
	sites := resilienceSites()
	newCfg := func(par int) Config {
		cfg := Default(pipeline.ModeBlackJack, 2000)
		cfg.CheckpointInterval = 500
		cfg.Parallel = par
		cfg.Metrics = obs.NewRegistry()
		return cfg
	}

	// Uninterrupted reference (no journal at all).
	refCfg := newCfg(4)
	refSum, err := Campaign(refCfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refTable := summaryString(refSum)
	refMetrics := metricsText(t, refCfg.Metrics)

	// Full journaled run to obtain a complete journal file.
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	fullCfg := newCfg(4)
	jr, err := OpenCampaignJournal(full, fullCfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fullCfg.Journal = jr
	fullSum, err := Campaign(fullCfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if got := summaryString(fullSum); got != refTable {
		t.Fatalf("journaled run differs from unjournaled:\n%s\nvs\n%s", got, refTable)
	}
	if got := metricsText(t, fullCfg.Metrics); got != refMetrics {
		t.Fatalf("journaled metrics differ from unjournaled")
	}

	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(raw), "\n"), "\n")
	// lines[0] is the header; keep 3 of the 7 records, plus a torn tail.
	if len(lines) != 1+len(sites) {
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+len(sites))
	}

	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			crashed := filepath.Join(dir, fmt.Sprintf("crashed-%d.journal", workers))
			torn := strings.Join(lines[:4], "") + `{"i":6,"r":{"resu` // mid-write SIGKILL residue
			if err := os.WriteFile(crashed, []byte(torn), 0o644); err != nil {
				t.Fatal(err)
			}
			cfg := newCfg(workers)
			jr, err := OpenCampaignJournal(crashed, cfg, "crafty", sites, InjectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer jr.Close()
			if jr.Done() != 3 {
				t.Fatalf("crashed journal resumes %d records, want 3", jr.Done())
			}
			cfg.Journal = jr
			sum, err := Campaign(cfg, "crafty", sites, InjectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Resumed != 3 {
				t.Errorf("Resumed = %d, want 3", sum.Resumed)
			}
			if got := summaryString(sum); got != refTable {
				t.Errorf("resumed table differs from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", got, refTable)
			}
			if got := metricsText(t, cfg.Metrics); got != refMetrics {
				t.Errorf("resumed metrics differ from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", got, refMetrics)
			}
		})
	}
}

// A journal keyed to a different campaign refuses to resume.
func TestCampaignJournalKeyMismatch(t *testing.T) {
	sites := resilienceSites()
	cfg := Default(pipeline.ModeBlackJack, 2000)
	path := filepath.Join(t.TempDir(), "c.journal")
	jr, err := OpenCampaignJournal(path, cfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if _, err := OpenCampaignJournal(path, cfg, "gcc", sites, InjectOptions{}); err == nil {
		t.Error("journal accepted a different benchmark")
	}
	cfg2 := cfg
	cfg2.MaxInstructions = 4000
	if _, err := OpenCampaignJournal(path, cfg2, "crafty", sites, InjectOptions{}); err == nil {
		t.Error("journal accepted a different instruction budget")
	}
	if _, err := OpenCampaignJournal(path, cfg, "crafty", sites[:3], InjectOptions{}); err == nil {
		t.Error("journal accepted a different site list")
	}
}

// Campaign-level cancellation (SIGINT) stops the fan-out, surfaces
// context.Canceled, and leaves the journal resumable with whatever had
// completed.
func TestCampaignGracefulCancellation(t *testing.T) {
	sites := resilienceSites()
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	withTestHook(t, func(_ context.Context, i int) error {
		ran++
		if ran == 3 {
			cancel() // "SIGINT" mid-campaign
		}
		return nil
	})
	path := filepath.Join(t.TempDir(), "int.journal")
	cfg := Default(pipeline.ModeBlackJack, 2000)
	cfg.Parallel = 1
	cfg.Ctx = ctx
	jr, err := OpenCampaignJournal(path, cfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jr
	_, err = Campaign(cfg, "crafty", sites, InjectOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	jr.Close()

	// Resume under a live context: the journaled prefix is skipped and the
	// final table matches an uninterrupted run.
	withTestHook(t, nil)
	refCfg := Default(pipeline.ModeBlackJack, 2000)
	refSum, err := Campaign(refCfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := Default(pipeline.ModeBlackJack, 2000)
	jr2, err := OpenCampaignJournal(path, cfg2, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if jr2.Done() == 0 {
		t.Fatal("interrupted journal holds no completed runs")
	}
	cfg2.Journal = jr2
	sum, err := Campaign(cfg2, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != jr2.Done() {
		t.Errorf("Resumed = %d, journal held %d", sum.Resumed, jr2.Done())
	}
	if got, want := summaryString(sum), summaryString(refSum); got != want {
		t.Errorf("post-interrupt resume differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// A standalone run that deadlocks surfaces the typed error.
func TestRunProgramTypedDeadlockError(t *testing.T) {
	cfg := Default(pipeline.ModeBlackJack, 2000)
	cfg.Machine.MaxCycles = 50 // far too few to finish: trips the backstop
	_, err := Run(cfg, "gcc")
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *DeadlockError", err, err)
	}
	if de.Benchmark != "gcc" || de.Mode != pipeline.ModeBlackJack {
		t.Errorf("DeadlockError = %+v", de)
	}
}

// A standalone run under an expired budget surfaces the typed interruption.
func TestRunProgramTypedInterruptedError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Default(pipeline.ModeBlackJack, 200000)
	cfg.Ctx = ctx
	_, err := Run(cfg, "gcc")
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InterruptedError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("InterruptedError does not unwrap to context.Canceled: %v", err)
	}
}
