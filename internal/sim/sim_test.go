package sim

import (
	"testing"

	"blackjack/internal/pipeline"
)

func TestRunSingleMatchesGolden(t *testing.T) {
	r, err := Run(Default(pipeline.ModeSingle, 5000), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if !r.OutputMatches {
		t.Error("single-mode output does not match golden model")
	}
	if r.Stats.IPC() <= 0 {
		t.Error("no progress")
	}
}

func TestRunAllModes(t *testing.T) {
	rs, err := RunAllModes(pipeline.DefaultConfig(), "gzip", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results", len(rs))
	}
	for mode, r := range rs {
		if !r.OutputMatches {
			t.Errorf("%v: output mismatch", mode)
		}
		if r.Stats.Detections != 0 {
			t.Errorf("%v: %d detections in fault-free run", mode, r.Stats.Detections)
		}
	}
	single := rs[pipeline.ModeSingle]
	for _, mode := range []pipeline.Mode{pipeline.ModeSRT, pipeline.ModeBlackJackNS, pipeline.ModeBlackJack} {
		if perf := rs[mode].NormalizedPerf(single); perf > 1.001 {
			t.Errorf("%v normalized perf %.3f > 1", mode, perf)
		}
		if slow := rs[mode].Slowdown(single); slow < 0.999 {
			t.Errorf("%v slowdown %.3f < 1", mode, slow)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Default(pipeline.ModeSingle, 0)
	if err := cfg.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	cfg = Default(pipeline.ModeSingle, 100)
	cfg.Machine.FetchWidth = 1
	if err := cfg.Validate(); err == nil {
		t.Error("bad machine config accepted")
	}
	if _, err := Run(Default(pipeline.ModeSingle, 100), "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestStandardSitesCoverEveryWay(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	sites := StandardSites(cfg)
	if len(sites) < 20 {
		t.Fatalf("campaign too small: %d sites", len(sites))
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeBenign, OutcomeDetected, OutcomeSilent, OutcomeWedged} {
		if o.String() == "" {
			t.Errorf("outcome %d unnamed", o)
		}
	}
}
