package sim

import (
	"testing"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/pipeline"
	"blackjack/internal/prog"
)

const injBudget = 4000

// A backend-way fault on one of the four integer ALUs: BlackJack must detect
// it (trailing copies execute on a different way and disagree at a check).
func TestBlackJackDetectsBackendFault(t *testing.T) {
	site := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9}
	r, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "gcc", site, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Activations == 0 {
		t.Fatal("fault never activated; campaign not exercising the way")
	}
	if r.Outcome != OutcomeDetected {
		t.Errorf("outcome = %v, want detected (first event %v)", r.Outcome, r.FirstEvent)
	}
}

// The same fault on the unprotected single-thread machine must corrupt
// silently — the failure mode the paper motivates with.
func TestSingleThreadFaultIsSilent(t *testing.T) {
	site := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9}
	r, err := Inject(Default(pipeline.ModeSingle, injBudget), "gcc", site, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Activations == 0 {
		t.Fatal("fault never activated")
	}
	if r.Outcome != OutcomeSilent {
		t.Errorf("outcome = %v, want silent-corruption", r.Outcome)
	}
}

// A frontend-way decode fault: SRT's trailing thread decodes the same PC on
// the same way, suffering the identical corruption — the error escapes (or at
// best wedges); BlackJack's shuffled trailing thread decodes on a different
// way and detects it. This is the paper's headline contrast.
func TestFrontendFaultSRTEscapesBlackJackDetects(t *testing.T) {
	site := fault.Site{Class: fault.FrontendWay, Way: 1, Field: fault.FieldRs2}

	bj, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "vortex", site, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bj.Activations == 0 {
		t.Fatal("fault never activated under blackjack")
	}
	if bj.Outcome != OutcomeDetected {
		t.Errorf("blackjack outcome = %v, want detected", bj.Outcome)
	}

	srt, err := Inject(Default(pipeline.ModeSRT, injBudget), "vortex", site, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if srt.Outcome == OutcomeDetected {
		t.Errorf("srt detected a same-frontend-way fault; spatial-diversity model broken (first event %v)", srt.FirstEvent)
	}
}

// A branch-direction fault in the leading thread makes it commit the wrong
// path; BlackJack's program-order check at trailing commit must fire.
func TestBranchFaultCaughtByPCOrderCheck(t *testing.T) {
	site := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 2, FlipBranch: true,
		TriggerMask: 0, TriggerValue: 0}
	r, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "bzip", site, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Activations == 0 {
		t.Skip("no branch landed on the faulty way in this window")
	}
	if r.Outcome != OutcomeDetected {
		t.Errorf("outcome = %v, want detected", r.Outcome)
	}
}

// Payload RAM faults (Section 4.5): with a shared payload RAM a fault CAN
// escape when both copies of an instruction land in the faulty slot — but
// usually the copies use different slots and the corruption is caught. With
// split per-thread payload RAMs the fault corrupts only one copy, so an
// activated fault must always be detected. The quantitative shared-vs-split
// comparison is experiment Ext-C.
func TestPayloadRAMSplitAlwaysDetects(t *testing.T) {
	for _, slot := range []int{0, 3, 9} {
		site := fault.Site{Class: fault.PayloadRAM, Slot: slot, Thread: 1, Field: fault.FieldImm, BitMask: 4}
		split, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "gzip", site, InjectOptions{SplitPayload: true})
		if err != nil {
			t.Fatal(err)
		}
		if split.Activations == 0 {
			continue
		}
		if split.Outcome != OutcomeDetected {
			t.Errorf("slot %d: split payload RAM outcome = %v, want detected", slot, split.Outcome)
		}
		// The shared variant must at least run to a classification without
		// error; whether it escapes depends on slot-collision luck.
		if _, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "gzip", site, InjectOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

// Condition-gated (state-dependent) faults must stay latent until the
// trigger pattern occurs.
func TestConditionGatedFaultLatency(t *testing.T) {
	never := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0,
		TriggerMask: ^uint64(0), TriggerValue: 0xDEADBEEFDEADBEEF}
	r, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "gcc", never, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Activations != 0 || r.Outcome != OutcomeBenign {
		t.Errorf("impossible trigger fired: %d activations, outcome %v", r.Activations, r.Outcome)
	}
}

func TestCampaignSummary(t *testing.T) {
	cfg := Default(pipeline.ModeBlackJack, 2500)
	sites := []fault.Site{
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9},
		{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 1, BitMask: 1 << 9},
		{Class: fault.FrontendWay, Way: 0, Field: fault.FieldRs1},
	}
	sum, err := Campaign(cfg, "crafty", sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != len(sites) {
		t.Fatalf("results = %d, want %d", len(sum.Results), len(sites))
	}
	total := 0
	for _, n := range sum.Counts {
		total += n
	}
	if total != len(sites) {
		t.Errorf("outcome counts sum to %d", total)
	}
	if sum.ActiveRuns > 0 && sum.DetectionRate() < 0.5 {
		t.Errorf("BlackJack campaign detection rate %.2f suspiciously low", sum.DetectionRate())
	}
}

// Detection latency must be measured from first activation to first event
// and be non-negative and plausibly small for an always-on fault.
func TestDetectionLatencyMeasured(t *testing.T) {
	site := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9}
	r, err := Inject(Default(pipeline.ModeBlackJack, injBudget), "gcc", site, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != OutcomeDetected {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if r.DetectionLatency < 0 {
		t.Fatal("detection latency not measured")
	}
	if r.DetectionLatency > 5000 {
		t.Errorf("detection latency %d cycles implausibly long", r.DetectionLatency)
	}
}

// Multiple simultaneous uncorrelated faults must still be detected.
func TestMultiFaultDetected(t *testing.T) {
	sites := []fault.Site{
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9},
		{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 1, BitMask: 1 << 10},
		{Class: fault.FrontendWay, Way: 2, Field: fault.FieldRs1},
	}
	p, err := prog.Benchmark("crafty")
	if err != nil {
		t.Fatal(err)
	}
	r, err := InjectProgramMulti(Default(pipeline.ModeBlackJack, injBudget), p, sites, InjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Activations == 0 {
		t.Fatal("faults never activated")
	}
	if r.Outcome != OutcomeDetected {
		t.Errorf("outcome = %v, want detected", r.Outcome)
	}
}
