package sim

import (
	"reflect"
	"testing"

	"blackjack/internal/fault"
	"blackjack/internal/isa"
	"blackjack/internal/obs"
	"blackjack/internal/pipeline"
	"blackjack/internal/runcache"
)

func testStore(t *testing.T) *runcache.Store {
	t.Helper()
	s, err := runcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A cached single run must be indistinguishable from a live one, and the
// second invocation must be a pure hit.
func TestRunProgramCacheHitIdentical(t *testing.T) {
	cfg := Default(pipeline.ModeBlackJack, 3000)
	cfg.Cache = testStore(t)
	cold, err := Run(cfg, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(cfg, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("cached run differs from live run:\nlive %+v\nwarm %+v", cold, warm)
	}
	st := cfg.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
}

// A warm campaign must reproduce the cold campaign's results exactly, with
// every cell served from the cache, and sampled verification at fraction 1
// must recompute every hit without finding a divergence.
func TestCampaignWarmCacheIdentical(t *testing.T) {
	sites := []fault.Site{
		{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9},
		{Class: fault.FrontendWay, Way: 1, Field: fault.FieldRs2},
		{Class: fault.PayloadRAM, Slot: 3, Field: fault.FieldImm, BitMask: 2},
	}
	cfg := Default(pipeline.ModeBlackJack, 3000)
	cfg.Cache = testStore(t)
	cold, err := Campaign(cfg, "gcc", sites, InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold campaign reports %d cache hits, want 0", cold.CacheHits)
	}
	warm, err := Campaign(cfg, "gcc", sites, InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(sites) {
		t.Errorf("warm campaign reports %d cache hits, want %d", warm.CacheHits, len(sites))
	}
	if !reflect.DeepEqual(cold.Results, warm.Results) {
		t.Errorf("warm campaign results differ from cold:\ncold %+v\nwarm %+v", cold.Results, warm.Results)
	}
	if !reflect.DeepEqual(cold.Counts, warm.Counts) {
		t.Errorf("warm campaign counts differ from cold: %v vs %v", cold.Counts, warm.Counts)
	}

	// Third pass with full verification: every hit is recomputed live and
	// must match what the cache stored.
	cfg.CacheVerify = 1
	verified, err := Campaign(cfg, "gcc", sites, InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Results, verified.Results) {
		t.Error("verified campaign results differ from cold")
	}
	st := cfg.Cache.Stats()
	if st.VerifyRuns < uint64(len(sites)) {
		t.Errorf("verify runs = %d, want >= %d", st.VerifyRuns, len(sites))
	}
	if st.VerifyDivergences != 0 {
		t.Errorf("verification found %d divergences, want 0", st.VerifyDivergences)
	}
}

// A campaign cell's identity excludes the surrounding site list, so a cell
// cached by one campaign is a hit in a different campaign containing the
// same site — the property that makes sweeps incremental (a one-parameter
// edit re-executes only the affected cells).
func TestCampaignCellSharedAcrossSiteLists(t *testing.T) {
	shared := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9}
	extra := fault.Site{Class: fault.FrontendWay, Way: 1, Field: fault.FieldRs2}
	cfg := Default(pipeline.ModeBlackJack, 3000)
	cfg.Cache = testStore(t)
	first, err := Campaign(cfg, "gcc", []fault.Site{shared}, InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Campaign(cfg, "gcc", []fault.Site{shared, extra}, InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 1 {
		t.Errorf("second campaign reports %d cache hits, want 1 (the shared site)", second.CacheHits)
	}
	if !reflect.DeepEqual(first.Results[0], second.Results[0]) {
		t.Error("shared cell differs between the two campaigns")
	}
}

// An injection with a different budget, mode, or site must never alias a
// cached entry: each parameter is part of the identity.
func TestCacheIdentityDiscriminates(t *testing.T) {
	site := fault.Site{Class: fault.BackendWay, Unit: isa.UnitIntALU, Way: 0, BitMask: 1 << 9}
	cfg := Default(pipeline.ModeBlackJack, 3000)
	cfg.Cache = testStore(t)
	if _, err := Inject(cfg, "gcc", site, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.MaxInstructions = 2000
	if _, err := Inject(other, "gcc", site, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	st := cfg.Cache.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 0/2 (distinct budgets must not alias)", st.Hits, st.Misses)
	}
}

// Two sites differing only in fields Site.String's human label drops
// (trigger gates, duty cycles) must never alias one cache entry: identity
// encodes the site's canonical JSON form, not its display label.
// Regression test — %+v formatting used the Stringer, collapsing every
// trigger-gated latent variant of a way onto a single entry.
func TestCacheIdentityIncludesStringerDroppedFields(t *testing.T) {
	a := fault.Site{Class: fault.BackendWay, Unit: isa.UnitMem, Way: 0, BitMask: 1 << 8, TriggerMask: 0xff, TriggerValue: 0x05}
	b := a
	b.TriggerValue = 0x06
	cfg := Default(pipeline.ModeBlackJack, 3000)
	cfg.Cache = testStore(t)
	if _, err := Inject(cfg, "gcc", a, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Inject(cfg, "gcc", b, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	st := cfg.Cache.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 0/2 (distinct trigger values must not alias)", st.Hits, st.Misses)
	}
}

// Runs with a tracer or metrics registry attached want live pipeline
// internals; they must bypass the cache in both directions.
func TestTraceAndMetricsRunsBypassCache(t *testing.T) {
	cfg := Default(pipeline.ModeBlackJack, 3000)
	cfg.Cache = testStore(t)
	if _, err := Run(cfg, "gcc"); err != nil { // fill
		t.Fatal(err)
	}
	cfg.Metrics = obs.NewRegistry()
	if _, err := Run(cfg, "gcc"); err != nil {
		t.Fatal(err)
	}
	st := cfg.Cache.Stats()
	if st.Hits != 0 {
		t.Errorf("metrics run hit the cache (%d hits); it must execute live", st.Hits)
	}
}
