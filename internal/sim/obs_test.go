package sim

import (
	"bytes"
	"testing"

	"blackjack/internal/obs"
	"blackjack/internal/pipeline"
)

// campaignMetricsJSON runs the standard-sites campaign at the given worker
// count with a fresh registry and returns the deterministic JSON export.
func campaignMetricsJSON(t *testing.T, workers int, interval int64) []byte {
	t.Helper()
	cfg := Default(pipeline.ModeBlackJack, 4000)
	cfg.Parallel = workers
	cfg.CheckpointInterval = interval
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	sites := StandardSites(cfg.Machine)
	sum, err := Campaign(cfg, "gcc", sites, InjectOptions{SplitPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("campaign.runs"); got != uint64(len(sites)) {
		t.Fatalf("campaign.runs = %d, want %d", got, len(sites))
	}
	var detected uint64
	for _, r := range sum.Results {
		if r.Outcome == OutcomeDetected {
			detected++
		}
	}
	if got := reg.CounterValue("campaign.outcome.detected"); got != detected {
		t.Fatalf("campaign.outcome.detected = %d, want %d", got, detected)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignMetricsDeterministic asserts the merged per-worker registries
// are byte-identical at any worker count: every campaign metric is a
// commutative sum, so the nondeterministic work partition must not show.
// (Runs under -race in CI to also exercise the worker fan-out.)
func TestCampaignMetricsDeterministic(t *testing.T) {
	serial := campaignMetricsJSON(t, 1, 0)
	parallel := campaignMetricsJSON(t, 8, 0)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("campaign metrics differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestCampaignMetricsDeterministicCheckpointed repeats the worker-count
// determinism check on the checkpoint/fork path, where the warm-served, cold
// and forked counters join the outcome counters.
func TestCampaignMetricsDeterministicCheckpointed(t *testing.T) {
	serial := campaignMetricsJSON(t, 1, 500)
	parallel := campaignMetricsJSON(t, 8, 500)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("checkpointed campaign metrics differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestRunMetricsMatchStats is the registry's ground-truth contract: a single
// run exported into a fresh registry must reproduce pipeline.Stats exactly.
func TestRunMetricsMatchStats(t *testing.T) {
	cfg := Default(pipeline.ModeBlackJack, 5000)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(cfg, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	checks := map[string]uint64{
		"pipeline.cycles":           uint64(st.Cycles),
		"pipeline.committed.lead":   st.Committed[0],
		"pipeline.committed.trail":  st.Committed[1],
		"pipeline.fetched.lead":     st.Fetched[0],
		"pipeline.issued.lead":      st.Issued[0],
		"pipeline.issued.trail":     st.Issued[1],
		"pipeline.branches":         st.Branches,
		"pipeline.mispredicts":      st.Mispredicts,
		"pipeline.squashed":         st.Squashed,
		"pipeline.pairs":            st.Pairs,
		"pipeline.fe_diverse_pairs": st.FeDiversePairs,
		"pipeline.be_diverse_pairs": st.BeDiversePairs,
		"pipeline.issue_cycles":     st.IssueCycles,
		"pipeline.lt_interference":  st.LTInterference,
		"pipeline.tt_interference":  st.TTInterference,
		"pipeline.released_stores":  st.ReleasedStores,
		"pipeline.detections":       st.Detections,
		"cache.accesses":            st.Cache.Accesses,
		"cache.l1_misses":           st.Cache.L1Misses,
	}
	for name, want := range checks {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d (Stats field)", name, got, want)
		}
	}
	if got := reg.GaugeValue("pipeline.ipc"); got != st.IPC() {
		t.Errorf("pipeline.ipc = %v, want %v", got, st.IPC())
	}
	if got := reg.GaugeValue("pipeline.coverage"); got != st.Coverage() {
		t.Errorf("pipeline.coverage = %v, want %v", got, st.Coverage())
	}
	h := reg.HistogramByName("pipeline.iq.occupancy")
	if h == nil || h.Count() != uint64(st.Cycles) {
		t.Errorf("IQ occupancy samples = %v, want one per cycle (%d)", h, st.Cycles)
	}
}
